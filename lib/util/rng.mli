(** Deterministic pseudo-random number generation (SplitMix64).

    All workload generators in this project draw from this module so that
    every experiment is bit-reproducible across runs and machines. *)

type t

val create : int64 -> t
(** [create seed] makes an independent generator. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit output of the SplitMix64 sequence. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw from [lo, hi). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal draw via Box-Muller. *)

val bool : t -> bool

val split : t -> t
(** Derive an independent generator; advances [t]. *)

val substream : int64 -> int -> t
(** [substream seed i] is the [i]-th derived generator of [seed]: a pure
    function of [(seed, i)] (no generator is advanced), with the pair
    hashed twice through the SplitMix64 finalizer so adjacent indices
    start from unrelated states. Because the stream depends only on the
    pair, drawing sample [i] produces identical values no matter how
    samples are chunked across lanes, domains or jobs — the determinism
    contract the input-sweep sampling layer is built on. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
