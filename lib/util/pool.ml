module Trace = Cheffp_obs.Trace
module Metrics = Cheffp_obs.Metrics

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let sequential_map f xs = List.map f xs

(* Registry handles are fetched once per map call / per worker, not per
   task; updates themselves are lock-free atomics. *)
let tasks_total () = Metrics.counter "pool.tasks"
let worker_tasks w = Metrics.counter (Printf.sprintf "pool.worker.%d.tasks" w)
let queue_wait () = Metrics.histogram "pool.queue_wait_seconds"
let busy () = Metrics.histogram "pool.busy_seconds"

let parallel_map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when jobs <= 1 ->
      (* Degraded mode still counts its tasks (one atomic add per item)
         so `-j 1` runs show up in the same metrics; it takes no
         timestamps and spawns nothing. *)
      let total = tasks_total () and mine = worker_tasks 0 in
      sequential_map
        (fun x ->
          let y = f x in
          Metrics.incr total;
          Metrics.incr mine;
          y)
        xs
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let results : ('b, exn) result option array = Array.make n None in
      let cursor = Atomic.make 0 in
      let failed = Atomic.make false in
      let total = tasks_total () in
      (* Timed observations (queue-wait = idle gap before claiming an
         item, busy = the item itself) need two clock reads per task, so
         they are gated; task counters are always on. *)
      let timed = Metrics.enabled () in
      let wait_h = if timed then Some (queue_wait (), busy ()) else None in
      let trace_parent = Trace.current () in
      let batch_start = if timed then Unix.gettimeofday () else 0. in
      (* Workers pull the next index from the shared cursor until the
         items run out or a sibling records a failure. Each index is
         claimed by exactly one worker, so the per-slot writes below
         never race; joining the domains publishes them to the caller. *)
      let worker w () =
        let mine = worker_tasks w in
        let last_end = ref batch_start in
        let rec loop () =
          if not (Atomic.get failed) then begin
            let i = Atomic.fetch_and_add cursor 1 in
            if i < n then begin
              let start =
                match wait_h with
                | Some (qw, _) ->
                    let t = Unix.gettimeofday () in
                    Metrics.observe qw (t -. !last_end);
                    t
                | None -> 0.
              in
              (match f input.(i) with
              | v -> results.(i) <- Some (Ok v)
              | exception e ->
                  results.(i) <- Some (Error e);
                  Atomic.set failed true);
              Metrics.incr total;
              Metrics.incr mine;
              (match wait_h with
              | Some (_, bh) ->
                  let t = Unix.gettimeofday () in
                  Metrics.observe bh (t -. start);
                  last_end := t
              | None -> ());
              loop ()
            end
          end
        in
        loop ()
      in
      let spawned =
        Array.init
          (min jobs n - 1)
          (fun k ->
            Domain.spawn (fun () ->
                (* Spans opened inside worker tasks nest under the span
                   that issued this batch. *)
                Trace.with_parent trace_parent (worker (k + 1))))
      in
      worker 0 ();
      Array.iter Domain.join spawned;
      Array.iter (function Some (Error e) -> raise e | _ -> ()) results;
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error _) | None ->
                 (* unreachable: a [None] slot implies [failed] was set,
                    i.e. some slot holds an [Error] raised above. *)
                 assert false)
           results)

(* ------------------------------------------------------------------ *)
(* Shared long-lived pool (the analysis server's executor). Unlike
   [parallel_map], whose domains live for one call, [Shared] keeps a
   fixed set of worker domains alive for the life of the process and
   multiplexes tasks from many concurrent submitters onto them. *)

module Shared = struct
  type 'a fstate = Pending | Done of ('a, exn) result

  type 'a future = {
    f_m : Mutex.t;
    f_cv : Condition.t;
    mutable f_st : 'a fstate;
  }

  type task = {
    t_run : unit -> unit;
    t_cancel : unit -> unit;
    t_prio : int;
    t_deadline : float;
    t_seq : int;  (* unique; FIFO tie-break within a queue *)
    t_enq : float;
  }

  type submitter = {
    s_id : int;
    s_lock : Mutex.t;
    mutable s_tasks : task list;
  }

  type t = {
    m : Mutex.t;  (* guards queued/active/seq/subs/stop *)
    work_cv : Condition.t;  (* workers sleep here when idle *)
    idle_cv : Condition.t;  (* [drain] waits here *)
    mutable subs : submitter array;  (* replaced wholesale, never mutated *)
    mutable stop : bool;
    mutable queued : int;
    mutable active : int;
    mutable seq : int;
    mutable next_sub_id : int;
    mutable domains : unit Domain.t array;
    n_workers : int;
  }

  let submitted_c = Metrics.counter "pool.shared.submitted"
  let completed_c = Metrics.counter "pool.shared.completed"
  let steals_c = Metrics.counter "pool.shared.steals"
  let depth_g = Metrics.gauge "pool.shared.queue_depth"
  (* Server request path: sub-millisecond waits are the common case, so
     use the finer latency buckets (windowed quantiles resolve them;
     DESIGN.md §14). *)
  let shared_wait () =
    Metrics.histogram ~buckets:Metrics.latency_buckets
      "pool.shared.queue_wait_seconds"

  (* Admission order within one queue: higher priority first, then
     earlier deadline, then submission order. *)
  let better a b =
    if a.t_prio <> b.t_prio then a.t_prio > b.t_prio
    else if a.t_deadline <> b.t_deadline then a.t_deadline < b.t_deadline
    else a.t_seq < b.t_seq

  let peek s =
    Mutex.lock s.s_lock;
    let b =
      match s.s_tasks with
      | [] -> None
      | x :: rest ->
          Some (List.fold_left (fun acc t -> if better t acc then t else acc) x rest)
    in
    Mutex.unlock s.s_lock;
    b

  let pop_best s =
    Mutex.lock s.s_lock;
    let r =
      match s.s_tasks with
      | [] -> None
      | x :: rest ->
          let best =
            List.fold_left (fun acc t -> if better t acc then t else acc) x rest
          in
          s.s_tasks <- List.filter (fun t -> t.t_seq <> best.t_seq) s.s_tasks;
          Some best
    in
    Mutex.unlock s.s_lock;
    r

  (* Queue choice: scan every submitter queue — the worker's home
     queues first (submitter id mod workers = this worker), then the
     rest (a steal) — and take the task that wins on
     (priority, deadline). Ties keep the earliest queue in scan order,
     and the scan order rotates (per-worker round-robin pointer), so
     equal-priority submitters are served round-robin: a submitter that
     floods its own queue with a 1000-candidate search only delays its
     own tasks, a quick analyze on another queue is picked up on the
     next slot. *)
  let strictly_better t bt =
    t.t_prio > bt.t_prio || (t.t_prio = bt.t_prio && t.t_deadline < bt.t_deadline)

  let try_take p w rr =
    let subs = p.subs in
    let n = Array.length subs in
    if n = 0 then None
    else begin
      let home i = subs.(i).s_id mod p.n_workers = w in
      let homes = ref [] and foreign = ref [] in
      for k = n - 1 downto 0 do
        let i = (!rr + k) mod n in
        if home i then homes := i :: !homes else foreign := i :: !foreign
      done;
      let best =
        List.fold_left
          (fun acc i ->
            match peek subs.(i) with
            | None -> acc
            | Some t -> (
                match acc with
                | Some (_, bt) when not (strictly_better t bt) -> acc
                | _ -> Some (i, t)))
          None
          (!homes @ !foreign)
      in
      match best with
      | None -> None
      | Some (i, _) -> (
          (* The queue may have been drained between peek and pop; the
             worker loop just rescans. *)
          match pop_best subs.(i) with
          | None -> None
          | Some task ->
              rr := (i + 1) mod n;
              if not (home i) then Metrics.incr steals_c;
              Some task)
    end

  let rec worker_loop p w rr mine =
    match try_take p w rr with
    | Some task ->
        Mutex.lock p.m;
        p.queued <- p.queued - 1;
        p.active <- p.active + 1;
        Metrics.set_gauge depth_g (float_of_int p.queued);
        Mutex.unlock p.m;
        if Metrics.enabled () then
          Metrics.observe (shared_wait ()) (Unix.gettimeofday () -. task.t_enq);
        task.t_run ();
        Metrics.incr completed_c;
        Metrics.incr mine;
        Mutex.lock p.m;
        p.active <- p.active - 1;
        if p.queued = 0 && p.active = 0 then Condition.broadcast p.idle_cv;
        Mutex.unlock p.m;
        worker_loop p w rr mine
    | None ->
        Mutex.lock p.m;
        if p.stop && p.queued = 0 then Mutex.unlock p.m (* exit *)
        else if p.queued = 0 then begin
          Condition.wait p.work_cv p.m;
          Mutex.unlock p.m;
          worker_loop p w rr mine
        end
        else begin
          (* queued > 0 but the scan lost a race with another worker's
             pop; back off briefly and rescan. *)
          Mutex.unlock p.m;
          Domain.cpu_relax ();
          worker_loop p w rr mine
        end

  let worker p w () =
    let mine = Metrics.counter (Printf.sprintf "pool.shared.worker.%d.tasks" w) in
    worker_loop p w (ref 0) mine

  let create ?workers () =
    let n =
      match workers with
      | Some n -> max 1 n
      | None -> max 2 (Domain.recommended_domain_count () - 1)
    in
    let p =
      {
        m = Mutex.create ();
        work_cv = Condition.create ();
        idle_cv = Condition.create ();
        subs = [||];
        stop = false;
        queued = 0;
        active = 0;
        seq = 0;
        next_sub_id = 0;
        domains = [||];
        n_workers = n;
      }
    in
    p.domains <- Array.init n (fun w -> Domain.spawn (worker p w));
    p

  let workers p = p.n_workers

  let add_submitter p =
    Mutex.lock p.m;
    let s = { s_id = p.next_sub_id; s_lock = Mutex.create (); s_tasks = [] } in
    p.next_sub_id <- p.next_sub_id + 1;
    p.subs <- Array.append p.subs [| s |];
    Mutex.unlock p.m;
    s

  let remove_submitter p s =
    Mutex.lock p.m;
    p.subs <- Array.of_list (List.filter (fun x -> x != s) (Array.to_list p.subs));
    Mutex.unlock p.m;
    Mutex.lock s.s_lock;
    let dropped = s.s_tasks in
    s.s_tasks <- [];
    Mutex.unlock s.s_lock;
    List.iter (fun t -> t.t_cancel ()) dropped;
    match List.length dropped with
    | 0 -> ()
    | k ->
        Mutex.lock p.m;
        p.queued <- p.queued - k;
        Metrics.set_gauge depth_g (float_of_int p.queued);
        if p.queued = 0 && p.active = 0 then Condition.broadcast p.idle_cv;
        Mutex.unlock p.m

  exception Cancelled

  let submit p s ?(priority = 0) ?(deadline = infinity) fn =
    let fut = { f_m = Mutex.create (); f_cv = Condition.create (); f_st = Pending } in
    let resolve r =
      Mutex.lock fut.f_m;
      (match fut.f_st with
      | Pending -> fut.f_st <- Done r
      | Done _ -> ());
      Condition.broadcast fut.f_cv;
      Mutex.unlock fut.f_m
    in
    Mutex.lock p.m;
    if p.stop then begin
      Mutex.unlock p.m;
      failwith "Pool.Shared.submit: pool is shut down"
    end;
    let seq = p.seq in
    p.seq <- seq + 1;
    Mutex.unlock p.m;
    let task =
      {
        t_run = (fun () -> resolve (try Ok (fn ()) with e -> Error e));
        t_cancel = (fun () -> resolve (Error Cancelled));
        t_prio = priority;
        t_deadline = deadline;
        t_seq = seq;
        t_enq = Unix.gettimeofday ();
      }
    in
    Mutex.lock s.s_lock;
    s.s_tasks <- task :: s.s_tasks;
    Mutex.unlock s.s_lock;
    Mutex.lock p.m;
    p.queued <- p.queued + 1;
    Metrics.set_gauge depth_g (float_of_int p.queued);
    Condition.signal p.work_cv;
    Mutex.unlock p.m;
    Metrics.incr submitted_c;
    fut

  let await fut =
    Mutex.lock fut.f_m;
    let rec get () =
      match fut.f_st with
      | Done r -> r
      | Pending ->
          Condition.wait fut.f_cv fut.f_m;
          get ()
    in
    let r = get () in
    Mutex.unlock fut.f_m;
    r

  let queue_depth p =
    Mutex.lock p.m;
    let d = p.queued in
    Mutex.unlock p.m;
    d

  let in_flight p =
    Mutex.lock p.m;
    let d = p.queued + p.active in
    Mutex.unlock p.m;
    d

  let drain p =
    Mutex.lock p.m;
    while p.queued > 0 || p.active > 0 do
      Condition.wait p.idle_cv p.m
    done;
    Mutex.unlock p.m

  let shutdown p =
    Mutex.lock p.m;
    p.stop <- true;
    Condition.broadcast p.work_cv;
    Mutex.unlock p.m;
    Array.iter Domain.join p.domains;
    p.domains <- [||]
end
