let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let sequential_map f xs = List.map f xs

let parallel_map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when jobs <= 1 -> sequential_map f xs
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let results : ('b, exn) result option array = Array.make n None in
      let cursor = Atomic.make 0 in
      let failed = Atomic.make false in
      (* Workers pull the next index from the shared cursor until the
         items run out or a sibling records a failure. Each index is
         claimed by exactly one worker, so the per-slot writes below
         never race; joining the domains publishes them to the caller. *)
      let rec worker () =
        if not (Atomic.get failed) then begin
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n then begin
            (match f input.(i) with
            | v -> results.(i) <- Some (Ok v)
            | exception e ->
                results.(i) <- Some (Error e);
                Atomic.set failed true);
            worker ()
          end
        end
      in
      let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join spawned;
      Array.iter (function Some (Error e) -> raise e | _ -> ()) results;
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error _) | None ->
                 (* unreachable: a [None] slot implies [failed] was set,
                    i.e. some slot holds an [Error] raised above. *)
                 assert false)
           results)
