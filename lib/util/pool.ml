module Trace = Cheffp_obs.Trace
module Metrics = Cheffp_obs.Metrics

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let sequential_map f xs = List.map f xs

(* Registry handles are fetched once per map call / per worker, not per
   task; updates themselves are lock-free atomics. *)
let tasks_total () = Metrics.counter "pool.tasks"
let worker_tasks w = Metrics.counter (Printf.sprintf "pool.worker.%d.tasks" w)
let queue_wait () = Metrics.histogram "pool.queue_wait_seconds"
let busy () = Metrics.histogram "pool.busy_seconds"

let parallel_map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when jobs <= 1 ->
      (* Degraded mode still counts its tasks (one atomic add per item)
         so `-j 1` runs show up in the same metrics; it takes no
         timestamps and spawns nothing. *)
      let total = tasks_total () and mine = worker_tasks 0 in
      sequential_map
        (fun x ->
          let y = f x in
          Metrics.incr total;
          Metrics.incr mine;
          y)
        xs
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let results : ('b, exn) result option array = Array.make n None in
      let cursor = Atomic.make 0 in
      let failed = Atomic.make false in
      let total = tasks_total () in
      (* Timed observations (queue-wait = idle gap before claiming an
         item, busy = the item itself) need two clock reads per task, so
         they are gated; task counters are always on. *)
      let timed = Metrics.enabled () in
      let wait_h = if timed then Some (queue_wait (), busy ()) else None in
      let trace_parent = Trace.current () in
      let batch_start = if timed then Unix.gettimeofday () else 0. in
      (* Workers pull the next index from the shared cursor until the
         items run out or a sibling records a failure. Each index is
         claimed by exactly one worker, so the per-slot writes below
         never race; joining the domains publishes them to the caller. *)
      let worker w () =
        let mine = worker_tasks w in
        let last_end = ref batch_start in
        let rec loop () =
          if not (Atomic.get failed) then begin
            let i = Atomic.fetch_and_add cursor 1 in
            if i < n then begin
              let start =
                match wait_h with
                | Some (qw, _) ->
                    let t = Unix.gettimeofday () in
                    Metrics.observe qw (t -. !last_end);
                    t
                | None -> 0.
              in
              (match f input.(i) with
              | v -> results.(i) <- Some (Ok v)
              | exception e ->
                  results.(i) <- Some (Error e);
                  Atomic.set failed true);
              Metrics.incr total;
              Metrics.incr mine;
              (match wait_h with
              | Some (_, bh) ->
                  let t = Unix.gettimeofday () in
                  Metrics.observe bh (t -. start);
                  last_end := t
              | None -> ());
              loop ()
            end
          end
        in
        loop ()
      in
      let spawned =
        Array.init
          (min jobs n - 1)
          (fun k ->
            Domain.spawn (fun () ->
                (* Spans opened inside worker tasks nest under the span
                   that issued this batch. *)
                Trace.with_parent trace_parent (worker (k + 1))))
      in
      worker 0 ();
      Array.iter Domain.join spawned;
      Array.iter (function Some (Error e) -> raise e | _ -> ()) results;
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error _) | None ->
                 (* unreachable: a [None] slot implies [failed] was set,
                    i.e. some slot holds an [Error] raised above. *)
                 assert false)
           results)
