(** Bounded Domain-based worker pool for embarrassingly parallel maps.

    The tuning and benchmark hot paths evaluate many independent
    candidate configurations (compile + execute, no shared state); this
    module fans such work out across OCaml 5 domains. Each
    {!parallel_map} call spawns a bounded pool of [jobs - 1] worker
    domains (the calling domain is the remaining worker), feeds them
    items from a shared atomic cursor, and joins them before returning,
    so no domains outlive the call.

    Guarantees:
    - results preserve input order;
    - [jobs <= 1] (or a list of fewer than two elements) degrades to a
      plain sequential [List.map] — no domains are spawned, so callers
      can use one code path for both modes;
    - if workers raise, the exception of the smallest-index failing item
      is re-raised in the caller once every domain has been joined, and
      remaining unstarted items are abandoned;
    - the mapped function must be safe to call from several domains at
      once (the tuning paths give every evaluation its own argument
      copies and cost counter — see DESIGN.md, "Parallel evaluation").

    Observability (DESIGN.md §9): every executed task increments the
    [pool.tasks] and per-worker-slot [pool.worker.<k>.tasks] counters of
    {!Cheffp_obs.Metrics} (slot 0 is the calling domain; the sequential
    degraded mode counts under slot 0 too, lists of fewer than two
    elements are not counted). When {!Cheffp_obs.Metrics.enabled} is
    set, each task additionally records its queue-wait (idle gap before
    claiming an item) and busy time into the [pool.queue_wait_seconds] /
    [pool.busy_seconds] histograms — timed observations are gated
    because they cost two clock reads per task. Spans opened by tasks
    nest under the span that was current when [parallel_map] was
    called. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (one slot is left for the
    coordinating domain), never below 1. This is the default for the
    [-j] flags of the CLI and the bench harness. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ~jobs f xs] maps [f] over [xs] using at most [jobs]
    domains (default {!default_jobs}). Order-preserving; see above for
    the sequential degradation and exception semantics. *)

(** {1 Shared long-lived pool}

    The analysis server's executor (DESIGN.md §13). Where
    {!parallel_map} spawns domains per call, [Shared] keeps a fixed set
    of worker domains alive and multiplexes tasks from many concurrent
    submitters onto them — one {!Shared.submitter} per client
    connection, each with its own work queue.

    Scheduling: a worker first looks at its {e home} queues (submitter
    id mod worker count), then steals from the others. Among the
    queues it can see it always takes the task that wins on
    (priority desc, deadline asc); on ties the choice round-robins
    across submitters, so a submitter that floods its own queue with a
    1000-candidate search only delays its own tasks — a quick analyze
    arriving on another connection is served on the next free slot.
    Within one queue, tasks run by priority, then deadline, then
    submission order.

    Tasks run with an empty span stack, so spans they open are roots —
    exactly what the server's per-request tracing needs (it opens one
    ["server.request"] root per task and extracts the subtree with
    {!Cheffp_obs.Trace.take_tree}).

    Observability: [pool.shared.submitted] / [.completed] / [.steals]
    counters, the [pool.shared.queue_depth] gauge, per-worker
    [pool.shared.worker.<k>.tasks] counters, and (when metrics are
    enabled) a [pool.shared.queue_wait_seconds] histogram. *)

module Shared : sig
  type t
  (** A pool of worker domains. Create once, share freely. *)

  type submitter
  (** A work queue. One per logical client; any systhread or domain may
      submit through it concurrently. *)

  type 'a future
  (** Result handle for a submitted task. *)

  exception Cancelled
  (** Resolution of futures whose tasks were still queued when their
      submitter was removed. *)

  val create : ?workers:int -> unit -> t
  (** Spawn the worker domains ([workers] defaults to
      [max 2 (recommended_domain_count - 1)] so requests can overlap
      even on small hosts; forced to at least 1). *)

  val workers : t -> int

  val add_submitter : t -> submitter
  (** Register a new work queue. *)

  val remove_submitter : t -> submitter -> unit
  (** Unregister a queue; tasks still queued are cancelled (their
      futures resolve to [Error Cancelled]), tasks already running
      complete normally. *)

  val submit :
    t -> submitter -> ?priority:int -> ?deadline:float -> (unit -> 'a) ->
    'a future
  (** Enqueue a task ([priority] defaults to 0 — higher runs first;
      [deadline] is an absolute [Unix.gettimeofday] instant, earlier
      runs first among equal priorities, default none). Raises
      [Failure] after {!shutdown}. The task must be safe to run on any
      worker domain. *)

  val await : 'a future -> ('a, exn) result
  (** Block the calling thread until the task completes. An exception
      escaping the task resolves to [Error]; it is not re-raised into
      the worker. *)

  val queue_depth : t -> int
  (** Tasks submitted but not yet started. *)

  val in_flight : t -> int
  (** Queued plus currently running tasks. *)

  val drain : t -> unit
  (** Block until no task is queued or running. The caller is
      responsible for stopping new submissions first (the server stops
      accepting connections before draining). *)

  val shutdown : t -> unit
  (** Drain and join the worker domains: workers finish everything
      already queued, then exit. Subsequent {!submit}s raise. *)
end
