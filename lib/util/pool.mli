(** Bounded Domain-based worker pool for embarrassingly parallel maps.

    The tuning and benchmark hot paths evaluate many independent
    candidate configurations (compile + execute, no shared state); this
    module fans such work out across OCaml 5 domains. Each
    {!parallel_map} call spawns a bounded pool of [jobs - 1] worker
    domains (the calling domain is the remaining worker), feeds them
    items from a shared atomic cursor, and joins them before returning,
    so no domains outlive the call.

    Guarantees:
    - results preserve input order;
    - [jobs <= 1] (or a list of fewer than two elements) degrades to a
      plain sequential [List.map] — no domains are spawned, so callers
      can use one code path for both modes;
    - if workers raise, the exception of the smallest-index failing item
      is re-raised in the caller once every domain has been joined, and
      remaining unstarted items are abandoned;
    - the mapped function must be safe to call from several domains at
      once (the tuning paths give every evaluation its own argument
      copies and cost counter — see DESIGN.md, "Parallel evaluation").

    Observability (DESIGN.md §9): every executed task increments the
    [pool.tasks] and per-worker-slot [pool.worker.<k>.tasks] counters of
    {!Cheffp_obs.Metrics} (slot 0 is the calling domain; the sequential
    degraded mode counts under slot 0 too, lists of fewer than two
    elements are not counted). When {!Cheffp_obs.Metrics.enabled} is
    set, each task additionally records its queue-wait (idle gap before
    claiming an item) and busy time into the [pool.queue_wait_seconds] /
    [pool.busy_seconds] histograms — timed observations are gated
    because they cost two clock reads per task. Spans opened by tasks
    nest under the span that was current when [parallel_map] was
    called. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (one slot is left for the
    coordinating domain), never below 1. This is the default for the
    [-j] flags of the CLI and the bench harness. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ~jobs f xs] maps [f] over [xs] using at most [jobs]
    domains (default {!default_jobs}). Order-preserving; see above for
    the sequential degradation and exception semantics. *)
