type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

(* 53 random bits scaled to [0,1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float t bound = unit_float t *. bound
let uniform t ~lo ~hi = lo +. (unit_float t *. (hi -. lo))

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = unit_float t in
    if u1 <= 0. then draw ()
    else
      let u2 = unit_float t in
      mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

let split t =
  let seed = next_int64 t in
  create (Int64.logxor seed 0xDEADBEEFCAFEBABEL)

(* The SplitMix64 output finalizer as a pure int64 -> int64 hash. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Substream i of a seed: hash (seed, i) twice through the finalizer so
   nearby indices land on unrelated states (a naive [seed + i*gamma]
   start would make substream i a shifted copy of substream i+1). The
   state depends only on (seed, index) — never on draw order — which is
   what makes per-sample streams invariant to jobs/lanes/chunking. *)
let substream seed index =
  let open Int64 in
  let h = mix64 (add seed (mul (of_int index) 0x9E3779B97F4A7C15L)) in
  create (mix64 (logxor h 0xA3EC647659359ACDL))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
