(* Sliding-window aggregation over the metrics registry (DESIGN.md §14).

   A rotating ring of epoch baselines — each a full [Metrics.snapshot]
   stamped with the monotonic-enough wall clock — is advanced by [tick]
   (called by a background ticker thread every [epoch_seconds], or
   manually by tests). A query takes a fresh snapshot and diffs it
   against the *oldest* baseline in the ring, so the window covers
   between (epochs-1) and epochs ticks of history once the ring is
   full, and grows from zero while it fills.

   Nothing here hooks the metric hot paths: counters, gauges and
   histograms are updated exactly as before, and the window layer only
   *reads* them O(#metrics) once per epoch from its own thread. The
   disabled path is therefore free in the strongest sense — when the
   window is not started there is no thread, no ring, and no
   per-observation cost at all, preserving lib/obs's allocation-free
   disabled-path guarantee. *)

type epoch = { at : float; values : (string * Metrics.value) list }

type state = {
  mutable ring : epoch option array;
  mutable head : int;  (* next slot to overwrite *)
  mutable epoch_s : float;
  mutable ticker : Thread.t option;
  mutable stop : bool;
}

let lock = Mutex.create ()

let state =
  { ring = Array.make 12 None; head = 0; epoch_s = 5.; ticker = None; stop = false }

let running = Atomic.make false
let active () = Atomic.get running

let configure ?(epochs = 12) ?(epoch_seconds = 5.) () =
  if epochs < 2 then invalid_arg "Window.configure: epochs must be >= 2";
  if epoch_seconds <= 0. then
    invalid_arg "Window.configure: epoch_seconds must be > 0";
  Mutex.lock lock;
  if state.ticker <> None then (
    Mutex.unlock lock;
    invalid_arg "Window.configure: stop the ticker first")
  else begin
    state.ring <- Array.make epochs None;
    state.head <- 0;
    state.epoch_s <- epoch_seconds;
    Mutex.unlock lock
  end

let tick () =
  let e = { at = Unix.gettimeofday (); values = Metrics.snapshot () } in
  Mutex.lock lock;
  state.ring.(state.head) <- Some e;
  state.head <- (state.head + 1) mod Array.length state.ring;
  Mutex.unlock lock

(* Oldest live baseline: the slot at [head] if filled (it is about to
   be overwritten, hence oldest), else the earliest-written slot. *)
let oldest_locked () =
  let n = Array.length state.ring in
  let rec scan i =
    if i >= n then None
    else
      match state.ring.((state.head + i) mod n) with
      | Some _ as e -> e
      | None -> scan (i + 1)
  in
  scan 0

let ticker_loop () =
  let rec loop slept =
    let stop = Mutex.protect lock (fun () -> state.stop) in
    if not stop then begin
      let chunk = Float.min 0.05 state.epoch_s in
      Thread.delay chunk;
      let slept = slept +. chunk in
      if slept >= state.epoch_s then begin
        tick ();
        loop 0.
      end
      else loop slept
    end
  in
  loop 0.

let start () =
  Mutex.lock lock;
  let spawn = state.ticker = None in
  if spawn then state.stop <- false;
  Mutex.unlock lock;
  if spawn then begin
    (* First baseline immediately: queries have a reference point from
       the moment the window starts, not one epoch later. *)
    tick ();
    let t = Thread.create ticker_loop () in
    Mutex.lock lock;
    state.ticker <- Some t;
    Mutex.unlock lock;
    Atomic.set running true
  end

let stop () =
  Mutex.lock lock;
  let t = state.ticker in
  state.stop <- true;
  state.ticker <- None;
  Mutex.unlock lock;
  (match t with Some t -> Thread.join t | None -> ());
  Atomic.set running false;
  Mutex.lock lock;
  Array.fill state.ring 0 (Array.length state.ring) None;
  state.head <- 0;
  Mutex.unlock lock

(* Bucket-interpolated quantile over per-bucket deltas. Continuous
   rank q*n is located in its bucket and interpolated linearly between
   the bucket's bounds; observations in the +inf bucket report the last
   finite bound (the histogram cannot resolve beyond it). *)
let quantile ~buckets ~counts q =
  if q < 0. || q > 1. then invalid_arg "Window.quantile: q must be in [0,1]";
  let n = Array.fold_left ( + ) 0 counts in
  if n = 0 then nan
  else begin
    let rank = q *. float_of_int n in
    let nb = Array.length buckets in
    let rec locate i cum =
      if i >= Array.length counts - 1 then
        (* +inf bucket *)
        if nb = 0 then nan else buckets.(nb - 1)
      else
        let cum' = cum +. float_of_int counts.(i) in
        if cum' >= rank && counts.(i) > 0 then
          let lo = if i = 0 then 0. else buckets.(i - 1) in
          let hi = buckets.(i) in
          let frac = (rank -. cum) /. float_of_int counts.(i) in
          lo +. (frac *. (hi -. lo))
        else locate (i + 1) cum'
    in
    locate 0 0.
  end

type whist = {
  wh_buckets : float array;
  wh_counts : int array;  (* per-bucket deltas over the window *)
  wh_sum : float;
  wh_count : int;
  wh_rate : float;  (* observations / s over the window *)
  wh_p50 : float;
  wh_p95 : float;
  wh_p99 : float;
}

type wvalue =
  | Wcounter of { delta : int; rate : float }
  | Wgauge of float  (* gauges are instantaneous: current value *)
  | Whistogram of whist

type summary = {
  taken_at : float;
  span_s : float;  (* seconds of history the deltas cover *)
  values : (string * wvalue) list;
}

let diff ~span_s base cur =
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun (n, v) -> Hashtbl.replace base_tbl n v) base;
  List.filter_map
    (fun (name, v) ->
      match v with
      | Metrics.Gauge g -> Some (name, Wgauge g)
      | Metrics.Counter c ->
          let b =
            match Hashtbl.find_opt base_tbl name with
            | Some (Metrics.Counter b) -> b
            | _ -> 0
          in
          let delta = c - b in
          let rate = if span_s > 0. then float_of_int delta /. span_s else 0. in
          Some (name, Wcounter { delta; rate })
      | Metrics.Histogram { buckets; counts; sum } ->
          let bcounts, bsum =
            match Hashtbl.find_opt base_tbl name with
            | Some (Metrics.Histogram b)
              when Array.length b.counts = Array.length counts ->
                (b.counts, b.sum)
            | _ -> (Array.make (Array.length counts) 0, 0.)
          in
          let deltas = Array.mapi (fun i c -> c - bcounts.(i)) counts in
          (* A [Metrics.reset] between the baseline and now makes the
             cumulative counts go backwards; clamp to zero rather than
             report negative windowed counts. *)
          let deltas = Array.map (fun d -> if d < 0 then 0 else d) deltas in
          let count = Array.fold_left ( + ) 0 deltas in
          let delta_sum = Float.max 0. (sum -. bsum) in
          Some
            ( name,
              Whistogram
                {
                  wh_buckets = buckets;
                  wh_counts = deltas;
                  wh_sum = delta_sum;
                  wh_count = count;
                  wh_rate =
                    (if span_s > 0. then float_of_int count /. span_s else 0.);
                  wh_p50 = quantile ~buckets ~counts:deltas 0.50;
                  wh_p95 = quantile ~buckets ~counts:deltas 0.95;
                  wh_p99 = quantile ~buckets ~counts:deltas 0.99;
                } ))
    cur

let summary () =
  Mutex.lock lock;
  let base = oldest_locked () in
  Mutex.unlock lock;
  match base with
  | None -> None
  | Some base ->
      let now = Unix.gettimeofday () in
      let cur = Metrics.snapshot () in
      let span_s = Float.max 0. (now -. base.at) in
      Some { taken_at = now; span_s; values = diff ~span_s base.values cur }

let find s name = List.assoc_opt name s.values

(* Per-tenant cache hit rate over the window, from the
   [compile_cache.tenant.<t>.lookups] / [.hits] counter deltas the
   cache's attribution layer maintains (DESIGN.md §13). *)
let tenant_hit_rates s =
  let prefix = "compile_cache.tenant." in
  let plen = String.length prefix in
  let lookups = Hashtbl.create 8 in
  let hits = Hashtbl.create 8 in
  List.iter
    (fun (name, v) ->
      match v with
      | Wcounter { delta; _ } when String.length name > plen
                                   && String.sub name 0 plen = prefix -> (
          let rest = String.sub name plen (String.length name - plen) in
          match String.rindex_opt rest '.' with
          | Some i ->
              let tenant = String.sub rest 0 i in
              let kind = String.sub rest (i + 1) (String.length rest - i - 1) in
              if kind = "lookups" then Hashtbl.replace lookups tenant delta
              else if kind = "hits" then Hashtbl.replace hits tenant delta
          | None -> ())
      | _ -> ())
    s.values;
  Hashtbl.fold
    (fun tenant lk acc ->
      let h = Option.value ~default:0 (Hashtbl.find_opt hits tenant) in
      let rate = if lk > 0 then float_of_int h /. float_of_int lk else 0. in
      (tenant, rate, lk) :: acc)
    lookups []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
