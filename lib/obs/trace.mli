(** Hierarchical tracing for the analysis pipeline.

    The paper's headline claims are about {e analysis cost}; this module
    attributes that cost. Instrumented code wraps its phases in
    {!with_span}; spans nest per domain (a domain-local stack carries
    the current parent), carry attributes and point events, and land in
    one process-global, mutex-protected collector — so spans recorded
    from {!Cheffp_util.Pool} worker domains interleave safely with the
    coordinator's.

    {b Disabled by default, and free when disabled.} Every entry point
    first reads one atomic flag; when tracing is off, {!with_span} is a
    branch plus the call of [f] — no allocation, no clock read, no lock
    (the zero-allocation claim is asserted by the test suite and the
    bench overhead guard). Hot paths may still guard attribute
    construction behind {!enabled} to avoid building the attribute
    value itself.

    {b Clock.} Timestamps are nanoseconds from a process-global
    monotonized wall clock: raw [Unix.gettimeofday] readings are clamped
    through an atomic high-water mark, so timestamps never decrease —
    across domains included — and parent spans always cover their
    children. *)

type attr = Str of string | Int of int | Float of float | Bool of bool

type kind = Span | Event

type span = {
  id : int;  (** unique, increasing in start order *)
  parent : int;  (** id of the enclosing span, [-1] for roots *)
  name : string;
  domain : int;  (** numeric id of the recording domain *)
  kind : kind;
  start_ns : int64;
  end_ns : int64;  (** equals [start_ns] for events *)
  attrs : (string * attr) list;  (** in addition order *)
}

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Enabling mid-run is safe; spans already in flight on other domains
    simply keep their recorded parents. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a fresh span. The span is
    recorded when [f] returns {e or raises} (the exception is
    re-raised); an escaping exception marks the span with
    [("raised", Bool true)]. When disabled: exactly [f ()]. *)

val add_attr : string -> attr -> unit
(** Attach an attribute to the innermost open span of this domain.
    No-op when disabled or outside any span. *)

val event : ?attrs:(string * attr) list -> string -> unit
(** Record an instant event under the current span. *)

val current : unit -> int
(** Id of this domain's innermost open span, [-1] if none (or when
    disabled). *)

val with_parent : int -> (unit -> 'a) -> 'a
(** [with_parent id f] parents spans opened by [f] {e on this domain}
    under span [id] — the bridge {!Cheffp_util.Pool} uses to nest worker
    spans under the span that issued the parallel batch. [-1] restores
    root parenting. *)

val spans : unit -> span list
(** Everything recorded so far, in completion order (children before
    their parents; sort by [id] for start order). Thread-safe. *)

val reset : unit -> unit
(** Drop all recorded spans. Open spans on other domains still record
    on completion. *)

val take_tree : int -> span list
(** [take_tree root] removes and returns every recorded span of the
    subtree rooted at span id [root], in id (start) order, leaving the
    rest of the collector untouched — the per-request extraction the
    analysis server uses to stream a completed request's spans to its
    client while other requests' trees keep accumulating. Call it after
    the root span has completed (children complete before their
    parents, so a completed root implies a complete tree). *)

val now_ns : unit -> int64
(** The monotonized clock itself (exposed for the bench harness). *)
