(** Sliding-window aggregation over the {!Metrics} registry
    (DESIGN.md §14).

    A rotating ring of epoch baselines — each a full metric snapshot —
    is advanced by a background ticker thread (or by {!tick} directly
    in tests). Queries diff a fresh snapshot against the oldest
    baseline, turning the cumulative registry into last-N-seconds
    rates and bucket-interpolated latency quantiles for [cheffp serve]
    stats.

    The window layer never touches the metric hot paths: it only
    {e reads} the registry, O(#metrics) once per epoch, from its own
    thread. Not started ⇒ no thread, no ring, zero per-observation
    cost — the allocation-free disabled path the rest of [lib/obs]
    guarantees holds trivially. *)

val configure : ?epochs:int -> ?epoch_seconds:float -> unit -> unit
(** Ring geometry: the window covers up to [epochs * epoch_seconds] of
    history (defaults 12 × 5 s). Must be called while the ticker is
    stopped; [Invalid_argument] otherwise, or if [epochs < 2] or
    [epoch_seconds <= 0]. *)

val start : unit -> unit
(** Record an immediate first baseline and spawn the ticker thread.
    Idempotent while running. *)

val stop : unit -> unit
(** Stop and join the ticker, drop every baseline. Idempotent. *)

val active : unit -> bool
(** Whether the ticker is running (single atomic load). *)

val tick : unit -> unit
(** Record one baseline now. The ticker calls this every epoch; tests
    call it directly for deterministic windows. *)

(** {1 Windowed values} *)

type whist = {
  wh_buckets : float array;
  wh_counts : int array;  (** per-bucket observation deltas *)
  wh_sum : float;
  wh_count : int;
  wh_rate : float;  (** observations per second over the window *)
  wh_p50 : float;
  wh_p95 : float;
  wh_p99 : float;  (** bucket-interpolated; [nan] when the window is empty *)
}

type wvalue =
  | Wcounter of { delta : int; rate : float }
  | Wgauge of float  (** gauges are instantaneous: the current value *)
  | Whistogram of whist

type summary = {
  taken_at : float;
  span_s : float;  (** seconds of history the deltas cover *)
  values : (string * wvalue) list;  (** sorted by name *)
}

val summary : unit -> summary option
(** Fresh snapshot diffed against the oldest baseline; [None] until a
    first baseline exists ({!start} records one immediately). Safe from
    any thread while the ticker runs. *)

val find : summary -> string -> wvalue option

val tenant_hit_rates : summary -> (string * float * int) list
(** [(tenant, hit_rate, lookups)] over the window, derived from the
    [compile_cache.tenant.<t>.lookups] / [.hits] counter deltas; sorted
    by tenant. *)

val quantile : buckets:float array -> counts:int array -> float -> float
(** Bucket-interpolated quantile ([q] in [0,1]) over per-bucket counts:
    the continuous rank [q*n] is located in its bucket and interpolated
    linearly between the bucket bounds (lower bound 0 for the first
    bucket; the +inf bucket reports the last finite bound). [nan] when
    [counts] sum to zero. *)
