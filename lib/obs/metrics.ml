type counter = { c : int Atomic.t }
type gauge = { g : float Atomic.t }

(* No separate total: the observation count is derived by summing the
   bucket counters, so a reader can never see a total that disagrees
   with the buckets it was read next to. Each [observe] touches exactly
   one bucket counter, so after any set of concurrent observers joins,
   [histogram_count] equals the number of [observe] calls exactly —
   the domain-safety invariant the pool stress test asserts. *)
type histogram = {
  buckets : float array;  (* upper bounds, strictly increasing *)
  counts : int Atomic.t array;  (* length buckets + 1; last = +inf *)
  sum : float Atomic.t;
}

type metric = Mcounter of counter | Mgauge of gauge | Mhistogram of histogram

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let lock = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let register name make describe =
  Mutex.lock lock;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        m
  in
  Mutex.unlock lock;
  match describe m with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as another kind"
           name)

let counter name =
  register name
    (fun () -> Mcounter { c = Atomic.make 0 })
    (function Mcounter c -> Some c | _ -> None)

let incr c = Atomic.incr c.c
let add c n = ignore (Atomic.fetch_and_add c.c n)
let set_counter c n = Atomic.set c.c n
let counter_value c = Atomic.get c.c

let gauge name =
  register name
    (fun () -> Mgauge { g = Atomic.make 0. })
    (function Mgauge g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.g v
let gauge_value g = Atomic.get g.g

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]

let histogram ?(buckets = default_buckets) name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    buckets;
  register name
    (fun () ->
      Mhistogram
        {
          buckets = Array.copy buckets;
          counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0.;
        })
    (function Mhistogram h -> Some h | _ -> None)

let rec atomic_float_add a x =
  let v = Atomic.get a in
  if not (Atomic.compare_and_set a v (v +. x)) then atomic_float_add a x

let observe h x =
  let n = Array.length h.buckets in
  let rec slot i = if i >= n || x <= h.buckets.(i) then i else slot (i + 1) in
  Atomic.incr h.counts.(slot 0);
  atomic_float_add h.sum x

let histogram_count h =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.counts

let histogram_sum h = Atomic.get h.sum

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : float array; counts : int array; sum : float }

let snapshot () =
  Mutex.lock lock;
  let l =
    Hashtbl.fold
      (fun name m acc ->
        let v =
          match m with
          | Mcounter c -> Counter (Atomic.get c.c)
          | Mgauge g -> Gauge (Atomic.get g.g)
          | Mhistogram h ->
              Histogram
                {
                  buckets = Array.copy h.buckets;
                  counts = Array.map Atomic.get h.counts;
                  sum = Atomic.get h.sum;
                }
        in
        (name, v) :: acc)
      registry []
  in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> compare a b) l

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Mcounter c -> Atomic.set c.c 0
      | Mgauge g -> Atomic.set g.g 0.
      | Mhistogram h ->
          Array.iter (fun c -> Atomic.set c 0) h.counts;
          Atomic.set h.sum 0.)
    registry;
  Mutex.unlock lock
