type counter = { c : int Atomic.t }
type gauge = { g : float Atomic.t }

(* No separate total: the observation count is derived by summing the
   bucket counters, so a reader can never see a total that disagrees
   with the buckets it was read next to. Each [observe] touches exactly
   one bucket counter, so after any set of concurrent observers joins,
   [histogram_count] equals the number of [observe] calls exactly —
   the domain-safety invariant the pool stress test asserts.

   The counters and the sum live together in a [cells] generation that
   is swapped wholesale by [reset]: an [observe] racing a reset lands
   entirely in the old generation (dropped with it) or entirely in the
   new one, so the sum can never disagree with the buckets — the
   epoch-aware reset the reset-under-observe stress test asserts. *)
type cells = {
  counts : int Atomic.t array;  (* length buckets + 1; last = +inf *)
  sum : float Atomic.t;
}

type histogram = {
  buckets : float array;  (* upper bounds, strictly increasing *)
  cells : cells Atomic.t;
}

type metric = Mcounter of counter | Mgauge of gauge | Mhistogram of histogram

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let lock = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let register name make describe =
  Mutex.lock lock;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        m
  in
  Mutex.unlock lock;
  match describe m with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as another kind"
           name)

let counter name =
  register name
    (fun () -> Mcounter { c = Atomic.make 0 })
    (function Mcounter c -> Some c | _ -> None)

let incr c = Atomic.incr c.c
let add c n = ignore (Atomic.fetch_and_add c.c n)
let set_counter c n = Atomic.set c.c n
let counter_value c = Atomic.get c.c

let gauge name =
  register name
    (fun () -> Mgauge { g = Atomic.make 0. })
    (function Mgauge g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.g v
let gauge_value g = Atomic.get g.g

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]

(* Finer steps through the sub-millisecond decades: the server's
   measured request p50s sit between 100 µs and 10 ms, where the decade
   steps of [default_buckets] would collapse every windowed quantile
   onto a bucket edge. 1-2.5-5 per decade keeps any interpolated
   quantile within ~2.5x of the true value. *)
let latency_buckets =
  [|
    1e-6; 2.5e-6; 5e-6; 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3;
    2.5e-3; 5e-3; 1e-2; 2.5e-2; 5e-2; 1e-1; 2.5e-1; 5e-1; 1.; 2.5; 5.; 10.;
  |]

let fresh_cells n =
  { counts = Array.init (n + 1) (fun _ -> Atomic.make 0); sum = Atomic.make 0. }

let histogram ?(buckets = default_buckets) name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    buckets;
  register name
    (fun () ->
      Mhistogram
        {
          buckets = Array.copy buckets;
          cells = Atomic.make (fresh_cells (Array.length buckets));
        })
    (function Mhistogram h -> Some h | _ -> None)

let rec atomic_float_add a x =
  let v = Atomic.get a in
  if not (Atomic.compare_and_set a v (v +. x)) then atomic_float_add a x

let observe h x =
  let n = Array.length h.buckets in
  let rec slot i = if i >= n || x <= h.buckets.(i) then i else slot (i + 1) in
  (* One generation read, then both updates go to the same generation:
     a concurrent [reset] swaps in fresh cells and either drops this
     observation entirely (it went to the retired generation) or keeps
     it entirely — never a bucket increment without its sum. *)
  let cells = Atomic.get h.cells in
  Atomic.incr cells.counts.(slot 0);
  atomic_float_add cells.sum x

let histogram_count h =
  let cells = Atomic.get h.cells in
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 cells.counts

let histogram_sum h = Atomic.get (Atomic.get h.cells).sum

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : float array; counts : int array; sum : float }

let snapshot () =
  Mutex.lock lock;
  let l =
    Hashtbl.fold
      (fun name m acc ->
        let v =
          match m with
          | Mcounter c -> Counter (Atomic.get c.c)
          | Mgauge g -> Gauge (Atomic.get g.g)
          | Mhistogram h ->
              let cells = Atomic.get h.cells in
              Histogram
                {
                  buckets = Array.copy h.buckets;
                  counts = Array.map Atomic.get cells.counts;
                  sum = Atomic.get cells.sum;
                }
        in
        (name, v) :: acc)
      registry []
  in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> compare a b) l

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Mcounter c -> Atomic.set c.c 0
      | Mgauge g -> Atomic.set g.g 0.
      | Mhistogram h ->
          (* Swap in a fresh generation rather than zeroing in place:
             in-place zeroing can interleave with [observe]'s two-step
             update and leave a sum that disagrees with the buckets. *)
          Atomic.set h.cells (fresh_cells (Array.length h.buckets)))
    registry;
  Mutex.unlock lock
