(** Serialization of {!Trace} spans and {!Metrics} snapshots.

    Three formats, matching the three consumers:
    - JSON lines (one object per span/event) for machine analysis and
      the [@obs-smoke] validator;
    - an indented span tree with durations for human reading
      ([--trace-pretty]);
    - a flat [key value] dump of the metrics registry ([--metrics]);
    - Prometheus text exposition for scrapers polling a serving daemon
      ({!prometheus}, DESIGN.md §14). *)

val span_to_json : Trace.span -> string
(** One span as a single-line JSON object:
    [{"kind":"span","id":..,"parent":..,"domain":..,"name":"..",
    "start_ns":..,"end_ns":..,"dur_ns":..,"attrs":{..}}]. *)

val write_jsonl : path:string -> Trace.span list -> unit
(** One {!span_to_json} line per span, in start ([id]) order. *)

val pretty : Trace.span list -> string
(** Indented tree (children under parents, start order, events marked
    [*]), with per-span wall milliseconds and attributes. *)

val metrics_dump : ?snapshot:(string * Metrics.value) list -> unit -> string
(** Flat [key value] lines, sorted by key. Histograms expand to
    [name.count], [name.sum], [name.mean] and cumulative [name.le.*]
    lines. [snapshot] defaults to {!Metrics.snapshot}[ ()]. *)

val prometheus : ?snapshot:(string * Metrics.value) list -> unit -> string
(** The same registry in Prometheus text exposition format. Dotted §9
    names map to a [cheffp_]-prefixed underscore name; dynamic name
    components ([compile_cache.tenant.<t>.*], [pool.worker.<n>.tasks],
    [pool.shared.worker.<n>.tasks]) become [tenant]/[worker] labels
    with backslash/quote/newline escaping; counters gain [_total];
    histograms expand to cumulative [_bucket{le="..."}] (including
    [+Inf]), [_sum] and [_count]; each family is announced by exactly
    one [# TYPE] line. *)
