(* Tail-based trace retention (DESIGN.md §14).

   The server offers every completed [server.request] span subtree
   here; the ring keeps only the interesting tail — the K slowest
   trees plus a bounded ring of every error-outcome tree — so a
   long-lived daemon retains the traces worth looking at without
   keeping the firehose.

   Mutex-light: the common case under steady traffic is a healthy
   request faster than the current K-th slowest, which is rejected by
   one atomic threshold load without ever taking the lock. Only
   admissions (rare once the ring is warm) and queries lock. *)

type entry = {
  e_seq : int;  (* admission order, process-global *)
  e_root : Trace.span;
  e_spans : Trace.span list;  (* whole subtree, id (start) order *)
  e_dur_ns : int64;
  e_err : bool;
}

type state = {
  mutable slow : entry array;  (* unsorted; length <= slow_cap *)
  mutable slow_cap : int;
  mutable errors : entry array;  (* ring, oldest first once full *)
  mutable err_cap : int;
  mutable err_head : int;  (* next slot to overwrite *)
  mutable err_count : int;
  mutable seq : int;
}

let lock = Mutex.create ()

let state =
  {
    slow = [||];
    slow_cap = 16;
    errors = [||];
    err_cap = 64;
    err_head = 0;
    err_count = 0;
    seq = 0;
  }

(* Fast-path admission threshold: the duration of the K-th slowest
   retained tree once the slow ring is full, else -1 (admit all).
   Advisory — re-checked under the lock — so a stale read only costs a
   lock round-trip or skips a tree that a concurrent admission already
   beat. *)
let threshold_ns = Atomic.make (-1L)

let clear_locked () =
  state.slow <- [||];
  state.errors <- [||];
  state.err_head <- 0;
  state.err_count <- 0;
  Atomic.set threshold_ns (-1L)

let configure ?(slowest = 16) ?(errors = 64) () =
  if slowest < 1 then invalid_arg "Tail.configure: slowest must be >= 1";
  if errors < 1 then invalid_arg "Tail.configure: errors must be >= 1";
  Mutex.lock lock;
  state.slow_cap <- slowest;
  state.err_cap <- errors;
  clear_locked ();
  Mutex.unlock lock

let clear () =
  Mutex.lock lock;
  clear_locked ();
  Mutex.unlock lock

let capacity () = Mutex.protect lock (fun () -> (state.slow_cap, state.err_cap))

let dur_of root = Int64.sub root.Trace.end_ns root.Trace.start_ns

let min_index a =
  let mi = ref 0 in
  Array.iteri (fun i e -> if e.e_dur_ns < a.(!mi).e_dur_ns then mi := i) a;
  !mi

let admit_slow_locked entry =
  let n = Array.length state.slow in
  if n < state.slow_cap then begin
    state.slow <- Array.append state.slow [| entry |];
    if Array.length state.slow = state.slow_cap then
      Atomic.set threshold_ns state.slow.(min_index state.slow).e_dur_ns
  end
  else begin
    let mi = min_index state.slow in
    if entry.e_dur_ns > state.slow.(mi).e_dur_ns then begin
      state.slow.(mi) <- entry;
      Atomic.set threshold_ns state.slow.(min_index state.slow).e_dur_ns
    end
  end

let admit_error_locked entry =
  if Array.length state.errors < state.err_cap then
    state.errors <- Array.append state.errors [| entry |]
  else begin
    state.errors.(state.err_head) <- entry;
    state.err_head <- (state.err_head + 1) mod state.err_cap
  end;
  state.err_count <- state.err_count + 1

let offer ~err spans =
  match spans with
  | [] -> ()
  | first :: _ ->
      (* take_tree returns id order, so the root is first; be robust to
         arbitrary order anyway. *)
      let root =
        List.fold_left
          (fun acc s -> if s.Trace.id < acc.Trace.id then s else acc)
          first spans
      in
      let dur = dur_of root in
      (* Lock-free rejection: healthy and not slower than the K-th
         slowest retained tree. *)
      if err || dur > Atomic.get threshold_ns then begin
        Mutex.lock lock;
        let entry =
          { e_seq = state.seq; e_root = root; e_spans = spans;
            e_dur_ns = dur; e_err = err }
        in
        state.seq <- state.seq + 1;
        admit_slow_locked entry;
        if err then admit_error_locked entry;
        Mutex.unlock lock
      end

let slowest () =
  Mutex.lock lock;
  let l = Array.to_list state.slow in
  Mutex.unlock lock;
  List.sort
    (fun a b ->
      match Int64.compare b.e_dur_ns a.e_dur_ns with
      | 0 -> compare a.e_seq b.e_seq
      | c -> c)
    l

let errors () =
  Mutex.lock lock;
  let n = Array.length state.errors in
  let l =
    (* oldest-to-newest: start at err_head when the ring has wrapped *)
    List.init n (fun i ->
        if n < state.err_cap then state.errors.(i)
        else state.errors.((state.err_head + i) mod n))
  in
  Mutex.unlock lock;
  l

let error_count () = Mutex.protect lock (fun () -> state.err_count)
