let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.17g round-trips doubles; JSON has no infinities, so clamp the
   non-finite cases to strings a reader can still recognize. *)
let json_float f =
  if Float.is_finite f then Printf.sprintf "%.17g" f
  else Printf.sprintf "\"%s\"" (Float.to_string f)

let attr_to_json = function
  | Trace.Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Trace.Int n -> string_of_int n
  | Trace.Float f -> json_float f
  | Trace.Bool b -> string_of_bool b

let span_to_json (s : Trace.span) =
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"kind\":\"%s\",\"id\":%d,\"parent\":%d,\"domain\":%d,\"name\":\"%s\",\"start_ns\":%Ld,\"end_ns\":%Ld,\"dur_ns\":%Ld"
       (match s.Trace.kind with Trace.Span -> "span" | Trace.Event -> "event")
       s.Trace.id s.Trace.parent s.Trace.domain
       (json_escape s.Trace.name)
       s.Trace.start_ns s.Trace.end_ns
       (Int64.sub s.Trace.end_ns s.Trace.start_ns));
  (match s.Trace.attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string b ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":%s" (json_escape k) (attr_to_json v)))
        attrs;
      Buffer.add_char b '}');
  Buffer.add_char b '}';
  Buffer.contents b

let by_start spans =
  List.sort (fun a b -> compare a.Trace.id b.Trace.id) spans

let write_jsonl ~path spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun s ->
          output_string oc (span_to_json s);
          output_char oc '\n')
        (by_start spans))

let attr_to_string = function
  | Trace.Str s -> s
  | Trace.Int n -> string_of_int n
  | Trace.Float f -> Printf.sprintf "%.6g" f
  | Trace.Bool b -> string_of_bool b

let pretty spans =
  let spans = by_start spans in
  let children : (int, Trace.span list ref) Hashtbl.t = Hashtbl.create 64 in
  let push parent s =
    match Hashtbl.find_opt children parent with
    | Some l -> l := s :: !l
    | None -> Hashtbl.replace children parent (ref [ s ])
  in
  List.iter (fun s -> push s.Trace.parent s) spans;
  let b = Buffer.create 1024 in
  let rec emit indent (s : Trace.span) =
    let dur_ms =
      Int64.to_float (Int64.sub s.Trace.end_ns s.Trace.start_ns) /. 1e6
    in
    let attrs =
      match s.Trace.attrs with
      | [] -> ""
      | l ->
          "  ["
          ^ String.concat ", "
              (List.map (fun (k, v) -> k ^ "=" ^ attr_to_string v) l)
          ^ "]"
    in
    (match s.Trace.kind with
    | Trace.Span ->
        Buffer.add_string b
          (Printf.sprintf "%s%-*s %8.3f ms%s\n" indent
             (max 1 (32 - String.length indent))
             s.Trace.name dur_ms attrs)
    | Trace.Event ->
        Buffer.add_string b
          (Printf.sprintf "%s* %s%s\n" indent s.Trace.name attrs));
    match Hashtbl.find_opt children s.Trace.id with
    | Some l -> List.iter (emit (indent ^ "  ")) (List.rev !l)
    | None -> ()
  in
  (match Hashtbl.find_opt children (-1) with
  | Some roots -> List.iter (emit "") (List.rev !roots)
  | None -> ());
  (* Orphans (parent finished on another run or trace was reset
     mid-span): still print them so nothing silently disappears. *)
  let known = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace known s.Trace.id ()) spans;
  List.iter
    (fun s ->
      if s.Trace.parent <> -1 && not (Hashtbl.mem known s.Trace.parent) then
        emit "? " s)
    spans;
  Buffer.contents b

(* Prometheus text exposition (DESIGN.md §14).

   Mapping from the dotted §9 naming convention:
   - every name gains the [cheffp_] namespace prefix; dots (and any
     character outside [a-zA-Z0-9_]) become underscores;
   - dynamic name components become labels:
       compile_cache.tenant.<t>.lookups -> cheffp_compile_cache_tenant_lookups_total{tenant="<t>"}
       pool.worker.<n>.tasks            -> cheffp_pool_worker_tasks_total{worker="<n>"}
       pool.shared.worker.<n>.tasks     -> cheffp_pool_shared_worker_tasks_total{worker="<n>"}
   - counters gain the [_total] suffix; histograms expand to
     [_bucket{le="..."}] (cumulative, with the +Inf bucket), [_sum]
     and [_count] per the exposition format. *)

let prom_name s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    s

(* Label values escape backslash, double-quote and newline. *)
let prom_label_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_float f =
  if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else Printf.sprintf "%.17g" f

(* Split one dotted registry name into a Prometheus family (without
   kind suffix) and its labels, per the mapping above. *)
let prom_family name =
  let segs = String.split_on_char '.' name in
  let mk family labels = (prom_name ("cheffp_" ^ family), labels) in
  match segs with
  | "compile_cache" :: "tenant" :: rest when List.length rest >= 2 ->
      let rec split_last = function
        | [ last ] -> ([], last)
        | x :: tl ->
            let mid, last = split_last tl in
            (x :: mid, last)
        | [] -> assert false
      in
      let tenant_segs, metric = split_last rest in
      mk
        ("compile_cache_tenant_" ^ metric)
        [ ("tenant", String.concat "." tenant_segs) ]
  | [ "pool"; "worker"; n; metric ] ->
      mk ("pool_worker_" ^ metric) [ ("worker", n) ]
  | [ "pool"; "shared"; "worker"; n; metric ] ->
      mk ("pool_shared_worker_" ^ metric) [ ("worker", n) ]
  | _ -> mk (String.concat "_" segs) []

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (prom_name k) (prom_label_escape v))
             labels)
      ^ "}"

let prometheus ?snapshot () =
  let snapshot =
    match snapshot with Some s -> s | None -> Metrics.snapshot ()
  in
  (* Group samples into families so each family gets exactly one
     # TYPE line even when label values (tenants, workers) split one
     family across several registry names. *)
  let order = ref [] in
  let families : (string, string * (string * string) list * Metrics.value) Hashtbl.t
      =
    Hashtbl.create 64
  in
  List.iter
    (fun (name, v) ->
      let family, labels = prom_family name in
      let typ, family =
        match v with
        | Metrics.Counter _ -> ("counter", family ^ "_total")
        | Metrics.Gauge _ -> ("gauge", family)
        | Metrics.Histogram _ -> ("histogram", family)
      in
      if not (Hashtbl.mem families family) then order := family :: !order;
      Hashtbl.add families family (typ, labels, v))
    snapshot;
  let b = Buffer.create 4096 in
  List.iter
    (fun family ->
      let samples = List.rev (Hashtbl.find_all families family) in
      (match samples with
      | (typ, _, _) :: _ ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" family typ)
      | [] -> ());
      List.iter
        (fun (_, labels, v) ->
          match v with
          | Metrics.Counter n ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %d\n" family (prom_labels labels) n)
          | Metrics.Gauge g ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" family (prom_labels labels)
                   (prom_float g))
          | Metrics.Histogram { buckets; counts; sum } ->
              let total = Array.fold_left ( + ) 0 counts in
              let cum = ref 0 in
              Array.iteri
                (fun i c ->
                  cum := !cum + c;
                  Buffer.add_string b
                    (Printf.sprintf "%s_bucket%s %d\n" family
                       (prom_labels (labels @ [ ("le", prom_float buckets.(i)) ]))
                       !cum))
                (Array.sub counts 0 (Array.length buckets));
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" family
                   (prom_labels (labels @ [ ("le", "+Inf") ]))
                   total);
              Buffer.add_string b
                (Printf.sprintf "%s_sum%s %s\n" family (prom_labels labels)
                   (prom_float sum));
              Buffer.add_string b
                (Printf.sprintf "%s_count%s %d\n" family (prom_labels labels)
                   total))
        samples)
    (List.rev !order);
  Buffer.contents b

let metrics_dump ?snapshot () =
  let snapshot =
    match snapshot with Some s -> s | None -> Metrics.snapshot ()
  in
  let b = Buffer.create 1024 in
  let line k v = Buffer.add_string b (Printf.sprintf "%s %s\n" k v) in
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter n -> line name (string_of_int n)
      | Metrics.Gauge g -> line name (Printf.sprintf "%.17g" g)
      | Metrics.Histogram { buckets; counts; sum } ->
          let total = Array.fold_left ( + ) 0 counts in
          line (name ^ ".count") (string_of_int total);
          line (name ^ ".sum") (Printf.sprintf "%.9g" sum);
          line (name ^ ".mean")
            (Printf.sprintf "%.9g"
               (if total > 0 then sum /. float_of_int total else 0.));
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              line
                (Printf.sprintf "%s.le.%g" name buckets.(i))
                (string_of_int !cum))
            (Array.sub counts 0 (Array.length buckets));
          line (name ^ ".le.inf") (string_of_int total))
    snapshot;
  Buffer.contents b
