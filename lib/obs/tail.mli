(** Tail-based trace retention (DESIGN.md §14).

    The analysis server offers every completed [server.request] span
    subtree here; only the interesting tail is retained — the K
    slowest trees, plus a bounded ring of {e every} error-outcome
    tree — queryable through the [traces] protocol request without
    restarting the daemon.

    Mutex-light: a healthy request that is not slower than the current
    K-th slowest retained tree is rejected by a single atomic load,
    without taking the lock. Only admissions and queries lock.
    Domain-safe; spans are immutable so retained trees are never
    torn. *)

type entry = {
  e_seq : int;  (** admission order, process-global *)
  e_root : Trace.span;  (** the tree's root span *)
  e_spans : Trace.span list;  (** the whole subtree, id (start) order *)
  e_dur_ns : int64;  (** root duration *)
  e_err : bool;
}

val configure : ?slowest:int -> ?errors:int -> unit -> unit
(** Set ring capacities (defaults 16 slowest / 64 errors) and clear
    all retained entries. [Invalid_argument] if either is < 1. *)

val offer : err:bool -> Trace.span list -> unit
(** Offer one completed subtree (as returned by {!Trace.take_tree}).
    Retained when [err] is set, when the slowest-ring has room, or
    when the root's duration beats the current K-th slowest; dropped
    otherwise with one atomic load. Empty lists are ignored. *)

val slowest : unit -> entry list
(** The retained slowest trees, slowest first (admission order breaks
    ties). At most the configured capacity. *)

val errors : unit -> entry list
(** The retained error trees, oldest first. The ring keeps the most
    recent [errors] capacity of them. *)

val error_count : unit -> int
(** Total error trees ever admitted (not capped by the ring), so a
    scraper can detect error loss. *)

val capacity : unit -> int * int
(** Current [(slowest, errors)] capacities. *)

val clear : unit -> unit
(** Drop every retained entry (capacities survive). *)
