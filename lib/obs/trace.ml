type attr = Str of string | Int of int | Float of float | Bool of bool

type kind = Span | Event

type span = {
  id : int;
  parent : int;
  name : string;
  domain : int;
  kind : kind;
  start_ns : int64;
  end_ns : int64;
  attrs : (string * attr) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Monotonized wall clock: gettimeofday readings are clamped through an
   atomic high-water mark so the reported time never decreases, even
   when read from several domains (repeated reads within the clock's
   resolution collapse onto the same tick). *)
let clock_floor = Atomic.make 0L

let now_ns () =
  let t = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let rec raise_floor () =
    let f = Atomic.get clock_floor in
    if Int64.compare t f <= 0 then f
    else if Atomic.compare_and_set clock_floor f t then t
    else raise_floor ()
  in
  raise_floor ()

(* Collector: finished spans and events, newest first. One mutex; a
   record is appended once per span completion, which is cheap next to
   the work the span measures. *)
let lock = Mutex.create ()
let recorded : span list ref = ref []
let next_id = Atomic.make 0

let record s =
  Mutex.lock lock;
  recorded := s :: !recorded;
  Mutex.unlock lock

let spans () =
  Mutex.lock lock;
  let l = !recorded in
  Mutex.unlock lock;
  List.rev l

let reset () =
  Mutex.lock lock;
  recorded := [];
  Mutex.unlock lock

(* Remove and return the completed subtree rooted at [root]. Ids are
   assigned at span open and children open after their parents, so
   within a tree parent ids are always smaller than child ids: one
   ascending pass over the collector classifies every span. The server
   uses this to stream a finished request's spans back to its client
   without disturbing concurrent requests' trees. *)
let take_tree root =
  Mutex.lock lock;
  let sorted = List.sort (fun a b -> compare a.id b.id) !recorded in
  let in_tree = Hashtbl.create 32 in
  Hashtbl.replace in_tree root ();
  let mine, rest =
    List.partition
      (fun s ->
        let mem = s.id = root || Hashtbl.mem in_tree s.parent in
        if mem then Hashtbl.replace in_tree s.id ();
        mem)
      sorted
  in
  recorded := List.rev rest;
  Mutex.unlock lock;
  mine

(* Per-domain stack of open spans. A frame with [fname = ""] is a
   foreign parent installed by [with_parent]: it contributes its id for
   parenting but is never recorded. *)
type frame = {
  fid : int;
  fname : string;
  fstart : int64;
  fparent : int;
  mutable fattrs : (string * attr) list;
}

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let current () =
  if not (Atomic.get enabled_flag) then -1
  else
    match !(Domain.DLS.get stack_key) with
    | f :: _ -> f.fid
    | [] -> -1

let add_attr k v =
  if Atomic.get enabled_flag then
    match !(Domain.DLS.get stack_key) with
    | f :: _ when f.fname <> "" -> f.fattrs <- (k, v) :: f.fattrs
    | _ -> ()

let domain_id () = (Domain.self () :> int)

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with p :: _ -> p.fid | [] -> -1 in
    let frame =
      {
        fid = Atomic.fetch_and_add next_id 1;
        fname = name;
        fstart = now_ns ();
        fparent = parent;
        fattrs = [];
      }
    in
    stack := frame :: !stack;
    let finish () =
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      record
        {
          id = frame.fid;
          parent = frame.fparent;
          name = frame.fname;
          domain = domain_id ();
          kind = Span;
          start_ns = frame.fstart;
          end_ns = now_ns ();
          attrs = List.rev frame.fattrs;
        }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        frame.fattrs <- ("raised", Bool true) :: frame.fattrs;
        finish ();
        raise e
  end

let with_parent parent f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let frame =
      { fid = parent; fname = ""; fstart = 0L; fparent = -1; fattrs = [] }
    in
    stack := frame :: !stack;
    Fun.protect
      ~finally:(fun () ->
        match !stack with _ :: rest -> stack := rest | [] -> ())
      f
  end

let event ?(attrs = []) name =
  if Atomic.get enabled_flag then begin
    let t = now_ns () in
    record
      {
        id = Atomic.fetch_and_add next_id 1;
        parent = current ();
        name;
        domain = domain_id ();
        kind = Event;
        start_ns = t;
        end_ns = t;
        attrs;
      }
  end
