(** Process-global registry of named counters, gauges and fixed-bucket
    histograms.

    Naming convention (DESIGN.md §9): dotted lowercase paths,
    [<subsystem>.<detail>...<metric>] — e.g. [compile_cache.hits],
    [pool.worker.0.tasks], [adapt.tape_peak_bytes],
    [pool.busy_seconds]. Registration is get-or-create and
    mutex-protected; updates are lock-free atomics, safe from
    {!Cheffp_util.Pool} worker domains.

    Counters and gauges are {e always live}: they cost one atomic
    operation per update and several subsystems read them back as their
    statistics ({!Cheffp_ir.Compile_cache.stats}). The {!enabled} flag
    gates only the {e timed} observations — instrumentation sites that
    would need a clock read (pool queue-wait/busy histograms) check it
    first, so the flags-off path never touches the clock. *)

type counter
type gauge
type histogram

val enabled : unit -> bool
(** Whether timed observations should be taken (default [false]). *)

val set_enabled : bool -> unit

(** {1 Counters} *)

val counter : string -> counter
(** Get or create. Raises [Invalid_argument] if the name is already
    registered as a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set_counter : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

val default_buckets : float array
(** Seconds-oriented: 1e-6 … 10, decade steps. *)

val latency_buckets : float array
(** Seconds-oriented, 1-2.5-5 per decade from 1 µs to 10 s — fine
    enough that bucket-interpolated windowed quantiles
    ({!Cheffp_obs.Window}) resolve the server's sub-millisecond request
    latencies, which the decade steps of {!default_buckets} cannot. *)

val histogram : ?buckets:float array -> string -> histogram
(** [buckets] are the inclusive upper bounds of the finite buckets (must
    be strictly increasing); an implicit +inf bucket catches the rest.
    [buckets] is ignored when the histogram already exists. *)

val observe : histogram -> float -> unit
(** One atomic bucket increment plus a CAS-loop sum update — safe from
    any number of concurrent domains (the pool's worker domains and the
    server's request tasks observe into the same histograms). Both
    updates land in the same internal generation, so an [observe]
    racing {!reset} is either kept whole or dropped whole — the sum
    never disagrees with the buckets. *)

val histogram_count : histogram -> int
(** Number of observations, derived by summing the bucket counters
    (there is no separate total, so the count can never disagree with
    the buckets): once concurrent observers have joined,
    [histogram_count] equals the number of [observe] calls exactly. *)

val histogram_sum : histogram -> float

(** {1 Registry} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : float array; counts : int array; sum : float }
      (** [counts] has one more slot than [buckets] (the +inf bucket);
          counts are per-bucket, not cumulative. *)

val snapshot : unit -> (string * value) list
(** Current value of every registered metric, sorted by name. *)

val reset : unit -> unit
(** Zero every registered metric (registrations survive). Epoch-aware
    for histograms: each histogram's counters-plus-sum generation is
    swapped wholesale, so a concurrent {!observe} either lands entirely
    in the retired generation (and is dropped with it) or entirely in
    the fresh one — never a torn half-observation. *)
