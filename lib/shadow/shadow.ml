(* A lockstep fork of [Cheffp_ir.Interp]: the low lane reproduces the
   interpreter's value semantics statement for statement (same rounding
   points, same widening rules, same argument preparation), and every
   float additionally carries a double-double shadow. Any change to
   interp.ml's value semantics must be mirrored here — the test suite
   pins the lanes together with bit-identity checks over the fuzzer. *)

open Cheffp_ir.Ast
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Builtins = Cheffp_ir.Builtins
module Interp = Cheffp_ir.Interp
module Growable = Cheffp_util.Growable
module Trace = Cheffp_obs.Trace

let fail fmt = Format.kasprintf (fun s -> raise (Interp.Runtime_error s)) fmt

type measurement = {
  name : string;
  low : float;
  shadow : Dd.t;
  abs_error : float;
  rel_error : float;
}

type result = {
  ret : measurement option;
  ret_int : int option;
  outs : measurement list;
  divergence : (string * float) list;
  branch_hash : int;
}

type dd_impl = Dd.t array -> Dd.t

(* ------------------------------------------------------------------ *)
(* Shadow implementations of the default builtins.  Transcendentals
   use first-order derivative correction f(hi) + f'(hi)·lo: the result
   is accurate to ~1 ulp of binary64 — far below any low-lane rounding
   error we measure against, but not full double-double accuracy
   (DESIGN.md §10 "known gaps"). *)

let lift1 f f' = fun (args : Dd.t array) ->
  let x = args.(0) in
  if Float.is_finite x.Dd.hi && Float.is_finite x.Dd.lo then
    Dd.add_float (Dd.of_float (f x.Dd.hi)) (f' x.Dd.hi *. x.Dd.lo)
  else Dd.of_float (f (Dd.to_float x))

let dd_pow (args : Dd.t array) =
  let a = args.(0) and b = args.(1) in
  let p = a.Dd.hi ** b.Dd.hi in
  if
    a.Dd.hi > 0.0 && Float.is_finite p
    && Float.is_finite a.Dd.lo
    && Float.is_finite b.Dd.lo
  then
    (* d(a^b)/da = b·a^(b-1),  d(a^b)/db = a^b·ln a *)
    let da = b.Dd.hi *. (a.Dd.hi ** (b.Dd.hi -. 1.0)) *. a.Dd.lo in
    let db = p *. Float.log a.Dd.hi *. b.Dd.lo in
    Dd.add_float (Dd.of_float p) (da +. db)
  else Dd.of_float p

let default_dd_builtins : (string * dd_impl) list =
  [
    ("sin", lift1 sin cos);
    ("cos", lift1 cos (fun x -> -.sin x));
    ("tan", lift1 tan (fun x -> let t = tan x in 1.0 +. (t *. t)));
    ("exp", lift1 exp exp);
    ("log", lift1 log (fun x -> 1.0 /. x));
    ("log2", lift1 (fun x -> log x /. log 2.) (fun x -> 1.0 /. (x *. log 2.)));
    ("log10", lift1 log10 (fun x -> 1.0 /. (x *. log 10.)));
    ("tanh", lift1 tanh (fun x -> let t = tanh x in 1.0 -. (t *. t)));
    ("atan", lift1 atan (fun x -> 1.0 /. (1.0 +. (x *. x))));
    ("sqrt", fun a -> Dd.sqrt a.(0));
    ("fabs", fun a -> Dd.abs a.(0));
    ("floor", fun a -> Dd.floor a.(0));
    ("ceil", fun a -> Dd.ceil a.(0));
    ("sign", fun a -> Dd.of_float (Dd.sign a.(0)));
    ("pow", dd_pow);
    ("fma", fun a -> Dd.add (Dd.mul a.(0) a.(1)) a.(2));
    ("fmin", fun a -> if Dd.compare a.(0) a.(1) <= 0 then a.(0) else a.(1));
    ("fmax", fun a -> if Dd.compare a.(0) a.(1) >= 0 then a.(0) else a.(1));
    (* The reference is real-valued execution: explicit narrowing casts
       are rounding operations, so the shadow lane passes through. *)
    ("castf32", fun a -> a.(0));
    ("castf16", fun a -> a.(0));
    ("itof", fun a -> a.(0));
    ("select", fun a -> a.(0) (* replaced in eval: needs the condition *));
  ]

(* ------------------------------------------------------------------ *)
(* Run-time environment: interp.ml's cells, each float widened with a
   shadow component. *)

type fcell = { mutable f : float; fmt : Fp.format; mutable d : Dd.t }
type icell = { mutable i : int }
type farr = { a : float array; afmt : Fp.format; da : Dd.t array }
type slot = Sf of fcell | Si of icell | Sfa of farr | Sia of int array

module Scope = struct
  type t = { mutable frames : (string, slot) Hashtbl.t list }

  let create () = { frames = [ Hashtbl.create 16 ] }
  let push t = t.frames <- Hashtbl.create 8 :: t.frames

  let pop t =
    match t.frames with
    | _ :: (_ :: _ as rest) -> t.frames <- rest
    | _ -> assert false

  let find t name =
    let rec go = function
      | [] -> fail "undeclared variable %S" name
      | frame :: rest -> (
          match Hashtbl.find_opt frame name with
          | Some s -> s
          | None -> go rest)
    in
    go t.frames

  let declare t name slot =
    match t.frames with
    | frame :: _ -> Hashtbl.replace frame name slot
    | [] -> assert false
end

type state = {
  prog : program;
  builtins : Builtins.t;
  dd_builtins : (string, dd_impl) Hashtbl.t;
  config : Config.t;
  mode : Config.rounding_mode;
  fstack : Growable.Float.t;
  dstack : Dd.t Growable.t;
  istack : int Growable.t;
  divergence : (string, float) Hashtbl.t;
  mutable branch_hash : int;
  mutable degraded : bool;
  mutable fuel : int; (* negative = unlimited *)
}

exception Return_exn of (Builtins.value * Dd.t) option

type ev = VI of int | VF of float * Fp.format * Dd.t

let wider a b = if Fp.bits a >= Fp.bits b then a else b

let hash_decision st n =
  (* order-sensitive mixing; collisions only weaken a test heuristic *)
  st.branch_hash <- (st.branch_hash * 31) + n land max_int

let hash_float_decision st x = hash_decision st (Hashtbl.hash x)

let record_divergence st name low dd =
  let gap = Float.abs (low -. Dd.to_float dd) in
  let gap = if Float.is_nan gap then 0.0 else gap in
  match Hashtbl.find_opt st.divergence name with
  | Some g when g >= gap -> ()
  | _ -> Hashtbl.replace st.divergence name gap

let float_binop st op a fa da b fb db =
  let fmt = wider fa fb in
  let raw =
    match op with
    | Add -> a +. b
    | Sub -> a -. b
    | Mul -> a *. b
    | Div -> a /. b
    | Mod -> fail "%% applied to floats"
    | Eq | Ne | Lt | Le | Gt | Ge | And | Or -> assert false
  in
  let dd =
    match op with
    | Add -> Dd.add da db
    | Sub -> Dd.sub da db
    | Mul -> Dd.mul da db
    | Div -> Dd.div da db
    | _ -> assert false
  in
  match st.mode with
  | Config.Source -> VF (Fp.round fmt raw, fmt, dd)
  | Config.Extended -> VF (raw, Fp.F64, dd)

let bool_of b = if b then 1 else 0

let rec eval st scope e : ev =
  match e with
  | Fconst x -> VF (x, Fp.F64, Dd.of_float x)
  | Iconst n -> VI n
  | Var v -> (
      match Scope.find scope v with
      | Sf c -> VF (c.f, c.fmt, c.d)
      | Si c -> VI c.i
      | Sfa _ | Sia _ -> fail "array %S used as a scalar" v)
  | Idx (a, i) -> (
      let i = eval_int st scope i in
      match Scope.find scope a with
      | Sfa { a = arr; afmt = fmt; da } ->
          if i < 0 || i >= Array.length arr then
            fail "index %d out of bounds for %S (length %d)" i a
              (Array.length arr);
          VF (arr.(i), fmt, da.(i))
      | Sia arr ->
          if i < 0 || i >= Array.length arr then
            fail "index %d out of bounds for %S (length %d)" i a
              (Array.length arr);
          VI arr.(i)
      | Sf _ | Si _ -> fail "scalar %S indexed as an array" a)
  | Unop (Neg, e) -> (
      match eval st scope e with
      | VI n -> VI (-n)
      | VF (x, fmt, d) -> VF (-.x, fmt, Dd.neg d))
  | Unop (Not, e) -> VI (bool_of (eval_int st scope e = 0))
  | Binop (op, ea, eb) -> (
      let va = eval st scope ea in
      let vb = eval st scope eb in
      match (op, va, vb) with
      | (Add | Sub | Mul | Div | Mod), VI a, VI b -> (
          match op with
          | Add -> VI (a + b)
          | Sub -> VI (a - b)
          | Mul -> VI (a * b)
          | Div ->
              if b = 0 then fail "integer division by zero";
              VI (a / b)
          | Mod ->
              if b = 0 then fail "integer modulo by zero";
              VI (a mod b)
          | _ -> assert false)
      | (Add | Sub | Mul | Div), VF (a, fa, da), VF (b, fb, db) ->
          float_binop st op a fa da b fb db
      | (Eq | Ne | Lt | Le | Gt | Ge), VI a, VI b ->
          VI
            (bool_of
               (match op with
               | Eq -> a = b
               | Ne -> a <> b
               | Lt -> a < b
               | Le -> a <= b
               | Gt -> a > b
               | Ge -> a >= b
               | _ -> assert false))
      | (Eq | Ne | Lt | Le | Gt | Ge), VF (a, _, _), VF (b, _, _) ->
          (* decided by the low lane, like every discrete choice *)
          VI
            (bool_of
               (match op with
               | Eq -> a = b
               | Ne -> a <> b
               | Lt -> a < b
               | Le -> a <= b
               | Gt -> a > b
               | Ge -> a >= b
               | _ -> assert false))
      | (And | Or), VI a, VI b ->
          VI
            (bool_of
               (match op with
               | And -> a <> 0 && b <> 0
               | Or -> a <> 0 || b <> 0
               | _ -> assert false))
      | _ ->
          fail "kind mismatch in %s"
            (Cheffp_ir.Pp.expr_to_string (Binop (op, ea, eb))))
  | Call (name, args) -> (
      match Builtins.find st.builtins name with
      | Some (_, impl) ->
          let evs = List.map (eval st scope) args in
          let widest =
            List.fold_left
              (fun acc ev ->
                match ev with VF (_, f, _) -> wider acc f | VI _ -> acc)
              (match st.mode with
              | Config.Source -> Fp.F16
              | Config.Extended -> Fp.F64)
              evs
          in
          let widest =
            match
              List.exists (function VF _ -> true | VI _ -> false) evs
            with
            | true -> widest
            | false -> Fp.F64
          in
          let vs =
            List.map
              (function VI n -> Builtins.I n | VF (x, _, _) -> Builtins.F x)
              evs
          in
          (match impl (Array.of_list vs) with
          | Builtins.I n ->
              (* ftoi and friends: the discrete result comes from the low
                 lane and is a decision worth fingerprinting. *)
              hash_decision st n;
              VI n
          | Builtins.F x ->
              let dd = dd_call st name evs vs in
              (match name with
              | "sign" | "floor" | "ceil" -> hash_float_decision st x
              | "fmin" | "fmax" -> (
                  match vs with
                  | [ Builtins.F a; Builtins.F _ ] ->
                      hash_decision st (bool_of (x = a))
                  | _ -> ())
              | _ -> ());
              (match st.mode with
              | Config.Source -> VF (Fp.round widest x, widest, dd)
              | Config.Extended -> VF (x, Fp.F64, dd)))
      | None -> (
          let f = func_exn st.prog name in
          match call_func st scope f args with
          | Some (Builtins.I n, _) -> VI n
          | Some (Builtins.F x, dd) -> VF (x, Fp.F64, dd)
          | None -> fail "void function %S used in an expression" name))

and dd_call st name evs vs =
  match name with
  | "select" -> (
      match evs with
      | [ cond; _; _ ] ->
          let c = match cond with VI n -> n | VF _ -> fail "select: int" in
          hash_decision st (bool_of (c <> 0));
          let pick = if c <> 0 then List.nth evs 1 else List.nth evs 2 in
          (match pick with
          | VF (_, _, d) -> d
          | VI n -> Dd.of_int n)
      | _ -> fail "select expects 3 arguments")
  | _ -> (
      let dd_args =
        Array.of_list
          (List.map
             (function VF (_, _, d) -> d | VI n -> Dd.of_int n)
             evs)
      in
      match Hashtbl.find_opt st.dd_builtins name with
      | Some f -> f dd_args
      | None ->
          (* Unknown (user-registered / approximate) builtin: degrade to
             binary64 — re-apply the low implementation to the shadow
             arguments rounded to doubles. *)
          if not st.degraded then begin
            st.degraded <- true;
            if Trace.enabled () then
              Trace.event ~attrs:[ ("builtin", Trace.Str name) ]
                "shadow.degraded"
          end;
          let vs' =
            List.map2
              (fun v d ->
                match v with
                | Builtins.I _ -> v
                | Builtins.F _ -> Builtins.F (Dd.to_float d))
              vs
              (Array.to_list dd_args)
          in
          (match Builtins.find st.builtins name with
          | Some (_, impl) -> (
              match impl (Array.of_list vs') with
              | Builtins.F x -> Dd.of_float x
              | Builtins.I _ -> assert false)
          | None -> assert false))

and eval_int st scope e =
  match eval st scope e with
  | VI n -> n
  | VF _ ->
      fail "expected an int, got a float in %s" (Cheffp_ir.Pp.expr_to_string e)

and eval_float st scope e =
  match eval st scope e with
  | VF (x, fmt, d) -> (x, fmt, d)
  | VI _ ->
      fail "expected a float, got an int in %s" (Cheffp_ir.Pp.expr_to_string e)

and store st scope lv ev =
  match (Scope.find scope (lvalue_base lv), lv, ev) with
  | Sf c, Lvar name, VF (x, _, d) ->
      c.f <- Fp.round c.fmt x;
      c.d <- d;
      record_divergence st name c.f d
  | Si c, Lvar _, VI n -> c.i <- n
  | Sfa { a; afmt = fmt; da }, Lidx (name, ie), VF (x, _, d) ->
      let i = eval_int st scope ie in
      if i < 0 || i >= Array.length a then
        fail "index %d out of bounds for %S (length %d)" i name (Array.length a);
      a.(i) <- Fp.round fmt x;
      da.(i) <- d;
      record_divergence st name a.(i) d
  | Sia a, Lidx (name, ie), VI n ->
      let i = eval_int st scope ie in
      if i < 0 || i >= Array.length a then
        fail "index %d out of bounds for %S (length %d)" i name (Array.length a);
      a.(i) <- n
  | _, _, _ ->
      fail "kind mismatch storing into %s"
        (Format.asprintf "%a" Cheffp_ir.Pp.pp_lvalue lv)

and exec st scope stmt =
  if st.fuel = 0 then
    fail "fuel exhausted (infinite loop? raise the fuel limit)";
  if st.fuel > 0 then st.fuel <- st.fuel - 1;
  match stmt with
  | Decl { name; dty; init } -> (
      match dty with
      | Dscalar Sint ->
          let c = Si { i = 0 } in
          Scope.declare scope name c;
          Option.iter
            (fun e -> store st scope (Lvar name) (VI (eval_int st scope e)))
            init
      | Dscalar (Sflt _ as s) ->
          let fmt = Interp.effective_format st.config s name in
          Scope.declare scope name (Sf { f = 0.; fmt; d = Dd.zero });
          Option.iter
            (fun e ->
              let x, vfmt, d = eval_float st scope e in
              store st scope (Lvar name) (VF (x, vfmt, d)))
            init
      | Darr (Sint, size) ->
          let n = eval_int st scope size in
          if n < 0 then fail "array %S has negative size %d" name n;
          Scope.declare scope name (Sia (Array.make n 0))
      | Darr ((Sflt _ as s), size) ->
          let n = eval_int st scope size in
          if n < 0 then fail "array %S has negative size %d" name n;
          let fmt = Interp.effective_format st.config s name in
          Scope.declare scope name
            (Sfa { a = Array.make n 0.; afmt = fmt; da = Array.make n Dd.zero }))
  | Assign (lv, e) -> store st scope lv (eval st scope e)
  | If (c, t, e) ->
      let taken = eval_int st scope c <> 0 in
      hash_decision st (bool_of taken);
      exec_block st scope (if taken then t else e)
  | For { var; lo; hi; down; body } ->
      let lo = eval_int st scope lo and hi = eval_int st scope hi in
      Scope.push scope;
      let cell = { i = 0 } in
      Scope.declare scope var (Si cell);
      if down then
        for i = hi - 1 downto lo do
          cell.i <- i;
          exec_block st scope body
        done
      else
        for i = lo to hi - 1 do
          cell.i <- i;
          exec_block st scope body
        done;
      Scope.pop scope
  | While (c, body) ->
      let continue_ = ref (eval_int st scope c <> 0) in
      hash_decision st (bool_of !continue_);
      while !continue_ do
        exec_block st scope body;
        continue_ := eval_int st scope c <> 0;
        hash_decision st (bool_of !continue_)
      done
  | Return None -> raise (Return_exn None)
  | Return (Some e) ->
      let v =
        match eval st scope e with
        | VI n -> (Builtins.I n, Dd.of_int n)
        | VF (x, _, d) -> (Builtins.F x, d)
      in
      raise (Return_exn (Some v))
  | Call_stmt (name, args) -> (
      match Builtins.find st.builtins name with
      | Some _ -> ignore (eval st scope (Call (name, args)))
      | None ->
          let f = func_exn st.prog name in
          ignore (call_func st scope f args))
  | Push lv -> (
      match (Scope.find scope (lvalue_base lv), lv) with
      | Sf c, Lvar _ ->
          Growable.Float.push st.fstack c.f;
          Growable.push st.dstack c.d
      | Si c, Lvar _ -> Growable.push st.istack c.i
      | Sfa { a; afmt = _; da }, Lidx (_, ie) ->
          let i = eval_int st scope ie in
          Growable.Float.push st.fstack a.(i);
          Growable.push st.dstack da.(i)
      | Sia a, Lidx (_, ie) -> Growable.push st.istack a.(eval_int st scope ie)
      | _, _ -> fail "push: kind mismatch")
  | Pop lv -> (
      match (Scope.find scope (lvalue_base lv), lv) with
      | Sf c, Lvar name ->
          c.f <- Growable.Float.pop st.fstack;
          c.d <- Growable.pop st.dstack;
          record_divergence st name c.f c.d
      | Si c, Lvar _ -> c.i <- Growable.pop st.istack
      | Sfa { a; afmt = _; da }, Lidx (name, ie) ->
          let i = eval_int st scope ie in
          a.(i) <- Growable.Float.pop st.fstack;
          da.(i) <- Growable.pop st.dstack;
          record_divergence st name a.(i) da.(i)
      | Sia a, Lidx (_, ie) -> a.(eval_int st scope ie) <- Growable.pop st.istack
      | _, _ -> fail "pop: kind mismatch")

and exec_block st scope stmts =
  Scope.push scope;
  List.iter (exec st scope) stmts;
  Scope.pop scope

and call_func st caller_scope f args =
  if List.length args <> List.length f.params then
    fail "function %S expects %d arguments, got %d" f.fname
      (List.length f.params) (List.length args);
  let callee = Scope.create () in
  List.iter2
    (fun p arg ->
      let slot =
        match (p.pmode, p.pty, arg) with
        | Out, Tscalar _, Var v -> Scope.find caller_scope v
        | Out, Tscalar _, _ ->
            fail "out argument for %S must be a variable" f.fname
        | In, Tscalar Sint, _ -> Si { i = eval_int st caller_scope arg }
        | In, Tscalar (Sflt _ as s), _ ->
            let fmt = Interp.effective_format st.config s p.pname in
            let x, _, d = eval_float st caller_scope arg in
            Sf { f = Fp.round fmt x; fmt; d }
        | _, Tarr _, Var v -> Scope.find caller_scope v
        | _, Tarr _, _ -> fail "array argument for %S must be a name" f.fname
      in
      Scope.declare callee p.pname slot)
    f.params args;
  try
    List.iter (exec st callee) f.body;
    None
  with Return_exn v -> v

(* ------------------------------------------------------------------ *)

let default_builtins = lazy (Builtins.create ())

let prepare_args st scope f (args : Interp.arg list) =
  if List.length args <> List.length f.params then
    fail "function %S expects %d arguments, got %d" f.fname
      (List.length f.params) (List.length args);
  List.iter2
    (fun p arg ->
      let slot =
        match (p.pty, arg) with
        | Tscalar Sint, Interp.Aint n -> Si { i = n }
        | Tscalar (Sflt _ as s), Interp.Aflt x ->
            let fmt = Interp.effective_format st.config s p.pname in
            (* the shadow seeds from the caller's unrounded value: input
               representation error is part of the measured error *)
            Sf { f = Fp.round fmt x; fmt; d = Dd.of_float x }
        | Tarr (Sflt _ as s), Interp.Afarr a ->
            let fmt = Interp.effective_format st.config s p.pname in
            let da = Array.map Dd.of_float a in
            if Fp.equal_format fmt Fp.F64 then Sfa { a; afmt = fmt; da }
            else Sfa { a = Array.map (Fp.round fmt) a; afmt = fmt; da }
        | Tarr Sint, Interp.Aiarr a -> Sia a
        | _, _ -> fail "argument kind mismatch for parameter %S" p.pname
      in
      Scope.declare scope p.pname slot)
    f.params args

let measurement name low shadow =
  let abs_error =
    let e = Float.abs (low -. Dd.to_float shadow) in
    if Float.is_nan e then 0.0 else e
  in
  let mag = Float.abs (Dd.to_float shadow) in
  let rel_error = if mag > 1e-30 then abs_error /. mag else abs_error in
  { name; low; shadow; abs_error; rel_error }

let run ?builtins ?(dd_builtins = []) ?(config = Config.double)
    ?(mode = Config.Source) ?(fuel = -1) ~prog ~func args =
  Trace.with_span "shadow.run" @@ fun () ->
  if Trace.enabled () then Trace.add_attr "func" (Trace.Str func);
  let builtins =
    match builtins with Some b -> b | None -> Lazy.force default_builtins
  in
  let dd_tbl = Hashtbl.create 32 in
  List.iter
    (fun (n, f) -> Hashtbl.replace dd_tbl n f)
    default_dd_builtins;
  List.iter (fun (n, f) -> Hashtbl.replace dd_tbl n f) dd_builtins;
  let st =
    {
      prog;
      builtins;
      dd_builtins = dd_tbl;
      config;
      mode;
      fstack = Growable.Float.create ();
      dstack = Growable.create ~dummy:Dd.zero ();
      istack = Growable.create ~dummy:0 ();
      divergence = Hashtbl.create 32;
      branch_hash = 0;
      degraded = false;
      fuel;
    }
  in
  let f = func_exn prog func in
  let scope = Scope.create () in
  prepare_args st scope f args;
  let ret =
    try
      List.iter (exec st scope) f.body;
      None
    with Return_exn v -> v
  in
  let ret, ret_int =
    match ret with
    | Some (Builtins.F x, d) -> (Some (measurement "<ret>" x d), None)
    | Some (Builtins.I n, _) -> (None, Some n)
    | None -> (None, None)
  in
  let outs =
    List.filter_map
      (fun p ->
        match (p.pmode, p.pty) with
        | Out, Tscalar _ -> (
            match Scope.find scope p.pname with
            | Sf c -> Some (measurement p.pname c.f c.d)
            | Si _ | Sfa _ | Sia _ -> None)
        | _, _ -> None)
      f.params
  in
  let divergence =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.divergence []
    |> List.sort (fun (na, a) (nb, b) ->
           match Float.compare b a with 0 -> String.compare na nb | c -> c)
  in
  { ret; ret_int; outs; divergence; branch_hash = st.branch_hash }

let measured_error r =
  let m = match r.ret with Some m -> m.abs_error | None -> 0.0 in
  List.fold_left (fun acc o -> Float.max acc o.abs_error) m r.outs
