open Cheffp_ir.Ast
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Interp = Cheffp_ir.Interp
module Estimate = Cheffp_core.Estimate
module Model = Cheffp_core.Model
module Trace = Cheffp_obs.Trace

type verdict = {
  func : string;
  config : Config.t;
  mode : Config.rounding_mode;
  margin : float;
  demoted : (string * Fp.format) list;
  measurements : Shadow.measurement list;
  measured_error : float;
  demotion_error : float;
  inherent_error : float;
  modelled_error : float;
  baseline_error : float;
  bound : float;
  sound : bool;
  tightness : float option;
  branch_divergence : bool;
}

let copy_args args =
  List.map
    (function
      | Interp.Afarr a -> Interp.Afarr (Array.copy a)
      | Interp.Aiarr a -> Interp.Aiarr (Array.copy a)
      | (Interp.Aint _ | Interp.Aflt _) as x -> x)
    args

(* Every float variable of [func] with its declared scalar type, in
   declaration order: parameters first, then locals from a recursive
   walk of the body (first declaration of a name wins). *)
let float_declarations func =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let add name s =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      acc := (name, s) :: !acc
    end
  in
  List.iter
    (fun p ->
      match p.pty with
      | Tscalar (Sflt _ as s) | Tarr (Sflt _ as s) -> add p.pname s
      | Tscalar Sint | Tarr Sint -> ())
    func.params;
  let rec stmt = function
    | Decl { name; dty = Dscalar (Sflt _ as s); _ }
    | Decl { name; dty = Darr ((Sflt _ as s), _); _ } ->
        add name s
    | Decl _ | Assign _ | Return _ | Call_stmt _ | Push _ | Pop _ -> ()
    | If (_, t, e) ->
        List.iter stmt t;
        List.iter stmt e
    | For { body; _ } | While (_, body) -> List.iter stmt body
  in
  List.iter stmt func.body;
  List.rev !acc

let effective_demotions ~config ~func =
  List.filter_map
    (fun (name, s) ->
      let fmt = Interp.effective_format config s name in
      if Fp.equal_format fmt Fp.F64 then None else Some (name, fmt))
    (float_declarations func)

(* Worst |a - b| over outputs paired by name between two shadow runs. *)
let paired_gap (a : Shadow.result) (b : Shadow.result) =
  let gap (x : Shadow.measurement) (y : Shadow.measurement) =
    let g = Float.abs (x.Shadow.low -. y.Shadow.low) in
    if Float.is_nan g then 0.0 else g
  in
  let ret =
    match (a.Shadow.ret, b.Shadow.ret) with
    | Some x, Some y -> gap x y
    | _ -> 0.0
  in
  List.fold_left
    (fun acc (x : Shadow.measurement) ->
      match
        List.find_opt
          (fun (y : Shadow.measurement) -> String.equal y.Shadow.name x.Shadow.name)
          b.Shadow.outs
      with
      | Some y -> Float.max acc (gap x y)
      | None -> acc)
    ret a.Shadow.outs

let check_estimate ?builtins ?dd_builtins ?(mode = Config.Extended)
    ?(margin = 1.0) ?(slack = 1e-25) ?fuel ~prog ~func ~config args =
  Trace.with_span "oracle.check_estimate" @@ fun () ->
  if Trace.enabled () then begin
    Trace.add_attr "func" (Trace.Str func);
    Trace.add_attr "config" (Trace.Str (Config.to_string config))
  end;
  let f = func_exn prog func in
  let demoted = effective_demotions ~config ~func:f in
  let shadow cfg =
    Shadow.run ?builtins ?dd_builtins ~config:cfg ~mode ?fuel ~prog ~func
      (copy_args args)
  in
  let configured = shadow config in
  let reference = shadow Config.double in
  if configured.Shadow.ret = None && configured.Shadow.outs = [] then
    Format.kasprintf
      (fun s -> raise (Interp.Runtime_error s))
      "oracle: function %S produced no float output to validate" func;
  let measured_error = Shadow.measured_error configured in
  let inherent_error = Shadow.measured_error reference in
  let demotion_error = paired_gap configured reference in
  let branch_divergence =
    configured.Shadow.branch_hash <> reference.Shadow.branch_hash
  in
  (* One adapt analysis per distinct narrow format: Eq. 2's target
     format is baked into the model, so F32- and F16-demoted variables
     need separate gradient-augmented runs. *)
  let formats =
    List.sort_uniq Stdlib.compare (List.map snd demoted)
  in
  let modelled_error =
    List.fold_left
      (fun acc fmt ->
        let names =
          List.filter_map
            (fun (n, f') -> if Fp.equal_format f' fmt then Some n else None)
            demoted
        in
        let est =
          Estimate.estimate_error ~model:(Model.adapt ~target:fmt ()) ?builtins
            ~prog ~func ()
        in
        let report = Estimate.run est (copy_args args) in
        List.fold_left
          (fun a n ->
            a
            +. Option.value ~default:0.
                 (List.assoc_opt n report.Estimate.per_variable))
          acc names)
      0.0 formats
  in
  let baseline_estimate =
    let est =
      Estimate.estimate_error ~model:(Model.taylor ~target:Fp.F64 ()) ?builtins
        ~prog ~func ()
    in
    (Estimate.run est (copy_args args)).Estimate.total_error
  in
  let baseline_error = Float.max baseline_estimate inherent_error in
  let bound = (margin *. modelled_error) +. baseline_error in
  let sound = measured_error <= bound +. slack in
  let tightness =
    if measured_error > 0.0 then Some (bound /. measured_error) else None
  in
  if Trace.enabled () then begin
    Trace.add_attr "measured" (Trace.Float measured_error);
    Trace.add_attr "bound" (Trace.Float bound);
    Trace.add_attr "sound" (Trace.Bool sound)
  end;
  {
    func;
    config;
    mode;
    margin;
    demoted;
    measurements =
      (match configured.Shadow.ret with
      | Some m -> m :: configured.Shadow.outs
      | None -> configured.Shadow.outs);
    measured_error;
    demotion_error;
    inherent_error;
    modelled_error;
    baseline_error;
    bound;
    sound;
    tightness;
    branch_divergence;
  }

let render v =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "validate %s\n" v.func;
  pf "  mode: %s, margin: %g\n"
    (match v.mode with Config.Source -> "source" | Config.Extended -> "extended")
    v.margin;
  (match v.demoted with
  | [] -> pf "  demoted: (none — uniform binary64)\n"
  | ds ->
      pf "  demoted: %s\n"
        (String.concat ", "
           (List.map (fun (n, f) -> n ^ ":" ^ Fp.format_to_string f) ds)));
  List.iter
    (fun (m : Shadow.measurement) ->
      pf "  %-12s %.17g  (true %.17g, error %.3e)\n" m.Shadow.name m.Shadow.low
        (Dd.to_float m.Shadow.shadow)
        m.Shadow.abs_error)
    v.measurements;
  pf "  measured error:  %.6e  (demotion %.6e + binary64 floor %.6e)\n"
    v.measured_error v.demotion_error v.inherent_error;
  pf "  modelled bound:  %.6e  (CHEF-FP %.6e, baseline %.6e)\n" v.bound
    v.modelled_error v.baseline_error;
  (match v.tightness with
  | Some t -> pf "  tightness:       %.2fx\n" t
  | None -> pf "  tightness:       (exact — zero measured error)\n");
  if v.branch_divergence then
    pf "  warning: control flow diverged from the binary64 run\n";
  pf "  verdict:         %s\n" (if v.sound then "SOUND" else "UNSOUND");
  Buffer.contents b
