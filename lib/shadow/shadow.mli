(** Lockstep shadow execution: the ground-truth side of the oracle.

    [run] interprets a MiniFP function once, carrying {e two} values per
    float: the "low lane" — a binary64 rounded exactly like
    {!Cheffp_ir.Interp} under the given {!Cheffp_precision.Config} and
    rounding mode (bit-identical, asserted by the test suite) — and a
    "shadow lane" in ~106-bit double-double ({!Dd}) that is never
    rounded except where the program itself demands an integer (and at
    the explicit [castf32]/[castf16] intrinsics, which the shadow lane
    treats as identity: the reference is real-valued execution).

    Control flow, float→int conversion, and every other discrete
    decision are taken from the low lane, so the two lanes can never
    structurally diverge within one run; the per-decision
    {!field:result.branch_hash} lets callers compare {e two} runs (e.g.
    a demoted configuration against all-binary64) and detect when
    demotion flipped a branch — the regime where first-order error
    models are knowingly invalid (DESIGN.md §10). *)

module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Interp = Cheffp_ir.Interp

type measurement = {
  name : string;  (** ["<ret>"], or the [out] parameter's name *)
  low : float;  (** the configured-precision result *)
  shadow : Dd.t;  (** the double-double reference *)
  abs_error : float;  (** [|low - shadow|], in binary64 *)
  rel_error : float;
      (** [abs_error / |shadow|]; equals [abs_error] when the
          reference magnitude is below 1e-30. *)
}

type result = {
  ret : measurement option;  (** [None] for int/void returns *)
  ret_int : int option;
  outs : measurement list;
  divergence : (string * float) list;
      (** per-variable worst |low − shadow| over every store to that
          variable (array stores under the array's name), sorted
          descending *)
  branch_hash : int;
      (** order-sensitive hash of every discrete decision: [if]/[while]
          outcomes, [ftoi]/[select]/[sign]/[floor]/[ceil] results,
          [fmin]/[fmax] argument choice *)
}

type dd_impl = Dd.t array -> Dd.t
(** Shadow-lane implementation of a float-returning builtin; receives
    the shadow values of the float arguments (int arguments appear via
    {!Dd.of_int}). *)

val default_dd_builtins : (string * dd_impl) list
(** Shadow implementations for the default {!Cheffp_ir.Builtins}
    registry. Transcendentals use first-order derivative correction —
    [f(hi) + f'(hi)·lo] — which is accurate to ~1 binary64 ulp of the
    true value (not to the full 106 bits); [sqrt] and the four basic
    operations are fully accurate. See DESIGN.md §10. *)

val run :
  ?builtins:Cheffp_ir.Builtins.t ->
  ?dd_builtins:(string * dd_impl) list ->
  ?config:Config.t ->
  ?mode:Config.rounding_mode ->
  ?fuel:int ->
  prog:Cheffp_ir.Ast.program ->
  func:string ->
  Interp.arg list ->
  result
(** Mirrors [Interp.run]'s signature and semantics on the low lane
    (including demoted-input-array copy-rounding; the shadow lane seeds
    from the caller's unrounded values, so measured error includes
    input representation error, matching the estimate's per-variable
    input terms). [dd_builtins] extends/overrides
    {!default_dd_builtins}; a float builtin with no shadow
    implementation degrades gracefully — its low-lane function is
    applied to the shadow arguments rounded to binary64 (recorded once
    as a ["shadow.degraded"] trace event). Raises
    [Interp.Runtime_error] exactly where the interpreter would. *)

val measured_error : result -> float
(** Worst [abs_error] over the return value and every [out]
    measurement; [0.] if the function produced no float results. *)
