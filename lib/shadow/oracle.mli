(** End-to-end estimate-soundness oracle.

    [check_estimate] runs the CHEF-FP analysis and the {!Shadow}
    ground truth on the same function, configuration, and inputs, and
    answers the question the paper's whole evaluation rests on: does
    the modelled error bound cover the actually incurred error
    ({e soundness}), and by what ratio ({e tightness})?

    The modelled side decomposes as the estimation machinery does:

    - {e demotion error} — one {!Cheffp_core.Model.adapt} analysis per
      distinct narrow format in the configuration (Eq. 2 models the
      demoted-minus-double difference), summed over the variables
      effectively demoted to that format;
    - {e baseline error} — the inherent binary64 rounding floor, which
      Eq. 2 deliberately models as zero. It is bounded here by the
      larger of a {!Cheffp_core.Model.taylor} analysis at F64 and the
      shadow-measured error of the all-F64 run itself (the latter is a
      measurement, not a model — reported separately as
      {!field:verdict.inherent_error}).

    The verdict is sound when
    [measured <= margin * modelled + baseline + slack]. With the
    default [Extended] rounding mode, [margin = 1] holds across the
    paper's benchmarks (EXPERIMENTS.md); [Source] mode rounds every
    {e operation} while the model charges one rounding per
    {e assignment}, so it needs the same [margin = 2] headroom the
    tuner applies (see Table I: arclength's actual error overshoots
    its estimate under Source mode). DESIGN.md §10 defines both
    properties precisely. *)

module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Interp = Cheffp_ir.Interp

type verdict = {
  func : string;
  config : Config.t;
  mode : Config.rounding_mode;
  margin : float;
  demoted : (string * Fp.format) list;
      (** variables {e effectively} below F64 under [config] (override,
          declared narrow type, or narrow default), declaration order *)
  measurements : Shadow.measurement list;
      (** return value and [out] scalars of the configured run, against
          the double-double reference *)
  measured_error : float;  (** worst |configured − true| over outputs *)
  demotion_error : float;
      (** worst |configured − all-F64| over outputs: the part Eq. 2
          models *)
  inherent_error : float;
      (** worst |all-F64 − true| over outputs: the binary64 floor *)
  modelled_error : float;  (** summed adapt-model demotion estimate *)
  baseline_error : float;
      (** max(taylor@F64 estimate, [inherent_error]) *)
  bound : float;  (** [margin *. modelled_error +. baseline_error] *)
  sound : bool;
  tightness : float option;
      (** [bound /. measured_error] when the measurement is nonzero —
          1.0 is perfectly tight, large means pessimistic *)
  branch_divergence : bool;
      (** the configured and all-F64 runs took different discrete
          decisions; first-order estimates are unreliable here and the
          fuzz harness skips such cases (DESIGN.md §10) *)
}

val check_estimate :
  ?builtins:Cheffp_ir.Builtins.t ->
  ?dd_builtins:(string * Shadow.dd_impl) list ->
  ?mode:Config.rounding_mode ->
  ?margin:float ->
  ?slack:float ->
  ?fuel:int ->
  prog:Cheffp_ir.Ast.program ->
  func:string ->
  config:Config.t ->
  Interp.arg list ->
  verdict
(** Two shadow runs (configured, all-F64) plus one CHEF-FP analysis
    per distinct narrow format plus one taylor@F64 analysis. [mode]
    defaults to [Extended], [margin] to [1.0], [slack] (an absolute
    floor added to the bound, for measurements at the edge of
    representability) to [1e-25]. Input arrays are copied before every
    run; the caller's buffers are never written. The function must
    produce at least one float output (return value or [out] scalar).
    @raise Interp.Runtime_error as the interpreter would. *)

val render : verdict -> string
(** Multi-line human-readable report, in {!Cheffp_core.Report} style;
    ends with a newline. *)

val effective_demotions :
  config:Config.t ->
  func:Cheffp_ir.Ast.func ->
  (string * Fp.format) list
(** The variables of [func] whose {!Interp.effective_format} under
    [config] is below F64 (parameters, locals, arrays — declaration
    order, first declaration wins). Exposed for the bench harness. *)
