(** Double-double ("dd") arithmetic: an unevaluated sum of two binary64
    values carrying ~106 significand bits.

    This is the ground-truth substrate of the shadow-execution oracle
    ({!Shadow}): ADAPT validates its estimates against higher-precision
    shadow values, and rigorous tools (FPTaylor) validate against
    high-precision execution — a double-double interpreter gives this
    repository the same reference entirely in OCaml, with no external
    bignum dependency.

    The error-free transformations are the classical ones (Knuth's
    TwoSum, Dekker's splitting and TwoProd); the compound operations
    follow the QD/Bailey algorithms (add/sub/mul/div/sqrt), with
    division and square root refined by a Newton-style correction from
    a binary64 seed. Relative accuracy of the arithmetic kernels is
    ~2^-104; see DESIGN.md §10 for the intrinsic (transcendental)
    accuracy gap. *)

type t = private { hi : float; lo : float }
(** Invariant (for finite values): [hi = Float.round (hi +. lo)], i.e.
    [hi] is the double nearest the represented value and
    [|lo| <= ulp(hi)/2]. Construct via {!make}/{!of_float}. *)

val zero : t
val one : t

val of_float : float -> t
(** Exact embedding: [lo = 0]. *)

val make : float -> float -> t
(** [make hi lo] renormalizes the pair via TwoSum. *)

val to_float : t -> float
(** Nearest binary64: [hi +. lo] (which equals [hi] by the invariant,
    up to the final rounding of the addition). *)

(* ---- error-free transformations (exposed for the test suite) ---- *)

val two_sum : float -> float -> float * float
(** [two_sum a b = (s, e)] with [s = fl(a + b)] and [s + e = a + b]
    exactly (Knuth; no precondition on magnitudes). *)

val quick_two_sum : float -> float -> float * float
(** Like {!two_sum} but requires [|a| >= |b|] (or either zero). *)

val split : float -> float * float
(** Dekker's splitting: [split a = (ahi, alo)] with [a = ahi + alo]
    exactly and both halves representable in 26 bits (so any product of
    halves is exact). Values with [|a| >= 2^996] are scaled internally
    to avoid overflow. *)

val two_prod : float -> float -> float * float
(** [two_prod a b = (p, e)] with [p = fl(a * b)] and [p + e = a * b]
    exactly, via Dekker splitting (equivalently [e = fma a b (-p)];
    the test suite cross-checks both). *)

(* ---- arithmetic ---- *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Binary64 quotient seed refined by two exact-residual corrections
    (long division in dd), accurate to ~2^-104 relative. *)

val sqrt : t -> t
(** Karp–Markstein style: binary64 reciprocal-sqrt seed plus one Newton
    correction step computed with exact residuals. Negative inputs give
    NaN, signed zeros pass through. *)

val add_float : t -> float -> t
val mul_float : t -> float -> t

(* ---- comparisons & predicates ---- *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_nan : t -> bool
val is_finite : t -> bool
val sign : t -> float
(** [-1.], [0.] or [1.] like the MiniFP [sign] intrinsic. *)

(* ---- conversions used by the shadow interpreter ---- *)

val of_int : int -> t
(** Exact for magnitudes below 2^106. *)

val floor : t -> t
val ceil : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
