type t = { hi : float; lo : float }

let zero = { hi = 0.0; lo = 0.0 }
let one = { hi = 1.0; lo = 0.0 }
let of_float x = { hi = x; lo = 0.0 }
let to_float { hi; lo } = hi +. lo

(* Knuth's TwoSum: 6 flops, no magnitude precondition. *)
let two_sum a b =
  let s = a +. b in
  let bb = s -. a in
  let err = (a -. (s -. bb)) +. (b -. bb) in
  (s, err)

(* Dekker's FastTwoSum: requires |a| >= |b| (or either zero). *)
let quick_two_sum a b =
  let s = a +. b in
  let err = b -. (s -. a) in
  (s, err)

let make hi lo =
  let s, e = two_sum hi lo in
  { hi = s; lo = e }

(* Dekker splitting constant 2^27 + 1; the guard keeps splitter *. a
   finite for |a| up to max_float (scale down by 2^28, split, scale
   halves back up — both halves stay representable in 26 bits). *)
let splitter = 134217729.0
let split_threshold = 6.696928794914171e299 (* 2^996 *)

let split a =
  if Float.abs a > split_threshold then begin
    let a' = a *. 3.7252902984619140625e-09 (* 2^-28 *) in
    let t = splitter *. a' in
    let ahi = t -. (t -. a') in
    let alo = a' -. ahi in
    (ahi *. 268435456.0, alo *. 268435456.0 (* 2^28 *))
  end
  else begin
    let t = splitter *. a in
    let ahi = t -. (t -. a) in
    let alo = a -. ahi in
    (ahi, alo)
  end

let two_prod a b =
  let p = a *. b in
  let ahi, alo = split a in
  let bhi, blo = split b in
  let err = ((ahi *. bhi -. p) +. (ahi *. blo) +. (alo *. bhi)) +. (alo *. blo) in
  (p, err)

let neg { hi; lo } = { hi = -.hi; lo = -.lo }
let abs d = if d.hi < 0.0 || (d.hi = 0.0 && d.lo < 0.0) then neg d else d

(* QD-style accurate addition: TwoSum both components, then fold the
   low-order parts back in with two renormalization passes. *)
let add a b =
  let s1, s2 = two_sum a.hi b.hi in
  let t1, t2 = two_sum a.lo b.lo in
  let s2 = s2 +. t1 in
  let s1, s2 = quick_two_sum s1 s2 in
  let s2 = s2 +. t2 in
  let s1, s2 = quick_two_sum s1 s2 in
  { hi = s1; lo = s2 }

let sub a b = add a (neg b)

let add_float a b =
  let s1, s2 = two_sum a.hi b in
  let s2 = s2 +. a.lo in
  let s1, s2 = quick_two_sum s1 s2 in
  { hi = s1; lo = s2 }

let mul a b =
  let p1, p2 = two_prod a.hi b.hi in
  let p2 = p2 +. (a.hi *. b.lo) +. (a.lo *. b.hi) in
  let p1, p2 = quick_two_sum p1 p2 in
  { hi = p1; lo = p2 }

let mul_float a b =
  let p1, p2 = two_prod a.hi b in
  let p2 = p2 +. (a.lo *. b) in
  let p1, p2 = quick_two_sum p1 p2 in
  { hi = p1; lo = p2 }

(* Long division: binary64 seed quotient, two exact-residual correction
   terms, one final residual digit. *)
let div a b =
  let q1 = a.hi /. b.hi in
  if not (Float.is_finite q1) || b.hi = 0.0 then of_float q1
  else begin
    let r = sub a (mul_float b q1) in
    let q2 = r.hi /. b.hi in
    let r = sub r (mul_float b q2) in
    let q3 = r.hi /. b.hi in
    let q1, q2 = quick_two_sum q1 q2 in
    add_float { hi = q1; lo = q2 } q3
  end

(* Karp's trick: with x ~ 1/sqrt(a) in binary64 and ax = fl(a.hi * x),
   sqrt(a) ~ ax + (a - ax^2) * x / 2; the residual a - ax^2 is computed
   exactly in dd, giving a fully accurate dd square root from one
   Newton-style correction. *)
let sqrt a =
  if a.hi = 0.0 then { hi = Float.sqrt a.hi; lo = 0.0 } (* keeps -0. *)
  else if a.hi < 0.0 then of_float Float.nan
  else if not (Float.is_finite a.hi) then of_float a.hi
  else begin
    let x = 1.0 /. Float.sqrt a.hi in
    let ax = a.hi *. x in
    let residual = sub a (mul (of_float ax) (of_float ax)) in
    add (of_float ax) (mul_float residual (x *. 0.5))
  end

let compare a b =
  let c = Float.compare a.hi b.hi in
  if c <> 0 then c else Float.compare a.lo b.lo

let equal a b = a.hi = b.hi && a.lo = b.lo
let is_nan d = Float.is_nan d.hi || Float.is_nan d.lo
let is_finite d = Float.is_finite d.hi && Float.is_finite d.lo

let sign d =
  if is_nan d then Float.nan
  else if d.hi > 0.0 || (d.hi = 0.0 && d.lo > 0.0) then 1.0
  else if d.hi < 0.0 || (d.hi = 0.0 && d.lo < 0.0) then -1.0
  else 0.0

(* Exact for |n| < 2^106: split the int into a high part that is exact
   in binary64 and the remainder. On 63-bit OCaml ints the first
   component is exact only up to 2^53, so peel off the low 30 bits. *)
let of_int n =
  if Stdlib.abs n < 0x20000000000000 (* 2^53 *) then of_float (float_of_int n)
  else begin
    let low = n land 0x3FFFFFFF in
    let high = n - low in
    add_float (of_float (float_of_int high)) (float_of_int low)
  end

let floor d =
  let fhi = Float.floor d.hi in
  if fhi = d.hi then
    (* hi is integral: the fractional information lives in lo *)
    let flo = Float.floor d.lo in
    make fhi flo
  else { hi = fhi; lo = 0.0 }

let ceil d =
  let chi = Float.ceil d.hi in
  if chi = d.hi then
    let clo = Float.ceil d.lo in
    make chi clo
  else { hi = chi; lo = 0.0 }

let pp fmt d = Format.fprintf fmt "(%.17g + %.17g)" d.hi d.lo
let to_string d = Format.asprintf "%a" pp d
