(** Input boxes for range analysis: one interval per float input (per
    element for float arrays), everything else pinned to the concrete
    argument.

    The default box mirrors {!Cheffp_core.Sampling}'s derivation:
    +/- 50% of the base value's magnitude, widened to the absolute
    interval [[-1, 1]] at zero (a relative box collapses to a point
    there); FPCore [:pre] ranges override it where present. *)

open Cheffp_ir

exception Spec_error of string

type dim =
  | Dflt of Interval.t  (** float scalar input *)
  | Dfarr of Interval.t array  (** float array input, per element *)
  | Dfixed of Interp.arg  (** ints, int arrays, out params *)

type t

val dims : t -> (string * dim) list

val make : (string * dim) list -> t
(** Box from explicit dimensions, in parameter order (e.g. converted
    from a [Cheffp_core.Sampling.box_view]). *)

val default_iv : float -> Interval.t
(** The default box around a base value (+/- 50%, absolute [-1, 1] at
    zero). *)

val of_args :
  ?ranges:(string * (float option * float option)) list ->
  func:Ast.func ->
  args:Interp.arg list ->
  unit ->
  t
(** Box from default arguments, with FPCore [:pre] [ranges] taking
    precedence where two-sided.
    @raise Spec_error on an argument-count mismatch. *)

val point_of_args : func:Ast.func -> args:Interp.arg list -> unit -> t
(** Degenerate box pinning every float input to its argument value —
    the right box when candidate errors are measured at exactly
    [args]. *)

val override_of_string : string -> (string * Interval.t) list
(** Parses a ["x=lo,hi; y=lo,hi"] [--box] spec.
    @raise Spec_error on malformed entries. *)

val apply_override : t -> (string * Interval.t) list -> t
(** @raise Spec_error when a name is unknown or not a scalar float. *)

val split : t -> (t * t) option
(** Bisects the scalar float dimension with the largest normalized
    width; [None] when every scalar dimension is a point (array
    dimensions are never split). *)

val to_string : t -> string
