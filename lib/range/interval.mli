(** Outward-rounded interval arithmetic over binary64.

    Every arithmetic endpoint is computed in binary64 and stepped one
    ulp outward, so results enclose both the real-valued result set and
    the binary64 values a correctly-rounded double computation can
    produce on operand points. Operations that admit no finite
    enclosure (NaN, overflow, division by an interval containing zero)
    raise {!Unbounded}; {!Range.analyze} catches it and reports a
    verdict instead of an unsound number. *)

exception Unbounded of string

type t

val make : float -> float -> t
(** @raise Unbounded on NaN / infinite / inverted endpoints. *)

val point : float -> t
val of_pair : float * float -> t
val to_pair : t -> float * float
val lo : t -> float
val hi : t -> float

val mag : t -> float
(** Largest absolute value over the interval. *)

val mig : t -> float
(** Smallest absolute value over the interval ([0.] when it straddles
    zero). *)

val width : t -> float
val mid : t -> float
val contains : t -> float -> bool
val is_point : t -> bool

val hull : t -> t -> t
(** Smallest interval containing both. *)

val widen : t -> float -> t
(** [widen t d] grows both endpoints outward by the absolute slack [d]
    (plus one ulp). *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val abs : t -> t

val round : Cheffp_precision.Fp.format -> t -> t
(** Endpoint-wise storage rounding (monotone, hence an enclosure of the
    rounded value set). *)

val to_string : t -> string
