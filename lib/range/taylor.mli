(** First-order Taylor-form evaluator over MiniFP straight-line regions
    (with joins at branches and unrolling of counted loops).

    One abstract execution over an input {!Box} yields an interval
    enclosing the reference run (the [Config.double] execution that
    {!Cheffp_core.Search} measures against) and a configuration-symbolic
    affine error form

    {v |ret_config - ret_reference| <= const + SUM_v coeff_v * u(fmt_config(v)) v}

    with [u F64 = 0] — every rounding event a demoted run can perform is
    charged to the variable (or a representative of the variable set)
    whose demotion enables it, at a magnitude bounded over the whole box
    with worst-case (F16) slack. Scoring a configuration afterwards is
    O(#vars), like a {!Cheffp_core.Profile} score, but the result is a
    sound upper bound rather than a first-order estimate.

    Whatever cannot be bounded — input-dependent [while] loops,
    discontinuous intrinsics fed error-carrying values, denominators a
    demotion could drive to zero, overflowing intervals — raises
    {!Interval.Unbounded} instead of returning an optimistic number. *)

open Cheffp_ir
module SM : Map.S with type key = string
module SS : Set.S with type elt = string

type form = { fconst : float; coeffs : float SM.t }
(** Affine error bound: [fconst + SUM_v coeffs(v) * u(fmt_config(v))],
    all terms non-negative. *)

val is_zero : form -> bool

val slack : form -> float
(** The form evaluated at the worst configuration (everything F16). *)

type dep = Top | Vars of SS.t
(** When the config run carries the value in a narrow format: [Top] —
    never; [Vars s] — exactly when every member of [s] is demoted
    ([Vars SS.empty]: always, from declared-narrow storage). *)

type av = {
  iv : Interval.t;  (** encloses the reference run's value *)
  rfmt : Cheffp_precision.Fp.format;
      (** format the reference run carries the value in *)
  dep : dep;
  form : form;  (** bounds [|config - reference|] *)
}

type result = {
  ret : av;
  peaks : float SM.t;
      (** per-variable maximum magnitude (with config slack) a demoted
          run can store there — for overflow vetoes at score time *)
  narrow : SS.t;
      (** declared-narrow variables encountered; the form assumes their
          formats are fixed, so overriding them voids the bound *)
}

val eval_func :
  ?builtins:Builtins.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  ?fuel:int ->
  prog:Ast.program ->
  func:string ->
  box:Box.t ->
  unit ->
  result
(** Abstractly executes [func] over [box]. [fuel] caps total abstract
    steps (loop unrolling included).
    @raise Interval.Unbounded when no finite bound exists for this box
    (the message says why). *)
