(** Rigorous range/error bounds for MiniFP functions over input boxes.

    [analyze] runs the {!Taylor} evaluator through a {!Backend} and
    certifies a worst-configuration error bound (or says why none
    exists); [score] specializes the certified leaves to one concrete
    demotion set in O(#vars); [pruner] packages that as the
    [?prune_bound] callback {!Cheffp_core.Search.tune} accepts. *)

open Cheffp_ir
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config

type verdict = Bounded | Unbounded of string

val verdict_to_string : verdict -> string

type analysis = {
  verdict : verdict;
  worst_bound : float;
      (** certified max [|config - reference|] over the box for {e any}
          demotion configuration (everything F16); [infinity] when the
          verdict is [Unbounded] *)
  value : Interval.t option;
      (** enclosure of the reference run's return value *)
  witness : Box.t;  (** sub-box where [worst_bound] is attained *)
  box : Box.t;
  backend : string;
  splits : int;
  evals : int;
  elapsed_ms : float;
  leaves : (float * Box.t * Taylor.result option) list;
}

val analyze :
  ?backend:string ->
  ?pars:Backend.pars ->
  ?builtins:Builtins.t ->
  ?mode:Config.rounding_mode ->
  ?fuel:int ->
  prog:Ast.program ->
  func:string ->
  box:Box.t ->
  unit ->
  analysis
(** [backend] is ["bb"] (branch-and-bound, default) or ["whole"];
    @raise Invalid_argument on an unknown backend or function. *)

val score : analysis -> target:Fp.format -> string list -> float option
(** Certified error bound for the configuration demoting exactly the
    given variables to [target]. [None] when the analysis cannot vouch
    for that configuration: an unbounded leaf, a declared-narrow
    variable in the set, or a demoted store whose magnitude can reach
    half the target's finite range (overflow veto). A [Some b] is a
    sound upper bound on the configuration's error anywhere in the
    box. *)

val pruner : analysis -> target:Fp.format -> string list -> float option
(** [score], shaped for {!Cheffp_core.Search.tune}'s [?prune_bound]. *)

val charged_vars : analysis -> string list
(** Every variable the certified forms charge, sorted. *)

val report : ?target:Fp.format -> analysis -> string
(** Multi-line human-readable rendering: backend/work counters, box,
    verdict, value enclosure, worst-config and all-at-[target] bounds,
    witness sub-box. *)
