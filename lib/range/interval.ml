(* Outward-rounded interval arithmetic over binary64.

   Every arithmetic endpoint is computed in binary64 and then stepped
   one ulp outward ([Float.pred] / [Float.succ]), so the result interval
   encloses both the real-valued result set and the set of binary64
   values a correctly-rounded double computation can produce on points
   of the operand intervals. That single property is what the Taylor
   evaluator leans on: its intervals enclose the all-F64 reference run.

   Anything that cannot be enclosed finitely (NaN, overflow to
   infinity, division by an interval containing zero) raises
   {!Unbounded}; the analysis layer catches it and reports a verdict
   instead of a number. *)

exception Unbounded of string

let fail fmt = Format.kasprintf (fun s -> raise (Unbounded s)) fmt

type t = { lo : float; hi : float }

let check ~ctx lo hi =
  if Float.is_nan lo || Float.is_nan hi then fail "%s: NaN endpoint" ctx
  else if lo = neg_infinity || lo = infinity || hi = infinity
          || hi = neg_infinity
  then fail "%s: infinite endpoint" ctx
  else if lo > hi then fail "%s: inverted interval [%g, %g]" ctx lo hi
  else { lo; hi }

let make lo hi = check ~ctx:"make" lo hi
let point x = check ~ctx:"point" x x
let of_pair (lo, hi) = check ~ctx:"builtin" lo hi
let to_pair { lo; hi } = (lo, hi)
let lo t = t.lo
let hi t = t.hi

let mag { lo; hi } = Float.max (Float.abs lo) (Float.abs hi)

(* Smallest |x| over the interval: 0 when it straddles zero. *)
let mig { lo; hi } =
  if lo <= 0. && hi >= 0. then 0. else Float.min (Float.abs lo) (Float.abs hi)

let width { lo; hi } = hi -. lo
let mid { lo; hi } = lo +. ((hi -. lo) /. 2.)
let contains { lo; hi } x = lo <= x && x <= hi
let is_point { lo; hi } = lo = hi

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let out lo hi ~ctx = check ~ctx (Float.pred lo) (Float.succ hi)

(* Widen both endpoints outward by an absolute amount (e.g. to absorb a
   rounding slack). *)
let widen t d =
  if d < 0. || Float.is_nan d then fail "widen: bad slack %g" d
  else if d = 0. then t
  else out (t.lo -. d) (t.hi +. d) ~ctx:"widen"

let neg { lo; hi } = { lo = -.hi; hi = -.lo }
let add a b = out (a.lo +. b.lo) (a.hi +. b.hi) ~ctx:"add"
let sub a b = out (a.lo -. b.hi) (a.hi -. b.lo) ~ctx:"sub"

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi
  and p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  out
    (Float.min (Float.min p1 p2) (Float.min p3 p4))
    (Float.max (Float.max p1 p2) (Float.max p3 p4))
    ~ctx:"mul"

let div a b =
  if b.lo <= 0. && b.hi >= 0. then
    fail "div: denominator interval [%g, %g] contains zero" b.lo b.hi
  else
    let q1 = a.lo /. b.lo and q2 = a.lo /. b.hi
    and q3 = a.hi /. b.lo and q4 = a.hi /. b.hi in
    out
      (Float.min (Float.min q1 q2) (Float.min q3 q4))
      (Float.max (Float.max q1 q2) (Float.max q3 q4))
      ~ctx:"div"

let abs t =
  if t.lo >= 0. then t
  else if t.hi <= 0. then neg t
  else { lo = 0.; hi = Float.max (-.t.lo) t.hi }

(* Monotone rounding to a storage format maps endpoints to endpoints;
   an endpoint that overflows the target raises. *)
let round fmt t =
  let module Fp = Cheffp_precision.Fp in
  check ~ctx:"round" (Fp.round fmt t.lo) (Fp.round fmt t.hi)

let to_string { lo; hi } =
  if lo = hi then Printf.sprintf "[%.17g]" lo
  else Printf.sprintf "[%.17g, %.17g]" lo hi
