(** Global-bound backends (the pluggable optimizer seam).

    Parameter/result records follow the shape of FPTaylor's
    [opt_common]: split budget + stopping tolerances + time budget in;
    certified bound, witness box and work counters out. *)

type pars = {
  max_splits : int;
  f_abs_tol : float;
  f_rel_tol : float;
  timeout_ms : int;  (** 0 = unlimited *)
}

val default_pars : pars

type 'a result = {
  bound : float;  (** max over leaves; [infinity] when not boundable *)
  lower_witness : Box.t;  (** leaf sub-box where [bound] is attained *)
  witness_value : 'a option;
  splits : int;
  evals : int;
  elapsed_ms : float;
  leaves : (float * Box.t * 'a option) list;
      (** every leaf with its certified bound; a per-configuration score
          must maximize over all leaves *)
}

module type BACKEND = sig
  val name : string

  val maximize : pars -> (Box.t -> float * 'a) -> Box.t -> 'a result
  (** The objective returns a bound rigorous on the sub-box it is
      handed (plus a payload kept for score time); it may raise
      {!Interval.Unbounded} — such leaves read as [infinity] and may be
      rescued by further splitting. *)
end

module Whole : BACKEND
(** Evaluates the whole box once; never splits. *)

module Branch_bound : BACKEND
(** Bisects the loosest leaf first until the split budget, tolerance or
    time budget is reached. Sound for any split depth: the global bound
    is the max of rigorous per-leaf bounds. *)

val of_name : string -> (module BACKEND) option
(** ["whole"] | ["bb"]. *)
