(* Facade over the rigorous range/error analysis: run the Taylor
   evaluator through a global-bound backend, then answer two questions:

   - [analyze]: what is the certified worst-configuration error bound
     of [func] over [box] (with a witness sub-box), or why is there
     none;
   - [score]: for one concrete demotion set at one target format, a
     certified error bound in O(#vars) — or [None] when the bound does
     not apply (an unbounded leaf, a declared-narrow variable in the
     set, or a demoted store that could overflow the target format).

   [score]'s [None]-on-overflow mirrors {!Cheffp_core.Tuner}'s explicit
   range veto: absolute error forms say nothing about values leaving
   the target's finite range, so such configurations are never
   certified. *)

module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config

type verdict = Bounded | Unbounded of string

let verdict_to_string = function
  | Bounded -> "BOUNDED"
  | Unbounded reason -> Printf.sprintf "UNBOUNDED (%s)" reason

type analysis = {
  verdict : verdict;
  worst_bound : float;
      (* certified max |config - reference| over the box, over every
         configuration (all variables F16); [infinity] when Unbounded *)
  value : Interval.t option;  (* enclosure of the reference return *)
  witness : Box.t;  (* sub-box where the bound is attained *)
  box : Box.t;
  backend : string;
  splits : int;
  evals : int;
  elapsed_ms : float;
  leaves : (float * Box.t * Taylor.result option) list;
}

let analyze ?(backend = "bb") ?(pars = Backend.default_pars) ?builtins ?mode
    ?fuel ~prog ~func ~(box : Box.t) () : analysis =
  let (module B : Backend.BACKEND) =
    match Backend.of_name backend with
    | Some m -> m
    | None -> invalid_arg (Printf.sprintf "Range.analyze: no backend %S" backend)
  in
  let objective b =
    let r = Taylor.eval_func ?builtins ?mode ?fuel ~prog ~func ~box:b () in
    (Taylor.slack r.Taylor.ret.Taylor.form, r)
  in
  let r = B.maximize pars objective box in
  let value =
    List.fold_left
      (fun acc (_, _, payload) ->
        match (acc, payload) with
        | None, Some (t : Taylor.result) -> Some t.ret.iv
        | Some iv, Some t -> Some (Interval.hull iv t.ret.iv)
        | acc, None -> acc)
      None r.Backend.leaves
  in
  let verdict =
    if Float.is_finite r.Backend.bound then Bounded
    else
      match
        Taylor.eval_func ?builtins ?mode ?fuel ~prog ~func
          ~box:r.Backend.lower_witness ()
      with
      | exception Interval.Unbounded reason -> Unbounded reason
      | _ -> Unbounded "bound overflows"
  in
  {
    verdict;
    worst_bound = r.Backend.bound;
    value;
    witness = r.Backend.lower_witness;
    box;
    backend = B.name;
    splits = r.Backend.splits;
    evals = r.Backend.evals;
    elapsed_ms = r.Backend.elapsed_ms;
    leaves = r.Backend.leaves;
  }

exception Not_certified

let score (a : analysis) ~(target : Fp.format) (vars : string list) :
    float option =
  match a.verdict with
  | Unbounded _ -> None
  | Bounded -> (
      let u = Fp.unit_roundoff target in
      let cap = 0.5 *. Fp.max_finite target in
      try
        Some
          (List.fold_left
             (fun acc (_, _, payload) ->
               match payload with
               | None -> raise Not_certified
               | Some (r : Taylor.result) ->
                   List.iter
                     (fun v ->
                       if Taylor.SS.mem v r.narrow then raise Not_certified;
                       match Taylor.SM.find_opt v r.peaks with
                       | Some peak when peak >= cap -> raise Not_certified
                       | _ -> ())
                     vars;
                   let coeffs =
                     List.fold_left
                       (fun s v ->
                         s
                         +.
                         match Taylor.SM.find_opt v r.ret.form.coeffs with
                         | Some c -> c
                         | None -> 0.)
                       0. vars
                   in
                   Float.max acc (r.ret.form.fconst +. (u *. coeffs)))
             0. a.leaves)
      with Not_certified -> None)

let pruner (a : analysis) ~(target : Fp.format) : string list -> float option =
 fun vars -> score a ~target vars

(* Union of every variable the certified forms charge — the demotion
   surface the bound can speak about. *)
let charged_vars (a : analysis) =
  List.fold_left
    (fun acc (_, _, payload) ->
      match payload with
      | None -> acc
      | Some (r : Taylor.result) ->
          Taylor.SM.fold
            (fun v _ acc -> if List.mem v acc then acc else v :: acc)
            r.Taylor.ret.Taylor.form.Taylor.coeffs acc)
    [] a.leaves
  |> List.sort compare

let report ?(target = Fp.F32) (a : analysis) =
  let b = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "rigorous range analysis (%s: %d split(s), %d eval(s), %.1f ms)\n"
    a.backend a.splits a.evals a.elapsed_ms;
  pf "  box:      %s\n" (Box.to_string a.box);
  pf "  verdict:  %s\n" (verdict_to_string a.verdict);
  (match a.value with
  | Some iv -> pf "  value:    %s\n" (Interval.to_string iv)
  | None -> ());
  (match a.verdict with
  | Unbounded _ -> ()
  | Bounded ->
      pf "  bound (any config, worst case f16):  %.6g\n" a.worst_bound;
      let vars = charged_vars a in
      (match score a ~target vars with
      | Some bound ->
          pf "  bound (all %d var(s) at %s):%*s%.6g\n" (List.length vars)
            (Fp.format_to_string target)
            (10 - String.length (Fp.format_to_string target))
            "" bound
      | None ->
          pf "  bound at %s: not certified (overflow or narrow storage)\n"
            (Fp.format_to_string target)));
  pf "  witness:  %s\n" (Box.to_string a.witness);
  Buffer.contents b
