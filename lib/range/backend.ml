(* Global-bound backends behind a pluggable seam.

   A backend maximizes an objective (the per-box rigorous error bound)
   over an input box. The branch-and-bound backend mirrors the
   optimizer parameter/result shape of FPTaylor's [opt_common]: a split
   budget, absolute/relative stopping tolerances and a time budget in;
   the certified bound, the witness sub-box where it is attained and
   the work performed out.

   Splitting is sound by construction: the global bound is the maximum
   of the per-leaf bounds, and each leaf bound is rigorous on its own
   sub-box. An objective that raises {!Interval.Unbounded} on a leaf
   marks it infinite; splitting may still rescue it (e.g. a denominator
   interval straddling zero only near one corner), and whatever stays
   infinite when the budget runs out makes the verdict [Unbounded]. *)

type pars = {
  max_splits : int;  (* box bisections before giving up on tightening *)
  f_abs_tol : float;  (* stop splitting a leaf when the children improve *)
  f_rel_tol : float;  (* on it by less than abs_tol + rel_tol * |bound| *)
  timeout_ms : int;  (* wall budget; 0 = unlimited *)
}

let default_pars =
  { max_splits = 64; f_abs_tol = 0.; f_rel_tol = 0.05; timeout_ms = 200 }

type 'a result = {
  bound : float;  (* max over leaves; [infinity] = not boundable *)
  lower_witness : Box.t;  (* the leaf where [bound] is attained *)
  witness_value : 'a option;  (* objective payload on the witness leaf *)
  splits : int;
  evals : int;
  elapsed_ms : float;
  leaves : (float * Box.t * 'a option) list;
      (* every leaf with its certified bound — per-configuration scoring
         must maximize over all of them, not just the witness *)
}

module type BACKEND = sig
  val name : string

  val maximize : pars -> (Box.t -> float * 'a) -> Box.t -> 'a result
  (** [maximize pars f box]: [f] returns a rigorous bound valid on the
      sub-box it is given, plus a payload for score-time use; it may
      raise {!Interval.Unbounded}. *)
end

let clock_ms () = Sys.time () *. 1000.

let eval_leaf f box =
  match f box with
  | b, payload -> (b, Some payload)
  | exception Interval.Unbounded _ -> (infinity, None)

(* Evaluate the whole box once — no splitting. *)
module Whole : BACKEND = struct
  let name = "whole"

  let maximize _pars f box =
    let t0 = clock_ms () in
    let bound, payload = eval_leaf f box in
    {
      bound;
      lower_witness = box;
      witness_value = payload;
      splits = 0;
      evals = 1;
      elapsed_ms = clock_ms () -. t0;
      leaves = [ (bound, box, payload) ];
    }
end

module Branch_bound : BACKEND = struct
  let name = "bb"

  (* Work list kept sorted by decreasing bound: always split the worst
     leaf, so the budget goes where the bound is loose. Split counts
     stay small (tens), so a sorted list beats a heap on clarity. *)
  let insert leaf live =
    let b0 (b, _, _, _) = b in
    let rec go = function
      | [] -> [ leaf ]
      | l :: rest when b0 l >= b0 leaf -> l :: go rest
      | rest -> leaf :: rest
    in
    go live

  let maximize pars f box =
    let t0 = clock_ms () in
    let evals = ref 0 in
    let eval b =
      incr evals;
      eval_leaf f b
    in
    let expired () =
      pars.timeout_ms > 0 && clock_ms () -. t0 > float_of_int pars.timeout_ms
    in
    let bound0, payload0 = eval box in
    let live = ref [ (bound0, box, payload0, true) ] in
    let frozen = ref [] in
    let splits = ref 0 in
    let freeze leaf = frozen := leaf :: !frozen in
    while
      !splits < pars.max_splits && !live <> [] && not (expired ())
    do
      match !live with
      | [] -> ()
      | ((b, leaf_box, _, splittable) as leaf) :: rest ->
          live := rest;
          if not splittable then freeze leaf
          else begin
            match Box.split leaf_box with
            | None -> freeze leaf
            | Some (l, r) ->
                incr splits;
                let bl, pl = eval l and br, pr = eval r in
                let improved =
                  b -. Float.max bl br
                  > pars.f_abs_tol +. (pars.f_rel_tol *. Float.abs b)
                in
                (* children are rigorous on their halves regardless;
                   [improved] only decides whether to keep splitting *)
                let child cb cbox cp = (cb, cbox, cp, improved) in
                live := insert (child bl l pl) (insert (child br r pr) !live)
          end
    done;
    let leaves =
      List.rev_append !frozen !live
      |> List.map (fun (b, bx, p, _) -> (b, bx, p))
    in
    let worst =
      List.fold_left
        (fun acc ((b, _, _) as leaf) ->
          match acc with
          | Some (b0, _, _) when b0 >= b -> acc
          | _ -> Some leaf)
        None leaves
    in
    match worst with
    | None ->
        (* unreachable: the initial leaf is always present *)
        {
          bound = bound0;
          lower_witness = box;
          witness_value = payload0;
          splits = !splits;
          evals = !evals;
          elapsed_ms = clock_ms () -. t0;
          leaves = [ (bound0, box, payload0) ];
        }
    | Some (bound, wbox, wpayload) ->
        {
          bound;
          lower_witness = wbox;
          witness_value = wpayload;
          splits = !splits;
          evals = !evals;
          elapsed_ms = clock_ms () -. t0;
          leaves;
        }
end

let of_name = function
  | "whole" -> Some (module Whole : BACKEND)
  | "bb" | "branch-bound" -> Some (module Branch_bound : BACKEND)
  | _ -> None
