(* Input boxes: one interval per float input (per element for float
   arrays), everything else pinned to its concrete argument.

   The default box mirrors {!Cheffp_core.Sampling}'s: +/- 50% of the
   base value's magnitude — except at zero, where a relative box would
   collapse to a point; there the box is the absolute interval [-1, 1]
   (the same rule the sampling default uses), so bounds and sweeps stay
   non-trivial. FPCore [:pre] ranges, when present, override the
   default box exactly as they override the sampling plan. *)

open Cheffp_ir

exception Spec_error of string

let spec_fail fmt = Format.kasprintf (fun s -> raise (Spec_error s)) fmt

type dim =
  | Dflt of Interval.t
  | Dfarr of Interval.t array
  | Dfixed of Interp.arg

type t = { dims : (string * dim) list }

let dims t = t.dims
let make dims = { dims }

let default_iv v =
  if v = 0. then Interval.make (-1.) 1.
  else
    let d = 0.5 *. Float.abs v in
    Interval.make (v -. d) (v +. d)

let of_args ?(ranges = []) ~(func : Ast.func) ~(args : Interp.arg list) () =
  if List.length args <> List.length func.Ast.params then
    spec_fail "function %S expects %d arguments, got %d" func.Ast.fname
      (List.length func.Ast.params)
      (List.length args);
  let dims =
    List.map2
      (fun (p : Ast.param) arg ->
        let dim =
          match (p.Ast.pmode, p.Ast.pty, arg) with
          | Ast.Out, _, _ -> Dfixed arg
          | Ast.In, Ast.Tscalar (Ast.Sflt _), Interp.Aflt v -> (
              match List.assoc_opt p.Ast.pname ranges with
              | Some (Some lo, Some hi) when hi > lo -> Dflt (Interval.make lo hi)
              | _ -> Dflt (default_iv v))
          | Ast.In, Ast.Tarr (Ast.Sflt _), Interp.Afarr a ->
              Dfarr (Array.map default_iv a)
          | _, _, a -> Dfixed a
        in
        (p.Ast.pname, dim))
      func.Ast.params args
  in
  { dims }

(* Degenerate box: every float input pinned to its argument point. The
   right box for single-point tuning, where candidate errors are
   measured at exactly [args]. *)
let point_of_args ~(func : Ast.func) ~(args : Interp.arg list) () =
  let b = of_args ~func ~args () in
  {
    dims =
      List.map2
        (fun (name, dim) arg ->
          match (dim, arg) with
          | Dflt _, Interp.Aflt v -> (name, Dflt (Interval.point v))
          | Dfarr _, Interp.Afarr a ->
              (name, Dfarr (Array.map Interval.point a))
          | _ -> (name, dim))
        b.dims args;
  }

(* "x=lo,hi; y=lo,hi" — entries separated by ';' or whitespace. Each
   named parameter must be a float input of the box being overridden. *)
let override_of_string spec =
  String.split_on_char ';' spec
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map (fun entry ->
         let entry = String.trim entry in
         match String.index_opt entry '=' with
         | None -> spec_fail "bad entry %S in --box (want name=lo,hi)" entry
         | Some i -> (
             let name = String.sub entry 0 i
             and rest =
               String.sub entry (i + 1) (String.length entry - i - 1)
             in
             match String.split_on_char ',' rest with
             | [ lo; hi ] -> (
                 match
                   ( float_of_string_opt (String.trim lo),
                     float_of_string_opt (String.trim hi) )
                 with
                 | Some lo, Some hi when lo <= hi ->
                     (name, Interval.make lo hi)
                 | Some lo, Some hi ->
                     spec_fail "box for %S has lo %g > hi %g" name lo hi
                 | _ -> spec_fail "bad numbers in box entry %S" entry)
             | _ -> spec_fail "bad entry %S in --box (want name=lo,hi)" entry))

let apply_override t overrides =
  List.iter
    (fun (name, _) ->
      match List.assoc_opt name t.dims with
      | Some (Dflt _) -> ()
      | Some _ -> spec_fail "--box names non-scalar-float parameter %S" name
      | None -> spec_fail "--box names unknown parameter %S" name)
    overrides;
  {
    dims =
      List.map
        (fun (name, dim) ->
          match List.assoc_opt name overrides with
          | Some iv -> (name, Dflt iv)
          | None -> (name, dim))
        t.dims;
  }

(* ------------------------------------------------------------------ *)
(* Splitting, for the branch-and-bound maximizer: bisect the scalar
   float dimension with the largest normalized width. Array dimensions
   are never split (the blow-up is exponential in element count); they
   only widen the bound. *)

let split_score iv = Interval.width iv /. (1. +. Interval.mag iv)

let split t =
  let best = ref None in
  List.iter
    (fun (name, dim) ->
      match dim with
      | Dflt iv when Interval.width iv > 0. ->
          let s = split_score iv in
          (match !best with
          | Some (_, s') when s' >= s -> ()
          | _ -> best := Some (name, s))
      | _ -> ())
    t.dims;
  match !best with
  | None -> None
  | Some (name, _) ->
      let remap f =
        {
          dims =
            List.map
              (fun (n, dim) ->
                if n = name then
                  match dim with
                  | Dflt iv -> (n, Dflt (f iv))
                  | _ -> assert false
                else (n, dim))
              t.dims;
        }
      in
      let lo_half iv = Interval.make (Interval.lo iv) (Interval.mid iv)
      and hi_half iv = Interval.make (Interval.mid iv) (Interval.hi iv) in
      Some (remap lo_half, remap hi_half)

let to_string t =
  t.dims
  |> List.filter_map (fun (name, dim) ->
         match dim with
         | Dflt iv -> Some (Printf.sprintf "%s in %s" name (Interval.to_string iv))
         | Dfarr ivs ->
             Some
               (Printf.sprintf "%s[%d] in %s .. %s" name (Array.length ivs)
                  (Interval.to_string ivs.(0))
                  (Interval.to_string ivs.(Array.length ivs - 1)))
         | Dfixed _ -> None)
  |> String.concat ", "
