(* First-order Taylor-form evaluator over MiniFP.

   One abstract execution over an input {!Box} produces, for the
   function's return value, an interval enclosing the reference run
   (the [Config.double] execution — binary64 everywhere except
   declared-narrow storage, exactly what {!Cheffp_core.Search} measures
   against) together with an affine error form

     |ret_config - ret_reference|  <=  const + SUM_v coeff_v * u(fmt_config(v))

   with one non-negative coefficient per program variable and
   [u F64 = 0]. The form is configuration-independent, so any
   mixed-precision configuration afterwards scores in O(#vars) — the
   same shape as {!Cheffp_core.Profile} atoms, but as a sound upper
   bound instead of a first-order estimate:

   - intervals are outward-rounded ({!Interval}), so they enclose both
     the real values and the binary64 values of the reference run;
   - every rounding event of a demoted run is charged to the affine
     form: stores charge [max(mag, 2^-14) * u(fmt(v))] to their
     destination (the [2^-14] floor covers subnormal absolute rounding
     for every format down to F16), and Source-mode operation roundings
     are charged to one representative of the variable set whose
     demotion enables them (the realized rounding format is always at
     least as wide as the representative's, so the charge is an upper
     bound);
   - derivative factors (for [*], [/] and intrinsic calls) are interval
     magnitudes over the {e config-reachable} range — the reference
     interval widened by the form's worst-case slack at F16 — so the
     first-order propagation is a true bound, not an estimate;
   - coefficient arithmetic itself is inflated by a relative 1e-9,
     orders of magnitude beyond its own rounding error;
   - control flow widens gracefully: an [if] whose condition cannot be
     decided joins both branches (hull + pointwise-max forms), and when
     the condition's operands carry error — so the two runs might take
     {e different} branches — the join also charges the branch hull
     width as a constant; counted loops unroll; everything else
     (input-dependent [while], unbounded intervals, intrinsics without
     enclosures) raises {!Interval.Unbounded} rather than producing a
     number. *)

open Cheffp_ir
open Ast
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module SM = Map.Make (String)
module SS = Set.Make (String)

let give_up fmt = Format.kasprintf (fun s -> raise (Interval.Unbounded s)) fmt

(* Worst-case unit roundoff over the demotion lattice: slack evaluates
   forms as if every variable were demoted to F16. *)
let u_wide = Fp.unit_roundoff Fp.F16

(* coeff * u(fmt) must dominate the absolute subnormal rounding bound
   eta(fmt) = half the smallest subnormal: eta/u peaks at 2^-14 for
   F16, so charges never drop below it. *)
let coeff_floor = 0x1p-14

(* Relative inflation absorbing the rounding of coefficient arithmetic
   itself (a handful of binary64 ops per charge, each 2^-53). *)
let infl = 1. +. 1e-9

(* ------------------------------------------------------------------ *)
(* Error forms.                                                        *)

type form = { fconst : float; coeffs : float SM.t }

let zero_form = { fconst = 0.; coeffs = SM.empty }
let is_zero f = f.fconst = 0. && SM.is_empty f.coeffs
let coeff_sum f = SM.fold (fun _ c acc -> acc +. c) f.coeffs 0.
let slack f = f.fconst +. (u_wide *. coeff_sum f)

let add_form a b =
  if is_zero a then b
  else if is_zero b then a
  else
    {
      fconst = a.fconst +. b.fconst;
      coeffs = SM.union (fun _ x y -> Some (x +. y)) a.coeffs b.coeffs;
    }

let scale_form k f =
  if is_zero f then f
  else if Float.is_nan k || k < 0. then give_up "negative/NaN error scale"
  else
    {
      fconst = f.fconst *. k *. infl;
      coeffs = SM.map (fun c -> c *. k *. infl) f.coeffs;
    }

let max_form a b =
  if a == b then a
  else
    {
      fconst = Float.max a.fconst b.fconst;
      coeffs = SM.union (fun _ x y -> Some (Float.max x y)) a.coeffs b.coeffs;
    }

let charge f v c =
  {
    f with
    coeffs =
      SM.update v
        (function None -> Some c | Some c0 -> Some (c0 +. c))
        f.coeffs;
  }

let bump_const f c = { f with fconst = f.fconst +. c }

(* ------------------------------------------------------------------ *)
(* Abstract values.                                                    *)

(* When does the config run carry a value in a narrow format? [Top]:
   never (some contributing leaf is F64 in every configuration — a
   literal, an int conversion). [Vars s]: exactly when every variable
   in [s] is demoted (then the realized format is at least as wide as
   each member's target). [Vars empty] arises only from declared-narrow
   storage, where reference and config rounding coincide. *)
type dep = Top | Vars of SS.t

let dep_join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Vars x, Vars y -> Vars (SS.union x y)

type av = {
  iv : Interval.t;  (* encloses the Config.double reference run *)
  rfmt : Fp.format;  (* format the reference run carries the value in *)
  dep : dep;
  form : form;  (* |config - reference| *)
}

let mag_c av = Interval.mag av.iv +. slack av.form

type ival = Known of int | Anyint of bool  (* payload: fragile *)

let ival_fragile = function Known _ -> false | Anyint f -> f

type meta = { declared : Fp.format; key : string }
(* [key] is the name rounding charges are attributed to — the caller's
   variable for by-reference bindings, the local/param name otherwise
   (configurations key overrides by name, as the interpreter does). *)

type cell =
  | Cf of av * meta
  | Ci of ival
  | Cfa of av array * meta
  | Cia of ival array

type env = cell ref SM.t

let copy_cell = function
  | Cf _ as c -> c
  | Ci _ as c -> c
  | Cfa (a, m) -> Cfa (Array.copy a, m)
  | Cia a -> Cia (Array.copy a)

let copy_env (env : env) : env = SM.map (fun r -> ref (copy_cell !r)) env

type st = {
  prog : program;
  builtins : Builtins.t;
  mode : Config.rounding_mode;
  mutable fuel : int;
  mutable peaks : float SM.t;  (* per-variable max config magnitude stored *)
  mutable narrow : SS.t;  (* declared-narrow float variables seen *)
}

let note_peak st v m =
  st.peaks <-
    SM.update v
      (function None -> Some m | Some m0 -> Some (Float.max m0 m))
      st.peaks

let wider a b = if Fp.bits a >= Fp.bits b then a else b

(* ------------------------------------------------------------------ *)
(* Rounding events.                                                    *)

(* Both runs round at the same (config-independent) format: the
   interval tracks the reference's rounding; the two runs' rounded
   values differ by at most the incoming difference plus one relative
   rounding of each. *)
let same_format_round fmt av =
  let iv = Interval.round fmt av.iv in
  let form =
    if is_zero av.form then av.form
    else
      bump_const av.form
        (Fp.unit_roundoff fmt
        *. ((2. *. Interval.mag iv) +. slack av.form)
        *. infl)
  in
  { av with iv; form }

(* Source-mode operation rounding. The reference rounds at [rfmt]; the
   config run additionally rounds when its operands are all narrow —
   charged to one representative of the enabling set (the realized
   format is at least as wide as the representative's target, so
   [coeff * u(fmt(rep))] dominates). *)
let op_round st av =
  match st.mode with
  | Config.Extended -> { av with rfmt = Fp.F64; dep = Top }
  | Config.Source -> (
      let av =
        if Fp.equal_format av.rfmt Fp.F64 then av
        else same_format_round av.rfmt av
      in
      match av.dep with
      | Vars s when (not (SS.is_empty s)) && Fp.equal_format av.rfmt Fp.F64 ->
          let m = mag_c av in
          SS.iter (fun v -> note_peak st v m) s;
          let rep = SS.min_elt s in
          { av with form = charge av.form rep (Float.max m coeff_floor *. infl) }
      | _ -> av)

(* Store into storage declared [declared] whose override key is [key]:
   the reference rounds at the declared format; a configuration rounds
   at the override when [key] is demoted. Returns the av subsequent
   reads observe. *)
let store_value st ~(m : meta) av =
  if not (Fp.equal_format m.declared Fp.F64) then begin
    st.narrow <- SS.add m.key st.narrow;
    let av = same_format_round m.declared av in
    { av with rfmt = m.declared; dep = Vars SS.empty }
  end
  else begin
    let mc = mag_c av in
    note_peak st m.key mc;
    let form = charge av.form m.key (Float.max mc coeff_floor *. infl) in
    { av with rfmt = Fp.F64; dep = Vars (SS.singleton m.key); form }
  end

(* ------------------------------------------------------------------ *)
(* Joins (branch hulls).                                               *)

(* [diverging]: the two runs might take different branches (the
   condition's operands carry error), so a joined value additionally
   differs by up to the hull width plus the config slack. *)
let join_av ~diverging a b =
  if a == b then a
  else begin
    let iv = Interval.hull a.iv b.iv in
    let form = max_form a.form b.form in
    let form =
      if diverging then
        bump_const form
          (Interval.width iv +. Float.max (slack a.form) (slack b.form))
      else form
    in
    { iv; rfmt = wider a.rfmt b.rfmt; dep = dep_join a.dep b.dep; form }
  end

let join_ival ~diverging a b =
  match (a, b) with
  | Known p, Known q when p = q -> a
  | _ -> Anyint (diverging || ival_fragile a || ival_fragile b)

let join_cell ~diverging a b =
  if a == b then a
  else
    match (a, b) with
    | Cf (x, m), Cf (y, _) -> Cf (join_av ~diverging x y, m)
    | Ci x, Ci y -> Ci (join_ival ~diverging x y)
    | Cfa (xs, m), Cfa (ys, _) ->
        Cfa (Array.map2 (fun x y -> join_av ~diverging x y) xs ys, m)
    | Cia xs, Cia ys ->
        Cia (Array.map2 (fun x y -> join_ival ~diverging x y) xs ys)
    | _ -> give_up "branch join: kind mismatch"

let join_env ~diverging (base : env) (et : env) (ee : env) : env =
  SM.mapi
    (fun name r ->
      let ct = !(SM.find name et) and ce = !(SM.find name ee) in
      if ct == ce then r
      else begin
        r := join_cell ~diverging ct ce;
        r
      end)
    base

(* Join of a list of avs (unknown-index array reads). *)
let join_avs ~diverging = function
  | [] -> give_up "empty array read"
  | x :: rest -> List.fold_left (fun acc y -> join_av ~diverging acc y) x rest

(* ------------------------------------------------------------------ *)
(* Lipschitz bounds for intrinsics over the config-reachable range.    *)

let rec succ_n n x = if n = 0 then x else succ_n (n - 1) (Float.succ x)
let up4 = succ_n 4

(* Divergence of the shared libm implementation evaluated at two
   nearby points beyond the Lipschitz term of the mathematical
   function: at most two worst-case libm errors (< 2 ulps each at
   glibc), taken with generous slop. *)
let libm_slop mag = 8. *. Fp.unit_roundoff Fp.F64 *. (mag +. 1e-300)

(* sup |f'| over [wiv] (the reference interval widened by the config
   slack), rounded up. Raises for intrinsics whose derivative cannot be
   bounded on [wiv]. *)
let lipschitz1 st name (wiv : Interval.t) : float =
  let lo = Interval.lo wiv in
  match name with
  | "sin" | "cos" | "tanh" | "atan" | "fabs" -> 1.
  | "exp" -> up4 (exp (Interval.hi wiv))
  | "log" ->
      if lo > 0. then up4 (1. /. lo)
      else give_up "log: argument range touches zero"
  | "log2" ->
      if lo > 0. then up4 (1. /. (lo *. log 2.))
      else give_up "log2: argument range touches zero"
  | "log10" ->
      if lo > 0. then up4 (1. /. (lo *. log 10.))
      else give_up "log10: argument range touches zero"
  | "sqrt" ->
      if lo > 0. then up4 (1. /. (2. *. sqrt lo))
      else give_up "sqrt: argument range touches zero"
  | "tan" -> (
      match Builtins.interval1 st.builtins "tan" with
      | Some hook ->
          let tlo, thi = hook (Interval.to_pair wiv) in
          if Float.is_finite tlo && Float.is_finite thi then
            let m = Float.max (Float.abs tlo) (Float.abs thi) in
            up4 (1. +. (m *. m))
          else give_up "tan: argument range crosses a pole"
      | None -> give_up "tan: no interval enclosure registered")
  | _ -> give_up "no derivative bound for intrinsic %s" name

(* ------------------------------------------------------------------ *)
(* Expression evaluation.                                              *)

type ev = EF of av | EI of ival

exception Ret of ev option

let as_av = function
  | EF av -> av
  | EI _ -> give_up "expected a float, got an int"

let as_ival = function
  | EI i -> i
  | EF _ -> give_up "expected an int, got a float"

let burn st =
  if st.fuel <= 0 then
    give_up "abstract fuel exhausted (loop too large to unroll)";
  st.fuel <- st.fuel - 1

let find_cell env name =
  match SM.find_opt name env with
  | Some r -> r
  | None -> give_up "undeclared variable %S" name

let int_binop op a b =
  match (op, a, b) with
  | _, Anyint fa, Anyint fb -> Anyint (fa || fb)
  | _, Anyint f, Known _ | _, Known _, Anyint f -> (
      match op with
      | And | Or -> (
          (* absorbing constants keep the result known *)
          let k = match (a, b) with Known k, _ | _, Known k -> Some k | _ -> None in
          match (op, k) with
          | And, Some 0 -> Known 0
          | Or, Some k when k <> 0 -> Known 1
          | _ -> Anyint f)
      | _ -> Anyint f)
  | _, Known x, Known y -> (
      let bool_of b = Known (if b then 1 else 0) in
      match op with
      | Add -> Known (x + y)
      | Sub -> Known (x - y)
      | Mul -> Known (x * y)
      | Div -> if y = 0 then give_up "integer division by zero" else Known (x / y)
      | Mod -> if y = 0 then give_up "integer modulo by zero" else Known (x mod y)
      | Eq -> bool_of (x = y)
      | Ne -> bool_of (x <> y)
      | Lt -> bool_of (x < y)
      | Le -> bool_of (x <= y)
      | Gt -> bool_of (x > y)
      | Ge -> bool_of (x >= y)
      | And -> bool_of (x <> 0 && y <> 0)
      | Or -> bool_of (x <> 0 || y <> 0))

(* Float comparison, decided only when it holds for every point of the
   box in {e both} runs (operand intervals widened by config slack);
   fragile when the runs themselves could disagree. *)
let float_cmp op a b =
  let sa = slack a.form and sb = slack b.form in
  let alo = Interval.lo a.iv -. sa
  and ahi = Interval.hi a.iv +. sa
  and blo = Interval.lo b.iv -. sb
  and bhi = Interval.hi b.iv +. sb in
  let fragile = sa +. sb > 0. in
  let sure t f = if t then Known 1 else if f then Known 0 else Anyint fragile in
  match op with
  | Lt -> sure (ahi < blo) (alo >= bhi)
  | Le -> sure (ahi <= blo) (alo > bhi)
  | Gt -> sure (alo > bhi) (ahi <= blo)
  | Ge -> sure (alo >= bhi) (ahi < blo)
  | Eq ->
      sure
        (sa = 0. && sb = 0. && Interval.is_point a.iv && Interval.is_point b.iv
        && Interval.lo a.iv = Interval.lo b.iv)
        (ahi < blo || alo > bhi)
  | Ne ->
      sure
        (ahi < blo || alo > bhi)
        (sa = 0. && sb = 0. && Interval.is_point a.iv && Interval.is_point b.iv
        && Interval.lo a.iv = Interval.lo b.iv)
  | _ -> give_up "bad float comparison"

let float_binop st op a b =
  let raw =
    match op with
    | Add -> Interval.add a.iv b.iv
    | Sub -> Interval.sub a.iv b.iv
    | Mul -> Interval.mul a.iv b.iv
    | Div -> Interval.div a.iv b.iv
    | Mod -> give_up "%% applied to floats"
    | _ -> assert false
  in
  let form =
    match op with
    | Add | Sub -> add_form a.form b.form
    | Mul ->
        add_form
          (scale_form (Interval.mag b.iv) a.form)
          (scale_form (Interval.mag a.iv +. slack a.form) b.form)
    | Div ->
        let migb = Interval.mig b.iv in
        let lb' = migb -. slack b.form in
        if not (lb' > 0.) then
          give_up "division: demoted denominator can approach zero"
        else
          scale_form
            (1. /. (migb *. lb'))
            (add_form
               (scale_form (Interval.mag b.iv) a.form)
               (scale_form (Interval.mag a.iv) b.form))
    | _ -> assert false
  in
  op_round st
    { iv = raw; rfmt = wider a.rfmt b.rfmt; dep = dep_join a.dep b.dep; form }

(* Fold the interpreter's call-format rule: result rounds at the widest
   float argument's format (F16-based fold), F64 when no float
   arguments participate. *)
let call_meta favs =
  match favs with
  | [] -> (Fp.F64, Top)
  | _ ->
      List.fold_left
        (fun (rf, d) (a : av) -> (wider rf a.rfmt, dep_join d a.dep))
        (Fp.F16, Vars SS.empty)
        favs

let rec eval st (env : env) (e : expr) : ev =
  match e with
  | Fconst x ->
      EF { iv = Interval.point x; rfmt = Fp.F64; dep = Top; form = zero_form }
  | Iconst n -> EI (Known n)
  | Var v -> (
      match !(find_cell env v) with
      | Cf (av, _) -> EF av
      | Ci i -> EI i
      | Cfa _ | Cia _ -> give_up "array %S used as a scalar" v)
  | Idx (a, ie) -> (
      let i = as_ival (eval st env ie) in
      match (!(find_cell env a), i) with
      | Cfa (arr, _), Known i ->
          if i < 0 || i >= Array.length arr then
            give_up "index %d out of bounds for %S" i a
          else EF arr.(i)
      | Cfa (arr, _), Anyint fragile ->
          EF (join_avs ~diverging:fragile (Array.to_list arr))
      | Cia arr, Known i ->
          if i < 0 || i >= Array.length arr then
            give_up "index %d out of bounds for %S" i a
          else EI arr.(i)
      | Cia arr, Anyint fragile ->
          if Array.length arr = 0 then give_up "read from empty array %S" a
          else
            EI
              (Array.fold_left
                 (fun acc x -> join_ival ~diverging:fragile acc x)
                 arr.(0)
                 (Array.sub arr 1 (Array.length arr - 1)))
      | (Cf _ | Ci _), _ -> give_up "scalar %S indexed as an array" a)
  | Unop (Neg, e) -> (
      match eval st env e with
      | EI (Known n) -> EI (Known (-n))
      | EI (Anyint _ as i) -> EI i
      | EF a -> EF { a with iv = Interval.neg a.iv })
  | Unop (Not, e) -> (
      match as_ival (eval st env e) with
      | Known n -> EI (Known (if n = 0 then 1 else 0))
      | Anyint _ as i -> EI i)
  | Binop (op, ea, eb) -> (
      let va = eval st env ea in
      let vb = eval st env eb in
      match (va, vb) with
      | EI a, EI b -> EI (int_binop op a b)
      | EF a, EF b -> (
          match op with
          | Add | Sub | Mul | Div | Mod -> EF (float_binop st op a b)
          | Eq | Ne | Lt | Le | Gt | Ge -> EI (float_cmp op a b)
          | And | Or -> give_up "boolean op on floats")
      | _ -> give_up "kind mismatch in binary op")
  | Call (name, args) -> eval_call st env name args

and eval_call st env name args : ev =
  match Builtins.find st.builtins name with
  | None -> (
      let f = func_exn st.prog name in
      match call_func st env f args with
      | Some v -> v
      | None -> give_up "void function %S used in an expression" name)
  | Some (sg, _) -> (
      let evs = List.map (eval st env) args in
      match (name, evs) with
      | "itof", [ EI (Known n) ] ->
          EF
            {
              iv = Interval.point (float_of_int n);
              rfmt = Fp.F64;
              dep = Top;
              form = zero_form;
            }
      | "itof", [ EI (Anyint _) ] -> give_up "itof of an undetermined integer"
      | "ftoi", [ EF a ] ->
          if is_zero a.form && Interval.is_point a.iv then
            EI (Known (int_of_float (Interval.lo a.iv)))
          else EI (Anyint (not (is_zero a.form)))
      | "select", [ EI c; EF x; EF y ] -> (
          match c with
          | Known n -> EF (if n <> 0 then x else y)
          | Anyint fragile -> EF (join_av ~diverging:fragile x y))
      | "fma", [ EF a; EF b; EF c ] ->
          (* exact product-sum, one rounding: the raw interval of
             a*b + c encloses the infinitely-precise fma result *)
          let raw = Interval.add (Interval.mul a.iv b.iv) c.iv in
          let form =
            add_form
              (add_form
                 (scale_form (Interval.mag b.iv) a.form)
                 (scale_form (Interval.mag a.iv +. slack a.form) b.form))
              c.form
          in
          let rfmt, dep = call_meta [ a; b; c ] in
          EF (op_round st { iv = raw; rfmt; dep; form })
      | ("castf32" | "castf16"), [ EF a ] ->
          let fixed = if name = "castf32" then Fp.F32 else Fp.F16 in
          let a = same_format_round fixed a in
          let rfmt, dep = call_meta [ a ] in
          EF (op_round st { a with rfmt; dep })
      | ("floor" | "ceil" | "sign"), [ EF a ] -> (
          if not (is_zero a.form) then
            give_up "%s of an error-carrying value (discontinuous)" name
          else
            match Builtins.interval1 st.builtins name with
            | Some hook ->
                let iv = Interval.of_pair (hook (Interval.to_pair a.iv)) in
                let rfmt, dep = call_meta [ a ] in
                EF (op_round st { iv; rfmt; dep; form = zero_form })
            | None -> give_up "no interval enclosure for %s" name)
      | ("fmin" | "fmax"), [ EF a; EF b ] -> (
          match Builtins.interval2 st.builtins name with
          | Some hook ->
              let iv =
                Interval.of_pair
                  (hook (Interval.to_pair a.iv) (Interval.to_pair b.iv))
              in
              (* |min(a', b') - min(a, b)| <= max(|a'-a|, |b'-b|) *)
              let form = max_form a.form b.form in
              let rfmt, dep = call_meta [ a; b ] in
              EF (op_round st { iv; rfmt; dep; form })
          | None -> give_up "no interval enclosure for %s" name)
      | "pow", [ EF a; EF b ] -> (
          match Builtins.interval2 st.builtins name with
          | None -> give_up "no interval enclosure for pow"
          | Some hook ->
              let wa = Interval.widen a.iv (slack a.form)
              and wb = Interval.widen b.iv (slack b.form) in
              if not (Interval.lo wa > 0.) then
                give_up "pow: base range touches zero"
              else begin
                let iv =
                  Interval.of_pair
                    (hook (Interval.to_pair a.iv) (Interval.to_pair b.iv))
                in
                let form =
                  if is_zero a.form && is_zero b.form then zero_form
                  else begin
                    (* d/da = b*a^(b-1), d/db = ln(a)*a^b, bounded over
                       the config-reachable rectangle *)
                    let pw lo hi =
                      Interval.of_pair (hook (Interval.to_pair wa) (lo, hi))
                    in
                    let p_bm1 =
                      pw (Interval.lo wb -. 1.) (Interval.hi wb +. 1.)
                    in
                    let la = up4 (Interval.mag wb *. Interval.mag p_bm1) in
                    let labs =
                      Float.max
                        (Float.abs (log (Interval.lo wa)))
                        (Float.abs (log (Interval.hi wa)))
                    in
                    let p_b = pw (Interval.lo wb) (Interval.hi wb) in
                    let lb = up4 (up4 labs *. Interval.mag p_b) in
                    bump_const
                      (add_form (scale_form la a.form) (scale_form lb b.form))
                      (libm_slop (Interval.mag iv))
                  end
                in
                let rfmt, dep = call_meta [ a; b ] in
                EF (op_round st { iv; rfmt; dep; form })
              end)
      | _, [ EF a ] when sg.Builtins.ret = Builtins.Kflt -> (
          match Builtins.interval1 st.builtins name with
          | None -> give_up "no interval enclosure for intrinsic %s" name
          | Some hook ->
              let iv = Interval.of_pair (hook (Interval.to_pair a.iv)) in
              let form =
                if is_zero a.form then zero_form
                else begin
                  let wiv = Interval.widen a.iv (slack a.form) in
                  let l = lipschitz1 st name wiv in
                  bump_const (scale_form l a.form)
                    (libm_slop (Interval.mag iv +. (l *. slack a.form)))
                end
              in
              let rfmt, dep = call_meta [ a ] in
              EF (op_round st { iv; rfmt; dep; form }))
      | _, [ EF a; EF b ]
        when sg.Builtins.ret = Builtins.Kflt
             && is_zero a.form && is_zero b.form -> (
          (* user-registered binary intrinsic on error-free operands:
             the enclosure alone suffices *)
          match Builtins.interval2 st.builtins name with
          | None -> give_up "no interval enclosure for intrinsic %s" name
          | Some hook ->
              let iv =
                Interval.of_pair
                  (hook (Interval.to_pair a.iv) (Interval.to_pair b.iv))
              in
              let rfmt, dep = call_meta [ a; b ] in
              EF (op_round st { iv; rfmt; dep; form = zero_form }))
      | _ -> give_up "cannot bound intrinsic %s here" name)

(* Calls to user-defined functions are inlined abstractly. [In] scalars
   bind fresh cells (rounding charged to the {e parameter} name, which
   is how the interpreter keys configuration overrides too); [Out]
   scalars and arrays share the caller's cell, so charges keep the
   caller's key. *)
and call_func st env (f : func) args : ev option =
  burn st;
  if List.length args <> List.length f.params then
    give_up "function %S expects %d arguments, got %d" f.fname
      (List.length f.params) (List.length args);
  let callee = ref SM.empty in
  List.iter2
    (fun (p : param) arg ->
      let cell_ref =
        match (p.pmode, p.pty, arg) with
        | Out, Tscalar _, Var v -> find_cell env v
        | Out, Tscalar _, _ -> give_up "out argument for %S must be a variable" f.fname
        | In, Tscalar Sint, _ -> ref (Ci (as_ival (eval st env arg)))
        | In, Tscalar (Sflt declared), _ ->
            let m = { declared; key = p.pname } in
            ref (Cf (store_value st ~m (as_av (eval st env arg)), m))
        | _, Tarr _, Var v -> find_cell env v
        | _, Tarr _, _ -> give_up "array argument for %S must be a name" f.fname
      in
      callee := SM.add p.pname cell_ref !callee)
    f.params args;
  try
    ignore (exec_block st !callee f.body);
    None
  with Ret v -> v

(* ------------------------------------------------------------------ *)
(* Statements.                                                         *)

and cond_tri st env c : [ `T | `F | `U of bool ] =
  match as_ival (eval st env c) with
  | Known 0 -> `F
  | Known _ -> `T
  | Anyint fragile -> `U fragile

and exec st (env : env) stmt : env =
  burn st;
  match stmt with
  | Decl { name; dty; init } -> (
      match dty with
      | Dscalar Sint ->
          let r = ref (Ci (Known 0)) in
          let env = SM.add name r env in
          Option.iter (fun e -> r := Ci (as_ival (eval st env e))) init;
          env
      | Dscalar (Sflt declared) ->
          let m = { declared; key = name } in
          let zero =
            { iv = Interval.point 0.; rfmt = Fp.F64; dep = Top; form = zero_form }
          in
          let r = ref (Cf (zero, m)) in
          let env = SM.add name r env in
          Option.iter
            (fun e -> r := Cf (store_value st ~m (as_av (eval st env e)), m))
            init;
          env
      | Darr (Sint, size) -> (
          match as_ival (eval st env size) with
          | Known n when n >= 0 ->
              SM.add name (ref (Cia (Array.make n (Known 0)))) env
          | Known n -> give_up "array %S has negative size %d" name n
          | Anyint _ -> give_up "array %S has undetermined size" name)
      | Darr (Sflt declared, size) -> (
          match as_ival (eval st env size) with
          | Known n when n >= 0 ->
              let m = { declared; key = name } in
              let zero =
                {
                  iv = Interval.point 0.;
                  rfmt = Fp.F64;
                  dep = Top;
                  form = zero_form;
                }
              in
              SM.add name (ref (Cfa (Array.make n zero, m))) env
          | Known n -> give_up "array %S has negative size %d" name n
          | Anyint _ -> give_up "array %S has undetermined size" name))
  | Assign (lv, e) ->
      let v = eval st env e in
      store st env lv v;
      env
  | If (c, t, e) -> (
      match cond_tri st env c with
      | `T -> exec_block st env t
      | `F -> exec_block st env e
      | `U diverging ->
          let et = exec_block st (copy_env env) t in
          let ee = exec_block st (copy_env env) e in
          join_env ~diverging env et ee)
  | For { var; lo; hi; down; body } -> (
      match (as_ival (eval st env lo), as_ival (eval st env hi)) with
      | Known lo, Known hi ->
          let cell = ref (Ci (Known 0)) in
          let env' = SM.add var cell env in
          let iter i =
            cell := Ci (Known i);
            ignore (exec_block st env' body)
          in
          if down then
            for i = hi - 1 downto lo do
              iter i
            done
          else
            for i = lo to hi - 1 do
              iter i
            done;
          env
      | _ -> give_up "loop bound of %S is not a compile-time-known integer" var)
  | While (c, body) -> (
      match cond_tri st env c with
      | `F -> env
      | `T ->
          ignore (exec_block st env body);
          exec st env (While (c, body))
      | `U _ -> give_up "while condition cannot be decided over the box")
  | Return None -> raise (Ret None)
  | Return (Some e) -> raise (Ret (Some (eval st env e)))
  | Call_stmt (name, args) -> (
      match Builtins.find st.builtins name with
      | Some _ ->
          ignore (eval_call st env name args);
          env
      | None ->
          let f = func_exn st.prog name in
          ignore (call_func st env f args);
          env)
  | Push _ | Pop _ -> give_up "adjoint stack ops are outside the range model"

and store st env lv v =
  match (lv, v) with
  | Lvar name, v -> (
      let r = find_cell env name in
      match (!r, v) with
      | Cf (_, m), EF av -> r := Cf (store_value st ~m av, m)
      | Ci _, EI i -> r := Ci i
      | _ -> give_up "kind mismatch storing into %S" name)
  | Lidx (name, ie), v -> (
      let r = find_cell env name in
      let idx = as_ival (eval st env ie) in
      match (!r, v, idx) with
      | Cfa (arr, m), EF av, Known i ->
          if i < 0 || i >= Array.length arr then
            give_up "index %d out of bounds for %S" i name
          else begin
            let arr = Array.copy arr in
            arr.(i) <- store_value st ~m av;
            r := Cfa (arr, m)
          end
      | Cfa (arr, m), EF av, Anyint fragile ->
          (* weak update: any element may or may not receive the store *)
          let stored = store_value st ~m av in
          r :=
            Cfa (Array.map (fun e -> join_av ~diverging:fragile e stored) arr, m)
      | Cia arr, EI i, Known j ->
          if j < 0 || j >= Array.length arr then
            give_up "index %d out of bounds for %S" j name
          else begin
            let arr = Array.copy arr in
            arr.(j) <- i;
            r := Cia arr
          end
      | Cia arr, EI i, Anyint fragile ->
          r := Cia (Array.map (fun e -> join_ival ~diverging:fragile e i) arr)
      | _ -> give_up "kind mismatch storing into %S" name)

and exec_block st env stmts =
  (* Names declared directly in the block go out of scope afterwards
     (the original binding map is returned); mutations to outer cells
     persist through their refs. *)
  ignore (List.fold_left (fun e s -> exec st e s) env stmts);
  env

(* ------------------------------------------------------------------ *)
(* Entry point.                                                        *)

type result = {
  ret : av;
  peaks : float SM.t;
  narrow : SS.t;
}

let bind_param st (p : param) (dim : Box.dim) : cell ref =
  match (p.pty, dim) with
  | Tscalar Sint, Box.Dfixed (Interp.Aint n) -> ref (Ci (Known n))
  | Tscalar (Sflt declared), Box.Dflt iv ->
      let m = { declared; key = p.pname } in
      ref
        (Cf
           ( store_value st ~m
               { iv; rfmt = Fp.F64; dep = Top; form = zero_form },
             m ))
  | Tscalar (Sflt declared), Box.Dfixed (Interp.Aflt v) ->
      let m = { declared; key = p.pname } in
      ref
        (Cf
           ( store_value st ~m
               { iv = Interval.point v; rfmt = Fp.F64; dep = Top; form = zero_form },
             m ))
  | Tarr (Sflt declared), Box.Dfarr ivs ->
      let m = { declared; key = p.pname } in
      ref
        (Cfa
           ( Array.map
               (fun iv ->
                 store_value st ~m
                   { iv; rfmt = Fp.F64; dep = Top; form = zero_form })
               ivs,
             m ))
  | Tarr (Sflt declared), Box.Dfixed (Interp.Afarr a) ->
      let m = { declared; key = p.pname } in
      ref
        (Cfa
           ( Array.map
               (fun v ->
                 store_value st ~m
                   {
                     iv = Interval.point v;
                     rfmt = Fp.F64;
                     dep = Top;
                     form = zero_form;
                   })
               a,
             m ))
  | Tarr Sint, Box.Dfixed (Interp.Aiarr a) ->
      ref (Cia (Array.map (fun n -> Known n) a))
  | _ -> give_up "argument kind mismatch for parameter %S" p.pname

let default_builtins = lazy (Builtins.create ())

let eval_func ?builtins ?(mode = Config.Source) ?(fuel = 2_000_000) ~prog
    ~func ~(box : Box.t) () : result =
  let builtins =
    match builtins with Some b -> b | None -> Lazy.force default_builtins
  in
  let st =
    { prog; builtins; mode; fuel; peaks = SM.empty; narrow = SS.empty }
  in
  let f = func_exn prog func in
  let dims = Box.dims box in
  if List.length dims <> List.length f.params then
    give_up "box does not match the parameters of %S" func;
  let env =
    List.fold_left2
      (fun env (p : param) (dname, dim) ->
        if p.pname <> dname then give_up "box dimension order mismatch";
        SM.add p.pname (bind_param st p dim) env)
      SM.empty f.params dims
  in
  let ret =
    try
      ignore (exec_block st env f.body);
      None
    with Ret v -> v
  in
  match ret with
  | Some (EF av) -> { ret = av; peaks = st.peaks; narrow = st.narrow }
  | Some (EI _) -> give_up "function %S returned an int" func
  | None -> give_up "function %S returned no value" func
