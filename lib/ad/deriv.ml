open Cheffp_ir
open Ast

type rule = args:Ast.expr list -> seed:Ast.expr -> (Ast.expr * Ast.expr) list

type t = (string, rule) Hashtbl.t

let empty () : t = Hashtbl.create 32
let register t name rule = Hashtbl.replace t name rule
let find t name = Hashtbl.find_opt t name

let alias t approx exact =
  match find t exact with
  | Some rule -> register t approx rule
  | None ->
      invalid_arg
        (Printf.sprintf "Deriv.alias: no rule registered for %S" exact)

let arg1 name args =
  match args with
  | [ u ] -> u
  | _ -> invalid_arg (Printf.sprintf "Deriv: %s expects 1 argument" name)

let arg2 name args =
  match args with
  | [ u; v ] -> (u, v)
  | _ -> invalid_arg (Printf.sprintf "Deriv: %s expects 2 arguments" name)

let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( + ) a b = Binop (Add, a, b)
let neg e = Unop (Neg, e)
let call f args = Call (f, args)

let default () =
  let t = empty () in
  let reg1 name df =
    register t name (fun ~args ~seed ->
        let u = arg1 name args in
        [ (u, df u seed) ])
  in
  reg1 "sin" (fun u s -> s * call "cos" [ u ]);
  reg1 "cos" (fun u s -> neg (s * call "sin" [ u ]));
  reg1 "tan" (fun u s -> s / (call "cos" [ u ] * call "cos" [ u ]));
  reg1 "exp" (fun u s -> s * call "exp" [ u ]);
  reg1 "log" (fun u s -> s / u);
  reg1 "log2" (fun u s -> s / (u * Fconst (Float.log 2.)));
  reg1 "log10" (fun u s -> s / (u * Fconst (Float.log 10.)));
  reg1 "sqrt" (fun u s -> s / (Fconst 2. * call "sqrt" [ u ]));
  reg1 "tanh" (fun u s ->
      s * (Fconst 1. - (call "tanh" [ u ] * call "tanh" [ u ])));
  reg1 "atan" (fun u s -> s / (Fconst 1. + (u * u)));
  reg1 "fabs" (fun u s -> s * call "sign" [ u ]);
  (* Piecewise-constant intrinsics: zero derivative almost everywhere. *)
  register t "floor" (fun ~args:_ ~seed:_ -> []);
  register t "ceil" (fun ~args:_ ~seed:_ -> []);
  register t "sign" (fun ~args:_ ~seed:_ -> []);
  register t "itof" (fun ~args:_ ~seed:_ -> []);
  register t "ftoi" (fun ~args:_ ~seed:_ -> []);
  (* Precision casts: derivative 1 almost everywhere. *)
  reg1 "castf32" (fun _ s -> s);
  reg1 "castf16" (fun _ s -> s);
  register t "pow" (fun ~args ~seed ->
      let u, v = arg2 "pow" args in
      [
        (u, seed * v * call "pow" [ u; v - Fconst 1. ]);
        (v, seed * call "pow" [ u; v ] * call "log" [ u ]);
      ]);
  register t "fmin" (fun ~args ~seed ->
      let u, v = arg2 "fmin" args in
      let u_wins = Binop (Le, u, v) in
      [
        (u, call "select" [ u_wins; seed; Fconst 0. ]);
        (v, call "select" [ u_wins; Fconst 0.; seed ]);
      ]);
  register t "fmax" (fun ~args ~seed ->
      let u, v = arg2 "fmax" args in
      let u_wins = Binop (Ge, u, v) in
      [
        (u, call "select" [ u_wins; seed; Fconst 0. ]);
        (v, call "select" [ u_wins; Fconst 0.; seed ]);
      ]);
  register t "fma" (fun ~args ~seed ->
      match args with
      | [ u; v; w ] -> [ (u, seed * v); (v, seed * u); (w, seed) ]
      | _ -> invalid_arg "Deriv: fma expects 3 arguments");
  register t "select" (fun ~args ~seed ->
      match args with
      | [ c; a; b ] ->
          [
            (a, call "select" [ c; seed; Fconst 0. ]);
            (b, call "select" [ c; Fconst 0.; seed ]);
          ]
      | _ -> invalid_arg "Deriv: select expects 3 arguments");
  t
