(** MiniFP → FPCore exporter.

    Renders straight-line and loop {!Cheffp_ir.Ast} functions as
    well-formed FPCore 1.x so results are cross-checkable against
    FPTaylor / Herbie / Daisy, and so {!Import} can reconstruct the
    function exactly (the round-trip property the fuzz suite gates).

    Mapping (DESIGN.md §15): the ambient [:precision] is the function's
    return format — binary64 functions may mix formats (narrow stores as
    [(! :precision P (cast (! :precision binary64 e)))]), while
    binary32/binary16 functions must be uniformly typed; declarations
    and assignments become a [let*] chain (integers as
    [(! :cheffp-type int e)]);
    single-variable [if] statements become [if] expressions binding
    that variable; [for]/[while] statements become
    [(! :cheffp-loop for|for-down|while (while* ...))] whose loop
    variables are the assigned variables in body order. A
    mixed-precision configuration rides along as [:cheffp-config]
    metadata without changing the program text.

    Outside this subset — arrays, [out] parameters, user-function
    calls, multi-variable branch bodies, loops whose post-loop state
    needs more than one variable — export fails with a precise error
    rather than emitting something that means less than the input. *)

open Cheffp_ir

exception Error of string

val func_to_fpcore :
  ?config:Cheffp_precision.Config.t -> prog:Ast.program -> func:string ->
  unit -> string
(** One function as an [(FPCore ...)] form (trailing newline included).
    @raise Error when the function uses a construct outside the
    exportable subset, or is not found. *)

val program_to_fpcore :
  ?config:Cheffp_precision.Config.t -> Ast.program -> string
(** Every function of the program, concatenated. @raise Error *)
