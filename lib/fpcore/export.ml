open Cheffp_ir
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config

exception Error of string

let fail fmt = Format.kasprintf (fun m -> raise (Error ("export: " ^ m))) fmt

(* ------------------------------------------------------------------ *)
(* Document tree                                                       *)

type doc =
  | A of string  (* atom *)
  | L of doc list  (* (...) *)
  | B of doc list  (* [...] *)

let rec inline = function
  | A a -> a
  | L xs -> "(" ^ String.concat " " (List.map inline xs) ^ ")"
  | B xs -> "[" ^ String.concat " " (List.map inline xs) ^ "]"

(* Width-aware renderer: a node that fits on the line stays inline;
   otherwise the head stays on the first line and every remaining
   element gets its own indented line. *)
let rec render ind d =
  let s = inline d in
  if String.length s + ind <= 78 then s
  else
    match d with
    | (L (h :: rest) | B (h :: rest)) when rest <> [] ->
        let op, cl = match d with B _ -> ("[", "]") | _ -> ("(", ")") in
        let pad = String.make (ind + 2) ' ' in
        (* keep the head and any leading atoms (operator, loop kind, ...)
           on the opening line; everything else gets its own line *)
        let rec split lead = function
          | A _ as a :: tl when tl <> [] -> split (a :: lead) tl
          | tl -> (List.rev lead, tl)
        in
        let lead, tl = split [ h ] rest in
        op
        ^ String.concat " " (List.map inline lead)
        ^ String.concat ""
            (List.map (fun r -> "\n" ^ pad ^ render (ind + 2) r) tl)
        ^ cl
    | _ -> s

(* ------------------------------------------------------------------ *)
(* Literals and names                                                  *)

(* Same shortest-faithful scheme as {!Pp.float_literal}: every emitted
   decimal reads back to the identical binary64, so import is
   bit-exact. *)
let float_literal x =
  if Float.is_integer x && Float.abs x < 1e16 then Printf.sprintf "%.1f" x
  else
    let s = Printf.sprintf "%.17g" x in
    let shorter = Printf.sprintf "%.9g" x in
    if float_of_string shorter = x then shorter else s

let fconst x =
  if Float.is_nan x then A "NAN"
  else if x = Float.infinity then A "INFINITY"
  else if x = Float.neg_infinity then L [ A "-"; A "INFINITY" ]
  else A (float_literal x)

let prec_name = function
  | Fp.F64 -> "binary64"
  | Fp.F32 -> "binary32"
  | Fp.F16 -> "binary16"

(* Operators with an FPCore spelling the importer maps straight back. *)
let fpcore_calls =
  [
    ("sqrt", 1); ("fabs", 1); ("sin", 1); ("cos", 1); ("tan", 1); ("exp", 1);
    ("log", 1); ("log2", 1); ("log10", 1); ("tanh", 1); ("atan", 1);
    ("floor", 1); ("ceil", 1); ("pow", 2); ("fmin", 2); ("fmax", 2);
    ("fma", 3);
  ]

let arith_name = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | _ -> assert false

let cmp_name = function
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | _ -> assert false

(* A literal-only integer tree: FPCore has no integer spelling for it
   (bare numbers re-import as reals), so such operands are rejected
   rather than mistranslated. *)
let rec const_int = function
  | Ast.Iconst _ -> true
  | Ast.Unop (Ast.Neg, e) -> const_int e
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), a, b) ->
      const_int a && const_int b
  | _ -> false

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

(* ------------------------------------------------------------------ *)
(* Read/write sets                                                     *)

let rec expr_reads acc = function
  | Ast.Var v -> v :: acc
  | Ast.Idx (v, i) -> expr_reads (v :: acc) i
  | Ast.Fconst _ | Ast.Iconst _ -> acc
  | Ast.Unop (_, e) -> expr_reads acc e
  | Ast.Binop (_, a, b) -> expr_reads (expr_reads acc a) b
  | Ast.Call (_, args) -> List.fold_left expr_reads acc args

(* Over-approximate read set (shadowing ignored): used only to decide
   which loop variable survives the loop, where over-approximation can
   reject or pick a still-correct result, never mistranslate. *)
let rec stmts_read acc stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Ast.Decl { init; _ } ->
          Option.fold ~none:acc ~some:(expr_reads acc) init
      | Ast.Assign (lv, e) ->
          let acc =
            match lv with
            | Ast.Lidx (_, i) -> expr_reads acc i
            | Ast.Lvar _ -> acc
          in
          expr_reads acc e
      | Ast.If (c, t, e) -> stmts_read (stmts_read (expr_reads acc c) t) e
      | Ast.For { lo; hi; body; _ } ->
          stmts_read (expr_reads (expr_reads acc lo) hi) body
      | Ast.While (c, body) -> stmts_read (expr_reads acc c) body
      | Ast.Return e -> Option.fold ~none:acc ~some:(expr_reads acc) e
      | Ast.Call_stmt (_, args) -> List.fold_left expr_reads acc args
      | Ast.Push lv | Ast.Pop lv -> (
          match lv with
          | Ast.Lidx (v, i) -> expr_reads (v :: acc) i
          | Ast.Lvar v -> v :: acc))
    acc stmts

(* Variables declared outside [stmts] that the statements assign, in
   first-assignment order. *)
let assigned_outer stmts =
  let rec go local acc stmts =
    List.fold_left
      (fun (local, acc) s ->
        match s with
        | Ast.Decl { name; _ } -> (name :: local, acc)
        | Ast.Assign (Ast.Lvar v, _) ->
            if List.mem v local || List.mem v acc then (local, acc)
            else (local, acc @ [ v ])
        | Ast.Assign (Ast.Lidx _, _) -> (local, acc)
        | Ast.If (_, t, e) ->
            let _, acc = go local acc t in
            let _, acc = go local acc e in
            (local, acc)
        | Ast.For { var; body; _ } ->
            let _, acc = go (var :: local) acc body in
            (local, acc)
        | Ast.While (_, body) ->
            let _, acc = go local acc body in
            (local, acc)
        | Ast.Return _ | Ast.Call_stmt _ | Ast.Push _ | Ast.Pop _ ->
            (local, acc))
      (local, acc) stmts
  in
  snd (go [] [] stmts)

(* ------------------------------------------------------------------ *)
(* Conversion state                                                    *)

type st = {
  scalars : (string, Ast.scalar) Hashtbl.t;  (* declared, incl. params *)
  pending : (string, unit) Hashtbl.t;  (* declared but not yet assigned *)
  fname : string;
  ambient : Fp.format;  (* the core's [:precision], from the return type *)
}

let scalar_of st v =
  match Hashtbl.find_opt st.scalars v with
  | Some sc -> sc
  | None -> fail "%s: assignment to undeclared variable %s" st.fname v

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec conv_expr st (e : Ast.expr) : doc =
  match e with
  | Ast.Fconst x -> fconst x
  | Ast.Iconst n -> A (string_of_int n)
  | Ast.Var v ->
      if Hashtbl.mem st.pending v then
        fail "%s: variable %s may be read before it is assigned" st.fname v
      else if not (Hashtbl.mem st.scalars v) then
        fail "%s: unknown variable %s" st.fname v
      else A v
  | Ast.Idx (a, _) ->
      fail "%s: array access %s[...] is outside the FPCore subset" st.fname a
  | Ast.Unop (Ast.Neg, Ast.Fconst x) -> fconst (-.x)
  | Ast.Unop (Ast.Neg, Ast.Iconst n) -> A (string_of_int (-n))
  | Ast.Unop (Ast.Neg, e) -> L [ A "-"; conv_expr st e ]
  | Ast.Unop (Ast.Not, _) ->
      fail "%s: boolean operator outside a condition" st.fname
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op, a, b) ->
      if const_int a && const_int b then
        fail
          "%s: constant integer arithmetic has no faithful FPCore spelling"
          st.fname;
      L [ A (arith_name op); conv_expr st a; conv_expr st b ]
  | Ast.Binop (Ast.Mod, _, _) ->
      fail "%s: integer modulo is outside the FPCore subset" st.fname
  | Ast.Binop (_, _, _) ->
      fail "%s: comparison or boolean operator outside a condition" st.fname
  | Ast.Call (f, args) -> (
      match List.assoc_opt f fpcore_calls with
      | Some n when List.length args = n ->
          L (A f :: List.map (conv_expr st) args)
      | Some n ->
          fail "%s: %s expects %d arguments, got %d" st.fname f n
            (List.length args)
      | None -> fail "%s: call to %S has no FPCore equivalent" st.fname f)

let rec conv_cond st (e : Ast.expr) : doc =
  match e with
  | Ast.Iconst 1 -> A "TRUE"
  | Ast.Iconst 0 -> A "FALSE"
  | Ast.Unop (Ast.Not, c) -> L [ A "not"; conv_cond st c ]
  | Ast.Binop (Ast.And, a, b) -> L [ A "and"; conv_cond st a; conv_cond st b ]
  | Ast.Binop (Ast.Or, a, b) -> L [ A "or"; conv_cond st a; conv_cond st b ]
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b)
    ->
      L [ A (cmp_name op); conv_expr st a; conv_expr st b ]
  | _ ->
      fail "%s: a loop or branch condition must be a comparison, and/or/not, \
            or a boolean constant"
        st.fname

(* ------------------------------------------------------------------ *)
(* Store annotation (the strict convention Import.strip_store_annot
   demands: narrow stores are a single rounding of an ambient-precision
   value, spelled with an explicit inner re-annotation when the value
   is compound). *)

let annotate_store st sc rhs =
  match sc with
  | Ast.Sint -> L [ A "!"; A ":cheffp-type"; A "int"; rhs ]
  | Ast.Sflt f when f = st.ambient -> rhs
  | Ast.Sflt f when st.ambient = Fp.F64 ->
      let inner =
        match rhs with
        | A _ -> rhs
        | d -> L [ A "!"; A ":precision"; A "binary64"; d ]
      in
      L [ A "!"; A ":precision"; A (prec_name f); L [ A "cast"; inner ] ]
  | Ast.Sflt f ->
      fail
        "%s: %s store under a %s ambient; only binary64 functions may mix \
         formats"
        st.fname (prec_name f)
        (prec_name st.ambient)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

(* Convert a statement sequence to one FPCore expression: a single
   [let*] chain whose body is the final value. [result] is [`Ret] for a
   function body (must end in [return e]) or [`Var v] for an [if]
   branch (value of [v] when the branch finishes). *)
let rec body_to_doc st ~in_branch ~(result : [ `Ret | `Var of string ]) stmts :
    doc =
  let bindings = ref [] in
  let push b = bindings := b :: !bindings in
  let finish body =
    match List.rev !bindings with [] -> body | bs -> L [ A "let*"; L bs; body ]
  in
  let rec go = function
    | [] -> (
        match result with
        | `Var v ->
            if Hashtbl.mem st.pending v then
              fail "%s: a branch leaves %s unassigned" st.fname v
            else finish (A v)
        | `Ret ->
            fail "%s: function body must end in a return statement" st.fname)
    | [ Ast.Assign (Ast.Lvar w, e) ] when result = `Var w ->
        (* final store to the branch's variable: its value is the
           branch result, so no binding (and no extra store) is needed *)
        let d = conv_expr st e in
        Hashtbl.remove st.pending w;
        finish d
    | Ast.Return _ :: _ when result <> `Ret ->
        fail "%s: return inside an if branch cannot be exported" st.fname
    | Ast.Return None :: _ -> fail "%s: void return cannot be exported" st.fname
    | Ast.Return (Some e) :: rest ->
        if rest <> [] then
          fail "%s: unreachable statements after return" st.fname;
        finish (conv_expr st e)
    | Ast.Decl { dty = Ast.Darr _; _ } :: _ ->
        fail "%s: array declarations are outside the FPCore subset" st.fname
    | Ast.Decl { name; dty = Ast.Dscalar sc; init = None } :: rest ->
        Hashtbl.replace st.scalars name sc;
        Hashtbl.replace st.pending name ();
        go rest
    | Ast.Decl { name; dty = Ast.Dscalar sc; init = Some e } :: rest ->
        let d = conv_expr st e in
        Hashtbl.replace st.scalars name sc;
        Hashtbl.remove st.pending name;
        push (B [ A name; annotate_store st sc d ]);
        go rest
    | Ast.Assign (Ast.Lidx _, _) :: _ ->
        fail "%s: array stores are outside the FPCore subset" st.fname
    | Ast.Assign (Ast.Lvar v, e) :: rest ->
        let sc = scalar_of st v in
        let d = conv_expr st e in
        Hashtbl.remove st.pending v;
        push (B [ A v; annotate_store st sc d ]);
        go rest
    | Ast.If (c, th, el) :: rest -> (
        let cd = conv_cond st c in
        match dedup (assigned_outer th @ assigned_outer el) with
        | [ v ] ->
            let sc = scalar_of st v in
            let br stmts =
              let st' =
                {
                  st with
                  scalars = Hashtbl.copy st.scalars;
                  pending = Hashtbl.copy st.pending;
                }
              in
              body_to_doc st' ~in_branch:true ~result:(`Var v) stmts
            in
            let th_d = br th in
            let el_d = br el in
            Hashtbl.remove st.pending v;
            push (B [ A v; annotate_store st sc (L [ A "if"; cd; th_d; el_d ]) ]);
            go rest
        | [] -> fail "%s: if statement assigns no outer variable" st.fname
        | vs ->
            fail
              "%s: if statement assigns %d variables (%s); only \
               single-variable branches have an FPCore expression form"
              st.fname (List.length vs) (String.concat ", " vs))
    | Ast.For { var; lo; hi; down; body } :: rest ->
        if in_branch then
          fail "%s: a loop inside an if branch cannot be exported" st.fname;
        loop_export ~counter:(Some (var, lo, hi, down)) ~cond:None body rest
    | Ast.While (c, body) :: rest ->
        if in_branch then
          fail "%s: a loop inside an if branch cannot be exported" st.fname;
        loop_export ~counter:None ~cond:(Some c) body rest
    | Ast.Call_stmt (f, _) :: _ ->
        fail "%s: call to %S has no FPCore equivalent" st.fname f
    | (Ast.Push _ | Ast.Pop _) :: _ ->
        fail "%s: value-stack operations are outside the FPCore subset"
          st.fname
  (* A for/while statement becomes one [(! :cheffp-loop K (while* ...))]
     binding. Loop variables are the assigned variables in body order;
     FPCore's loop yields one value, so at most one of them may be
     needed afterwards. *)
  and loop_export ~counter ~cond body rest =
    let targets =
      List.map
        (function
          | Ast.Assign (Ast.Lvar v, e) -> (v, e)
          | Ast.Assign (Ast.Lidx _, _) ->
              fail "%s: array store inside an exported loop body" st.fname
          | Ast.Decl _ ->
              fail "%s: declarations inside an exported loop body are not \
                    supported"
                st.fname
          | Ast.If _ | Ast.For _ | Ast.While _ ->
              fail "%s: nested control flow inside an exported loop body is \
                    not supported"
                st.fname
          | Ast.Return _ | Ast.Call_stmt _ | Ast.Push _ | Ast.Pop _ ->
              fail "%s: unsupported statement inside an exported loop body"
                st.fname)
        body
    in
    if targets = [] then
      fail "%s: a loop with an empty body cannot be exported" st.fname;
    List.iteri
      (fun i (v, _) ->
        if List.exists (fun (w, _) -> w = v) (List.filteri (fun j _ -> j < i) targets)
        then
          fail "%s: loop body stores %s twice; FPCore loop variables update \
                once per iteration"
            st.fname v)
      targets;
    List.iter
      (fun (v, _) ->
        if not (Hashtbl.mem st.scalars v) then
          fail "%s: loop variable %s is not declared" st.fname v;
        if Hashtbl.mem st.pending v then
          fail "%s: loop variable %s must be initialized before the loop"
            st.fname v)
      targets;
    (* For-loop bounds are evaluated once in MiniFP but the synthesized
       FPCore condition re-reads them every iteration, so they must not
       mention the counter or any loop variable. *)
    (match counter with
    | Some (cv, lo, hi, _) ->
        if List.exists (fun (v, _) -> v = cv) targets then
          fail "%s: loop body assigns the counter %s" st.fname cv;
        let breads = expr_reads (expr_reads [] lo) hi in
        if List.mem cv breads then
          fail "%s: loop bounds read %s, which the counter shadows" st.fname cv;
        List.iter
          (fun (v, _) ->
            if List.mem v breads then
              fail "%s: loop bounds read loop variable %s" st.fname v)
          targets
    | None -> ());
    let counter_doc =
      match counter with
      | Some (cv, lo, hi, down) ->
          let lo_d = conv_expr st lo and hi_d = conv_expr st hi in
          Hashtbl.add st.scalars cv Ast.Sint;
          if down then
            Some
              ( L [ A ">="; A cv; lo_d ],
                "for-down",
                B [ A cv; L [ A "-"; hi_d; A "1" ]; L [ A "-"; A cv; A "1" ] ]
              )
          else
            Some
              ( L [ A "<"; A cv; hi_d ],
                "for",
                B [ A cv; lo_d; L [ A "+"; A cv; A "1" ] ] )
      | None -> None
    in
    let upd_docs =
      List.map
        (fun (v, e) ->
          let d = conv_expr st e in
          let d =
            match scalar_of st v with
            | Ast.Sint -> L [ A "!"; A ":cheffp-type"; A "int"; d ]
            | Ast.Sflt _ -> d
          in
          B [ A v; A v; d ])
        targets
    in
    let cond_d, kind, counter_binding =
      match (counter_doc, cond) with
      | Some (cd, k, cb), None ->
          Hashtbl.remove st.scalars (match counter with
            | Some (cv, _, _, _) -> cv
            | None -> assert false);
          (cd, k, [ cb ])
      | None, Some c -> (conv_cond st c, "while", [])
      | _ -> assert false
    in
    let later = stmts_read [] rest in
    let res =
      match List.filter (fun (v, _) -> List.mem v later) targets with
      | [] -> fst (List.hd targets)
      | [ (v, _) ] -> v
      | vs ->
          fail
            "%s: %d loop variables (%s) are read after the loop; an FPCore \
             loop yields a single value"
            st.fname (List.length vs)
            (String.concat ", " (List.map fst vs))
    in
    let wdoc =
      L [ A "while*"; cond_d; L (counter_binding @ upd_docs); A res ]
    in
    push (B [ A res; L [ A "!"; A ":cheffp-loop"; A kind; wdoc ] ]);
    go rest
  in
  go stmts

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)

let func_to_fpcore ?config ~prog ~func () =
  let f =
    match Ast.find_func prog func with
    | Some f -> f
    | None -> fail "no function named %S in the program" func
  in
  let ambient =
    match f.ret with
    | Some (Ast.Sflt fmt) -> fmt
    | Some Ast.Sint ->
        fail "%s: integer-valued functions cannot be exported" f.fname
    | None -> fail "%s: void functions cannot be exported" f.fname
  in
  let st =
    {
      scalars = Hashtbl.create 16;
      pending = Hashtbl.create 8;
      fname = f.fname;
      ambient;
    }
  in
  let arg_docs =
    List.map
      (fun (p : Ast.param) ->
        (match p.pmode with
        | Ast.In -> ()
        | Ast.Out ->
            fail "%s: out parameter %s cannot be exported" f.fname p.pname);
        match p.pty with
        | Ast.Tarr _ ->
            fail "%s: array parameter %s cannot be exported" f.fname p.pname
        | Ast.Tscalar sc ->
            Hashtbl.replace st.scalars p.pname sc;
            (match sc with
            | Ast.Sint -> L [ A "!"; A ":cheffp-type"; A "int"; A p.pname ]
            | Ast.Sflt fmt when fmt = ambient -> A p.pname
            | Ast.Sflt fmt when ambient = Fp.F64 ->
                L [ A "!"; A ":precision"; A (prec_name fmt); A p.pname ]
            | Ast.Sflt fmt ->
                fail
                  "%s: %s parameter %s under a %s ambient; only binary64 \
                   functions may mix formats"
                  f.fname (prec_name fmt) p.pname (prec_name ambient)))
      f.params
  in
  let body = body_to_doc st ~in_branch:false ~result:`Ret f.body in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "(FPCore %s %s\n" f.fname (inline (L arg_docs)));
  Buffer.add_string buf (" :precision " ^ prec_name ambient ^ "\n");
  (match config with
  | Some cfg when Config.demoted cfg <> [] ->
      let toks =
        List.map
          (fun (v, fmt) -> v ^ ":" ^ Fp.format_to_string fmt)
          (Config.demoted cfg)
      in
      Buffer.add_string buf
        (Printf.sprintf " :cheffp-config %S\n" (String.concat " " toks))
  | _ -> ());
  Buffer.add_string buf (" " ^ render 1 body ^ ")\n");
  Buffer.contents buf

let program_to_fpcore ?config (prog : Ast.program) =
  String.concat "\n"
    (List.map
       (fun (f : Ast.func) -> func_to_fpcore ?config ~prog ~func:f.fname ())
       prog.funcs)
