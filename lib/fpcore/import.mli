(** FPCore 1.x → MiniFP front-end.

    Translates FPBench-standard kernels into {!Cheffp_ir.Ast} functions
    so the whole analysis stack — estimate, tune, search, the shadow
    oracle — runs unchanged over the community corpus. The supported
    subset (DESIGN.md §15) covers arithmetic [+ - * /], [sqrt fabs fma]
    and the registered transcendentals, [let]/[let*], [if],
    [while]/[while*], numeric constants (decimal, rational, hex,
    [digits], the named constants), and the properties [:name], [:pre],
    [:precision binary64|binary32|binary16], plus the tool namespace
    [:cheffp-config] / [:cheffp-type] / [:cheffp-loop] written by
    {!Export}. Everything outside the subset is rejected with a
    source-located error — never silently mistranslated.

    Translation is store-faithful where it matters for the error model:
    [let*] rebindings of an already-bound symbol reuse the same MiniFP
    variable (one store per binding, same declared format), [if] in
    binding position lowers to a branch assigning the bound variable
    (one store per executed branch), and [:cheffp-loop]-annotated loops
    reconstruct the original [for]/[while] statement exactly. Shadowed
    or parallel bindings fall back to fresh names, which preserves
    values and the store sequence bit-for-bit. *)

open Cheffp_ir

exception Error of string
(** Message includes [file:line:col] (or [line L, col C]) and the
    offending construct. *)

type core = {
  name : string;  (** MiniFP function name (sanitized, unique per file) *)
  source_name : string option;  (** the [:name "..."] property *)
  precision : Cheffp_precision.Fp.format;
      (** ambient [:precision] (default binary64) *)
  func : Ast.func;
  config : Cheffp_precision.Config.t;
      (** mixed-precision assignments from [:cheffp-config], if any *)
  default_args : Interp.arg list;
      (** a sample point derived from [:pre] interval constraints
          (midpoints; 0.5 for unconstrained parameters) so the kernel
          can be analyzed without caller-provided arguments *)
  pre : string option;  (** raw [:pre] text, for provenance *)
  ranges : (string * (float option * float option)) list;
      (** the [(lo, hi)] interval each [:pre] comparison chain bounds,
          keyed by the {e MiniFP} parameter name (matching
          [func.params], not the FPCore symbol) — the sampling box
          [cheffp import --samples] and {!Cheffp_core.Sampling.plan}
          draw from. Parameters without a recognized constraint are
          absent; one-sided constraints appear with [None] on the open
          side. *)
}

val parse_string : ?file:string -> string -> core list
(** All [FPCore] forms in the input, in order. @raise Error *)

val parse_file : string -> core list
(** [parse_string] over the file's contents. @raise Error (also on
    unreadable files) *)

val program : core list -> Ast.program
(** The cores as one MiniFP translation unit. *)

val find : core list -> string -> core option
