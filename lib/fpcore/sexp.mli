(** Source-located S-expression reader for FPCore files.

    FPCore (the FPBench interchange format) is a parenthesized prefix
    syntax; `(` `)` and `[` `]` both delimit lists but must match in
    kind, `;` starts a line comment, and string literals carry property
    values such as [:name "Doppler shift"]. The reader keeps the
    opening position of every node so the importer can reject
    unsupported constructs with a precise location instead of silently
    mistranslating them. *)

type pos = { line : int; col : int }

type t =
  | Atom of string * pos  (** symbol, number, or [:property] keyword *)
  | Str of string * pos  (** ["..."] string literal, unescaped *)
  | List of t list * pos  (** position is the opening delimiter's *)

exception Error of string
(** Lexical or bracketing error; the message already includes
    [file:line:col] (or [line L, col C] when no file is given). *)

val pos_of : t -> pos

val describe : t -> string
(** Short human description ("atom \"sqrt\"", "a list of 3 elements",
    ...) for error messages. *)

val parse_string : ?file:string -> string -> t list
(** All toplevel S-expressions in the input. @raise Error on malformed
    input (unbalanced or mismatched delimiters, unterminated string). *)
