open Cheffp_ir
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config

exception Error of string

type core = {
  name : string;
  source_name : string option;
  precision : Fp.format;
  func : Ast.func;
  config : Config.t;
  default_args : Interp.arg list;
  pre : string option;
  ranges : (string * (float option * float option)) list;
}

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)

let err_at ?file (pos : Sexp.pos) fmt =
  Format.kasprintf
    (fun msg ->
      let where =
        match file with
        | Some f -> Printf.sprintf "%s:%d:%d" f pos.Sexp.line pos.Sexp.col
        | None -> Printf.sprintf "line %d, col %d" pos.Sexp.line pos.Sexp.col
      in
      raise (Error (Printf.sprintf "%s: %s" where msg)))
    fmt

(* ------------------------------------------------------------------ *)
(* Name sanitization                                                   *)

let minifp_keywords =
  [
    "func"; "var"; "if"; "else"; "for"; "in"; "while"; "return"; "out";
    "reversed"; "push"; "pop"; "void"; "int"; "f16"; "f32"; "f64";
  ]

let reserved =
  let t = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace t k ()) minifp_keywords;
  List.iter
    (fun k -> Hashtbl.replace t k ())
    (Builtins.names (Builtins.create ()));
  t

let sanitize s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  let s = Buffer.contents b in
  let s = if s = "" then "v" else s in
  let s = match s.[0] with '0' .. '9' -> "v" ^ s | _ -> s in
  if Hashtbl.mem reserved s then s ^ "_" else s

(* ------------------------------------------------------------------ *)
(* Numbers and named constants                                         *)

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* FPCore numbers: decimal/scientific, hexadecimal floats, and exact
   rationals [p/q]. *)
let parse_num (s : string) : float option =
  match String.index_opt s '/' with
  | Some i when i > 0 && i < String.length s - 1 ->
      let p = String.sub s 0 i
      and q = String.sub s (i + 1) (String.length s - i - 1) in
      let p' =
        match p.[0] with
        | '+' | '-' -> String.sub p 1 (String.length p - 1)
        | _ -> p
      in
      if is_digits p' && is_digits q then
        (* numerator and denominator are exact binary64 integers in
           practice and division rounds correctly, so this is
           round-to-nearest of the rational value *)
        Some (float_of_string p /. float_of_string q)
      else None
  | Some _ -> None
  | None -> (
      match float_of_string_opt s with
      | Some f when s <> "" -> (
          (* float_of_string accepts forms FPCore does not treat as
             numbers ("infinity", "nan"); restrict to digit-led ones *)
          match s.[0] with
          | '0' .. '9' | '.' -> Some f
          | '+' | '-' when String.length s > 1 -> (
              match s.[1] with '0' .. '9' | '.' -> Some f | _ -> None)
          | _ -> None)
      | _ -> None)

let named_constants =
  [
    ("E", Float.exp 1.0);
    ("LOG2E", 1.0 /. Float.log 2.0);
    ("LOG10E", 1.0 /. Float.log 10.0);
    ("LN2", Float.log 2.0);
    ("LN10", Float.log 10.0);
    ("PI", Float.pi);
    ("PI_2", Float.pi /. 2.0);
    ("PI_4", Float.pi /. 4.0);
    ("M_1_PI", 1.0 /. Float.pi);
    ("M_2_PI", 2.0 /. Float.pi);
    ("M_2_SQRTPI", 2.0 /. Float.sqrt Float.pi);
    ("SQRT2", Float.sqrt 2.0);
    ("SQRT1_2", Float.sqrt 0.5);
    ("INFINITY", Float.infinity);
    ("NAN", Float.nan);
  ]

(* ------------------------------------------------------------------ *)
(* Operator tables                                                     *)

let float_unops =
  [
    "sqrt"; "fabs"; "sin"; "cos"; "tan"; "exp"; "log"; "log2"; "log10";
    "tanh"; "atan"; "floor"; "ceil";
  ]

let float_binops = [ "pow"; "fmin"; "fmax" ]

let arith_ops =
  [ ("+", Ast.Add); ("-", Ast.Sub); ("*", Ast.Mul); ("/", Ast.Div) ]

let cmp_ops =
  [
    ("==", Ast.Eq); ("!=", Ast.Ne); ("<", Ast.Lt); ("<=", Ast.Le);
    (">", Ast.Gt); (">=", Ast.Ge);
  ]

(* ------------------------------------------------------------------ *)
(* Context and environment                                             *)

type ctx = {
  file : string option;
  used : (string, int) Hashtbl.t;  (* MiniFP names taken in this core *)
  ambient : Fp.format;  (* the core's :precision *)
}

let errc ctx pos fmt = err_at ?file:ctx.file pos fmt

let fresh ctx base =
  let base = sanitize base in
  match Hashtbl.find_opt ctx.used base with
  | None ->
      Hashtbl.replace ctx.used base 1;
      base
  | Some hint ->
      let rec go k =
        let cand = Printf.sprintf "%s__%d" base k in
        if Hashtbl.mem ctx.used cand then go (k + 1)
        else (
          Hashtbl.replace ctx.used base (k + 1);
          Hashtbl.replace ctx.used cand 1;
          cand)
      in
      go (max 2 (hint + 1))

type binding = { mname : string; sc : Ast.scalar }
type env = (string * binding) list

(* A lowered expression whose kind may still be open (bare numeric
   literals adapt to their context). *)
type texpr = Fe of Ast.expr | Ie of Ast.expr | Num of float

let as_float_err ctx pos = function
  | Fe e -> e
  | Num n -> Ast.Fconst n
  | Ie _ ->
      errc ctx pos "expected a real-valued expression, got an integer one"

let as_int_err ctx pos = function
  | Ie e -> e
  | Num n when Float.is_integer n && Float.abs n < 1e9 ->
      Ast.Iconst (int_of_float n)
  | Num _ -> errc ctx pos "expected an integer literal"
  | Fe _ -> errc ctx pos "expected an integer expression, got a real one"

let scalar_kind = function Ast.Sint -> `I | Ast.Sflt _ -> `F

(* ------------------------------------------------------------------ *)
(* [!] property annotations                                            *)

type annot = {
  a_fmt : Fp.format option;
  a_int : bool;
  a_loop : [ `For | `ForDown | `While ] option;
  a_inner : Sexp.t;
}

let no_annot inner =
  { a_fmt = None; a_int = false; a_loop = None; a_inner = inner }

let format_of_prec ctx pos = function
  | "binary64" -> Fp.F64
  | "binary32" -> Fp.F32
  | "binary16" -> Fp.F16
  | p -> errc ctx pos "unsupported precision %S (binary16/32/64 only)" p

(* Parse [(! :prop val ... e)]; only the properties this tool defines a
   meaning for are accepted inside [!]. *)
let parse_bang ctx (s : Sexp.t) : annot =
  match s with
  | Sexp.List (Sexp.Atom ("!", _) :: rest, pos) ->
      let rec go acc = function
        | [ inner ] -> { acc with a_inner = inner }
        | Sexp.Atom (":precision", _) :: Sexp.Atom (p, ppos) :: tl ->
            go { acc with a_fmt = Some (format_of_prec ctx ppos p) } tl
        | Sexp.Atom (":cheffp-type", _) :: Sexp.Atom ("int", _) :: tl ->
            go { acc with a_int = true } tl
        | Sexp.Atom (":cheffp-loop", _) :: Sexp.Atom (l, lpos) :: tl ->
            let l =
              match l with
              | "for" -> `For
              | "for-down" -> `ForDown
              | "while" -> `While
              | other -> errc ctx lpos "unknown :cheffp-loop kind %S" other
            in
            go { acc with a_loop = Some l } tl
        | Sexp.Atom (p, ppos) :: _ :: _
          when String.length p > 0 && p.[0] = ':' ->
            errc ctx ppos "unsupported property %s in ! annotation" p
        | _ ->
            errc ctx pos
              "malformed ! annotation: expected properties followed by one \
               expression"
      in
      go (no_annot (Sexp.Atom ("", pos))) rest
  | other -> no_annot other

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(*                                                                     *)
(* [acc] collects statements emitted for constructs that have no       *)
(* MiniFP expression form (let bindings, if/while in operand           *)
(* position). Emitted statements only ever write fresh variables, so   *)
(* hoisting them before the enclosing expression preserves meaning.    *)

let rec lower_expr ctx env (acc : Ast.stmt list ref) (s : Sexp.t) : texpr =
  match s with
  | Sexp.Str (_, pos) -> errc ctx pos "string literal in expression position"
  | Sexp.Atom (a, pos) -> (
      match parse_num a with
      | Some f -> Num f
      | None -> (
          match List.assoc_opt a named_constants with
          | Some v -> Fe (Ast.Fconst v)
          | None -> (
              match List.assoc_opt a env with
              | Some b -> (
                  match scalar_kind b.sc with
                  | `F -> Fe (Ast.Var b.mname)
                  | `I -> Ie (Ast.Var b.mname))
              | None when a = "TRUE" || a = "FALSE" ->
                  errc ctx pos "boolean constant outside a condition"
              | None -> errc ctx pos "unbound variable %S" a)))
  | Sexp.List (Sexp.Atom (op, opos) :: args, pos) -> (
      match (op, args) with
      | ("+" | "-" | "*" | "/"), _ -> (
          let bop = List.assoc op arith_ops in
          match args with
          | [ a ] when op = "-" -> (
              match lower_expr ctx env acc a with
              | Fe e -> Fe (Ast.Unop (Ast.Neg, e))
              | Ie e -> Ie (Ast.Unop (Ast.Neg, e))
              | Num n -> Num (-.n))
          | [ a; b ] ->
              let ta = lower_expr ctx env acc a
              and tb = lower_expr ctx env acc b in
              lower_binop ctx pos bop (ta, Sexp.pos_of a) (tb, Sexp.pos_of b)
          | _ ->
              errc ctx opos "operator %s expects %s arguments, got %d" op
                (if op = "-" then "1 or 2" else "2")
                (List.length args))
      | u, [ a ] when List.mem u float_unops ->
          let x =
            as_float_err ctx (Sexp.pos_of a) (lower_expr ctx env acc a)
          in
          Fe (Ast.Call (u, [ x ]))
      | u, _ when List.mem u float_unops ->
          errc ctx opos "%s expects 1 argument, got %d" u (List.length args)
      | b, [ x; y ] when List.mem b float_binops ->
          let x' =
            as_float_err ctx (Sexp.pos_of x) (lower_expr ctx env acc x)
          and y' =
            as_float_err ctx (Sexp.pos_of y) (lower_expr ctx env acc y)
          in
          Fe (Ast.Call (b, [ x'; y' ]))
      | b, _ when List.mem b float_binops ->
          errc ctx opos "%s expects 2 arguments, got %d" b (List.length args)
      | "fma", [ x; y; z ] ->
          let f e =
            as_float_err ctx (Sexp.pos_of e) (lower_expr ctx env acc e)
          in
          Fe (Ast.Call ("fma", [ f x; f y; f z ]))
      | "fma", _ ->
          errc ctx opos "fma expects 3 arguments, got %d" (List.length args)
      | "digits", [ m; e; b ] -> Num (lower_digits ctx (m, e, b) pos)
      | "digits", _ -> errc ctx opos "digits expects 3 arguments"
      | ("let" | "let*"), [ Sexp.List (bindings, _); body ] ->
          let env' =
            lower_bindings ctx env acc ~star:(op = "let*") ~reuse:false
              bindings
          in
          lower_expr ctx env' acc body
      | ("let" | "let*"), _ ->
          errc ctx opos "%s expects a binding list and a body" op
      | "if", [ _; _; _ ] ->
          let t = lower_rhs_fresh ctx env acc ~base:"t" (no_annot s) pos in
          Fe (Ast.Var t)
      | "if", _ -> errc ctx opos "if expects 3 arguments"
      | ("while" | "while*"), _ ->
          let t = lower_rhs_fresh ctx env acc ~base:"t" (no_annot s) pos in
          Fe (Ast.Var t)
      | "!", _ ->
          errc ctx opos "! annotation is not supported in this position"
      | "cast", _ -> errc ctx opos "cast outside a :precision annotation"
      | ("and" | "or" | "not" | "==" | "!=" | "<" | "<=" | ">" | ">="), _ ->
          errc ctx opos "boolean expression outside a condition"
      | other, _ -> errc ctx opos "unsupported FPCore operator %S" other)
  | Sexp.List (_, pos) -> errc ctx pos "expected an operator application"

and lower_binop ctx pos bop (ta, pa) (tb, pb) : texpr =
  match (ta, tb) with
  | Fe x, Fe y -> Fe (Ast.Binop (bop, x, y))
  | Fe x, Num n -> Fe (Ast.Binop (bop, x, Ast.Fconst n))
  | Num n, Fe y -> Fe (Ast.Binop (bop, Ast.Fconst n, y))
  | Ie x, Ie y -> Ie (Ast.Binop (bop, x, y))
  | Ie x, (Num _ as n) -> Ie (Ast.Binop (bop, x, as_int_err ctx pb n))
  | (Num _ as n), Ie y -> Ie (Ast.Binop (bop, as_int_err ctx pa n, y))
  | Num a, Num b -> Fe (Ast.Binop (bop, Ast.Fconst a, Ast.Fconst b))
  | Fe _, Ie _ | Ie _, Fe _ ->
      errc ctx pos "mixed integer/real operands (no implicit conversion)"

and lower_digits ctx (m, e, b) pos : float =
  let int_atom = function
    | Sexp.Atom (a, _) -> (
        match int_of_string_opt a with
        | Some i -> i
        | None -> errc ctx pos "digits expects integer literals")
    | _ -> errc ctx pos "digits expects integer literals"
  in
  let m = int_atom m and e = int_atom e and b = int_atom b in
  match b with
  | 2 -> Float.ldexp (float_of_int m) e
  | 10 -> float_of_string (Printf.sprintf "%de%d" m e)
  | _ -> errc ctx pos "digits base %d not supported (2 or 10)" b

(* Conditions are MiniFP integer expressions. [pure] forbids emitted
   statements (loop conditions are re-evaluated every iteration, so a
   binding inside one cannot be hoisted). *)
and lower_cond ctx env acc ?(pure = false) (s : Sexp.t) : Ast.expr =
  if pure then begin
    let sub = ref [] in
    let r = lower_cond_inner ctx env sub s in
    if !sub <> [] then
      errc ctx (Sexp.pos_of s)
        "bindings inside a loop condition are not supported";
    r
  end
  else lower_cond_inner ctx env acc s

and lower_cond_inner ctx env acc (s : Sexp.t) : Ast.expr =
  match s with
  | Sexp.Atom ("TRUE", _) -> Ast.Iconst 1
  | Sexp.Atom ("FALSE", _) -> Ast.Iconst 0
  | Sexp.List (Sexp.Atom ("and", _) :: args, pos) -> (
      match List.map (lower_cond_inner ctx env acc) args with
      | [] -> errc ctx pos "and expects at least one argument"
      | x :: xs -> List.fold_left (fun a b -> Ast.Binop (Ast.And, a, b)) x xs)
  | Sexp.List (Sexp.Atom ("or", _) :: args, pos) -> (
      match List.map (lower_cond_inner ctx env acc) args with
      | [] -> errc ctx pos "or expects at least one argument"
      | x :: xs -> List.fold_left (fun a b -> Ast.Binop (Ast.Or, a, b)) x xs)
  | Sexp.List ([ Sexp.Atom ("not", _); a ], _) ->
      Ast.Unop (Ast.Not, lower_cond_inner ctx env acc a)
  | Sexp.List (Sexp.Atom (cmp, cpos) :: args, pos)
    when List.mem_assoc cmp cmp_ops -> (
      let op = List.assoc cmp cmp_ops in
      if cmp = "!=" && List.length args > 2 then
        errc ctx cpos
          "variadic != (pairwise distinct) is not supported; use binary !=";
      let ts =
        List.map (fun a -> (lower_expr ctx env acc a, Sexp.pos_of a)) args
      in
      let pair (ta, pa) (tb, pb) =
        match (ta, tb) with
        | Ie _, _ | _, Ie _ ->
            Ast.Binop (op, as_int_err ctx pa ta, as_int_err ctx pb tb)
        | _ ->
            Ast.Binop (op, as_float_err ctx pa ta, as_float_err ctx pb tb)
      in
      let rec chain = function
        | a :: (b :: _ as rest) -> pair a b :: chain rest
        | _ -> []
      in
      match chain ts with
      | [] -> errc ctx pos "%s expects at least 2 arguments" cmp
      | [ one ] -> one
      | x :: xs -> List.fold_left (fun a b -> Ast.Binop (Ast.And, a, b)) x xs)
  | Sexp.List ([ Sexp.Atom (("let" | "let*") as l, _); Sexp.List (bs, _); body ], _)
    ->
      let env' =
        lower_bindings ctx env acc ~star:(l = "let*") ~reuse:false bs
      in
      lower_cond_inner ctx env' acc body
  | other ->
      errc ctx (Sexp.pos_of other) "expected a boolean condition, got %s"
        (Sexp.describe other)

(* ------------------------------------------------------------------ *)
(* Binding and statement-position lowering                             *)

(* Strip a binding's store annotation, yielding the declared scalar and
   the value expression. The convention for rounded stores (DESIGN.md
   §15) is strict about FPCore property scoping: [(! :precision P
   (cast X))] computes X *in P*, so a compound X must re-annotate the
   ambient precision explicitly — [(! :precision P (cast (! :precision
   binary64 X)))] — or be atomic (a literal or variable, whose value
   does not depend on the compute precision). Anything else is rejected
   rather than mistranslated. *)
and strip_store_annot ctx (ann : annot) pos : Ast.scalar * Sexp.t =
  if ann.a_int then begin
    (match ann.a_fmt with
    | Some _ -> errc ctx pos ":cheffp-type int conflicts with :precision"
    | None -> ());
    (Ast.Sint, ann.a_inner)
  end
  else
    match ann.a_fmt with
    | None -> (Ast.Sflt ctx.ambient, ann.a_inner)
    | Some f -> (
        match ann.a_inner with
        | Sexp.List ([ Sexp.Atom ("cast", _); x ], cpos) -> (
            match x with
            | Sexp.Atom _ -> (Ast.Sflt f, x)
            | Sexp.List (Sexp.Atom ("!", _) :: _, _) -> (
                let inner_ann = parse_bang ctx x in
                match inner_ann.a_fmt with
                | Some q when q = ctx.ambient ->
                    (Ast.Sflt f, inner_ann.a_inner)
                | Some _ ->
                    errc ctx cpos
                      "cast from a precision other than the ambient one is \
                       not supported"
                | None ->
                    errc ctx cpos
                      "cast of a compound expression requires an inner \
                       :precision annotation")
            | _ ->
                errc ctx cpos
                  "cast of a compound expression requires an inner \
                   :precision annotation (FPCore scopes :precision over the \
                   cast operand)")
        | _ ->
            errc ctx pos
              ":precision in a binding must annotate a (cast ...) of the \
               bound value")

(* Lower [value] into destination variable [m] (scalar [sc]; when
   [decl] is set the variable has not been declared yet). *)
and lower_rhs_into ctx env acc ~(m : string) ~(sc : Ast.scalar)
    ~(decl : bool) (value : Sexp.t) : unit =
  match value with
  | Sexp.List ([ Sexp.Atom ("if", _); c; th; el ], _) ->
      let c' = lower_cond ctx env acc c in
      if decl then
        acc := Ast.Decl { name = m; dty = Dscalar sc; init = None } :: !acc;
      let branch e =
        let sub = ref [] in
        lower_rhs_into ctx env sub ~m ~sc ~decl:false e;
        List.rev !sub
      in
      acc := Ast.If (c', branch th, branch el) :: !acc
  | Sexp.List (Sexp.Atom (("while" | "while*") as w, _) :: _, _) ->
      lower_loop ctx env acc ~star:(w = "while*") ~dst:(m, sc, decl) value
  | Sexp.List
      ([ Sexp.Atom (("let" | "let*") as l, _); Sexp.List (bs, _); body ], _)
    ->
      (* bindings under a binding RHS or branch never reuse outer
         storage: the shadowed value must survive the construct *)
      let env' =
        lower_bindings ctx env acc ~star:(l = "let*") ~reuse:false bs
      in
      lower_rhs_into ctx env' acc ~m ~sc ~decl body
  | _ ->
      let t = lower_expr ctx env acc value in
      let e =
        match scalar_kind sc with
        | `F -> as_float_err ctx (Sexp.pos_of value) t
        | `I -> as_int_err ctx (Sexp.pos_of value) t
      in
      if decl then
        acc := Ast.Decl { name = m; dty = Dscalar sc; init = Some e } :: !acc
      else acc := Ast.Assign (Ast.Lvar m, e) :: !acc

(* Lower an annotated RHS into a fresh variable; returns its name. *)
and lower_rhs_fresh ctx env acc ~base (ann : annot) pos : string =
  let sc, value = strip_store_annot ctx ann pos in
  match ann.a_loop with
  | Some _ ->
      let b =
        lower_annotated_loop ctx env acc ~ann ~dst:(`New (fresh ctx base, sc))
          value pos
      in
      b.mname
  | None ->
      let m = fresh ctx base in
      lower_rhs_into ctx env acc ~m ~sc ~decl:true value;
      m

and lower_bindings ctx env acc ~star ~reuse bindings : env =
  if star then
    List.fold_left
      (fun env b ->
        let sym, bnd = lower_one_binding ctx env acc ~reuse b in
        (sym, bnd) :: env)
      env bindings
  else
    (* parallel let: every RHS runs against the original environment *)
    let news =
      List.map (fun b -> lower_one_binding ctx env acc ~reuse:false b) bindings
    in
    List.fold_left (fun env nb -> nb :: env) env news

and lower_one_binding ctx env acc ~reuse (b : Sexp.t) : string * binding =
  match b with
  | Sexp.List ([ Sexp.Atom (sym, _); rhs ], bpos) -> (
      let ann = parse_bang ctx rhs in
      let sc, value = strip_store_annot ctx ann bpos in
      match ann.a_loop with
      | Some _ ->
          let bnd =
            lower_annotated_loop ctx env acc ~ann ~dst:(`Bind (sym, sc, reuse))
              value bpos
          in
          (sym, bnd)
      | None -> (
          match List.assoc_opt sym env with
          | Some b0 when reuse && b0.sc = sc ->
              lower_rhs_into ctx env acc ~m:b0.mname ~sc ~decl:false value;
              (sym, b0)
          | _ ->
              let m = fresh ctx sym in
              lower_rhs_into ctx env acc ~m ~sc ~decl:true value;
              (sym, { mname = m; sc })))
  | other -> errc ctx (Sexp.pos_of other) "malformed binding, expected [x e]"

(* Generic (unannotated) FPCore while/while*. Fresh loop variables are
   declared and initialized before the loop; [while*] updates assign in
   place sequentially, [while] updates evaluate into per-iteration
   temporaries first (parallel semantics). When the loop's result is
   exactly one of its variables and the destination is fresh, that loop
   variable takes the destination's name so no copy store is added. *)
and lower_loop ctx env acc ~star ~dst:(dm, dsc, decl) (s : Sexp.t) : unit =
  match s with
  | Sexp.List ([ Sexp.Atom _; cond; Sexp.List (bindings, _); res ], _) ->
      let parsed =
        List.map
          (fun b ->
            match b with
            | Sexp.List ([ Sexp.Atom (sym, _); init; upd ], _) ->
                let iann = parse_bang ctx init in
                let sc =
                  if iann.a_int then Ast.Sint else Ast.Sflt ctx.ambient
                in
                (sym, sc, iann.a_inner, upd)
            | other ->
                errc ctx (Sexp.pos_of other)
                  "malformed loop binding, expected [x init update]")
          bindings
      in
      (* initializers run against the outer environment *)
      let inits =
        List.map
          (fun (sym, sc, init, _) ->
            let t = lower_expr ctx env acc init in
            let e =
              match scalar_kind sc with
              | `F -> as_float_err ctx (Sexp.pos_of init) t
              | `I -> as_int_err ctx (Sexp.pos_of init) t
            in
            (sym, sc, e))
          parsed
      in
      let takeover =
        match res with
        | Sexp.Atom (r, _)
          when decl
               && List.exists (fun (sym, sc, _) -> sym = r && sc = dsc) inits
          ->
            Some r
        | _ -> None
      in
      let env' =
        List.fold_left
          (fun env' (sym, sc, e) ->
            let m =
              if takeover = Some sym then dm else fresh ctx sym
            in
            acc := Ast.Decl { name = m; dty = Dscalar sc; init = Some e } :: !acc;
            (sym, { mname = m; sc }) :: env')
          env inits
      in
      let cond' = lower_cond ctx env' acc ~pure:true cond in
      let body = ref [] in
      let lower_upd (sym, _, _, upd) =
        let b = List.assoc sym env' in
        let t = lower_expr ctx env' body upd in
        let e =
          match scalar_kind b.sc with
          | `F -> as_float_err ctx (Sexp.pos_of upd) t
          | `I -> as_int_err ctx (Sexp.pos_of upd) t
        in
        (b, e)
      in
      if star then
        List.iter
          (fun p ->
            let b, e = lower_upd p in
            body := Ast.Assign (Ast.Lvar b.mname, e) :: !body)
          parsed
      else begin
        let temps =
          List.map
            (fun p ->
              let b, e = lower_upd p in
              let t = fresh ctx (b.mname ^ "_next") in
              body :=
                Ast.Decl { name = t; dty = Dscalar b.sc; init = Some e }
                :: !body;
              (b.mname, t))
            parsed
        in
        List.iter
          (fun (m, t) ->
            body := Ast.Assign (Ast.Lvar m, Ast.Var t) :: !body)
          temps
      end;
      acc := Ast.While (cond', List.rev !body) :: !acc;
      (match takeover with
      | Some _ -> () (* the result already lives in the destination *)
      | None ->
          let t = lower_expr ctx env' acc res in
          let e =
            match scalar_kind dsc with
            | `F -> as_float_err ctx (Sexp.pos_of res) t
            | `I -> as_int_err ctx (Sexp.pos_of res) t
          in
          if decl then
            acc :=
              Ast.Decl { name = dm; dty = Dscalar dsc; init = Some e } :: !acc
          else acc := Ast.Assign (Ast.Lvar dm, e) :: !acc)
  | other ->
      errc ctx (Sexp.pos_of other)
        "malformed while: expected (while cond (bindings...) result)"

(* [:cheffp-loop]-annotated loops written by the exporter: loop
   variables already exist, bindings have the shape [v v update], and
   the loop reconstructs the original MiniFP for/while statement
   exactly (no fresh storage, no copy stores). *)
and lower_annotated_loop ctx env acc ~(ann : annot) ~dst (s : Sexp.t) pos :
    binding =
  let kind = match ann.a_loop with Some k -> k | None -> assert false in
  match s with
  | Sexp.List
      ([ Sexp.Atom ("while*", _); cond; Sexp.List (bindings, bpos); res ], _)
    -> (
      let counter, rest_bindings, env_loop, bounds =
        match kind with
        | `While -> (None, bindings, env, None)
        | `For | `ForDown -> (
            match bindings with
            | Sexp.List ([ Sexp.Atom (i, _); init; upd ], _) :: rest ->
                let im = fresh ctx i in
                let envi = (i, { mname = im; sc = Ast.Sint }) :: env in
                let step_ok =
                  match (kind, upd) with
                  | ( `For,
                      Sexp.List
                        ( [ Sexp.Atom ("+", _); Sexp.Atom (i', _);
                            Sexp.Atom ("1", _) ],
                          _ ) )
                    when i' = i ->
                      true
                  | ( `ForDown,
                      Sexp.List
                        ( [ Sexp.Atom ("-", _); Sexp.Atom (i', _);
                            Sexp.Atom ("1", _) ],
                          _ ) )
                    when i' = i ->
                      true
                  | _ -> false
                in
                if not step_ok then
                  errc ctx bpos
                    "malformed :cheffp-loop for: counter update must be \
                     (+/- i 1)";
                let int_of e =
                  as_int_err ctx (Sexp.pos_of e) (lower_expr ctx env acc e)
                in
                let lo, hi =
                  match (kind, cond, init) with
                  | ( `For,
                      Sexp.List
                        ([ Sexp.Atom ("<", _); Sexp.Atom (i', _); h ], _),
                      l )
                    when i' = i ->
                      (int_of l, int_of h)
                  | ( `ForDown,
                      Sexp.List
                        ([ Sexp.Atom (">=", _); Sexp.Atom (i', _); l ], _),
                      Sexp.List
                        ([ Sexp.Atom ("-", _); h; Sexp.Atom ("1", _) ], _) )
                    when i' = i ->
                      (int_of l, int_of h)
                  | _ ->
                      errc ctx bpos
                        "malformed :cheffp-loop for: unrecognized bound shape"
                in
                (Some im, rest, envi, Some (lo, hi))
            | _ ->
                errc ctx bpos "malformed :cheffp-loop for: missing counter")
      in
      let body = ref [] in
      List.iter
        (fun b ->
          match b with
          | Sexp.List ([ Sexp.Atom (v, vpos); init; upd ], _) -> (
              (match init with
              | Sexp.Atom (v', _) when v' = v -> ()
              | _ ->
                  errc ctx vpos
                    "malformed :cheffp-loop binding: initializer must be \
                     the variable itself");
              match List.assoc_opt v env with
              | None -> errc ctx vpos "loop variable %S is not bound" v
              | Some bv ->
                  let uann = parse_bang ctx upd in
                  let t = lower_expr ctx env_loop body uann.a_inner in
                  let e =
                    match scalar_kind bv.sc with
                    | `F -> as_float_err ctx (Sexp.pos_of upd) t
                    | `I -> as_int_err ctx (Sexp.pos_of upd) t
                  in
                  body := Ast.Assign (Ast.Lvar bv.mname, e) :: !body)
          | other ->
              errc ctx (Sexp.pos_of other)
                "malformed loop binding, expected [x x update]")
        rest_bindings;
      let body = List.rev !body in
      (match (kind, counter, bounds) with
      | `While, _, _ ->
          let cond' = lower_cond ctx env acc ~pure:true cond in
          acc := Ast.While (cond', body) :: !acc
      | (`For | `ForDown), Some im, Some (lo, hi) ->
          acc :=
            Ast.For { var = im; lo; hi; down = kind = `ForDown; body } :: !acc
      | _ -> assert false);
      let rb =
        match res with
        | Sexp.Atom (r, rpos) -> (
            match List.assoc_opt r env with
            | Some b -> b
            | None -> errc ctx rpos "loop result %S is not a loop variable" r)
        | other ->
            errc ctx (Sexp.pos_of other)
              "malformed :cheffp-loop: result must be a loop variable"
      in
      match dst with
      | `Bind (sym, sc, reuse) -> (
          match List.assoc_opt sym env with
          | Some b0 when reuse && b0.mname = rb.mname -> b0
          | _ when sc = rb.sc -> rb (* rebind the symbol to the result *)
          | _ -> errc ctx pos "loop result type does not match the binding")
      | `New (m, sc) ->
          if sc = rb.sc then
            acc :=
              Ast.Decl
                { name = m; dty = Dscalar sc; init = Some (Ast.Var rb.mname) }
              :: !acc
          else errc ctx pos "loop result type does not match the binding";
          { mname = m; sc })
  | other ->
      errc ctx (Sexp.pos_of other)
        "malformed :cheffp-loop: expected (while* cond (bindings...) result)"

(* ------------------------------------------------------------------ *)
(* Function body (tail position)                                       *)

and lower_tail ctx env acc (s : Sexp.t) : unit =
  match s with
  | Sexp.List
      ([ Sexp.Atom (("let" | "let*") as l, _); Sexp.List (bs, _); body ], _)
    ->
      let env' =
        lower_bindings ctx env acc ~star:(l = "let*") ~reuse:(l = "let*") bs
      in
      lower_tail ctx env' acc body
  | Sexp.List ([ Sexp.Atom ("if", _); _; _; _ ], pos)
  | Sexp.List (Sexp.Atom (("while" | "while*"), _) :: _, pos) ->
      let t = lower_rhs_fresh ctx env acc ~base:"t" (no_annot s) pos in
      acc := Ast.Return (Some (Ast.Var t)) :: !acc
  | Sexp.List (Sexp.Atom ("!", _) :: _, pos) -> (
      let ann = parse_bang ctx s in
      match ann.a_loop with
      | Some _ ->
          let t = lower_rhs_fresh ctx env acc ~base:"t" ann pos in
          acc := Ast.Return (Some (Ast.Var t)) :: !acc
      | None -> errc ctx pos "! annotation is not supported in this position")
  | _ ->
      let t = lower_expr ctx env acc s in
      acc := Ast.Return (Some (as_float_err ctx (Sexp.pos_of s) t)) :: !acc

(* ------------------------------------------------------------------ *)
(* :pre sample-point derivation                                        *)

let classify_term (s : Sexp.t) =
  match s with
  | Sexp.Atom (a, _) -> (
      match parse_num a with
      | Some f -> `Num f
      | None -> (
          match List.assoc_opt a named_constants with
          | Some f -> `Num f
          | None -> `Sym a))
  | _ -> `Other

let rec collect_ranges (s : Sexp.t) acc =
  match s with
  | Sexp.List (Sexp.Atom ("and", _) :: args, _) ->
      List.fold_left (fun acc a -> collect_ranges a acc) acc args
  | Sexp.List (Sexp.Atom (("<=" | "<" | ">=" | ">") as cmp, _) :: args, _) ->
      let le = cmp = "<=" || cmp = "<" in
      let set_lo acc s v =
        let lo, hi = Option.value (List.assoc_opt s acc) ~default:(None, None) in
        (s, (Some (max v (Option.value lo ~default:v)), hi))
        :: List.remove_assoc s acc
      and set_hi acc s v =
        let lo, hi = Option.value (List.assoc_opt s acc) ~default:(None, None) in
        (s, (lo, Some (min v (Option.value hi ~default:v))))
        :: List.remove_assoc s acc
      in
      let bound acc a b =
        (* a <= b when le, a >= b otherwise *)
        match (classify_term a, classify_term b) with
        | `Num v, `Sym s -> if le then set_lo acc s v else set_hi acc s v
        | `Sym s, `Num v -> if le then set_hi acc s v else set_lo acc s v
        | _ -> acc
      in
      let rec pairs acc = function
        | a :: (b :: _ as rest) -> pairs (bound acc a b) rest
        | _ -> acc
      in
      pairs acc args
  | _ -> acc

let sample_of_range (lo, hi) =
  match (lo, hi) with
  | Some lo, Some hi ->
      let m = (lo +. hi) /. 2.0 in
      if m <> 0.0 || (lo = 0.0 && hi = 0.0) then m
      else if hi > 0.0 then hi /. 2.0
      else lo /. 2.0
  | Some lo, None -> lo +. 1.0
  | None, Some hi -> hi -. 1.0
  | None, None -> 0.5

(* ------------------------------------------------------------------ *)
(* Toplevel FPCore forms                                               *)

let parse_cheffp_config ?file pos (s : string) : Config.t =
  let tokens =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char ',')
    |> List.filter (fun t -> t <> "")
  in
  List.fold_left
    (fun cfg tok ->
      match String.index_opt tok ':' with
      | Some i ->
          let v = String.sub tok 0 i
          and f = String.sub tok (i + 1) (String.length tok - i - 1) in
          let fmt =
            match Fp.format_of_string f with
            | Some fmt -> fmt
            | None -> err_at ?file pos "bad format %S in :cheffp-config" f
          in
          Config.demote cfg v fmt
      | None ->
          err_at ?file pos "bad :cheffp-config entry %S (want var:fmt)" tok)
    Config.double tokens

let parse_core ?file ~(taken : (string, unit) Hashtbl.t) (s : Sexp.t) : core =
  match s with
  | Sexp.List (Sexp.Atom ("FPCore", _) :: rest, pos) ->
      let fp_name, rest =
        match rest with
        | Sexp.Atom (n, _) :: tl -> (Some n, tl)
        | tl -> (None, tl)
      in
      let params_s, rest =
        match rest with
        | Sexp.List (ps, _) :: tl -> (ps, tl)
        | _ -> err_at ?file pos "FPCore: expected an argument list"
      in
      (* properties: (:key value)* body *)
      let rec split_props props = function
        | [ body ] -> (List.rev props, body)
        | Sexp.Atom (k, kpos) :: v :: tl
          when String.length k > 0 && k.[0] = ':' ->
            split_props ((k, kpos, v) :: props) tl
        | other :: _ ->
            err_at ?file (Sexp.pos_of other)
              "expected a :property/value pair or the function body"
        | [] -> err_at ?file pos "FPCore form has no body"
      in
      let props, body = split_props [] rest in
      let ambient = ref Fp.F64 in
      let source_name = ref None in
      let pre = ref None in
      let config = ref Config.double in
      List.iter
        (fun (k, kpos, v) ->
          match (k, v) with
          | ":precision", Sexp.Atom (p, ppos) ->
              ambient :=
                (match p with
                | "binary64" -> Fp.F64
                | "binary32" -> Fp.F32
                | "binary16" -> Fp.F16
                | _ ->
                    err_at ?file ppos
                      "unsupported precision %S (binary16/32/64 only)" p)
          | ":precision", other ->
              err_at ?file (Sexp.pos_of other) "malformed :precision value"
          | ":name", Sexp.Str (n, _) -> source_name := Some n
          | ":pre", v -> pre := Some v
          | ":round", Sexp.Atom ("nearestEven", _) -> ()
          | ":round", other ->
              err_at ?file (Sexp.pos_of other)
                "only :round nearestEven is supported"
          | ":cheffp-config", Sexp.Str (c, cpos) ->
              config := parse_cheffp_config ?file cpos c
          | ":cheffp-config", other ->
              err_at ?file (Sexp.pos_of other)
                ":cheffp-config expects a string value"
          | k, _ when String.length k >= 8 && String.sub k 0 8 = ":cheffp-" ->
              err_at ?file kpos "unknown tool property %s" k
          | _ -> () (* other properties are descriptive metadata *))
        props;
      let ctx = { file; used = Hashtbl.create 16; ambient = !ambient } in
      let base_name =
        match fp_name with
        | Some n -> sanitize n
        | None -> (
            match !source_name with
            | Some n -> sanitize (String.lowercase_ascii n)
            | None -> "kernel")
      in
      let fname =
        if not (Hashtbl.mem taken base_name) then base_name
        else
          let rec go k =
            let cand = Printf.sprintf "%s_%d" base_name k in
            if Hashtbl.mem taken cand then go (k + 1) else cand
          in
          go 2
      in
      Hashtbl.replace taken fname ();
      let params =
        List.map
          (fun p ->
            match p with
            | Sexp.Atom (sym, _) -> (sym, Ast.Sflt !ambient)
            | Sexp.List (Sexp.Atom ("!", _) :: _, ppos) -> (
                let ann = parse_bang ctx p in
                match ann.a_inner with
                | Sexp.Atom (sym, _) ->
                    if ann.a_int then (sym, Ast.Sint)
                    else
                      (sym, Ast.Sflt (Option.value ann.a_fmt ~default:!ambient))
                | _ -> err_at ?file ppos "malformed annotated argument")
            | Sexp.List (_, ppos) ->
                err_at ?file ppos
                  "array/tensor arguments are not supported (FPCore 1.x \
                   scalar subset)"
            | Sexp.Str (_, ppos) -> err_at ?file ppos "malformed argument")
          params_s
      in
      let env =
        List.map (fun (sym, sc) -> (sym, { mname = fresh ctx sym; sc })) params
      in
      let mparams =
        List.map2
          (fun (_, sc) (_, b) ->
            { Ast.pname = b.mname; pty = Ast.Tscalar sc; pmode = Ast.In })
          params env
      in
      let acc = ref [] in
      lower_tail ctx env acc body;
      let func =
        {
          Ast.fname;
          params = mparams;
          ret = Some (Ast.Sflt !ambient);
          body = List.rev !acc;
        }
      in
      let ranges =
        match !pre with Some p -> collect_ranges p [] | None -> []
      in
      let default_args =
        List.map
          (fun (sym, sc) ->
            let r = Option.value (List.assoc_opt sym ranges) ~default:(None, None) in
            let v = sample_of_range r in
            match sc with
            | Ast.Sint -> Interp.Aint (int_of_float v)
            | Ast.Sflt _ -> Interp.Aflt v)
          params
      in
      let pre_text =
        Option.map
          (fun p ->
            let rec render (s : Sexp.t) =
              match s with
              | Sexp.Atom (a, _) -> a
              | Sexp.Str (x, _) -> Printf.sprintf "%S" x
              | Sexp.List (xs, _) ->
                  "(" ^ String.concat " " (List.map render xs) ^ ")"
            in
            render p)
          !pre
      in
      {
        name = fname;
        source_name = !source_name;
        precision = !ambient;
        func;
        config = !config;
        default_args;
        pre = pre_text;
        ranges =
          (* Re-key the [:pre] intervals by the sanitized MiniFP
             parameter names, so downstream consumers (the sampling
             planner) can match them against [func.params] directly. *)
          List.filter_map
            (fun (sym, r) ->
              Option.map (fun b -> (b.mname, r)) (List.assoc_opt sym env))
            ranges;
      }
  | other ->
      err_at ?file (Sexp.pos_of other) "expected an (FPCore ...) form, got %s"
        (Sexp.describe other)

let parse_string ?file src =
  let forms = Sexp.parse_string ?file src in
  let taken = Hashtbl.create 8 in
  List.map (parse_core ?file ~taken) forms

let parse_file path =
  let src =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> raise (Error msg)
  in
  parse_string ~file:path src

let program cores = { Ast.funcs = List.map (fun c -> c.func) cores }
let find cores name = List.find_opt (fun c -> c.name = name) cores
