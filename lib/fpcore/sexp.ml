type pos = { line : int; col : int }

type t =
  | Atom of string * pos
  | Str of string * pos
  | List of t list * pos

exception Error of string

let pos_of = function Atom (_, p) | Str (_, p) | List (_, p) -> p

let describe = function
  | Atom (a, _) -> Printf.sprintf "atom %S" a
  | Str (s, _) -> Printf.sprintf "string %S" s
  | List (xs, _) -> Printf.sprintf "a list of %d elements" (List.length xs)

let err ?file pos fmt =
  Format.kasprintf
    (fun msg ->
      let where =
        match file with
        | Some f -> Printf.sprintf "%s:%d:%d" f pos.line pos.col
        | None -> Printf.sprintf "line %d, col %d" pos.line pos.col
      in
      raise (Error (Printf.sprintf "%s: %s" where msg)))
    fmt

type lexer = {
  src : string;
  file : string option;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let peek lx = if lx.off >= String.length lx.src then None else Some lx.src.[lx.off]

let advance lx =
  (match lx.src.[lx.off] with
  | '\n' ->
      lx.line <- lx.line + 1;
      lx.col <- 1
  | _ -> lx.col <- lx.col + 1);
  lx.off <- lx.off + 1

let here lx = { line = lx.line; col = lx.col }

let is_delim = function
  | ' ' | '\t' | '\r' | '\n' | '(' | ')' | '[' | ']' | ';' | '"' -> true
  | _ -> false

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some ';' ->
      let rec to_eol () =
        match peek lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_ws lx
  | Some '#' when lx.off + 1 < String.length lx.src && lx.src.[lx.off + 1] = '|'
    ->
      (* scheme-style block comment, seen in some FPBench headers *)
      let start = here lx in
      advance lx;
      advance lx;
      let rec to_close () =
        match peek lx with
        | None -> err ?file:lx.file start "unterminated block comment"
        | Some '|' when lx.off + 1 < String.length lx.src
                        && lx.src.[lx.off + 1] = '#' ->
            advance lx;
            advance lx
        | Some _ ->
            advance lx;
            to_close ()
      in
      to_close ();
      skip_ws lx
  | _ -> ()

let read_string lx =
  let start = here lx in
  advance lx (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek lx with
    | None -> err ?file:lx.file start "unterminated string literal"
    | Some '"' -> advance lx
    | Some '\\' -> (
        advance lx;
        match peek lx with
        | None -> err ?file:lx.file start "unterminated string literal"
        | Some c ->
            Buffer.add_char buf
              (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
            advance lx;
            go ())
    | Some c ->
        Buffer.add_char buf c;
        advance lx;
        go ()
  in
  go ();
  Str (Buffer.contents buf, start)

let read_atom lx =
  let start = here lx in
  let b = Buffer.create 8 in
  let rec go () =
    match peek lx with
    | Some c when not (is_delim c) ->
        Buffer.add_char b c;
        advance lx;
        go ()
    | _ -> ()
  in
  go ();
  Atom (Buffer.contents b, start)

(* [close] is the expected closing delimiter of the innermost open
   list, or '\000' at toplevel. *)
let rec read_one lx : t =
  skip_ws lx;
  match peek lx with
  | None -> err ?file:lx.file (here lx) "unexpected end of input"
  | Some '(' -> read_list lx ')'
  | Some '[' -> read_list lx ']'
  | Some (')' | ']') ->
      err ?file:lx.file (here lx) "unexpected closing delimiter"
  | Some '"' -> read_string lx
  | Some _ -> read_atom lx

and read_list lx close =
  let start = here lx in
  advance lx (* opening delimiter *);
  let items = ref [] in
  let rec go () =
    skip_ws lx;
    match peek lx with
    | None ->
        err ?file:lx.file start "unclosed %s"
          (if close = ')' then "parenthesis" else "bracket")
    | Some c when c = close -> advance lx
    | Some (')' | ']') ->
        err ?file:lx.file (here lx)
          "mismatched delimiter: expected %c to close the list opened at \
           line %d, col %d"
          close start.line start.col
    | Some _ ->
        items := read_one lx :: !items;
        go ()
  in
  go ();
  List (List.rev !items, start)

let parse_string ?file src =
  let lx = { src; file; off = 0; line = 1; col = 1 } in
  let rec go acc =
    skip_ws lx;
    match peek lx with
    | None -> List.rev acc
    | Some _ -> go (read_one lx :: acc)
  in
  go []
