(** On-disk FPCore benchmark corpus (examples/fpbench/*.fpcore).

    Locates the vendored FPBench corpus relative to the current working
    directory (or [CHEFFP_FPBENCH]) and imports every [.fpcore] file
    through {!Cheffp_fpcore.Import}, so tests and benches can iterate a
    realistic kernel population without embedding sources in OCaml. *)

type entry = {
  path : string;  (** absolute or cwd-relative path of the [.fpcore] file *)
  core : Cheffp_fpcore.Import.core;
  prog : Cheffp_ir.Ast.program;  (** type-checked single-function program *)
}

val corpus_dir : unit -> string option
(** First existing directory among [$CHEFFP_FPBENCH] and
    [examples/fpbench] looked up through a few parent levels (so it
    works from the repo root and from dune's sandbox/test cwd). *)

val load : unit -> entry list
(** Import every [.fpcore] file in {!corpus_dir}, sorted by file name.
    Raises [Failure] when no corpus directory exists, and lets importer
    exceptions escape (a malformed vendored file should fail loudly). *)
