open Cheffp_ir

type entry = {
  path : string;
  core : Cheffp_fpcore.Import.core;
  prog : Ast.program;
}

let candidate_dirs () =
  let env = match Sys.getenv_opt "CHEFFP_FPBENCH" with
    | Some d when d <> "" -> [ d ]
    | _ -> []
  in
  let rel = "examples/fpbench" in
  env
  @ [ rel;
      Filename.concat ".." rel;
      Filename.concat "../.." rel;
      Filename.concat "../../.." rel;
      Filename.concat "../../../.." rel ]

let corpus_dir () =
  List.find_opt
    (fun d -> Sys.file_exists d && Sys.is_directory d)
    (candidate_dirs ())

let load () =
  match corpus_dir () with
  | None ->
    failwith
      "FPCore corpus not found: set CHEFFP_FPBENCH or run from the \
       repository root (examples/fpbench)"
  | Some dir ->
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".fpcore")
    |> List.sort compare
    |> List.concat_map (fun f ->
        let path = Filename.concat dir f in
        Cheffp_fpcore.Import.parse_file path
        |> List.map (fun (core : Cheffp_fpcore.Import.core) ->
            let prog : Ast.program = { funcs = [ core.func ] } in
            Typecheck.check_program prog;
            { path; core; prog }))
