(** Intrinsic function registry for MiniFP.

    The registry is a first-class value so analyses can extend it: the
    CHEF-FP external error models (paper Listing 3) register plain OCaml
    closures here and the generated code calls them by name, exactly like
    Clad emitting a call to a user's [getErrorVal]. The FastApprox
    intrinsics are likewise registered on top of the defaults. *)

type kind = Kint | Kflt

val kind_of_scalar : Ast.scalar -> kind
val kind_name : kind -> string

type signature = {
  args : kind list;
  ret : kind;
  cls : Cheffp_precision.Cost.op_class;
  approx : bool;  (** approximate intrinsic: metered at a discounted cost *)
}

type value = I of int | F of float

type impl = value array -> value

type t

val create : unit -> t
(** Fresh registry preloaded with the default math intrinsics:
    [sin cos tan exp log log2 log10 sqrt pow fabs floor ceil fmin fmax
    fma tanh atan sign select itof ftoi castf32 castf16]. *)

val empty : unit -> t

val register : t -> string -> signature -> impl -> unit
(** Adds or replaces an intrinsic. *)

val find : t -> string -> (signature * impl) option
val mem : t -> string -> bool
val signature : t -> string -> signature option
val names : t -> string list

val register_float1 :
  t ->
  string ->
  ?cls:Cheffp_precision.Cost.op_class ->
  ?approx:bool ->
  (float -> float) ->
  unit
(** Convenience for unary float->float intrinsics. *)

val as_float : value -> float
(** @raise Invalid_argument on an integer value. *)

val as_int : value -> int

val fast1 : t -> string -> (float -> float) option
(** Unboxed fast path for intrinsics registered via {!register_float1}
    (used by the closure compiler to avoid boxing). *)

val fast2 : t -> string -> (float -> float -> float) option

(** {2 Interval enclosures}

    Hooks for the range analysis (lib/range): a hook maps intervals
    enclosing the arguments to an interval enclosing every binary64
    value the registered implementation can return on them (endpoint
    libm evaluations are widened outward by a few ulps; an infinite
    endpoint means "no finite enclosure"). {!create} preloads hooks for
    the default float intrinsics. {!register} {e clears} any hook for
    the name being (re)registered — a replacement implementation (e.g.
    a FastApprox polynomial) silently inheriting the libm enclosure
    would be unsound, and a missing hook merely degrades the range
    analysis to an [Unbounded] verdict. *)

type iv = float * float

val interval1 : t -> string -> (iv -> iv) option
val interval2 : t -> string -> (iv -> iv -> iv) option

val register_interval1 : t -> string -> (iv -> iv) -> unit
val register_interval2 : t -> string -> (iv -> iv -> iv) -> unit
