(** Lane-parallel batched execution of one function along either of two
    axes: K mixed-precision configurations on one input ({!run}), or K
    sampled inputs under one configuration ({!run_inputs}).

    A tuning run evaluates many candidate configurations of the {e same}
    function on the {e same} arguments; the scalar path ({!Compile})
    pays one full compile + run per configuration. This module compiles
    the function {b once} into configuration-generic closures over K
    {e lanes} in structure-of-arrays layout: every float slot becomes a
    [float array] of length K, every float expression node evaluates as
    one tight per-lane loop, and each lane carries its own
    {!Cheffp_precision.Config.t} whose storage/operation formats are
    resolved into per-lane tables when a batch run starts — the compiled
    artifact itself is configuration-independent, which is what lets
    {!Compile_cache.compile_batch} key it on [(program, func, mode)]
    alone.

    {b Shared control flow.} Integer values (loop bounds, branch
    conditions, indices) are computed once and shared by all lanes.
    Wherever an integer is derived from floats — a float comparison, an
    int-returning intrinsic with float arguments — the per-lane
    candidates are compared: if every live lane agrees the value is
    shared and execution stays batched; if lanes disagree the majority
    keeps going and each dissenting lane is {e deactivated} and
    transparently re-run from scratch through the scalar fallback
    ({!Compile.run}) under its own configuration. Divergence therefore
    costs performance, never correctness.

    {b Bit-identity contract.} For every lane, the returned
    {!Interp.result} is bit-identical to a scalar
    [Compile.run (Compile.compile ~config ...)] of the same function on
    the same arguments under that lane's configuration (asserted by the
    unit and fuzz suites). Divergent lanes satisfy this trivially — they
    {e are} scalar runs. Unlike {!Compile.run}, batched runs never
    mutate caller-supplied argument arrays (every lane gets private
    copies).

    {b Observability} (DESIGN.md §9/§11): each batch run records a
    ["batch.run"] span with [lanes]/[divergences] attributes, sets the
    [batch.lanes] gauge, and bumps the [batch.runs] counter and the
    [batch.divergence_total] counter (one increment per deactivated
    lane). *)

type t

val default_lanes : int
(** 8: wide enough to amortize per-node closure dispatch, narrow enough
    that lane chunks still spread across pool domains. *)

val default_sweep_lanes : int
(** 64: the input-sweep default. One config per sweep means per-chunk
    fixed costs (format resolution, environment build, result
    assembly) dominate narrow chunks, and sampled runs routinely have
    hundreds of inputs to fill wide ones. *)

val compile :
  ?builtins:Builtins.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  ?meter:bool ->
  ?optimize:bool ->
  prog:Ast.program ->
  func:string ->
  unit ->
  t
(** Compile [func] once for any number of lanes and any configurations
    ([mode] defaults to [Source], as everywhere). [optimize] (default
    [true]) runs {!Optimize.optimize_func} with {e every} variable
    opaque — the configuration is unknown at compile time, so the
    rewrites that would change mixed-precision semantics for {e some}
    configuration are all disabled; the surviving rewrites are the
    value-preserving ones, keeping the bit-identity contract.

    [meter] (default [false]) statically emits per-lane cost metering;
    charges land in the counters passed to {!run}. Like
    {!Compile.compile}, the result is immutable and safe to share
    across runs and domains ({!run} builds a private environment).
    @raise Compile.Compile_error on malformed programs. *)

type result = {
  lanes : Interp.result array;  (** one per configuration, in order *)
  divergences : int;
      (** lanes of this run that diverged and were re-run scalar *)
}

val run :
  ?counters:Cheffp_precision.Cost.Counter.t array ->
  ?fallback:(Cheffp_precision.Config.t -> Compile.t) ->
  t ->
  configs:Cheffp_precision.Config.t array ->
  Interp.arg list ->
  result
(** Run every configuration of [configs] as one lane sweep.

    [counters] (metered compilations only; length must equal the lane
    count when given) receive each lane's modelled cost; a diverged
    lane's counter is reset and recharged by its scalar fallback run, so
    counters are always consistent with the results. Charges reflect the
    shared conservatively-optimized body: a program containing literal
    identity operations ([x + 0.0]) that a per-config scalar compile
    would fold away can model marginally higher than scalar — values are
    still bit-identical, and no real workload contains such
    operations. [fallback] supplies
    the scalar compilation used for diverged lanes (default: a direct
    {!Compile.compile} with this batch's builtins/mode/meter settings —
    pass a {!Compile_cache}-backed closure to memoize).
    @raise Invalid_argument on an empty [configs] or an arity mismatch. *)

val run_floats :
  ?counters:Cheffp_precision.Cost.Counter.t array ->
  ?fallback:(Cheffp_precision.Config.t -> Compile.t) ->
  t ->
  configs:Cheffp_precision.Config.t array ->
  Interp.arg list ->
  float array
(** Like {!run} but projects each lane's float return value.
    @raise Compile.Compile_error if the function does not return a
    float. *)

val run_inputs :
  ?counters:Cheffp_precision.Cost.Counter.t array ->
  ?fallback:(Cheffp_precision.Config.t -> Compile.t) ->
  t ->
  config:Cheffp_precision.Config.t ->
  Interp.arg list array ->
  result
(** The {e input-sweep} axis: run K sampled argument vectors under ONE
    configuration as a single lane sweep (lane [l] executes
    [inputs.(l)]). The compiled artifact is configuration- {e and}
    input-generic, so the very same closures serve both axes; here the
    per-lane format tables resolve to uniform rows and the arguments
    load per lane instead of broadcast.

    Integer arguments (and integer arrays, and float-array {e lengths})
    feed the shared control flow, so they pass through the same
    consensus machinery as a run-time float→int crossing: if the sampled
    vectors disagree, the majority stays batched and each dissenting
    lane is deactivated and transparently re-run scalar under [config].
    Divergence costs performance, never correctness — every lane's
    {!Interp.result} is bit-identical to
    [Compile.run (Compile.compile ~config ...) inputs.(l)] (the fuzz
    suite asserts this including forced-divergence paths). Caller arrays
    are never mutated. [fallback] supplies the scalar compilation for
    diverged lanes (applied to [config], at most once per sweep).

    Each sweep records a ["batch.input_sweep"] span with
    [lanes]/[divergences] attributes and bumps the
    [batch.input_sweeps] counter; divergences land in the shared
    [batch.divergence_total].
    @raise Invalid_argument on empty [inputs] or a counter length
    mismatch. @raise Compile.Compile_error on arity/kind mismatches. *)

val run_inputs_floats :
  ?counters:Cheffp_precision.Cost.Counter.t array ->
  ?fallback:(Cheffp_precision.Config.t -> Compile.t) ->
  t ->
  config:Cheffp_precision.Config.t ->
  Interp.arg list array ->
  float array
(** Like {!run_inputs} but projects each lane's float return value.
    @raise Compile.Compile_error if the function does not return a
    float. *)

val run_inputs_many :
  ?jobs:int ->
  ?lanes:int ->
  ?fallback:(Cheffp_precision.Config.t -> Compile.t) ->
  t ->
  config:Cheffp_precision.Config.t ->
  Interp.arg list array ->
  float array
(** [run_inputs_many ~jobs ~lanes t ~config inputs] evaluates any
    number of sampled argument vectors by chunking them into sweeps of
    at most [lanes] (default {!default_lanes}) and fanning the chunks
    out over {!Cheffp_util.Pool.parallel_map} with [jobs] domains
    (default 1). Results preserve [inputs] order. This is the sampling
    layer's hot path: lane parallelism within a chunk, domain
    parallelism across chunks — samples/sec is the headline number of
    the [distribution] bench block. *)

val run_many :
  ?jobs:int ->
  ?lanes:int ->
  ?fallback:(Cheffp_precision.Config.t -> Compile.t) ->
  t ->
  configs:Cheffp_precision.Config.t list ->
  Interp.arg list ->
  float list
(** [run_many ~jobs ~lanes t ~configs args] evaluates an arbitrary
    number of configurations by chunking them into sweeps of at most
    [lanes] (default {!default_lanes}) and fanning the chunks out over
    {!Cheffp_util.Pool.parallel_map} with [jobs] domains (default 1).
    Results preserve [configs] order; [args] is only read. This is the
    shape the tuning probe/grow phases use: domain parallelism across
    chunks, lane parallelism within a chunk. *)
