open Ast

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let is_user prog name = Option.is_some (find_func prog name)

let rec expr_has_user_call prog = function
  | Fconst _ | Iconst _ | Var _ -> false
  | Idx (_, i) -> expr_has_user_call prog i
  | Unop (_, e) -> expr_has_user_call prog e
  | Binop (_, a, b) -> expr_has_user_call prog a || expr_has_user_call prog b
  | Call (name, args) ->
      is_user prog name || List.exists (expr_has_user_call prog) args

let has_user_calls prog f =
  let rec stmt = function
    | Decl { init; dty; _ } ->
        Option.fold ~none:false ~some:(expr_has_user_call prog) init
        || (match dty with
           | Darr (_, size) -> expr_has_user_call prog size
           | Dscalar _ -> false)
    | Assign (lv, e) -> lvalue lv || expr_has_user_call prog e
    | If (c, a, b) ->
        expr_has_user_call prog c || List.exists stmt a || List.exists stmt b
    | For { lo; hi; body; _ } ->
        expr_has_user_call prog lo
        || expr_has_user_call prog hi
        || List.exists stmt body
    | While (c, body) -> expr_has_user_call prog c || List.exists stmt body
    | Return e -> Option.fold ~none:false ~some:(expr_has_user_call prog) e
    | Call_stmt (name, args) ->
        is_user prog name || List.exists (expr_has_user_call prog) args
    | Push lv | Pop lv -> lvalue lv
  and lvalue = function
    | Lvar _ -> false
    | Lidx (_, i) -> expr_has_user_call prog i
  in
  List.exists stmt f.body

(* Splits a callee body into (body-without-return, tail-return-expr) and
   verifies no interior returns. *)
let split_tail_return callee =
  let rec check_no_return stmts =
    List.iter
      (function
        | Return _ -> err "function %S has a non-tail return" callee.fname
        | If (_, a, b) ->
            check_no_return a;
            check_no_return b
        | For { body; _ } | While (_, body) -> check_no_return body
        | Decl _ | Assign _ | Call_stmt _ | Push _ | Pop _ -> ())
      stmts
  in
  match List.rev callee.body with
  | Return e :: rev_rest ->
      let rest = List.rev rev_rest in
      check_no_return rest;
      (rest, e)
  | body_rev ->
      let body = List.rev body_rev in
      check_no_return body;
      (body, None)

(* Freshens every local declaration (and loop variable) in [stmts],
   extending [subst] so references follow. Declarations are block-scoped:
   bindings introduced inside [if]/[for]/[while] bodies are unwound when
   the block ends so shadowed outer names resolve correctly afterwards.
   Top-level bindings are deliberately left in [subst]: the caller still
   has to substitute the callee's tail-return expression, which may
   reference renamed locals. *)
let freshen_locals names subst stmts =
  let rec stmt added = function
    | Decl { name; dty; init } ->
        (* Size/init use the substitution *before* the decl binds. *)
        let dty =
          match dty with
          | Dscalar _ as d -> d
          | Darr (s, size) -> Darr (s, Subst.expr subst size)
        in
        let init = Option.map (Subst.expr subst) init in
        let name' = Rename.fresh names name in
        Subst.push subst name (Var name');
        added := name :: !added;
        Decl { name = name'; dty; init }
    | Assign (lv, e) -> Assign (Subst.lvalue subst lv, Subst.expr subst e)
    | If (c, a, b) -> If (Subst.expr subst c, block a, block b)
    | For { var; lo; hi; down; body } ->
        let lo = Subst.expr subst lo and hi = Subst.expr subst hi in
        let var' = Rename.fresh names var in
        Subst.push subst var (Var var');
        let body = block body in
        Subst.unwind subst [ var ];
        For { var = var'; lo; hi; down; body }
    | While (c, body) -> While (Subst.expr subst c, block body)
    | Return e -> Return (Option.map (Subst.expr subst) e)
    | Call_stmt (f, args) -> Call_stmt (f, List.map (Subst.expr subst) args)
    | Push lv -> Push (Subst.lvalue subst lv)
    | Pop lv -> Pop (Subst.lvalue subst lv)
  and block stmts =
    let added = ref [] in
    let result = List.map (stmt added) stmts in
    Subst.unwind subst !added;
    result
  in
  let added = ref [] in
  List.map (stmt added) stmts

let inline_func ?(max_depth = 32) prog f =
  let names = Rename.create () in
  Rename.reserve_func names f;

  (* Builds the statement sequence for one call, returning the statements
     plus (for expression calls) the name of the result variable. *)
  let rec inline_call ~depth name args ~as_expr =
    if depth > max_depth then
      err "inlining depth limit exceeded at %S (recursion?)" name;
    let callee = func_exn prog name in
    if List.length args <> List.length callee.params then
      err "call to %S: expected %d arguments, got %d" name
        (List.length callee.params) (List.length args);
    let subst = Subst.create () in
    let header =
      List.concat
        (List.map2
           (fun p arg ->
             match (p.pmode, p.pty, arg) with
             | In, Tscalar s, e ->
                 let copy = Rename.fresh names (name ^ "_" ^ p.pname) in
                 Subst.add subst p.pname (Var copy);
                 [ Decl { name = copy; dty = Dscalar s; init = Some e } ]
             | Out, Tscalar _, Var v ->
                 Subst.add subst p.pname (Var v);
                 []
             | Out, Tscalar _, _ ->
                 err "call to %S: out argument %S must be a variable" name
                   p.pname
             | _, Tarr _, Var v ->
                 Subst.add subst p.pname (Var v);
                 []
             | _, Tarr _, _ ->
                 err "call to %S: array argument %S must be a name" name
                   p.pname)
           callee.params args)
    in
    let body, tail_ret = split_tail_return callee in
    let body = freshen_locals names subst body in
    let body = List.concat_map (fun s -> inline_stmt ~depth:(depth + 1) s) body in
    if as_expr then begin
      let ret_scalar =
        match callee.ret with
        | Some s -> s
        | None -> err "void function %S used in an expression" name
      in
      let tail =
        match tail_ret with
        | Some e -> Subst.expr subst e
        | None -> err "function %S falls off the end without a return" name
      in
      let ret_var = Rename.fresh names (name ^ "_ret") in
      (* The tail expression may itself contain user calls. *)
      let tail_stmts =
        inline_stmt ~depth:(depth + 1) (Assign (Lvar ret_var, tail))
      in
      ( header
        @ [ Decl { name = ret_var; dty = Dscalar ret_scalar; init = None } ]
        @ body @ tail_stmts,
        Some ret_var )
    end
    else (header @ body, None)

  (* Rewrites an expression, extracting user calls into [hoisted]. *)
  and inline_expr ~depth hoisted e =
    let recur e = inline_expr ~depth hoisted e in
    match e with
    | Fconst _ | Iconst _ | Var _ -> e
    | Idx (a, i) -> Idx (a, recur i)
    | Unop (op, e) -> Unop (op, recur e)
    | Binop (op, a, b) ->
        let a = recur a in
        let b = recur b in
        Binop (op, a, b)
    | Call (name, args) ->
        let args = List.map recur args in
        if is_user prog name then begin
          let stmts, ret_var = inline_call ~depth name args ~as_expr:true in
          hoisted := !hoisted @ stmts;
          Var (Option.get ret_var)
        end
        else Call (name, args)

  and inline_stmt ~depth s =
    let hoisted = ref [] in
    let e_ e = inline_expr ~depth hoisted e in
    let rewritten =
      match s with
      | Decl { name; dty; init } ->
          let dty =
            match dty with
            | Dscalar _ as d -> d
            | Darr (sc, size) -> Darr (sc, e_ size)
          in
          [ Decl { name; dty; init = Option.map e_ init } ]
      | Assign (lv, e) ->
          let lv =
            match lv with Lvar _ -> lv | Lidx (a, i) -> Lidx (a, e_ i)
          in
          [ Assign (lv, e_ e) ]
      | If (c, a, b) ->
          let c = e_ c in
          [
            If
              ( c,
                List.concat_map (inline_stmt ~depth) a,
                List.concat_map (inline_stmt ~depth) b );
          ]
      | For { var; lo; hi; down; body } ->
          let lo = e_ lo and hi = e_ hi in
          [ For { var; lo; hi; down; body = List.concat_map (inline_stmt ~depth) body } ]
      | While (c, body) ->
          if expr_has_user_call prog c then
            err
              "while condition in %S contains a user-function call, which \
               cannot be inlined; bind it inside the loop body instead"
              f.fname;
          [ While (c, List.concat_map (inline_stmt ~depth) body) ]
      | Return e -> [ Return (Option.map e_ e) ]
      | Call_stmt (name, args) ->
          if is_user prog name then begin
            let args = List.map e_ args in
            let stmts, _ = inline_call ~depth name args ~as_expr:false in
            stmts
          end
          else [ Call_stmt (name, List.map e_ args) ]
      | Push _ | Pop _ -> [ s ]
    in
    !hoisted @ rewritten
  in
  { f with body = List.concat_map (inline_stmt ~depth:0) f.body }
