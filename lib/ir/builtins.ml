module Cost = Cheffp_precision.Cost
module Fp = Cheffp_precision.Fp

type kind = Kint | Kflt

let kind_of_scalar = function Ast.Sint -> Kint | Ast.Sflt _ -> Kflt
let kind_name = function Kint -> "int" | Kflt -> "float"

type signature = {
  args : kind list;
  ret : kind;
  cls : Cost.op_class;
  approx : bool;
}

type value = I of int | F of float

type impl = value array -> value

type iv = float * float

type t = {
  entries : (string, signature * impl) Hashtbl.t;
  fast1s : (string, float -> float) Hashtbl.t;
  fast2s : (string, float -> float -> float) Hashtbl.t;
  interval1s : (string, iv -> iv) Hashtbl.t;
  interval2s : (string, iv -> iv -> iv) Hashtbl.t;
}

let empty () : t =
  {
    entries = Hashtbl.create 64;
    fast1s = Hashtbl.create 32;
    fast2s = Hashtbl.create 8;
    interval1s = Hashtbl.create 32;
    interval2s = Hashtbl.create 8;
  }

(* Re-registering an intrinsic clears its interval hook: a replacement
   implementation (e.g. a FastApprox polynomial over the libm default)
   makes the old enclosure unsound, and a missing hook degrades range
   analysis to an `Unbounded` verdict instead of a wrong number. *)
let register t name signature impl =
  Hashtbl.remove t.fast1s name;
  Hashtbl.remove t.fast2s name;
  Hashtbl.remove t.interval1s name;
  Hashtbl.remove t.interval2s name;
  Hashtbl.replace t.entries name (signature, impl)

let find t name = Hashtbl.find_opt t.entries name
let mem t name = Hashtbl.mem t.entries name
let fast1 t name = Hashtbl.find_opt t.fast1s name
let fast2 t name = Hashtbl.find_opt t.fast2s name
let interval1 t name = Hashtbl.find_opt t.interval1s name
let interval2 t name = Hashtbl.find_opt t.interval2s name

let register_interval1 t name f = Hashtbl.replace t.interval1s name f
let register_interval2 t name f = Hashtbl.replace t.interval2s name f

let signature t name =
  match find t name with Some (s, _) -> Some s | None -> None

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.entries []
  |> List.sort compare

let as_float = function
  | F x -> x
  | I _ -> invalid_arg "Builtins: expected a float value"

let as_int = function
  | I n -> n
  | F _ -> invalid_arg "Builtins: expected an integer value"

let register_float1 t name ?(cls = Cost.Transcendental) ?(approx = false) f =
  register t name
    { args = [ Kflt ]; ret = Kflt; cls; approx }
    (fun a -> F (f (as_float a.(0))));
  Hashtbl.replace t.fast1s name f

let register_float2 t name ?(cls = Cost.Transcendental) ?(approx = false) f =
  register t name
    { args = [ Kflt; Kflt ]; ret = Kflt; cls; approx }
    (fun a -> F (f (as_float a.(0)) (as_float a.(1))));
  Hashtbl.replace t.fast2s name f

let sign x = if x > 0. then 1. else if x < 0. then -1. else 0.

(* ------------------------------------------------------------------ *)
(* Interval enclosures for the default intrinsics (consumed by the
   range analysis in lib/range). A hook receives [lo, hi] with
   [lo <= hi] enclosing an argument and must return an interval
   enclosing every binary64 value the registered implementation can
   produce on it. Endpoint evaluations are widened outward by a few
   ulps: glibc's worst cases for these entry points are under 2 ulps,
   so a 4-ulp slop (8 for [pow], which composes two calls) covers the
   libm-vs-math gap; everything else relies only on mathematical
   monotonicity or exact extremal values. Hooks signal "no finite
   enclosure" with an infinite endpoint; the analysis turns that into
   an [Unbounded] verdict rather than a number. *)

let rec succ_n n x = if n = 0 then x else succ_n (n - 1) (Float.succ x)
let rec pred_n n x = if n = 0 then x else pred_n (n - 1) (Float.pred x)
let out n (lo, hi) = (pred_n n lo, succ_n n hi)
let mono1 f (lo, hi) = out 4 (f lo, f hi)

(* Trig: below this width an interval cannot wrap a full period, so the
   extrema inside it are exactly the critical points we enumerate. *)
let trig_whole (lo, hi) = hi -. lo >= 6.2 || Float.abs lo > 1e15 || Float.abs hi > 1e15

(* Extrema of sin at pi/2 + k*pi (value +1 for even k), of cos at k*pi
   (value +1 for even k). Critical points are located with a relative
   slop much larger than the error of computing them in binary64, so a
   point actually inside the interval is never missed — extra inclusions
   only widen the result. *)
let sin_iv (lo, hi) =
  if trig_whole (lo, hi) then (-1., 1.)
  else begin
    let vlo = sin lo and vhi = sin hi in
    let mn = ref (Float.min vlo vhi) and mx = ref (Float.max vlo vhi) in
    let k0 = int_of_float (Float.floor ((lo /. Float.pi) -. 0.5)) - 1
    and k1 = int_of_float (Float.ceil ((hi /. Float.pi) -. 0.5)) + 1 in
    for k = k0 to k1 do
      let c = (float_of_int k +. 0.5) *. Float.pi in
      let slop = 1e-9 *. (1. +. Float.abs c) in
      if c >= lo -. slop && c <= hi +. slop then
        if k land 1 = 0 then mx := 1. else mn := -1.
    done;
    out 4 (!mn, !mx)
  end

let cos_iv (lo, hi) =
  if trig_whole (lo, hi) then (-1., 1.)
  else begin
    let vlo = cos lo and vhi = cos hi in
    let mn = ref (Float.min vlo vhi) and mx = ref (Float.max vlo vhi) in
    let k0 = int_of_float (Float.floor (lo /. Float.pi)) - 1
    and k1 = int_of_float (Float.ceil (hi /. Float.pi)) + 1 in
    for k = k0 to k1 do
      let c = float_of_int k *. Float.pi in
      let slop = 1e-9 *. (1. +. Float.abs c) in
      if c >= lo -. slop && c <= hi +. slop then
        if k land 1 = 0 then mx := 1. else mn := -1.
    done;
    out 4 (!mn, !mx)
  end

let tan_iv (lo, hi) =
  if trig_whole (lo, hi) then (neg_infinity, infinity)
  else begin
    let k0 = int_of_float (Float.floor ((lo /. Float.pi) -. 0.5)) - 1
    and k1 = int_of_float (Float.ceil ((hi /. Float.pi) -. 0.5)) + 1 in
    let pole = ref false in
    for k = k0 to k1 do
      let c = (float_of_int k +. 0.5) *. Float.pi in
      let slop = 1e-9 *. (1. +. Float.abs c) in
      if c >= lo -. slop && c <= hi +. slop then pole := true
    done;
    if !pole then (neg_infinity, infinity) else out 4 (tan lo, tan hi)
  end

let pow_iv (alo, ahi) (blo, bhi) =
  (* x^y = exp(y ln x): over a rectangle with x > 0 the exponent
     y*ln(x) is bilinear, so its extrema sit at the corners. *)
  if not (alo > 0.) then (neg_infinity, infinity)
  else begin
    let cs = [ alo ** blo; alo ** bhi; ahi ** blo; ahi ** bhi ] in
    let mn = List.fold_left Float.min infinity cs
    and mx = List.fold_left Float.max neg_infinity cs in
    out 8 (mn, mx)
  end

let register_default_intervals t =
  register_interval1 t "sin" sin_iv;
  register_interval1 t "cos" cos_iv;
  register_interval1 t "tan" tan_iv;
  register_interval1 t "exp" (mono1 exp);
  register_interval1 t "log" (fun (lo, hi) ->
      if lo > 0. then mono1 log (lo, hi) else (neg_infinity, infinity));
  register_interval1 t "log2" (fun (lo, hi) ->
      if lo > 0. then mono1 (fun x -> log x /. log 2.) (lo, hi)
      else (neg_infinity, infinity));
  register_interval1 t "log10" (fun (lo, hi) ->
      if lo > 0. then mono1 log10 (lo, hi) else (neg_infinity, infinity));
  register_interval1 t "sqrt" (fun (lo, hi) ->
      if lo >= 0. then mono1 sqrt (lo, hi) else (neg_infinity, infinity));
  register_interval1 t "tanh" (mono1 tanh);
  register_interval1 t "atan" (mono1 atan);
  register_interval1 t "fabs" (fun (lo, hi) ->
      if lo >= 0. then (lo, hi)
      else if hi <= 0. then (-.hi, -.lo)
      else (0., Float.max (-.lo) hi));
  register_interval1 t "floor" (fun (lo, hi) -> (Float.floor lo, Float.floor hi));
  register_interval1 t "ceil" (fun (lo, hi) -> (Float.ceil lo, Float.ceil hi));
  register_interval1 t "sign" (fun (lo, hi) -> (sign lo, sign hi));
  register_interval1 t "castf32" (fun (lo, hi) ->
      (Fp.round Fp.F32 lo, Fp.round Fp.F32 hi));
  register_interval1 t "castf16" (fun (lo, hi) ->
      (Fp.round Fp.F16 lo, Fp.round Fp.F16 hi));
  register_interval2 t "pow" pow_iv;
  register_interval2 t "fmin" (fun (alo, ahi) (blo, bhi) ->
      (Float.min alo blo, Float.min ahi bhi));
  register_interval2 t "fmax" (fun (alo, ahi) (blo, bhi) ->
      (Float.max alo blo, Float.max ahi bhi))

let create () =
  let t = empty () in
  register_float1 t "sin" sin;
  register_float1 t "cos" cos;
  register_float1 t "tan" tan;
  register_float1 t "exp" exp;
  register_float1 t "log" log;
  register_float1 t "log2" (fun x -> log x /. log 2.);
  register_float1 t "log10" log10;
  register_float1 t "sqrt" ~cls:Cost.Square_root sqrt;
  register_float1 t "tanh" tanh;
  register_float1 t "atan" atan;
  register_float1 t "fabs" ~cls:Cost.Basic Float.abs;
  register_float1 t "floor" ~cls:Cost.Basic Float.floor;
  register_float1 t "ceil" ~cls:Cost.Basic Float.ceil;
  register_float1 t "sign" ~cls:Cost.Basic sign;
  register_float1 t "castf32" ~cls:Cost.Basic (Fp.round Fp.F32);
  register_float1 t "castf16" ~cls:Cost.Basic (Fp.round Fp.F16);
  register_float2 t "pow" ( ** );
  register_float2 t "fmin" ~cls:Cost.Basic Float.min;
  register_float2 t "fmax" ~cls:Cost.Basic Float.max;
  register t "fma"
    { args = [ Kflt; Kflt; Kflt ]; ret = Kflt; cls = Cost.Basic; approx = false }
    (fun a -> F (Float.fma (as_float a.(0)) (as_float a.(1)) (as_float a.(2))));
  register t "select"
    { args = [ Kint; Kflt; Kflt ]; ret = Kflt; cls = Cost.Basic; approx = false }
    (fun a -> F (if as_int a.(0) <> 0 then as_float a.(1) else as_float a.(2)));
  register t "itof"
    { args = [ Kint ]; ret = Kflt; cls = Cost.Basic; approx = false }
    (fun a -> F (float_of_int (as_int a.(0))));
  register t "ftoi"
    { args = [ Kflt ]; ret = Kint; cls = Cost.Basic; approx = false }
    (fun a -> I (int_of_float (as_float a.(0))));
  (* After the registrations above: [register] clears interval hooks so
     replacements can't inherit a stale enclosure. *)
  register_default_intervals t;
  t
