module Cost = Cheffp_precision.Cost
module Fp = Cheffp_precision.Fp

type kind = Kint | Kflt

let kind_of_scalar = function Ast.Sint -> Kint | Ast.Sflt _ -> Kflt
let kind_name = function Kint -> "int" | Kflt -> "float"

type signature = {
  args : kind list;
  ret : kind;
  cls : Cost.op_class;
  approx : bool;
}

type value = I of int | F of float

type impl = value array -> value

type t = {
  entries : (string, signature * impl) Hashtbl.t;
  fast1s : (string, float -> float) Hashtbl.t;
  fast2s : (string, float -> float -> float) Hashtbl.t;
}

let empty () : t =
  {
    entries = Hashtbl.create 64;
    fast1s = Hashtbl.create 32;
    fast2s = Hashtbl.create 8;
  }

let register t name signature impl =
  Hashtbl.remove t.fast1s name;
  Hashtbl.remove t.fast2s name;
  Hashtbl.replace t.entries name (signature, impl)

let find t name = Hashtbl.find_opt t.entries name
let mem t name = Hashtbl.mem t.entries name
let fast1 t name = Hashtbl.find_opt t.fast1s name
let fast2 t name = Hashtbl.find_opt t.fast2s name

let signature t name =
  match find t name with Some (s, _) -> Some s | None -> None

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.entries []
  |> List.sort compare

let as_float = function
  | F x -> x
  | I _ -> invalid_arg "Builtins: expected a float value"

let as_int = function
  | I n -> n
  | F _ -> invalid_arg "Builtins: expected an integer value"

let register_float1 t name ?(cls = Cost.Transcendental) ?(approx = false) f =
  register t name
    { args = [ Kflt ]; ret = Kflt; cls; approx }
    (fun a -> F (f (as_float a.(0))));
  Hashtbl.replace t.fast1s name f

let register_float2 t name ?(cls = Cost.Transcendental) ?(approx = false) f =
  register t name
    { args = [ Kflt; Kflt ]; ret = Kflt; cls; approx }
    (fun a -> F (f (as_float a.(0)) (as_float a.(1))));
  Hashtbl.replace t.fast2s name f

let sign x = if x > 0. then 1. else if x < 0. then -1. else 0.

let create () =
  let t = empty () in
  register_float1 t "sin" sin;
  register_float1 t "cos" cos;
  register_float1 t "tan" tan;
  register_float1 t "exp" exp;
  register_float1 t "log" log;
  register_float1 t "log2" (fun x -> log x /. log 2.);
  register_float1 t "log10" log10;
  register_float1 t "sqrt" ~cls:Cost.Square_root sqrt;
  register_float1 t "tanh" tanh;
  register_float1 t "atan" atan;
  register_float1 t "fabs" ~cls:Cost.Basic Float.abs;
  register_float1 t "floor" ~cls:Cost.Basic Float.floor;
  register_float1 t "ceil" ~cls:Cost.Basic Float.ceil;
  register_float1 t "sign" ~cls:Cost.Basic sign;
  register_float1 t "castf32" ~cls:Cost.Basic (Fp.round Fp.F32);
  register_float1 t "castf16" ~cls:Cost.Basic (Fp.round Fp.F16);
  register_float2 t "pow" ( ** );
  register_float2 t "fmin" ~cls:Cost.Basic Float.min;
  register_float2 t "fmax" ~cls:Cost.Basic Float.max;
  register t "fma"
    { args = [ Kflt; Kflt; Kflt ]; ret = Kflt; cls = Cost.Basic; approx = false }
    (fun a -> F (Float.fma (as_float a.(0)) (as_float a.(1)) (as_float a.(2))));
  register t "select"
    { args = [ Kint; Kflt; Kflt ]; ret = Kflt; cls = Cost.Basic; approx = false }
    (fun a -> F (if as_int a.(0) <> 0 then as_float a.(1) else as_float a.(2)));
  register t "itof"
    { args = [ Kint ]; ret = Kflt; cls = Cost.Basic; approx = false }
    (fun a -> F (float_of_int (as_int a.(0))));
  register t "ftoi"
    { args = [ Kflt ]; ret = Kint; cls = Cost.Basic; approx = false }
    (fun a -> I (int_of_float (as_float a.(0))));
  t
