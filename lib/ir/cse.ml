open Ast

let is_private_call name =
  String.length name >= 2 && name.[0] = '_' && name.[1] = '_'

(* Pure float expression worth naming: contains a real intrinsic call or
   is at least [size_threshold] nodes. *)
let size_threshold = 5

let rec node_count = function
  | Fconst _ | Iconst _ | Var _ -> 1
  | Idx (_, i) -> 1 + node_count i
  | Unop (_, e) -> 1 + node_count e
  | Binop (_, a, b) -> 1 + node_count a + node_count b
  | Call (_, args) -> 1 + List.fold_left (fun acc a -> acc + node_count a) 0 args

let rec has_call = function
  | Fconst _ | Iconst _ | Var _ -> false
  | Idx (_, i) -> has_call i
  | Unop (_, e) -> has_call e
  | Binop (_, a, b) -> has_call a || has_call b
  | Call (name, _) -> not (List.mem name [ "itof"; "select"; "sign" ])

let rec mentions_private = function
  | Fconst _ | Iconst _ | Var _ -> false
  | Idx (_, i) -> mentions_private i
  | Unop (_, e) -> mentions_private e
  | Binop (_, a, b) -> mentions_private a || mentions_private b
  | Call (name, args) ->
      is_private_call name || List.exists mentions_private args

let worthwhile e =
  (not (mentions_private e)) && (has_call e || node_count e >= size_threshold)

let rec free_vars acc = function
  | Fconst _ | Iconst _ -> acc
  | Var v -> v :: acc
  | Idx (a, i) -> free_vars (a :: acc) i
  | Unop (_, e) -> free_vars acc e
  | Binop (_, a, b) -> free_vars (free_vars acc a) b
  | Call (_, args) -> List.fold_left free_vars acc args

let cse_func ?builtins ?(prog = { funcs = [] }) ?(opaque = fun _ -> false) f =
  let builtins =
    match builtins with Some b -> b | None -> Builtins.create ()
  in
  let names = Rename.create () in
  Rename.reserve_func names f;

  (* Scoped variable typing for float-kind checks. *)
  let var_tys : (string, ty) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun p -> Hashtbl.replace var_tys p.pname p.pty) f.params;
  let lookup v = Hashtbl.find_opt var_tys v in
  let is_float_expr e =
    match Typecheck.expr_kind ~builtins prog lookup e with
    | Typecheck.Escalar Builtins.Kflt -> true
    | Typecheck.Escalar Builtins.Kint | Typecheck.Earr _ -> false
    | exception Typecheck.Error _ -> false
  in

  (* Availability: (expression, holding variable), newest first. *)
  let avail : (expr * string) list ref = ref [] in
  let kill v =
    avail :=
      List.filter
        (fun (e, holder) -> holder <> v && not (List.mem v (free_vars [] e)))
        !avail
  in
  let kill_all () = avail := [] in
  let lookup_avail e = List.assoc_opt e !avail in

  (* Replace maximal available subexpressions, top-down. *)
  let rec reuse e =
    match lookup_avail e with
    | Some holder when worthwhile e -> Var holder
    | _ -> (
        match e with
        | Fconst _ | Iconst _ | Var _ -> e
        | Idx (a, i) -> Idx (a, reuse i)
        | Unop (op, inner) -> Unop (op, reuse inner)
        | Binop (op, a, b) -> Binop (op, reuse a, reuse b)
        | Call (name, args) -> Call (name, List.map reuse args))
  in

  (* Count worthwhile float subexpressions; returns those occurring at
     least twice, largest first. Expressions touching opaque (narrow-
     storage) variables are excluded: naming them in a binary64
     temporary would widen their static format and change Source-mode
     rounding of the surrounding operation. *)
  let repeated_subexprs e =
    let counts : (expr, int) Hashtbl.t = Hashtbl.create 16 in
    let rec visit e =
      (if
         worthwhile e && is_float_expr e
         && not (List.exists opaque (free_vars [] e))
       then
         Hashtbl.replace counts e
           (1 + Option.value ~default:0 (Hashtbl.find_opt counts e)));
      match e with
      | Fconst _ | Iconst _ | Var _ -> ()
      | Idx (_, i) -> visit i
      | Unop (_, inner) -> visit inner
      | Binop (_, a, b) ->
          visit a;
          visit b
      | Call (_, args) -> List.iter visit args
    in
    visit e;
    Hashtbl.fold (fun e n acc -> if n >= 2 then e :: acc else acc) counts []
    |> List.sort (fun a b -> compare (node_count b) (node_count a))
  in

  let rec replace_subexpr ~target ~holder e =
    if e = target then Var holder
    else
      match e with
      | Fconst _ | Iconst _ | Var _ -> e
      | Idx (a, i) -> Idx (a, replace_subexpr ~target ~holder i)
      | Unop (op, inner) -> Unop (op, replace_subexpr ~target ~holder inner)
      | Binop (op, a, b) ->
          Binop
            ( op,
              replace_subexpr ~target ~holder a,
              replace_subexpr ~target ~holder b )
      | Call (name, args) ->
          Call (name, List.map (replace_subexpr ~target ~holder) args)
  in

  (* Hoist within-RHS duplicates into fresh temporaries, largest first,
     until no duplicate remains (bounded). Returns the hoisting
     declarations and the rewritten expression. *)
  let hoist_duplicates e =
    let rec go decls e budget =
      if budget = 0 then (decls, e)
      else
        match repeated_subexprs e with
        | [] -> (decls, e)
        | sub :: _ ->
            let t = Rename.fresh names "_cse" in
            Hashtbl.replace var_tys t (Tscalar (Sflt Cheffp_precision.Fp.F64));
            avail := (sub, t) :: !avail;
            let decl =
              Decl
                {
                  name = t;
                  dty = Dscalar (Sflt Cheffp_precision.Fp.F64);
                  init = Some sub;
                }
            in
            go (decls @ [ decl ]) (replace_subexpr ~target:sub ~holder:t e)
              (budget - 1)
    in
    go [] e 4
  in

  let process_rhs e =
    let e = reuse e in
    if is_float_expr e then hoist_duplicates e else ([], e)
  in

  let record lv e =
    match lv with
    | Lvar v
      when worthwhile e && is_float_expr e
           && (not (opaque v))
           && (not (List.exists opaque (free_vars [] e)))
           && not (List.mem v (free_vars [] e)) ->
        avail := (e, v) :: !avail
    | _ -> ()
  in

  let rec stmt s =
    match s with
    | Decl ({ name; dty; init } as d) -> (
        Hashtbl.replace var_tys name
          (match dty with Dscalar sc -> Tscalar sc | Darr (sc, _) -> Tarr sc);
        match init with
        | None -> [ Decl d ]
        | Some e ->
            let hoisted, e = process_rhs e in
            kill name;
            record (Lvar name) e;
            hoisted @ [ Decl { d with init = Some e } ])
    | Assign (lv, e) ->
        let hoisted, e = process_rhs e in
        let lv =
          match lv with
          | Lvar _ -> lv
          | Lidx (a, i) -> Lidx (a, reuse i)
        in
        kill (lvalue_base lv);
        record lv e;
        hoisted @ [ Assign (lv, e) ]
    | If (c, a, b) ->
        let c = reuse c in
        (* Each branch starts from an empty availability set: entries
           created inside one branch (hoisted temporaries, recorded
           assignments) are block-scoped and must not be reused by the
           sibling branch or by the code after the [If]. *)
        kill_all ();
        let a = block a in
        kill_all ();
        let b = block b in
        kill_all ();
        [ If (c, a, b) ]
    | For ({ lo; hi; body; var; _ } as l) ->
        let lo = reuse lo and hi = reuse hi in
        Hashtbl.replace var_tys var (Tscalar Sint);
        kill_all ();
        let body = block body in
        kill_all ();
        [ For { l with lo; hi; body } ]
    | While (c, body) ->
        kill_all ();
        let body = block body in
        kill_all ();
        [ While (c, body) ]
    | Return (Some e) ->
        let hoisted, e = process_rhs e in
        hoisted @ [ Return (Some e) ]
    | Return None -> [ Return None ]
    | Call_stmt (name, args) -> [ Call_stmt (name, List.map reuse args) ]
    | Push lv ->
        (* pushing only reads *)
        [ Push lv ]
    | Pop lv ->
        kill (lvalue_base lv);
        [ Pop lv ]
  and block stmts =
    (* availability flows through a straight-line run; control flow
       inside [stmt] resets it *)
    List.concat_map stmt stmts
  in
  let body = block f.body in
  { f with body }
