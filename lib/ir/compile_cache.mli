(** Memoized front end to {!Compile.compile}.

    A mixed-precision tuning run compiles the same function dozens of
    times — once per candidate configuration, and repeatedly for the
    configurations it revisits (the all-double reference, the finally
    chosen set, every sweep re-run). Each of those compilations repeats
    the same inline + optimize + closure-build work. This cache keys
    compilations structurally on
    [(program digest, func, Config.t, rounding mode, optimize, meter)]
    and returns the previously built {!Compile.t} on a hit.

    {b Counter policy} (the choice DESIGN.md documents): cached entries
    are {e counter-free}. {!Compile.compile} never captures a cost
    counter here — callers that meter pass [~meter:true] (so metering
    code is emitted) and thread their own counter through each
    {!Compile.run} call. Because a compiled value is immutable and every
    run builds a private environment, one cached instance is safe to
    share across runs and across domains simultaneously; the table
    itself is mutex-protected, so the cache may be used from pool
    workers directly.

    {b Builtins}: registries are mutable and not structurally
    comparable, so an entry also remembers the registry it was compiled
    against and only hits when the caller passes the {e same} registry
    (physical equality; [None] matches [None]). Mutating a registry
    after compiling through the cache is not supported — call {!clear}
    first.

    {b Bounding}: the table holds at most {!max_entries} compilations
    (default {!default_max_entries} — generous next to the hundreds of
    configurations a tuning run visits) and evicts the least recently
    used entry beyond that, so a long-lived server reusing this process
    cannot grow the cache without bound. {!clear} empties it
    explicitly.

    {b Observability} (DESIGN.md §9): hits, misses and evictions are
    registry counters ([compile_cache.hits] / [.misses] /
    [.evictions]), the current size is the [compile_cache.size] gauge —
    {!stats} reads the same numbers. With tracing enabled, each actual
    compilation records a ["compile"] span (attrs: func, config,
    optimize, meter) and each hit a ["compile.cache_hit"] event. *)

type artifact = ..
(** What the table stores. Extensible so layers above [ir] can memoize
    their own expensive derived artifacts (e.g. [Core.Profile]'s
    error-atom profiles) through the same LRU, lock and statistics —
    add a constructor, pick a kind-prefixed key, call {!lookup_or}. *)

type artifact += Scalar of Compile.t | Batched of Batch.t

val lookup_or :
  key:string ->
  label:string ->
  builtins:Builtins.t option ->
  select:(artifact -> 'a option) ->
  inject:('a -> artifact) ->
  build:(unit -> 'a) ->
  'a
(** Generic lookup-or-build: returns the cached value under [key] when
    present (with the same [builtins] registry, physical equality, and
    a [select] that accepts the stored artifact), otherwise runs
    [build] outside the lock and inserts [inject]'s artifact. Hits,
    misses and LRU eviction are accounted exactly like {!compile}'s;
    [label] names the entry in trace events. Keys must be
    kind-prefixed by the caller so distinct artifact kinds cannot
    collide. *)

val compile :
  ?builtins:Builtins.t ->
  ?config:Cheffp_precision.Config.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  ?meter:bool ->
  ?optimize:bool ->
  prog:Ast.program ->
  func:string ->
  unit ->
  Compile.t
(** Same defaults as {!Compile.compile} ([meter] defaults to [false]).
    Returns a cached instance when an equivalent compilation was done
    before, compiling and inserting otherwise. *)

val compile_batch :
  ?builtins:Builtins.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  ?meter:bool ->
  ?optimize:bool ->
  prog:Ast.program ->
  func:string ->
  unit ->
  Batch.t
(** Memoized {!Batch.compile}. Batch artifacts are
    configuration-generic, so the key is
    [(program digest, func, mode, optimize, meter)] {e without} a
    configuration — one cached compile serves every lane sweep, which is
    what lets a whole tuning search pay a single compilation per
    (program, mode). Entries share the scalar table, its LRU bound and
    its statistics. *)

type stats = {
  hits : int;  (** lookups served from the table *)
  misses : int;  (** lookups that had to compile *)
  evictions : int;  (** entries dropped by the LRU bound *)
  size : int;  (** entries currently cached *)
}

val stats : unit -> stats

val default_max_entries : int
(** 512. *)

val max_entries : unit -> int

val set_max_entries : int -> unit
(** Change the bound (>= 1; [Invalid_argument] otherwise), evicting
    least-recently-used entries immediately if the table is over it. *)

val reset_stats : unit -> unit
(** Zero [hits], [misses] and [evictions] without dropping cached
    entries. *)

val clear : unit -> unit
(** Drop every entry and zero the statistics. *)
