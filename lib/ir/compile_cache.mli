(** Memoized front end to {!Compile.compile} — a sharded, concurrent
    LRU shared by every request in the process.

    A mixed-precision tuning run compiles the same function dozens of
    times — once per candidate configuration, and repeatedly for the
    configurations it revisits (the all-double reference, the finally
    chosen set, every sweep re-run). Each of those compilations repeats
    the same inline + optimize + closure-build work. This cache keys
    compilations structurally on
    [(program digest, func, Config.t, rounding mode, optimize, meter)]
    and returns the previously built {!Compile.t} on a hit. The
    analysis server ([cheffp serve]) multiplies the effect: requests
    that analyze the same program amortize each other's compilations.

    {b Sharding} (DESIGN.md §13): the table is split into {!shards}
    independent shards — per-shard locks, hash tables and intrusive
    recency lists — keyed by a hash of the entry key, so concurrent
    lookups from different requests only contend when they collide on
    a shard. Statistics are always-on atomics and {!stats} reads them
    {e without taking any lock}. The LRU bound is distributed across
    the shards (the per-shard capacities sum to {!max_entries}
    exactly), making eviction a per-shard decision: global recency is
    approximate, the global size bound [size <= max_entries] is exact.
    Bounds below the shard count leave some shards with capacity zero;
    keys routed there still return correct results, they just rebuild
    on every lookup.

    {b Counter policy} (the choice DESIGN.md documents): cached entries
    are {e counter-free}. {!Compile.compile} never captures a cost
    counter here — callers that meter pass [~meter:true] (so metering
    code is emitted) and thread their own counter through each
    {!Compile.run} call. Because a compiled value is immutable and every
    run builds a private environment, one cached instance is safe to
    share across runs and across domains simultaneously.

    {b Builtins}: registries are mutable and not structurally
    comparable, so an entry also remembers the registry it was compiled
    against and only hits when the caller passes the {e same} registry
    (physical equality; [None] matches [None]). Mutating a registry
    after compiling through the cache is not supported — call {!clear}
    first.

    {b Bounding}: the table holds at most {!max_entries} compilations
    (default {!default_max_entries} — generous next to the hundreds of
    configurations a tuning run visits) and evicts the least recently
    used entry of the overfull shard beyond that, so a long-lived
    server cannot grow the cache without bound. {!set_max_entries}
    resizes {e atomically per shard}: each shard's new capacity is
    installed and enforced under that shard's own lock while lookups
    on other shards proceed. {!clear} empties the table explicitly.

    {b Observability} (DESIGN.md §9/§13): lookups, hits, misses and
    evictions are registry counters ([compile_cache.lookups] /
    [.hits] / [.misses] / [.evictions]), the current size is the
    [compile_cache.size] gauge — {!stats} reads the same numbers, and
    the update order guarantees [hits + misses <= lookups] for every
    concurrent sample, with equality at quiescence. With tracing
    enabled, each actual compilation records a ["compile"] span and
    each hit a ["compile.cache_hit"] event. Inside {!with_attribution},
    lookups are additionally charged to a tenant
    ([compile_cache.tenant.<t>.lookups] / [.hits] — the server's
    hit-rate-by-tenant metric) and to per-request counters. *)

type artifact = ..
(** What the table stores. Extensible so layers above [ir] can memoize
    their own expensive derived artifacts (e.g. [Core.Profile]'s
    error-atom profiles) through the same sharded LRU, locks and
    statistics — add a constructor, pick a kind-prefixed key, call
    {!lookup_or}. *)

type artifact += Scalar of Compile.t | Batched of Batch.t | Sweep of Batch.t

val shards : int
(** Number of independent shards (8). A key's shard is a hash of the
    key string; exposed so stress tests can reason about per-shard
    capacities. *)

val shard_of_key : string -> int
(** The shard index a key routes to (introspection for tests). *)

val lookup_or :
  key:string ->
  label:string ->
  builtins:Builtins.t option ->
  select:(artifact -> 'a option) ->
  inject:('a -> artifact) ->
  build:(unit -> 'a) ->
  'a
(** Generic lookup-or-build: returns the cached value under [key] when
    present (with the same [builtins] registry, physical equality, and
    a [select] that accepts the stored artifact), otherwise runs
    [build] outside the shard lock and inserts [inject]'s artifact.
    Hits, misses and LRU eviction are accounted exactly like
    {!compile}'s; [label] names the entry in trace events. Keys must be
    kind-prefixed by the caller so distinct artifact kinds cannot
    collide. Two domains racing on the same key build twice, harmlessly
    (last insert wins); entries already returned to readers survive any
    concurrent eviction or resize. *)

val compile :
  ?builtins:Builtins.t ->
  ?config:Cheffp_precision.Config.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  ?meter:bool ->
  ?optimize:bool ->
  prog:Ast.program ->
  func:string ->
  unit ->
  Compile.t
(** Same defaults as {!Compile.compile} ([meter] defaults to [false]).
    Returns a cached instance when an equivalent compilation was done
    before, compiling and inserting otherwise. *)

val compile_batch :
  ?builtins:Builtins.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  ?meter:bool ->
  ?optimize:bool ->
  prog:Ast.program ->
  func:string ->
  unit ->
  Batch.t
(** Memoized {!Batch.compile}. Batch artifacts are
    configuration-generic, so the key is
    [(program digest, func, mode, optimize, meter)] {e without} a
    configuration — one cached compile serves every lane sweep, which is
    what lets a whole tuning search pay a single compilation per
    (program, mode). Entries share the scalar table, its LRU bound and
    its statistics. *)

val compile_sweep :
  ?builtins:Builtins.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  ?meter:bool ->
  ?optimize:bool ->
  prog:Ast.program ->
  func:string ->
  unit ->
  Batch.t
(** Memoized {!Batch.compile} for the {e input-sweep} axis
    ({!Batch.run_inputs}). The artifact is the same configuration- and
    input-generic compile as {!compile_batch}'s, but it is cached under
    its own [sweep|...] kind-prefixed key: a long sampling session (a
    server tenant streaming [sample] requests) keeps its artifact's
    recency independent of config-sweep traffic, and per-tenant
    hit/miss attribution distinguishes the two uses. *)

(** {1 Per-tenant / per-request attribution} *)

type request_counters = { mutable r_hits : int; mutable r_misses : int }
(** Mutable per-request tally, written from the single domain running
    the request (domain-local storage routes the attribution). *)

val with_attribution :
  ?tenant:string -> ?counters:request_counters -> (unit -> 'a) -> 'a
(** [with_attribution ~tenant ~counters f] runs [f] with every cache
    lookup it performs {e on this domain} additionally charged to
    [compile_cache.tenant.<tenant>.lookups] / [.hits] (resolved once
    per call, not per lookup) and tallied into [counters]. Nests (the
    previous attribution is restored on exit); concurrent requests on
    different pool workers account independently. *)

(** {1 Statistics and bounds} *)

type stats = {
  hits : int;  (** lookups served from the table *)
  misses : int;  (** lookups that had to compile *)
  evictions : int;  (** entries dropped by the LRU bound *)
  size : int;  (** entries currently cached, summed over shards *)
  lookups : int;
      (** total lookups; [hits + misses <= lookups] at every concurrent
          sample, with equality once in-flight lookups drain *)
}

val stats : unit -> stats
(** Lock-free: atomic reads only, safe to sample from any domain while
    lookups are in flight. *)

val shard_sizes : unit -> (int * int) array
(** Per-shard [(entries, capacity)] — the occupancy view the server's
    [stats] endpoint and [cheffp top] render. Takes each shard lock in
    turn: exact per shard, not a global atomic cut. *)

val default_max_entries : int
(** 512. *)

val max_entries : unit -> int

val set_max_entries : int -> unit
(** Change the bound (>= 1; [Invalid_argument] otherwise), evicting
    least-recently-used entries immediately if a shard is over its
    slice. Atomic per shard: lookups on other shards are never blocked,
    lookups on the resizing shard serialize with its eviction scan. *)

val reset_stats : unit -> unit
(** Zero [hits], [misses], [evictions] and [lookups] without dropping
    cached entries. *)

val clear : unit -> unit
(** Drop every entry and zero the statistics (shard by shard; not
    atomic as a whole — meant for quiescent points). *)
