open Ast
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Cost = Cheffp_precision.Cost
module Growable = Cheffp_util.Growable

exception Compile_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

type env = {
  fl : float array;  (** float scalar slots *)
  it : int array;  (** int scalar slots *)
  fa : float array array;  (** float array slots *)
  ia : int array array;  (** int array slots *)
  fstack : Growable.Float.t;
  istack : int Growable.t;
  mutable ipeak : int;
  counter : Cost.Counter.t;
      (** the run's cost accumulator; metered compilations charge into
          it, so one compiled value can serve many runs (and domains),
          each with its own counter *)
}

exception Creturn_f of float
exception Creturn_i of int

type binding =
  | Bf of int * Fp.format
  | Bi of int
  | Bfa of int * Fp.format
  | Bia of int

(* Compile-time scope: stack of frames mapping names to slots. *)
type scope = { mutable frames : (string * binding) list list }

let scope_find sc name =
  let rec go = function
    | [] -> fail "undeclared variable %S" name
    | frame :: rest -> (
        match List.assoc_opt name frame with Some b -> b | None -> go rest)
  in
  go sc.frames

let scope_push sc = sc.frames <- [] :: sc.frames

let scope_pop sc =
  match sc.frames with
  | _ :: rest -> sc.frames <- rest
  | [] -> assert false

let scope_declare sc name b =
  match sc.frames with
  | frame :: rest -> sc.frames <- ((name, b) :: frame) :: rest
  | [] -> assert false

type t = {
  cfunc : Ast.func;
  run_body : env -> unit;
  nfl : int;
  nit : int;
  nfa : int;
  nia : int;
  out_scalars : (string * binding) list;
  param_bindings : (Ast.param * binding) list;
  config : Config.t;
  default_counter : Cost.Counter.t option;
}

(* ------------------------------------------------------------------ *)

let compile ?builtins ?(config = Config.double) ?(mode = Config.Source)
    ?counter ?(meter = counter <> None) ?(optimize = true) ~prog ~func () =
  let builtins =
    match builtins with Some b -> b | None -> Builtins.create ()
  in
  let f = func_exn prog func in
  let f = if Inline.has_user_calls prog f then Inline.inline_func prog f else f in
  let f =
    if optimize then
      (* Configuration-demoted variables round on store: they must stay
         opaque to value forwarding (see Optimize). *)
      Optimize.optimize_func
        ~opaque:(fun v ->
          Config.has_override config v
          || not (Fp.equal_format (Config.default_format config) Fp.F64))
        f
    else f
  in
  let nfl = ref 0 and nit = ref 0 and nfa = ref 0 and nia = ref 0 in
  let fresh_f () = let i = !nfl in incr nfl; i in
  let fresh_i () = let i = !nit in incr nit; i in
  let fresh_fa () = let i = !nfa in incr nfa; i in
  let fresh_ia () = let i = !nia in incr nia; i in
  let sc = { frames = [ [] ] } in

  let effective s name = Interp.effective_format config s name in

  (* Metering charges into the *run's* counter (a slot of [env]), not a
     counter captured at compile time: a metered compilation is a pure
     value reusable with any counter, which is what lets the compile
     cache share instances across runs and domains. *)
  let charge_op fmt cls : (env -> unit) option =
    if meter then Some (fun env -> Cost.Counter.charge_op env.counter fmt cls)
    else None
  in
  let charge_cast () : (env -> unit) option =
    if meter then Some (fun env -> Cost.Counter.charge_cast env.counter)
    else None
  in
  let with_charge charge (k : env -> float) =
    match charge with
    | None -> k
    | Some ch -> fun env -> (ch env; k env)
  in

  (* Static format of the result of an operation on [fa], [fb]. *)
  let wider a b = if Fp.bits a >= Fp.bits b then a else b in

  (* cf : expr -> (env -> float) * static format
     ci : expr -> env -> int *)
  let rec cf e : (env -> float) * Fp.format =
    match e with
    | Fconst x -> ((fun _ -> x), Fp.F64)
    | Iconst _ -> fail "integer expression %s where a float is required"
                    (Pp.expr_to_string e)
    | Var v -> (
        match scope_find sc v with
        | Bf (slot, fmt) -> ((fun env -> env.fl.(slot)), fmt)
        | Bi _ -> fail "int variable %S used as float" v
        | Bfa _ | Bia _ -> fail "array %S used as a scalar" v)
    | Idx (a, ie) -> (
        let gi = ci ie in
        match scope_find sc a with
        | Bfa (slot, fmt) -> ((fun env -> env.fa.(slot).(gi env)), fmt)
        | Bia _ -> fail "int array %S used as float" a
        | Bf _ | Bi _ -> fail "scalar %S indexed" a)
    | Unop (Neg, e) ->
        let g, fmt = cf e in
        let fmt' = match mode with Config.Source -> fmt | Config.Extended -> Fp.F64 in
        (with_charge (charge_op fmt' Cost.Basic) (fun env -> -.(g env)), fmt)
    | Unop (Not, _) -> fail "logical not yields an int"
    | Binop ((Add | Sub | Mul | Div) as op, a, b) -> (
        match (Typecheck.expr_kind ~builtins prog (lookup_ty sc) e) with
        | exception Typecheck.Error m -> fail "%s" m
        | Typecheck.Escalar Builtins.Kint ->
            fail "integer expression used as float: %s" (Pp.expr_to_string e)
        | _ ->
            let ga, fa = cf a in
            let gb, fb = cf b in
            let fmt = wider fa fb in
            let cls = match op with Div -> Cost.Division | _ -> Cost.Basic in
            let raw : env -> float =
              match op with
              | Add -> fun env -> ga env +. gb env
              | Sub -> fun env -> ga env -. gb env
              | Mul -> fun env -> ga env *. gb env
              | Div -> fun env -> ga env /. gb env
              | _ -> assert false
            in
            let cast_charge =
              if Fp.equal_format fa fb then None else charge_cast ()
            in
            let raw =
              match cast_charge with
              | None -> raw
              | Some ch -> fun env -> (ch env; raw env)
            in
            (match mode with
            | Config.Source ->
                let k = with_charge (charge_op fmt cls) raw in
                if Fp.equal_format fmt Fp.F64 then (k, fmt)
                else
                  let rnd = Fp.round fmt in
                  ((fun env -> rnd (k env)), fmt)
            | Config.Extended ->
                (with_charge (charge_op Fp.F64 cls) raw, Fp.F64)))
    | Binop _ -> fail "integer expression used as float: %s" (Pp.expr_to_string e)
    | Call (name, args) -> (
        match Builtins.find builtins name with
        | None -> fail "user call %S survived inlining" name
        | Some (sg, impl) ->
            if sg.Builtins.ret <> Builtins.Kflt then
              fail "intrinsic %S yields an int, used as float" name;
            compile_call name sg impl args)

  and compile_call name sg impl args : (env -> float) * Fp.format =
    let compiled =
      List.map2
        (fun k arg ->
          match k with
          | Builtins.Kflt ->
              let g, fmt = cf arg in
              `F (g, fmt)
          | Builtins.Kint -> `I (ci arg))
        sg.Builtins.args args
    in
    let widest =
      List.fold_left
        (fun acc c -> match c with `F (_, fmt) -> wider acc fmt | `I _ -> acc)
        Fp.F16 compiled
    in
    let has_float = List.exists (function `F _ -> true | `I _ -> false) compiled in
    let widest = if has_float then widest else Fp.F64 in
    let charge =
      if sg.Builtins.approx then
        (if meter then
           Some (fun env -> Cost.Counter.charge_approx env.counter sg.Builtins.cls)
         else None)
      else
        charge_op
          (match mode with Config.Source -> widest | Config.Extended -> Fp.F64)
          sg.Builtins.cls
    in
    let base : env -> float =
      match (compiled, Builtins.fast1 builtins name, Builtins.fast2 builtins name)
      with
      | [ `F (g, _) ], Some f, _ -> fun env -> f (g env)
      | [ `F (ga, _); `F (gb, _) ], _, Some f -> fun env -> f (ga env) (gb env)
      | _, _, _ ->
          let getters =
            List.map
              (function
                | `F (g, _) -> fun env -> Builtins.F (g env)
                | `I g -> fun env -> Builtins.I (g env))
              compiled
          in
          let getters = Array.of_list getters in
          fun env ->
            Builtins.as_float (impl (Array.map (fun g -> g env) getters))
    in
    let k = with_charge charge base in
    match mode with
    | Config.Source ->
        if Fp.equal_format widest Fp.F64 then (k, Fp.F64)
        else
          let rnd = Fp.round widest in
          ((fun env -> rnd (k env)), widest)
    | Config.Extended -> (k, Fp.F64)

  and ci e : env -> int =
    match e with
    | Iconst n -> fun _ -> n
    | Fconst _ -> fail "float constant used as int"
    | Var v -> (
        match scope_find sc v with
        | Bi slot -> fun env -> env.it.(slot)
        | Bf _ -> fail "float variable %S used as int" v
        | Bfa _ | Bia _ -> fail "array %S used as a scalar" v)
    | Idx (a, ie) -> (
        let gi = ci ie in
        match scope_find sc a with
        | Bia slot -> fun env -> env.ia.(slot).(gi env)
        | Bfa _ -> fail "float array %S used as int" a
        | Bf _ | Bi _ -> fail "scalar %S indexed" a)
    | Unop (Neg, e) ->
        let g = ci e in
        fun env -> -g env
    | Unop (Not, e) ->
        let g = ci e in
        fun env -> if g env = 0 then 1 else 0
    | Binop ((Add | Sub | Mul | Div | Mod) as op, a, b) -> (
        let ga = ci a and gb = ci b in
        match op with
        | Add -> fun env -> ga env + gb env
        | Sub -> fun env -> ga env - gb env
        | Mul -> fun env -> ga env * gb env
        | Div -> fun env -> ga env / gb env
        | Mod -> fun env -> ga env mod gb env
        | _ -> assert false)
    | Binop ((And | Or) as op, a, b) -> (
        let ga = ci a and gb = ci b in
        match op with
        | And -> fun env -> if ga env <> 0 && gb env <> 0 then 1 else 0
        | Or -> fun env -> if ga env <> 0 || gb env <> 0 then 1 else 0
        | _ -> assert false)
    | Binop ((Eq | Ne | Lt | Le | Gt | Ge) as op, a, b) -> (
        match Typecheck.expr_kind ~builtins prog (lookup_ty sc) a with
        | exception Typecheck.Error m -> fail "%s" m
        | Typecheck.Escalar Builtins.Kint -> (
            let ga = ci a and gb = ci b in
            match op with
            | Eq -> fun env -> if ga env = gb env then 1 else 0
            | Ne -> fun env -> if ga env <> gb env then 1 else 0
            | Lt -> fun env -> if ga env < gb env then 1 else 0
            | Le -> fun env -> if ga env <= gb env then 1 else 0
            | Gt -> fun env -> if ga env > gb env then 1 else 0
            | Ge -> fun env -> if ga env >= gb env then 1 else 0
            | _ -> assert false)
        | _ -> (
            let ga, _ = cf a and gb, _ = cf b in
            match op with
            | Eq -> fun env -> if ga env = gb env then 1 else 0
            | Ne -> fun env -> if ga env <> gb env then 1 else 0
            | Lt -> fun env -> if ga env < gb env then 1 else 0
            | Le -> fun env -> if ga env <= gb env then 1 else 0
            | Gt -> fun env -> if ga env > gb env then 1 else 0
            | Ge -> fun env -> if ga env >= gb env then 1 else 0
            | _ -> assert false))
    | Call (name, args) -> (
        match Builtins.find builtins name with
        | None -> fail "user call %S survived inlining" name
        | Some (sg, impl) ->
            if sg.Builtins.ret <> Builtins.Kint then
              fail "intrinsic %S yields a float, used as int" name;
            let getters =
              List.map2
                (fun k arg ->
                  match k with
                  | Builtins.Kflt ->
                      let g, _ = cf arg in
                      fun env -> Builtins.F (g env)
                  | Builtins.Kint ->
                      let g = ci arg in
                      fun env -> Builtins.I (g env))
                sg.Builtins.args args
              |> Array.of_list
            in
            fun env ->
              Builtins.as_int (impl (Array.map (fun g -> g env) getters)))

  and lookup_ty sc name =
    (* Typing view of the compile-time scope, for expr_kind queries. *)
    let rec go = function
      | [] -> None
      | frame :: rest -> (
          match List.assoc_opt name frame with
          | Some (Bf (_, fmt)) -> Some (Tscalar (Sflt fmt))
          | Some (Bi _) -> Some (Tscalar Sint)
          | Some (Bfa (_, fmt)) -> Some (Tarr (Sflt fmt))
          | Some (Bia _) -> Some (Tarr Sint)
          | None -> go rest)
    in
    go sc.frames
  in

  (* Store into a float slot with static rounding. *)
  let store_float slot fmt (g, gfmt) : env -> unit =
    let cast_needed = not (Fp.equal_format gfmt fmt) in
    let g =
      match (cast_needed, charge_cast ()) with
      | true, Some ch -> fun env -> (ch env; g env)
      | _, _ -> g
    in
    if Fp.equal_format fmt Fp.F64 then fun env -> env.fl.(slot) <- g env
    else
      let rnd = Fp.round fmt in
      fun env -> env.fl.(slot) <- rnd (g env)
  in
  let store_farr slot fmt gi (g, gfmt) : env -> unit =
    let cast_needed = not (Fp.equal_format gfmt fmt) in
    let g =
      match (cast_needed, charge_cast ()) with
      | true, Some ch -> fun env -> (ch env; g env)
      | _, _ -> g
    in
    if Fp.equal_format fmt Fp.F64 then
      fun env -> env.fa.(slot).(gi env) <- g env
    else
      let rnd = Fp.round fmt in
      fun env -> env.fa.(slot).(gi env) <- rnd (g env)
  in

  let rec cstmt s : env -> unit =
    match s with
    | Decl { name; dty = Dscalar Sint; init } -> (
        let slot = fresh_i () in
        scope_declare sc name (Bi slot);
        match init with
        | None -> fun env -> env.it.(slot) <- 0
        | Some e ->
            let g = ci e in
            fun env -> env.it.(slot) <- g env)
    | Decl { name; dty = Dscalar (Sflt _ as s); init } -> (
        let fmt = effective s name in
        let slot = fresh_f () in
        scope_declare sc name (Bf (slot, fmt));
        match init with
        | None -> fun env -> env.fl.(slot) <- 0.
        | Some e -> store_float slot fmt (cf e))
    | Decl { name; dty = Darr (Sint, size); init = _ } ->
        let gn = ci size in
        let slot = fresh_ia () in
        scope_declare sc name (Bia slot);
        fun env -> env.ia.(slot) <- Array.make (gn env) 0
    | Decl { name; dty = Darr ((Sflt _ as s), size); init = _ } ->
        let fmt = effective s name in
        let gn = ci size in
        let slot = fresh_fa () in
        scope_declare sc name (Bfa (slot, fmt));
        fun env -> env.fa.(slot) <- Array.make (gn env) 0.
    | Assign (Lvar v, e) -> (
        match scope_find sc v with
        | Bf (slot, fmt) -> store_float slot fmt (cf e)
        | Bi slot ->
            let g = ci e in
            fun env -> env.it.(slot) <- g env
        | Bfa _ | Bia _ -> fail "cannot assign to array %S as a whole" v)
    | Assign (Lidx (a, ie), e) -> (
        let gi = ci ie in
        match scope_find sc a with
        | Bfa (slot, fmt) -> store_farr slot fmt gi (cf e)
        | Bia slot ->
            let g = ci e in
            fun env -> env.ia.(slot).(gi env) <- g env
        | Bf _ | Bi _ -> fail "scalar %S indexed" a)
    | If (c, t, e) ->
        let gc = ci c in
        let gt = cblock t and ge = cblock e in
        fun env -> if gc env <> 0 then gt env else ge env
    | For { var; lo; hi; down; body } ->
        let glo = ci lo and ghi = ci hi in
        scope_push sc;
        let slot = fresh_i () in
        scope_declare sc var (Bi slot);
        let gbody = cblock body in
        scope_pop sc;
        if down then fun env ->
          let lo = glo env and hi = ghi env in
          for i = hi - 1 downto lo do
            env.it.(slot) <- i;
            gbody env
          done
        else fun env ->
          let lo = glo env and hi = ghi env in
          for i = lo to hi - 1 do
            env.it.(slot) <- i;
            gbody env
          done
    | While (c, body) ->
        let gc = ci c in
        let gbody = cblock body in
        fun env ->
          while gc env <> 0 do
            gbody env
          done
    | Return None -> fun _ -> raise (Creturn_f Float.nan)
    | Return (Some e) -> (
        match Typecheck.expr_kind ~builtins prog (lookup_ty sc) e with
        | exception Typecheck.Error m -> fail "%s" m
        | Typecheck.Escalar Builtins.Kint ->
            let g = ci e in
            fun env -> raise (Creturn_i (g env))
        | _ ->
            let g, _ = cf e in
            fun env -> raise (Creturn_f (g env)))
    | Call_stmt (name, args) -> (
        match Builtins.find builtins name with
        | None -> fail "user call %S survived inlining" name
        | Some (sg, _) -> (
            match sg.Builtins.ret with
            | Builtins.Kflt ->
                let g, _ = cf (Call (name, args)) in
                fun env -> ignore (g env)
            | Builtins.Kint ->
                let g = ci (Call (name, args)) in
                fun env -> ignore (g env)))
    | Push (Lvar v) -> (
        match scope_find sc v with
        | Bf (slot, _) -> fun env -> Growable.Float.push env.fstack env.fl.(slot)
        | Bi slot ->
            fun env ->
              Growable.push env.istack env.it.(slot);
              if Growable.length env.istack > env.ipeak then
                env.ipeak <- Growable.length env.istack
        | Bfa _ | Bia _ -> fail "cannot push whole array %S" v)
    | Push (Lidx (a, ie)) -> (
        let gi = ci ie in
        match scope_find sc a with
        | Bfa (slot, _) ->
            fun env -> Growable.Float.push env.fstack env.fa.(slot).(gi env)
        | Bia slot ->
            fun env ->
              Growable.push env.istack env.ia.(slot).(gi env);
              if Growable.length env.istack > env.ipeak then
                env.ipeak <- Growable.length env.istack
        | Bf _ | Bi _ -> fail "scalar %S indexed" a)
    | Pop (Lvar v) -> (
        match scope_find sc v with
        | Bf (slot, _) -> fun env -> env.fl.(slot) <- Growable.Float.pop env.fstack
        | Bi slot -> fun env -> env.it.(slot) <- Growable.pop env.istack
        | Bfa _ | Bia _ -> fail "cannot pop whole array %S" v)
    | Pop (Lidx (a, ie)) -> (
        let gi = ci ie in
        match scope_find sc a with
        | Bfa (slot, _) ->
            fun env -> env.fa.(slot).(gi env) <- Growable.Float.pop env.fstack
        | Bia slot ->
            fun env -> env.ia.(slot).(gi env) <- Growable.pop env.istack
        | Bf _ | Bi _ -> fail "scalar %S indexed" a)

  and cblock stmts : env -> unit =
    scope_push sc;
    let compiled = Array.of_list (List.map cstmt stmts) in
    scope_pop sc;
    fun env -> Array.iter (fun g -> g env) compiled
  in

  (* Parameters. *)
  let param_bindings =
    List.map
      (fun p ->
        let b =
          match p.pty with
          | Tscalar Sint -> Bi (fresh_i ())
          | Tscalar (Sflt _ as s) -> Bf (fresh_f (), effective s p.pname)
          | Tarr (Sflt _ as s) -> Bfa (fresh_fa (), effective s p.pname)
          | Tarr Sint -> Bia (fresh_ia ())
        in
        scope_declare sc p.pname b;
        (p, b))
      f.params
  in
  let out_scalars =
    List.filter_map
      (fun (p, b) ->
        match (p.pmode, b) with
        | Out, (Bf _ | Bi _) -> Some (p.pname, b)
        | _, _ -> None)
      param_bindings
  in
  let compiled = Array.of_list (List.map cstmt f.body) in
  let run_body env = Array.iter (fun g -> g env) compiled in
  {
    cfunc = f;
    run_body;
    nfl = !nfl;
    nit = !nit;
    nfa = !nfa;
    nia = !nia;
    out_scalars;
    param_bindings;
    config;
    default_counter = counter;
  }

let run ?counter t (args : Interp.arg list) : Interp.result =
  if List.length args <> List.length t.param_bindings then
    fail "function %S expects %d arguments, got %d" t.cfunc.fname
      (List.length t.param_bindings)
      (List.length args);
  let env =
    {
      fl = Array.make (max t.nfl 1) 0.;
      it = Array.make (max t.nit 1) 0;
      fa = Array.make (max t.nfa 1) [||];
      ia = Array.make (max t.nia 1) [||];
      fstack = Growable.Float.create ();
      istack = Growable.create ~dummy:0 ();
      ipeak = 0;
      counter =
        (match (counter, t.default_counter) with
        | Some c, _ -> c
        | None, Some c -> c
        | None, None ->
            (* metered compilation run without a counter: charge into a
               fresh private accumulator (kept per-run so concurrent
               domains never share one) *)
            Cost.Counter.create Cost.default);
    }
  in
  List.iter2
    (fun (p, b) arg ->
      match (b, arg) with
      | Bf (slot, fmt), Interp.Aflt x -> env.fl.(slot) <- Fp.round fmt x
      | Bi slot, Interp.Aint n -> env.it.(slot) <- n
      | Bfa (slot, fmt), Interp.Afarr a ->
          env.fa.(slot) <-
            (if Fp.equal_format fmt Fp.F64 then a
             else Array.map (Fp.round fmt) a)
      | Bia slot, Interp.Aiarr a -> env.ia.(slot) <- a
      | _, _ -> fail "argument kind mismatch for parameter %S" p.pname)
    t.param_bindings args;
  let ret =
    try
      t.run_body env;
      None
    with
    | Creturn_f x when Float.is_nan x && t.cfunc.ret = None -> None
    | Creturn_f x -> Some (Builtins.F x)
    | Creturn_i n -> Some (Builtins.I n)
  in
  let outs =
    List.map
      (fun (name, b) ->
        match b with
        | Bf (slot, _) -> (name, Builtins.F env.fl.(slot))
        | Bi slot -> (name, Builtins.I env.it.(slot))
        | Bfa _ | Bia _ -> assert false)
      t.out_scalars
  in
  {
    Interp.ret;
    outs;
    stack_peak_bytes =
      (Growable.Float.peak_length env.fstack * 8) + (env.ipeak * 8);
  }

let run_float ?counter t args =
  match (run ?counter t args).Interp.ret with
  | Some (Builtins.F x) -> x
  | _ -> fail "function %S did not return a float" t.cfunc.fname
