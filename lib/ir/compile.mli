(** Closure compiler for MiniFP.

    Compiles a function (after auto-inlining its user calls) into nested
    OCaml closures over a slot-resolved environment: variables become
    array indices resolved at compile time, so execution carries no name
    lookups and no value boxing on the hot path. This is the project's
    stand-in for the paper's "generated source goes through the
    compiler's optimization pipeline": CHEF-FP analysis code is optimized
    ({!Optimize}) and compiled here before it runs, which is what makes it
    faster and leaner than the tape-based baseline.

    Precision semantics match {!Interp} and are baked statically: under a
    mixed-precision configuration every float expression's format is
    known at compile time, so rounding (and optional cost metering) is
    emitted only where needed and costs nothing elsewhere. *)

exception Compile_error of string

type t

val compile :
  ?builtins:Builtins.t ->
  ?config:Cheffp_precision.Config.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  ?counter:Cheffp_precision.Cost.Counter.t ->
  ?meter:bool ->
  ?optimize:bool ->
  prog:Ast.program ->
  func:string ->
  unit ->
  t
(** [optimize] (default [true]) runs {!Optimize.optimize_func} first.
    [mode] defaults to [Source], matching {!Interp.run}.

    [meter] (default: whether [counter] was given) decides statically
    whether cost-metering code is emitted at all; unmetered
    compilations pay nothing at run time. Metered compilations charge
    into the {e run}'s counter, not one captured here: [counter] only
    sets the default accumulator used when {!run} is not given one.
    A compiled value is therefore immutable after compilation and may
    be shared freely — across repeated runs, across counters, and
    across domains (every {!run} builds a private environment), which
    is what {!Compile_cache} and the parallel tuning paths rely on. *)

val run : ?counter:Cheffp_precision.Cost.Counter.t -> t -> Interp.arg list -> Interp.result
(** Execute the compiled function. The same compiled value can be run
    many times (including concurrently from several domains); arrays
    passed as arguments are shared and mutated. [counter] receives the
    run's metered costs, falling back to the compile-time [counter],
    else to a fresh private accumulator (charges dropped). *)

val run_float : ?counter:Cheffp_precision.Cost.Counter.t -> t -> Interp.arg list -> float
