module Config = Cheffp_precision.Config

type stats = { hits : int; misses : int; size : int }

(* One global table guarded by one mutex: lookups are a digest + string
   compare, insertions are rare (one per distinct configuration), and
   the guarded sections never run user code, so contention from pool
   workers is negligible next to the compile they avoid. *)
let lock = Mutex.create ()
let table : (string, Builtins.t option * Compile.t) Hashtbl.t = Hashtbl.create 64
let hit_count = ref 0
let miss_count = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Structural key. The program is identified by a digest of its
   pretty-printed source (canonical: printing is deterministic), the
   configuration by its canonical string (overrides sorted by name). *)
let key ~prog ~func ~config ~mode ~optimize ~meter =
  Printf.sprintf "%s|%s|%s|%s|%b|%b"
    (Digest.to_hex (Digest.string (Pp.program_to_string prog)))
    func (Config.to_string config)
    (match mode with Config.Source -> "src" | Config.Extended -> "ext")
    optimize meter

let same_builtins a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> a == b
  | None, Some _ | Some _, None -> false

let compile ?builtins ?(config = Config.double) ?(mode = Config.Source)
    ?(meter = false) ?(optimize = true) ~prog ~func () =
  let k = key ~prog ~func ~config ~mode ~optimize ~meter in
  let cached =
    locked (fun () ->
        match Hashtbl.find_opt table k with
        | Some (b, t) when same_builtins b builtins ->
            incr hit_count;
            Some t
        | Some _ | None ->
            incr miss_count;
            None)
  in
  match cached with
  | Some t -> t
  | None ->
      (* Compiled outside the lock: two domains racing on the same key
         duplicate the work harmlessly; last insert wins. *)
      let t =
        Compile.compile ?builtins ~config ~mode ~meter ~optimize ~prog ~func ()
      in
      locked (fun () -> Hashtbl.replace table k (builtins, t));
      t

let stats () =
  locked (fun () ->
      { hits = !hit_count; misses = !miss_count; size = Hashtbl.length table })

let reset_stats () =
  locked (fun () ->
      hit_count := 0;
      miss_count := 0)

let clear () =
  locked (fun () ->
      Hashtbl.reset table;
      hit_count := 0;
      miss_count := 0)
