module Config = Cheffp_precision.Config
module Trace = Cheffp_obs.Trace
module Metrics = Cheffp_obs.Metrics

type stats = { hits : int; misses : int; evictions : int; size : int }

(* One global table guarded by one mutex: lookups are a digest + string
   compare, insertions are rare (one per distinct configuration), and
   the guarded sections never run user code, so contention from pool
   workers is negligible next to the compile they avoid.

   Recency is an intrusive doubly-linked list threaded through the
   entries (head = most recent), so a hit's refresh and an insertion's
   eviction are both O(1) under the same lock. *)
type entry = {
  key : string;
  mutable value : Builtins.t option * Compile.t;
  mutable prev : entry option;  (* towards the head / more recent *)
  mutable next : entry option;  (* towards the tail / least recent *)
}

let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 64
let head : entry option ref = ref None
let tail : entry option ref = ref None

let default_max_entries = 512
let max_entries_v = ref default_max_entries

(* Hit/miss/eviction counts live in the metrics registry (always-on
   atomics) so a `--metrics` dump and `stats ()` read the same numbers;
   the gauge mirrors the table size. *)
let hits_c = Metrics.counter "compile_cache.hits"
let misses_c = Metrics.counter "compile_cache.misses"
let evictions_c = Metrics.counter "compile_cache.evictions"
let size_g = Metrics.gauge "compile_cache.size"

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* List surgery; callers hold the lock. *)
let unlink e =
  (match e.prev with Some p -> p.next <- e.next | None -> head := e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> tail := e.prev);
  e.prev <- None;
  e.next <- None

let push_front e =
  e.prev <- None;
  e.next <- !head;
  (match !head with Some h -> h.prev <- Some e | None -> tail := Some e);
  head := Some e

let touch e =
  match e.prev with
  | None -> ()  (* already most recent *)
  | Some _ ->
      unlink e;
      push_front e

let sync_size () = Metrics.set_gauge size_g (float_of_int (Hashtbl.length table))

let evict_over_capacity () =
  while Hashtbl.length table > !max_entries_v do
    match !tail with
    | Some lru ->
        unlink lru;
        Hashtbl.remove table lru.key;
        Metrics.incr evictions_c
    | None -> assert false
  done;
  sync_size ()

let max_entries () = !max_entries_v

let set_max_entries n =
  if n < 1 then invalid_arg "Compile_cache.set_max_entries: must be >= 1";
  locked (fun () ->
      max_entries_v := n;
      evict_over_capacity ())

(* Structural key. The program is identified by a digest of its
   pretty-printed source (canonical: printing is deterministic), the
   configuration by its canonical string (overrides sorted by name). *)
let key ~prog ~func ~config ~mode ~optimize ~meter =
  Printf.sprintf "%s|%s|%s|%s|%b|%b"
    (Digest.to_hex (Digest.string (Pp.program_to_string prog)))
    func (Config.to_string config)
    (match mode with Config.Source -> "src" | Config.Extended -> "ext")
    optimize meter

let same_builtins a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> a == b
  | None, Some _ | Some _, None -> false

let compile ?builtins ?(config = Config.double) ?(mode = Config.Source)
    ?(meter = false) ?(optimize = true) ~prog ~func () =
  let k = key ~prog ~func ~config ~mode ~optimize ~meter in
  let cached =
    locked (fun () ->
        match Hashtbl.find_opt table k with
        | Some e when same_builtins (fst e.value) builtins ->
            Metrics.incr hits_c;
            touch e;
            Some (snd e.value)
        | Some _ | None ->
            Metrics.incr misses_c;
            None)
  in
  match cached with
  | Some t ->
      Trace.event "compile.cache_hit" ~attrs:[ ("func", Trace.Str func) ];
      t
  | None ->
      (* Compiled outside the lock: two domains racing on the same key
         duplicate the work harmlessly; last insert wins. *)
      let t =
        Trace.with_span "compile" (fun () ->
            if Trace.enabled () then begin
              Trace.add_attr "func" (Trace.Str func);
              Trace.add_attr "config" (Trace.Str (Config.to_string config));
              Trace.add_attr "optimize" (Trace.Bool optimize);
              Trace.add_attr "meter" (Trace.Bool meter)
            end;
            Compile.compile ?builtins ~config ~mode ~meter ~optimize ~prog
              ~func ())
      in
      locked (fun () ->
          (match Hashtbl.find_opt table k with
          | Some e ->
              e.value <- (builtins, t);
              touch e
          | None ->
              let e = { key = k; value = (builtins, t); prev = None; next = None } in
              Hashtbl.replace table k e;
              push_front e);
          evict_over_capacity ());
      t

let stats () =
  locked (fun () ->
      {
        hits = Metrics.counter_value hits_c;
        misses = Metrics.counter_value misses_c;
        evictions = Metrics.counter_value evictions_c;
        size = Hashtbl.length table;
      })

let reset_stats () =
  locked (fun () ->
      Metrics.set_counter hits_c 0;
      Metrics.set_counter misses_c 0;
      Metrics.set_counter evictions_c 0)

let clear () =
  locked (fun () ->
      Hashtbl.reset table;
      head := None;
      tail := None;
      Metrics.set_counter hits_c 0;
      Metrics.set_counter misses_c 0;
      Metrics.set_counter evictions_c 0;
      sync_size ())
