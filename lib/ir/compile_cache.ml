module Config = Cheffp_precision.Config
module Trace = Cheffp_obs.Trace
module Metrics = Cheffp_obs.Metrics

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  lookups : int;
}

(* Sharded LRU: the table is split into [shard_count] independent
   shards, each with its own lock, hash table and intrusive recency
   list. A key's shard is a hash of the key string, so concurrent
   lookups from server requests (or pool workers) only contend when
   they touch the same shard — the single global mutex this replaced
   serialized every hit in the process.

   Recency is an intrusive doubly-linked list threaded through the
   entries of each shard (head = most recent), so a hit's refresh and
   an insertion's eviction are both O(1) under that shard's lock. The
   LRU bound is distributed across the shards (sum of the per-shard
   capacities equals [max_entries] exactly), which makes eviction a
   per-shard decision: global recency is approximated, the global size
   bound is exact. *)
(* Scalar and batched artifacts share the table (and its LRU bound):
   a batch entry's key has no configuration component, which is the
   point — one compile serves every lane configuration. The variant is
   extensible so higher layers (e.g. Core.Profile's error-atom
   profiles) can reuse the same LRU machinery for their own expensive
   artifacts without a dependency inversion. *)
type artifact = ..
type artifact += Scalar of Compile.t | Batched of Batch.t | Sweep of Batch.t

type entry = {
  key : string;
  mutable value : Builtins.t option * artifact;
  mutable prev : entry option;  (* towards the head / more recent *)
  mutable next : entry option;  (* towards the tail / least recent *)
}

type shard = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  mutable cap : int;  (* this shard's slice of max_entries *)
}

let shards = 8

let shard_of_key k = Hashtbl.hash k land (shards - 1)

let default_max_entries = 512

(* [cap_of n i] distributes a global bound of [n] entries over the
   shards so the per-shard capacities sum to [n] exactly: shards below
   [n mod shards] get one extra slot. Bounds below the shard count
   leave some shards with capacity zero — lookups routed there still
   return correct results, they just rebuild every time. *)
let cap_of n i = (n / shards) + if i < n mod shards then 1 else 0

let pool =
  Array.init shards (fun i ->
      {
        lock = Mutex.create ();
        table = Hashtbl.create 64;
        head = None;
        tail = None;
        cap = cap_of default_max_entries i;
      })

let max_entries_v = Atomic.make default_max_entries

(* Lock-free reads: every statistic is an always-on atomic, so
   [stats ()] never takes a shard lock. [total_size] is maintained
   under the shard locks (one shard at a time) and mirrored into the
   size gauge. The update order is fixed — [lookups] first, the
   hit/miss verdict after — so a concurrent sampler that reads hits,
   then misses, then lookups always observes
   [hits + misses <= lookups], with equality at quiescence (the
   sharded-cache stress test asserts exactly this). *)
let hits_c = Metrics.counter "compile_cache.hits"
let misses_c = Metrics.counter "compile_cache.misses"
let evictions_c = Metrics.counter "compile_cache.evictions"
let lookups_c = Metrics.counter "compile_cache.lookups"
let size_g = Metrics.gauge "compile_cache.size"
let total_size = Atomic.make 0

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(* List surgery; callers hold the shard lock. *)
let unlink s e =
  (match e.prev with Some p -> p.next <- e.next | None -> s.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> s.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front s e =
  e.prev <- None;
  e.next <- s.head;
  (match s.head with Some h -> h.prev <- Some e | None -> s.tail <- Some e);
  s.head <- Some e

let touch s e =
  match e.prev with
  | None -> ()  (* already most recent *)
  | Some _ ->
      unlink s e;
      push_front s e

let sync_size () =
  Metrics.set_gauge size_g (float_of_int (Atomic.get total_size))

let evict_over_capacity s =
  while Hashtbl.length s.table > s.cap do
    match s.tail with
    | Some lru ->
        unlink s lru;
        Hashtbl.remove s.table lru.key;
        ignore (Atomic.fetch_and_add total_size (-1));
        Metrics.incr evictions_c
    | None -> assert false
  done;
  sync_size ()

let max_entries () = Atomic.get max_entries_v

(* Resize is atomic per shard: each shard's new capacity is installed
   and enforced under that shard's own lock, so concurrent [lookup_or]
   traffic on other shards proceeds untouched, and traffic on the same
   shard serializes with the eviction scan instead of racing it.
   Entries already handed out to readers stay valid — eviction only
   drops the table's reference. *)
let set_max_entries n =
  if n < 1 then invalid_arg "Compile_cache.set_max_entries: must be >= 1";
  Atomic.set max_entries_v n;
  Array.iteri
    (fun i s ->
      locked s (fun () ->
          s.cap <- cap_of n i;
          evict_over_capacity s))
    pool

(* ------------------------------------------------------------------ *)
(* Per-tenant / per-request attribution (server observability).
   The server runs each request inside [with_attribution]; the
   attribution rides domain-local storage, so concurrent requests on
   different pool workers account independently. Tenant counters land
   in the metrics registry ([compile_cache.tenant.<t>.lookups] /
   [.hits], resolved once per request, not per lookup); the optional
   request counters feed the per-request cache summary streamed back
   to the client. *)

type request_counters = { mutable r_hits : int; mutable r_misses : int }

type attribution = {
  a_lookups : Metrics.counter option;
  a_hits : Metrics.counter option;
  a_req : request_counters option;
}

let attribution_key : attribution option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_attribution ?tenant ?counters f =
  let a =
    {
      a_lookups =
        Option.map
          (fun t -> Metrics.counter ("compile_cache.tenant." ^ t ^ ".lookups"))
          tenant;
      a_hits =
        Option.map
          (fun t -> Metrics.counter ("compile_cache.tenant." ^ t ^ ".hits"))
          tenant;
      a_req = counters;
    }
  in
  let cell = Domain.DLS.get attribution_key in
  let saved = !cell in
  cell := Some a;
  Fun.protect ~finally:(fun () -> cell := saved) f

let attribute ~hit =
  match !(Domain.DLS.get attribution_key) with
  | None -> ()
  | Some a ->
      Option.iter Metrics.incr a.a_lookups;
      if hit then Option.iter Metrics.incr a.a_hits;
      Option.iter
        (fun r ->
          if hit then r.r_hits <- r.r_hits + 1
          else r.r_misses <- r.r_misses + 1)
        a.a_req

(* ------------------------------------------------------------------ *)

(* Structural key. The program is identified by a digest of its
   pretty-printed source (canonical: printing is deterministic), the
   configuration by its canonical string (overrides sorted by name).

   Printing + hashing a paper-sized program costs on the order of
   100us and every lookup — hits included — pays it, which dwarfs a
   microsecond kernel's whole input sweep. Programs are immutable
   once parsed, so the digest is memoized by physical identity in a
   small bounded list (lock-free; a racing insert can drop a peer's
   entry, which only costs that caller a recompute). *)
let digest_cache : (Ast.program * string) list Atomic.t = Atomic.make []

let prog_digest prog =
  let rec find = function
    | [] -> None
    | (p, d) :: rest -> if p == prog then Some d else find rest
  in
  match find (Atomic.get digest_cache) with
  | Some d -> d
  | None ->
      let d = Digest.to_hex (Digest.string (Pp.program_to_string prog)) in
      let entries = (prog, d) :: Atomic.get digest_cache in
      let entries =
        if List.length entries > 16 then List.filteri (fun i _ -> i < 16) entries
        else entries
      in
      Atomic.set digest_cache entries;
      d

let key ~prog ~func ~config ~mode ~optimize ~meter =
  Printf.sprintf "%s|%s|%s|%s|%b|%b" (prog_digest prog) func
    (Config.to_string config)
    (match mode with Config.Source -> "src" | Config.Extended -> "ext")
    optimize meter

let same_builtins a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> a == b
  | None, Some _ | Some _, None -> false

(* Generic lookup-or-build over the artifact variant; [select] projects
   the wanted artifact kind out of a cached entry (a key collision
   across kinds is impossible — non-scalar keys are kind-prefixed and
   digests are hex — but the projection keeps the type honest). *)
let lookup_or ~key:k ~label:func ~builtins ~select ~inject ~build =
  Metrics.incr lookups_c;
  let s = pool.(shard_of_key k) in
  let cached =
    locked s (fun () ->
        match Hashtbl.find_opt s.table k with
        | Some e when same_builtins (fst e.value) builtins -> (
            match select (snd e.value) with
            | Some v ->
                Metrics.incr hits_c;
                touch s e;
                Some v
            | None ->
                Metrics.incr misses_c;
                None)
        | Some _ | None ->
            Metrics.incr misses_c;
            None)
  in
  match cached with
  | Some t ->
      attribute ~hit:true;
      Trace.event "compile.cache_hit" ~attrs:[ ("func", Trace.Str func) ];
      t
  | None ->
      attribute ~hit:false;
      (* Built outside the lock: two domains racing on the same key
         duplicate the work harmlessly; last insert wins. *)
      let t = build () in
      locked s (fun () ->
          (match Hashtbl.find_opt s.table k with
          | Some e ->
              e.value <- (builtins, inject t);
              touch s e
          | None ->
              let e =
                { key = k; value = (builtins, inject t); prev = None; next = None }
              in
              Hashtbl.replace s.table k e;
              ignore (Atomic.fetch_and_add total_size 1);
              push_front s e);
          evict_over_capacity s);
      t

let compile ?builtins ?(config = Config.double) ?(mode = Config.Source)
    ?(meter = false) ?(optimize = true) ~prog ~func () =
  let k = key ~prog ~func ~config ~mode ~optimize ~meter in
  lookup_or ~key:k ~label:func ~builtins
    ~select:(function Scalar t -> Some t | _ -> None)
    ~inject:(fun t -> Scalar t)
    ~build:(fun () ->
      Trace.with_span "compile" (fun () ->
          if Trace.enabled () then begin
            Trace.add_attr "func" (Trace.Str func);
            Trace.add_attr "config" (Trace.Str (Config.to_string config));
            Trace.add_attr "optimize" (Trace.Bool optimize);
            Trace.add_attr "meter" (Trace.Bool meter)
          end;
          Compile.compile ?builtins ~config ~mode ~meter ~optimize ~prog
            ~func ()))

(* A batch compilation is configuration-generic, so its key drops the
   config component entirely: one cached artifact serves every lane
   sweep of a (program, func, mode). *)
let batch_key ~prog ~func ~mode ~optimize ~meter =
  Printf.sprintf "batch|%s|%s|%s|%b|%b" (prog_digest prog) func
    (match mode with Config.Source -> "src" | Config.Extended -> "ext")
    optimize meter

let compile_batch ?builtins ?(mode = Config.Source) ?(meter = false)
    ?(optimize = true) ~prog ~func () =
  let k = batch_key ~prog ~func ~mode ~optimize ~meter in
  lookup_or ~key:k ~label:func ~builtins
    ~select:(function Batched t -> Some t | _ -> None)
    ~inject:(fun t -> Batched t)
    ~build:(fun () ->
      Trace.with_span "compile" (fun () ->
          if Trace.enabled () then begin
            Trace.add_attr "func" (Trace.Str func);
            Trace.add_attr "batch" (Trace.Bool true);
            Trace.add_attr "optimize" (Trace.Bool optimize);
            Trace.add_attr "meter" (Trace.Bool meter)
          end;
          Batch.compile ?builtins ~mode ~meter ~optimize ~prog ~func ()))

(* An input-sweep compilation is the same configuration- and
   input-generic artifact as a batch one, but it lives under its own
   kind-prefixed key: sweep entries have their own recency (a tuning
   session's config sweeps must not evict a server tenant's long-lived
   sampling artifact and vice versa) and their own hit/miss attribution
   in per-tenant accounting. *)
let sweep_key ~prog ~func ~mode ~optimize ~meter =
  Printf.sprintf "sweep|%s|%s|%s|%b|%b" (prog_digest prog) func
    (match mode with Config.Source -> "src" | Config.Extended -> "ext")
    optimize meter

let compile_sweep ?builtins ?(mode = Config.Source) ?(meter = false)
    ?(optimize = true) ~prog ~func () =
  let k = sweep_key ~prog ~func ~mode ~optimize ~meter in
  lookup_or ~key:k ~label:func ~builtins
    ~select:(function Sweep t -> Some t | _ -> None)
    ~inject:(fun t -> Sweep t)
    ~build:(fun () ->
      Trace.with_span "compile" (fun () ->
          if Trace.enabled () then begin
            Trace.add_attr "func" (Trace.Str func);
            Trace.add_attr "sweep" (Trace.Bool true);
            Trace.add_attr "optimize" (Trace.Bool optimize);
            Trace.add_attr "meter" (Trace.Bool meter)
          end;
          Batch.compile ?builtins ~mode ~meter ~optimize ~prog ~func ()))

(* Lock-free: every field is an atomic read. The order — hits, then
   misses, then lookups — pairs with the update order in [lookup_or]
   (lookups first, verdict after) so [hits + misses <= lookups] holds
   for every concurrent sample, with equality once in-flight lookups
   have drained. *)
let stats () =
  let hits = Metrics.counter_value hits_c in
  let misses = Metrics.counter_value misses_c in
  let evictions = Metrics.counter_value evictions_c in
  let size = Atomic.get total_size in
  let lookups = Metrics.counter_value lookups_c in
  { hits; misses; evictions; size; lookups }

(* Per-shard occupancy for the server's stats endpoint / [cheffp top]:
   [(size, cap)] per shard. Each shard's lock is taken one at a time,
   so the view is per-shard-exact but not a global atomic cut — fine
   for a dashboard. *)
let shard_sizes () =
  Array.map (fun s -> locked s (fun () -> (Hashtbl.length s.table, s.cap))) pool

let reset_stats () =
  Metrics.set_counter hits_c 0;
  Metrics.set_counter misses_c 0;
  Metrics.set_counter evictions_c 0;
  Metrics.set_counter lookups_c 0

let clear () =
  Array.iter
    (fun s ->
      locked s (fun () ->
          let n = Hashtbl.length s.table in
          Hashtbl.reset s.table;
          s.head <- None;
          s.tail <- None;
          ignore (Atomic.fetch_and_add total_size (-n))))
    pool;
  reset_stats ();
  sync_size ()
