module Config = Cheffp_precision.Config
module Trace = Cheffp_obs.Trace
module Metrics = Cheffp_obs.Metrics

type stats = { hits : int; misses : int; evictions : int; size : int }

(* One global table guarded by one mutex: lookups are a digest + string
   compare, insertions are rare (one per distinct configuration), and
   the guarded sections never run user code, so contention from pool
   workers is negligible next to the compile they avoid.

   Recency is an intrusive doubly-linked list threaded through the
   entries (head = most recent), so a hit's refresh and an insertion's
   eviction are both O(1) under the same lock. *)
(* Scalar and batched artifacts share the table (and its LRU bound):
   a batch entry's key has no configuration component, which is the
   point — one compile serves every lane configuration. The variant is
   extensible so higher layers (e.g. Core.Profile's error-atom
   profiles) can reuse the same LRU machinery for their own expensive
   artifacts without a dependency inversion. *)
type artifact = ..
type artifact += Scalar of Compile.t | Batched of Batch.t

type entry = {
  key : string;
  mutable value : Builtins.t option * artifact;
  mutable prev : entry option;  (* towards the head / more recent *)
  mutable next : entry option;  (* towards the tail / least recent *)
}

let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 64
let head : entry option ref = ref None
let tail : entry option ref = ref None

let default_max_entries = 512
let max_entries_v = ref default_max_entries

(* Hit/miss/eviction counts live in the metrics registry (always-on
   atomics) so a `--metrics` dump and `stats ()` read the same numbers;
   the gauge mirrors the table size. *)
let hits_c = Metrics.counter "compile_cache.hits"
let misses_c = Metrics.counter "compile_cache.misses"
let evictions_c = Metrics.counter "compile_cache.evictions"
let size_g = Metrics.gauge "compile_cache.size"

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* List surgery; callers hold the lock. *)
let unlink e =
  (match e.prev with Some p -> p.next <- e.next | None -> head := e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> tail := e.prev);
  e.prev <- None;
  e.next <- None

let push_front e =
  e.prev <- None;
  e.next <- !head;
  (match !head with Some h -> h.prev <- Some e | None -> tail := Some e);
  head := Some e

let touch e =
  match e.prev with
  | None -> ()  (* already most recent *)
  | Some _ ->
      unlink e;
      push_front e

let sync_size () = Metrics.set_gauge size_g (float_of_int (Hashtbl.length table))

let evict_over_capacity () =
  while Hashtbl.length table > !max_entries_v do
    match !tail with
    | Some lru ->
        unlink lru;
        Hashtbl.remove table lru.key;
        Metrics.incr evictions_c
    | None -> assert false
  done;
  sync_size ()

let max_entries () = !max_entries_v

let set_max_entries n =
  if n < 1 then invalid_arg "Compile_cache.set_max_entries: must be >= 1";
  locked (fun () ->
      max_entries_v := n;
      evict_over_capacity ())

(* Structural key. The program is identified by a digest of its
   pretty-printed source (canonical: printing is deterministic), the
   configuration by its canonical string (overrides sorted by name). *)
let key ~prog ~func ~config ~mode ~optimize ~meter =
  Printf.sprintf "%s|%s|%s|%s|%b|%b"
    (Digest.to_hex (Digest.string (Pp.program_to_string prog)))
    func (Config.to_string config)
    (match mode with Config.Source -> "src" | Config.Extended -> "ext")
    optimize meter

let same_builtins a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> a == b
  | None, Some _ | Some _, None -> false

(* Generic lookup-or-build over the artifact variant; [select] projects
   the wanted artifact kind out of a cached entry (a key collision
   across kinds is impossible — non-scalar keys are kind-prefixed and
   digests are hex — but the projection keeps the type honest). *)
let lookup_or ~key:k ~label:func ~builtins ~select ~inject ~build =
  let cached =
    locked (fun () ->
        match Hashtbl.find_opt table k with
        | Some e when same_builtins (fst e.value) builtins -> (
            match select (snd e.value) with
            | Some v ->
                Metrics.incr hits_c;
                touch e;
                Some v
            | None ->
                Metrics.incr misses_c;
                None)
        | Some _ | None ->
            Metrics.incr misses_c;
            None)
  in
  match cached with
  | Some t ->
      Trace.event "compile.cache_hit" ~attrs:[ ("func", Trace.Str func) ];
      t
  | None ->
      (* Built outside the lock: two domains racing on the same key
         duplicate the work harmlessly; last insert wins. *)
      let t = build () in
      locked (fun () ->
          (match Hashtbl.find_opt table k with
          | Some e ->
              e.value <- (builtins, inject t);
              touch e
          | None ->
              let e =
                { key = k; value = (builtins, inject t); prev = None; next = None }
              in
              Hashtbl.replace table k e;
              push_front e);
          evict_over_capacity ());
      t

let compile ?builtins ?(config = Config.double) ?(mode = Config.Source)
    ?(meter = false) ?(optimize = true) ~prog ~func () =
  let k = key ~prog ~func ~config ~mode ~optimize ~meter in
  lookup_or ~key:k ~label:func ~builtins
    ~select:(function Scalar t -> Some t | _ -> None)
    ~inject:(fun t -> Scalar t)
    ~build:(fun () ->
      Trace.with_span "compile" (fun () ->
          if Trace.enabled () then begin
            Trace.add_attr "func" (Trace.Str func);
            Trace.add_attr "config" (Trace.Str (Config.to_string config));
            Trace.add_attr "optimize" (Trace.Bool optimize);
            Trace.add_attr "meter" (Trace.Bool meter)
          end;
          Compile.compile ?builtins ~config ~mode ~meter ~optimize ~prog
            ~func ()))

(* A batch compilation is configuration-generic, so its key drops the
   config component entirely: one cached artifact serves every lane
   sweep of a (program, func, mode). *)
let batch_key ~prog ~func ~mode ~optimize ~meter =
  Printf.sprintf "batch|%s|%s|%s|%b|%b"
    (Digest.to_hex (Digest.string (Pp.program_to_string prog)))
    func
    (match mode with Config.Source -> "src" | Config.Extended -> "ext")
    optimize meter

let compile_batch ?builtins ?(mode = Config.Source) ?(meter = false)
    ?(optimize = true) ~prog ~func () =
  let k = batch_key ~prog ~func ~mode ~optimize ~meter in
  lookup_or ~key:k ~label:func ~builtins
    ~select:(function Batched t -> Some t | _ -> None)
    ~inject:(fun t -> Batched t)
    ~build:(fun () ->
      Trace.with_span "compile" (fun () ->
          if Trace.enabled () then begin
            Trace.add_attr "func" (Trace.Str func);
            Trace.add_attr "batch" (Trace.Bool true);
            Trace.add_attr "optimize" (Trace.Bool optimize);
            Trace.add_attr "meter" (Trace.Bool meter)
          end;
          Batch.compile ?builtins ~mode ~meter ~optimize ~prog ~func ()))

let stats () =
  locked (fun () ->
      {
        hits = Metrics.counter_value hits_c;
        misses = Metrics.counter_value misses_c;
        evictions = Metrics.counter_value evictions_c;
        size = Hashtbl.length table;
      })

let reset_stats () =
  locked (fun () ->
      Metrics.set_counter hits_c 0;
      Metrics.set_counter misses_c 0;
      Metrics.set_counter evictions_c 0)

let clear () =
  locked (fun () ->
      Hashtbl.reset table;
      head := None;
      tail := None;
      Metrics.set_counter hits_c 0;
      Metrics.set_counter misses_c 0;
      Metrics.set_counter evictions_c 0;
      sync_size ())
