open Ast
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Cost = Cheffp_precision.Cost
module Growable = Cheffp_util.Growable
module Pool = Cheffp_util.Pool
module Trace = Cheffp_obs.Trace
module Metrics = Cheffp_obs.Metrics

let fail fmt = Format.kasprintf (fun s -> raise (Compile.Compile_error s)) fmt

let default_lanes = 8

(* Input sweeps carry one config and per-lane data only, so per-chunk
   fixed costs (environment build, result assembly) amortize over more
   lanes before cache pressure bites; config-axis batches stay at
   [default_lanes] because search phases rarely have more candidates. *)
let default_sweep_lanes = 64

let lanes_g = Metrics.gauge "batch.lanes"
let runs_c = Metrics.counter "batch.runs"
let divergence_c = Metrics.counter "batch.divergence_total"

(* Pre-applied rounders: the per-lane loops dispatch on a format tag
   instead of calling [Fp.round fmt] through a closure per element. *)
let r32 = Fp.round Fp.F32
let r16 = Fp.round Fp.F16
let rnd fmt x = match fmt with Fp.F64 -> x | Fp.F32 -> r32 x | Fp.F16 -> r16 x

(* ------------------------------------------------------------------ *)
(* Run-time environment: one per batch run, structure-of-arrays over
   the K lanes. Integers are uniform (shared by all lanes); every float
   slot / array / stack is per-lane. *)

type benv = {
  k : int;
  fl : float array array;  (** float slot -> lane -> value *)
  it : int array;  (** uniform int slots *)
  fa : float array array array;  (** float array slot -> lane -> payload *)
  ia : int array array;  (** uniform int arrays *)
  fstack : Growable.Float.t array;  (** per-lane value stacks *)
  istack : int Growable.t;
  mutable ipeak : int;
  active : bool array;  (** lane still executing batched *)
  mutable dropped : int;  (** lanes deactivated by divergence *)
  counters : Cost.Counter.t array;  (** per-lane cost accumulators *)
  vfmt : Fp.format array array;  (** float slot -> lane -> storage format *)
  afmt : Fp.format array array;  (** float array slot -> lane -> format *)
  efmt : Fp.format array array;  (** expr node -> lane -> static format *)
  scratch : float array array;  (** float expr node -> lane buffer *)
  iscratch : int array array;  (** divergence-check node -> lane buffer *)
}

exception Breturn_f of float array
exception Breturn_i of int

(* Agree on one integer across the live lanes. All agreeing: that value.
   Otherwise a divergence: the majority (ties towards the lowest-index
   lane) stays batched, every dissenting lane is deactivated and later
   re-run through the scalar fallback. *)
let consensus benv (vals : int array) : int =
  let k = benv.k in
  let first = ref min_int and seen = ref false and agree = ref true in
  for l = 0 to k - 1 do
    if benv.active.(l) then
      if not !seen then begin
        first := vals.(l);
        seen := true
      end
      else if vals.(l) <> !first then agree := false
  done;
  if !agree then !first
  else begin
    let best = ref !first and best_n = ref (-1) in
    for l = 0 to k - 1 do
      if benv.active.(l) then begin
        let n = ref 0 in
        for m = 0 to k - 1 do
          if benv.active.(m) && vals.(m) = vals.(l) then incr n
        done;
        if !n > !best_n then begin
          best := vals.(l);
          best_n := !n
        end
      end
    done;
    let v = !best in
    for l = 0 to k - 1 do
      if benv.active.(l) && vals.(l) <> v then begin
        benv.active.(l) <- false;
        benv.dropped <- benv.dropped + 1
      end
    done;
    v
  end

(* ------------------------------------------------------------------ *)
(* Compile-time structures.                                           *)

type binding = Bf of int | Bi of int | Bfa of int | Bia of int

type scope = { mutable frames : (string * binding) list list }

let scope_find sc name =
  let rec go = function
    | [] -> fail "undeclared variable %S" name
    | frame :: rest -> (
        match List.assoc_opt name frame with Some b -> b | None -> go rest)
  in
  go sc.frames

let scope_find_opt sc name =
  let rec go = function
    | [] -> None
    | frame :: rest -> (
        match List.assoc_opt name frame with
        | Some b -> Some b
        | None -> go rest)
  in
  go sc.frames

let scope_push sc = sc.frames <- [] :: sc.frames

let scope_pop sc =
  match sc.frames with _ :: rest -> sc.frames <- rest | [] -> assert false

let scope_declare sc name b =
  match sc.frames with
  | frame :: rest -> sc.frames <- ((name, b) :: frame) :: rest
  | [] -> assert false

(* Per-lane static format of a float expression node, as a rule over
   slot formats: the rule DAG is built at compile time (children before
   parents) and resolved into a [lane -> format] table when a run's
   configurations are known. *)
type frule =
  | Rfix of Fp.format
  | Rslot of int  (** format of a float scalar slot *)
  | Raslot of int  (** format of a float array slot *)
  | Rwider of int * int  (** wider of two earlier rules *)
  | Rwidest of int list  (** widest of earlier rules; [[]] means F64 *)

(* A compiled float expression: per-lane evaluation plus its format
   rule id. [ev] returns a K-wide array valid until the node is
   evaluated again (a node's own scratch row, or a slot row for
   variables). *)
type fex = { ev : benv -> float array; fid : int }

type t = {
  cfunc : Ast.func;
  prog : Ast.program;
  func_name : string;
  builtins_opt : Builtins.t option;
  mode : Config.rounding_mode;
  meter : bool;
  optimize : bool;
  run_body : benv -> unit;
  nfl : int;
  nit : int;
  nfa : int;
  nia : int;
  nscratch : int;
  niscratch : int;
  consts : (int * float) list;  (** constant scratch rows, prefilled *)
  rules : frule array;
  var_specs : (int * Ast.scalar * string) list;
      (** float scalar slots: declared scalar + name, for per-lane
          effective-format resolution *)
  arr_specs : (int * Ast.scalar * string) list;
  out_scalars : (string * binding) list;
  param_bindings : (Ast.param * binding) list;
  fmt_cache :
    (Config.t * int * (Fp.format array array * Fp.format array array * Fp.format array array))
    option
    Atomic.t;
      (** input sweeps re-resolve the same (config, lanes) format
          tables for every chunk; the tables are read-only once built,
          so the last resolution is cached and shared (also across
          pool domains — chunks of one sweep carry the same physical
          config) *)
}

(* ------------------------------------------------------------------ *)

let compile ?builtins ?(mode = Config.Source) ?(meter = false)
    ?(optimize = true) ~prog ~func () =
  let builtins_opt = builtins in
  let builtins =
    match builtins with Some b -> b | None -> Builtins.create ()
  in
  let f = func_exn prog func in
  let f = if Inline.has_user_calls prog f then Inline.inline_func prog f else f in
  let f =
    if optimize then
      (* The configurations are unknown until run time, so every
         variable is opaque: only rewrites that preserve values under
         any store-rounding survive, which is what the per-lane
         bit-identity contract needs. *)
      Optimize.optimize_func ~opaque:(fun _ -> true) f
    else f
  in
  let nfl = ref 0 and nit = ref 0 and nfa = ref 0 and nia = ref 0 in
  let fresh_f () = let i = !nfl in incr nfl; i in
  let fresh_i () = let i = !nit in incr nit; i in
  let fresh_fa () = let i = !nfa in incr nfa; i in
  let fresh_ia () = let i = !nia in incr nia; i in
  let nscratch = ref 0 in
  let fresh_scratch () = let i = !nscratch in incr nscratch; i in
  let niscratch = ref 0 in
  let fresh_iscratch () = let i = !niscratch in incr niscratch; i in
  let consts = ref [] in
  let rules_rev = ref [] and nrules = ref 0 in
  let rule r = let i = !nrules in incr nrules; rules_rev := r :: !rules_rev; i in
  let var_specs = ref [] and arr_specs = ref [] in
  let sc = { frames = [ [] ] } in

  let lookup_ty sc name =
    let rec go = function
      | [] -> None
      | frame :: rest -> (
          match List.assoc_opt name frame with
          | Some (Bf _) -> Some (Tscalar (Sflt Fp.F64))
          | Some (Bi _) -> Some (Tscalar Sint)
          | Some (Bfa _) -> Some (Tarr (Sflt Fp.F64))
          | Some (Bia _) -> Some (Tarr Sint)
          | None -> go rest)
    in
    go sc.frames
  in

  (* Wraps a raw per-lane computation with Source-mode rounding to the
     node's per-lane format (a no-op row of F64s costs one match per
     lane). *)
  let rounded fid s (raw : benv -> float array -> unit) : fex =
    let ev benv =
      let dst = benv.scratch.(s) in
      raw benv dst;
      (match mode with
      | Config.Extended -> ()
      | Config.Source ->
          let fmts = benv.efmt.(fid) in
          for l = 0 to benv.k - 1 do
            match fmts.(l) with
            | Fp.F64 -> ()
            | Fp.F32 -> dst.(l) <- r32 dst.(l)
            | Fp.F16 -> dst.(l) <- r16 dst.(l)
          done);
      dst
    in
    { ev; fid }
  in

  let rec cf e : fex =
    match e with
    | Fconst x ->
        let s = fresh_scratch () in
        consts := (s, x) :: !consts;
        { ev = (fun benv -> benv.scratch.(s)); fid = rule (Rfix Fp.F64) }
    | Iconst _ ->
        fail "integer expression %s where a float is required"
          (Pp.expr_to_string e)
    | Var v -> (
        match scope_find sc v with
        | Bf slot ->
            { ev = (fun benv -> benv.fl.(slot)); fid = rule (Rslot slot) }
        | Bi _ -> fail "int variable %S used as float" v
        | Bfa _ | Bia _ -> fail "array %S used as a scalar" v)
    | Idx (a, ie) -> (
        let gi = ci ie in
        match scope_find sc a with
        | Bfa slot ->
            let s = fresh_scratch () in
            let ev benv =
              let i = gi benv in
              let lanes = benv.fa.(slot) in
              let dst = benv.scratch.(s) in
              for l = 0 to benv.k - 1 do
                dst.(l) <- lanes.(l).(i)
              done;
              dst
            in
            { ev; fid = rule (Raslot slot) }
        | Bia _ -> fail "int array %S used as float" a
        | Bf _ | Bi _ -> fail "scalar %S indexed" a)
    | Unop (Neg, e) ->
        let a = cf e in
        let s = fresh_scratch () in
        let ev =
          if meter then fun benv ->
            let src = a.ev benv in
            let dst = benv.scratch.(s) in
            let fmts = benv.efmt.(a.fid) in
            for l = 0 to benv.k - 1 do
              let fmt =
                match mode with
                | Config.Source -> fmts.(l)
                | Config.Extended -> Fp.F64
              in
              Cost.Counter.charge_op benv.counters.(l) fmt Cost.Basic;
              dst.(l) <- -.src.(l)
            done;
            dst
          else fun benv ->
            let src = a.ev benv in
            let dst = benv.scratch.(s) in
            for l = 0 to benv.k - 1 do
              dst.(l) <- -.src.(l)
            done;
            dst
        in
        (* Negation keeps its operand's format and never rounds,
           matching the scalar compiler. *)
        { ev; fid = a.fid }
    | Unop (Not, _) -> fail "logical not yields an int"
    | Binop ((Add | Sub | Mul | Div) as op, a, b) -> (
        match Typecheck.expr_kind ~builtins prog (lookup_ty sc) e with
        | exception Typecheck.Error m -> fail "%s" m
        | Typecheck.Escalar Builtins.Kint ->
            fail "integer expression used as float: %s" (Pp.expr_to_string e)
        | _ ->
            let xa = cf a and xb = cf b in
            let s = fresh_scratch () in
            let fid =
              match mode with
              | Config.Source -> rule (Rwider (xa.fid, xb.fid))
              | Config.Extended -> rule (Rfix Fp.F64)
            in
            if meter then
              let cls =
                match op with Div -> Cost.Division | _ -> Cost.Basic
              in
              let apply : float -> float -> float =
                match op with
                | Add -> ( +. )
                | Sub -> ( -. )
                | Mul -> ( *. )
                | Div -> ( /. )
                | _ -> assert false
              in
              let raw benv dst =
                let va = xa.ev benv and vb = xb.ev benv in
                let fa = benv.efmt.(xa.fid) and fb = benv.efmt.(xb.fid) in
                let fmts = benv.efmt.(fid) in
                for l = 0 to benv.k - 1 do
                  let c = benv.counters.(l) in
                  Cost.Counter.charge_op c fmts.(l) cls;
                  if not (Fp.equal_format fa.(l) fb.(l)) then
                    Cost.Counter.charge_cast c;
                  dst.(l) <- apply va.(l) vb.(l)
                done
              in
              rounded fid s raw
            else
              (* Unmetered hot path: one specialised unboxed loop per
                 operator, rounding fused into the store. *)
              let ev =
                match (op, mode) with
                | Add, Config.Source -> fun benv ->
                    let va = xa.ev benv and vb = xb.ev benv in
                    let dst = benv.scratch.(s) in
                    let fmts = benv.efmt.(fid) in
                    for l = 0 to benv.k - 1 do
                      dst.(l) <-
                        (match fmts.(l) with
                        | Fp.F64 -> va.(l) +. vb.(l)
                        | Fp.F32 -> r32 (va.(l) +. vb.(l))
                        | Fp.F16 -> r16 (va.(l) +. vb.(l)))
                    done;
                    dst
                | Sub, Config.Source -> fun benv ->
                    let va = xa.ev benv and vb = xb.ev benv in
                    let dst = benv.scratch.(s) in
                    let fmts = benv.efmt.(fid) in
                    for l = 0 to benv.k - 1 do
                      dst.(l) <-
                        (match fmts.(l) with
                        | Fp.F64 -> va.(l) -. vb.(l)
                        | Fp.F32 -> r32 (va.(l) -. vb.(l))
                        | Fp.F16 -> r16 (va.(l) -. vb.(l)))
                    done;
                    dst
                | Mul, Config.Source -> fun benv ->
                    let va = xa.ev benv and vb = xb.ev benv in
                    let dst = benv.scratch.(s) in
                    let fmts = benv.efmt.(fid) in
                    for l = 0 to benv.k - 1 do
                      dst.(l) <-
                        (match fmts.(l) with
                        | Fp.F64 -> va.(l) *. vb.(l)
                        | Fp.F32 -> r32 (va.(l) *. vb.(l))
                        | Fp.F16 -> r16 (va.(l) *. vb.(l)))
                    done;
                    dst
                | Div, Config.Source -> fun benv ->
                    let va = xa.ev benv and vb = xb.ev benv in
                    let dst = benv.scratch.(s) in
                    let fmts = benv.efmt.(fid) in
                    for l = 0 to benv.k - 1 do
                      dst.(l) <-
                        (match fmts.(l) with
                        | Fp.F64 -> va.(l) /. vb.(l)
                        | Fp.F32 -> r32 (va.(l) /. vb.(l))
                        | Fp.F16 -> r16 (va.(l) /. vb.(l)))
                    done;
                    dst
                | Add, Config.Extended -> fun benv ->
                    let va = xa.ev benv and vb = xb.ev benv in
                    let dst = benv.scratch.(s) in
                    for l = 0 to benv.k - 1 do
                      dst.(l) <- va.(l) +. vb.(l)
                    done;
                    dst
                | Sub, Config.Extended -> fun benv ->
                    let va = xa.ev benv and vb = xb.ev benv in
                    let dst = benv.scratch.(s) in
                    for l = 0 to benv.k - 1 do
                      dst.(l) <- va.(l) -. vb.(l)
                    done;
                    dst
                | Mul, Config.Extended -> fun benv ->
                    let va = xa.ev benv and vb = xb.ev benv in
                    let dst = benv.scratch.(s) in
                    for l = 0 to benv.k - 1 do
                      dst.(l) <- va.(l) *. vb.(l)
                    done;
                    dst
                | Div, Config.Extended -> fun benv ->
                    let va = xa.ev benv and vb = xb.ev benv in
                    let dst = benv.scratch.(s) in
                    for l = 0 to benv.k - 1 do
                      dst.(l) <- va.(l) /. vb.(l)
                    done;
                    dst
                | _ -> assert false
              in
              { ev; fid })
    | Binop _ ->
        fail "integer expression used as float: %s" (Pp.expr_to_string e)
    | Call (name, args) -> (
        match Builtins.find builtins name with
        | None -> fail "user call %S survived inlining" name
        | Some (sg, impl) ->
            if sg.Builtins.ret <> Builtins.Kflt then
              fail "intrinsic %S yields an int, used as float" name;
            compile_call name sg impl args)

  and compile_call name sg impl args : fex =
    let compiled =
      List.map2
        (fun k arg ->
          match k with
          | Builtins.Kflt -> `F (cf arg)
          | Builtins.Kint -> `I (ci arg))
        sg.Builtins.args args
    in
    let float_fids =
      List.filter_map (function `F x -> Some x.fid | `I _ -> None) compiled
    in
    let fid =
      match mode with
      | Config.Source -> rule (Rwidest float_fids)
      | Config.Extended -> rule (Rfix Fp.F64)
    in
    let s = fresh_scratch () in
    let base : benv -> float array -> unit =
      match
        (compiled, Builtins.fast1 builtins name, Builtins.fast2 builtins name)
      with
      | [ `F a ], Some g, _ ->
          fun benv dst ->
            let src = a.ev benv in
            for l = 0 to benv.k - 1 do
              dst.(l) <- g src.(l)
            done
      | [ `F a; `F b ], _, Some g ->
          fun benv dst ->
            let va = a.ev benv and vb = b.ev benv in
            for l = 0 to benv.k - 1 do
              dst.(l) <- g va.(l) vb.(l)
            done
      | _, _, _ ->
          let getters = Array.of_list compiled in
          fun benv dst ->
            let vals =
              Array.map
                (function
                  | `F x -> `FV (x.ev benv)
                  | `I gi -> `IV (gi benv))
                getters
            in
            for l = 0 to benv.k - 1 do
              let argv =
                Array.map
                  (function
                    | `FV a -> Builtins.F a.(l)
                    | `IV n -> Builtins.I n)
                  vals
              in
              dst.(l) <- Builtins.as_float (impl argv)
            done
    in
    let base =
      if not meter then base
      else if sg.Builtins.approx then fun benv dst ->
        base benv dst;
        for l = 0 to benv.k - 1 do
          Cost.Counter.charge_approx benv.counters.(l) sg.Builtins.cls
        done
      else fun benv dst ->
        base benv dst;
        let fmts = benv.efmt.(fid) in
        for l = 0 to benv.k - 1 do
          let fmt =
            match mode with
            | Config.Source -> fmts.(l)
            | Config.Extended -> Fp.F64
          in
          Cost.Counter.charge_op benv.counters.(l) fmt sg.Builtins.cls
        done
    in
    rounded fid s base

  and ci e : benv -> int =
    match e with
    | Iconst n -> fun _ -> n
    | Fconst _ -> fail "float constant used as int"
    | Var v -> (
        match scope_find sc v with
        | Bi slot -> fun benv -> benv.it.(slot)
        | Bf _ -> fail "float variable %S used as int" v
        | Bfa _ | Bia _ -> fail "array %S used as a scalar" v)
    | Idx (a, ie) -> (
        let gi = ci ie in
        match scope_find sc a with
        | Bia slot -> fun benv -> benv.ia.(slot).(gi benv)
        | Bfa _ -> fail "float array %S used as int" a
        | Bf _ | Bi _ -> fail "scalar %S indexed" a)
    | Unop (Neg, e) ->
        let g = ci e in
        fun benv -> -g benv
    | Unop (Not, e) ->
        let g = ci e in
        fun benv -> if g benv = 0 then 1 else 0
    | Binop ((Add | Sub | Mul | Div | Mod) as op, a, b) -> (
        let ga = ci a and gb = ci b in
        match op with
        | Add -> fun benv -> ga benv + gb benv
        | Sub -> fun benv -> ga benv - gb benv
        | Mul -> fun benv -> ga benv * gb benv
        | Div -> fun benv -> ga benv / gb benv
        | Mod -> fun benv -> ga benv mod gb benv
        | _ -> assert false)
    | Binop ((And | Or) as op, a, b) -> (
        let ga = ci a and gb = ci b in
        match op with
        | And -> fun benv -> if ga benv <> 0 && gb benv <> 0 then 1 else 0
        | Or -> fun benv -> if ga benv <> 0 || gb benv <> 0 then 1 else 0
        | _ -> assert false)
    | Binop ((Eq | Ne | Lt | Le | Gt | Ge) as op, a, b) -> (
        match Typecheck.expr_kind ~builtins prog (lookup_ty sc) a with
        | exception Typecheck.Error m -> fail "%s" m
        | Typecheck.Escalar Builtins.Kint -> (
            let ga = ci a and gb = ci b in
            match op with
            | Eq -> fun benv -> if ga benv = gb benv then 1 else 0
            | Ne -> fun benv -> if ga benv <> gb benv then 1 else 0
            | Lt -> fun benv -> if ga benv < gb benv then 1 else 0
            | Le -> fun benv -> if ga benv <= gb benv then 1 else 0
            | Gt -> fun benv -> if ga benv > gb benv then 1 else 0
            | Ge -> fun benv -> if ga benv >= gb benv then 1 else 0
            | _ -> assert false)
        | _ ->
            (* A float comparison is where lanes can disagree: evaluate
               per lane and take the consensus. *)
            let xa = cf a and xb = cf b in
            let si = fresh_iscratch () in
            let cmp : float -> float -> bool =
              match op with
              | Eq -> ( = )
              | Ne -> ( <> )
              | Lt -> ( < )
              | Le -> ( <= )
              | Gt -> ( > )
              | Ge -> ( >= )
              | _ -> assert false
            in
            fun benv ->
              let va = xa.ev benv and vb = xb.ev benv in
              let dst = benv.iscratch.(si) in
              for l = 0 to benv.k - 1 do
                dst.(l) <- (if cmp va.(l) vb.(l) then 1 else 0)
              done;
              consensus benv dst)
    | Call (name, args) -> (
        match Builtins.find builtins name with
        | None -> fail "user call %S survived inlining" name
        | Some (sg, impl) ->
            if sg.Builtins.ret <> Builtins.Kint then
              fail "intrinsic %S yields a float, used as int" name;
            let compiled =
              List.map2
                (fun k arg ->
                  match k with
                  | Builtins.Kflt -> `F (cf arg)
                  | Builtins.Kint -> `I (ci arg))
                sg.Builtins.args args
            in
            let getters = Array.of_list compiled in
            let has_float =
              List.exists (function `F _ -> true | `I _ -> false) compiled
            in
            if not has_float then fun benv ->
              let argv =
                Array.map
                  (function
                    | `I gi -> Builtins.I (gi benv)
                    | `F _ -> assert false)
                  getters
              in
              Builtins.as_int (impl argv)
            else
              (* An int derived from floats: another consensus point. *)
              let si = fresh_iscratch () in
              fun benv ->
                let vals =
                  Array.map
                    (function
                      | `F x -> `FV (x.ev benv)
                      | `I gi -> `IV (gi benv))
                    getters
                in
                let dst = benv.iscratch.(si) in
                for l = 0 to benv.k - 1 do
                  let argv =
                    Array.map
                      (function
                        | `FV a -> Builtins.F a.(l)
                        | `IV n -> Builtins.I n)
                      vals
                  in
                  dst.(l) <- Builtins.as_int (impl argv)
                done;
                consensus benv dst)
  in

  (* Store into a float slot: per-lane rounding to the slot's storage
     format, cast-metered per lane when source and storage differ. *)
  let store_float slot (x : fex) : benv -> unit =
    if meter then fun benv ->
      let src = x.ev benv in
      let dst = benv.fl.(slot) in
      let sfmt = benv.efmt.(x.fid) and fmts = benv.vfmt.(slot) in
      for l = 0 to benv.k - 1 do
        if not (Fp.equal_format sfmt.(l) fmts.(l)) then
          Cost.Counter.charge_cast benv.counters.(l);
        dst.(l) <- rnd fmts.(l) src.(l)
      done
    else fun benv ->
      let src = x.ev benv in
      let dst = benv.fl.(slot) in
      let fmts = benv.vfmt.(slot) in
      for l = 0 to benv.k - 1 do
        dst.(l) <-
          (match fmts.(l) with
          | Fp.F64 -> src.(l)
          | Fp.F32 -> r32 src.(l)
          | Fp.F16 -> r16 src.(l))
      done
  in
  let store_farr slot gi (x : fex) : benv -> unit =
    if meter then fun benv ->
      let src = x.ev benv in
      let i = gi benv in
      let lanes = benv.fa.(slot) in
      let sfmt = benv.efmt.(x.fid) and fmts = benv.afmt.(slot) in
      for l = 0 to benv.k - 1 do
        if not (Fp.equal_format sfmt.(l) fmts.(l)) then
          Cost.Counter.charge_cast benv.counters.(l);
        lanes.(l).(i) <- rnd fmts.(l) src.(l)
      done
    else fun benv ->
      let src = x.ev benv in
      let i = gi benv in
      let lanes = benv.fa.(slot) in
      let fmts = benv.afmt.(slot) in
      for l = 0 to benv.k - 1 do
        lanes.(l).(i) <-
          (match fmts.(l) with
          | Fp.F64 -> src.(l)
          | Fp.F32 -> r32 src.(l)
          | Fp.F16 -> r16 src.(l))
      done
  in

  (* Predicated float-only branches. A data-dependent [if] whose
     condition is a float comparison of total expressions and whose
     branches only assign float scalars through total expressions
     (constants, float variables, negation, +,-,*,/ — pure, no
     consensus points, IEEE arithmetic never traps) keeps every
     lane's own outcome: the condition becomes a per-lane 0/1 mask
     and the branch stores fire only on lanes whose mask matches.
     Evaluating the not-taken side is invisible because its values
     are never stored, so there is no consensus point and no
     divergence — the argmin update in kmeans and the CNDF
     reflection in Black-Scholes stay at full lane occupancy.
     Metered artifacts keep the consensus path: predication would
     charge the not-taken side's operations. *)
  let rec predicable_fexpr e =
    match e with
    | Fconst _ -> true
    | Var v -> (
        match scope_find_opt sc v with Some (Bf _) -> true | _ -> false)
    | Unop (Neg, e) -> predicable_fexpr e
    | Binop ((Add | Sub | Mul | Div), a, b) ->
        predicable_fexpr a && predicable_fexpr b
    | _ -> false
  in
  let predicable_stmt = function
    | Assign (Lvar v, e) -> (
        match scope_find_opt sc v with
        | Some (Bf _) -> predicable_fexpr e
        | _ -> false)
    | _ -> false
  in

  let rec cstmt s : benv -> unit =
    match s with
    | Decl { name; dty = Dscalar Sint; init } -> (
        let slot = fresh_i () in
        scope_declare sc name (Bi slot);
        match init with
        | None -> fun benv -> benv.it.(slot) <- 0
        | Some e ->
            let g = ci e in
            fun benv -> benv.it.(slot) <- g benv)
    | Decl { name; dty = Dscalar (Sflt _ as sca); init } -> (
        let slot = fresh_f () in
        var_specs := (slot, sca, name) :: !var_specs;
        scope_declare sc name (Bf slot);
        match init with
        | None ->
            fun benv ->
              let dst = benv.fl.(slot) in
              Array.fill dst 0 benv.k 0.
        | Some e -> store_float slot (cf e))
    | Decl { name; dty = Darr (Sint, size); init = _ } ->
        let gn = ci size in
        let slot = fresh_ia () in
        scope_declare sc name (Bia slot);
        fun benv -> benv.ia.(slot) <- Array.make (gn benv) 0
    | Decl { name; dty = Darr ((Sflt _ as sca), size); init = _ } ->
        let gn = ci size in
        let slot = fresh_fa () in
        arr_specs := (slot, sca, name) :: !arr_specs;
        scope_declare sc name (Bfa slot);
        fun benv ->
          let n = gn benv in
          let lanes = benv.fa.(slot) in
          for l = 0 to benv.k - 1 do
            lanes.(l) <- Array.make n 0.
          done
    | Assign (Lvar v, e) -> (
        match scope_find sc v with
        | Bf slot -> store_float slot (cf e)
        | Bi slot ->
            let g = ci e in
            fun benv -> benv.it.(slot) <- g benv
        | Bfa _ | Bia _ -> fail "cannot assign to array %S as a whole" v)
    | Assign (Lidx (a, ie), e) -> (
        let gi = ci ie in
        match scope_find sc a with
        | Bfa slot -> store_farr slot gi (cf e)
        | Bia slot ->
            let g = ci e in
            fun benv -> benv.ia.(slot).(gi benv) <- g benv
        | Bf _ | Bi _ -> fail "scalar %S indexed" a)
    | If (Binop (((Eq | Ne | Lt | Le | Gt | Ge) as op), a, b), t, e)
      when (not meter) && predicable_fexpr a && predicable_fexpr b
           && List.for_all predicable_stmt t
           && List.for_all predicable_stmt e ->
        (* predicable operands are float-kinded by construction, so
           this is exactly the comparison shape that would otherwise
           be a consensus point *)
        let xa = cf a and xb = cf b in
        let si = fresh_iscratch () in
        let cmp : float -> float -> bool =
          match op with
          | Eq -> ( = )
          | Ne -> ( <> )
          | Lt -> ( < )
          | Le -> ( <= )
          | Gt -> ( > )
          | Ge -> ( >= )
          | _ -> assert false
        in
        let pred_store sense s =
          match s with
          | Assign (Lvar v, e) -> (
              match scope_find sc v with
              | Bf slot ->
                  let x = cf e in
                  fun benv ->
                    let src = x.ev benv in
                    let dst = benv.fl.(slot) in
                    let fmts = benv.vfmt.(slot) in
                    let m = benv.iscratch.(si) in
                    for l = 0 to benv.k - 1 do
                      if m.(l) = sense then
                        dst.(l) <-
                          (match fmts.(l) with
                          | Fp.F64 -> src.(l)
                          | Fp.F32 -> r32 src.(l)
                          | Fp.F16 -> r16 src.(l))
                    done
              | _ -> assert false)
          | _ -> assert false
        in
        let gt = List.map (pred_store 1) t
        and ge = List.map (pred_store 0) e in
        fun benv ->
          let va = xa.ev benv and vb = xb.ev benv in
          let m = benv.iscratch.(si) in
          for l = 0 to benv.k - 1 do
            m.(l) <- (if cmp va.(l) vb.(l) then 1 else 0)
          done;
          List.iter (fun g -> g benv) gt;
          List.iter (fun g -> g benv) ge
    | If (c, t, e) ->
        let gc = ci c in
        let gt = cblock t and ge = cblock e in
        fun benv -> if gc benv <> 0 then gt benv else ge benv
    | For { var; lo; hi; down; body } ->
        let glo = ci lo and ghi = ci hi in
        scope_push sc;
        let slot = fresh_i () in
        scope_declare sc var (Bi slot);
        let gbody = cblock body in
        scope_pop sc;
        if down then fun benv ->
          let lo = glo benv and hi = ghi benv in
          for i = hi - 1 downto lo do
            benv.it.(slot) <- i;
            gbody benv
          done
        else fun benv ->
          let lo = glo benv and hi = ghi benv in
          for i = lo to hi - 1 do
            benv.it.(slot) <- i;
            gbody benv
          done
    | While (c, body) ->
        let gc = ci c in
        let gbody = cblock body in
        fun benv ->
          while gc benv <> 0 do
            gbody benv
          done
    | Return None ->
        fun benv -> raise (Breturn_f (Array.make benv.k Float.nan))
    | Return (Some e) -> (
        match Typecheck.expr_kind ~builtins prog (lookup_ty sc) e with
        | exception Typecheck.Error m -> fail "%s" m
        | Typecheck.Escalar Builtins.Kint ->
            let g = ci e in
            fun benv -> raise (Breturn_i (g benv))
        | _ ->
            let x = cf e in
            fun benv -> raise (Breturn_f (Array.copy (x.ev benv))))
    | Call_stmt (name, args) -> (
        match Builtins.find builtins name with
        | None -> fail "user call %S survived inlining" name
        | Some (sg, _) -> (
            match sg.Builtins.ret with
            | Builtins.Kflt ->
                let x = cf (Call (name, args)) in
                fun benv -> ignore (x.ev benv)
            | Builtins.Kint ->
                let g = ci (Call (name, args)) in
                fun benv -> ignore (g benv)))
    | Push (Lvar v) -> (
        match scope_find sc v with
        | Bf slot ->
            fun benv ->
              let src = benv.fl.(slot) in
              for l = 0 to benv.k - 1 do
                Growable.Float.push benv.fstack.(l) src.(l)
              done
        | Bi slot ->
            fun benv ->
              Growable.push benv.istack benv.it.(slot);
              if Growable.length benv.istack > benv.ipeak then
                benv.ipeak <- Growable.length benv.istack
        | Bfa _ | Bia _ -> fail "cannot push whole array %S" v)
    | Push (Lidx (a, ie)) -> (
        let gi = ci ie in
        match scope_find sc a with
        | Bfa slot ->
            fun benv ->
              let i = gi benv in
              let lanes = benv.fa.(slot) in
              for l = 0 to benv.k - 1 do
                Growable.Float.push benv.fstack.(l) lanes.(l).(i)
              done
        | Bia slot ->
            fun benv ->
              Growable.push benv.istack benv.ia.(slot).(gi benv);
              if Growable.length benv.istack > benv.ipeak then
                benv.ipeak <- Growable.length benv.istack
        | Bf _ | Bi _ -> fail "scalar %S indexed" a)
    | Pop (Lvar v) -> (
        match scope_find sc v with
        | Bf slot ->
            fun benv ->
              let dst = benv.fl.(slot) in
              (* pop order mirrors push order lane-by-lane: each lane's
                 stack is private, so any consistent order works *)
              for l = 0 to benv.k - 1 do
                dst.(l) <- Growable.Float.pop benv.fstack.(l)
              done
        | Bi slot ->
            fun benv -> benv.it.(slot) <- Growable.pop benv.istack
        | Bfa _ | Bia _ -> fail "cannot pop whole array %S" v)
    | Pop (Lidx (a, ie)) -> (
        let gi = ci ie in
        match scope_find sc a with
        | Bfa slot ->
            fun benv ->
              let i = gi benv in
              let lanes = benv.fa.(slot) in
              for l = 0 to benv.k - 1 do
                lanes.(l).(i) <- Growable.Float.pop benv.fstack.(l)
              done
        | Bia slot ->
            fun benv ->
              benv.ia.(slot).(gi benv) <- Growable.pop benv.istack
        | Bf _ | Bi _ -> fail "scalar %S indexed" a)

  and cblock stmts : benv -> unit =
    scope_push sc;
    let compiled = Array.of_list (List.map cstmt stmts) in
    scope_pop sc;
    fun benv -> Array.iter (fun g -> g benv) compiled
  in

  let param_bindings =
    List.map
      (fun p ->
        let b =
          match p.pty with
          | Tscalar Sint -> Bi (fresh_i ())
          | Tscalar (Sflt _ as sca) ->
              let slot = fresh_f () in
              var_specs := (slot, sca, p.pname) :: !var_specs;
              Bf slot
          | Tarr (Sflt _ as sca) ->
              let slot = fresh_fa () in
              arr_specs := (slot, sca, p.pname) :: !arr_specs;
              Bfa slot
          | Tarr Sint -> Bia (fresh_ia ())
        in
        scope_declare sc p.pname b;
        (p, b))
      f.params
  in
  let out_scalars =
    List.filter_map
      (fun (p, b) ->
        match (p.pmode, b) with
        | Out, (Bf _ | Bi _) -> Some (p.pname, b)
        | _, _ -> None)
      param_bindings
  in
  let compiled = Array.of_list (List.map cstmt f.body) in
  let run_body benv = Array.iter (fun g -> g benv) compiled in
  {
    cfunc = f;
    prog;
    func_name = func;
    builtins_opt;
    mode;
    meter;
    optimize;
    run_body;
    nfl = !nfl;
    nit = !nit;
    nfa = !nfa;
    nia = !nia;
    nscratch = !nscratch;
    niscratch = !niscratch;
    consts = !consts;
    rules = Array.of_list (List.rev !rules_rev);
    var_specs = !var_specs;
    arr_specs = !arr_specs;
    out_scalars;
    param_bindings;
    fmt_cache = Atomic.make None;
  }

(* ------------------------------------------------------------------ *)
(* Running.                                                           *)

type result = { lanes : Interp.result array; divergences : int }

let copy_args args =
  List.map
    (function
      | Interp.Afarr a -> Interp.Afarr (Array.copy a)
      | Interp.Aiarr a -> Interp.Aiarr (Array.copy a)
      | (Interp.Aint _ | Interp.Aflt _) as x -> x)
    args

(* Per-lane storage formats of every float slot, then the format of
   every float expression node by folding the rule DAG (children were
   emitted before parents). [config_of] gives each lane's
   configuration; the input-sweep axis passes a constant. *)
let resolve_formats t ~k ~config_of =
  let vfmt = Array.init (max t.nfl 1) (fun _ -> Array.make k Fp.F64) in
  let afmt = Array.init (max t.nfa 1) (fun _ -> Array.make k Fp.F64) in
  let resolve specs table =
    List.iter
      (fun (slot, sca, name) ->
        let row = table.(slot) in
        for l = 0 to k - 1 do
          row.(l) <- Interp.effective_format (config_of l) sca name
        done)
      specs
  in
  resolve t.var_specs vfmt;
  resolve t.arr_specs afmt;
  let wider a b = if Fp.bits a >= Fp.bits b then a else b in
  let nrules = Array.length t.rules in
  let efmt = Array.init (max nrules 1) (fun _ -> Array.make k Fp.F64) in
  for r = 0 to nrules - 1 do
    let row = efmt.(r) in
    match t.rules.(r) with
    | Rfix fmt -> Array.fill row 0 k fmt
    | Rslot s -> Array.blit vfmt.(s) 0 row 0 k
    | Raslot s -> Array.blit afmt.(s) 0 row 0 k
    | Rwider (a, b) ->
        let ra = efmt.(a) and rb = efmt.(b) in
        for l = 0 to k - 1 do
          row.(l) <- wider ra.(l) rb.(l)
        done
    | Rwidest [] -> Array.fill row 0 k Fp.F64
    | Rwidest ids ->
        for l = 0 to k - 1 do
          row.(l) <-
            List.fold_left (fun acc i -> wider acc efmt.(i).(l)) Fp.F16 ids
        done
  done;
  (vfmt, afmt, efmt)

let make_benv t ~k ~counters (vfmt, afmt, efmt) =
  let benv =
    {
      k;
      fl = Array.init (max t.nfl 1) (fun _ -> Array.make k 0.);
      it = Array.make (max t.nit 1) 0;
      fa = Array.init (max t.nfa 1) (fun _ -> Array.make k [||]);
      ia = Array.make (max t.nia 1) [||];
      fstack = Array.init k (fun _ -> Growable.Float.create ());
      istack = Growable.create ~dummy:0 ();
      ipeak = 0;
      active = Array.make k true;
      dropped = 0;
      counters;
      vfmt;
      afmt;
      efmt;
      scratch = Array.init (max t.nscratch 1) (fun _ -> Array.make k 0.);
      iscratch = Array.init (max t.niscratch 1) (fun _ -> Array.make k 0);
    }
  in
  List.iter (fun (s, x) -> Array.fill benv.scratch.(s) 0 k x) t.consts;
  benv

(* Execute the compiled body over a loaded environment and assemble the
   per-lane results. [fallback_run l] re-runs diverged lane [l] scalar
   from its pristine arguments — the bit-identity contract's definition
   of correct (its batched state is garbage past the split point). *)
let execute t benv ~counters ~fallback_run =
  let ret =
    try
      t.run_body benv;
      `None
    with
    | Breturn_f xs -> `F xs
    | Breturn_i n -> `I n
  in
  let lane_result l =
    let ret =
      match ret with
      | `None -> None
      | `F xs ->
          let x = xs.(l) in
          if Float.is_nan x && t.cfunc.ret = None then None
          else Some (Builtins.F x)
      | `I n -> Some (Builtins.I n)
    in
    let outs =
      List.map
        (fun (name, b) ->
          match b with
          | Bf slot -> (name, Builtins.F benv.fl.(slot).(l))
          | Bi slot -> (name, Builtins.I benv.it.(slot))
          | Bfa _ | Bia _ -> assert false)
        t.out_scalars
    in
    {
      Interp.ret;
      outs;
      stack_peak_bytes =
        (Growable.Float.peak_length benv.fstack.(l) * 8) + (benv.ipeak * 8);
    }
  in
  let results =
    Array.init benv.k (fun l ->
        if benv.active.(l) then lane_result l
        else begin
          Cost.Counter.reset counters.(l);
          fallback_run l
        end)
  in
  if benv.dropped > 0 then Metrics.add divergence_c benv.dropped;
  if Trace.enabled () then Trace.add_attr "divergences" (Trace.Int benv.dropped);
  { lanes = results; divergences = benv.dropped }

let default_fallback t =
  fun config ->
    Compile.compile ?builtins:t.builtins_opt ~config ~mode:t.mode
      ~meter:t.meter ~optimize:t.optimize ~prog:t.prog ~func:t.func_name ()

let run ?counters ?fallback t ~configs args =
  let k = Array.length configs in
  if k = 0 then invalid_arg "Batch.run: empty configuration array";
  if List.length args <> List.length t.param_bindings then
    fail "function %S expects %d arguments, got %d" t.cfunc.fname
      (List.length t.param_bindings)
      (List.length args);
  let counters =
    match counters with
    | Some cs ->
        if Array.length cs <> k then
          invalid_arg "Batch.run: counters/configs length mismatch";
        cs
    | None -> Array.init k (fun _ -> Cost.Counter.create Cost.default)
  in
  Trace.with_span "batch.run" @@ fun () ->
  if Trace.enabled () then Trace.add_attr "lanes" (Trace.Int k);
  Metrics.set_gauge lanes_g (float_of_int k);
  Metrics.incr runs_c;
  let ((vfmt, afmt, _) as fmts) =
    resolve_formats t ~k ~config_of:(fun l -> configs.(l))
  in
  let benv = make_benv t ~k ~counters fmts in
  (* Load arguments per lane with storage-format rounding. Unlike the
     scalar runner, caller arrays are never shared: lanes need private
     copies, and diverged lanes re-run from the pristine originals. *)
  List.iter2
    (fun (p, b) arg ->
      match (b, arg) with
      | Bf slot, Interp.Aflt x ->
          let dst = benv.fl.(slot) and fmts = vfmt.(slot) in
          for l = 0 to k - 1 do
            dst.(l) <- rnd fmts.(l) x
          done
      | Bi slot, Interp.Aint n -> benv.it.(slot) <- n
      | Bfa slot, Interp.Afarr a ->
          let lanes = benv.fa.(slot) and fmts = afmt.(slot) in
          for l = 0 to k - 1 do
            lanes.(l) <-
              (if Fp.equal_format fmts.(l) Fp.F64 then Array.copy a
               else Array.map (rnd fmts.(l)) a)
          done
      | Bia slot, Interp.Aiarr a -> benv.ia.(slot) <- Array.copy a
      | _, _ -> fail "argument kind mismatch for parameter %S" p.pname)
    t.param_bindings args;
  let fallback = match fallback with Some f -> f | None -> default_fallback t in
  execute t benv ~counters ~fallback_run:(fun l ->
      Compile.run ~counter:counters.(l) (fallback configs.(l)) (copy_args args))

(* ------------------------------------------------------------------ *)
(* Input-sweep axis: K sampled argument vectors under ONE
   configuration. The compiled artifact is both configuration- and
   input-generic, so the very same closures serve this axis; only
   format resolution (uniform rows) and argument loading (per-lane
   vectors, integer arguments through consensus) differ. *)

let input_sweeps_c = Metrics.counter "batch.input_sweeps"

let run_inputs ?counters ?fallback t ~config (inputs : Interp.arg list array) =
  let k = Array.length inputs in
  if k = 0 then invalid_arg "Batch.run_inputs: empty inputs array";
  let nparams = List.length t.param_bindings in
  Array.iter
    (fun args ->
      if List.length args <> nparams then
        fail "function %S expects %d arguments, got %d" t.cfunc.fname nparams
          (List.length args))
    inputs;
  let counters =
    match counters with
    | Some cs ->
        if Array.length cs <> k then
          invalid_arg "Batch.run_inputs: counters/inputs length mismatch";
        cs
    | None -> Array.init k (fun _ -> Cost.Counter.create Cost.default)
  in
  Trace.with_span "batch.input_sweep" @@ fun () ->
  if Trace.enabled () then Trace.add_attr "lanes" (Trace.Int k);
  Metrics.set_gauge lanes_g (float_of_int k);
  Metrics.incr input_sweeps_c;
  (* One sweep's chunks (and one caller's repeated sweeps) share the
     same physical config, and the resolved tables are read-only once
     built — so cache the last resolution instead of re-walking the
     rule DAG and the config's override map for every chunk. The
     physical-equality key makes a stale hit impossible and keeps the
     lookup free; a miss just recomputes. *)
  let ((vfmt, afmt, _) as fmts) =
    match Atomic.get t.fmt_cache with
    | Some (c, kk, tabs) when kk = k && c == config -> tabs
    | _ ->
        let tabs = resolve_formats t ~k ~config_of:(fun _ -> config) in
        Atomic.set t.fmt_cache (Some (config, k, tabs));
        tabs
  in
  let benv = make_benv t ~k ~counters fmts in
  let argv = Array.map Array.of_list inputs in
  (* Integer arguments feed the shared control flow, so they go through
     [consensus] exactly like a run-time float->int crossing: dissenting
     lanes deactivate and re-run scalar. Sampling only perturbs floats,
     so in practice every lane agrees and nothing is dropped. *)
  let ivals = Array.make k 0 in
  List.iteri
    (fun pi (p, b) ->
      let kind_fail () = fail "argument kind mismatch for parameter %S" p.pname in
      match b with
      | Bf slot ->
          let dst = benv.fl.(slot) and fmts = vfmt.(slot) in
          for l = 0 to k - 1 do
            match argv.(l).(pi) with
            | Interp.Aflt x -> dst.(l) <- rnd fmts.(l) x
            | _ -> kind_fail ()
          done
      | Bi slot ->
          for l = 0 to k - 1 do
            match argv.(l).(pi) with
            | Interp.Aint n -> ivals.(l) <- n
            | _ -> kind_fail ()
          done;
          benv.it.(slot) <- consensus benv ivals
      | Bfa slot ->
          (* Lanes carry private float arrays, but the shared integer
             control flow assumes one logical extent: lanes whose array
             length dissents deactivate, and deactivated lanes get a
             zero-filled placeholder of the consensus length so the
             batched loops stay in bounds (their values are garbage by
             construction — the scalar re-run is authoritative). *)
          for l = 0 to k - 1 do
            match argv.(l).(pi) with
            | Interp.Afarr a -> ivals.(l) <- Array.length a
            | _ -> kind_fail ()
          done;
          let len = consensus benv ivals in
          let lanes = benv.fa.(slot) and fmts = afmt.(slot) in
          for l = 0 to k - 1 do
            match argv.(l).(pi) with
            | Interp.Afarr a ->
                lanes.(l) <-
                  (if not benv.active.(l) then Array.make len 0.
                   else if Fp.equal_format fmts.(l) Fp.F64 then Array.copy a
                   else Array.map (rnd fmts.(l)) a)
            | _ -> kind_fail ()
          done
      | Bia slot ->
          (* Integer arrays are uniform state: group the lanes' arrays
             by structural equality and take the consensus group. *)
          let distinct = ref [] in
          for l = 0 to k - 1 do
            match argv.(l).(pi) with
            | Interp.Aiarr a ->
                let rec find i = function
                  | [] ->
                      distinct := !distinct @ [ a ];
                      i
                  | b :: _ when b = a -> i
                  | _ :: rest -> find (i + 1) rest
                in
                ivals.(l) <- find 0 !distinct
            | _ -> kind_fail ()
          done;
          let id = consensus benv ivals in
          benv.ia.(slot) <- Array.copy (List.nth !distinct id))
    t.param_bindings;
  let fallback = match fallback with Some f -> f | None -> default_fallback t in
  let scalar = lazy (fallback config) in
  execute t benv ~counters ~fallback_run:(fun l ->
      Compile.run ~counter:counters.(l) (Lazy.force scalar)
        (copy_args inputs.(l)))

let run_inputs_floats ?counters ?fallback t ~config inputs =
  let r = run_inputs ?counters ?fallback t ~config inputs in
  Array.map
    (fun lane ->
      match lane.Interp.ret with
      | Some (Builtins.F x) -> x
      | _ -> fail "function %S did not return a float" t.cfunc.fname)
    r.lanes

let run_inputs_many ?(jobs = 1) ?(lanes = default_lanes) ?fallback t ~config
    (inputs : Interp.arg list array) =
  let lanes = max 1 lanes in
  let n = Array.length inputs in
  let nchunks = (n + lanes - 1) / lanes in
  List.init nchunks (fun c ->
      Array.sub inputs (c * lanes) (min lanes (n - (c * lanes))))
  |> Pool.parallel_map ~jobs (fun chunk ->
         run_inputs_floats ?fallback t ~config chunk)
  |> List.map Array.to_list
  |> List.concat
  |> Array.of_list

let run_floats ?counters ?fallback t ~configs args =
  let r = run ?counters ?fallback t ~configs args in
  Array.map
    (fun lane ->
      match lane.Interp.ret with
      | Some (Builtins.F x) -> x
      | _ -> fail "function %S did not return a float" t.cfunc.fname)
    r.lanes

let run_many ?(jobs = 1) ?(lanes = default_lanes) ?fallback t ~configs args =
  let lanes = max 1 lanes in
  let rec chunk = function
    | [] -> []
    | cfgs ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | c :: rest -> take (n - 1) (c :: acc) rest
        in
        let head, rest = take lanes [] cfgs in
        Array.of_list head :: chunk rest
  in
  chunk configs
  |> Pool.parallel_map ~jobs (fun cfgs ->
         run_floats ?fallback t ~configs:cfgs args)
  |> List.concat_map Array.to_list
