(** Blocking client for the [cheffp serve] protocol — used by the
    serve-smoke test, the server bench block, and scripts.

    Thread-safety: {!send} is serialized internally, so many threads
    may share one connection for writing; {!recv} reads one response
    line and must be called from a single reader (responses may arrive
    out of request order — match on the echoed [id]). *)

type t

val connect_unix : string -> t
val connect_tcp : int -> t

val retry_connect : ?attempts:int -> ?delay:float -> (unit -> t) -> t
(** Retry a connect thunk while the daemon is still starting
    ([ECONNREFUSED]/[ENOENT]); default 100 attempts, 50 ms apart. *)

val send : t -> Json.t -> unit
(** Write one request line. *)

val recv : t -> Json.t
(** Read one response line; raises [End_of_file] when the server closes
    the connection. *)

val rpc : t -> Json.t -> Json.t
(** [send] then [recv] — only for one-outstanding-request use. *)

val request : id:int -> cmd:string -> (string * Json.t) list -> Json.t
(** Build a request object: id, cmd, plus any non-default fields. *)

val close : t -> unit
