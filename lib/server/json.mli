(** Minimal JSON for the [cheffp serve] wire protocol (DESIGN.md §13).

    Dependency-free by design (the repo adds no third-party packages);
    the emitter and parser round-trip every finite float exactly
    ([%.17g]), which is what the server's bit-identity guarantee rides
    on. One extension over strict JSON: the tokens [nan], [inf] and
    [-inf] are printed and accepted for non-finite numbers. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line (embedded newlines in strings are escaped), so
    a value is always a valid newline-delimited frame. *)

exception Parse_error of string

val of_string : string -> t
(** Parse one complete value; raises {!Parse_error} on malformed input
    or trailing garbage. *)

(** {1 Decoding helpers} — absent keys and [Null] read alike. *)

val member : string -> t -> t
(** Field of an object, [Null] when absent or not an object. *)

val to_float_opt : t -> float option
val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list : t -> t list
val string_list : t -> string list
(** The [Str] elements of a [List] (non-strings are dropped). *)
