(* Minimal JSON for the wire protocol: no external dependency, exact
   float round-tripping. Numbers print with %.17g (integral values as
   integers), which reparses to the identical bit pattern — the server's
   bit-identity guarantee rides on this. Extension: the non-finite
   tokens [nan], [inf] and [-inf] are printed and accepted, so shadow
   measurements of diverged runs survive the wire. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let num_repr f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> Buffer.add_string b (num_repr f)
  | Str s -> escape b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          emit b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          emit b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

exception Parse_error of string

(* Recursive-descent parser over the input bytes. *)
type state = { s : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' -> (
        if st.pos >= String.length st.s then fail st "unterminated escape";
        let e = st.s.[st.pos] in
        st.pos <- st.pos + 1;
        match e with
        | '"' | '\\' | '/' ->
            Buffer.add_char b e;
            go ()
        | 'n' ->
            Buffer.add_char b '\n';
            go ()
        | 'r' ->
            Buffer.add_char b '\r';
            go ()
        | 't' ->
            Buffer.add_char b '\t';
            go ()
        | 'b' ->
            Buffer.add_char b '\b';
            go ()
        | 'f' ->
            Buffer.add_char b '\012';
            go ()
        | 'u' ->
            if st.pos + 4 > String.length st.s then fail st "bad \\u escape";
            let hex = String.sub st.s st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            (* Only BMP code points are produced by our own emitter
               (control characters); encode as UTF-8. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail st "bad escape")
    | c ->
        Buffer.add_char b c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  match float_of_string_opt tok with
  | Some f -> Num f
  | None -> fail st ("bad number " ^ tok)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected , or }"
        in
        fields []
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List (List.rev (v :: acc))
          | _ -> fail st "expected , or ]"
        in
        items []
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' ->
      if
        st.pos + 3 <= String.length st.s
        && String.sub st.s st.pos 3 = "nan"
      then begin
        st.pos <- st.pos + 3;
        Num Float.nan
      end
      else literal st "null" Null
  | Some 'i' -> literal st "inf" (Num Float.infinity)
  | Some '-'
    when st.pos + 4 <= String.length st.s
         && String.sub st.s st.pos 4 = "-inf" ->
      st.pos <- st.pos + 4;
      Num Float.neg_infinity
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* Accessors for decoding requests; [Null] and absent keys read alike. *)

let member k = function
  | Obj kvs -> ( match List.assoc_opt k kvs with Some v -> v | None -> Null)
  | _ -> Null

let to_float_opt = function Num f -> Some f | _ -> None
let to_int_opt = function Num f -> Some (int_of_float f) | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let to_list = function List xs -> xs | _ -> []

let string_list v = List.filter_map to_string_opt (to_list v)
