(** Per-request lifecycle accounting for the analysis server
    (DESIGN.md §13): the [server.requests] / [server.errors] /
    [server.rejected] counters, the [server.active] and
    [server.queue_depth] gauges, and the [server.queue_wait_seconds] /
    [server.elapsed_seconds] histograms of {!Cheffp_obs.Metrics}.
    All updates are domain-safe; the server calls these from pool
    workers and connection threads concurrently. *)

val started : unit -> unit
(** A request began executing on a worker. *)

val finished : ok:bool -> queue_wait:float -> elapsed:float -> unit
(** The request completed ([ok = false] counts an error); times are in
    seconds and feed the histograms. *)

val rejected : unit -> unit
(** A request was refused at admission (queue full). *)

val set_queue_depth : int -> unit
(** Mirror of the executor's queue depth, updated at submit and
    completion. *)

val requests : unit -> int
val errors : unit -> int
val in_flight : unit -> int
