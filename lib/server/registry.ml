module Metrics = Cheffp_obs.Metrics

(* Request lifecycle accounting (DESIGN.md §13). Counters are always
   on; the timing histograms are recorded from the timestamps the
   server takes anyway (each response reports queue-wait and service
   time), so nothing here adds clock reads. *)

let requests_c = Metrics.counter "server.requests"
let errors_c = Metrics.counter "server.errors"
let rejected_c = Metrics.counter "server.rejected"
let active_g = Metrics.gauge "server.active"
let depth_g = Metrics.gauge "server.queue_depth"

(* Sub-millisecond buckets: the server's measured request latencies sit
   between 100 µs and 10 ms, where the decade steps of
   [Metrics.default_buckets] would collapse every windowed quantile
   onto a bucket edge (DESIGN.md §14). *)
let queue_wait_h =
  Metrics.histogram ~buckets:Metrics.latency_buckets "server.queue_wait_seconds"

let elapsed_h =
  Metrics.histogram ~buckets:Metrics.latency_buckets "server.elapsed_seconds"

let active = Atomic.make 0

let started () =
  Metrics.incr requests_c;
  Metrics.set_gauge active_g
    (float_of_int (1 + Atomic.fetch_and_add active 1))

let finished ~ok ~queue_wait ~elapsed =
  Metrics.set_gauge active_g
    (float_of_int (Atomic.fetch_and_add active (-1) - 1));
  if not ok then Metrics.incr errors_c;
  Metrics.observe queue_wait_h queue_wait;
  Metrics.observe elapsed_h elapsed

let rejected () = Metrics.incr rejected_c

let set_queue_depth n = Metrics.set_gauge depth_g (float_of_int n)

let requests () = Metrics.counter_value requests_c
let errors () = Metrics.counter_value errors_c
let in_flight () = Atomic.get active
