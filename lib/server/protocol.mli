(** Wire protocol of [cheffp serve]: newline-delimited JSON objects,
    one request per line in, one response per line out (DESIGN.md §13).

    Request fields mirror the CLI one-to-one — same names, defaults and
    string syntax ([args] positional with arrays as [v1:v2:...],
    [demote] as [var:fmt]) — so a request is a CLI invocation as an
    object and the handlers run the same code paths; results are
    bit-identical to one-shot runs. Responses echo the request [id]
    (requests on one connection may complete out of order), carry the
    structured [result], the CLI's rendered [report] text, queue-wait
    and service times, and the request's compile-cache hit/miss
    summary; traced requests additionally carry their span tree. *)

type cmd =
  | Ping
  | Analyze
  | Tune
  | Search
  | Sample
      (** Monte-Carlo error quantiles of a configuration over sampled
          inputs (batched input sweep; [samples]/[dist]/[seed] fields) *)
  | Validate
  | Range
      (** rigorous interval/Taylor-form error bound over an input box
          ([box]/[range_backend] fields; DESIGN.md §17) *)
  | Metrics  (** cumulative registry exposition ([format]: dump/prometheus) *)
  | Stats  (** windowed telemetry summary ({!Cheffp_obs.Window}) *)
  | Traces  (** tail-retained slow/error trees ({!Cheffp_obs.Tail}) *)
  | Shutdown

val cmd_name : cmd -> string
val cmd_of_string : string -> cmd option

type request = {
  id : int;  (** client-chosen, echoed in the response *)
  cmd : cmd;
  program : string;  (** MiniFP source text *)
  func : string;
  args : string list;
  threshold : float option;  (** required by tune/search *)
  target : string;  (** demotion target format, default "f32" *)
  model : string;  (** analyze error model, default "adapt" *)
  demote : string list;  (** validate: var:fmt overrides *)
  mode : string;  (** validate rounding mode, default "extended" *)
  margin : float;  (** validate bound safety factor, default 1.0 *)
  strategy : string;  (** search strategy, default "hybrid" *)
  prune_margin : float;  (** search hybrid margin, default 64. *)
  profiled : bool;  (** tune from a cached error-atom profile *)
  jobs : int;  (** inner evaluation parallelism, default 1 *)
  batch : int;  (** lane width, default {!Cheffp_ir.Batch.default_lanes} *)
  no_batch : bool;
  tenant : string option;  (** cache attribution label *)
  priority : int;  (** admission priority, higher first, default 0 *)
  deadline_ms : float option;  (** relative deadline, orders equal priorities *)
  trace : bool;  (** stream this request's span tree back *)
  format : string;
      (** metrics exposition format: "dump" (default, the flat
          {!Cheffp_obs.Export.metrics_dump} lines) or "prometheus" *)
  limit : int;
      (** traces: return at most this many slowest trees (0 = all
          retained) *)
  samples : int;
      (** Monte-Carlo input count — required ([>= 1]) by [sample],
          optional quantile-targeting switch for [search] (0 = off,
          the default) *)
  dist : string option;
      (** per-variable distribution spec, the CLI's [--dist] syntax *)
  target_quantile : float;
      (** search with [samples]: the error quantile the threshold
          applies to (default 0.99) *)
  seed : int;  (** deterministic sampling seed (default 42) *)
  box : string option;
      (** range: box override, the CLI's [--box] syntax
          ([var=lo:hi,...]) *)
  range_backend : string;
      (** range: global-bound backend, "bb" (branch-and-bound, the
          default) or "whole" (single interval pass) *)
}

val parse_request : string -> (request, string) result
(** Decode one request line. Unknown fields are ignored; missing
    optional fields take the CLI defaults listed above. *)

type cache_summary = { c_hits : int; c_misses : int }

val ok_response :
  id:int ->
  cmd:cmd ->
  queue_wait_ms:float ->
  elapsed_ms:float ->
  cache:cache_summary ->
  spans:Cheffp_obs.Trace.span list ->
  report:string ->
  Json.t ->
  Json.t
(** Success envelope. Spans are embedded pre-rendered (each a
    {!Cheffp_obs.Export.span_to_json} line carried as a JSON string):
    their int64 nanosecond timestamps would not survive a float-backed
    JSON number, so clients write the lines verbatim. *)

val error_response : id:int -> string -> Json.t
