(* The [cheffp serve] daemon (DESIGN.md §13): newline-delimited JSON
   over a Unix or loopback TCP socket, one systhread per connection for
   I/O, every request executed as a task on one shared
   {!Cheffp_util.Pool.Shared} domain pool. Handlers run the same code
   paths as the CLI subcommands on a single long-lived builtins/deriv
   registry pair, so results are bit-identical to one-shot runs and
   compilations cached by one request are hits for every later one. *)

open Cheffp_ir
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp
module Pool = Cheffp_util.Pool
module Trace = Cheffp_obs.Trace
module Metrics = Cheffp_obs.Metrics
module Export = Cheffp_obs.Export
module Window = Cheffp_obs.Window
module Tail = Cheffp_obs.Tail
module Estimate = Cheffp_core.Estimate
module Model = Cheffp_core.Model
module Report = Cheffp_core.Report
module Tuner = Cheffp_core.Tuner
module Search = Cheffp_core.Search
module Profile = Cheffp_core.Profile
module Sampling = Cheffp_core.Sampling
module Quantile = Cheffp_core.Quantile
module Shadow = Cheffp_shadow.Shadow
module Oracle = Cheffp_shadow.Oracle
module Range = Cheffp_range.Range
module Rbox = Cheffp_range.Box
module Rinterval = Cheffp_range.Interval

type listen = Unix_socket of string | Tcp of int

type t = {
  pool : Pool.Shared.t;
  fd : Unix.file_descr;
  listen : listen;
  port : int option;  (* resolved, for Tcp 0 *)
  builtins : Builtins.t;
  deriv : Cheffp_ad.Deriv.t;
  max_pending : int;
  telemetry : bool;
  stop_requested : bool Atomic.t;
  conns_m : Mutex.t;
  conns_cv : Condition.t;
  mutable conns : int;
}

(* ------------------------------------------------------------------ *)
(* CLI-equivalent helpers. These mirror bin/cheffp.ml exactly — same
   parsing, same defaults — which is what makes a server response
   bit-identical to the corresponding one-shot invocation. *)

let target_of s =
  match Fp.format_of_string s with
  | Some f -> f
  | None -> failwith ("unknown format " ^ s)

let model_of_string target = function
  | "taylor" -> Model.taylor ~target ()
  | "adapt" -> Model.adapt ~target ()
  | "zero" -> Model.zero
  | other -> failwith ("unknown model " ^ other ^ " (taylor|adapt|zero)")

let parse_args func (raw : string list) =
  let f p s =
    match p.Ast.pty with
    | Ast.Tscalar Ast.Sint -> Interp.Aint (int_of_string s)
    | Ast.Tscalar (Ast.Sflt _) -> Interp.Aflt (float_of_string s)
    | Ast.Tarr (Ast.Sflt _) ->
        Interp.Afarr
          (Array.of_list (List.map float_of_string (String.split_on_char ':' s)))
    | Ast.Tarr Ast.Sint ->
        Interp.Aiarr
          (Array.of_list (List.map int_of_string (String.split_on_char ':' s)))
  in
  let params = List.filter (fun p -> p.Ast.pmode = Ast.In) func.Ast.params in
  if List.length params <> List.length raw then
    failwith
      (Printf.sprintf "function %S expects %d arguments, got %d" func.Ast.fname
         (List.length params) (List.length raw));
  List.map2 f params raw

let parse_config demote =
  List.fold_left
    (fun cfg spec ->
      match String.split_on_char ':' spec with
      | [ var; fmt ] -> (
          match Fp.format_of_string fmt with
          | Some f -> Config.demote cfg var f
          | None -> failwith ("unknown format " ^ fmt))
      | _ -> failwith ("bad demotion spec " ^ spec ^ " (expected var:fmt)"))
    Config.double demote

let copy_args args =
  List.map
    (function
      | Interp.Afarr a -> Interp.Afarr (Array.copy a)
      | Interp.Aiarr a -> Interp.Aiarr (Array.copy a)
      | (Interp.Aint _ | Interp.Aflt _) as x -> x)
    args

let batch_of (req : Protocol.request) =
  if req.no_batch || req.batch < 2 then None else Some req.batch

let strategy_of s =
  match Search.strategy_of_string s with
  | Some st -> st
  | None -> failwith ("unknown strategy " ^ s ^ " (measured|modelled|hybrid)")

let require_threshold (req : Protocol.request) =
  match req.threshold with
  | Some t -> t
  | None ->
      failwith (Protocol.cmd_name req.cmd ^ ": missing \"threshold\" field")

(* Args are parsed fresh per request — [Interp.Afarr] buffers are
   mutated in place by runs, so they must never be shared. *)
let load t src =
  if String.trim src = "" then failwith "missing \"program\" field";
  let prog = Trace.with_span "parse" (fun () -> Parser.parse_program src) in
  Trace.with_span "typecheck" (fun () ->
      Typecheck.check_program ~builtins:t.builtins prog);
  prog

(* ------------------------------------------------------------------ *)
(* Handlers: each returns (structured result, rendered report). *)

let pairs l =
  Json.List
    (List.map
       (fun (n, e) -> Json.Obj [ ("var", Json.Str n); ("error", Json.Num e) ])
       l)

let strings l = Json.List (List.map (fun s -> Json.Str s) l)

let handle_analyze t (req : Protocol.request) =
  let prog = load t req.program in
  let f = Ast.func_exn prog req.func in
  let target = target_of req.target in
  let model = model_of_string target req.model in
  let est =
    Estimate.estimate_error ~model ~deriv:t.deriv ~builtins:t.builtins
      ~options:{ Estimate.default_options with track_ranges = true }
      ~prog ~func:req.func ()
  in
  let args = parse_args f req.args in
  let r = Estimate.run est args in
  ( Json.Obj
      [
        ("model", Json.Str model.Model.model_name);
        ("total_error", Json.Num r.Estimate.total_error);
        ("per_variable", pairs r.Estimate.per_variable);
        ("gradients", pairs r.Estimate.gradients);
      ],
    Printf.sprintf "model: %s\n" model.Model.model_name
    ^ Report.estimate r )

let handle_tune t (req : Protocol.request) =
  let threshold = require_threshold req in
  let prog = load t req.program in
  let f = Ast.func_exn prog req.func in
  let args = parse_args f req.args in
  let target = target_of req.target in
  let profile =
    if req.profiled then
      Some (Profile.build_cached ~builtins:t.builtins ~prog ~func:req.func ~args ())
    else None
  in
  let o =
    Tuner.tune ?profile ~target ~builtins:t.builtins ~jobs:req.jobs
      ?batch:(batch_of req) ~prog ~func:req.func ~args ~threshold ()
  in
  ( Json.Obj
      [
        ("demoted", strings o.Tuner.demoted);
        ("vetoed", strings o.Tuner.vetoed);
        ("estimated_error", Json.Num o.Tuner.estimated_error);
        ("actual_error", Json.Num o.Tuner.evaluation.Tuner.actual_error);
        ("modelled_speedup", Json.Num o.Tuner.evaluation.Tuner.modelled_speedup);
        ("casts", Json.Num (float_of_int o.Tuner.evaluation.Tuner.casts));
        ("config", Json.Str (Config.to_string o.Tuner.evaluation.Tuner.config));
      ],
    Report.tuning o )

(* The request's sampling plan: explicit [dist] entries win, the rest
   of the float parameters take the default box around the base args
   (server programs are MiniFP source, so there is no [:pre] range to
   fall back on). *)
let sampling_plan (req : Protocol.request) f args =
  let dists =
    match req.dist with
    | Some s -> Sampling.dists_of_string s
    | None -> []
  in
  Sampling.plan ~dists ~func:f ~args ()

(* Per-request sample attribution: the response carries its own sample
   count, and tenants accumulate a [server.tenant.<t>.samples] counter
   next to their compile-cache hit rates. *)
let attribute_samples (req : Protocol.request) n =
  if Trace.enabled () then Trace.add_attr "samples" (Trace.Int n);
  Option.iter
    (fun tenant ->
      Metrics.add
        (Metrics.counter
           (Printf.sprintf "server.tenant.%s.samples" tenant))
        n)
    req.tenant

let handle_sample t (req : Protocol.request) =
  if req.samples < 1 then failwith "sample: \"samples\" must be >= 1";
  let prog = load t req.program in
  let f = Ast.func_exn prog req.func in
  let args = parse_args f req.args in
  let config = parse_config req.demote in
  let plan = sampling_plan req f args in
  let inputs =
    Sampling.draw_many plan ~seed:(Int64.of_int req.seed) req.samples
  in
  attribute_samples req req.samples;
  let lanes = batch_of req in
  let summary, _ =
    Sampling.measured_summary ~jobs:req.jobs ?lanes ~builtins:t.builtins
      ~prog ~func:req.func ~config inputs
  in
  let described = Sampling.describe plan in
  ( Json.Obj
      [
        ("func", Json.Str req.func);
        ("config", Json.Str (Config.to_string config));
        ("samples", Json.Num (float_of_int summary.Quantile.count));
        ("seed", Json.Num (float_of_int req.seed));
        ( "plan",
          Json.List
            (List.map
               (fun (v, d) ->
                 Json.Obj [ ("var", Json.Str v); ("dist", Json.Str d) ])
               described) );
        ("p50", Json.Num summary.Quantile.p50);
        ("p95", Json.Num summary.Quantile.p95);
        ("p99", Json.Num summary.Quantile.p99);
        ("max", Json.Num summary.Quantile.max);
        ("mean", Json.Num summary.Quantile.mean);
      ],
    Report.sampled ~plan:described summary )

let handle_search t (req : Protocol.request) =
  let threshold = require_threshold req in
  let prog = load t req.program in
  let f = Ast.func_exn prog req.func in
  let args = parse_args f req.args in
  let target = target_of req.target in
  let measure config =
    Shadow.measured_error
      (Shadow.run ~builtins:t.builtins ~config ~mode:Config.Source ~prog
         ~func:req.func (copy_args args))
  in
  let sampling =
    if req.samples > 0 then begin
      let plan = sampling_plan req f args in
      attribute_samples req req.samples;
      Some
        {
          Search.inputs =
            Sampling.draw_many plan ~seed:(Int64.of_int req.seed) req.samples;
          quantile = req.target_quantile;
        }
    end
    else None
  in
  let o =
    Search.tune ~target ~builtins:t.builtins ~jobs:req.jobs
      ~strategy:(strategy_of req.strategy) ~prune_margin:req.prune_margin
      ?batch:(batch_of req) ?sampling ~measure ~prog ~func:req.func ~args
      ~threshold ()
  in
  ( Json.Obj
      [
        ("demoted", strings o.Search.demoted);
        ("executions", Json.Num (float_of_int o.Search.executions));
        ("batched_runs", Json.Num (float_of_int o.Search.batched_runs));
        ("runs_avoided", Json.Num (float_of_int o.Search.runs_avoided));
        ("samples", Json.Num (float_of_int o.Search.samples));
        ("strategy", Json.Str (Search.strategy_name o.Search.strategy));
        ("modelled_error", Json.Num o.Search.modelled_error);
        ( "measured_error",
          match o.Search.measured_error with
          | Some e -> Json.Num e
          | None -> Json.Null );
        ("actual_error", Json.Num o.Search.evaluation.Tuner.actual_error);
        ("modelled_speedup", Json.Num o.Search.evaluation.Tuner.modelled_speedup);
        ("config", Json.Str (Config.to_string o.Search.evaluation.Tuner.config));
      ],
    Report.search o )

let handle_validate t (req : Protocol.request) =
  let prog = load t req.program in
  let f = Ast.func_exn prog req.func in
  let args = parse_args f req.args in
  let config = parse_config req.demote in
  let mode =
    match req.mode with
    | "extended" -> Config.Extended
    | "source" -> Config.Source
    | other -> failwith ("unknown mode " ^ other ^ " (extended|source)")
  in
  let v =
    Oracle.check_estimate ~builtins:t.builtins ~mode ~margin:req.margin
      ~fuel:(-1) ~prog ~func:req.func ~config args
  in
  ( Json.Obj
      [
        ("sound", Json.Bool v.Oracle.sound);
        ("measured_error", Json.Num v.Oracle.measured_error);
        ("modelled_error", Json.Num v.Oracle.modelled_error);
        ("bound", Json.Num v.Oracle.bound);
        ("demotion_error", Json.Num v.Oracle.demotion_error);
        ("inherent_error", Json.Num v.Oracle.inherent_error);
        ( "tightness",
          match v.Oracle.tightness with
          | Some x -> Json.Num x
          | None -> Json.Null );
      ],
    Oracle.render v )

(* Rigorous range bounds (DESIGN.md §17). Server programs are MiniFP
   source, so the analysis box is the default box around the base args
   with the request's [box] override on top — exactly the CLI's
   [analyze --range --box SPEC] path. [range.bound] counts certified
   analyses, [range.split] the branch-and-bound boxes they cost. *)

let range_bound_c = Metrics.counter "range.bound"
let range_split_c = Metrics.counter "range.split"

let handle_range t (req : Protocol.request) =
  let prog = load t req.program in
  let f = Ast.func_exn prog req.func in
  let args = parse_args f req.args in
  let target = target_of req.target in
  let box = Rbox.of_args ~func:f ~args () in
  let box =
    match req.box with
    | Some spec -> Rbox.apply_override box (Rbox.override_of_string spec)
    | None -> box
  in
  let a =
    Trace.with_span "range.analyze" (fun () ->
        Range.analyze ~backend:req.range_backend ~builtins:t.builtins ~prog
          ~func:req.func ~box ())
  in
  Metrics.incr range_bound_c;
  Metrics.add range_split_c a.Range.splits;
  if Trace.enabled () then begin
    Trace.add_attr "range.splits" (Trace.Int a.Range.splits);
    Trace.add_attr "range.evals" (Trace.Int a.Range.evals);
    Trace.add_attr "range.verdict"
      (Trace.Str (Range.verdict_to_string a.Range.verdict))
  end;
  let vars = Range.charged_vars a in
  ( Json.Obj
      [
        ("func", Json.Str req.func);
        ("backend", Json.Str a.Range.backend);
        ("verdict", Json.Str (Range.verdict_to_string a.Range.verdict));
        ( "bound",
          if Float.is_finite a.Range.worst_bound then
            Json.Num a.Range.worst_bound
          else Json.Null );
        ( "bound_at_target",
          match Range.score a ~target vars with
          | Some b -> Json.Num b
          | None -> Json.Null );
        ("target", Json.Str (Fp.format_to_string target));
        ("charged_vars", strings vars);
        ( "value",
          match a.Range.value with
          | Some iv ->
              let lo, hi = Rinterval.to_pair iv in
              Json.List [ Json.Num lo; Json.Num hi ]
          | None -> Json.Null );
        ("box", Json.Str (Rbox.to_string a.Range.box));
        ("witness", Json.Str (Rbox.to_string a.Range.witness));
        ("splits", Json.Num (float_of_int a.Range.splits));
        ("evals", Json.Num (float_of_int a.Range.evals));
        ("elapsed_ms", Json.Num a.Range.elapsed_ms);
      ],
    Range.report ~target a )

let request_stop t = Atomic.set t.stop_requested true

(* ------------------------------------------------------------------ *)
(* Telemetry endpoints (DESIGN.md §14): [stats] is the windowed view
   (Obs.Window + tail offenders) that [cheffp top] polls, [metrics] the
   cumulative registry (flat dump or Prometheus exposition), [traces]
   the tail-retained slow/error span trees. All three are plain
   requests — they queue, so a scrape observes the same admission
   policy as the work it measures (use [priority] to jump the queue). *)

let attr_json key attrs =
  match List.assoc_opt key attrs with
  | Some (Trace.Str s) -> Some (key, Json.Str s)
  | Some (Trace.Int i) -> Some (key, Json.Num (float_of_int i))
  | Some (Trace.Float f) -> Some (key, Json.Num f)
  | Some (Trace.Bool b) -> Some (key, Json.Bool b)
  | None -> None

let tail_summary (e : Tail.entry) =
  Json.Obj
    ([
       ("name", Json.Str e.Tail.e_root.Trace.name);
       ("dur_ms", Json.Num (Int64.to_float e.Tail.e_dur_ns /. 1e6));
       ("err", Json.Bool e.Tail.e_err);
       ("spans", Json.Num (float_of_int (List.length e.Tail.e_spans)));
     ]
    @ List.filter_map
        (fun k -> attr_json k e.Tail.e_root.Trace.attrs)
        [ "cmd"; "request_id"; "tenant" ])

let tail_tree (e : Tail.entry) =
  match tail_summary e with
  | Json.Obj fields ->
      Json.Obj
        (fields
        @ [
            ( "trace",
              Json.List
                (List.map
                   (fun s -> Json.Str (Export.span_to_json s))
                   e.Tail.e_spans) );
          ])
  | j -> j

let handle_stats t (req : Protocol.request) =
  let snap = Metrics.snapshot () in
  let cum name =
    match List.assoc_opt name snap with
    | Some (Metrics.Counter n) -> float_of_int n
    | Some (Metrics.Gauge g) -> g
    | Some (Metrics.Histogram { counts; _ }) ->
        float_of_int (Array.fold_left ( + ) 0 counts)
    | None -> 0.
  in
  let w = if t.telemetry then Window.summary () else None in
  let span_s = match w with Some s -> s.Window.span_s | None -> 0. in
  let wcounter name =
    match w with
    | Some s -> (
        match Window.find s name with
        | Some (Window.Wcounter { delta; rate }) -> (float_of_int delta, rate)
        | _ -> (0., 0.))
    | None -> (0., 0.)
  in
  let whist name =
    match w with
    | Some s -> (
        match Window.find s name with
        | Some (Window.Whistogram h) -> Some h
        | _ -> None)
    | None -> None
  in
  let ms v = if Float.is_nan v then Json.Null else Json.Num (v *. 1000.) in
  let hist_json h =
    match h with
    | None -> Json.Obj [ ("count", Json.Num 0.) ]
    | Some h ->
        Json.Obj
          [
            ("count", Json.Num (float_of_int h.Window.wh_count));
            ("rate", Json.Num h.Window.wh_rate);
            ("p50_ms", ms h.Window.wh_p50);
            ("p95_ms", ms h.Window.wh_p95);
            ("p99_ms", ms h.Window.wh_p99);
            ( "mean_ms",
              if h.Window.wh_count > 0 then
                Json.Num
                  (h.Window.wh_sum /. float_of_int h.Window.wh_count *. 1000.)
              else Json.Null );
          ]
  in
  let req_delta, req_rate = wcounter "server.requests" in
  let err_delta, _ = wcounter "server.errors" in
  let pruned_delta, _ = wcounter "search.pruned_total" in
  let bounds_delta, _ = wcounter "range.bound" in
  let pool_done_delta, pool_done_rate = wcounter "pool.shared.completed" in
  let steals_delta, _ = wcounter "pool.shared.steals" in
  let whits, _ = wcounter "compile_cache.hits" in
  let wlookups, _ = wcounter "compile_cache.lookups" in
  let lat = whist "server.elapsed_seconds" in
  let workers = Pool.Shared.workers t.pool in
  (* Worker-seconds of request service time over the window against
     worker-seconds available: the pool-utilization proxy. *)
  let busy_s = match lat with Some h -> h.Window.wh_sum | None -> 0. in
  let util =
    if span_s > 0. && workers > 0 then
      Float.min 1. (busy_s /. (span_s *. float_of_int workers))
    else 0.
  in
  let cstats = Compile_cache.stats () in
  let shard_json =
    Json.List
      (Array.to_list
         (Array.map
            (fun (size, cap) ->
              Json.Obj
                [
                  ("size", Json.Num (float_of_int size));
                  ("cap", Json.Num (float_of_int cap));
                ])
            (Compile_cache.shard_sizes ())))
  in
  let tenants =
    match w with
    | Some s ->
        Json.List
          (List.map
             (fun (tenant, rate, lookups) ->
               Json.Obj
                 [
                   ("tenant", Json.Str tenant);
                   ("hit_rate", Json.Num rate);
                   ("lookups", Json.Num (float_of_int lookups));
                 ])
             (Window.tenant_hit_rates s))
    | None -> Json.List []
  in
  let offenders =
    let slow = Tail.slowest () in
    let slow =
      if req.limit > 0 then List.filteri (fun i _ -> i < req.limit) slow
      else slow
    in
    Json.List (List.map tail_summary slow)
  in
  ( Json.Obj
      [
        ("telemetry", Json.Bool t.telemetry);
        ("window_s", Json.Num span_s);
        ("workers", Json.Num (float_of_int workers));
        ( "requests",
          Json.Obj
            [
              ("total", Json.Num (cum "server.requests"));
              ("errors_total", Json.Num (cum "server.errors"));
              ("rejected_total", Json.Num (cum "server.rejected"));
              ("window", Json.Num req_delta);
              ("rate", Json.Num req_rate);
              ("errors_window", Json.Num err_delta);
              ("active", Json.Num (cum "server.active"));
              ("queue_depth", Json.Num (cum "server.queue_depth"));
            ] );
        ("latency", hist_json lat);
        ("queue_wait", hist_json (whist "server.queue_wait_seconds"));
        ( "search",
          Json.Obj
            [
              ("pruned_total", Json.Num (cum "search.pruned_total"));
              ("pruned_window", Json.Num pruned_delta);
            ] );
        ( "range",
          Json.Obj
            [
              ("bounds_total", Json.Num (cum "range.bound"));
              ("bounds_window", Json.Num bounds_delta);
              ("splits_total", Json.Num (cum "range.split"));
            ] );
        ( "pool",
          Json.Obj
            [
              ("utilization", Json.Num util);
              ("completed_window", Json.Num pool_done_delta);
              ("completed_rate", Json.Num pool_done_rate);
              ("steals_window", Json.Num steals_delta);
              ("queue_depth", Json.Num (cum "pool.shared.queue_depth"));
            ] );
        ( "cache",
          Json.Obj
            [
              ("hits_total", Json.Num (float_of_int cstats.Compile_cache.hits));
              ( "misses_total",
                Json.Num (float_of_int cstats.Compile_cache.misses) );
              ("size", Json.Num (float_of_int cstats.Compile_cache.size));
              ( "hit_rate_window",
                if wlookups > 0. then Json.Num (whits /. wlookups)
                else Json.Null );
              ("shards", shard_json);
            ] );
        ("tenants", tenants);
        ( "tail",
          Json.Obj
            [
              ("slowest", offenders);
              ( "errors_retained",
                Json.Num (float_of_int (List.length (Tail.errors ()))) );
              ("errors_total", Json.Num (float_of_int (Tail.error_count ())));
            ] );
      ],
    Printf.sprintf
      "window %.1fs: %.1f req/s, %d in window, utilization %.2f\n" span_s
      req_rate (int_of_float req_delta) util )

let handle_traces (req : Protocol.request) =
  let slow = Tail.slowest () in
  let slow =
    if req.limit > 0 then List.filteri (fun i _ -> i < req.limit) slow
    else slow
  in
  let errors = Tail.errors () in
  ( Json.Obj
      [
        ("slowest", Json.List (List.map tail_tree slow));
        ("errors", Json.List (List.map tail_tree errors));
        ("errors_total", Json.Num (float_of_int (Tail.error_count ())));
      ],
    Printf.sprintf "%d slow trace(s), %d error trace(s) retained\n"
      (List.length slow) (List.length errors) )

let dispatch t (req : Protocol.request) =
  match req.cmd with
  | Protocol.Ping -> (Json.Obj [ ("pong", Json.Bool true) ], "pong\n")
  | Protocol.Metrics ->
      let dump =
        match req.format with
        | "dump" -> Export.metrics_dump ()
        | "prometheus" -> Export.prometheus ()
        | other ->
            failwith ("unknown metrics format " ^ other ^ " (dump|prometheus)")
      in
      ( Json.Obj
          [ ("metrics", Json.Str dump); ("format", Json.Str req.format) ],
        dump )
  | Protocol.Stats -> handle_stats t req
  | Protocol.Traces -> handle_traces req
  | Protocol.Shutdown ->
      request_stop t;
      (Json.Obj [ ("stopping", Json.Bool true) ], "stopping\n")
  | Protocol.Analyze -> handle_analyze t req
  | Protocol.Tune -> handle_tune t req
  | Protocol.Search -> handle_search t req
  | Protocol.Sample -> handle_sample t req
  | Protocol.Validate -> handle_validate t req
  | Protocol.Range -> handle_range t req

(* Same error surface as the CLI's [wrap]. *)
let error_message = function
  | Failure m
  | Parser.Error m
  | Lexer.Error m
  | Typecheck.Error m
  | Interp.Runtime_error m
  | Estimate.Error m
  | Sampling.Spec_error m
  | Rbox.Spec_error m
  | Cheffp_ad.Reverse.Error m
  | Invalid_argument m
  | Sys_error m ->
      m
  | e -> Printexc.to_string e

(* ------------------------------------------------------------------ *)
(* Request execution (runs on a pool worker domain). The worker's span
   stack is empty, so "server.request" is a root span; its id keys the
   per-request subtree extraction. With telemetry on, tracing is
   enabled from [create] so every request records a tree and its
   completed subtree is offered to the tail ring (kept only if slow or
   errored); otherwise tracing is enabled lazily the first time a
   request asks for it and stays on (other requests may be mid-trace).
   Every request's tree is removed from the collector on completion
   either way, so a long-lived server does not accumulate spans. *)

let execute t (req : Protocol.request) ~enqueued =
  let started = Unix.gettimeofday () in
  let queue_wait = started -. enqueued in
  Registry.started ();
  let counters = { Compile_cache.r_hits = 0; r_misses = 0 } in
  let outcome =
    Compile_cache.with_attribution ?tenant:req.tenant ~counters (fun () ->
        if req.trace && not (Trace.enabled ()) then Trace.set_enabled true;
        let root = ref (-1) in
        match
          Trace.with_span "server.request" (fun () ->
              root := Trace.current ();
              if Trace.enabled () then begin
                Trace.add_attr "cmd" (Trace.Str (Protocol.cmd_name req.cmd));
                Trace.add_attr "request_id" (Trace.Int req.id);
                Option.iter
                  (fun ten -> Trace.add_attr "tenant" (Trace.Str ten))
                  req.tenant
              end;
              dispatch t req)
        with
        | result, report ->
            let spans = if !root >= 0 then Trace.take_tree !root else [] in
            if t.telemetry then Tail.offer ~err:false spans;
            Ok (result, report, if req.trace then spans else [])
        | exception e ->
            (if !root >= 0 then
               let spans = Trace.take_tree !root in
               if t.telemetry then Tail.offer ~err:true spans);
            Error (error_message e))
  in
  let elapsed = Unix.gettimeofday () -. started in
  Registry.finished ~ok:(Result.is_ok outcome) ~queue_wait ~elapsed;
  match outcome with
  | Ok (result, report, spans) ->
      Protocol.ok_response ~id:req.id ~cmd:req.cmd
        ~queue_wait_ms:(queue_wait *. 1000.)
        ~elapsed_ms:(elapsed *. 1000.)
        ~cache:
          {
            Protocol.c_hits = counters.Compile_cache.r_hits;
            c_misses = counters.Compile_cache.r_misses;
          }
        ~spans ~report result
  | Error msg -> Protocol.error_response ~id:req.id msg

(* ------------------------------------------------------------------ *)
(* Connections: one systhread per client reads request lines and
   submits tasks; the pool worker that executes a task writes its
   response itself (under the connection's write mutex), so responses
   stream back as requests complete — possibly out of order, which is
   why they echo the request id. *)

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)
  end

let handle_conn t cfd =
  let sub = Pool.Shared.add_submitter t.pool in
  let write_m = Mutex.create () in
  let outstanding = Atomic.make 0 in
  let done_m = Mutex.create () in
  let done_cv = Condition.create () in
  let send json =
    let line = Json.to_string json ^ "\n" in
    Mutex.lock write_m;
    (try write_all cfd line 0 (String.length line) with _ -> ());
    Mutex.unlock write_m
  in
  let task_done () =
    if Atomic.fetch_and_add outstanding (-1) = 1 then begin
      Mutex.lock done_m;
      Condition.broadcast done_cv;
      Mutex.unlock done_m
    end
  in
  let ic = Unix.in_channel_of_descr cfd in
  (try
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line when String.trim line = "" -> loop ()
       | line ->
           (match Protocol.parse_request line with
           | Error msg -> send (Protocol.error_response ~id:(-1) msg)
           | Ok req ->
               if Atomic.get t.stop_requested && req.cmd <> Protocol.Shutdown
               then send (Protocol.error_response ~id:req.id "server is draining")
               else begin
                 let depth = Pool.Shared.queue_depth t.pool in
                 if depth >= t.max_pending then begin
                   Registry.rejected ();
                   send
                     (Protocol.error_response ~id:req.id
                        (Printf.sprintf
                           "server overloaded: %d requests pending" depth))
                 end
                 else begin
                   let enqueued = Unix.gettimeofday () in
                   let deadline =
                     Option.map (fun ms -> enqueued +. (ms /. 1000.)) req.deadline_ms
                   in
                   Atomic.incr outstanding;
                   ignore
                     (Pool.Shared.submit t.pool sub ~priority:req.priority
                        ?deadline (fun () ->
                          Fun.protect ~finally:task_done (fun () ->
                              send (execute t req ~enqueued);
                              Registry.set_queue_depth
                                (Pool.Shared.queue_depth t.pool))));
                   Registry.set_queue_depth (Pool.Shared.queue_depth t.pool)
                 end
               end);
           loop ()
     in
     loop ()
   with _ -> ());
  (* Client went away (or the stream ended): everything already
     submitted still executes and writes (harmlessly failing if the
     peer is gone); wait it out so no task outlives its submitter. *)
  Mutex.lock done_m;
  while Atomic.get outstanding > 0 do
    Condition.wait done_cv done_m
  done;
  Mutex.unlock done_m;
  Pool.Shared.remove_submitter t.pool sub

(* ------------------------------------------------------------------ *)

let default_max_pending = 256

let create ?workers ?(max_pending = default_max_pending) ?(telemetry = true)
    ?(window_epochs = 12) ?(window_epoch_s = 5.) ?(tail_slowest = 16)
    ?(tail_errors = 64) listen =
  (* A client closing mid-response must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let builtins = Builtins.create () in
  Cheffp_fastapprox.Fastapprox.register_builtins builtins;
  let deriv = Cheffp_ad.Deriv.default () in
  Cheffp_fastapprox.Fastapprox.register_derivatives deriv;
  let fd, port =
    match listen with
    | Unix_socket path ->
        if Sys.file_exists path then Sys.remove path;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        (fd, None)
    | Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen fd 64;
        let actual =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        (fd, Some actual)
  in
  if telemetry then begin
    (* Continuous telemetry (DESIGN.md §14): window ticker + tail
       retention + tracing for every request. Window/Tail are
       process-global — the last-created telemetry server owns their
       configuration. *)
    Window.stop ();
    Window.configure ~epochs:window_epochs ~epoch_seconds:window_epoch_s ();
    Tail.configure ~slowest:tail_slowest ~errors:tail_errors ();
    Trace.set_enabled true;
    Window.start ()
  end;
  {
    pool = Pool.Shared.create ?workers ();
    fd;
    listen;
    port;
    builtins;
    deriv;
    max_pending;
    telemetry;
    stop_requested = Atomic.make false;
    conns_m = Mutex.create ();
    conns_cv = Condition.create ();
    conns = 0;
  }

let port t = t.port

let address t =
  match t.listen with
  | Unix_socket path -> path
  | Tcp _ ->
      Printf.sprintf "127.0.0.1:%d" (Option.value ~default:0 t.port)

let workers t = Pool.Shared.workers t.pool

let run t =
  while not (Atomic.get t.stop_requested) do
    match Unix.select [ t.fd ] [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.fd with
        | exception Unix.Unix_error (_, _, _) -> ()
        | cfd, _ ->
            Mutex.lock t.conns_m;
            t.conns <- t.conns + 1;
            Mutex.unlock t.conns_m;
            ignore
              (Thread.create
                 (fun () ->
                   Fun.protect
                     ~finally:(fun () ->
                       (try Unix.close cfd with Unix.Unix_error _ -> ());
                       Mutex.lock t.conns_m;
                       t.conns <- t.conns - 1;
                       Condition.broadcast t.conns_cv;
                       Mutex.unlock t.conns_m)
                     (fun () -> handle_conn t cfd))
                 ()))
  done;
  (* Drain: stop accepting, let open connections finish (their
     in-flight and queued tasks included), then retire the workers. *)
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conns_m;
  while t.conns > 0 do
    Condition.wait t.conns_cv t.conns_m
  done;
  Mutex.unlock t.conns_m;
  Pool.Shared.shutdown t.pool;
  if t.telemetry then Window.stop ();
  match t.listen with
  | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ()
