(** The [cheffp serve] daemon (DESIGN.md §13).

    A long-running analysis server: newline-delimited JSON requests
    ({!Protocol}) over a Unix-domain or loopback TCP socket, one
    systhread per connection for I/O, and every request executed as a
    task on one shared {!Cheffp_util.Pool.Shared} domain pool — a
    1000-candidate search and a quick analyze coexist because each
    connection has its own work queue and the pool's admission policy
    (priority, deadline, round-robin on ties) schedules across them.

    Handlers run the same code paths as the CLI subcommands, against a
    single long-lived builtins/derivative registry pair, so

    - results are {e bit-identical} to one-shot [cheffp] runs on the
      same inputs (the serve-smoke gate asserts this), and
    - compilations cached by one request ({!Cheffp_ir.Compile_cache},
      sharded) are hits for every later request on the same program —
      the warm cross-request hit rate the server bench reports.

    Per-request observability: each request runs under a
    ["server.request"] root span whose completed subtree is extracted
    with {!Cheffp_obs.Trace.take_tree} and streamed back to the client
    (when the request sets [trace]); cache lookups are attributed via
    {!Cheffp_ir.Compile_cache.with_attribution} (per-tenant hit-rate
    metrics plus the per-request summary in every response); lifecycle
    counters and latency histograms land in {!Registry}.

    Continuous telemetry (DESIGN.md §14, on by default): a
    {!Cheffp_obs.Window} ticker turns the cumulative registry into
    last-N-seconds rates and windowed quantiles, every completed
    request tree is offered to the {!Cheffp_obs.Tail} ring (K slowest
    + all error outcomes retained), and the [stats] / [metrics]
    (dump or Prometheus) / [traces] protocol requests expose all of it
    from the live daemon — [cheffp top] is a client of [stats].
    Window and Tail are process-global; the last-created telemetry
    server owns their configuration.

    Admission: requests beyond [max_pending] queued tasks are rejected
    immediately with an error response (the client can retry); a
    [shutdown] request (or {!request_stop}) drains — no new
    connections, queued and in-flight work completes, workers join. *)

type t

type listen = Unix_socket of string | Tcp of int
(** Where to listen. [Tcp 0] binds an ephemeral loopback port — read it
    back with {!port} (the smoke tests do). [Unix_socket path] replaces
    any stale socket file at [path] and removes it on shutdown. *)

val default_max_pending : int
(** 256. *)

val create :
  ?workers:int ->
  ?max_pending:int ->
  ?telemetry:bool ->
  ?window_epochs:int ->
  ?window_epoch_s:float ->
  ?tail_slowest:int ->
  ?tail_errors:int ->
  listen ->
  t
(** Bind the socket and spawn the worker pool ([workers] defaults to
    {!Cheffp_util.Pool.Shared.create}'s default). Also ignores SIGPIPE:
    a client closing mid-response must not kill the daemon.

    [telemetry] (default [true]) starts the continuous-telemetry
    layer: the {!Cheffp_obs.Window} ticker ([window_epochs] ×
    [window_epoch_s], defaults 12 × 5 s), the {!Cheffp_obs.Tail} ring
    ([tail_slowest] / [tail_errors] capacities, defaults 16 / 64) and
    span recording for every request. [~telemetry:false] restores the
    PR-6 behavior — no ticker thread, no retention, tracing only when
    a request asks — the disabled path the telemetry bench compares
    against. *)

val run : t -> unit
(** Accept loop; returns after a shutdown request (or {!request_stop})
    has drained the server. Call from the main thread. *)

val request_stop : t -> unit
(** Ask the accept loop to begin the drain (signal-handler safe: just
    an atomic store). *)

val port : t -> int option
(** The bound TCP port ([None] for Unix sockets). *)

val address : t -> string
(** Human-readable bound address (socket path or [127.0.0.1:port]). *)

val workers : t -> int
