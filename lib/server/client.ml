(* Blocking client for the serve protocol; used by the smoke test, the
   bench harness and anyone scripting the daemon. One request per
   [rpc]; for pipelining, [send] several then [recv] and match on the
   echoed ids. *)

type t = { fd : Unix.file_descr; ic : in_channel; m : Mutex.t }

let wrap fd = { fd; ic = Unix.in_channel_of_descr fd; m = Mutex.create () }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  wrap fd

let connect_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  wrap fd

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)
  end

let send t json =
  let line = Json.to_string json ^ "\n" in
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () -> write_all t.fd line 0 (String.length line))

let recv t = Json.of_string (input_line t.ic)

let rpc t json =
  send t json;
  recv t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Request construction sugar: start from the command and id, add only
   the fields that differ from the CLI defaults. *)
let request ~id ~cmd fields =
  Json.Obj
    (("id", Json.Num (float_of_int id)) :: ("cmd", Json.Str cmd) :: fields)

let retry_connect ?(attempts = 100) ?(delay = 0.05) connect =
  let rec go n =
    match connect () with
    | c -> c
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when n > 1 ->
        Unix.sleepf delay;
        go (n - 1)
  in
  go attempts
