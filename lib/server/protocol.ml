module Batch = Cheffp_ir.Batch
module Export = Cheffp_obs.Export
module Trace = Cheffp_obs.Trace
module Compile_cache = Cheffp_ir.Compile_cache

type cmd =
  | Ping
  | Analyze
  | Tune
  | Search
  | Sample
  | Validate
  | Range
  | Metrics
  | Stats
  | Traces
  | Shutdown

let cmd_name = function
  | Ping -> "ping"
  | Analyze -> "analyze"
  | Tune -> "tune"
  | Search -> "search"
  | Sample -> "sample"
  | Validate -> "validate"
  | Range -> "range"
  | Metrics -> "metrics"
  | Stats -> "stats"
  | Traces -> "traces"
  | Shutdown -> "shutdown"

let cmd_of_string = function
  | "ping" -> Some Ping
  | "analyze" -> Some Analyze
  | "tune" -> Some Tune
  | "search" -> Some Search
  | "sample" -> Some Sample
  | "validate" -> Some Validate
  | "range" -> Some Range
  | "metrics" -> Some Metrics
  | "stats" -> Some Stats
  | "traces" -> Some Traces
  | "shutdown" -> Some Shutdown
  | _ -> None

(* Request fields mirror the CLI flags one-to-one (same names, same
   defaults, same string syntax for arguments and demotions), so a
   request is exactly "a CLI invocation as an object" — the handlers
   run the same code paths and the bit-identity harness compares the
   two directly. *)
type request = {
  id : int;
  cmd : cmd;
  program : string;
  func : string;
  args : string list;  (* positional, arrays as v1:v2:... *)
  threshold : float option;
  target : string;
  model : string;
  demote : string list;  (* var:fmt *)
  mode : string;
  margin : float;
  strategy : string;
  prune_margin : float;
  profiled : bool;
  jobs : int;
  batch : int;
  no_batch : bool;
  tenant : string option;
  priority : int;
  deadline_ms : float option;
  trace : bool;
  format : string;  (* metrics exposition: "dump" (default) | "prometheus" *)
  limit : int;  (* traces: max slowest trees returned; 0 = all retained *)
  samples : int;  (* sample/search: Monte-Carlo input count; 0 = off *)
  dist : string option;  (* per-variable distribution spec, CLI --dist *)
  target_quantile : float;  (* search: quantile the threshold applies to *)
  seed : int;  (* sampling seed *)
  box : string option;  (* range: box override spec, CLI --box *)
  range_backend : string;  (* range: "bb" (default) | "whole" *)
}

let parse_request line =
  match Json.of_string line with
  | exception Json.Parse_error m -> Error ("bad JSON: " ^ m)
  | j -> (
      let str k d = Option.value ~default:d (Json.to_string_opt (Json.member k j)) in
      let int k d = Option.value ~default:d (Json.to_int_opt (Json.member k j)) in
      let flt k d = Option.value ~default:d (Json.to_float_opt (Json.member k j)) in
      let flag k d = Option.value ~default:d (Json.to_bool_opt (Json.member k j)) in
      match Json.to_int_opt (Json.member "id" j) with
      | None -> Error "missing request id"
      | Some id -> (
          match cmd_of_string (str "cmd" "") with
          | None -> Error (Printf.sprintf "request %d: unknown cmd %S" id (str "cmd" ""))
          | Some cmd ->
              Ok
                {
                  id;
                  cmd;
                  program = str "program" "";
                  func = str "func" "";
                  args = Json.string_list (Json.member "args" j);
                  threshold = Json.to_float_opt (Json.member "threshold" j);
                  target = str "target" "f32";
                  model = str "model" "adapt";
                  demote = Json.string_list (Json.member "demote" j);
                  mode = str "mode" "extended";
                  margin = flt "margin" 1.0;
                  strategy = str "strategy" "hybrid";
                  prune_margin = flt "prune_margin" 64.;
                  profiled = flag "profiled" false;
                  jobs = int "jobs" 1;
                  batch = int "batch" Batch.default_lanes;
                  no_batch = flag "no_batch" false;
                  tenant = Json.to_string_opt (Json.member "tenant" j);
                  priority = int "priority" 0;
                  deadline_ms = Json.to_float_opt (Json.member "deadline_ms" j);
                  trace = flag "trace" false;
                  format = str "format" "dump";
                  limit = int "limit" 0;
                  samples = int "samples" 0;
                  dist = Json.to_string_opt (Json.member "dist" j);
                  target_quantile = flt "target_quantile" 0.99;
                  seed = int "seed" 42;
                  box = Json.to_string_opt (Json.member "box" j);
                  range_backend = str "range_backend" "bb";
                }))

(* Responses. [spans] are pre-rendered {!Cheffp_obs.Export} JSON lines
   carried as strings: span timestamps are int64 nanoseconds, which do
   not survive a trip through a float-backed JSON number, so the server
   never re-parses them — clients write the lines verbatim to get a
   file [validate_trace] accepts. *)

type cache_summary = { c_hits : int; c_misses : int }

let ok_response ~id ~cmd ~queue_wait_ms ~elapsed_ms ~cache ~spans ~report
    result =
  Json.Obj
    ([
       ("id", Json.Num (float_of_int id));
       ("cmd", Json.Str (cmd_name cmd));
       ("ok", Json.Bool true);
       ("result", result);
       ("report", Json.Str report);
       ("queue_wait_ms", Json.Num queue_wait_ms);
       ("elapsed_ms", Json.Num elapsed_ms);
       ( "cache",
         Json.Obj
           [
             ("hits", Json.Num (float_of_int cache.c_hits));
             ("misses", Json.Num (float_of_int cache.c_misses));
           ] );
     ]
    @
    match spans with
    | [] -> []
    | spans ->
        [
          ( "spans",
            Json.List
              (List.map (fun s -> Json.Str (Export.span_to_json s)) spans) );
        ])

let error_response ~id msg =
  Json.Obj
    [
      ("id", Json.Num (float_of_int id));
      ("ok", Json.Bool false);
      ("error", Json.Str msg);
    ]
