(** Input distributions and Monte-Carlo sweeps (DESIGN.md §16).

    One args vector is a thin view of a program's error behaviour. This
    module samples argument vectors from per-variable distributions —
    uniform, normal, or the default box derived from an FPCore [:pre]
    range / the base value — and sweeps them through the batched
    input-sweep runner ({!Cheffp_ir.Batch.run_inputs_many}), so the
    per-sample cost is a lane slot, not a compile+run.

    {b Determinism}: sample [i] is a pure function of [(seed, i)]
    (drawn from {!Cheffp_util.Rng.substream}), independent of lane
    width, chunking and pool job count — the property the fuzz suite
    pins. Uniform draws use arithmetic only and are bit-reproducible
    across platforms; normal draws go through libm ([log]/[cos]) and
    are reproducible per platform. *)

open Cheffp_ir

exception Spec_error of string
(** Malformed [--dist] specs, arity mismatches, unknown parameter
    names. *)

type dist =
  | Fixed of float  (** degenerate: always this value *)
  | Uniform of { lo : float; hi : float }
  | Normal of { mu : float; sigma : float }

val dist_to_string : dist -> string

val dist_of_string : string -> dist
(** Parses ["fixed:v"], ["uniform:lo,hi"] (lo < hi),
    ["normal:mu,sigma"] (sigma > 0). @raise Spec_error *)

val dists_of_string : string -> (string * dist) list
(** The [--dist] surface syntax: [NAME=DIST] entries separated by [';']
    or whitespace, e.g. ["x=uniform:0,1 y=normal:0,2"].
    @raise Spec_error *)

val default_box : float -> dist
(** The fallback distribution around a base value [v]:
    [Uniform] over [v +/- 0.5*|v|]; at [v = 0] a relative box
    degenerates, so the absolute interval [[-1, 1]] is used instead
    (the same rule {!Cheffp_range.Box.default_iv} applies to range
    boxes). *)

type plan
(** A resolved sampling plan: one slot per parameter of the target
    function. Float scalars and float arrays (elementwise) are sampled;
    integers, integer arrays and [out] parameters pass through fixed —
    sampling only perturbs values, never the shared integer control
    flow. *)

val plan :
  ?dists:(string * dist) list ->
  ?ranges:(string * (float option * float option)) list ->
  func:Ast.func ->
  args:Interp.arg list ->
  unit ->
  plan
(** Resolve a plan for [func] around the base point [args]. Per float
    parameter, the first match wins: an explicit entry in [dists]; a
    bounded range in [ranges] (the FPCore [:pre] box, as
    [Import.core.ranges]) as a [Uniform]; the {!default_box} around the
    base value. Float arrays sample every element (one explicit [dist]
    for all elements, or the default box around each base element).
    @raise Spec_error on arity mismatch or a [dists] name that is not a
    parameter. *)

val describe : plan -> (string * string) list
(** Human-readable [(param, distribution)] rows for CLI/server
    output. *)

val box_view :
  plan ->
  (string
  * [ `Fixed of Interp.arg
    | `Interval of float * float
    | `Intervals of (float * float) array
    | `Unbounded ])
  list
(** The plan's per-parameter support as plain bounds — the bridge for
    handing a sampling plan to [Cheffp_range.Box] (the two libraries
    sit side by side and cannot see each other's types). [`Unbounded]
    marks Normal draws: their support has no finite box, so rigorous
    pruning must be disabled for such plans. *)

val sampled_vars : plan -> string list
(** Parameters the plan actually samples (non-fixed slots). *)

val draw : plan -> seed:int64 -> int -> Interp.arg list
(** [draw plan ~seed i] is sample [i]: every sampled parameter drawn
    in declaration order from [Rng.substream seed i]. Fresh arrays per
    call (safe to mutate). Bumps the [sampling.samples_total]
    counter. *)

val draw_many : plan -> seed:int64 -> int -> Interp.arg list array
(** Samples [0 .. n-1], in order. *)

val sweep :
  ?jobs:int ->
  ?lanes:int ->
  ?builtins:Builtins.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  prog:Ast.program ->
  func:string ->
  config:Cheffp_precision.Config.t ->
  Interp.arg list array ->
  float array
(** Batched evaluation of [func] under [config] at each input vector:
    {!Cheffp_ir.Compile_cache.compile_sweep} for the artifact,
    {!Cheffp_ir.Batch.run_inputs_many} for the execution ([lanes]-wide
    sweeps, default {!Cheffp_ir.Batch.default_sweep_lanes}, fanned
    over [jobs] domains), cache-backed scalar fallback for diverged
    lanes. Results preserve input order. *)

val measured_errors :
  ?jobs:int ->
  ?lanes:int ->
  ?builtins:Builtins.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  ?reference:float array ->
  prog:Ast.program ->
  func:string ->
  config:Cheffp_precision.Config.t ->
  Interp.arg list array ->
  float array * float array
(** Per-sample measured error of [config] against the all-double
    reference: [(errors, reference)] with
    [errors.(i) = |y_config(x_i) - y_double(x_i)|]. Pass [reference]
    (the second component of a previous call on the same inputs) to
    share the double sweep across many candidate configurations — the
    tuning loop's trick. @raise Invalid_argument on a reference length
    mismatch. *)

val measured_summary :
  ?jobs:int ->
  ?lanes:int ->
  ?builtins:Builtins.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  ?reference:float array ->
  prog:Ast.program ->
  func:string ->
  config:Cheffp_precision.Config.t ->
  Interp.arg list array ->
  Quantile.summary * float array
(** {!measured_errors} reduced to a {!Quantile.summary} (plus the
    reference values for reuse). *)
