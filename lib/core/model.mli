(** Error models (paper §III-D/E).

    A model answers one question: given an assignment [x = e] whose
    adjoint is [dx] and whose computed value is [v], what is this
    assignment's contribution to the program's floating-point error?
    The answer is an {e expression} built into the generated adjoint
    (the paper's [AssignError]); its absolute value is accumulated.

    Built-in models:
    - {!taylor}: the default first-order model of Eq. (1),
      [eps_m * |v| * |dx|], with [eps_m] the unit roundoff of the target
      (demotion) format;
    - {!adapt}: the ADAPT-FP model of Eq. (2), [dx * (v - (float)v)] —
      the error each variable incurs if demoted to the target format;
    - {!external_}: an arbitrary OCaml function called from generated
      code, the analogue of the paper's [getErrorVal] (Listing 3);
    - {!approx_functions}: Algorithm 2 — for variables known to feed an
      approximate intrinsic, [dx * (f(v) - f_approx(v))]. *)

open Cheffp_ir

type t = {
  model_name : string;
  assign_error : adj:Ast.expr -> value:Ast.expr -> var:string -> Ast.expr;
      (** may be signed; the estimation module accumulates [fabs] of it *)
  input_error : adj:float -> value:float -> var:string -> float;
      (** contribution of an {e input} (parameter) value: inputs are never
          assigned inside the function, so their term of Eq. (2) is
          evaluated at reporting time from the computed gradient. May be
          signed; the estimation module takes the absolute value unless
          it accumulates in [`Signed] mode *)
  setup : Builtins.t -> unit;
      (** registers any external functions the expressions call *)
}

val taylor : ?target:Cheffp_precision.Fp.format -> unit -> t
(** Default model; [target] defaults to [F32]. *)

val atom : unit -> t
(** {!taylor} with the machine epsilon factored {e out}:
    [|v| * |dx|] per assignment (and [|x| * |dx|] per input), so the
    accumulated per-variable totals are the precision-independent
    error atoms [A(v)] of {!Profile} — one augmented run scores every
    mixed-precision configuration as [Σ A(v) * eps(format_of cfg v)]. *)

val adapt : ?target:Cheffp_precision.Fp.format -> unit -> t
(** [target] must be [F32] or [F16] (a demotion).
    @raise Invalid_argument on [F64]. *)

val zero : t
(** Contributes nothing; useful to benchmark pure-gradient generation. *)

val external_ :
  name:string -> (adj:float -> value:float -> var:string -> float) -> t
(** The generated code calls back into [f] for every assignment. One
    model value services one analysis at a time (it owns the id table
    that maps generated integer ids back to variable names). *)

val approx_functions :
  pairs:(string * string) list ->
  eval:(string -> float -> float) ->
  eval_approx:(string -> float -> float) ->
  t
(** [approx_functions ~pairs:[(var, intrinsic); ...] ~eval ~eval_approx]:
    variables that are inputs of the named intrinsic, which has an
    approximate variant registered under ["fast" ^ intrinsic] (e.g.
    [("xu", "exp")] pairs [exp] with [fastexp]). Implements the paper's
    Algorithm 2: the error assigned to such a variable is
    [dx * (f(v) - fastf(v))]; other variables contribute zero.
    [eval]/[eval_approx] are the OCaml-side EVAL/EVALAPPROX used for
    input contributions. *)
