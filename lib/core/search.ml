open Cheffp_ir
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp
module Cost = Cheffp_precision.Cost
module Pool = Cheffp_util.Pool
module Trace = Cheffp_obs.Trace
module Metrics = Cheffp_obs.Metrics

type strategy = [ `Measured | `Modelled | `Hybrid ]

let strategy_name = function
  | `Measured -> "measured"
  | `Modelled -> "modelled"
  | `Hybrid -> "hybrid"

let strategy_of_string = function
  | "measured" -> Some `Measured
  | "modelled" -> Some `Modelled
  | "hybrid" -> Some `Hybrid
  | _ -> None

type outcome = {
  demoted : string list;
  executions : int;
  batched_runs : int;
  runs_avoided : int;
  pruned : int;
  strategy : strategy;
  evaluation : Tuner.evaluation;
  modelled_error : float;
  measured_error : float option;
  threshold : float;
  samples : int;
}

type sampling = { inputs : Interp.arg list array; quantile : float }

let runs_avoided_c = Metrics.counter "search.runs_avoided"
let pruned_c = Metrics.counter "search.pruned_total"

let copy_args args =
  List.map
    (function
      | Interp.Afarr a -> Interp.Afarr (Array.copy a)
      | Interp.Aiarr a -> Interp.Aiarr (Array.copy a)
      | (Interp.Aint _ | Interp.Aflt _) as x -> x)
    args

let tune ?(target = Fp.F32) ?mode ?builtins ?(jobs = 1) ?batch ?sampling
    ?measure ?(strategy = `Hybrid) ?(prune_margin = 64.) ?prune_bound ~prog
    ~func ~args ~threshold () =
  if prune_margin < 1. then
    invalid_arg "Search.tune: prune_margin must be >= 1";
  (match sampling with
  | Some s ->
      if Array.length s.inputs = 0 then
        invalid_arg "Search.tune: sampling needs at least one input vector";
      if s.quantile < 0. || s.quantile > 1. then
        invalid_arg "Search.tune: sampling quantile outside [0, 1]"
  | None -> ());
  Trace.with_span "search.tune" @@ fun () ->
  if Trace.enabled () then begin
    Trace.add_attr "func" (Trace.Str func);
    Trace.add_attr "threshold" (Trace.Float threshold);
    Trace.add_attr "jobs" (Trace.Int jobs);
    Trace.add_attr "strategy" (Trace.Str (strategy_name strategy));
    (match sampling with
    | Some s ->
        Trace.add_attr "samples" (Trace.Int (Array.length s.inputs));
        Trace.add_attr "quantile" (Trace.Float s.quantile)
    | None -> ());
    match batch with
    | Some lanes -> Trace.add_attr "batch" (Trace.Int lanes)
    | None -> ()
  end;
  (* One gradient-augmented run (memoized across tuning sessions) yields
     every variable's precision-independent error atom; every strategy
     uses it — [`Modelled]/[`Hybrid] to score candidates without
     executing them, and the final [modelled_error] cross-check as a dot
     product instead of a fresh analysis. Not counted in [executions]:
     it is the analysis the search baseline is compared against. *)
  let profile = Profile.build_cached ?builtins ~prog ~func ~args () in
  let executions = Atomic.make 0 in
  let batched_runs = Atomic.make 0 in
  let avoided = Atomic.make 0 in
  let pruned = Atomic.make 0 in
  let skip n =
    ignore (Atomic.fetch_and_add avoided n);
    Metrics.add runs_avoided_c n
  in
  let prune_skip n =
    ignore (Atomic.fetch_and_add pruned n);
    Metrics.add pruned_c n
  in
  (* Rigorous acceptance: [prune_bound vars] is a certified upper bound
     on the measured error of demoting [vars] (None = not certified —
     see [Cheffp_range.Range.score]). A candidate whose bound clears
     the threshold would also pass its measured accept, so taking it
     without executing keeps the chosen set bit-identical; bounds are
     never used to *reject* (an over-wide bound must cost executions,
     not correctness), and probes are never pruned (their measured
     errors are the greedy sort key). *)
  let certified vars =
    match prune_bound with
    | None -> false
    | Some bound -> (
        match bound vars with Some b -> b <= threshold | None -> false)
  in
  (* The model rejects a candidate set when its scored error clears the
     threshold with [prune_margin] to spare. The rejection is a
     prediction, not a proof: on self-correcting iterative kernels
     (HPCCG's CG loop) the measured error of an accepted set can sit
     four orders of magnitude below its first-order score, so `Hybrid
     only acts on a rejection where a wrong prediction cannot change
     the chosen set (see the grow phase) or where the margin has been
     validated to hold (the all-demoted shortcut). *)
  let model_rejects vars =
    Profile.score_vars profile ~target vars > prune_margin *. threshold
  in
  let run config =
    Atomic.incr executions;
    (* Metered compilation (counters are per-run, dropped here) so the
       cache key space is shared with Tuner.evaluate: the reference and
       the finally chosen configuration compile once across the whole
       tuning run. Argument copies keep concurrent runs independent. *)
    let compiled =
      Compile_cache.compile ?builtins ?mode ~meter:true ~config ~prog ~func ()
    in
    Trace.with_span "run" (fun () -> Compile.run_float compiled (copy_args args))
  in
  let candidates = Tuner.float_variables (Ast.func_exn prog func) in
  let chosen =
    match strategy with
    | `Modelled ->
        (* Pure fast path: zero candidate executions. Greedy in
           ascending-atom order under half the threshold — the same
           factor-2 headroom {!Tuner.tune}'s default margin budgets for
           Source-mode rounding the first-order model does not see —
           with the overflow veto answered from the profile's ranges. *)
        Trace.with_span "search.model_score" @@ fun () ->
        let eps = Fp.unit_roundoff target in
        let budget = threshold /. 2. in
        let by_atom =
          List.filter
            (fun v -> not (Profile.overflows profile ~target v))
            candidates
          |> List.sort (fun a b ->
                 compare (Profile.atom profile a) (Profile.atom profile b))
        in
        skip (List.length candidates);
        if Trace.enabled () then begin
          Trace.add_attr "scored" (Trace.Int (List.length candidates));
          Trace.add_attr "budget" (Trace.Float budget)
        end;
        let chosen, _ =
          List.fold_left
            (fun (acc, spent) v ->
              let c = Profile.atom profile v *. eps in
              if spent +. c <= budget then (v :: acc, spent +. c)
              else (acc, spent))
            ([], 0.) by_atom
        in
        List.rev chosen
    | (`Measured | `Hybrid) as strategy ->
        let prune = strategy = `Hybrid in
        (* What one candidate configuration's "error" means. Point mode:
           |y_config - y_double| at the single base args. Sampled mode
           ([sampling]): a Monte-Carlo input sweep through the batched
           input-sweep runner — the configuration's error is the chosen
           quantile (e.g. p99) of |y_config(x_i) - y_double(x_i)| over
           the sampled inputs, with the double reference sweep computed
           once and shared across every candidate. In both modes one
           candidate evaluation counts one [execution] (set units, so
           the hybrid-vs-measured accounting is mode-independent);
           sampled evaluations additionally count their lane sweeps in
           [batched_runs]. *)
        let point_reference =
          match sampling with
          | None ->
              Some
                (Trace.with_span "search.reference" (fun () ->
                     run Config.double))
          | Some _ -> None
        in
        let measure_config =
          match point_reference with
          | Some reference ->
              fun config -> Float.abs (run config -. reference)
          | None ->
              let s = Option.get sampling in
              let nsamp = Array.length s.inputs in
              let lanes =
                match batch with
                | Some l when l > 1 -> l
                | _ -> Batch.default_lanes
              in
              let b =
                Compile_cache.compile_sweep ?builtins ?mode ~prog ~func ()
              in
              let fallback config =
                Compile_cache.compile ?builtins ?mode ~meter:true ~config
                  ~prog ~func ()
              in
              let sweep config =
                Atomic.incr executions;
                ignore
                  (Atomic.fetch_and_add batched_runs
                     ((nsamp + lanes - 1) / lanes));
                Batch.run_inputs_many ~jobs ~lanes ~fallback b ~config
                  s.inputs
              in
              let reference =
                Trace.with_span "search.reference" (fun () ->
                    sweep Config.double)
              in
              fun config ->
                let vals = sweep config in
                let errs =
                  Array.map2 (fun v r -> Float.abs (v -. r)) vals reference
                in
                Quantile.quantile_of_array errs s.quantile
        in
        (* Per-candidate spans carry the probed variable set and its
           observed error; they run inside pool workers and nest under
           the batch's phase span. *)
        let error_of ?(span = "search.candidate") vars =
          Trace.with_span span @@ fun () ->
          if Trace.enabled () then
            Trace.add_attr "vars" (Trace.Str (String.concat "," vars));
          let config = Config.demote_all Config.double vars target in
          let e = measure_config config in
          if Trace.enabled () then Trace.add_attr "error" (Trace.Float e);
          e
        in
        (* Errors of a list of candidate variable-sets at once. With
           [batch] set this is the searched-for hot path: n sets
           evaluate as ⌈n/K⌉ lane sweeps of one configuration-generic
           compilation instead of n scalar compile+run pairs.
           [executions] still counts one per set
           (program-runs-equivalent, keeping the Precimonious
           comparison honest); [batched_runs] counts the sweeps.
           Per-set observability drops from spans to events — the sets
           inside one sweep have no meaningful individual duration. *)
        let errors_of_sets sets =
          match (sampling, batch) with
          | Some _, _ ->
              (* Sampled mode: each set is already a [jobs]-wide lane
                 sweep over the inputs axis, so sets evaluate in
                 sequence — parallelism lives inside the sweep, not
                 across sets. *)
              List.map (fun vars -> error_of vars) sets
          | None, Some lanes when lanes > 1 && List.length sets > 1 ->
              let n = List.length sets in
              let configs =
                List.map
                  (fun vars -> Config.demote_all Config.double vars target)
                  sets
              in
              ignore (Atomic.fetch_and_add executions n);
              ignore
                (Atomic.fetch_and_add batched_runs ((n + lanes - 1) / lanes));
              let b =
                Compile_cache.compile_batch ?builtins ?mode ~prog ~func ()
              in
              let fallback config =
                Compile_cache.compile ?builtins ?mode ~meter:true ~config
                  ~prog ~func ()
              in
              let vals = Batch.run_many ~jobs ~lanes ~fallback b ~configs args in
              let reference = Option.get point_reference in
              List.map2
                (fun vars v ->
                  let e = Float.abs (v -. reference) in
                  Trace.event "search.candidate"
                    ~attrs:
                      [
                        ("vars", Trace.Str (String.concat "," vars));
                        ("error", Trace.Float e);
                      ];
                  e)
                sets vals
          | _, _ -> Pool.parallel_map ~jobs (fun vars -> error_of vars) sets
        in
        (* The all-demoted shortcut costs one run under `Measured.
           When the model rejects the full set with margin to spare,
           `Hybrid skips that certain-to-fail run: on every workload
           where search is non-trivial, one execution saved before any
           probing. *)
        if certified candidates then begin
          (* Rigorous all-demoted accept: the bound certifies the most
             aggressive configuration, so the search is over before its
             first candidate execution. *)
          prune_skip 1;
          Trace.event "search.prune"
            ~attrs:
              [ ("phase", Trace.Str "all_demoted"); ("pruned", Trace.Int 1) ];
          candidates
        end
        else
        let all_error =
          if prune && model_rejects candidates then begin
            skip 1;
            Trace.event "search.model_score"
              ~attrs:
                [
                  ("phase", Trace.Str "all_demoted");
                  ("pruned", Trace.Int 1);
                ];
            None
          end
          else Some (error_of ~span:"search.all_demoted" candidates)
        in
        (match all_error with
        | Some e when e <= threshold -> candidates
        | _ ->
            (* Individual probing: every candidate's solo demotion error
               is an independent execution — one parallel batch. Probes
               are never model-pruned: a solo score can overestimate the
               measured error without bound (exactly-representable
               values, self-correcting iteration), so any margin large
               enough to be safe would also never fire. The savings live
               where a wrong model cannot change the outcome. *)
            let individual =
              Trace.with_span "search.probe" (fun () ->
                  let errs =
                    errors_of_sets (List.map (fun v -> [ v ]) candidates)
                  in
                  List.combine candidates errs)
              |> List.filter (fun (_, e) -> e <= threshold)
              |> List.sort (fun (_, a) (_, b) -> compare a b)
            in
            (* Greedy growth, batched per round by speculation: round k
               evaluates in parallel the prefix trials
               [chosen @ pending_1..i] for every pending candidate i,
               i.e. the trials the sequential greedy would run if every
               earlier candidate were accepted. Up to the first failure
               those are exactly the sequential trials; at a failure the
               failing candidate is dropped and the next round restarts
               from the survivors, so accepted sets are bit-identical to
               the one-at-a-time greedy for any [jobs] (the speculated
               trials past a failure are wasted executions — the price
               of the batch, counted like any other run).

               Under `Hybrid, a round's prefixes are nested and atoms
               are non-negative, so their model scores are monotone
               non-decreasing: the first model-rejected prefix caps the
               round's speculation depth (never below one trial — that
               keeps the rounds making progress even when the model
               rejects everything). Capped trials surface as [None] and
               accept treats a [None] as a round boundary — the
               candidate stays pending and is re-speculated next round
               — NOT as a failure, so the decision sequence, and with
               it the chosen set, is bit-identical to `Measured no
               matter how wrong the model is. The executions saved are
               exactly the post-failure speculation waste `Measured
               pays: when a round's last measured trial fails, the
               capped tail is waste the model predicted away, and it is
               only then that the cut counts as avoided. This keeps the
               invariant [hybrid executions + runs avoided = measured
               executions] whenever the all-demoted shortcut's margin
               holds. *)
            let rec grow chosen pending =
              match pending with
              | [] -> chosen
              | _ ->
                  (* Rigorous prefix accepts: round prefixes are nested,
                     so certified bounds are monotone — the longest
                     certified prefix from the round's start is accepted
                     without executing (each accept is a run `Measured
                     must perform). The first non-certified candidate
                     falls through to the measured machinery below,
                     which decides it exactly as before. *)
                  let chosen, pending =
                    if prune_bound = None then (chosen, pending)
                    else begin
                      let rec certify acc pend trial k =
                        match pend with
                        | (v, _) :: rest ->
                            let trial = trial @ [ v ] in
                            if certified trial then
                              certify (acc @ [ v ]) rest trial (k + 1)
                            else (acc, pend, k)
                        | [] -> (acc, [], k)
                      in
                      let chosen', pending', k =
                        certify chosen pending chosen 0
                      in
                      if k > 0 then begin
                        prune_skip k;
                        Trace.event "search.prune"
                          ~attrs:
                            [
                              ("phase", Trace.Str "grow");
                              ("pruned", Trace.Int k);
                            ]
                      end;
                      (chosen', pending')
                    end
                  in
                  match pending with
                  | [] -> chosen
                  | _ ->
                  let prefixes =
                    List.rev
                      (fst
                         (List.fold_left
                            (fun (acc, trial) (v, _) ->
                              let trial = trial @ [ v ] in
                              ((v, trial) :: acc, trial))
                            ([], chosen) pending))
                  in
                  let errs, cut_len =
                    Trace.with_span "search.grow" (fun () ->
                        if Trace.enabled () then
                          Trace.add_attr "pending"
                            (Trace.Int (List.length pending));
                        let to_run, cut =
                          if prune then
                            Trace.with_span "search.model_score" (fun () ->
                                let rec split acc = function
                                  | [] -> (List.rev acc, [])
                                  | ((_, trial) as p) :: rest ->
                                      if model_rejects trial then
                                        (List.rev acc, p :: rest)
                                      else split (p :: acc) rest
                                in
                                let to_run, cut = split [] prefixes in
                                (* Forced progress: always measure at
                                   least the round's first trial. *)
                                let to_run, cut =
                                  match (to_run, cut) with
                                  | [], p :: rest -> ([ p ], rest)
                                  | _ -> (to_run, cut)
                                in
                                if Trace.enabled () then begin
                                  Trace.add_attr "scored"
                                    (Trace.Int (List.length prefixes));
                                  Trace.add_attr "cut"
                                    (Trace.Int (List.length cut))
                                end;
                                (to_run, cut))
                          else (prefixes, [])
                        in
                        let measured =
                          errors_of_sets (List.map snd to_run)
                        in
                        ( List.map (fun e -> Some e) measured
                          @ List.map (fun _ -> None) cut,
                          List.length cut ))
                  in
                  let rec accept chosen pend errs =
                    match (pend, errs) with
                    | [], _ | _, [] -> (chosen, [], false)
                    | (v, _) :: pend', e :: errs' -> (
                        match e with
                        | Some e when e <= threshold ->
                            accept (chosen @ [ v ]) pend' errs'
                        | Some _ ->
                            (* Measured failure: drop the candidate.
                               `Measured would have speculated the cut
                               tail past this failure and wasted it. *)
                            (chosen, pend', true)
                        | None ->
                            (* Cap reached with no failure: keep the
                               candidate for the next round. *)
                            (chosen, pend, false))
                  in
                  let chosen', rest, dropped = accept chosen pending errs in
                  if dropped && cut_len > 0 then skip cut_len;
                  grow chosen' rest
            in
            grow [] individual)
  in
  let config = Config.demote_all Config.double chosen target in
  let evaluation =
    Tuner.evaluate ?builtins ?mode ~jobs ~prog ~func ~args config
  in
  (* Cross-check the searched configuration against the CHEF-FP error
     model: the profile already paid for the one gradient-augmented
     execution, so the estimate for the chosen set is a dot product. *)
  let modelled_error = Profile.score profile config in
  (* Ground-truth cross-check of the chosen configuration, when the
     caller supplied one (the shadow oracle lives in a library above
     this one; see the .mli). Traced like any other phase. *)
  let measured_error =
    Option.map
      (fun m ->
        Trace.with_span "search.measure" (fun () ->
            let e = m config in
            if Trace.enabled () then Trace.add_attr "error" (Trace.Float e);
            e))
      measure
  in
  if Trace.enabled () then begin
    Trace.add_attr "runs_avoided" (Trace.Int (Atomic.get avoided));
    Trace.add_attr "pruned" (Trace.Int (Atomic.get pruned))
  end;
  {
    demoted = chosen;
    executions = Atomic.get executions;
    batched_runs = Atomic.get batched_runs;
    runs_avoided = Atomic.get avoided;
    pruned = Atomic.get pruned;
    strategy;
    evaluation;
    modelled_error;
    measured_error;
    threshold;
    samples =
      (match sampling with Some s -> Array.length s.inputs | None -> 0);
  }
