open Cheffp_ir
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp
module Cost = Cheffp_precision.Cost
module Pool = Cheffp_util.Pool

type outcome = {
  demoted : string list;
  executions : int;
  evaluation : Tuner.evaluation;
  threshold : float;
}

let copy_args args =
  List.map
    (function
      | Interp.Afarr a -> Interp.Afarr (Array.copy a)
      | Interp.Aiarr a -> Interp.Aiarr (Array.copy a)
      | (Interp.Aint _ | Interp.Aflt _) as x -> x)
    args

let tune ?(target = Fp.F32) ?mode ?builtins ?(jobs = 1) ~prog ~func ~args
    ~threshold () =
  let executions = Atomic.make 0 in
  let run config =
    Atomic.incr executions;
    (* Metered compilation (counters are per-run, dropped here) so the
       cache key space is shared with Tuner.evaluate: the reference and
       the finally chosen configuration compile once across the whole
       tuning run. Argument copies keep concurrent runs independent. *)
    let compiled =
      Compile_cache.compile ?builtins ?mode ~meter:true ~config ~prog ~func ()
    in
    Compile.run_float compiled (copy_args args)
  in
  let reference = run Config.double in
  let error_of vars =
    let config = Config.demote_all Config.double vars target in
    Float.abs (run config -. reference)
  in
  let candidates = Tuner.float_variables (Ast.func_exn prog func) in
  let chosen =
    if error_of candidates <= threshold then candidates
    else begin
      (* Individual probing: every candidate's solo demotion error is an
         independent execution — one parallel batch. *)
      let individual =
        Pool.parallel_map ~jobs (fun v -> (v, error_of [ v ])) candidates
        |> List.filter (fun (_, e) -> e <= threshold)
        |> List.sort (fun (_, a) (_, b) -> compare a b)
      in
      (* Greedy growth, batched per round by speculation: round k
         evaluates in parallel the prefix trials [chosen @ pending_1..i]
         for every pending candidate i, i.e. the trials the sequential
         greedy would run if every earlier candidate were accepted. Up
         to the first failure those are exactly the sequential trials;
         at a failure the failing candidate is dropped and the next
         round restarts from the survivors, so accepted sets are
         bit-identical to the one-at-a-time greedy for any [jobs] (the
         speculated trials past a failure are wasted executions — the
         price of the batch, counted like any other run). *)
      let rec grow chosen pending =
        match pending with
        | [] -> chosen
        | _ ->
            let prefixes =
              List.rev
                (fst
                   (List.fold_left
                      (fun (acc, trial) (v, _) ->
                        let trial = trial @ [ v ] in
                        ((v, trial) :: acc, trial))
                      ([], chosen) pending))
            in
            let errs =
              Pool.parallel_map ~jobs (fun (_, trial) -> error_of trial) prefixes
            in
            let rec accept chosen pend errs =
              match (pend, errs) with
              | [], _ | _, [] -> (chosen, [])
              | (v, _) :: pend', e :: errs' ->
                  if e <= threshold then accept (chosen @ [ v ]) pend' errs'
                  else (chosen, pend')
            in
            let chosen', rest = accept chosen pending errs in
            grow chosen' rest
      in
      grow [] individual
    end
  in
  let config = Config.demote_all Config.double chosen target in
  let evaluation =
    Tuner.evaluate ?builtins ?mode ~jobs ~prog ~func ~args config
  in
  {
    demoted = chosen;
    executions = Atomic.get executions;
    evaluation;
    threshold;
  }
