open Cheffp_ir
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp
module Cost = Cheffp_precision.Cost
module Pool = Cheffp_util.Pool
module Trace = Cheffp_obs.Trace

type outcome = {
  demoted : string list;
  executions : int;
  batched_runs : int;
  evaluation : Tuner.evaluation;
  modelled_error : float;
  measured_error : float option;
  threshold : float;
}

let copy_args args =
  List.map
    (function
      | Interp.Afarr a -> Interp.Afarr (Array.copy a)
      | Interp.Aiarr a -> Interp.Aiarr (Array.copy a)
      | (Interp.Aint _ | Interp.Aflt _) as x -> x)
    args

let tune ?(target = Fp.F32) ?mode ?builtins ?(jobs = 1) ?batch ?measure ~prog
    ~func ~args ~threshold () =
  Trace.with_span "search.tune" @@ fun () ->
  if Trace.enabled () then begin
    Trace.add_attr "func" (Trace.Str func);
    Trace.add_attr "threshold" (Trace.Float threshold);
    Trace.add_attr "jobs" (Trace.Int jobs);
    match batch with
    | Some lanes -> Trace.add_attr "batch" (Trace.Int lanes)
    | None -> ()
  end;
  let executions = Atomic.make 0 in
  let batched_runs = Atomic.make 0 in
  let run config =
    Atomic.incr executions;
    (* Metered compilation (counters are per-run, dropped here) so the
       cache key space is shared with Tuner.evaluate: the reference and
       the finally chosen configuration compile once across the whole
       tuning run. Argument copies keep concurrent runs independent. *)
    let compiled =
      Compile_cache.compile ?builtins ?mode ~meter:true ~config ~prog ~func ()
    in
    Trace.with_span "run" (fun () -> Compile.run_float compiled (copy_args args))
  in
  let reference =
    Trace.with_span "search.reference" (fun () -> run Config.double)
  in
  (* Per-candidate spans carry the probed variable set and its observed
     error; they run inside pool workers and nest under the batch's
     phase span. *)
  let error_of ?(span = "search.candidate") vars =
    Trace.with_span span @@ fun () ->
    if Trace.enabled () then
      Trace.add_attr "vars" (Trace.Str (String.concat "," vars));
    let config = Config.demote_all Config.double vars target in
    let e = Float.abs (run config -. reference) in
    if Trace.enabled () then Trace.add_attr "error" (Trace.Float e);
    e
  in
  (* Errors of a list of candidate variable-sets at once. With [batch]
     set this is the searched-for hot path: n sets evaluate as ⌈n/K⌉
     lane sweeps of one configuration-generic compilation instead of n
     scalar compile+run pairs. [executions] still counts one per set
     (program-runs-equivalent, keeping the Precimonious comparison
     honest); [batched_runs] counts the sweeps. Per-set observability
     drops from spans to events — the sets inside one sweep have no
     meaningful individual duration. *)
  let errors_of_sets sets =
    match batch with
    | Some lanes when lanes > 1 && List.length sets > 1 ->
        let n = List.length sets in
        let configs =
          List.map
            (fun vars -> Config.demote_all Config.double vars target)
            sets
        in
        ignore (Atomic.fetch_and_add executions n);
        ignore (Atomic.fetch_and_add batched_runs ((n + lanes - 1) / lanes));
        let b = Compile_cache.compile_batch ?builtins ?mode ~prog ~func () in
        let fallback config =
          Compile_cache.compile ?builtins ?mode ~meter:true ~config ~prog
            ~func ()
        in
        let vals = Batch.run_many ~jobs ~lanes ~fallback b ~configs args in
        List.map2
          (fun vars v ->
            let e = Float.abs (v -. reference) in
            Trace.event "search.candidate"
              ~attrs:
                [
                  ("vars", Trace.Str (String.concat "," vars));
                  ("error", Trace.Float e);
                ];
            e)
          sets vals
    | _ -> Pool.parallel_map ~jobs (fun vars -> error_of vars) sets
  in
  let candidates = Tuner.float_variables (Ast.func_exn prog func) in
  let chosen =
    if error_of ~span:"search.all_demoted" candidates <= threshold then
      candidates
    else begin
      (* Individual probing: every candidate's solo demotion error is an
         independent execution — one parallel batch. *)
      let individual =
        Trace.with_span "search.probe" (fun () ->
            List.combine candidates
              (errors_of_sets (List.map (fun v -> [ v ]) candidates)))
        |> List.filter (fun (_, e) -> e <= threshold)
        |> List.sort (fun (_, a) (_, b) -> compare a b)
      in
      (* Greedy growth, batched per round by speculation: round k
         evaluates in parallel the prefix trials [chosen @ pending_1..i]
         for every pending candidate i, i.e. the trials the sequential
         greedy would run if every earlier candidate were accepted. Up
         to the first failure those are exactly the sequential trials;
         at a failure the failing candidate is dropped and the next
         round restarts from the survivors, so accepted sets are
         bit-identical to the one-at-a-time greedy for any [jobs] (the
         speculated trials past a failure are wasted executions — the
         price of the batch, counted like any other run). *)
      let rec grow chosen pending =
        match pending with
        | [] -> chosen
        | _ ->
            let prefixes =
              List.rev
                (fst
                   (List.fold_left
                      (fun (acc, trial) (v, _) ->
                        let trial = trial @ [ v ] in
                        ((v, trial) :: acc, trial))
                      ([], chosen) pending))
            in
            let errs =
              Trace.with_span "search.grow" (fun () ->
                  if Trace.enabled () then
                    Trace.add_attr "pending" (Trace.Int (List.length pending));
                  errors_of_sets (List.map snd prefixes))
            in
            let rec accept chosen pend errs =
              match (pend, errs) with
              | [], _ | _, [] -> (chosen, [])
              | (v, _) :: pend', e :: errs' ->
                  if e <= threshold then accept (chosen @ [ v ]) pend' errs'
                  else (chosen, pend')
            in
            let chosen', rest = accept chosen pending errs in
            grow chosen' rest
      in
      grow [] individual
    end
  in
  let config = Config.demote_all Config.double chosen target in
  let evaluation =
    Tuner.evaluate ?builtins ?mode ~jobs ~prog ~func ~args config
  in
  (* Cross-check the searched configuration against the CHEF-FP error
     model: one gradient-augmented execution (not counted in
     [executions] — it is the analysis the search baseline is compared
     against) whose per-variable contributions are summed over the
     chosen set. *)
  let modelled_error =
    let est =
      Estimate.estimate_error ~model:(Model.adapt ~target ()) ?builtins ~prog
        ~func ()
    in
    let report = Estimate.run est (copy_args args) in
    List.fold_left
      (fun acc v ->
        acc
        +. Option.value ~default:0.
             (List.assoc_opt v report.Estimate.per_variable))
      0. chosen
  in
  (* Ground-truth cross-check of the chosen configuration, when the
     caller supplied one (the shadow oracle lives in a library above
     this one; see the .mli). Traced like any other phase. *)
  let measured_error =
    Option.map
      (fun m ->
        Trace.with_span "search.measure" (fun () ->
            let e = m config in
            if Trace.enabled () then Trace.add_attr "error" (Trace.Float e);
            e))
      measure
  in
  {
    demoted = chosen;
    executions = Atomic.get executions;
    batched_runs = Atomic.get batched_runs;
    evaluation;
    modelled_error;
    measured_error;
    threshold;
  }
