(** Search-based mixed-precision tuning baseline (Precimonious-style).

    The paper's introduction motivates AD-based analysis by the cost of
    search: "search-based approaches are very expensive as the state
    space is significantly large" (§I, citing Precimonious and CRAFT).
    This module implements such a baseline so the claim is measurable:
    a delta-debugging-flavoured greedy search that explores variable
    subsets and validates {e every} candidate configuration by actually
    executing the program, counting executions as it goes.

    The algorithm (a simplified Precimonious):
    + run the reference (1 execution);
    + try the all-demoted configuration — if it validates, done;
    + measure each variable's individual demotion error (n executions);
    + greedily grow the demotion set in ascending individual-error
      order, validating each step by execution (up to n more);
    + drop candidates that fail and continue.

    Contrast with {!Tuner.tune}: one CHEF-FP analysis (a single
    gradient-augmented execution) plus one validation run. The
    [ablation-search] benchmark compares executions, configurations and
    speedups on the paper's workloads. *)

open Cheffp_ir
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp

type outcome = {
  demoted : string list;
  executions : int;
      (** program runs the search consumed, in program-runs-equivalent:
          a lane of a batched sweep counts like a scalar run, so the
          number is comparable across [batch] settings (and to
          Precimonious-style cost accounting) *)
  batched_runs : int;
      (** lane sweeps executed when [batch] was set ([0] otherwise);
          each replaced up to K entries of [executions] *)
  evaluation : Tuner.evaluation;
  modelled_error : float;
      (** CHEF-FP estimate for the chosen set: the per-variable error
          contributions of one gradient-augmented execution (not counted
          in [executions]) summed over [demoted] — the model the search
          baseline is compared against. *)
  measured_error : float option;
      (** ground-truth error of the chosen configuration from the
          [measure] callback (shadow execution against the double-double
          reference), when one was supplied *)
  threshold : float;
}

val tune :
  ?target:Fp.format ->
  ?mode:Config.rounding_mode ->
  ?builtins:Builtins.t ->
  ?jobs:int ->
  ?batch:int ->
  ?measure:(Config.t -> float) ->
  prog:Ast.program ->
  func:string ->
  args:Interp.arg list ->
  threshold:float ->
  unit ->
  outcome
(** The returned configuration always satisfies [threshold] (it is
    validated by construction).

    [batch] (default off; [Some k] with [k >= 2] enables) evaluates the
    probe and growth candidates through {!Cheffp_ir.Batch}: the n
    per-candidate runs of a phase become ⌈n/k⌉ lane sweeps of one
    configuration-generic compilation, composed with [jobs] (sweeps fan
    out across domains). Per-lane results are bit-identical to the
    scalar runs, so the outcome (demoted set, evaluation, executions)
    is unchanged — lanes that diverge from shared control flow are
    transparently re-run scalar. The reference run, the all-demoted
    shortcut and the final {!Tuner.evaluate} stay scalar (one or two
    configurations are below the batching break-even).

    [measure], when given, is called once with the chosen configuration
    (not counted in [executions]); `Cheffp_shadow` lives above this
    library in the dependency order, so callers that want a
    ground-truth column pass [Oracle]/[Shadow] through this hook — the
    CLI's [search] command and the bench harness both do.

    [jobs] (default 1) fans the candidate evaluations out across that
    many domains ({!Cheffp_util.Pool}): the individual-probe phase is
    one parallel batch, and the greedy-growth phase is batched per
    round by speculating that every earlier candidate of the round is
    accepted — wrong speculations are dropped (their runs still count
    in [executions]) and the round restarts after the failure, so the
    outcome (demoted set, evaluation, executions) is bit-identical for
    every [jobs] value. Compilations go through {!Compile_cache}, so
    configurations revisited across the run compile once. *)
