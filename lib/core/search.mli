(** Search-based mixed-precision tuning baseline (Precimonious-style),
    with profile-guided acceleration.

    The paper's introduction motivates AD-based analysis by the cost of
    search: "search-based approaches are very expensive as the state
    space is significantly large" (§I, citing Precimonious and CRAFT).
    This module implements such a baseline so the claim is measurable —
    a delta-debugging-flavoured greedy search that explores variable
    subsets and validates candidate configurations by actually
    executing the program, counting executions as it goes — and then
    turns the paper's own insight back on the baseline: one
    gradient-augmented run ({!Profile}) scores {e every} candidate
    configuration in O(#vars), so most of the search's executions can
    be predicted instead of performed.

    The measured algorithm (a simplified Precimonious):
    + run the reference (1 execution);
    + try the all-demoted configuration — if it validates, done;
    + measure each variable's individual demotion error (n executions);
    + greedily grow the demotion set in ascending individual-error
      order, validating each step by execution (up to n more);
    + drop candidates that fail and continue.

    Contrast with {!Tuner.tune}: one CHEF-FP analysis (a single
    gradient-augmented execution) plus one validation run. The
    [ablation-search] benchmark compares executions, configurations and
    speedups on the paper's workloads. *)

open Cheffp_ir
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp

type strategy = [ `Measured | `Modelled | `Hybrid ]
(** How candidate configurations are judged:
    - [`Measured]: every candidate is executed (the pure Precimonious
      baseline of earlier revisions);
    - [`Modelled]: zero candidate executions — one augmented profile
      run scores everything, the chosen set is the greedy
      ascending-atom selection under half the threshold (the same
      Source-mode headroom {!Tuner.tune}'s default margin budgets),
      with overflow vetoes answered from the profile's value ranges;
    - [`Hybrid] (the default): every accept/drop decision still comes
      from a measured (or batched) run — the model only spends the
      executions whose results cannot influence those decisions: the
      all-demoted shortcut when the model rejects it with
      [prune_margin] to spare, and the speculation tails of greedy
      rounds (capped trials are deferred, not dropped, so a wrong
      model costs executions rather than correctness). The chosen set
      is bit-identical to [`Measured]'s; skipped runs are counted in
      [runs_avoided]. *)

val strategy_name : strategy -> string
(** ["measured"] / ["modelled"] / ["hybrid"]. *)

val strategy_of_string : string -> strategy option
(** Inverse of {!strategy_name}; [None] on anything else. *)

type outcome = {
  demoted : string list;
  executions : int;
      (** program runs the search consumed, in program-runs-equivalent:
          a lane of a batched sweep counts like a scalar run, so the
          number is comparable across [batch] settings (and to
          Precimonious-style cost accounting) *)
  batched_runs : int;
      (** lane sweeps executed when [batch] was set ([0] otherwise);
          each replaced up to K entries of [executions] *)
  runs_avoided : int;
      (** candidate executions the error-atom profile predicted away
          ([0] under [`Measured]; the whole candidate space under
          [`Modelled]). Under [`Hybrid] the count is exact:
          [executions + runs_avoided] equals what [`Measured] would
          have executed, as long as the all-demoted shortcut's margin
          holds. Also accumulated in the [search.runs_avoided]
          counter. *)
  pruned : int;
      (** candidate executions replaced by rigorous certificates from
          the [prune_bound] callback ([0] without one). Each pruned
          run is an {e accept} the measured search must also reach, so
          the invariant extends to
          [executions + runs_avoided + pruned] equals the [`Measured]
          total. Also accumulated in the [search.pruned_total]
          counter. *)
  strategy : strategy;  (** the strategy that produced this outcome *)
  evaluation : Tuner.evaluation;
  modelled_error : float;
      (** CHEF-FP estimate for the chosen set: {!Profile.score} of the
          chosen configuration — a dot product against the error atoms
          of the one gradient-augmented execution every strategy
          already performs (not counted in [executions]) *)
  measured_error : float option;
      (** ground-truth error of the chosen configuration from the
          [measure] callback (shadow execution against the double-double
          reference), when one was supplied *)
  threshold : float;
  samples : int;
      (** Monte-Carlo inputs per candidate evaluation when [sampling]
          was set; [0] for single-point tuning *)
}

type sampling = { inputs : Interp.arg list array; quantile : float }
(** Quantile-targeted tuning: judge each candidate configuration by the
    [quantile] (e.g. [0.99] for p99) of its measured error over
    [inputs] — an array of sampled argument vectors, typically
    {!Sampling.draw_many} over the FPCore [:pre] box — instead of by
    its error at the single base point. *)

val tune :
  ?target:Fp.format ->
  ?mode:Config.rounding_mode ->
  ?builtins:Builtins.t ->
  ?jobs:int ->
  ?batch:int ->
  ?sampling:sampling ->
  ?measure:(Config.t -> float) ->
  ?strategy:strategy ->
  ?prune_margin:float ->
  ?prune_bound:(string list -> float option) ->
  prog:Ast.program ->
  func:string ->
  args:Interp.arg list ->
  threshold:float ->
  unit ->
  outcome
(** Under [`Measured] and [`Hybrid] the returned configuration always
    satisfies [threshold] (every accept is validated by execution).
    Under [`Modelled] the selection is model-validated only — the
    embedded {!Tuner.evaluate} reports the measured error of the chosen
    configuration (its two runs are the strategy's only confirmation
    executions), and callers wanting a hard guarantee check
    [evaluation.actual_error] (the [validate] command and the
    model-soundness tests do exactly that).

    Every strategy begins by building (or fetching from the shared
    compile-cache LRU, see {!Profile.build_cached}) the error-atom
    profile of [(prog, func, args)] — one gradient-augmented execution,
    not counted in [executions].

    [strategy] defaults to [`Hybrid]. [prune_margin] (default [64.],
    must be [>= 1]; [Invalid_argument] otherwise) is the factor by
    which a candidate set's modelled error must clear [threshold]
    before [`Hybrid] treats the model's rejection as actionable. Two
    sites act on it, chosen so that a wrong rejection is either
    impossible to hit within the margin or cannot corrupt the result:
    + the {e all-demoted shortcut}: when the model rejects the full
      candidate set, its single certain-to-fail run is skipped. This is
      the one margin-trusting skip — on every paper benchmark the
      model's overestimate of the all-demoted error is well above
      [64x], and the model-smoke test asserts the resulting sets stay
      identical to [`Measured]'s;
    + the {e greedy rounds}: prefix sets within a round are nested, so
      their scores are monotone and the first rejection caps the
      round's speculation depth (never below one trial). A capped
      trial is deferred to the next round, not treated as a failure,
      so the accept/drop decisions — and the chosen set — are
      bit-identical to [`Measured] {e unconditionally}; only the
      post-failure speculation waste is saved, and only counted as
      avoided when the round's last measured trial did fail.
    Individual probes are never pruned: a solo score can overestimate
    measured error without bound (exactly-representable stores,
    self-correcting iterations like HPCCG's CG loop — DESIGN.md §12),
    so no margin both fires and stays safe.

    [prune_bound], when given, must return a {e certified} upper bound
    on the measured error of demoting exactly the given variable list
    to [target] (or [None] when it cannot vouch for that set) —
    [Cheffp_range.Range.pruner] is the intended implementation, passed
    from above because the rigorous-range library sits higher in the
    dependency order (exactly like [measure]). It is only ever used to
    {e accept} without executing, at the two sites where a certified
    accept is a decision the measured search must reach anyway: the
    all-demoted shortcut (bound below [threshold] — search over,
    zero candidate executions) and the longest certified prefix of each
    greedy round (prefixes are nested, so certified bounds are
    monotone). Rejections always stay measured, so an over-wide bound
    costs nothing and a tight one only removes runs whose outcome is
    forced: the chosen set stays bit-identical for any callback, and
    each certificate counts in [pruned] (see DESIGN.md §17).

    [batch] (default off; [Some k] with [k >= 2] enables) evaluates the
    probe and growth candidates through {!Cheffp_ir.Batch}: the n
    per-candidate runs of a phase become ⌈n/k⌉ lane sweeps of one
    configuration-generic compilation, composed with [jobs] (sweeps fan
    out across domains). Per-lane results are bit-identical to the
    scalar runs, so the outcome (demoted set, evaluation, executions)
    is unchanged — lanes that diverge from shared control flow are
    transparently re-run scalar. The reference run, the all-demoted
    shortcut and the final {!Tuner.evaluate} stay scalar (one or two
    configurations are below the batching break-even). Speculation caps
    compose with batching: a capped round simply sweeps fewer lanes.

    [sampling] (default off) switches [`Measured]/[`Hybrid] candidate
    judgement from single-point to quantile-targeted: the double
    reference becomes one input sweep over [sampling.inputs] (computed
    once, shared across all candidates), and each candidate's error is
    the [sampling.quantile] of its per-sample |deviation| — evaluated
    through the batched {e input-sweep} axis
    ({!Cheffp_ir.Batch.run_inputs_many}, lane width from [batch] when
    [>= 2], else the default), fanned over [jobs] domains. A
    configuration that is fine at the box midpoint but violates the
    threshold in a tail now fails its accept, so the chosen demotion
    set can legitimately differ from single-point tuning (the
    [@dist-smoke] bench asserts it does on at least one workload).
    Accounting stays in set units — one candidate evaluation is one
    [execution] regardless of sample count, so the
    [`Hybrid]-vs-[`Measured] invariant is mode-independent, and lane
    sweeps land in [batched_runs] (⌈samples/lanes⌉ per evaluation).
    [`Modelled] ignores [sampling] (its scores come from the one
    profiled point). [Invalid_argument] on an empty [inputs] or a
    quantile outside [0, 1].

    [measure], when given, is called once with the chosen configuration
    (not counted in [executions]); `Cheffp_shadow` lives above this
    library in the dependency order, so callers that want a
    ground-truth column pass [Oracle]/[Shadow] through this hook — the
    CLI's [search] command and the bench harness both do.

    [jobs] (default 1) fans the candidate evaluations out across that
    many domains ({!Cheffp_util.Pool}): the individual-probe phase is
    one parallel batch, and the greedy-growth phase is batched per
    round by speculating that every earlier candidate of the round is
    accepted — wrong speculations are dropped (their runs still count
    in [executions]) and the round restarts after the failure, so the
    outcome (demoted set, evaluation, executions) is bit-identical for
    every [jobs] value. Compilations go through {!Compile_cache}, so
    configurations revisited across the run compile once.

    Observability: the [search.tune] span carries [strategy] and
    [runs_avoided] attributes; model-scoring phases record
    [search.model_score] spans (with [scored]/[cut] counts); avoided
    runs accumulate in the [search.runs_avoided] counter; the profile
    build/fetch traces as {!Profile.build} documents. *)
