(** CHEF-FP's Error Estimation Module (paper §III, Algorithm 1).

    [estimate_error] is the analogue of [clad::estimate_error(func)]: it
    differentiates the target function in adjoint mode and, through the
    {!Cheffp_ad.Reverse} hook seam, splices error-estimation statements
    into the generated backward sweep — one [AssignError] per
    differentiated assignment, a running total, and a [FinalizeEE] that
    writes the total into an extra [out _fp_error] parameter (rules
    S1–S2). The augmented adjoint is then optimized and closure-compiled,
    so the error machinery rides the same fast path as the derivative
    code: this inlining is the paper's key performance claim.

    Per-variable attribution and per-iteration sensitivity tracking are
    implemented as calls from generated code into a runtime registry
    (integer-id keyed), enabled on demand. *)

open Cheffp_ir

exception Error of string

type t
(** A prepared analysis: generated source + compiled form + registry. *)

type options = {
  per_variable : bool;
      (** attribute errors to source variables (default true) *)
  track_iterations : [ `No | `Outermost | `Innermost | `Loop of string ];
      (** also record per-loop-iteration sensitivity [|v * dv|] keyed by
          the chosen enclosing loop counter — the outermost, the
          innermost, or a specific loop variable by name (statements
          outside that loop are not tracked). Default [`No]; [`Loop]
          drives the paper's Fig. 9 heatmap. *)
  track_ranges : bool;
      (** record the min/max value every variable takes (default false;
          the tuner uses it to veto demotions that would overflow the
          narrow format) *)
  use_activity : bool;  (** skip provably-inactive adjoint code *)
  optimize : bool;  (** run the optimizer on the generated function *)
  accumulation : [ `Absolute | `Signed ];
      (** [`Absolute] (default) sums |AssignError| — an upper-bound-style
          estimate. [`Signed] sums the raw signed terms, turning a signed
          model (e.g. {!Model.adapt}) into a first-order {e prediction}
          of the demoted-minus-double difference, in the spirit of
          Langlois' CENA correction method. The per-variable signed term
          predicts a single non-recurrent variable's demotion effect
          exactly (tested); self-accumulating variables diverge from the
          reference trajectory after their first rounding, so their
          prediction is order-of-magnitude only — the reason CENA
          instruments the perturbed execution itself. Meaningless for
          inherently unsigned models like {!Model.taylor}. *)
}

val default_options : options

val estimate_error :
  ?model:Model.t ->
  ?options:options ->
  ?deriv:Cheffp_ad.Deriv.t ->
  ?builtins:Builtins.t ->
  prog:Ast.program ->
  func:string ->
  unit ->
  t
(** [model] defaults to {!Model.taylor}[ ()]. [builtins] is the registry
    the analysis executes with; a fresh default registry is created if
    omitted (the model's externals and the registry callbacks are added
    to it). @raise Error if the function cannot be differentiated. *)

type report = {
  total_error : float;
      (** the estimate written by FinalizeEE plus the input terms of the
          model (parameters are never assigned inside the function, so
          their Eq.-2 contribution is added from the computed gradient) *)
  gradients : (string * float) list;
      (** derivative of the result w.r.t. each float scalar parameter *)
  array_gradients : (string * float array) list;
      (** derivative buffers for float array parameters *)
  per_variable : (string * float) list;
      (** accumulated error per source variable, largest first *)
  per_iteration : (string * (int * float) list) list;
      (** per variable: (iteration, accumulated sensitivity) pairs *)
  ranges : (string * (float * float)) list;
      (** observed (min, max) per variable when [track_ranges]; inputs
          are always included *)
  stack_peak_bytes : int;
  analysis_bytes : int;
      (** deterministic peak-memory account: value stacks + adjoint and
          derivative storage *)
}

val run : t -> Interp.arg list -> report
(** Execute the analysis on the original function's arguments (the
    derivative and error outputs are appended automatically: array
    derivative buffers are allocated to match input lengths). Can be
    called repeatedly; the registry is reset on each call. *)

val run_sampled :
  t -> plan:Sampling.plan -> seed:int64 -> samples:int -> Quantile.summary
(** Monte-Carlo view of the {e modelled} estimate: runs the analysis at
    [samples] input vectors drawn from [plan] (sample [i] from
    [Rng.substream seed i], same determinism contract as
    {!Sampling.draw}) and reduces the [total_error] stream to
    p50/p95/p99/max. Sequential — the instrumentation registry is
    per-analysis mutable state — so cost is [samples] scalar analysis
    runs; use {!Sampling.measured_summary} for the batched measured-error
    path. @raise Invalid_argument when [samples < 1]. *)

val generated : t -> Ast.func
(** The augmented adjoint, pretty-printable with {!Cheffp_ir.Pp}. *)

val program : t -> Ast.program
(** The input program extended with {!generated}. *)

val run_interpreted : t -> Interp.arg list -> report
(** Like {!run} but through the reference interpreter instead of the
    closure compiler; used by tests and the inlining ablation. *)
