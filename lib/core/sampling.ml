open Cheffp_ir
module Config = Cheffp_precision.Config
module Rng = Cheffp_util.Rng
module Metrics = Cheffp_obs.Metrics

exception Spec_error of string

let spec_fail fmt = Format.kasprintf (fun s -> raise (Spec_error s)) fmt

type dist =
  | Fixed of float
  | Uniform of { lo : float; hi : float }
  | Normal of { mu : float; sigma : float }

let dist_to_string = function
  | Fixed v -> Printf.sprintf "fixed:%g" v
  | Uniform { lo; hi } -> Printf.sprintf "uniform:%g,%g" lo hi
  | Normal { mu; sigma } -> Printf.sprintf "normal:%g,%g" mu sigma

let float_of_spec s =
  match float_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> spec_fail "bad number %S in distribution spec" s

let dist_of_string s =
  match String.index_opt s ':' with
  | None -> spec_fail "bad distribution %S (want kind:params)" s
  | Some i -> (
      let kind = String.sub s 0 i
      and rest = String.sub s (i + 1) (String.length s - i - 1) in
      let params = String.split_on_char ',' rest in
      match (kind, params) with
      | "fixed", [ v ] -> Fixed (float_of_spec v)
      | "uniform", [ lo; hi ] ->
          let lo = float_of_spec lo and hi = float_of_spec hi in
          if not (hi > lo) then
            spec_fail "uniform:%g,%g needs lo < hi" lo hi;
          Uniform { lo; hi }
      | "normal", [ mu; sigma ] ->
          let mu = float_of_spec mu and sigma = float_of_spec sigma in
          if not (sigma > 0.) then spec_fail "normal needs sigma > 0";
          Normal { mu; sigma }
      | _, _ ->
          spec_fail
            "bad distribution %S (want fixed:v | uniform:lo,hi | \
             normal:mu,sigma)"
            s)

(* "x=uniform:0,1 y=normal:0,2" — entries separated by ';' or
   whitespace, each NAME=DIST. *)
let dists_of_string spec =
  String.split_on_char ';' spec
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map (fun entry ->
         let entry = String.trim entry in
         match String.index_opt entry '=' with
         | Some i ->
             ( String.sub entry 0 i,
               dist_of_string
                 (String.sub entry (i + 1) (String.length entry - i - 1)) )
         | None -> spec_fail "bad entry %S in --dist (want name=dist)" entry)

(* ------------------------------------------------------------------ *)
(* Sampling plans.                                                     *)

(* The default box around a base value: +/- 50% of its magnitude. At
   zero a relative box degenerates (+/- 0.5 barely leaves the origin,
   and scaling it by the base magnitude would collapse it to a point),
   so zero-valued defaults get the absolute interval [-1, 1] instead —
   sweeps and range boxes stay non-trivial there. Used when neither an
   explicit distribution nor an FPCore :pre range constrains the
   variable; {!Cheffp_range.Box.default_iv} mirrors the same rule. *)
let default_box v =
  let d = if v = 0. then 1.0 else 0.5 *. Float.abs v in
  Uniform { lo = v -. d; hi = v +. d }

type slot =
  | Sfixed of Interp.arg  (** integers, int arrays, out params: pass through *)
  | Sscalar of dist  (** float scalar drawn per sample *)
  | Sarray of float array * [ `Dist of dist | `Relative of float ]
      (** float array: every element drawn per sample, either from one
          explicit distribution or from the default box around its base
          value *)

type plan = { slots : (string * slot) list }

let plan ?(dists = []) ?(ranges = []) ~(func : Ast.func)
    ~(args : Interp.arg list) () =
  if List.length args <> List.length func.params then
    spec_fail "function %S expects %d arguments, got %d" func.fname
      (List.length func.params) (List.length args);
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun p -> p.Ast.pname = name) func.params) then
        spec_fail "--dist names unknown parameter %S of %S" name func.fname)
    dists;
  let slots =
    List.map2
      (fun (p : Ast.param) arg ->
        let name = p.pname in
        let slot =
          match (p.pmode, p.pty, arg) with
          | Ast.Out, _, _ -> Sfixed arg
          | Ast.In, Ast.Tscalar (Ast.Sflt _), Interp.Aflt v -> (
              match List.assoc_opt name dists with
              | Some d -> Sscalar d
              | None -> (
                  match List.assoc_opt name ranges with
                  | Some (Some lo, Some hi) when hi > lo ->
                      Sscalar (Uniform { lo; hi })
                  | _ -> Sscalar (default_box v)))
          | Ast.In, Ast.Tarr (Ast.Sflt _), Interp.Afarr a -> (
              match List.assoc_opt name dists with
              | Some d -> Sarray (Array.copy a, `Dist d)
              | None -> Sarray (Array.copy a, `Relative 0.5))
          | _, _, a -> Sfixed a
        in
        (name, slot))
      func.params args
  in
  { slots }

let describe plan =
  List.map
    (fun (name, slot) ->
      ( name,
        match slot with
        | Sfixed _ -> "fixed"
        | Sscalar d -> dist_to_string d
        | Sarray (a, `Dist d) ->
            Printf.sprintf "%s per element (%d)" (dist_to_string d)
              (Array.length a)
        | Sarray (a, `Relative f) ->
            Printf.sprintf "+/-%g%% per element (%d)" (f *. 100.)
              (Array.length a) ))
    plan.slots

(* The plan's per-parameter support, as plain pairs: the bridge the CLI
   and bench use to hand a sampling plan to the rigorous range analysis
   (lib/range sits beside lib/core in the dependency order, so neither
   can see the other's types). Normal draws have unbounded support — no
   finite box exists, and callers must not prune. *)
let box_view plan =
  List.map
    (fun (name, slot) ->
      ( name,
        match slot with
        | Sfixed a -> `Fixed a
        | Sscalar (Fixed v) -> `Interval (v, v)
        | Sscalar (Uniform { lo; hi }) -> `Interval (lo, hi)
        | Sscalar (Normal _) -> `Unbounded
        | Sarray (base, `Dist (Fixed v)) ->
            `Intervals (Array.map (fun _ -> (v, v)) base)
        | Sarray (base, `Dist (Uniform { lo; hi })) ->
            `Intervals (Array.map (fun _ -> (lo, hi)) base)
        | Sarray (_, `Dist (Normal _)) -> `Unbounded
        | Sarray (base, `Relative f) ->
            `Intervals
              (Array.map
                 (fun e ->
                   let d = if e = 0. then 1.0 else f *. Float.abs e in
                   (e -. d, e +. d))
                 base) ))
    plan.slots

let sampled_vars plan =
  List.filter_map
    (fun (name, slot) ->
      match slot with Sfixed _ -> None | _ -> Some name)
    plan.slots

(* ------------------------------------------------------------------ *)
(* Drawing. Sample [i] draws every parameter, in declaration order,
   from [Rng.substream seed i] — a pure function of (seed, i), so the
   stream is invariant to how samples are later chunked across lanes
   and pool domains (the determinism the fuzz suite pins). *)

let samples_c = Metrics.counter "sampling.samples_total"

let draw_dist rng = function
  | Fixed v -> v
  | Uniform { lo; hi } -> Rng.uniform rng ~lo ~hi
  | Normal { mu; sigma } -> Rng.gaussian rng ~mu ~sigma

let draw plan ~seed index =
  let rng = Rng.substream seed index in
  Metrics.incr samples_c;
  let rec go = function
    | [] -> []
    | (_, slot) :: rest ->
        let arg =
          match slot with
          | Sfixed (Interp.Afarr a) -> Interp.Afarr (Array.copy a)
          | Sfixed (Interp.Aiarr a) -> Interp.Aiarr (Array.copy a)
          | Sfixed x -> x
          | Sscalar d -> Interp.Aflt (draw_dist rng d)
          | Sarray (base, `Dist d) ->
              Interp.Afarr (Array.map (fun _ -> draw_dist rng d) base)
          | Sarray (base, `Relative f) ->
              Interp.Afarr
                (Array.map
                   (fun e ->
                     (* same zero-widening as [default_box]: a relative
                        box around a zero element is degenerate *)
                     let d = if e = 0. then 1.0 else f *. Float.abs e in
                     Rng.uniform rng ~lo:(e -. d) ~hi:(e +. d))
                   base)
        in
        arg :: go rest
  in
  go plan.slots

let draw_many plan ~seed n = Array.init n (fun i -> draw plan ~seed i)

(* ------------------------------------------------------------------ *)
(* Input sweeps: the batched hot path.                                 *)

let sweep ?(jobs = 1) ?(lanes = Batch.default_sweep_lanes) ?builtins ?mode ~prog
    ~func ~config inputs =
  let b = Compile_cache.compile_sweep ?builtins ?mode ~prog ~func () in
  let fallback config =
    Compile_cache.compile ?builtins ?mode ~meter:true ~config ~prog ~func ()
  in
  Batch.run_inputs_many ~jobs ~lanes ~fallback b ~config inputs

let measured_errors ?jobs ?lanes ?builtins ?mode ?reference ~prog ~func
    ~config inputs =
  let reference =
    match reference with
    | Some r ->
        if Array.length r <> Array.length inputs then
          invalid_arg
            (Printf.sprintf
               "Sampling.measured_errors: reference length mismatch (%d <> %d)"
               (Array.length r) (Array.length inputs));
        r
    | None ->
        sweep ?jobs ?lanes ?builtins ?mode ~prog ~func ~config:Config.double
          inputs
  in
  let vals = sweep ?jobs ?lanes ?builtins ?mode ~prog ~func ~config inputs in
  (Array.map2 (fun v r -> Float.abs (v -. r)) vals reference, reference)

let measured_summary ?jobs ?lanes ?builtins ?mode ?reference ~prog ~func
    ~config inputs =
  let errs, reference =
    measured_errors ?jobs ?lanes ?builtins ?mode ?reference ~prog ~func
      ~config inputs
  in
  (Quantile.summary_of_array errs, reference)
