(** Error-atom profiles: one gradient-augmented execution, scored for
    every mixed-precision configuration in O(#vars).

    CHEF-FP's core claim is that a {e single} augmented run yields
    per-variable error contributions; the first-order Taylor model
    (Eq. 1) makes those contributions {e precision-independent} up to a
    scalar: the error charged to variable [v] under target format [fmt]
    is [eps(fmt) * Σ |v|·|dv|], where the sum runs over every
    assignment to [v] (plus the input term for parameters). This module
    runs the augmented adjoint once with the eps-factored {!Model.atom}
    model, records each variable's {e atom} [A(v) = Σ |v|·|dv|] and its
    observed value range (for overflow vetoes), and then answers
    configuration queries as dot products:

    [score profile cfg = Σ_v A(v) * eps_rel(format_of cfg v)]

    where [eps_rel] is the unit roundoff of the variable's format for
    narrow formats and [0] for F64 — the score models error {e relative
    to the all-binary64 reference}, the quantity the search baseline
    measures. {!Search.tune}'s [`Modelled] and [`Hybrid] strategies and
    the profile-backed {!Tuner.tune} are built on this: the expensive
    augmented sweep is amortized into a reusable artifact, and every
    candidate configuration afterwards costs an O(#vars) fold instead
    of a program execution.

    The atoms are exact for [Extended]-mode rounding (one rounding per
    store, the estimate's own semantics); [Source] mode also rounds
    every {e operation} whose operands are narrow, so scores there
    carry the same factor-2-style headroom the tuner's margin covers
    (DESIGN.md §12).

    {!build_cached} memoizes profiles in the shared
    {!Cheffp_ir.Compile_cache} LRU, keyed by
    [(program digest, func, model, args digest)] — a whole tuning
    session, and every later session over the same inputs in the same
    process, pays for {e one} augmented run. *)

open Cheffp_ir
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp

type t

val build :
  ?deriv:Cheffp_ad.Deriv.t ->
  ?builtins:Builtins.t ->
  prog:Ast.program ->
  func:string ->
  args:Interp.arg list ->
  unit ->
  t
(** One {!Model.atom} analysis (reverse-AD generation + compile,
    memoized in {!Cheffp_ir.Compile_cache}) plus one augmented
    execution on [args], with range tracking on. Traced as a
    ["profile.build"] span; bumps the [profile.builds] counter.
    @raise Estimate.Error as {!Estimate.estimate_error} would. *)

val build_cached :
  ?deriv:Cheffp_ad.Deriv.t ->
  ?builtins:Builtins.t ->
  prog:Ast.program ->
  func:string ->
  args:Interp.arg list ->
  unit ->
  t
(** Like {!build}, but memoized in the shared compile-cache LRU under
    [(program digest, func, model name, args digest)] (builtins
    matched physically, like every cache entry). A hit skips the
    augmented run entirely and bumps the [profile.cache_hits]
    counter. *)

val of_atoms :
  ?ranges:(string * (float * float)) list ->
  func:string ->
  (string * float) list ->
  t
(** Synthetic profile from explicit [(variable, atom)] pairs — for
    tests and micro-benchmarks of the scoring fold itself. *)

val func : t -> string

val atoms : t -> (string * float) list
(** Every variable's precision-independent atom [A(v)], largest
    first. *)

val atom : t -> string -> float
(** [0.] for variables the profile never saw. *)

val ranges : t -> (string * (float * float)) list
(** Observed (min, max) per variable, as {!Estimate.report}'s
    [ranges]. *)

val total_atom : t -> float
(** [Σ_v A(v)]: the all-variables atom sum ([score] of a uniform
    demotion is [total_atom * eps]). *)

val score : t -> Config.t -> float
(** Modelled error of running under [cfg], relative to the all-F64
    reference: [Σ_v A(v) * eps_rel(format_of cfg v)] with
    [eps_rel F64 = 0]. O(#vars); no execution. *)

val score_vars : t -> target:Fp.format -> string list -> float
(** [score] of demoting exactly the listed variables to [target] (the
    candidate-set shape the search explores):
    [Σ_{v ∈ vars} A(v) * unit_roundoff target]. *)

val overflows : t -> target:Fp.format -> string -> bool
(** Whether the variable's observed range exceeds half of [target]'s
    largest finite value — the tuner's overflow veto, answerable from
    the profile without re-running the analysis. *)
