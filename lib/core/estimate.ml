open Cheffp_ir
open Ast
module Reverse = Cheffp_ad.Reverse
module Trace = Cheffp_obs.Trace

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type options = {
  per_variable : bool;
  track_iterations : [ `No | `Outermost | `Innermost | `Loop of string ];
  track_ranges : bool;
  use_activity : bool;
  optimize : bool;
  accumulation : [ `Absolute | `Signed ];
}

let default_options =
  {
    per_variable = true;
    track_iterations = `No;
    track_ranges = false;
    use_activity = false;
    optimize = true;
    accumulation = `Absolute;
  }

(* Runtime registry fed by generated [__chef_reg*] calls. *)
type registry = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable totals : float array;
  mutable lo : float array;
  mutable hi : float array;
  iters : (int * int, float ref) Hashtbl.t;
}

let registry_create () =
  {
    ids = Hashtbl.create 16;
    names = [||];
    totals = [||];
    lo = [||];
    hi = [||];
    iters = Hashtbl.create 64;
  }

let registry_id reg var =
  match Hashtbl.find_opt reg.ids var with
  | Some id -> id
  | None ->
      let id = Hashtbl.length reg.ids in
      Hashtbl.replace reg.ids var id;
      id

let registry_seal reg =
  let n = Hashtbl.length reg.ids in
  reg.names <- Array.make n "";
  Hashtbl.iter (fun name id -> reg.names.(id) <- name) reg.ids;
  reg.totals <- Array.make n 0.;
  reg.lo <- Array.make n Float.infinity;
  reg.hi <- Array.make n Float.neg_infinity

let registry_reset reg =
  Array.fill reg.totals 0 (Array.length reg.totals) 0.;
  Array.fill reg.lo 0 (Array.length reg.lo) Float.infinity;
  Array.fill reg.hi 0 (Array.length reg.hi) Float.neg_infinity;
  Hashtbl.reset reg.iters

(* The [__chef_reg*] runtime callbacks are registered in a builtins
   table that may be shared and long-lived (the serve daemon keeps one
   across all requests). They must not close over any particular
   estimate's registry: two estimates built against the same table
   would clobber each other's recordings — truncated attributions, or
   out-of-bounds ids when the programs differ. Instead the callbacks
   dispatch through a domain-local slot that [run] points at the
   executing estimate's registry for the duration of the execution
   (each execution stays on one domain, and pool workers run one task
   at a time, so the slot cannot be observed mid-swap). *)
let active_registry : registry option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_registry reg f =
  let slot = Domain.DLS.get active_registry in
  let saved = !slot in
  slot := Some reg;
  Fun.protect ~finally:(fun () -> slot := saved) f

let recording_registry () =
  match !(Domain.DLS.get active_registry) with
  | Some reg -> reg
  | None -> failwith "__chef_reg* called outside Estimate.run"

type t = {
  source_func : func;
  model : Model.t;
  accumulation : [ `Absolute | `Signed ];
  grad : func;
  prog : program;
  builtins : Builtins.t;
  compiled : Compile.t;
  registry : registry;
  scalar_grad_params : (string * string) list;  (** original -> adjoint out *)
  array_grad_params : (string * string) list;
  error_param : string;
  local_array_sizes : expr list;  (** of the generated function *)
  scalar_decl_count : int;
}

type report = {
  total_error : float;
  gradients : (string * float) list;
  array_gradients : (string * float array) list;
  per_variable : (string * float) list;
  per_iteration : (string * (int * float) list) list;
  ranges : (string * (float * float)) list;
  stack_peak_bytes : int;
  analysis_bytes : int;
}

let f64s = Sflt Cheffp_precision.Fp.F64

(* Span taxonomy (DESIGN.md §9): the one-off generation work is
   "estimate.build" with one child per phase — "estimate.ad" (reverse
   differentiation with the error hooks spliced in), "estimate.optimize",
   "estimate.typecheck", "estimate.compile" — and every execution of the
   generated analysis is "estimate.run". *)
let estimate_error_inner ?(model = Model.taylor ())
    ?(options = default_options) ?deriv ?builtins ~prog ~func () =
  let builtins =
    match builtins with Some b -> b | None -> Builtins.create ()
  in
  let registry = registry_create () in
  let acc_name = ref None in
  let get_acc (info : Reverse.info) =
    match !acc_name with
    | Some n -> n
    | None ->
        let n = info.Reverse.fresh "_chef_acc" in
        acc_name := Some n;
        n
  in
  let on_assign (ctx : Reverse.hook_ctx) =
    let info = ctx.Reverse.info in
    match (ctx.Reverse.lhs_base = info.Reverse.ret_var, ctx.Reverse.rhs) with
    | true, Var _ ->
        (* The synthetic return variable receiving a bare copy is not a
           user-level rounding event; charging it would double-count the
           error of the copied variable. *)
        []
    | _ ->
    let acc = get_acc info in
    let raw =
      model.Model.assign_error ~adj:(Var ctx.Reverse.adjoint_var)
        ~value:(Var ctx.Reverse.value_var) ~var:ctx.Reverse.lhs_base
    in
    let raw = Optimize.fold_expr raw in
    (* A model returning a literal zero for this variable contributes no
       code at all (Algorithm 2 leaves unmapped variables untouched). *)
    if raw = Fconst 0. then []
    else begin
      let e = info.Reverse.fresh "_e" in
      let id = registry_id registry ctx.Reverse.lhs_base in
      let contribution =
        match options.accumulation with
        | `Absolute -> Call ("fabs", [ raw ])
        | `Signed -> raw
      in
      [
        Decl { name = e; dty = Dscalar f64s; init = Some contribution };
        Assign (Lvar acc, Binop (Add, Var acc, Var e));
      ]
      @ (if options.per_variable then
           [ Call_stmt ("__chef_reg", [ Iconst id; Var e ]) ]
         else [])
      @ (if options.track_ranges then
           [ Call_stmt ("__chef_range", [ Iconst id; Var ctx.Reverse.value_var ]) ]
         else [])
      @
      match options.track_iterations with
      | `No -> []
      | (`Outermost | `Innermost | `Loop _) as which -> (
          let loops = ctx.Reverse.enclosing_loops in
          let counter =
            match which with
            | `Outermost -> (
                match List.rev loops with c :: _ -> Some c | [] -> None)
            | `Innermost -> ( match loops with c :: _ -> Some c | [] -> None)
            | `Loop name -> if List.mem name loops then Some name else None
          in
          match counter with
          | None -> []
          | Some c ->
              let sens =
                Call
                  ( "fabs",
                    [
                      Binop
                        (Mul, Var ctx.Reverse.adjoint_var, Var ctx.Reverse.value_var);
                    ] )
              in
              [ Call_stmt ("__chef_reg_iter", [ Iconst id; Var c; sens ]) ])
    end
  in
  let hooks =
    {
      Reverse.extra_params =
        [ { pname = "_fp_error"; pty = Tscalar f64s; pmode = Out } ];
      prologue =
        (fun info ->
          [ Decl { name = get_acc info; dty = Dscalar f64s; init = None } ]);
      on_assign;
      epilogue =
        (fun info ->
          let acc = get_acc info in
          [
            Assign (Lvar "_fp_error", Binop (Add, Var "_fp_error", Var acc));
          ]);
    }
  in
  let grad =
    try
      Trace.with_span "estimate.ad" (fun () ->
          Reverse.differentiate ?deriv ~hooks
            ~use_activity:options.use_activity prog func)
    with Reverse.Error m -> err "%s" m
  in
  registry_seal registry;
  (* Runtime callbacks. *)
  let reg_sig args =
    { Builtins.args; ret = Builtins.Kflt; cls = Cheffp_precision.Cost.Basic;
      approx = false }
  in
  Builtins.register builtins "__chef_reg"
    (reg_sig [ Builtins.Kint; Builtins.Kflt ])
    (fun a ->
      let reg = recording_registry () in
      let id = Builtins.as_int a.(0) and e = Builtins.as_float a.(1) in
      reg.totals.(id) <- reg.totals.(id) +. e;
      Builtins.F e);
  Builtins.register builtins "__chef_range"
    (reg_sig [ Builtins.Kint; Builtins.Kflt ])
    (fun a ->
      let reg = recording_registry () in
      let id = Builtins.as_int a.(0) and v = Builtins.as_float a.(1) in
      if v < reg.lo.(id) then reg.lo.(id) <- v;
      if v > reg.hi.(id) then reg.hi.(id) <- v;
      Builtins.F v);
  Builtins.register builtins "__chef_reg_iter"
    (reg_sig [ Builtins.Kint; Builtins.Kint; Builtins.Kflt ])
    (fun a ->
      let reg = recording_registry () in
      let id = Builtins.as_int a.(0)
      and iter = Builtins.as_int a.(1)
      and s = Builtins.as_float a.(2) in
      (match Hashtbl.find_opt reg.iters (id, iter) with
      | Some r -> r := !r +. s
      | None -> Hashtbl.replace reg.iters (id, iter) (ref s));
      Builtins.F s);
  model.Model.setup builtins;
  let f = func_exn prog func in
  let grad =
    if options.optimize then
      Trace.with_span "estimate.optimize" (fun () ->
          Optimize.optimize_func grad)
    else grad
  in
  let prog' = add_func prog grad in
  (try
     Trace.with_span "estimate.typecheck" (fun () ->
         Typecheck.check_program ~builtins prog')
   with Typecheck.Error m -> err "generated code does not typecheck: %s" m);
  let compiled =
    Trace.with_span "estimate.compile" (fun () ->
        Compile.compile ~builtins ~optimize:false ~prog:prog' ~func:grad.fname
          ())
  in
  (* Positional mapping original param -> derivative out param. *)
  let n_orig = List.length f.params in
  let rec drop k l = if k = 0 then l else drop (k - 1) (List.tl l) in
  let deriv_params = drop n_orig grad.params in
  let scalar_grads, array_grads, _ =
    List.fold_left
      (fun (sc, ar, rest) p ->
        match p.pty with
        | Tscalar (Sflt _) -> (
            match rest with
            | d :: rest -> ((p.pname, d.pname) :: sc, ar, rest)
            | [] -> assert false)
        | Tarr (Sflt _) -> (
            match rest with
            | d :: rest -> (sc, (p.pname, d.pname) :: ar, rest)
            | [] -> assert false)
        | _ -> (sc, ar, rest))
      ([], [], deriv_params) f.params
  in
  let local_array_sizes =
    List.filter_map
      (function
        | Decl { dty = Darr (_, size); _ } -> Some size
        | _ -> None)
      grad.body
  in
  let scalar_decl_count =
    List.length
      (List.filter
         (function Decl { dty = Dscalar _; _ } -> true | _ -> false)
         grad.body)
  in
  {
    source_func = f;
    model;
    accumulation = options.accumulation;
    grad;
    prog = prog';
    builtins;
    compiled;
    registry;
    scalar_grad_params = List.rev scalar_grads;
    array_grad_params = List.rev array_grads;
    error_param = "_fp_error";
    local_array_sizes;
    scalar_decl_count;
  }

let estimate_error ?model ?options ?deriv ?builtins ~prog ~func () =
  Trace.with_span "estimate.build" (fun () ->
      if Trace.enabled () then Trace.add_attr "func" (Trace.Str func);
      estimate_error_inner ?model ?options ?deriv ?builtins ~prog ~func ())

let generated t = t.grad
let program t = t.prog

(* Evaluate an int expression over the integer parameter bindings (local
   array sizes reference only parameters, enforced by Normalize). *)
let rec int_eval env = function
  | Iconst n -> n
  | Var v -> (
      match List.assoc_opt v env with
      | Some n -> n
      | None -> err "size expression references non-integer %S" v)
  | Binop (op, a, b) -> (
      let x = int_eval env a and y = int_eval env b in
      match op with
      | Add -> x + y
      | Sub -> x - y
      | Mul -> x * y
      | Div -> x / y
      | Mod -> x mod y
      | _ -> err "unsupported operator in size expression")
  | Unop (Neg, e) -> -int_eval env e
  | e -> err "unsupported size expression %s" (Pp.expr_to_string e)

(* Per-run bundle: the full argument vector, the static byte account,
   and the float inputs paired with their derivative buffers (for the
   input term of the error model). *)
type run_inputs = {
  full : Interp.arg list;
  static_bytes : int;
  scalar_inputs : (string * float) list;
  array_inputs : (string * float array * float array) list;
      (* name, input values, derivative buffer *)
}

let assemble_args t (args : Interp.arg list) =
  let params = t.source_func.params in
  if List.length args <> List.length params then
    err "function %S expects %d arguments, got %d" t.source_func.fname
      (List.length params) (List.length args);
  let scalar_inputs =
    List.filter_map
      (fun (p, arg) ->
        match (p.pty, arg) with
        | Tscalar (Sflt _), Interp.Aflt x -> Some (p.pname, x)
        | _ -> None)
      (List.combine params args)
  in
  let array_inputs = ref [] in
  let deriv_args =
    List.filter_map
      (fun (p, arg) ->
        match (p.pty, arg) with
        | Tscalar (Sflt _), _ -> Some (Interp.Aflt 0., 0)
        | Tarr (Sflt _), Interp.Afarr a ->
            let n = Array.length a in
            let d = Array.make n 0. in
            array_inputs := (p.pname, a, d) :: !array_inputs;
            Some (Interp.Afarr d, 8 * n)
        | Tarr (Sflt _), _ -> err "array argument expected for %S" p.pname
        | _ -> None)
      (List.combine params args)
  in
  let full =
    args @ List.map fst deriv_args @ [ Interp.Aflt 0. ]
  in
  let deriv_bytes = List.fold_left (fun acc (_, b) -> acc + b) 0 deriv_args in
  let int_env =
    List.filter_map
      (fun (p, arg) ->
        match (p.pty, arg) with
        | Tscalar Sint, Interp.Aint n -> Some (p.pname, n)
        | _ -> None)
      (List.combine params args)
  in
  let local_array_bytes =
    List.fold_left
      (fun acc size -> acc + (8 * int_eval int_env size))
      0 t.local_array_sizes
  in
  {
    full;
    static_bytes = deriv_bytes + local_array_bytes + (8 * t.scalar_decl_count);
    scalar_inputs;
    array_inputs = List.rev !array_inputs;
  }

let build_report t (result : Interp.result) (inputs : run_inputs) =
  let out name =
    match List.assoc_opt name result.Interp.outs with
    | Some (Builtins.F x) -> x
    | Some (Builtins.I n) -> float_of_int n
    | None -> err "missing output %S" name
  in
  let gradients =
    List.map (fun (orig, adj) -> (orig, out adj)) t.scalar_grad_params
  in
  (* Input contributions (the x_i that are parameters in Eq. 2). *)
  let wrap =
    match t.accumulation with `Absolute -> Float.abs | `Signed -> fun x -> x
  in
  let input_terms =
    List.map
      (fun (name, value) ->
        let adj =
          match List.assoc_opt name gradients with Some a -> a | None -> 0.
        in
        (name, wrap (t.model.Model.input_error ~adj ~value ~var:name)))
      inputs.scalar_inputs
    @ List.map
        (fun (name, a, d) ->
          let acc = ref 0. in
          Array.iteri
            (fun i v ->
              acc :=
                !acc
                +. wrap (t.model.Model.input_error ~adj:d.(i) ~value:v ~var:name))
            a;
          (name, !acc))
        inputs.array_inputs
  in
  let input_total = List.fold_left (fun acc (_, e) -> acc +. e) 0. input_terms in
  let per_variable =
    Array.to_list (Array.mapi (fun id e -> (t.registry.names.(id), e)) t.registry.totals)
    @ List.filter (fun (_, e) -> e <> 0. || true) input_terms
    |> List.fold_left
         (fun acc (name, e) ->
           match List.assoc_opt name acc with
           | Some prev -> (name, prev +. e) :: List.remove_assoc name acc
           | None -> (name, e) :: acc)
         []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let per_iteration =
    let tbl : (string, (int * float) list ref) Hashtbl.t = Hashtbl.create 8 in
    Hashtbl.iter
      (fun (id, iter) v ->
        let name = t.registry.names.(id) in
        match Hashtbl.find_opt tbl name with
        | Some l -> l := (iter, !v) :: !l
        | None -> Hashtbl.replace tbl name (ref [ (iter, !v) ]))
      t.registry.iters;
    Hashtbl.fold
      (fun name l acc ->
        (name, List.sort (fun (a, _) (b, _) -> compare a b) !l) :: acc)
      tbl []
    |> List.sort compare
  in
  let array_gradients =
    List.map (fun (name, _, d) -> (name, d)) inputs.array_inputs
  in
  (* Observed value ranges: assigned variables from the registry, inputs
     from the argument values themselves. *)
  let ranges =
    let assigned =
      Array.to_list
        (Array.mapi
           (fun id lo -> (t.registry.names.(id), (lo, t.registry.hi.(id))))
           t.registry.lo)
      |> List.filter (fun (_, (lo, hi)) -> lo <= hi)
    in
    let scalars =
      List.map (fun (name, v) -> (name, (v, v))) inputs.scalar_inputs
    in
    let arrays =
      List.filter_map
        (fun (name, a, _) ->
          if Array.length a = 0 then None
          else
            Some
              ( name,
                ( Array.fold_left Float.min a.(0) a,
                  Array.fold_left Float.max a.(0) a ) ))
        inputs.array_inputs
    in
    let merge acc (name, (lo, hi)) =
      match List.assoc_opt name acc with
      | Some (lo', hi') ->
          (name, (Float.min lo lo', Float.max hi hi'))
          :: List.remove_assoc name acc
      | None -> (name, (lo, hi)) :: acc
    in
    List.fold_left merge [] (assigned @ scalars @ arrays) |> List.sort compare
  in
  {
    total_error = out t.error_param +. input_total;
    gradients;
    array_gradients;
    ranges;
    per_variable;
    per_iteration;
    stack_peak_bytes = result.Interp.stack_peak_bytes;
    analysis_bytes = result.Interp.stack_peak_bytes + inputs.static_bytes;
  }

let run t args =
  Trace.with_span "estimate.run" (fun () ->
      let inputs = assemble_args t args in
      registry_reset t.registry;
      let result =
        with_registry t.registry (fun () -> Compile.run t.compiled inputs.full)
      in
      let report = build_report t result inputs in
      if Trace.enabled () then begin
        Trace.add_attr "func" (Trace.Str t.source_func.fname);
        Trace.add_attr "total_error" (Trace.Float report.total_error);
        Trace.add_attr "analysis_bytes" (Trace.Int report.analysis_bytes)
      end;
      report)

let run_sampled t ~plan ~seed ~samples =
  if samples < 1 then invalid_arg "Estimate.run_sampled: samples must be >= 1";
  Trace.with_span "estimate.run_sampled" (fun () ->
      if Trace.enabled () then
        Trace.add_attr "samples" (Trace.Int samples);
      let q = Quantile.create () in
      (* Sequential on purpose: the instrumentation registry is shared
         mutable state reset per [run], so sampled analyses cannot fan
         out across domains. The batched input-sweep path (Sampling /
         Search) is where parallel sampling lives. *)
      for i = 0 to samples - 1 do
        let args = Sampling.draw plan ~seed i in
        Quantile.add q (run t args).total_error
      done;
      Quantile.summary q)

let run_interpreted t args =
  let inputs = assemble_args t args in
  registry_reset t.registry;
  let result =
    with_registry t.registry (fun () ->
        Interp.run ~builtins:t.builtins ~prog:t.prog ~func:t.grad.fname
          inputs.full)
  in
  build_report t result inputs
