open Cheffp_ir
open Ast
module Fp = Cheffp_precision.Fp

type t = {
  model_name : string;
  assign_error : adj:Ast.expr -> value:Ast.expr -> var:string -> Ast.expr;
  input_error : adj:float -> value:float -> var:string -> float;
  setup : Builtins.t -> unit;
}

let ( * ) a b = Binop (Mul, a, b)
let ( - ) a b = Binop (Sub, a, b)

let taylor ?(target = Fp.F32) () =
  let eps = Fp.unit_roundoff target in
  {
    model_name = Printf.sprintf "taylor(%s)" (Fp.format_to_string target);
    assign_error =
      (fun ~adj ~value ~var:_ ->
        Fconst eps * Call ("fabs", [ value ]) * Call ("fabs", [ adj ]));
    input_error =
      (fun ~adj ~value ~var:_ -> eps *. Float.abs value *. Float.abs adj);
    setup = ignore;
  }

(* Eq. (1) with the machine epsilon factored out: the accumulated
   per-variable totals are the precision-independent error atoms
   A(v) = Σ |v|·|dv|, so one augmented run can be re-scored for any
   mixed-precision configuration by multiplying each atom with the
   unit roundoff of that variable's format (Profile.score). The
   expression shape deliberately mirrors [taylor] minus its leading
   [Fconst eps] factor, so atom·eps and the taylor estimate differ
   only by floating-point association. *)
let atom () =
  {
    model_name = "atom";
    assign_error =
      (fun ~adj ~value ~var:_ ->
        Call ("fabs", [ value ]) * Call ("fabs", [ adj ]));
    input_error =
      (fun ~adj ~value ~var:_ -> Float.abs value *. Float.abs adj);
    setup = ignore;
  }

let adapt ?(target = Fp.F32) () =
  let cast =
    match target with
    | Fp.F32 -> "castf32"
    | Fp.F16 -> "castf16"
    | Fp.F64 -> invalid_arg "Model.adapt: target must be narrower than F64"
  in
  {
    model_name = Printf.sprintf "adapt(%s)" (Fp.format_to_string target);
    assign_error =
      (fun ~adj ~value ~var:_ -> adj * (value - Call (cast, [ value ])));
    input_error =
      (fun ~adj ~value ~var:_ -> adj *. Fp.representation_error target value);
    setup = ignore;
  }

let zero =
  {
    model_name = "zero";
    assign_error = (fun ~adj:_ ~value:_ ~var:_ -> Fconst 0.);
    input_error = (fun ~adj:_ ~value:_ ~var:_ -> 0.);
    setup = ignore;
  }

let external_ ~name f =
  (* Variable names cross into generated code as dense integer ids; the
     registered builtin maps them back. *)
  let ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let names : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 0 in
  let id_of var =
    match Hashtbl.find_opt ids var with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        Hashtbl.replace ids var id;
        Hashtbl.replace names id var;
        id
  in
  let builtin = "__errmodel_" ^ name in
  {
    model_name = "external:" ^ name;
    assign_error =
      (fun ~adj ~value ~var ->
        Call (builtin, [ adj; value; Iconst (id_of var) ]));
    input_error = (fun ~adj ~value ~var -> f ~adj ~value ~var);
    setup =
      (fun builtins ->
        Builtins.register builtins builtin
          {
            Builtins.args = [ Builtins.Kflt; Builtins.Kflt; Builtins.Kint ];
            ret = Builtins.Kflt;
            cls = Cheffp_precision.Cost.Basic;
            approx = false;
          }
          (fun a ->
            let adj = Builtins.as_float a.(0)
            and value = Builtins.as_float a.(1)
            and id = Builtins.as_int a.(2) in
            let var =
              match Hashtbl.find_opt names id with
              | Some v -> v
              | None -> "<unknown>"
            in
            Builtins.F (f ~adj ~value ~var)));
  }

let approx_functions ~pairs ~eval ~eval_approx =
  {
    model_name = "approx-functions";
    assign_error =
      (fun ~adj ~value ~var ->
        match List.assoc_opt var pairs with
        | Some intrinsic ->
            let exact = Call (intrinsic, [ value ]) in
            let approx = Call ("fast" ^ intrinsic, [ value ]) in
            adj * (exact - approx)
        | None -> Fconst 0.);
    input_error =
      (fun ~adj ~value ~var ->
        match List.assoc_opt var pairs with
        | Some intrinsic ->
            adj *. (eval intrinsic value -. eval_approx intrinsic value)
        | None -> 0.);
    setup = ignore;
  }
