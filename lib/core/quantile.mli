(** Streaming, mergeable quantile estimator (DESIGN.md §16).

    The sampling layer reports error {e distributions} — p50/p95/p99/max
    over Monte-Carlo input sweeps — and needs an accumulator that (a)
    streams (per-chunk results arrive as the domain pool finishes them),
    (b) merges (per-worker accumulators combine into one), and (c) stays
    cheap at large sample counts.

    {b Exact below the cutoff}: values accumulate in a buffer and every
    query is a true order statistic (nearest-rank convention). {b Past
    the cutoff}: the buffer compresses into [grid] equally-spaced
    weighted order statistics; further batches and {!merge}s combine by
    weighted concat + sort + recompress. Each compression perturbs a
    quantile's rank by at most [count/(2*grid)] and compressions
    compound additively — with the defaults (cutoff 4096, grid 1024)
    that is < 0.05% of rank per compression, far below Monte-Carlo noise
    at the sweep sizes this repo runs. [count]/[mean]/[min]/[max] are
    exact regardless of compression.

    Not thread-safe; give each domain its own accumulator and {!merge}.
    NaN values sort first (OCaml [compare] on floats), so a kernel that
    produces NaN errors skews low quantiles rather than poisoning the
    estimator. *)

type t

val create : ?cutoff:int -> ?grid:int -> unit -> t
(** [cutoff] (default 4096, >= 2) is the exact-mode size bound; [grid]
    (default 1024, >= 2) the compressed summary size.
    @raise Invalid_argument on bad bounds. *)

val add : t -> float -> unit
val add_array : t -> float array -> unit

val of_array : ?cutoff:int -> ?grid:int -> float array -> t

val count : t -> int

val is_exact : t -> bool
(** [true] while no compression has happened: quantiles are exact order
    statistics. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]: the value at the smallest rank
    whose cumulative weight reaches [q] of the total (nearest-rank).
    NaN when empty. @raise Invalid_argument outside [0, 1]. *)

val quantile_of_array : float array -> float -> float
(** One-shot exact nearest-rank quantile of an array (the array is not
    modified). Agrees with {!quantile} on an uncompressed accumulator
    of the same values. NaN on empty. *)

val min_value : t -> float
val max_value : t -> float
val mean : t -> float
(** Exact (never compressed); NaN when empty. *)

val merge : t -> t -> unit
(** [merge dst src] absorbs [src]'s distribution into [dst] ([src] is
    unchanged). Exact + exact stays exact while the combined size fits
    [dst]'s cutoff; otherwise the result is compressed to [dst]'s
    grid. *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;  (** exact observed maximum *)
}

val summary : t -> summary
val summary_of_array : float array -> summary
