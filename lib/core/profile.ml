open Cheffp_ir
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp
module Trace = Cheffp_obs.Trace
module Metrics = Cheffp_obs.Metrics

type t = {
  func : string;
  atoms : (string * float) list;  (* descending *)
  ranges : (string * (float * float)) list;
  total_atom : float;
}

let builds_c = Metrics.counter "profile.builds"
let cache_hits_c = Metrics.counter "profile.cache_hits"

let func t = t.func
let atoms t = t.atoms
let ranges t = t.ranges
let total_atom t = t.total_atom

let atom t v =
  match List.assoc_opt v t.atoms with Some a -> a | None -> 0.

let of_atoms ?(ranges = []) ~func atoms =
  let atoms = List.sort (fun (_, a) (_, b) -> compare b a) atoms in
  {
    func;
    atoms;
    ranges;
    total_atom = List.fold_left (fun acc (_, a) -> acc +. a) 0. atoms;
  }

(* Relative to the all-binary64 reference: demoting nothing costs
   nothing, so F64 contributes no eps (the binary64 floor is the
   oracle's baseline term, deliberately not modelled here — exactly as
   in Eq. 2). *)
let eps_rel = function Fp.F64 -> 0. | fmt -> Fp.unit_roundoff fmt

let score t cfg =
  List.fold_left
    (fun acc (v, a) -> acc +. (a *. eps_rel (Config.format_of cfg v)))
    0. t.atoms

let score_vars t ~target vars =
  let eps = eps_rel target in
  List.fold_left (fun acc v -> acc +. (atom t v *. eps)) 0. vars

let overflows t ~target v =
  let limit = 0.5 *. Fp.max_finite target in
  match List.assoc_opt v t.ranges with
  | Some (lo, hi) -> Float.max (Float.abs lo) (Float.abs hi) > limit
  | None -> false

let build ?deriv ?builtins ~prog ~func ~args () =
  Trace.with_span "profile.build" @@ fun () ->
  if Trace.enabled () then Trace.add_attr "func" (Trace.Str func);
  Metrics.incr builds_c;
  let est =
    Estimate.estimate_error ~model:(Model.atom ()) ?deriv ?builtins
      ~options:{ Estimate.default_options with Estimate.track_ranges = true }
      ~prog ~func ()
  in
  (* The analyzed function may mutate array arguments; profile building
     must not. *)
  let args =
    List.map
      (function
        | Interp.Afarr a -> Interp.Afarr (Array.copy a)
        | Interp.Aiarr a -> Interp.Aiarr (Array.copy a)
        | (Interp.Aint _ | Interp.Aflt _) as x -> x)
      args
  in
  let report = Estimate.run est args in
  let atoms =
    List.sort
      (fun (_, a) (_, b) -> compare b a)
      report.Estimate.per_variable
  in
  let t =
    {
      func;
      atoms;
      ranges = report.Estimate.ranges;
      total_atom = report.Estimate.total_error;
    }
  in
  if Trace.enabled () then begin
    Trace.add_attr "vars" (Trace.Int (List.length t.atoms));
    Trace.add_attr "total_atom" (Trace.Float t.total_atom)
  end;
  t

(* ------------------------------------------------------------------ *)
(* Cached profiles, sharing the compile cache's LRU machinery.        *)

type Compile_cache.artifact += Profile_art of t

(* Canonical byte serialization of the argument vector (floats by their
   IEEE bits, so distinct NaN payloads and -0.0/0.0 digest apart like
   the runs they would produce). *)
let args_digest args =
  let b = Buffer.create 256 in
  let add_f x = Buffer.add_int64_le b (Int64.bits_of_float x) in
  List.iter
    (function
      | Interp.Aint n ->
          Buffer.add_char b 'i';
          Buffer.add_string b (string_of_int n);
          Buffer.add_char b ';'
      | Interp.Aflt x ->
          Buffer.add_char b 'f';
          add_f x
      | Interp.Afarr a ->
          Buffer.add_char b 'F';
          Buffer.add_string b (string_of_int (Array.length a));
          Buffer.add_char b ';';
          Array.iter add_f a
      | Interp.Aiarr a ->
          Buffer.add_char b 'I';
          Buffer.add_string b (string_of_int (Array.length a));
          Buffer.add_char b ';';
          Array.iter
            (fun n ->
              Buffer.add_string b (string_of_int n);
              Buffer.add_char b ',')
            a)
    args;
  Digest.to_hex (Digest.string (Buffer.contents b))

let cache_key ~prog ~func ~args =
  Printf.sprintf "profile|%s|%s|atom|%s"
    (Digest.to_hex (Digest.string (Pp.program_to_string prog)))
    func (args_digest args)

let build_cached ?deriv ?builtins ~prog ~func ~args () =
  let built = ref false in
  let t =
    Compile_cache.lookup_or
      ~key:(cache_key ~prog ~func ~args)
      ~label:func ~builtins
      ~select:(function Profile_art t -> Some t | _ -> None)
      ~inject:(fun t -> Profile_art t)
      ~build:(fun () ->
        built := true;
        build ?deriv ?builtins ~prog ~func ~args ())
  in
  if not !built then begin
    Metrics.incr cache_hits_c;
    Trace.event "profile.cache_hit" ~attrs:[ ("func", Trace.Str func) ]
  end;
  t
