module Table = Cheffp_util.Table
module Meter = Cheffp_util.Meter

let buf_add = Buffer.add_string

let estimate (r : Estimate.report) =
  let b = Buffer.create 512 in
  buf_add b (Printf.sprintf "estimated FP error: %.6e\n" r.Estimate.total_error);
  if r.Estimate.gradients <> [] then begin
    buf_add b "gradients:\n";
    List.iter
      (fun (p, d) -> buf_add b (Printf.sprintf "  d/d%-10s %.10g\n" p d))
      r.Estimate.gradients
  end;
  if r.Estimate.per_variable <> [] then begin
    buf_add b "per-variable error attribution:\n";
    buf_add b
      (Table.render
         ~header:[ "variable"; "error" ]
         (List.map
            (fun (v, e) -> [ v; Table.fe e ])
            r.Estimate.per_variable));
    buf_add b "\n"
  end;
  if r.Estimate.ranges <> [] then begin
    buf_add b "observed value ranges:\n";
    buf_add b
      (Table.render
         ~header:[ "variable"; "min"; "max" ]
         (List.map
            (fun (v, (lo, hi)) -> [ v; Table.fe lo; Table.fe hi ])
            r.Estimate.ranges));
    buf_add b "\n"
  end;
  buf_add b
    (Printf.sprintf "analysis memory: %s (value stacks peak %s)\n"
       (Meter.bytes_pp r.Estimate.analysis_bytes)
       (Meter.bytes_pp r.Estimate.stack_peak_bytes));
  Buffer.contents b

let sampled ~plan (s : Quantile.summary) =
  let b = Buffer.create 256 in
  buf_add b
    (Printf.sprintf "error quantiles over %d sampled inputs:\n"
       s.Quantile.count);
  List.iter
    (fun (name, d) ->
      if d <> "fixed" then buf_add b (Printf.sprintf "  %-12s ~ %s\n" name d))
    plan;
  buf_add b
    (Printf.sprintf
       "  p50 %.6e   p95 %.6e   p99 %.6e   max %.6e   mean %.6e\n"
       s.Quantile.p50 s.Quantile.p95 s.Quantile.p99 s.Quantile.max
       s.Quantile.mean);
  Buffer.contents b

let tuning (o : Tuner.outcome) =
  let b = Buffer.create 512 in
  buf_add b "per-variable contributions (ascending):\n";
  List.iter
    (fun (v, e) ->
      buf_add b
        (Printf.sprintf "  %-12s %.6e%s\n" v e
           (if List.mem v o.Tuner.demoted then "  -> demote" else "")))
    o.Tuner.contributions;
  if o.Tuner.vetoed <> [] then
    buf_add b
      (Printf.sprintf "vetoed (range would overflow the target): %s\n"
         (String.concat ", " o.Tuner.vetoed));
  let ev = o.Tuner.evaluation in
  buf_add b
    (Printf.sprintf "configuration: %s\n"
       (Cheffp_precision.Config.to_string ev.Tuner.config));
  buf_add b (Printf.sprintf "estimated error:  %.6e\n" o.Tuner.estimated_error);
  buf_add b
    (Printf.sprintf "actual error:     %.6e (threshold %.1e)\n"
       ev.Tuner.actual_error o.Tuner.threshold);
  buf_add b
    (Printf.sprintf "modelled speedup: %.2fx, implicit casts: %d\n"
       ev.Tuner.modelled_speedup ev.Tuner.casts);
  Buffer.contents b

let search (o : Search.outcome) =
  let ev = o.Search.evaluation in
  Printf.sprintf
    "search-based tuning (%s): %d program executions%s%s\n\
     demoted: %s\n\
     actual error:     %.6e (threshold %.1e)\n\
     modelled error:   %.6e (CHEF-FP, 1 augmented execution)\n%s\
     modelled speedup: %.2fx\n"
    (Search.strategy_name o.Search.strategy)
    o.Search.executions
    (if o.Search.batched_runs > 0 then
       Printf.sprintf " (program-runs-equivalent; %d batched sweeps)"
         o.Search.batched_runs
     else "")
    (String.concat ""
       [
         (if o.Search.runs_avoided > 0 then
            Printf.sprintf ", %d avoided by the error-atom profile"
              o.Search.runs_avoided
          else "");
         (if o.Search.pruned > 0 then
            Printf.sprintf ", %d pruned by rigorous bounds" o.Search.pruned
          else "");
       ])
    (match o.Search.demoted with [] -> "(nothing)" | l -> String.concat ", " l)
    ev.Tuner.actual_error o.Search.threshold o.Search.modelled_error
    (String.concat ""
       [
         (match o.Search.measured_error with
         | Some e ->
             Printf.sprintf "measured error:   %.6e (shadow double-double)\n" e
         | None -> "");
         (if o.Search.samples > 0 then
            Printf.sprintf
              "candidates judged at the target quantile over %d sampled \
               inputs\n"
              o.Search.samples
          else "");
       ])
    ev.Tuner.modelled_speedup
