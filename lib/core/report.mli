(** Human-readable rendering of analysis results (shared by the CLI and
    the examples). *)

val estimate : Estimate.report -> string
(** Total error, gradients, per-variable attribution, observed ranges
    when present, and the memory account — as an ASCII block. *)

val tuning : Tuner.outcome -> string
(** Contributions (annotated with demote/veto decisions), the chosen
    configuration, and its validation. *)

val search : Search.outcome -> string

val sampled : plan:(string * string) list -> Quantile.summary -> string
(** Monte-Carlo quantile block: the sampled variables' distributions
    ([plan] as {!Sampling.describe} rows; fixed slots omitted) and the
    p50/p95/p99/max/mean line. Shared by [cheffp analyze --samples],
    [cheffp import --samples] and the tuning commands. *)
