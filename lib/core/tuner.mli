(** Mixed-precision tuning driven by CHEF-FP error estimates (paper §III).

    The workflow the paper describes: estimate every variable's
    contribution to the total FP error (its estimated error if demoted),
    then demote the cheapest variables greedily while the accumulated
    estimate stays within the user's threshold. Each candidate
    configuration can be validated by executing the program bit-accurately
    under the configuration and comparing with the all-double result, and
    its performance is modelled by the {!Cheffp_precision.Cost} meter
    (OCaml has no native narrow floats; see DESIGN.md). *)

open Cheffp_ir
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp

type evaluation = {
  config : Config.t;
  actual_error : float;
      (** |f(config) - f(double)| executed bit-accurately *)
  modelled_speedup : float;  (** cost(double) / cost(config) *)
  casts : int;  (** implicit precision casts charged under [config] *)
}

val evaluate :
  ?builtins:Builtins.t ->
  ?mode:Config.rounding_mode ->
  ?jobs:int ->
  prog:Ast.program ->
  func:string ->
  args:Interp.arg list ->
  Config.t ->
  evaluation
(** Run the function under [config] and under all-double and compare.
    The function must return a float. Compilations are memoized in
    {!Compile_cache} (metered, counters threaded per run); with
    [jobs > 1] the two runs execute on separate domains — results are
    bit-identical either way. *)

val evaluate_many :
  ?builtins:Builtins.t ->
  ?mode:Config.rounding_mode ->
  ?jobs:int ->
  ?lanes:int ->
  prog:Ast.program ->
  func:string ->
  args:Interp.arg list ->
  Config.t list ->
  evaluation list
(** Evaluate many candidate configurations in lane-parallel sweeps
    ({!Cheffp_ir.Batch}): the configurations are chunked into groups of
    [lanes - 1] (default {!Cheffp_ir.Batch.default_lanes}), each group
    runs as one metered sweep with the all-double reference in lane 0,
    and chunks fan out over [jobs] domains (default 1). One sweep
    replaces |group| + 1 scalar compile+run pairs; the batch artifact
    is memoized config-independently in {!Compile_cache}
    ({!Compile_cache.compile_batch}). [actual_error] values are
    bit-identical to per-config {!evaluate} calls; modelled costs
    reflect the shared conservatively-optimized body (see
    {!Cheffp_ir.Batch.run}), which coincides with the scalar model on
    programs without literal identity operations. Order follows the
    input list. *)

type outcome = {
  threshold : float;
  demoted : string list;  (** variables chosen for demotion *)
  vetoed : string list;
      (** variables excluded because their observed value range would
          overflow the target format (first-order error models cannot
          see overflow, so the tuner checks ranges explicitly) *)
  estimated_error : float;
      (** sum of the chosen variables' estimated contributions *)
  contributions : (string * float) list;
      (** every candidate's estimated contribution, ascending *)
  evaluation : evaluation;  (** validation of the chosen configuration *)
}

val tune :
  ?model:Model.t ->
  ?profile:Profile.t ->
  ?target:Fp.format ->
  ?mode:Config.rounding_mode ->
  ?builtins:Builtins.t ->
  ?margin:float ->
  ?jobs:int ->
  ?batch:int ->
  prog:Ast.program ->
  func:string ->
  args:Interp.arg list ->
  threshold:float ->
  unit ->
  outcome
(** Greedy tuning: candidates are the float variables of the source
    function (parameters and locals); contributions come from a
    CHEF-FP analysis with [model] (default {!Model.adapt} at [target],
    default [F32], matching Eq. 2). Variables are demoted in ascending
    contribution order while the accumulated estimate stays within
    [threshold /. margin]. [margin] (default 2.0) is a safety factor:
    the first-order model charges one rounding per assignment, while
    [Source]-mode execution rounds every operation, so selections
    exactly at the threshold can overshoot slightly. [jobs] (default 1)
    is forwarded to the validating {!evaluate}. [batch] ([Some k],
    [k >= 2]) routes that validation through {!evaluate_many} instead —
    one two-lane sweep rather than two scalar runs.

    [profile], when given, replaces the fresh analysis entirely
    ([model] is then ignored): contributions are the profile's
    error atoms scaled by [target]'s unit roundoff (the first-order
    Taylor estimate, see {!Profile.score_vars}) and the overflow veto
    reads the profile's recorded ranges — the whole selection runs
    without a single new augmented execution, so a profile built once
    (or fetched from the cache, {!Profile.build_cached}) serves any
    number of thresholds and targets. *)

val float_variables : Ast.func -> string list
(** The demotion candidates of a function: float parameters, float
    locals, and float arrays, in declaration order. *)

val tune_multi :
  ?model:Model.t ->
  ?target:Fp.format ->
  ?mode:Config.rounding_mode ->
  ?builtins:Builtins.t ->
  ?margin:float ->
  ?jobs:int ->
  prog:Ast.program ->
  func:string ->
  args_list:Interp.arg list list ->
  threshold:float ->
  unit ->
  outcome * evaluation list
(** Tune over a representative set of inputs (the paper's §V-B caveat
    that single-dataset configurations are input-dependent): a
    variable's contribution is its worst case across the datasets, the
    overflow veto considers every observed range, and the returned
    outcome embeds the worst-case validation (all per-dataset
    evaluations are also returned); with [jobs > 1] the datasets are
    validated on separate domains (each evaluation sequential inside),
    with bit-identical results. @raise Invalid_argument on an empty
    dataset list. *)
