(* Streaming, mergeable quantile estimator (DESIGN.md §16).

   Exact below a size cutoff: values accumulate in a growable buffer
   and every quantile query is a true order statistic. Past the cutoff
   the buffer is compressed into a fixed grid of [grid] equally-spaced
   weighted order statistics (an epsilon-approximate summary in the
   GK/t-digest family, kept deliberately simple); subsequent batches
   merge by weighted concat + sort + recompress. Each compression
   perturbs any quantile's rank by at most [total/(2*grid)], and
   compressions compound additively, so after [c] compressions a
   reported quantile is within rank [c*total/(2*grid)] of exact —
   with the default cutoff 4096 and grid 1024 that is under 0.2% of
   rank per compression, far tighter than Monte-Carlo noise at the
   sample counts this repo sweeps. [min]/[max]/[mean]/[count] are
   tracked exactly regardless of compression. *)

type t = {
  cutoff : int;
  grid : int;
  mutable buf : float array;  (* pending exact values, prefix [n] *)
  mutable n : int;
  mutable points : float array;  (* compressed sorted grid; [||] = exact *)
  mutable weight : float;  (* total weight represented by [points] *)
  mutable count : int;
  mutable vmin : float;
  mutable vmax : float;
  mutable sum : float;
}

let create ?(cutoff = 4096) ?(grid = 1024) () =
  if cutoff < 2 then invalid_arg "Quantile.create: cutoff must be >= 2";
  if grid < 2 then invalid_arg "Quantile.create: grid must be >= 2";
  {
    cutoff;
    grid;
    buf = Array.make 64 0.;
    n = 0;
    points = [||];
    weight = 0.;
    count = 0;
    vmin = infinity;
    vmax = neg_infinity;
    sum = 0.;
  }

let count t = t.count
let is_exact t = Array.length t.points = 0

let fcompare (a : float) b = compare a b

(* The merged weighted view: (value, weight) pairs sorted by value.
   Pending values weigh 1 each; each compressed point carries an equal
   share of the compressed weight. *)
let weighted t =
  let pending = Array.sub t.buf 0 t.n in
  Array.sort fcompare pending;
  let m = Array.length t.points in
  if m = 0 then Array.map (fun v -> (v, 1.)) pending
  else begin
    let pw = t.weight /. float_of_int m in
    let out = Array.make (m + t.n) (0., 0.) in
    let i = ref 0 and j = ref 0 and o = ref 0 in
    while !i < m || !j < t.n do
      if !j >= t.n || (!i < m && t.points.(!i) <= pending.(!j)) then begin
        out.(!o) <- (t.points.(!i), pw);
        incr i;
        incr o
      end
      else begin
        out.(!o) <- (pending.(!j), 1.);
        incr j;
        incr o
      end
    done;
    out
  end

let total_weight w = Array.fold_left (fun acc (_, wt) -> acc +. wt) 0. w

(* Install a weighted view as the compressed grid: point j takes the
   value at cumulative rank (j + 0.5)/grid of the weighted
   distribution. *)
let compress_view t w =
  let total = total_weight w in
  let m = t.grid in
  let pts = Array.make m 0. in
  let i = ref 0 and cum = ref 0. in
  let last = Array.length w - 1 in
  for j = 0 to m - 1 do
    let target = (float_of_int j +. 0.5) /. float_of_int m *. total in
    while !i < last && !cum +. snd w.(!i) <= target do
      cum := !cum +. snd w.(!i);
      incr i
    done;
    pts.(j) <- fst w.(!i)
  done;
  t.points <- pts;
  t.weight <- total;
  t.n <- 0

let add t x =
  if t.n = Array.length t.buf then begin
    let nb = Array.make (max 128 (2 * Array.length t.buf)) 0. in
    Array.blit t.buf 0 nb 0 t.n;
    t.buf <- nb
  end;
  t.buf.(t.n) <- x;
  t.n <- t.n + 1;
  t.count <- t.count + 1;
  if x < t.vmin then t.vmin <- x;
  if x > t.vmax then t.vmax <- x;
  t.sum <- t.sum +. x;
  if t.n >= t.cutoff then compress_view t (weighted t)

let add_array t xs = Array.iter (add t) xs

let of_array ?cutoff ?grid xs =
  let t = create ?cutoff ?grid () in
  add_array t xs;
  t

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Quantile.quantile: q outside [0, 1]";
  if t.count = 0 then Float.nan
  else begin
    let w = weighted t in
    let total = total_weight w in
    let target = q *. total in
    (* Nearest-rank: the value at the smallest position whose cumulative
       weight reaches q of the total. *)
    let res = ref (fst w.(Array.length w - 1)) in
    (try
       let cum = ref 0. in
       Array.iter
         (fun (v, wt) ->
           cum := !cum +. wt;
           if !cum >= target then begin
             res := v;
             raise Exit
           end)
         w
     with Exit -> ());
    !res
  end

let quantile_of_array xs q =
  if Array.length xs = 0 then Float.nan
  else begin
    let s = Array.copy xs in
    Array.sort fcompare s;
    let n = Array.length s in
    if q < 0. || q > 1. then invalid_arg "Quantile.quantile_of_array";
    (* Same nearest-rank convention as [quantile] on an exact summary. *)
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    s.(max 0 (min (n - 1) (rank - 1)))
  end

let min_value t = if t.count = 0 then Float.nan else t.vmin
let max_value t = if t.count = 0 then Float.nan else t.vmax
let mean t = if t.count = 0 then Float.nan else t.sum /. float_of_int t.count

let merge dst src =
  if src.count > 0 then begin
    let stay_exact =
      is_exact dst && is_exact src && dst.n + src.n <= dst.cutoff
    in
    if stay_exact then
      for i = 0 to src.n - 1 do
        if dst.n = Array.length dst.buf then begin
          let nb = Array.make (max 128 (2 * Array.length dst.buf)) 0. in
          Array.blit dst.buf 0 nb 0 dst.n;
          dst.buf <- nb
        end;
        dst.buf.(dst.n) <- src.buf.(i);
        dst.n <- dst.n + 1
      done
    else begin
      let all = Array.append (weighted dst) (weighted src) in
      Array.sort (fun (a, _) (b, _) -> fcompare a b) all;
      compress_view dst all
    end;
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum +. src.sum;
    if src.vmin < dst.vmin then dst.vmin <- src.vmin;
    if src.vmax > dst.vmax then dst.vmax <- src.vmax
  end

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let summary (t : t) =
  {
    count = t.count;
    mean = mean t;
    p50 = quantile t 0.5;
    p95 = quantile t 0.95;
    p99 = quantile t 0.99;
    max = max_value t;
  }

let summary_of_array xs = summary (of_array xs)
