open Cheffp_ir
open Ast
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp
module Cost = Cheffp_precision.Cost
module Trace = Cheffp_obs.Trace

type evaluation = {
  config : Config.t;
  actual_error : float;
  modelled_speedup : float;
  casts : int;
}

let float_variables f =
  let params =
    List.filter_map
      (fun p ->
        match p.pty with
        | Tscalar (Sflt _) | Tarr (Sflt _) -> Some p.pname
        | _ -> None)
      f.params
  in
  let locals = ref [] in
  let rec stmt = function
    | Decl { name; dty = Dscalar (Sflt _); _ }
    | Decl { name; dty = Darr (Sflt _, _); _ } ->
        locals := name :: !locals
    | Decl _ -> ()
    | If (_, a, b) ->
        List.iter stmt a;
        List.iter stmt b
    | For { body; _ } | While (_, body) -> List.iter stmt body
    | Assign _ | Return _ | Call_stmt _ | Push _ | Pop _ -> ()
  in
  List.iter stmt f.body;
  params @ List.rev !locals

(* The function under test may mutate its array arguments; every
   configuration gets fresh copies so runs are independent. *)
let copy_args args =
  List.map
    (function
      | Interp.Afarr a -> Interp.Afarr (Array.copy a)
      | Interp.Aiarr a -> Interp.Aiarr (Array.copy a)
      | (Interp.Aint _ | Interp.Aflt _) as x -> x)
    args

let run_with ?builtins ?mode ~prog ~func ~args config =
  (* Metered compilation through the cache; the counter is threaded
     per run, so the cached instance is shared across configurations,
     repeated evaluations and pool workers alike. *)
  let counter = Cost.Counter.create Cost.default in
  let compiled =
    Compile_cache.compile ?builtins ?mode ~meter:true ~config ~prog ~func ()
  in
  let value =
    Trace.with_span "run" (fun () ->
        if Trace.enabled () then
          Trace.add_attr "config" (Trace.Str (Config.to_string config));
        Compile.run_float ~counter compiled (copy_args args))
  in
  (value, Cost.Counter.total counter, Cost.Counter.casts counter)

let evaluate ?builtins ?mode ?(jobs = 1) ~prog ~func ~args config =
  Trace.with_span "tuner.evaluate" @@ fun () ->
  (* The reference run and the configured run are independent; with
     [jobs > 1] they execute on separate domains. *)
  match
    Cheffp_util.Pool.parallel_map ~jobs
      (fun cfg -> run_with ?builtins ?mode ~prog ~func ~args cfg)
      [ Config.double; config ]
  with
  | [ (reference, ref_cost, _); (value, cost, casts) ] ->
      let ev =
        {
          config;
          actual_error = Float.abs (value -. reference);
          modelled_speedup = (if cost > 0. then ref_cost /. cost else 1.);
          casts;
        }
      in
      if Trace.enabled () then begin
        Trace.add_attr "actual_error" (Trace.Float ev.actual_error);
        Trace.add_attr "modelled_speedup" (Trace.Float ev.modelled_speedup)
      end;
      ev
  | _ -> assert false

(* Batched evaluation: every chunk's lane sweep carries the all-double
   reference in lane 0, so each evaluation's actual_error and
   modelled_speedup come from the same sweep — one batch run replaces
   |chunk| + 1 scalar runs. The batch artifact and the divergence
   fallback both go through the compile cache, so a whole session pays
   one batch compile per (program, func, mode). *)
let evaluate_many ?builtins ?mode ?(jobs = 1) ?(lanes = Batch.default_lanes)
    ~prog ~func ~args configs =
  Trace.with_span "tuner.evaluate_many" @@ fun () ->
  if Trace.enabled () then begin
    Trace.add_attr "configs" (Trace.Int (List.length configs));
    Trace.add_attr "lanes" (Trace.Int lanes)
  end;
  let b = Compile_cache.compile_batch ?builtins ?mode ~meter:true ~prog ~func () in
  let fallback config =
    Compile_cache.compile ?builtins ?mode ~meter:true ~config ~prog ~func ()
  in
  let chunk_size = max 1 (lanes - 1) in
  let rec chunks = function
    | [] -> []
    | l ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | c :: rest -> take (n - 1) (c :: acc) rest
        in
        let h, t = take chunk_size [] l in
        h :: chunks t
  in
  chunks configs
  |> Cheffp_util.Pool.parallel_map ~jobs (fun chunk ->
         let cfgs = Array.of_list (Config.double :: chunk) in
         let counters =
           Array.init (Array.length cfgs) (fun _ ->
               Cost.Counter.create Cost.default)
         in
         let r = Batch.run ~counters ~fallback b ~configs:cfgs args in
         let value l =
           match r.Batch.lanes.(l).Interp.ret with
           | Some (Builtins.F x) -> x
           | _ ->
               invalid_arg "Tuner.evaluate_many: function must return a float"
         in
         let reference = value 0 in
         let ref_cost = Cost.Counter.total counters.(0) in
         List.mapi
           (fun i config ->
             let l = i + 1 in
             let cost = Cost.Counter.total counters.(l) in
             {
               config;
               actual_error = Float.abs (value l -. reference);
               modelled_speedup = (if cost > 0. then ref_cost /. cost else 1.);
               casts = Cost.Counter.casts counters.(l);
             })
           chunk)
  |> List.concat

type outcome = {
  threshold : float;
  demoted : string list;
  vetoed : string list;
  estimated_error : float;
  contributions : (string * float) list;
  evaluation : evaluation;
}

let tune ?model ?profile ?(target = Fp.F32) ?mode ?builtins ?(margin = 2.0)
    ?(jobs = 1) ?batch ~prog ~func ~args ~threshold () =
  Trace.with_span "tuner.tune" @@ fun () ->
  if Trace.enabled () then begin
    Trace.add_attr "func" (Trace.Str func);
    Trace.add_attr "threshold" (Trace.Float threshold);
    Trace.add_attr "jobs" (Trace.Int jobs);
    Trace.add_attr "profiled" (Trace.Bool (profile <> None))
  end;
  (* Contribution and range queries come either from a caller-supplied
     error-atom profile — a previous augmented run, answered without any
     new analysis or execution — or from a fresh adapt-model estimate. *)
  let per_var, range_of =
    match profile with
    | Some p ->
        let eps = Fp.unit_roundoff target in
        ( (fun v -> Profile.atom p v *. eps),
          fun v -> List.assoc_opt v (Profile.ranges p) )
    | None ->
        let model =
          match model with Some m -> m | None -> Model.adapt ~target ()
        in
        let est =
          Estimate.estimate_error ~model
            ~options:
              { Estimate.default_options with Estimate.track_ranges = true }
            ~prog ~func ()
        in
        let report = Estimate.run est args in
        ( (fun v ->
            Option.value ~default:0.
              (List.assoc_opt v report.Estimate.per_variable)),
          fun v -> List.assoc_opt v report.Estimate.ranges )
  in
  let candidates = float_variables (func_exn prog func) in
  (* A variable whose observed magnitude approaches the target format's
     largest finite value would overflow when demoted: veto it outright
     (first-order error models cannot see overflow). *)
  let limit = 0.5 *. Fp.max_finite target in
  let overflows v =
    match range_of v with
    | Some (lo, hi) -> Float.max (Float.abs lo) (Float.abs hi) > limit
    | None -> false
  in
  let vetoed = List.filter overflows candidates in
  let candidates = List.filter (fun v -> not (overflows v)) candidates in
  let contributions =
    List.map (fun v -> (v, per_var v)) candidates
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  let budget = threshold /. margin in
  let demoted, estimated_error =
    List.fold_left
      (fun (chosen, acc) (v, e) ->
        if acc +. e <= budget then (v :: chosen, acc +. e)
        else (chosen, acc))
      ([], 0.) contributions
  in
  let demoted = List.rev demoted in
  let config = Config.demote_all Config.double demoted target in
  let evaluation =
    match batch with
    | Some lanes when lanes > 1 -> (
        match
          evaluate_many ?builtins ?mode ~jobs ~lanes ~prog ~func ~args
            [ config ]
        with
        | [ ev ] -> ev
        | _ -> assert false)
    | _ -> evaluate ?builtins ?mode ~jobs ~prog ~func ~args config
  in
  { threshold; demoted; vetoed; estimated_error; contributions; evaluation }

(* Multi-dataset tuning (paper SS V-B: "it is important to analyze the
   application over a representative set of inputs"): contributions are
   the worst case over all datasets, the range veto considers every
   observed value, and the chosen configuration is validated against
   every dataset. *)
let tune_multi ?model ?(target = Fp.F32) ?mode ?builtins ?(margin = 2.0)
    ?(jobs = 1) ~prog ~func ~args_list ~threshold () =
  Trace.with_span "tuner.tune_multi" @@ fun () ->
  (match args_list with
  | [] -> invalid_arg "Tuner.tune_multi: empty dataset list"
  | _ -> ());
  let model =
    match model with Some m -> m | None -> Model.adapt ~target ()
  in
  let est =
    Estimate.estimate_error ~model
      ~options:{ Estimate.default_options with Estimate.track_ranges = true }
      ~prog ~func ()
  in
  let reports = List.map (fun args -> Estimate.run est args) args_list in
  let candidates = float_variables (func_exn prog func) in
  let limit = 0.5 *. Fp.max_finite target in
  let overflows v =
    List.exists
      (fun r ->
        match List.assoc_opt v r.Estimate.ranges with
        | Some (lo, hi) -> Float.max (Float.abs lo) (Float.abs hi) > limit
        | None -> false)
      reports
  in
  let vetoed = List.filter overflows candidates in
  let candidates = List.filter (fun v -> not (overflows v)) candidates in
  let contributions =
    List.map
      (fun v ->
        ( v,
          List.fold_left
            (fun acc r ->
              Float.max acc
                (Option.value ~default:0.
                   (List.assoc_opt v r.Estimate.per_variable)))
            0. reports ))
      candidates
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  let budget = threshold /. margin in
  let demoted, estimated_error =
    List.fold_left
      (fun (chosen, acc) (v, e) ->
        if acc +. e <= budget then (v :: chosen, acc +. e)
        else (chosen, acc))
      ([], 0.) contributions
  in
  let demoted = List.rev demoted in
  let config = Config.demote_all Config.double demoted target in
  let evaluations =
    (* Datasets fan out across domains; each evaluation stays sequential
       inside so one tuning run never nests domain pools. *)
    Cheffp_util.Pool.parallel_map ~jobs
      (fun args -> evaluate ?builtins ?mode ~prog ~func ~args config)
      args_list
  in
  let worst =
    List.fold_left
      (fun acc ev ->
        if ev.actual_error > acc.actual_error then ev else acc)
      (List.hd evaluations) evaluations
  in
  ( { threshold; demoted; vetoed; estimated_error; contributions;
      evaluation = worst },
    evaluations )
