(** The ADAPT baseline: tape-based AD plus floating-point error
    estimation by post-processing the full tape (paper §VI, [5]).

    Usage mirrors how ADAPT instruments a C++ program with CoDiPack
    types: instantiate a benchmark functor with {!num} over a fresh
    tape, run it, and {!analyze} performs the reverse sweep and applies
    the ADAPT error model [sum |adjoint * (v - round_target v)|] over
    every {e registered} assignment (Eq. 2 of the paper).

    Contrast with CHEF-FP ({!Cheffp_core.Estimate}): here every
    elementary operation is recorded at run time (O(ops) memory, no
    cross-statement optimization of the analysis code), there the error
    code is inlined into a generated, optimized, compiled adjoint. *)

type result = {
  value : float;
  total_error : float;
  per_variable : (string * float) list;  (** largest first *)
  gradients : (string * float) list;  (** adjoints of named inputs *)
  nodes : int;
  tape_bytes : int;
}

type oom = { budget : int; nodes_at_failure : int }

val num : Tape.t -> (module Num.NUM with type t = Tape.num)
(** Overloaded-number instance recording onto [tape]. *)

val analyze :
  ?target:Cheffp_precision.Fp.format ->
  ?memory_budget:int ->
  ?jobs:int ->
  (Tape.t -> Tape.num) ->
  (result, oom) Stdlib.result
(** [analyze f] runs [f] on a fresh tape (instantiate your functor with
    {!num} inside), reverse-propagates from the returned output, and
    evaluates the error model. [target] defaults to [F32].
    [memory_budget] (bytes) emulates a machine limit: exceeding it
    aborts the recording and reports [Error].

    [jobs] (default 1) fans the per-point error-contribution walk out
    over {!Cheffp_util.Pool.parallel_map}; the result is bit-identical
    for every value (see {!Tape.walk_errors}).

    Observability (DESIGN.md §9): the run records "adapt.analyze" with
    child spans "adapt.record" / "adapt.backward" / "adapt.walk", and
    publishes the tape meter as the [adapt.tape_peak_bytes] /
    [adapt.tape_live_bytes] / [adapt.nodes] gauges. *)
