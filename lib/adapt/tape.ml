module Meter = Cheffp_util.Meter

type num = { i : int; v : float }

(* Structure-of-arrays node storage. *)
type t = {
  mutable values : float array;
  mutable dlhs : float array;
  mutable drhs : float array;
  mutable adjoints : float array;
  mutable lhs : int array;
  mutable rhs : int array;
  mutable var_id : int array;
  mutable len : int;
  names : (string, int) Hashtbl.t;
  mutable name_list : string list;  (** reversed *)
  meter : Meter.t option;
}

(* 4 floats + 3 boxed-word indices per node. *)
let bytes_per_node = (4 * 8) + (3 * 8)

let create ?meter () =
  let cap = 1024 in
  {
    values = Array.make cap 0.;
    dlhs = Array.make cap 0.;
    drhs = Array.make cap 0.;
    adjoints = Array.make cap 0.;
    lhs = Array.make cap (-1);
    rhs = Array.make cap (-1);
    var_id = Array.make cap (-1);
    len = 0;
    names = Hashtbl.create 16;
    name_list = [];
    meter;
  }

let length t = t.len
let bytes t = t.len * bytes_per_node

let grow t =
  let cap = Array.length t.values in
  if t.len >= cap then begin
    let ncap = cap * 2 in
    let gf a = let b = Array.make ncap 0. in Array.blit a 0 b 0 t.len; b in
    let gi a = let b = Array.make ncap (-1) in Array.blit a 0 b 0 t.len; b in
    t.values <- gf t.values;
    t.dlhs <- gf t.dlhs;
    t.drhs <- gf t.drhs;
    t.adjoints <- gf t.adjoints;
    t.lhs <- gi t.lhs;
    t.rhs <- gi t.rhs;
    t.var_id <- gi t.var_id
  end

let push t ~v ~lhs ~dlhs ~rhs ~drhs ~var_id =
  (match t.meter with Some m -> Meter.alloc m bytes_per_node | None -> ());
  grow t;
  let i = t.len in
  t.values.(i) <- v;
  t.dlhs.(i) <- dlhs;
  t.drhs.(i) <- drhs;
  t.lhs.(i) <- lhs;
  t.rhs.(i) <- rhs;
  t.var_id.(i) <- var_id;
  t.len <- i + 1;
  { i; v }

let const v = { i = -1; v }

let name_id t name =
  match Hashtbl.find_opt t.names name with
  | Some id -> id
  | None ->
      let id = Hashtbl.length t.names in
      Hashtbl.replace t.names name id;
      t.name_list <- name :: t.name_list;
      id

let input t ?name v =
  let var_id = match name with Some n -> name_id t n | None -> -1 in
  push t ~v ~lhs:(-1) ~dlhs:0. ~rhs:(-1) ~drhs:0. ~var_id

let register t name x =
  push t ~v:x.v ~lhs:x.i ~dlhs:1. ~rhs:(-1) ~drhs:0. ~var_id:(name_id t name)

let unary t ~v ~arg ~partial =
  push t ~v ~lhs:arg.i ~dlhs:partial ~rhs:(-1) ~drhs:0. ~var_id:(-1)

let binary t ~v ~lhs ~dlhs ~rhs ~drhs =
  push t ~v ~lhs:lhs.i ~dlhs ~rhs:rhs.i ~drhs ~var_id:(-1)

let backward t out =
  Array.fill t.adjoints 0 t.len 0.;
  if out.i >= 0 then begin
    t.adjoints.(out.i) <- 1.;
    for k = t.len - 1 downto 0 do
      let a = t.adjoints.(k) in
      if a <> 0. then begin
        let l = t.lhs.(k) in
        if l >= 0 then t.adjoints.(l) <- t.adjoints.(l) +. (a *. t.dlhs.(k));
        let r = t.rhs.(k) in
        if r >= 0 then t.adjoints.(r) <- t.adjoints.(r) +. (a *. t.drhs.(k))
      end
    done
  end

let adjoint t x = if x.i >= 0 then t.adjoints.(x.i) else 0.
let value t i = t.values.(i)

let var_names t =
  let n = Hashtbl.length t.names in
  let a = Array.make n "" in
  List.iteri (fun k name -> a.(n - 1 - k) <- name) t.name_list;
  a

let fold_inputs t ~init ~f =
  let acc = ref init in
  let names = var_names t in
  for k = 0 to t.len - 1 do
    let id = t.var_id.(k) in
    if id >= 0 && t.lhs.(k) < 0 then
      acc := f !acc names.(id) ~adjoint:t.adjoints.(k)
  done;
  !acc

let fold_registered t ~init ~f =
  let acc = ref init in
  let names = var_names t in
  for k = 0 to t.len - 1 do
    let id = t.var_id.(k) in
    if id >= 0 then
      acc := f !acc names.(id) ~adjoint:t.adjoints.(k) ~value:t.values.(k)
  done;
  !acc

(* Nodes per parallel chunk of [walk_errors]: small enough that modest
   tapes still fan out (the pool metrics are how that is verified),
   large enough that the per-chunk domain overhead stays negligible. *)
let walk_chunk = 8_192

let walk_errors t ?(jobs = 1) ~f () =
  let n = t.len in
  let names = var_names t in
  let nchunks = (n + walk_chunk - 1) / walk_chunk in
  (* The per-node contributions are independent, so they may be
     computed out of order into a scratch array; the reduction below
     then consumes them strictly in tape order, which is what makes the
     parallel walk bit-identical to the sequential one (float addition
     is not associative — the summation order must not change). *)
  let precomputed =
    if jobs <= 1 || nchunks <= 1 then None
    else begin
      let out = Array.make n 0. in
      let ranges =
        List.init nchunks (fun c ->
            (c * walk_chunk, min n ((c + 1) * walk_chunk)))
      in
      ignore
        (Cheffp_util.Pool.parallel_map ~jobs
           (fun (lo, hi) ->
             for k = lo to hi - 1 do
               if t.var_id.(k) >= 0 then
                 out.(k) <- f ~adjoint:t.adjoints.(k) ~value:t.values.(k)
             done)
           ranges);
      Some out
    end
  in
  let per_var : (string, float ref) Hashtbl.t = Hashtbl.create 16 in
  let total = ref 0. in
  for k = 0 to n - 1 do
    let id = t.var_id.(k) in
    if id >= 0 then begin
      let e =
        match precomputed with
        | Some a -> a.(k)
        | None -> f ~adjoint:t.adjoints.(k) ~value:t.values.(k)
      in
      (match Hashtbl.find_opt per_var names.(id) with
      | Some r -> r := !r +. e
      | None -> Hashtbl.replace per_var names.(id) (ref e));
      total := !total +. e
    end
  done;
  (!total, Hashtbl.fold (fun name r acc -> (name, !r) :: acc) per_var [])
