module Meter = Cheffp_util.Meter
module Fp = Cheffp_precision.Fp
module Trace = Cheffp_obs.Trace
module Metrics = Cheffp_obs.Metrics

type result = {
  value : float;
  total_error : float;
  per_variable : (string * float) list;
  gradients : (string * float) list;
  nodes : int;
  tape_bytes : int;
}

type oom = { budget : int; nodes_at_failure : int }

let num tape : (module Num.NUM with type t = Tape.num) =
  (module struct
    type t = Tape.num

    let of_float = Tape.const
    let of_int n = Tape.const (float_of_int n)
    let to_float (x : t) = x.Tape.v

    let bin v a dlhs b drhs =
      Tape.binary tape ~v ~lhs:a ~dlhs ~rhs:b ~drhs

    let ( + ) (a : t) (b : t) = bin (a.Tape.v +. b.Tape.v) a 1. b 1.
    let ( - ) (a : t) (b : t) = bin (a.Tape.v -. b.Tape.v) a 1. b (-1.)
    let ( * ) (a : t) (b : t) = bin (a.Tape.v *. b.Tape.v) a b.Tape.v b a.Tape.v

    let ( / ) (a : t) (b : t) =
      bin (a.Tape.v /. b.Tape.v) a (1. /. b.Tape.v) b
        (-.a.Tape.v /. (b.Tape.v *. b.Tape.v))

    let un v a partial = Tape.unary tape ~v ~arg:a ~partial
    let neg (a : t) = un (-.a.Tape.v) a (-1.)
    let sqrt (a : t) =
      let s = Stdlib.sqrt a.Tape.v in
      un s a (1. /. (2. *. s))

    let exp (a : t) =
      let e = Stdlib.exp a.Tape.v in
      un e a e

    let log (a : t) = un (Stdlib.log a.Tape.v) a (1. /. a.Tape.v)
    let sin (a : t) = un (Stdlib.sin a.Tape.v) a (Stdlib.cos a.Tape.v)
    let cos (a : t) = un (Stdlib.cos a.Tape.v) a (-.Stdlib.sin a.Tape.v)

    let pow (a : t) (b : t) =
      let v = a.Tape.v ** b.Tape.v in
      bin v a (b.Tape.v *. (a.Tape.v ** (b.Tape.v -. 1.))) b (v *. Stdlib.log a.Tape.v)

    let fabs (a : t) =
      un (Float.abs a.Tape.v) a
        (if a.Tape.v > 0. then 1. else if a.Tape.v < 0. then -1. else 0.)

    let ( < ) (a : t) (b : t) = a.Tape.v < b.Tape.v
    let ( <= ) (a : t) (b : t) = a.Tape.v <= b.Tape.v
    let ( > ) (a : t) (b : t) = a.Tape.v > b.Tape.v
    let ( >= ) (a : t) (b : t) = a.Tape.v >= b.Tape.v
    let register name x = Tape.register tape name x
    let input name v = Tape.input tape ~name v
  end)

(* Gauges reporting the deterministic byte accounting of the last
   analysis (the numbers behind the paper's ADAPT memory story). *)
let peak_g = Metrics.gauge "adapt.tape_peak_bytes"
let live_g = Metrics.gauge "adapt.tape_live_bytes"
let nodes_g = Metrics.gauge "adapt.nodes"

let analyze ?(target = Fp.F32) ?memory_budget ?(jobs = 1) f =
  Trace.with_span "adapt.analyze" @@ fun () ->
  let meter = Meter.create () in
  Meter.set_budget meter memory_budget;
  let tape = Tape.create ~meter () in
  let record () = Trace.with_span "adapt.record" (fun () -> f tape) in
  let publish_meter () =
    Metrics.set_gauge peak_g (float_of_int (Meter.peak_bytes meter));
    Metrics.set_gauge live_g (float_of_int (Meter.live_bytes meter));
    Metrics.set_gauge nodes_g (float_of_int (Tape.length tape))
  in
  match record () with
  | exception Meter.Out_of_memory_budget { budget; _ } ->
      publish_meter ();
      if Trace.enabled () then Trace.add_attr "oom" (Trace.Bool true);
      Stdlib.Error { budget; nodes_at_failure = Tape.length tape }
  | out ->
      publish_meter ();
      Trace.with_span "adapt.backward" (fun () -> Tape.backward tape out);
      (* The per-point error contributions are independent, so the walk
         fans out over the worker pool; the reduction stays sequential
         in tape order, keeping results bit-identical for every [jobs]
         (see Tape.walk_errors). *)
      let total, per_var =
        Trace.with_span "adapt.walk" (fun () ->
            if Trace.enabled () then Trace.add_attr "jobs" (Trace.Int jobs);
            Tape.walk_errors tape ~jobs
              ~f:(fun ~adjoint ~value ->
                Float.abs (adjoint *. Fp.representation_error target value))
              ())
      in
      let per_variable =
        List.sort (fun (_, a) (_, b) -> compare b a) per_var
      in
      let gradients =
        List.rev
          (Tape.fold_inputs tape ~init:[] ~f:(fun acc name ~adjoint ->
               (name, adjoint) :: acc))
      in
      Stdlib.Ok
        {
          value = out.Tape.v;
          total_error = total;
          per_variable;
          gradients;
          nodes = Tape.length tape;
          tape_bytes = Tape.bytes tape;
        }
