(** Run-time tape for the ADAPT-style operator-overloading baseline.

    Every elementary operation appends one node carrying its value, its
    predecessors, the local partials, an adjoint slot, and a variable
    attribution — the classic tracing design (CoDiPack/ADOL-C style) the
    paper's baseline is built on. The tape therefore grows with the
    {e operation count} of the program, which is exactly why ADAPT runs
    out of memory on the larger workloads of Figs. 4–8; the byte
    accounting here feeds that comparison deterministically.

    Layout is structure-of-arrays; {!bytes_per_node} reflects the payload
    of one node (4 floats + 3 indices). *)

type t

type num = { i : int; v : float }
(** The overloaded number: a tape index ([-1] for constants) and its
    value. *)

val create : ?meter:Cheffp_util.Meter.t -> unit -> t
(** With a meter, every appended node reports {!bytes_per_node}; a meter
    budget emulates the paper's out-of-memory failures. *)

val bytes_per_node : int
val length : t -> int
val bytes : t -> int

val const : float -> num
val input : t -> ?name:string -> float -> num
val register : t -> string -> num -> num
(** Attribution node: names the value for the error-estimation pass. *)

val unary : t -> v:float -> arg:num -> partial:float -> num
val binary : t -> v:float -> lhs:num -> dlhs:float -> rhs:num -> drhs:float -> num

val backward : t -> num -> unit
(** Seed the adjoint of the given output with 1 and propagate to all
    nodes. Resets previous adjoints. *)

val adjoint : t -> num -> float
val value : t -> int -> float

val fold_registered : t -> init:'a -> f:('a -> string -> adjoint:float -> value:float -> 'a) -> 'a
(** Iterate over attribution nodes (inputs included if named), oldest
    first, after {!backward}. *)

val walk_errors :
  t ->
  ?jobs:int ->
  f:(adjoint:float -> value:float -> float) ->
  unit ->
  float * (string * float) list
(** [walk_errors t ~jobs ~f ()] evaluates [f] on every attribution node
    (after {!backward}) and returns the tape-order total and the
    per-name totals (unsorted). With [jobs > 1] and a tape of more than
    one chunk, the per-node evaluations fan out over
    {!Cheffp_util.Pool.parallel_map}; the reduction is always performed
    sequentially in tape order, so the result is bit-identical to
    [jobs = 1] (and to {!fold_registered}) for every [jobs] value. [f]
    must be pure — it runs concurrently on several domains. *)

val fold_inputs : t -> init:'a -> f:('a -> string -> adjoint:float -> 'a) -> 'a
(** Like {!fold_registered} but restricted to named input nodes — i.e.
    the gradient components, after {!backward}. *)

val var_names : t -> string array
