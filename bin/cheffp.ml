(* cheffp: command-line front end to the CHEF-FP reproduction.

   Subcommands:
     check     parse, type-check and pretty-print a MiniFP file
     run       execute a function (optionally under a mixed-precision
               configuration, with modelled cost accounting)
     gradient  generate and print the reverse-mode adjoint
     analyze   run CHEF-FP error estimation and print the report
     tune      greedy mixed-precision tuning against a threshold

   Arguments are passed positionally and typed by the target function's
   signature: scalars as literals, arrays as colon-separated lists
   (e.g. 1.5:2.5:3.5). *)

open Cmdliner
open Cheffp_ir
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Cost = Cheffp_precision.Cost
module Trace = Cheffp_obs.Trace
module Metrics = Cheffp_obs.Metrics
module Export = Cheffp_obs.Export
module Range = Cheffp_range.Range
module Rbox = Cheffp_range.Box
module Rinterval = Cheffp_range.Interval

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let builtins () =
  let b = Builtins.create () in
  Cheffp_fastapprox.Fastapprox.register_builtins b;
  b

let deriv () =
  let d = Cheffp_ad.Deriv.default () in
  Cheffp_fastapprox.Fastapprox.register_derivatives d;
  d

let load path =
  let prog =
    Trace.with_span "parse" (fun () ->
        if Trace.enabled () then Trace.add_attr "file" (Trace.Str path);
        Parser.parse_program (read_file path))
  in
  Trace.with_span "typecheck" (fun () ->
      Typecheck.check_program ~builtins:(builtins ()) prog);
  prog

(* ---------------- FPCore front end ---------------- *)

module Fpcore_import = Cheffp_fpcore.Import
module Fpcore_export = Cheffp_fpcore.Export

let format_arg =
  Arg.(
    value & opt string "auto"
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Input format: $(b,minifp), $(b,fpcore) (FPBench interchange), or \
           $(b,auto) (default; by file extension, .fpcore means FPCore).")

let fpcore_input ~format path =
  match format with
  | "fpcore" -> true
  | "minifp" -> false
  | "auto" -> Filename.check_suffix path ".fpcore"
  | other -> failwith ("unknown format " ^ other ^ " (auto|minifp|fpcore)")

(* Load either syntax; FPCore inputs also carry per-kernel metadata
   (sample arguments from [:pre], an embedded precision config). *)
let load_any ~format path =
  if fpcore_input ~format path then begin
    let cores =
      Trace.with_span "import" (fun () ->
          if Trace.enabled () then Trace.add_attr "file" (Trace.Str path);
          Fpcore_import.parse_file path)
    in
    let prog = Fpcore_import.program cores in
    Trace.with_span "typecheck" (fun () ->
        Typecheck.check_program ~builtins:(builtins ()) prog);
    (prog, Some cores)
  end
  else (load path, None)

(* Parse positional argument strings against the function signature. *)
let parse_args func (raw : string list) =
  let f p s =
    match p.Ast.pty with
    | Ast.Tscalar Ast.Sint -> Interp.Aint (int_of_string s)
    | Ast.Tscalar (Ast.Sflt _) -> Interp.Aflt (float_of_string s)
    | Ast.Tarr (Ast.Sflt _) ->
        Interp.Afarr
          (Array.of_list (List.map float_of_string (String.split_on_char ':' s)))
    | Ast.Tarr Ast.Sint ->
        Interp.Aiarr
          (Array.of_list (List.map int_of_string (String.split_on_char ':' s)))
  in
  let params = List.filter (fun p -> p.Ast.pmode = Ast.In) func.Ast.params in
  if List.length params <> List.length raw then
    failwith
      (Printf.sprintf "function %S expects %d arguments, got %d"
         func.Ast.fname (List.length params) (List.length raw));
  List.map2 f params raw

let parse_config demote =
  List.fold_left
    (fun cfg spec ->
      match String.split_on_char ':' spec with
      | [ var; fmt ] -> (
          match Fp.format_of_string fmt with
          | Some f -> Config.demote cfg var f
          | None -> failwith ("unknown format " ^ fmt))
      | _ -> failwith ("bad demotion spec " ^ spec ^ " (expected var:fmt)"))
    Config.double demote

(* Positional args beat [:pre]-derived samples; FPCore kernels analyzed
   with no explicit arguments fall back to their sample point. *)
let resolve_args cores func (f : Ast.func) raw =
  match (raw, cores) with
  | [], Some cs -> (
      match Fpcore_import.find cs func with
      | Some c -> c.Fpcore_import.default_args
      | None -> parse_args f raw)
  | _ -> parse_args f raw

let model_of_string target = function
  | "taylor" -> Cheffp_core.Model.taylor ~target ()
  | "adapt" -> Cheffp_core.Model.adapt ~target ()
  | "zero" -> Cheffp_core.Model.zero
  | other -> failwith ("unknown model " ^ other ^ " (taylor|adapt|zero)")

(* ---------------- observability flags ---------------- *)

type obs = { trace_file : string option; trace_pretty : bool; metrics : bool }

let obs_term =
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record hierarchical spans of the run (parse, AD, estimate, \
             compile, run, ...) and write them to $(docv) as JSON lines.")
  in
  let trace_pretty =
    Arg.(
      value & flag
      & info [ "trace-pretty" ]
          ~doc:"Record spans and print them as an indented tree on stdout.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print a flat `key value` dump of the metrics registry \
             (compile-cache hits/misses/evictions, pool per-domain task \
             counts, ...) on stdout after the command.")
  in
  Term.(
    const (fun trace_file trace_pretty metrics ->
        { trace_file; trace_pretty; metrics })
    $ trace_file $ trace_pretty $ metrics)

(* Runs [body] under the requested instrumentation and emits the
   requested reports afterwards — also on failure, so a crashed run
   still leaves its partial trace behind. *)
let with_obs ~cmd obs body =
  let tracing = obs.trace_file <> None || obs.trace_pretty in
  if tracing then Trace.set_enabled true;
  if tracing || obs.metrics then Metrics.set_enabled true;
  let finish () =
    if tracing then begin
      let spans = Trace.spans () in
      Option.iter
        (fun path ->
          Export.write_jsonl ~path spans;
          Printf.eprintf "trace: wrote %d span(s) to %s\n%!"
            (List.length spans) path)
        obs.trace_file;
      if obs.trace_pretty then print_string (Export.pretty spans)
    end;
    if obs.metrics then print_string (Export.metrics_dump ())
  in
  Fun.protect ~finally:finish (fun () ->
      Trace.with_span ("cli." ^ cmd) body)

let wrap f = try f (); `Ok () with
  | Failure m | Parser.Error m | Lexer.Error m | Typecheck.Error m
  | Interp.Runtime_error m | Cheffp_core.Estimate.Error m
  | Cheffp_core.Sampling.Spec_error m | Cheffp_ad.Reverse.Error m
  | Cheffp_range.Box.Spec_error m ->
      `Error (false, m)
  | Cheffp_fpcore.Sexp.Error m
  | Fpcore_import.Error m
  | Fpcore_export.Error m ->
      `Error (false, m)
  | Sys_error m -> `Error (false, m)

(* ---------------- arguments ---------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniFP source file.")

let func_arg =
  Arg.(required & opt (some string) None & info [ "f"; "func" ] ~docv:"NAME" ~doc:"Function to operate on.")

let rest_args =
  Arg.(value & pos_right 0 string [] & info [] ~docv:"ARGS" ~doc:"Positional function arguments (arrays as v1:v2:...).")

let demote_arg =
  Arg.(value & opt_all string [] & info [ "demote" ] ~docv:"VAR:FMT" ~doc:"Demote a variable (e.g. t:f32). Repeatable.")

let model_arg =
  Arg.(value & opt string "adapt" & info [ "model" ] ~docv:"MODEL" ~doc:"Error model: taylor, adapt or zero.")

let target_arg =
  Arg.(value & opt string "f32" & info [ "target" ] ~docv:"FMT" ~doc:"Demotion target format (f32 or f16).")

let threshold_arg =
  Arg.(required & opt (some float) None & info [ "threshold" ] ~docv:"T" ~doc:"Error threshold.")

let jobs_arg =
  Arg.(
    value
    & opt int (Cheffp_util.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel candidate evaluation (1 = sequential; \
           default: the machine's recommended domain count minus one, at \
           least 1). Results are identical for every value.")

let batch_arg =
  Arg.(
    value
    & opt int Batch.default_lanes
    & info [ "batch" ] ~docv:"K"
        ~doc:
          "Evaluate candidate configurations K per lane-parallel sweep \
           (Ir.Batch): one configuration-generic compile, K configs per run. \
           Results are bit-identical to scalar evaluation for every K.")

let no_batch_arg =
  Arg.(
    value & flag
    & info [ "no-batch" ]
        ~doc:"Disable batched evaluation; run every candidate scalar.")

(* --batch K unless --no-batch (or a degenerate K) turned it off. *)
let batch_of ~batch ~no_batch =
  if no_batch || batch < 2 then None else Some batch

let strategy_arg =
  Arg.(
    value
    & opt string "hybrid"
    & info [ "strategy" ] ~docv:"S"
        ~doc:
          "Candidate-judging strategy: $(b,measured) executes every \
           candidate (pure Precimonious baseline), $(b,modelled) scores \
           everything from one gradient-augmented profile run (zero \
           candidate executions), $(b,hybrid) (default) measures every \
           accept/reject decision but lets the profile bound each grow \
           round, skipping the executions measured search wastes on \
           speculation past a failure — chosen set bit-identical to \
           measured, strictly fewer runs.")

let strategy_of s =
  match Cheffp_core.Search.strategy_of_string s with
  | Some st -> st
  | None -> failwith ("unknown strategy " ^ s ^ " (measured|modelled|hybrid)")

let prune_margin_arg =
  Arg.(
    value
    & opt float 64.
    & info [ "prune-margin" ] ~docv:"M"
        ~doc:
          "Hybrid model-distrust margin (>= 1): a candidate set is \
           treated as model-rejected — bounding the current grow round, \
           or skipping the all-demoted probe — only when its profile \
           score exceeds M times the threshold. Decisions stay \
           measured; M only shifts where executions are saved.")

let target_of s =
  match Fp.format_of_string s with
  | Some f -> f
  | None -> failwith ("unknown format " ^ s)

(* ---------------- Monte-Carlo input sampling ---------------- *)

let samples_arg =
  Arg.(
    value & opt int 0
    & info [ "samples" ] ~docv:"N"
        ~doc:
          "Monte-Carlo input sampling: draw $(docv) argument vectors from \
           per-variable distributions (--dist entries, FPCore [:pre] \
           ranges, or a default \xc2\xb150% box around the base value) and \
           report / judge error quantiles over them. 0 (default) keeps the \
           single-point behaviour.")

let dist_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dist" ] ~docv:"SPEC"
        ~doc:
          "Per-variable input distributions, entries separated by spaces or \
           ';': $(b,name=fixed:v), $(b,name=uniform:lo,hi) or \
           $(b,name=normal:mu,sigma) — e.g. 'x=uniform:0,1 y=normal:0,2'. \
           Variables without an entry fall back to their FPCore [:pre] \
           range, then to the default box.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"S"
        ~doc:
          "Sampling seed. Sample i is a pure function of (seed, i): streams \
           are identical across --jobs values and batch lane widths.")

let target_quantile_arg =
  Arg.(
    value & opt float 0.99
    & info [ "target-quantile" ] ~docv:"Q"
        ~doc:
          "With --samples: the error quantile the threshold applies to \
           (0.99 = p99, 0.5 = median, 1.0 = sampled max). Default 0.99.")

(* The kernel's FPCore [:pre] ranges, when the input came through the
   FPCore front end — consumed by both the sampling plan and the
   rigorous range box. *)
let kernel_ranges cores func =
  match cores with
  | Some cs -> (
      match Fpcore_import.find cs func with
      | Some c -> c.Fpcore_import.ranges
      | None -> [])
  | None -> []

(* Resolve the per-variable sampling plan: explicit --dist entries win,
   then the kernel's FPCore [:pre] box, then the default box. *)
let sampling_plan ~dist cores func (f : Ast.func) args =
  let dists =
    match dist with
    | Some s -> Cheffp_core.Sampling.dists_of_string s
    | None -> []
  in
  Cheffp_core.Sampling.plan ~dists ~ranges:(kernel_ranges cores func) ~func:f
    ~args ()

(* ---------------- rigorous range bounds ---------------- *)

(* A sampling plan's support as a range box: [None] when any draw has
   unbounded support (Normal) — no finite box covers it, so rigorous
   pruning must stay off. *)
let box_of_plan plan =
  let exception Unbounded_support in
  try
    Some
      (Rbox.make
         (List.map
            (fun (name, view) ->
              let dim =
                match view with
                | `Fixed a -> Rbox.Dfixed a
                | `Interval (lo, hi) -> Rbox.Dflt (Rinterval.make lo hi)
                | `Intervals pairs ->
                    Rbox.Dfarr
                      (Array.map (fun (lo, hi) -> Rinterval.make lo hi) pairs)
                | `Unbounded -> raise Unbounded_support
              in
              (name, dim))
            (Cheffp_core.Sampling.box_view plan)))
  with Unbounded_support -> None

let range_arg =
  Arg.(
    value & flag
    & info [ "range" ]
        ~doc:
          "Rigorous interval/Taylor-form range analysis: certify a sound \
           upper bound on the mixed-precision error over an input box \
           (FPCore [:pre] ranges, --box overrides, or the default \xc2\xb150% \
           box; zero-valued defaults widen to [-1,1]). On $(b,search), use \
           the certified bounds to accept candidates without executing \
           them — the chosen set is bit-identical, with strictly fewer \
           candidate executions whenever a bound fires.")

let box_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "box" ] ~docv:"SPEC"
        ~doc:
          "Override range-analysis input intervals: 'x=lo,hi; y=lo,hi' \
           entries for scalar float parameters (implies nothing for \
           sampling; see --dist for that).")

let range_backend_arg =
  Arg.(
    value & opt string "bb"
    & info [ "range-backend" ] ~docv:"B"
        ~doc:
          "Global-bound backend: $(b,bb) (branch-and-bound box splitting, \
           default) or $(b,whole) (single evaluation of the whole box).")

(* The analysis box for explicit range analysis: :pre ranges over the
   default box, --box on top. *)
let range_box ~boxspec cores func (f : Ast.func) args =
  let box = Rbox.of_args ~ranges:(kernel_ranges cores func) ~func:f ~args () in
  match boxspec with
  | Some spec -> Rbox.apply_override box (Rbox.override_of_string spec)
  | None -> box

(* ---------------- commands ---------------- *)

let check_cmd =
  let run file =
    wrap (fun () ->
        let prog = load file in
        print_string (Pp.program_to_string prog);
        Printf.printf "// %d function(s), OK\n" (List.length prog.Ast.funcs))
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse, type-check and pretty-print a MiniFP file.")
    Term.(ret (const run $ file_arg))

let run_cmd =
  let run file func demote fuel raw =
    wrap (fun () ->
        let prog = load file in
        let f = Ast.func_exn prog func in
        let args = parse_args f raw in
        let config = parse_config demote in
        let counter = Cost.Counter.create Cost.default in
        let r =
          Interp.run ~builtins:(builtins ()) ~config ~counter ~fuel ~prog
            ~func args
        in
        (match r.Interp.ret with
        | Some (Builtins.F x) -> Printf.printf "result: %.17g\n" x
        | Some (Builtins.I n) -> Printf.printf "result: %d\n" n
        | None -> print_endline "result: (void)");
        List.iter
          (fun (name, v) ->
            match v with
            | Builtins.F x -> Printf.printf "out %s = %.17g\n" name x
            | Builtins.I n -> Printf.printf "out %s = %d\n" name n)
          r.Interp.outs;
        Printf.printf "modelled cost: %.1f units, %d implicit casts\n"
          (Cost.Counter.total counter) (Cost.Counter.casts counter))
  in
  let fuel_arg =
    Arg.(value & opt int (-1)
         & info [ "fuel" ] ~docv:"N"
             ~doc:"Abort after N executed statements (guard against runaway loops).")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute a function, optionally under a mixed-precision configuration.")
    Term.(ret (const run $ file_arg $ func_arg $ demote_arg $ fuel_arg $ rest_args))

let gradient_cmd =
  let run file func =
    wrap (fun () ->
        let prog = load file in
        let g = Cheffp_ad.Reverse.differentiate ~deriv:(deriv ()) prog func in
        print_endline (Pp.func_to_string g))
  in
  Cmd.v
    (Cmd.info "gradient" ~doc:"Generate and print the reverse-mode adjoint source.")
    Term.(ret (const run $ file_arg $ func_arg))

let analyze_cmd =
  let run file func model target show_code format samples dist seed range
      boxspec range_backend obs raw =
    wrap (fun () ->
        with_obs ~cmd:"analyze" obs @@ fun () ->
        let prog, cores = load_any ~format file in
        let f = Ast.func_exn prog func in
        let target = target_of target in
        let model = model_of_string target model in
        let est =
          Cheffp_core.Estimate.estimate_error ~model ~deriv:(deriv ())
            ~builtins:(builtins ())
            ~options:
              {
                Cheffp_core.Estimate.default_options with
                track_ranges = true;
              }
            ~prog ~func ()
        in
        if show_code then begin
          print_endline "// generated error-estimating adjoint:";
          print_endline (Pp.func_to_string (Cheffp_core.Estimate.generated est))
        end;
        let args = resolve_args cores func f raw in
        let r = Cheffp_core.Estimate.run est args in
        Printf.printf "model: %s\n" model.Cheffp_core.Model.model_name;
        print_string (Cheffp_core.Report.estimate r);
        if samples > 0 then begin
          let plan = sampling_plan ~dist cores func f args in
          let summary =
            Cheffp_core.Estimate.run_sampled est ~plan
              ~seed:(Int64.of_int seed) ~samples
          in
          print_string
            (Cheffp_core.Report.sampled
               ~plan:(Cheffp_core.Sampling.describe plan)
               summary)
        end;
        if range then begin
          let box = range_box ~boxspec cores func f args in
          let a =
            Trace.with_span "range.analyze" (fun () ->
                Range.analyze ~backend:range_backend ~builtins:(builtins ())
                  ~prog ~func ~box ())
          in
          print_string (Range.report ~target a)
        end)
  in
  let show_code =
    Arg.(value & flag & info [ "show-code" ] ~doc:"Print the generated adjoint.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Estimate the floating-point error of a function (CHEF-FP).")
    Term.(
      ret (const run $ file_arg $ func_arg $ model_arg $ target_arg $ show_code
           $ format_arg $ samples_arg $ dist_arg $ seed_arg $ range_arg
           $ box_arg $ range_backend_arg $ obs_term $ rest_args))

let tune_cmd =
  let run file func threshold target emit profiled format jobs batch no_batch
      samples dist seed obs raw =
    wrap (fun () ->
        with_obs ~cmd:"tune" obs @@ fun () ->
        let prog, cores = load_any ~format file in
        let f = Ast.func_exn prog func in
        let args = resolve_args cores func f raw in
        let target = target_of target in
        let profile =
          if profiled then
            Some
              (Cheffp_core.Profile.build_cached ~builtins:(builtins ()) ~prog
                 ~func ~args ())
          else None
        in
        let o =
          Cheffp_core.Tuner.tune ?profile ~target ~builtins:(builtins ())
            ~jobs ?batch:(batch_of ~batch ~no_batch) ~prog ~func ~args
            ~threshold ()
        in
        print_string (Cheffp_core.Report.tuning o);
        if samples > 0 then begin
          (* Post-hoc distributional check of the chosen configuration:
             measured |demoted - double| quantiles over the sampled
             input box, through the batched input-sweep axis. *)
          let plan = sampling_plan ~dist cores func f args in
          let inputs =
            Cheffp_core.Sampling.draw_many plan ~seed:(Int64.of_int seed)
              samples
          in
          let summary, _ =
            Cheffp_core.Sampling.measured_summary ~jobs
              ~builtins:(builtins ()) ~prog ~func
              ~config:o.Cheffp_core.Tuner.evaluation.Cheffp_core.Tuner.config
              inputs
          in
          print_string
            (Cheffp_core.Report.sampled
               ~plan:(Cheffp_core.Sampling.describe plan)
               summary)
        end;
        if emit then begin
          print_endline "\n// automatically rewritten mixed-precision source:";
          print_endline
            (Pp.func_to_string
               (Cheffp_core.Rewrite.of_outcome prog ~func o))
        end)
  in
  let emit_arg =
    Arg.(value & flag
         & info [ "emit" ]
             ~doc:"Print the automatically rewritten mixed-precision source.")
  in
  let profiled_arg =
    Arg.(
      value & flag
      & info [ "profiled" ]
          ~doc:
            "Drive the selection from a cached error-atom profile (one \
             gradient-augmented run, reused across invocations in the same \
             process) instead of a fresh adapt-model analysis.")
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Greedy mixed-precision tuning against an error threshold.")
    Term.(
      ret (const run $ file_arg $ func_arg $ threshold_arg $ target_arg
           $ emit_arg $ profiled_arg $ format_arg $ jobs_arg $ batch_arg
           $ no_batch_arg $ samples_arg $ dist_arg $ seed_arg $ obs_term
           $ rest_args))

let copy_args args =
  List.map
    (function
      | Interp.Afarr a -> Interp.Afarr (Array.copy a)
      | Interp.Aiarr a -> Interp.Aiarr (Array.copy a)
      | (Interp.Aint _ | Interp.Aflt _) as x -> x)
    args

let search_cmd =
  let run file func threshold target strategy prune_margin format jobs batch
      no_batch samples dist seed target_quantile range obs raw =
    wrap (fun () ->
        with_obs ~cmd:"search" obs @@ fun () ->
        let prog, cores = load_any ~format file in
        let f = Ast.func_exn prog func in
        let args = resolve_args cores func f raw in
        let target = target_of target in
        (* Ground-truth column: shadow-execute the chosen configuration
           against the double-double reference (search validates in
           Source mode, so measure there too). *)
        let measure config =
          Cheffp_shadow.Shadow.measured_error
            (Cheffp_shadow.Shadow.run ~builtins:(builtins ()) ~config
               ~mode:Config.Source ~prog ~func (copy_args args))
        in
        let sampling =
          if samples > 0 then begin
            let plan = sampling_plan ~dist cores func f args in
            Some
              {
                Cheffp_core.Search.inputs =
                  Cheffp_core.Sampling.draw_many plan
                    ~seed:(Int64.of_int seed) samples;
                quantile = target_quantile;
              }
          end
          else None
        in
        (* Rigorous pruning (--range): certified bounds let the search
           accept candidates without executing them. Single-point
           tuning certifies over the degenerate point box (tightest);
           sampled tuning over the plan's support box — unless a draw
           has unbounded support (Normal), where no finite box exists
           and pruning stays off. *)
        let prune_bound =
          if not range then None
          else
            let box =
              match sampling with
              | None -> Some (Rbox.point_of_args ~func:f ~args ())
              | Some _ -> box_of_plan (sampling_plan ~dist cores func f args)
            in
            match box with
            | None -> None
            | Some box ->
                let a =
                  Trace.with_span "range.analyze" (fun () ->
                      Range.analyze ~builtins:(builtins ()) ~prog ~func ~box
                        ())
                in
                Some (Range.pruner a ~target)
        in
        let o =
          Cheffp_core.Search.tune ~target ~builtins:(builtins ()) ~jobs
            ~strategy:(strategy_of strategy) ~prune_margin ?prune_bound
            ?batch:(batch_of ~batch ~no_batch) ?sampling ~measure ~prog ~func
            ~args ~threshold ()
        in
        print_string (Cheffp_core.Report.search o))
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Precimonious-style search-based tuning baseline (compare with tune).")
    Term.(
      ret (const run $ file_arg $ func_arg $ threshold_arg $ target_arg
           $ strategy_arg $ prune_margin_arg $ format_arg $ jobs_arg
           $ batch_arg $ no_batch_arg $ samples_arg $ dist_arg $ seed_arg
           $ target_quantile_arg $ range_arg $ obs_term $ rest_args))

let validate_cmd =
  let run file func demote mode margin fuel format obs raw =
    wrap (fun () ->
        with_obs ~cmd:"validate" obs @@ fun () ->
        let prog, cores = load_any ~format file in
        let f = Ast.func_exn prog func in
        let args = resolve_args cores func f raw in
        (* with no --demote, an FPCore kernel's own :cheffp-config
           (written by `cheffp export --demote`) is what gets checked *)
        let config =
          match (demote, cores) with
          | [], Some cs -> (
              match Fpcore_import.find cs func with
              | Some c -> c.Fpcore_import.config
              | None -> Config.double)
          | _ -> parse_config demote
        in
        let mode =
          match mode with
          | "extended" -> Config.Extended
          | "source" -> Config.Source
          | other -> failwith ("unknown mode " ^ other ^ " (extended|source)")
        in
        let v =
          Cheffp_shadow.Oracle.check_estimate ~builtins:(builtins ()) ~mode
            ~margin ~fuel ~prog ~func ~config args
        in
        print_string (Cheffp_shadow.Oracle.render v);
        if not v.Cheffp_shadow.Oracle.sound then
          failwith
            (Printf.sprintf
               "validate: UNSOUND — measured error %.6e exceeds the modelled \
                bound %.6e"
               v.Cheffp_shadow.Oracle.measured_error
               v.Cheffp_shadow.Oracle.bound))
  in
  let mode_arg =
    Arg.(
      value & opt string "extended"
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Rounding mode of the validated execution: extended (default; \
             rounds on stores, the estimate's own semantics) or source \
             (rounds every operation; use --margin 2, see DESIGN.md \xc2\xa710).")
  in
  let margin_arg =
    Arg.(
      value & opt float 1.0
      & info [ "margin" ] ~docv:"M"
          ~doc:"Safety factor applied to the modelled error in the bound.")
  in
  let fuel_arg =
    Arg.(
      value & opt int (-1)
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Abort after N executed statements (guard against runaway loops).")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Check the CHEF-FP estimate against double-double shadow execution: \
          measure the true error of a (possibly demoted) run and report \
          whether the modelled bound covers it, and how tightly. Exits \
          non-zero on an unsound verdict.")
    Term.(
      ret (const run $ file_arg $ func_arg $ demote_arg $ mode_arg $ margin_arg
           $ fuel_arg $ format_arg $ obs_term $ rest_args))

let write_output out text =
  match out with
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.eprintf "wrote %s\n%!" path
  | None -> print_string text

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Write the result to $(docv) instead of stdout.")

let import_cmd =
  let run files out samples dist seed =
    wrap (fun () ->
        if files = [] then failwith "cheffp import: no input files";
        let buf = Buffer.create 4096 in
        Buffer.add_string buf
          (Printf.sprintf
             "// MiniFP translation of %d FPCore file(s), generated by \
              `cheffp import`.\n"
             (List.length files));
        let used = Hashtbl.create 64 in
        let uniquify name =
          if not (Hashtbl.mem used name) then begin
            Hashtbl.replace used name ();
            name
          end
          else
            let rec go k =
              let c = Printf.sprintf "%s_%d" name k in
              if Hashtbl.mem used c then go (k + 1)
              else begin
                Hashtbl.replace used c ();
                c
              end
            in
            go 2
        in
        let arg_str = function
          | Interp.Aflt x -> Printf.sprintf "%.17g" x
          | Interp.Aint n -> string_of_int n
          | Interp.Afarr _ | Interp.Aiarr _ -> "?"
        in
        let all = ref [] in
        List.iter
          (fun file ->
            let cores = Fpcore_import.parse_file file in
            (* Distributional annotation (--samples): the modelled
               estimate at the [:pre] midpoint is one point of a curve;
               sampling the [:pre] box shows how far the tail sits from
               it. Built against the file-local translation unit so
               cross-file name uniquification cannot interfere. *)
            let fprog =
              if samples > 0 then Some (Fpcore_import.program cores)
              else None
            in
            let sample_comment (c : Fpcore_import.core) =
              match fprog with
              | None -> ()
              | Some prog ->
                  let est =
                    Cheffp_core.Estimate.estimate_error
                      ~model:(Cheffp_core.Model.adapt ())
                      ~deriv:(deriv ()) ~builtins:(builtins ()) ~prog
                      ~func:c.Fpcore_import.name ()
                  in
                  let midpoint =
                    (Cheffp_core.Estimate.run est c.default_args)
                      .Cheffp_core.Estimate.total_error
                  in
                  let dists =
                    match dist with
                    | Some s -> Cheffp_core.Sampling.dists_of_string s
                    | None -> []
                  in
                  let plan =
                    Cheffp_core.Sampling.plan ~dists ~ranges:c.ranges
                      ~func:c.func ~args:c.default_args ()
                  in
                  let s =
                    Cheffp_core.Estimate.run_sampled est ~plan
                      ~seed:(Int64.of_int seed) ~samples
                  in
                  Buffer.add_string buf
                    (Printf.sprintf "// midpoint estimate: %.3e\n" midpoint);
                  Buffer.add_string buf
                    (Printf.sprintf
                       "// sampled estimate quantiles (N=%d, seed %d): p50 \
                        %.3e  p95 %.3e  p99 %.3e  max %.3e\n"
                       s.Cheffp_core.Quantile.count seed
                       s.Cheffp_core.Quantile.p50 s.Cheffp_core.Quantile.p95
                       s.Cheffp_core.Quantile.p99 s.Cheffp_core.Quantile.max)
            in
            Buffer.add_string buf
              (Printf.sprintf "\n// --- %s ---\n" (Filename.basename file));
            List.iter
              (fun (c : Fpcore_import.core) ->
                let f = { c.Fpcore_import.func with Ast.fname = uniquify c.name } in
                all := f :: !all;
                Buffer.add_char buf '\n';
                Option.iter
                  (fun n ->
                    Buffer.add_string buf (Printf.sprintf "// :name %S\n" n))
                  c.source_name;
                Option.iter
                  (fun p ->
                    Buffer.add_string buf (Printf.sprintf "// :pre %s\n" p))
                  c.pre;
                if c.default_args <> [] then
                  Buffer.add_string buf
                    (Printf.sprintf "// suggested args: %s\n"
                       (String.concat " " (List.map arg_str c.default_args)));
                (match Config.demoted c.config with
                | [] -> ()
                | ds ->
                    Buffer.add_string buf
                      (Printf.sprintf "// config: %s\n"
                         (String.concat " "
                            (List.map
                               (fun (v, fmt) ->
                                 v ^ ":" ^ Fp.format_to_string fmt)
                               ds))));
                sample_comment c;
                Buffer.add_string buf (Pp.func_to_string f);
                Buffer.add_char buf '\n')
              cores)
          files;
        (* the translation must itself be a valid MiniFP unit *)
        Typecheck.check_program ~builtins:(builtins ())
          { Ast.funcs = List.rev !all };
        write_output out (Buffer.contents buf))
  in
  let files_arg =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE" ~doc:"FPCore file(s) to translate.")
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:
         "Translate FPCore (FPBench) files into one MiniFP translation \
          unit, with each kernel's provenance, [:pre]-derived sample \
          arguments and embedded precision config as comments. \
          Unsupported constructs are rejected with their source location, \
          never silently mistranslated. With --samples, each kernel is \
          additionally annotated with its modelled-error quantiles over \
          N inputs drawn from the [:pre] box, next to the midpoint \
          estimate.")
    Term.(
      ret
        (const run $ files_arg $ out_arg $ samples_arg $ dist_arg $ seed_arg))

let export_cmd =
  let run file func demote format out =
    wrap (fun () ->
        let prog, _ = load_any ~format file in
        let config =
          if demote = [] then None else Some (parse_config demote)
        in
        let text =
          match func with
          | Some fn -> Fpcore_export.func_to_fpcore ?config ~prog ~func:fn ()
          | None -> Fpcore_export.program_to_fpcore ?config prog
        in
        write_output out text)
  in
  let func_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "func" ] ~docv:"NAME"
          ~doc:"Export only this function (default: every function).")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Render MiniFP functions as FPCore 1.x for exchange with other \
          FPBench tools. A --demote configuration is embedded as \
          :cheffp-config metadata; re-importing the output reconstructs \
          the function exactly (see DESIGN.md \xc2\xa715 for the supported \
          subset).")
    Term.(
      ret
        (const run $ file_arg $ func_opt_arg $ demote_arg $ format_arg
       $ out_arg))

let adapt_cmd =
  let module Adapt = Cheffp_adapt.Adapt in
  let module B = Cheffp_benchmarks in
  let run bench n target budget jobs obs =
    wrap (fun () ->
        with_obs ~cmd:"adapt" obs @@ fun () ->
        let target = target_of target in
        let analyze run =
          Adapt.analyze ~target ?memory_budget:budget ~jobs run
        in
        let result =
          match bench with
          | "arclength" ->
              analyze (fun tape ->
                  let module N = (val Adapt.num tape) in
                  let module R = B.Arclength.Native (N) in
                  R.run ~n)
          | "simpsons" ->
              analyze (fun tape ->
                  let module N = (val Adapt.num tape) in
                  let module R = B.Simpsons.Native (N) in
                  R.run ~a:0. ~b:Float.pi ~n)
          | "kmeans" ->
              let w = B.Kmeans.generate ~npoints:n () in
              analyze (fun tape ->
                  let module N = (val Adapt.num tape) in
                  let module R = B.Kmeans.Native (N) in
                  R.run w)
          | other ->
              failwith
                ("unknown benchmark " ^ other
               ^ " (arclength|simpsons|kmeans)")
        in
        match result with
        | Error oom ->
            Printf.printf
              "ADAPT: out of memory budget (%s) after %d tape nodes (%s)\n"
              (Cheffp_util.Meter.bytes_pp oom.Adapt.budget)
              oom.Adapt.nodes_at_failure
              (Cheffp_util.Meter.bytes_pp
                 (oom.Adapt.nodes_at_failure
                 * Cheffp_adapt.Tape.bytes_per_node))
        | Ok r ->
            Printf.printf "value: %.17g\n" r.Adapt.value;
            Printf.printf "estimated FP error (ADAPT, %s): %.6g\n"
              (Fp.format_to_string target)
              r.Adapt.total_error;
            Printf.printf "tape: %d nodes, %s\n" r.Adapt.nodes
              (Cheffp_util.Meter.bytes_pp r.Adapt.tape_bytes);
            print_endline "top error contributions:";
            List.iteri
              (fun i (name, e) ->
                if i < 10 then Printf.printf "  %-12s %.6g\n" name e)
              r.Adapt.per_variable)
  in
  let bench_arg =
    Arg.(
      value
      & opt string "arclength"
      & info [ "bench" ] ~docv:"NAME"
          ~doc:
            "Built-in benchmark to analyze: arclength, simpsons or kmeans \
             (the ADAPT baseline records a run-time tape, so it operates on \
             the native benchmark implementations, not on MiniFP files).")
  in
  let n_arg =
    Arg.(
      value & opt int 2_000
      & info [ "n" ] ~docv:"N"
          ~doc:"Workload size (sample points / k-means points).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"BYTES"
          ~doc:"Emulated tape memory budget; exceeding it aborts (paper's OOM).")
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:
         "Run the ADAPT operator-overloading baseline on a built-in \
          benchmark (compare with analyze).")
    Term.(
      ret (const run $ bench_arg $ n_arg $ target_arg $ budget_arg $ jobs_arg
           $ obs_term))

let serve_cmd =
  let module Server = Cheffp_server.Server in
  let run socket port workers max_pending metrics no_telemetry window_epochs
      epoch_seconds tail_slowest tail_errors =
    wrap (fun () ->
        if metrics then Metrics.set_enabled true;
        (* Windowed latency quantiles need the timing histograms, so
           telemetry implies the metrics registry. *)
        if not no_telemetry then Metrics.set_enabled true;
        let listen =
          match (socket, port) with
          | Some path, None -> Server.Unix_socket path
          | None, Some p -> Server.Tcp p
          | None, None -> Server.Unix_socket "cheffp.sock"
          | Some _, Some _ -> failwith "pass either --socket or --port, not both"
        in
        let srv =
          Server.create ?workers ~max_pending ~telemetry:(not no_telemetry)
            ~window_epochs ~window_epoch_s:epoch_seconds ~tail_slowest
            ~tail_errors listen
        in
        let stop _ = Server.request_stop srv in
        (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
         with Invalid_argument _ -> ());
        (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
         with Invalid_argument _ -> ());
        Printf.eprintf "cheffp serve: listening on %s (%d worker domain(s))\n%!"
          (Server.address srv) (Server.workers srv);
        Server.run srv;
        Printf.eprintf "cheffp serve: drained, bye\n%!";
        if metrics then print_string (Export.metrics_dump ()))
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv) (default cheffp.sock).")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"N"
          ~doc:"Listen on loopback TCP port $(docv) instead (0 = ephemeral).")
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker domains executing requests (default: the machine's \
             recommended domain count minus one, at least 2).")
  in
  let max_pending_arg =
    Arg.(
      value
      & opt int Server.default_max_pending
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Admission bound: requests arriving while $(docv) tasks are \
             already queued are rejected immediately.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Enable the metrics registry and dump it after the drain.")
  in
  let no_telemetry_arg =
    Arg.(
      value & flag
      & info [ "no-telemetry" ]
          ~doc:
            "Disable continuous telemetry (window ticker, tail trace \
             retention, per-request span recording). stats/traces \
             requests still answer, with empty windows.")
  in
  let window_epochs_arg =
    Arg.(
      value & opt int 12
      & info [ "window-epochs" ] ~docv:"N"
          ~doc:"Sliding-window ring size: $(docv) epoch snapshots.")
  in
  let epoch_seconds_arg =
    Arg.(
      value & opt float 5.
      & info [ "epoch-seconds" ] ~docv:"S"
          ~doc:
            "Seconds between epoch snapshots; the stats window covers \
             up to window-epochs x $(docv) seconds.")
  in
  let tail_slowest_arg =
    Arg.(
      value & opt int 16
      & info [ "tail-slowest" ] ~docv:"K"
          ~doc:"Retain the $(docv) slowest request traces.")
  in
  let tail_errors_arg =
    Arg.(
      value & opt int 64
      & info [ "tail-errors" ] ~docv:"N"
          ~doc:"Retain the most recent $(docv) error request traces.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived analysis server: newline-delimited JSON \
          requests (analyze, tune, search, sample, validate, range, ping, \
          metrics, stats, traces, shutdown) over a Unix or loopback TCP \
          socket, \
          executed concurrently on a shared worker-domain pool with \
          per-request tracing, continuous telemetry (sliding-window \
          stats, tail trace retention, Prometheus exposition) and a \
          cross-request compile cache. Results are bit-identical to the \
          one-shot subcommands.")
    Term.(
      ret
        (const run $ socket_arg $ port_arg $ workers_arg $ max_pending_arg
       $ metrics_arg $ no_telemetry_arg $ window_epochs_arg
       $ epoch_seconds_arg $ tail_slowest_arg $ tail_errors_arg))

(* `cheffp top`: live terminal dashboard over the server's [stats]
   endpoint. Pure client: polls, renders, repeats — every number it
   shows is computed server-side by Obs.Window / Obs.Tail. *)
let top_cmd =
  let module Client = Cheffp_server.Client in
  let module Sjson = Cheffp_server.Json in
  let run socket port interval count limit raw =
    wrap (fun () ->
        let connect () =
          match (socket, port) with
          | Some path, None -> Client.connect_unix path
          | None, Some p -> Client.connect_tcp p
          | None, None -> Client.connect_unix "cheffp.sock"
          | Some _, Some _ -> failwith "pass either --socket or --port, not both"
        in
        let target =
          match (socket, port) with
          | None, Some p -> Printf.sprintf "127.0.0.1:%d" p
          | Some path, _ -> path
          | None, None -> "cheffp.sock"
        in
        let c = Client.retry_connect connect in
        let num j = Option.value ~default:0. (Sjson.to_float_opt j) in
        let fmt_ms j =
          match Sjson.to_float_opt j with
          | Some ms -> Printf.sprintf "%.2fms" ms
          | None -> "-"
        in
        let mem o k = Sjson.member k o in
        let render frame r =
          let b = Buffer.create 1024 in
          let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
          let reqs = mem r "requests" and lat = mem r "latency" in
          let qw = mem r "queue_wait" and pool = mem r "pool" in
          let cache = mem r "cache" and tail = mem r "tail" in
          line "cheffp top — %s   frame %d   window %.1fs   workers %.0f%s"
            target frame (num (mem r "window_s")) (num (mem r "workers"))
            (match Sjson.to_bool_opt (mem r "telemetry") with
            | Some false -> "   [telemetry OFF]"
            | _ -> "");
          line "requests   %6.1f req/s   window %.0f   total %.0f   errors %.0f (window %.0f)   rejected %.0f"
            (num (mem reqs "rate")) (num (mem reqs "window"))
            (num (mem reqs "total")) (num (mem reqs "errors_total"))
            (num (mem reqs "errors_window")) (num (mem reqs "rejected_total"));
          line "           active %.0f   queue depth %.0f   pool util %3.0f%%   completed %.1f/s   steals %.0f"
            (num (mem reqs "active")) (num (mem reqs "queue_depth"))
            (100. *. num (mem pool "utilization"))
            (num (mem pool "completed_rate")) (num (mem pool "steals_window"));
          line "latency    p50 %s   p95 %s   p99 %s   mean %s"
            (fmt_ms (mem lat "p50_ms")) (fmt_ms (mem lat "p95_ms"))
            (fmt_ms (mem lat "p99_ms")) (fmt_ms (mem lat "mean_ms"));
          line "queue wait p50 %s   p95 %s   p99 %s"
            (fmt_ms (mem qw "p50_ms")) (fmt_ms (mem qw "p95_ms"))
            (fmt_ms (mem qw "p99_ms"));
          (let search = mem r "search" and range = mem r "range" in
           line
             "rigorous   pruned %.0f (window %.0f)   range bounds %.0f \
              (window %.0f)   splits %.0f"
             (num (mem search "pruned_total"))
             (num (mem search "pruned_window"))
             (num (mem range "bounds_total"))
             (num (mem range "bounds_window"))
             (num (mem range "splits_total")));
          line "cache      hits %.0f   misses %.0f   size %.0f   window hit rate %s"
            (num (mem cache "hits_total")) (num (mem cache "misses_total"))
            (num (mem cache "size"))
            (match Sjson.to_float_opt (mem cache "hit_rate_window") with
            | Some x -> Printf.sprintf "%.1f%%" (100. *. x)
            | None -> "-");
          (match Sjson.to_list (mem cache "shards") with
          | [] -> ()
          | shards ->
              line "  shards   %s"
                (String.concat " "
                   (List.map
                      (fun s ->
                        Printf.sprintf "%.0f/%.0f" (num (mem s "size"))
                          (num (mem s "cap")))
                      shards)));
          (match Sjson.to_list (mem r "tenants") with
          | [] -> ()
          | tenants ->
              line "tenants    %s"
                (String.concat "   "
                   (List.map
                      (fun t ->
                        Printf.sprintf "%s %.1f%% (%.0f lookups)"
                          (Option.value ~default:"?"
                             (Sjson.to_string_opt (mem t "tenant")))
                          (100. *. num (mem t "hit_rate"))
                          (num (mem t "lookups")))
                      tenants)));
          (match Sjson.to_list (mem tail "slowest") with
          | [] -> line "tail       (no retained traces)"
          | slow ->
              line "tail       %.0f error trace(s) retained, slowest:"
                (num (mem tail "errors_retained"));
              List.iter
                (fun e ->
                  line "  %9.2fms  %-8s id=%s%s%s"
                    (num (mem e "dur_ms"))
                    (Option.value ~default:"?"
                       (Sjson.to_string_opt (mem e "cmd")))
                    (match Sjson.to_int_opt (mem e "request_id") with
                    | Some i -> string_of_int i
                    | None -> "?")
                    (match Sjson.to_string_opt (mem e "tenant") with
                    | Some t -> "  tenant=" ^ t
                    | None -> "")
                    (match Sjson.to_bool_opt (mem e "err") with
                    | Some true -> "  [error]"
                    | _ -> ""))
                slow);
          Buffer.contents b
        in
        let id = ref 0 in
        let one frame =
          incr id;
          let resp =
            Client.rpc c
              (Client.request ~id:!id ~cmd:"stats"
                 [
                   (* jump the work queue: a dashboard poll should not
                      wait behind a 1000-candidate search *)
                   ("priority", Sjson.Num 1000.);
                   ("limit", Sjson.Num (float_of_int limit));
                 ])
          in
          (match Sjson.to_bool_opt (Sjson.member "ok" resp) with
          | Some true -> ()
          | _ ->
              failwith
                (Option.value ~default:"stats request failed"
                   (Sjson.to_string_opt (Sjson.member "error" resp))));
          let body =
            if raw then Sjson.to_string (Sjson.member "result" resp) ^ "\n"
            else render frame (Sjson.member "result" resp)
          in
          if count <> 1 && not raw then print_string "\027[2J\027[H";
          print_string body;
          flush stdout
        in
        (try
           let frame = ref 0 in
           let continue () = count = 0 || !frame < count in
           while continue () do
             incr frame;
             one !frame;
             if continue () then Unix.sleepf interval
           done
         with End_of_file ->
           prerr_endline "cheffp top: server closed the connection");
        Client.close c)
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Server Unix-domain socket (default cheffp.sock).")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"N" ~doc:"Server loopback TCP port instead.")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.
      & info [ "interval" ] ~docv:"S" ~doc:"Seconds between polls.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Render $(docv) frames then exit (0 = until interrupted).")
  in
  let limit_arg =
    Arg.(
      value & opt int 8
      & info [ "limit" ] ~docv:"K"
          ~doc:"Show at most $(docv) tail-latency offenders.")
  in
  let raw_arg =
    Arg.(
      value & flag
      & info [ "raw" ] ~doc:"Print the raw stats JSON instead of the dashboard.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard for a running cheffp serve daemon: polls the \
          stats request and renders req/s, windowed p50/p95/p99 \
          latency, pool utilization, per-shard cache occupancy, \
          per-tenant hit rates and the current tail-latency offenders.")
    Term.(
      ret
        (const run $ socket_arg $ port_arg $ interval_arg $ count_arg
       $ limit_arg $ raw_arg))

let sensitivity_cmd =
  let run file func loop raw =
    wrap (fun () ->
        let prog = load file in
        let f = Ast.func_exn prog func in
        let args = parse_args f raw in
        let track =
          match loop with Some name -> `Loop name | None -> `Outermost
        in
        let est =
          Cheffp_core.Estimate.estimate_error
            ~model:(Cheffp_core.Model.adapt ())
            ~deriv:(deriv ()) ~builtins:(builtins ())
            ~options:
              {
                Cheffp_core.Estimate.default_options with
                track_iterations = track;
              }
            ~prog ~func ()
        in
        let r = Cheffp_core.Estimate.run est args in
        if r.Cheffp_core.Estimate.per_iteration = [] then
          print_endline "(no per-iteration records: is there a loop?)"
        else begin
          let _, series =
            Cheffp_core.Sensitivity.normalized
              r.Cheffp_core.Estimate.per_iteration
          in
          let per_row =
            List.map
              (fun (name, a) ->
                let m = Array.fold_left Float.max 0. a in
                (name, if m > 0. then Array.map (fun v -> v /. m) a else a))
              series
          in
          print_string (Cheffp_core.Sensitivity.heatmap per_row)
        end)
  in
  let loop_arg =
    Arg.(value & opt (some string) None
         & info [ "loop" ]
             ~docv:"VAR"
             ~doc:"Track iterations of the named loop variable (default: the outermost loop).")
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Per-iteration sensitivity heatmap of every variable (paper Fig. 9).")
    Term.(ret (const run $ file_arg $ func_arg $ loop_arg $ rest_args))

let () =
  let info =
    Cmd.info "cheffp" ~version:"1.0.0"
      ~doc:"Automatic floating-point error analysis via source-transformation AD (CHEF-FP reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ check_cmd; run_cmd; gradient_cmd; analyze_cmd; tune_cmd;
            search_cmd; validate_cmd; import_cmd; export_cmd; adapt_cmd;
            sensitivity_cmd; serve_cmd; top_cmd ]))
