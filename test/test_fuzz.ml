(* Differential fuzzing over randomly generated MiniFP programs: every
   engine and every transformation must agree with the reference
   interpreter. See [Gen_minifp] for the generator. *)

open Cheffp_ir
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp

let count = 150

let run_ok prog args =
  match Interp.run_float ~prog ~func:"fuzz" args with
  | v -> Some v
  | exception Interp.Runtime_error _ -> None

let args_of (x, y) = [ Interp.Aflt x; Interp.Aflt y; Interp.Aint 4 ]

let both_or_skip prog args f =
  match run_ok prog args with
  | None -> true (* generator should prevent this; don't fail the property *)
  | Some reference -> f reference

let close tol a b =
  (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b) /. Float.max 1. (Float.abs a) < tol

(* 1. Generated programs are well-typed. *)
let fuzz_typechecks =
  QCheck.Test.make ~count ~name:"fuzz: generated programs typecheck"
    Gen_minifp.arbitrary_program (fun prog ->
      Typecheck.check_program prog;
      true)

(* 2. Pretty-print/parse round trip. *)
let fuzz_roundtrip =
  QCheck.Test.make ~count ~name:"fuzz: pp/parse roundtrip"
    Gen_minifp.arbitrary_program (fun prog ->
      Parser.parse_program (Pp.program_to_string prog) = prog)

(* 3. Compiled execution = interpreted execution (bit for bit). *)
let fuzz_compile =
  QCheck.Test.make ~count ~name:"fuzz: compile = interp"
    Gen_minifp.arbitrary_case (fun (prog, xy) ->
      let args = args_of xy in
      both_or_skip prog args (fun reference ->
          let c = Compile.compile ~optimize:false ~prog ~func:"fuzz" () in
          Compile.run_float c args = reference))

(* 4. The optimizer preserves semantics exactly. *)
let fuzz_optimize =
  QCheck.Test.make ~count ~name:"fuzz: optimizer preserves semantics"
    Gen_minifp.arbitrary_case (fun (prog, xy) ->
      let args = args_of xy in
      both_or_skip prog args (fun reference ->
          let f = Optimize.optimize_func (Ast.func_exn prog "fuzz") in
          let prog' = { Ast.funcs = [ f ] } in
          Interp.run_float ~prog:prog' ~func:"fuzz" args = reference))

(* 5. Normalization preserves semantics exactly. *)
let fuzz_normalize =
  QCheck.Test.make ~count ~name:"fuzz: normalize preserves semantics"
    Gen_minifp.arbitrary_case (fun (prog, xy) ->
      let args = args_of xy in
      both_or_skip prog args (fun reference ->
          let nf = Normalize.normalize_func prog (Ast.func_exn prog "fuzz") in
          let prog' = { Ast.funcs = [ nf ] } in
          Interp.run_float ~prog:prog' ~func:"fuzz" args = reference))

(* 6. Mixed-precision execution agrees between engines (bit for bit). *)
let fuzz_mixed_engines =
  QCheck.Test.make ~count ~name:"fuzz: mixed-precision compile = interp"
    Gen_minifp.arbitrary_case (fun (prog, xy) ->
      let args = args_of xy in
      let config = Config.demote_all Config.double [ "a"; "c" ] Fp.F32 in
      match Interp.run_float ~config ~prog ~func:"fuzz" args with
      | exception Interp.Runtime_error _ -> true
      | reference ->
          let raw = Compile.compile ~config ~optimize:false ~prog ~func:"fuzz" () in
          let opt = Compile.compile ~config ~optimize:true ~prog ~func:"fuzz" () in
          Compile.run_float raw args = reference
          && Compile.run_float opt args = reference)

(* 7. Reverse AD = finite differences (loose tolerance; generated
   programs are smooth by construction except for branch boundaries,
   where FD and AD legitimately disagree -- use a majority vote over
   probe points to avoid flagging those). *)
let gradient prog args =
  let g = Cheffp_ad.Reverse.differentiate prog "fuzz" in
  let prog' = Ast.add_func prog g in
  let r =
    Interp.run ~prog:prog' ~func:g.Ast.fname
      (args @ [ Interp.Aflt 0.; Interp.Aflt 0. ])
  in
  ( Builtins.as_float (List.assoc "_d_x" r.Interp.outs),
    Builtins.as_float (List.assoc "_d_y" r.Interp.outs) )

let fuzz_reverse_vs_fd =
  QCheck.Test.make ~count:60 ~name:"fuzz: reverse AD matches FD (majority)"
    Gen_minifp.arbitrary_case (fun (prog, (x, y)) ->
      let value x y = Interp.run_float ~prog ~func:"fuzz" (args_of (x, y)) in
      match gradient prog (args_of (x, y)) with
      | exception _ -> true
      | dx, dy ->
          let h = 1e-6 in
          let fdx = (value (x +. h) y -. value (x -. h) y) /. (2. *. h) in
          let fdy = (value x (y +. h) -. value x (y -. h)) /. (2. *. h) in
          (* Branch-crossing points can make FD meaningless: accept if
             either both components match, or the value is locally
             non-smooth (FD at two scales disagrees with itself). *)
          let matches = close 5e-3 dx fdx && close 5e-3 dy fdy in
          if matches then true
          else begin
            let h2 = 1e-4 in
            let fdx2 = (value (x +. h2) y -. value (x -. h2) y) /. (2. *. h2) in
            let fdy2 = (value x (y +. h2) -. value x (y -. h2)) /. (2. *. h2) in
            (* FD inconsistent with itself => non-smooth point; skip. *)
            (not (close 1e-3 fdx fdx2)) || not (close 1e-3 fdy fdy2)
          end)

(* 8. Forward AD = reverse AD (both exact up to roundoff, no smoothness
   caveats). *)
let fuzz_forward_vs_reverse =
  QCheck.Test.make ~count:60 ~name:"fuzz: forward = reverse"
    Gen_minifp.arbitrary_case (fun (prog, xy) ->
      let args = args_of xy in
      match gradient prog args with
      | exception _ -> true
      | dx, dy ->
          let fwd wrt =
            let f = Cheffp_ad.Forward.differentiate prog "fuzz" ~wrt in
            Interp.run_float ~prog:(Ast.add_func prog f) ~func:f.Ast.fname args
          in
          close 1e-10 dx (fwd "x") && close 1e-10 dy (fwd "y"))

(* 9. Activity analysis changes nothing. *)
let fuzz_activity =
  QCheck.Test.make ~count:60 ~name:"fuzz: activity analysis is sound"
    Gen_minifp.arbitrary_case (fun (prog, xy) ->
      let args = args_of xy in
      let grad_with use_activity =
        let g = Cheffp_ad.Reverse.differentiate ~use_activity prog "fuzz" in
        let prog' = Ast.add_func prog g in
        let r =
          Interp.run ~prog:prog' ~func:g.Ast.fname
            (args @ [ Interp.Aflt 0.; Interp.Aflt 0. ])
        in
        r.Interp.outs
      in
      match grad_with false with
      | exception _ -> true
      | off -> grad_with true = off)

(* 10. CHEF-FP estimation runs on anything the generator produces and
   compiled/interpreted analyses agree. *)
let fuzz_estimate =
  QCheck.Test.make ~count:40 ~name:"fuzz: estimation compiled = interpreted"
    Gen_minifp.arbitrary_case (fun (prog, xy) ->
      let args = args_of xy in
      match
        Cheffp_core.Estimate.estimate_error
          ~model:(Cheffp_core.Model.adapt ())
          ~prog ~func:"fuzz" ()
      with
      | exception _ -> true
      | est ->
          let a = Cheffp_core.Estimate.run est args in
          let b = Cheffp_core.Estimate.run_interpreted est args in
          a.Cheffp_core.Estimate.total_error
          = b.Cheffp_core.Estimate.total_error
          && a.Cheffp_core.Estimate.total_error >= 0.)

(* 11. Automatic source rewriting agrees bit-for-bit with configured
   execution on arbitrary programs and configurations. *)
let fuzz_rewrite =
  QCheck.Test.make ~count:80 ~name:"fuzz: rewrite = configured execution"
    Gen_minifp.arbitrary_case (fun (prog, xy) ->
      let args = args_of xy in
      let config =
        Config.demote_all Config.double [ "b"; "c"; "ar" ] Fp.F32
      in
      match Interp.run_float ~config ~prog ~func:"fuzz" args with
      | exception Interp.Runtime_error _ -> true
      | configured ->
          let f = Ast.func_exn prog "fuzz" in
          let rewritten = Cheffp_core.Rewrite.apply_config config f in
          let prog' = { Ast.funcs = [ rewritten ] } in
          Typecheck.check_program prog';
          Interp.run_float ~prog:prog' ~func:"fuzz" args = configured)

module Shadow = Cheffp_shadow.Shadow
module Oracle = Cheffp_shadow.Oracle

(* 12. Programs with randomly narrowed declarations are still
   well-typed and survive the pp/parse round trip. *)
let fuzz_mixed_decls =
  QCheck.Test.make ~count ~name:"fuzz: mixed-precision declarations typecheck"
    Gen_minifp.arbitrary_mixed_program (fun prog ->
      Typecheck.check_program prog;
      Parser.parse_program (Pp.program_to_string prog) = prog)

(* 13. All-F64 shadow execution: the low lane is bit-identical to the
   interpreter, and the error against the double-double reference sits
   at the binary64 rounding floor — "essentially zero" next to any
   demotion effect (F16 demotions land around 1e-3). The floor is
   scale-relative because generated programs can cancel. *)
let fuzz_shadow_f64_floor =
  QCheck.Test.make ~count ~name:"fuzz: all-f64 shadow error ~ 0"
    Gen_minifp.arbitrary_case (fun (prog, xy) ->
      let args = args_of xy in
      both_or_skip prog args (fun reference ->
          let r = Shadow.run ~prog ~func:"fuzz" args in
          let m = Option.get r.Shadow.ret in
          if m.Shadow.low <> reference then false (* lockstep broke *)
          else if not (Float.is_finite reference) then true
          else m.Shadow.abs_error /. Float.max 1.0 (Float.abs reference) < 1e-9))

(* 14. The soundness property the whole oracle exists for: on every
   generated binary64 program and random demotion configuration, the
   CHEF-FP estimate (Extended mode, the tuner's margin of 2) covers the
   shadow-measured error. Skipped when demotion flipped a discrete
   decision (first-order models are knowingly invalid there,
   DESIGN.md §10), when the narrow run left the finite range, or when
   the estimate itself failed to produce a finite bound (a model
   breakdown — e.g. a NaN adjoint on a dead data path — not an
   unsound one); counterexamples print the program and configuration. *)
let fuzz_shadow_sound =
  QCheck.Test.make ~count:120
    ~name:"fuzz: estimate covers shadow-measured error"
    Gen_minifp.arbitrary_shadow_case (fun (prog, config, xy) ->
      let args = args_of xy in
      match
        Oracle.check_estimate ~mode:Config.Extended ~margin:2.0 ~prog
          ~func:"fuzz" ~config args
      with
      | exception Interp.Runtime_error _ -> true
      | exception _ -> true (* estimation limits; not a soundness issue *)
      | v ->
          v.Oracle.branch_divergence
          || (not (Float.is_finite v.Oracle.measured_error))
          || (not (Float.is_finite v.Oracle.bound))
          || v.Oracle.sound)

(* 15. Declared-narrow programs under the default configuration: the
   configured and reference runs share every effective format, so the
   oracle must measure zero demotion error and stay sound — the
   lockstep machinery agrees with itself through declared F16/F32
   storage, not just through configuration overrides. *)
let fuzz_shadow_mixed_decls_lockstep =
  QCheck.Test.make ~count:100
    ~name:"fuzz: declared-narrow lockstep, zero demotion error"
    Gen_minifp.arbitrary_mixed_case (fun (prog, xy) ->
      let args = args_of xy in
      match
        Oracle.check_estimate ~mode:Config.Extended ~prog ~func:"fuzz"
          ~config:Config.double args
      with
      | exception Interp.Runtime_error _ -> true
      | exception _ -> true
      | v ->
          (not (Float.is_finite v.Oracle.measured_error))
          || (v.Oracle.demotion_error = 0.0
             && (v.Oracle.sound || not (Float.is_finite v.Oracle.bound))))

module Fpcore_import = Cheffp_fpcore.Import
module Fpcore_export = Cheffp_fpcore.Export

(* 16. FPCore interop round trip (DESIGN.md §15): exporting a program
   from the exportable subset and importing it back must reproduce the
   identical AST — same variables, formats, loop structure — and hence
   a bit-identical CHEF-FP analysis; a mixed-precision configuration
   attached via :cheffp-config must survive unchanged too. *)
let fuzz_fpcore_roundtrip =
  QCheck.Test.make ~count:120 ~name:"fuzz: fpcore export/import round trip"
    Gen_minifp.arbitrary_export_case (fun (prog, xy) ->
      let args = args_of xy in
      let config = Config.demote_all Config.double [ "a"; "c" ] Fp.F32 in
      let text = Fpcore_export.func_to_fpcore ~config ~prog ~func:"fuzz" () in
      match Fpcore_import.parse_string ~file:"<fuzz>" text with
      | [ c ] ->
          let f = Ast.func_exn prog "fuzz" in
          if c.Fpcore_import.func <> f then false
          else if
            Config.demoted c.Fpcore_import.config <> Config.demoted config
          then false
          else begin
            let prog' = { Ast.funcs = [ c.Fpcore_import.func ] } in
            Typecheck.check_program prog';
            let total p =
              let est = Cheffp_core.Estimate.estimate_error ~prog:p ~func:"fuzz" () in
              (Cheffp_core.Estimate.run est args).Cheffp_core.Estimate.total_error
            in
            match total prog with
            | t -> Float.equal t (total prog')
            | exception _ -> true (* estimation limits hit both sides alike *)
          end
      | _ -> false)

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            fuzz_typechecks;
            fuzz_roundtrip;
            fuzz_compile;
            fuzz_optimize;
            fuzz_normalize;
            fuzz_mixed_engines;
            fuzz_reverse_vs_fd;
            fuzz_forward_vs_reverse;
            fuzz_activity;
            fuzz_estimate;
            fuzz_mixed_decls;
            fuzz_shadow_f64_floor;
            fuzz_shadow_sound;
            fuzz_shadow_mixed_decls_lockstep;
            fuzz_rewrite;
            fuzz_fpcore_roundtrip;
          ] );
    ]
