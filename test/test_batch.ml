(* Batched lane-parallel execution (Ir.Batch): the contract is per-lane
   bit-identity with the scalar compiler under the same configuration,
   with divergence handled by transparent scalar fallback. The unit
   cases pin the three divergence shapes named in DESIGN.md §11
   (config-dependent branch flip, while-loop trip-count divergence,
   array writes after a split); the fuzz property sweeps random
   programs under random lane configurations. *)

open Cheffp_ir
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Cost = Cheffp_precision.Cost

let parse src =
  let prog = Parser.parse_program src in
  Typecheck.check_program prog;
  prog

let scalar_result ~prog ~func ?counter config args =
  let c = Compile.compile ~config ~meter:(counter <> None) ~prog ~func () in
  Compile.run ?counter c args

(* Run [configs] batched and scalar on the same args and check every
   lane's full result (return, outs, stack peak) is identical bit for
   bit. Returns the batch divergence count. *)
let check_lanes ?(meter = false) ~prog ~func configs args =
  let b = Batch.compile ~meter ~prog ~func () in
  let counters =
    Array.init (Array.length configs) (fun _ ->
        Cost.Counter.create Cost.default)
  in
  let r = Batch.run ~counters b ~configs args in
  Array.iteri
    (fun l config ->
      let scounter = Cost.Counter.create Cost.default in
      let sres =
        scalar_result ~prog ~func
          ?counter:(if meter then Some scounter else None)
          config
          (List.map
             (function
               | Interp.Afarr a -> Interp.Afarr (Array.copy a)
               | Interp.Aiarr a -> Interp.Aiarr (Array.copy a)
               | x -> x)
             args)
      in
      Alcotest.(check bool)
        (Printf.sprintf "lane %d result bit-identical" l)
        true
        (r.Batch.lanes.(l) = sres);
      if meter then begin
        Alcotest.(check (float 0.))
          (Printf.sprintf "lane %d modelled cost" l)
          (Cost.Counter.total scounter)
          (Cost.Counter.total counters.(l));
        Alcotest.(check int)
          (Printf.sprintf "lane %d casts" l)
          (Cost.Counter.casts scounter)
          (Cost.Counter.casts counters.(l))
      end)
    configs;
  r.Batch.divergences

(* ------------------------------------------------------------------ *)
(* Uniform control flow: no divergence, metering matches per lane.    *)

let conform_src =
  {|func kernel(x: f64, n: int): f64 {
  var s: f64 = 0.0;
  var t: f64;
  var u: f64;
  for i in 1 .. n + 1 {
    t = x / itof(i);
    u = t * t + 0.5;
    s = s + sqrt(u);
  }
  return s;
}|}

let test_uniform () =
  let prog = parse conform_src in
  let configs =
    [|
      Config.double;
      Config.demote Config.double "t" Fp.F32;
      Config.demote (Config.demote Config.double "u" Fp.F16) "t" Fp.F32;
      Config.demote_all Config.double [ "s"; "t"; "u" ] Fp.F32;
    |]
  in
  let d =
    check_lanes ~meter:true ~prog ~func:"kernel" configs
      [ Interp.Aflt 1.7; Interp.Aint 20 ]
  in
  Alcotest.(check int) "no divergence" 0 d

let test_extended_mode () =
  let prog = parse conform_src in
  let configs =
    [| Config.double; Config.demote_all Config.double [ "s"; "u" ] Fp.F16 |]
  in
  let b = Batch.compile ~mode:Config.Extended ~prog ~func:"kernel" () in
  let r =
    Batch.run b ~configs [ Interp.Aflt 1.7; Interp.Aint 20 ]
  in
  Array.iteri
    (fun l config ->
      let c =
        Compile.compile ~config ~mode:Config.Extended ~prog ~func:"kernel" ()
      in
      let sres = Compile.run c [ Interp.Aflt 1.7; Interp.Aint 20 ] in
      Alcotest.(check bool)
        (Printf.sprintf "extended lane %d" l)
        true
        (r.Batch.lanes.(l) = sres))
    configs;
  Alcotest.(check int) "no divergence" 0 r.Batch.divergences

(* ------------------------------------------------------------------ *)
(* Divergence: config-dependent branch flip.                          *)

(* With t demoted to f16, 0.99998 stores as 1.0 and the >= test flips. *)
let branch_src =
  {|func branchy(x: f64): f64 {
  var t: f64 = x;
  if (t >= 1.0) {
    return t * 2.0;
  }
  return t * 3.0;
}|}

let test_branch_flip () =
  let prog = parse branch_src in
  let configs =
    [|
      Config.double;
      Config.demote Config.double "t" Fp.F16;
      Config.double;
      Config.demote Config.double "t" Fp.F32;
    |]
  in
  let d =
    check_lanes ~meter:true ~prog ~func:"branchy" configs
      [ Interp.Aflt 0.99998 ]
  in
  (* Three lanes agree the branch is not taken; the f16 lane dissents. *)
  Alcotest.(check int) "one diverged lane" 1 d

(* ------------------------------------------------------------------ *)
(* Predicated float-only branches: an [if] whose condition is a float
   comparison and whose bodies only assign float scalars keeps every
   lane's own outcome — no consensus, no divergence — while staying
   bit-identical to scalar per lane. Metered artifacts must keep the
   consensus path (predication would charge the not-taken side). *)

let pred_src =
  {|func predy(x: f64): f64 {
  var t: f64 = x;
  var w: f64 = 1.0;
  var best: f64 = 1.0e30;
  if (t >= 1.0) {
    w = t * 2.0;
  } else {
    w = w - t;
  }
  if (w < best) {
    best = w;
  }
  return best + w;
}|}

let test_predicated_branch_no_divergence () =
  let prog = parse pred_src in
  (* The f16 lane stores 0.99998 as 1.0 and flips both branches. *)
  let configs =
    [| Config.double; Config.demote Config.double "t" Fp.F16 |]
  in
  let d = check_lanes ~prog ~func:"predy" configs [ Interp.Aflt 0.99998 ] in
  Alcotest.(check int) "predicated: no divergence" 0 d;
  (* The same flip through a metered artifact stays a consensus point. *)
  let d =
    check_lanes ~meter:true ~prog ~func:"predy" configs
      [ Interp.Aflt 0.99998 ]
  in
  Alcotest.(check int) "metered: consensus divergence" 1 d

let test_predicated_input_sweep () =
  let prog = parse pred_src in
  let config = Config.double in
  let inputs =
    Array.map (fun x -> [ Interp.Aflt x ]) [| 0.5; 1.5; 0.25; 2.0; 1.0 |]
  in
  let b = Batch.compile ~prog ~func:"predy" () in
  let r = Batch.run_inputs b ~config inputs in
  Alcotest.(check int) "no divergence across disagreeing inputs" 0
    r.Batch.divergences;
  let c = Compile.compile ~config ~prog ~func:"predy" () in
  Array.iteri
    (fun l args ->
      Alcotest.(check bool)
        (Printf.sprintf "lane %d bit-identical" l)
        true
        (r.Batch.lanes.(l) = Compile.run c args))
    inputs

(* ------------------------------------------------------------------ *)
(* Divergence: while-loop trip count.                                 *)

(* x = 0.33329: in f64 the sum crosses 1.0 on the 4th iteration; with s
   demoted to f16 the third store rounds 1.000038… to exactly 1.0, so
   the loop exits an iteration early. *)
let while_src =
  {|func trippy(x: f64): f64 {
  var s: f64 = 0.0;
  var iters: f64 = 0.0;
  while (s < 1.0) {
    s = s + x;
    iters = iters + 1.0;
  }
  return s + iters;
}|}

let test_while_trip_count () =
  let prog = parse while_src in
  let configs = [| Config.double; Config.demote Config.double "s" Fp.F16 |] in
  (* Sanity: the two scalar runs really do different trip counts,
     otherwise this case pins nothing. *)
  let runs =
    Array.map
      (fun config ->
        Interp.run_float ~config ~prog ~func:"trippy" [ Interp.Aflt 0.33329 ])
      configs
  in
  Alcotest.(check bool) "trip counts differ" true (runs.(0) <> runs.(1));
  let d =
    check_lanes ~meter:true ~prog ~func:"trippy" configs
      [ Interp.Aflt 0.33329 ]
  in
  Alcotest.(check int) "one diverged lane" 1 d

(* ------------------------------------------------------------------ *)
(* Divergence: array writes after the split point.                    *)

(* The diverged lane re-runs scalar from pristine argument copies, so
   index-dependent array writes after the split stay correct — and the
   caller's own array is never mutated by the batch run. *)
let arr_src =
  {|func arrsplit(x: f64, acc: f64[]): f64 {
  var t: f64 = x;
  var ar: f64[4];
  var i: int = 0;
  if (t >= 1.0) {
    i = 1;
  }
  ar[i] = t * 2.0;
  ar[3 - i] = t * 3.0;
  acc[i] = acc[i] + ar[i];
  return ar[0] + ar[1] + ar[2] + ar[3] + acc[0] + acc[1];
}|}

let test_array_writes_after_split () =
  let prog = parse arr_src in
  let configs = [| Config.double; Config.demote Config.double "t" Fp.F16 |] in
  let out = [| 10.0; 20.0 |] in
  let d =
    check_lanes ~prog ~func:"arrsplit" configs
      [ Interp.Aflt 0.99998; Interp.Afarr out ]
  in
  Alcotest.(check int) "one diverged lane" 1 d;
  Alcotest.(check bool)
    "caller array untouched" true
    (out = [| 10.0; 20.0 |])

(* ------------------------------------------------------------------ *)
(* run_many: chunking and domain fan-out preserve order and values.   *)

let test_run_many () =
  let prog = parse conform_src in
  let configs =
    [
      Config.double;
      Config.demote Config.double "t" Fp.F32;
      Config.demote Config.double "u" Fp.F32;
      Config.demote Config.double "s" Fp.F32;
      Config.demote_all Config.double [ "s"; "t"; "u" ] Fp.F16;
    ]
  in
  let args = [ Interp.Aflt 1.7; Interp.Aint 20 ] in
  let b = Batch.compile ~prog ~func:"kernel" () in
  let expect =
    List.map
      (fun config ->
        let c = Compile.compile ~config ~prog ~func:"kernel" () in
        Compile.run_float c args)
      configs
  in
  List.iter
    (fun (jobs, lanes) ->
      let got = Batch.run_many ~jobs ~lanes b ~configs args in
      Alcotest.(check bool)
        (Printf.sprintf "run_many jobs=%d lanes=%d" jobs lanes)
        true (got = expect))
    [ (1, 2); (2, 2); (1, 8); (2, 1) ]

(* ------------------------------------------------------------------ *)
(* Wiring: batched Search/Tuner agree with their scalar paths.        *)

let test_evaluate_many () =
  let prog = parse conform_src in
  let args = [ Interp.Aflt 1.7; Interp.Aint 20 ] in
  let configs =
    [
      Config.demote Config.double "t" Fp.F32;
      Config.demote_all Config.double [ "s"; "t"; "u" ] Fp.F32;
      Config.demote Config.double "u" Fp.F16;
    ]
  in
  let batched =
    Cheffp_core.Tuner.evaluate_many ~lanes:3 ~prog ~func:"kernel" ~args configs
  in
  List.iter2
    (fun config ev ->
      let s = Cheffp_core.Tuner.evaluate ~prog ~func:"kernel" ~args config in
      Alcotest.(check (float 0.))
        "actual_error" s.Cheffp_core.Tuner.actual_error
        ev.Cheffp_core.Tuner.actual_error;
      Alcotest.(check (float 0.))
        "modelled_speedup" s.Cheffp_core.Tuner.modelled_speedup
        ev.Cheffp_core.Tuner.modelled_speedup;
      Alcotest.(check int) "casts" s.Cheffp_core.Tuner.casts
        ev.Cheffp_core.Tuner.casts)
    configs batched

let test_search_batched () =
  let prog = parse conform_src in
  let args = [ Interp.Aflt 1.7; Interp.Aint 20 ] in
  (* Pinned to `Measured: this test exercises the batching machinery,
     and the hybrid default's model pruning can leave a phase with too
     few survivors to sweep. Hybrid batching identity is asserted
     below (and across the paper workloads in test_profile). *)
  let tune ?batch ?(strategy = `Measured) () =
    Cheffp_core.Search.tune ?batch ~strategy ~prog ~func:"kernel" ~args
      ~threshold:1e-9 ()
  in
  let scalar = tune () in
  let batched = tune ~batch:3 () in
  Alcotest.(check (list string))
    "same demoted set" scalar.Cheffp_core.Search.demoted
    batched.Cheffp_core.Search.demoted;
  Alcotest.(check int)
    "same program-runs-equivalent" scalar.Cheffp_core.Search.executions
    batched.Cheffp_core.Search.executions;
  Alcotest.(check (float 0.))
    "same validated error"
    scalar.Cheffp_core.Search.evaluation.Cheffp_core.Tuner.actual_error
    batched.Cheffp_core.Search.evaluation.Cheffp_core.Tuner.actual_error;
  Alcotest.(check int) "scalar path has no sweeps" 0
    scalar.Cheffp_core.Search.batched_runs;
  Alcotest.(check bool) "batched path counts sweeps" true
    (batched.Cheffp_core.Search.batched_runs > 0);
  (* Model pruning is deterministic and batch-independent, so the
     hybrid strategy keeps the scalar/batched identity too. *)
  let h_scalar = tune ~strategy:`Hybrid () in
  let h_batched = tune ~strategy:`Hybrid ~batch:3 () in
  Alcotest.(check (list string))
    "hybrid: same demoted set" h_scalar.Cheffp_core.Search.demoted
    h_batched.Cheffp_core.Search.demoted;
  Alcotest.(check int)
    "hybrid: same program-runs-equivalent"
    h_scalar.Cheffp_core.Search.executions
    h_batched.Cheffp_core.Search.executions;
  Alcotest.(check int)
    "hybrid: same runs avoided" h_scalar.Cheffp_core.Search.runs_avoided
    h_batched.Cheffp_core.Search.runs_avoided

(* ------------------------------------------------------------------ *)
(* Fuzz: K random configs batched vs scalar on random programs.       *)

let gen_batch_case =
  QCheck.Gen.(
    quad Gen_minifp.gen_program
      (array_size (return 4) Gen_minifp.gen_config)
      Gen_minifp.gen_inputs (return ()))

let arbitrary_batch_case =
  QCheck.make
    ~print:(fun (p, cfgs, (x, y), ()) ->
      Printf.sprintf "x=%.17g y=%.17g configs=[%s]\n%s" x y
        (String.concat "; "
           (Array.to_list (Array.map Config.to_string cfgs)))
        (Pp.program_to_string p))
    gen_batch_case

let fuzz_batch_bit_identity =
  QCheck.Test.make ~count:120 ~name:"fuzz: batched lanes = scalar runs"
    arbitrary_batch_case (fun (prog, configs, (x, y), ()) ->
      let args = [ Interp.Aflt x; Interp.Aflt y; Interp.Aint 4 ] in
      let scalar =
        try
          Some
            (Array.map
               (fun config ->
                 let c = Compile.compile ~config ~prog ~func:"fuzz" () in
                 Compile.run c args)
               configs)
        with Interp.Runtime_error _ | Division_by_zero -> None
      in
      match scalar with
      | None -> true (* generator should prevent this; skip *)
      | Some scalar ->
          let b = Batch.compile ~prog ~func:"fuzz" () in
          let r = Batch.run b ~configs args in
          Array.for_all2 (fun lane s -> lane = s) r.Batch.lanes scalar)

let () =
  Alcotest.run "batch"
    [
      ( "unit",
        [
          Alcotest.test_case "uniform lanes, metered" `Quick test_uniform;
          Alcotest.test_case "extended mode" `Quick test_extended_mode;
          Alcotest.test_case "branch flip diverges" `Quick test_branch_flip;
          Alcotest.test_case "predicated branch, no divergence" `Quick
            test_predicated_branch_no_divergence;
          Alcotest.test_case "predicated input sweep" `Quick
            test_predicated_input_sweep;
          Alcotest.test_case "while trip-count diverges" `Quick
            test_while_trip_count;
          Alcotest.test_case "array writes after split" `Quick
            test_array_writes_after_split;
          Alcotest.test_case "run_many chunking" `Quick test_run_many;
          Alcotest.test_case "evaluate_many = evaluate" `Quick
            test_evaluate_many;
          Alcotest.test_case "batched search = scalar search" `Quick
            test_search_batched;
        ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest fuzz_batch_bit_identity ] );
    ]
