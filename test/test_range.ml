(* Rigorous range bounds (lib/range, DESIGN.md §17).

   Four claims, each with its own suite:

   - Interval arithmetic is an outward-rounded enclosure: every
     operation's result interval contains the pointwise binary64 result
     of any operand points (fuzzed), and operations with no finite
     enclosure raise [Unbounded] instead of returning a number.

   - Box derivation matches its spec: +/- 50% around the base value,
     widened to the absolute [-1, 1] interval at zero (a relative box
     collapses to a point there), [--box] override parsing, splitting.

   - Soundness: on >= 120 random MiniFP programs and on the whole
     FPCore corpus, a certified all-candidates-at-F32 bound dominates
     the sampled/measured demotion error (64-lane [Batch.run_inputs]
     sweeps over the box for the fuzz side, the shadow oracle's
     [demotion_error] at the base point for the corpus side). An
     [Unbounded] verdict is acceptable (vacuous) — an unsound certified
     bound is not.

   - Pruning: `Hybrid search with the rigorous [?prune_bound] picks the
     bit-identical demotion set with never more executions on all 5
     paper workloads, and with strictly fewer executions (pruned > 0)
     on >= 3 of them once the threshold is within certified reach. *)

open Cheffp_ir
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Interval = Cheffp_range.Interval
module Box = Cheffp_range.Box
module Range = Cheffp_range.Range
module Search = Cheffp_core.Search
module Tuner = Cheffp_core.Tuner
module Oracle = Cheffp_shadow.Oracle
module B = Cheffp_benchmarks

(* ------------------------------------------------------------------ *)
(* Interval arithmetic.                                               *)

let test_interval_basics () =
  let iv = Interval.make 1.0 2.0 in
  Alcotest.(check bool) "contains endpoints" true
    (Interval.contains iv 1.0 && Interval.contains iv 2.0
    && Interval.contains iv 1.5);
  Alcotest.(check (float 0.)) "mag" 2.0 (Interval.mag iv);
  Alcotest.(check (float 0.)) "mig" 1.0 (Interval.mig iv);
  let straddle = Interval.make (-1.0) 2.0 in
  Alcotest.(check (float 0.)) "mig straddling zero" 0.0
    (Interval.mig straddle);
  Alcotest.(check bool) "make rejects NaN" true
    (try
       ignore (Interval.make Float.nan 1.0);
       false
     with Interval.Unbounded _ -> true);
  Alcotest.(check bool) "make rejects inverted" true
    (try
       ignore (Interval.make 2.0 1.0);
       false
     with Interval.Unbounded _ -> true)

let test_interval_outward () =
  (* 1e16 + 1 is not representable: the enclosure must cover both
     binary64 neighbours, i.e. be strictly wider than a point. *)
  let s = Interval.add (Interval.point 1e16) (Interval.point 1.0) in
  Alcotest.(check bool) "covers both neighbours" true
    (Interval.contains s 1e16 && Interval.contains s 1.0000000000000002e16);
  (* 0.1 + 0.2: the real sum 0.3 and the double sum both lie inside. *)
  let s = Interval.add (Interval.point 0.1) (Interval.point 0.2) in
  Alcotest.(check bool) "0.1 + 0.2" true
    (Interval.contains s 0.3 && Interval.contains s (0.1 +. 0.2))

let test_interval_unbounded () =
  Alcotest.(check bool) "div by interval containing zero" true
    (try
       ignore (Interval.div (Interval.point 1.0) (Interval.make (-1.0) 1.0));
       false
     with Interval.Unbounded _ -> true);
  Alcotest.(check bool) "overflow" true
    (try
       ignore (Interval.mul (Interval.point 1e300) (Interval.point 1e300));
       false
     with Interval.Unbounded _ -> true)

let test_interval_round () =
  (* Storage rounding is monotone, so rounding the endpoints encloses
     the rounded value set: every representable-after-round point of
     the original interval stays inside. *)
  let iv = Interval.make 1.0 2.0 in
  let r = Interval.round Fp.F16 iv in
  Alcotest.(check bool) "f16 round encloses" true
    (Interval.contains r 1.0 && Interval.contains r 2.0
    && Interval.contains r 1.5);
  let tiny = Interval.point 1e-30 in
  let r = Interval.round Fp.F16 tiny in
  (* 1e-30 underflows f16 to zero: the rounded enclosure must admit 0. *)
  Alcotest.(check bool) "f16 underflow to zero" true (Interval.contains r 0.)

let clamp lo hi v = Float.min hi (Float.max lo v)

let fuzz_interval_enclosure =
  let gen =
    QCheck.Gen.(
      pair
        (quad (float_range (-1e6) 1e6) (float_range (-1e6) 1e6)
           (float_range (-1e6) 1e6) (float_range (-1e6) 1e6))
        (pair (float_range 0. 1.) (float_range 0. 1.)))
  in
  let arb =
    QCheck.make
      ~print:(fun ((a, b, c, d), (t1, t2)) ->
        Printf.sprintf "a=%.17g b=%.17g c=%.17g d=%.17g t1=%g t2=%g" a b c d
          t1 t2)
      gen
  in
  QCheck.Test.make ~count:200 ~name:"fuzz: interval ops enclose point ops"
    arb
    (fun ((a, b, c, d), (t1, t2)) ->
      let iv1 = Interval.make (Float.min a b) (Float.max a b) in
      let iv2 = Interval.make (Float.min c d) (Float.max c d) in
      let pick iv t =
        let lo = Interval.lo iv and hi = Interval.hi iv in
        clamp lo hi (lo +. (t *. (hi -. lo)))
      in
      let p1 = pick iv1 t1 and p2 = pick iv2 t2 in
      let binop op opf =
        try Interval.contains (op iv1 iv2) (opf p1 p2)
        with Interval.Unbounded _ -> true
      in
      binop Interval.add ( +. )
      && binop Interval.sub ( -. )
      && binop Interval.mul ( *. )
      && (Interval.contains iv2 0.0
          || binop Interval.div ( /. ))
      && Interval.contains (Interval.neg iv1) (-.p1)
      && Interval.contains (Interval.abs iv1) (Float.abs p1)
      && Interval.contains (Interval.hull iv1 iv2) p1
      && Interval.contains (Interval.hull iv1 iv2) p2)

(* ------------------------------------------------------------------ *)
(* Boxes.                                                             *)

let test_box_default () =
  (* +/- 50% around the base value... *)
  let iv = Box.default_iv 2.0 in
  Alcotest.(check bool) "around 2.0" true
    (Interval.lo iv <= 1.0 && Interval.hi iv >= 3.0);
  let iv = Box.default_iv (-4.0) in
  Alcotest.(check bool) "around -4.0" true
    (Interval.lo iv <= -6.0 && Interval.hi iv >= -2.0);
  (* ...except at zero, where the relative box collapses to a point
     and the absolute [-1, 1] interval takes over (satellite of
     DESIGN.md §17). *)
  let iv = Box.default_iv 0.0 in
  Alcotest.(check bool) "absolute [-1,1] at zero" true
    (Interval.lo iv <= -1.0 && Interval.hi iv >= 1.0)

let quad_src =
  {|func quad(x: f64, y: f64, n: int): f64 {
  var t: f64 = x * x + y;
  var s: f64 = 0.0;
  for i in 0 .. n {
    s = s + t / (1.5 + itof(i));
  }
  return s;
}|}

let parse src =
  let prog = Parser.parse_program src in
  Typecheck.check_program prog;
  prog

let test_box_override_and_split () =
  let prog = parse quad_src in
  let f = Ast.func_exn prog "quad" in
  let args = [ Interp.Aflt 1.0; Interp.Aflt 0.0; Interp.Aint 3 ] in
  let box = Box.of_args ~func:f ~args () in
  (match List.assoc "y" (Box.dims box) with
  | Box.Dflt iv ->
      Alcotest.(check bool) "zero-valued input gets [-1,1]" true
        (Interval.lo iv <= -1.0 && Interval.hi iv >= 1.0)
  | _ -> Alcotest.fail "y should be a float dimension");
  let box =
    Box.apply_override box (Box.override_of_string "x=2,4; y=-1,1")
  in
  (match List.assoc "x" (Box.dims box) with
  | Box.Dflt iv ->
      Alcotest.(check (float 0.)) "override lo" 2.0 (Interval.lo iv);
      Alcotest.(check (float 0.)) "override hi" 4.0 (Interval.hi iv)
  | _ -> Alcotest.fail "x should be a float dimension");
  Alcotest.(check bool) "malformed spec raises" true
    (try
       ignore (Box.override_of_string "x=oops");
       false
     with Box.Spec_error _ -> true);
  Alcotest.(check bool) "unknown name raises" true
    (try
       ignore (Box.apply_override box (Box.override_of_string "zz=1,2"));
       false
     with Box.Spec_error _ -> true);
  (* Splitting bisects a widest scalar dimension; a point box splits
     into nothing. *)
  (match Box.split box with
  | Some (l, r) ->
      let w name b =
        match List.assoc name (Box.dims b) with
        | Box.Dflt iv -> Interval.width iv
        | _ -> Alcotest.fail (name ^ " vanished")
      in
      let narrowed name = w name l < w name box && w name r < w name box in
      Alcotest.(check bool) "one dimension bisected in both halves" true
        (narrowed "x" || narrowed "y")
  | None -> Alcotest.fail "wide box must split");
  let point = Box.point_of_args ~func:f ~args () in
  Alcotest.(check bool) "point box does not split" true
    (Box.split point = None)

(* ------------------------------------------------------------------ *)
(* Fuzz soundness: certified bound vs sampled max error, 64-lane      *)
(* input sweeps over the box.                                         *)

let float_ret (r : Interp.result) =
  match r.Interp.ret with
  | Some (Builtins.F x) -> x
  | _ -> Alcotest.fail "expected float return"

(* Deterministic in-box sample points: a tiny LCG seeded from the
   program index, mapped to each scalar dimension's interval. *)
let sample_points box ~seed n =
  let state = ref (Int64.of_int ((seed * 2654435761) lor 1)) in
  let next () =
    state :=
      Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    let bits = Int64.to_float (Int64.shift_right_logical !state 11) in
    bits /. 9007199254740992.0 (* 2^53 *)
  in
  Array.init n (fun _ ->
      List.map
        (fun (_, dim) ->
          match dim with
          | Box.Dflt iv ->
              let lo = Interval.lo iv and hi = Interval.hi iv in
              Interp.Aflt (clamp lo hi (lo +. (next () *. (hi -. lo))))
          | Box.Dfarr ivs ->
              Interp.Afarr
                (Array.map
                   (fun iv ->
                     let lo = Interval.lo iv and hi = Interval.hi iv in
                     clamp lo hi (lo +. (next () *. (hi -. lo))))
                   ivs)
          | Box.Dfixed a -> a)
        (Box.dims box))

let test_fuzz_soundness () =
  let rand = Random.State.make [| 0x5EED; 17 |] in
  let programs = QCheck.Gen.generate ~rand ~n:130 Gen_minifp.gen_program in
  let certified = ref 0 and vacuous = ref 0 in
  List.iteri
    (fun i prog ->
      let f = Ast.func_exn prog "fuzz" in
      let args = [ Interp.Aflt 1.3; Interp.Aflt 0.7; Interp.Aint 3 ] in
      let box = Box.of_args ~func:f ~args () in
      let a = Range.analyze ~prog ~func:"fuzz" ~box () in
      let candidates = Tuner.float_variables f in
      match Range.score a ~target:Fp.F32 candidates with
      | None -> incr vacuous
      | Some bound ->
          incr certified;
          Alcotest.(check bool)
            (Printf.sprintf "program %d: certified bound is finite" i)
            true
            (Float.is_finite bound && bound >= 0.);
          let config = Config.demote_all Config.double candidates Fp.F32 in
          let inputs = sample_points box ~seed:i 64 in
          let b = Batch.compile ~prog ~func:"fuzz" () in
          let cfg = Batch.run_inputs b ~config inputs in
          let dbl = Batch.run_inputs b ~config:Config.double inputs in
          let worst = ref 0. in
          Array.iteri
            (fun l rc ->
              let e =
                Float.abs (float_ret rc -. float_ret dbl.Batch.lanes.(l))
              in
              if e > !worst then worst := e)
            cfg.Batch.lanes;
          if not (!worst <= bound) then
            Alcotest.failf
              "UNSOUND on program %d: sampled max %.17g > certified %.17g\n%s"
              i !worst bound (Pp.program_to_string prog))
    programs;
  (* The property must not pass vacuously: a healthy share of random
     programs (loops and branches included) has to certify. *)
  Alcotest.(check bool)
    (Printf.sprintf "certified on a meaningful share (%d/%d)" !certified
       (!certified + !vacuous))
    true (!certified >= 20)

(* ------------------------------------------------------------------ *)
(* Corpus soundness: every certified FPCore kernel bound dominates the *)
(* shadow oracle's measured demotion error at the base point.          *)

let test_corpus_soundness () =
  let entries = B.Corpus.load () in
  Alcotest.(check bool)
    (Printf.sprintf "whole corpus loaded (%d)" (List.length entries))
    true
    (List.length entries >= 40);
  let certified = ref 0 in
  List.iter
    (fun (e : B.Corpus.entry) ->
      let core = e.B.Corpus.core in
      let prog = e.B.Corpus.prog in
      let fname =
        match prog.Ast.funcs with
        | [ f ] -> f.Ast.fname
        | _ -> Alcotest.fail "corpus entries are single-function"
      in
      let f = Ast.func_exn prog fname in
      let args = core.Cheffp_fpcore.Import.default_args in
      let box =
        Box.of_args ~ranges:core.Cheffp_fpcore.Import.ranges ~func:f ~args ()
      in
      let a = Range.analyze ~prog ~func:fname ~box () in
      let candidates = Tuner.float_variables f in
      match Range.score a ~target:Fp.F32 candidates with
      | None -> ()
      | Some bound ->
          incr certified;
          let config = Config.demote_all Config.double candidates Fp.F32 in
          let v =
            Oracle.check_estimate ~mode:Config.Source ~prog ~func:fname
              ~config args
          in
          if not (v.Oracle.demotion_error <= bound) then
            Alcotest.failf "UNSOUND on %s: measured %.17g > certified %.17g"
              e.B.Corpus.path v.Oracle.demotion_error bound)
    entries;
  Alcotest.(check bool)
    (Printf.sprintf "meaningful share certified (%d)" !certified)
    true (!certified >= 30)

(* ------------------------------------------------------------------ *)
(* Pruning: bit-identity and strict savings on the paper workloads.   *)

type workload = {
  name : string;
  prog : Ast.program;
  func : string;
  args : Interp.arg list;
  threshold : float;
}

(* The five paper workloads at test-suite sizes; thresholds as in the
   bench harness (below each benchmark's all-demoted error, so the
   baseline takes the expensive probe + grow path). *)
let paper_workloads () =
  [
    {
      name = "arclength";
      prog = B.Arclength.program;
      func = B.Arclength.func_name;
      args = B.Arclength.args ~n:500;
      threshold = 1e-6;
    };
    {
      name = "simpsons";
      prog = B.Simpsons.program;
      func = B.Simpsons.func_name;
      args = B.Simpsons.args ~a:0. ~b:Float.pi ~n:500;
      threshold = 1e-10;
    };
    {
      name = "kmeans";
      prog = B.Kmeans.program;
      func = B.Kmeans.func_name;
      args = B.Kmeans.args (B.Kmeans.generate ~npoints:120 ());
      threshold = 1e-7;
    };
    {
      name = "blackscholes";
      prog = B.Blackscholes.program B.Blackscholes.Exact;
      func = B.Blackscholes.price_func;
      args = B.Blackscholes.price_args (B.Blackscholes.generate ~n:4 ()) 0;
      threshold = 1e-9;
    };
    {
      name = "hpccg";
      prog = B.Hpccg.program;
      func = B.Hpccg.func_name;
      (* Bench-smoke size: any smaller and the all-demoted error drops
         below the paper threshold, flipping the search regime. *)
      args =
        B.Hpccg.args (B.Hpccg.generate ~nx:5 ~ny:5 ~nz:5 ~max_iter:10 ());
      threshold = 1e-10;
    };
  ]

let test_prune_bit_identity () =
  let strict = ref 0 in
  List.iter
    (fun w ->
      let tune ~threshold ?strategy ?prune_bound () =
        Search.tune ~jobs:1 ?strategy ?prune_bound ~prog:w.prog ~func:w.func
          ~args:w.args ~threshold ()
      in
      (* Every candidate lands in exactly one bucket — executed,
         model-avoided, or prune-accepted — so against the all-measured
         strategy: measured = executions + runs_avoided + pruned. *)
      let partition_invariant ~threshold (pruned : Search.outcome) =
        let measured = tune ~threshold ~strategy:`Measured () in
        Alcotest.(check int)
          (Printf.sprintf "%s: executed/avoided/pruned partition @%g" w.name
             threshold)
          measured.Search.executions
          (pruned.Search.executions + pruned.Search.runs_avoided
         + pruned.Search.pruned)
      in
      let f = Ast.func_exn w.prog w.func in
      let box = Box.point_of_args ~func:f ~args:w.args () in
      let a = Range.analyze ~prog:w.prog ~func:w.func ~box () in
      let prune_bound = Range.pruner a ~target:Fp.F32 in
      (* Tight regime: the paper threshold. The rigorous bound rarely
         certifies here; it must never change the answer or cost runs. *)
      let baseline = tune ~threshold:w.threshold () in
      let pruned = tune ~threshold:w.threshold ~prune_bound () in
      Alcotest.(check (list string))
        (w.name ^ ": tight demoted set identical")
        baseline.Search.demoted pruned.Search.demoted;
      Alcotest.(check bool)
        (w.name ^ ": tight never more executions")
        true
        (pruned.Search.executions <= baseline.Search.executions);
      partition_invariant ~threshold:w.threshold pruned;
      (* Loose regime: threshold at the certified all-candidates bound,
         where the accept-without-executing path can fire. *)
      match prune_bound (Tuner.float_variables f) with
      | None -> ()
      | Some loose ->
          let baseline = tune ~threshold:loose () in
          let pruned = tune ~threshold:loose ~prune_bound () in
          Alcotest.(check (list string))
            (w.name ^ ": loose demoted set identical")
            baseline.Search.demoted pruned.Search.demoted;
          Alcotest.(check bool)
            (w.name ^ ": loose prunes strictly")
            true
            (pruned.Search.pruned > 0
            && pruned.Search.executions < baseline.Search.executions);
          partition_invariant ~threshold:loose pruned;
          incr strict)
    (paper_workloads ());
  Alcotest.(check bool)
    (Printf.sprintf "strict savings on >= 3 workloads (%d/5)" !strict)
    true (!strict >= 3)

let () =
  Alcotest.run "range"
    [
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "outward rounding" `Quick test_interval_outward;
          Alcotest.test_case "unbounded" `Quick test_interval_unbounded;
          Alcotest.test_case "storage rounding" `Quick test_interval_round;
          QCheck_alcotest.to_alcotest fuzz_interval_enclosure;
        ] );
      ( "box",
        [
          Alcotest.test_case "default widening" `Quick test_box_default;
          Alcotest.test_case "override and split" `Quick
            test_box_override_and_split;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "fuzzed programs, 64-lane sweeps" `Quick
            test_fuzz_soundness;
          Alcotest.test_case "FPCore corpus vs shadow oracle" `Quick
            test_corpus_soundness;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "paper workloads bit-identity" `Quick
            test_prune_bit_identity;
        ] );
    ]
