(* FPCore conformance driver (run via `dune build @fpcore-smoke`).

   Imports every vendored FPBench kernel in examples/fpbench/, then
   gates three properties per kernel:

   1. the CHEF-FP estimate at the kernel's :pre-derived sample point is
      finite and non-negative;
   2. demoting every float variable to binary32 yields a shadow-oracle
      SOUND verdict at the tuner's margin of 2 (DESIGN.md §10) —
      kernels whose configured run diverges at a branch are counted as
      skipped, matching the fuzz harness;
   3. exporting the imported function and re-importing it reproduces
      the identical AST and a bit-identical error estimate (the
      round-trip contract of DESIGN.md §15).

   Exits non-zero, listing every failure, if any gate trips or the
   corpus has shrunk below 40 kernels. *)

module B = Cheffp_benchmarks
module E = Cheffp_core.Estimate
module Tuner = Cheffp_core.Tuner
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Oracle = Cheffp_shadow.Oracle
module Import = Cheffp_fpcore.Import
module Export = Cheffp_fpcore.Export
module Ast = Cheffp_ir.Ast

let failures = ref 0

let fail name fmt =
  Printf.ksprintf
    (fun m ->
      incr failures;
      Printf.printf "FAIL %-24s %s\n" name m)
    fmt

let analyze prog func args =
  let est = E.estimate_error ~prog ~func () in
  (E.run est args).E.total_error

let () =
  let entries = B.Corpus.load () in
  let n = List.length entries in
  Printf.printf "fpcore conformance: %d kernels from %s\n" n
    (match B.Corpus.corpus_dir () with Some d -> d | None -> "?");
  if n < 40 then fail "corpus" "only %d kernels vendored; expected >= 40" n;
  let sound = ref 0 and diverged = ref 0 in
  List.iter
    (fun (e : B.Corpus.entry) ->
      let name = Filename.basename e.path in
      let func = e.core.Import.name in
      let args = e.core.Import.default_args in
      try
        (* 1. finite estimate at the :pre sample point *)
        let total = analyze e.prog func args in
        if not (Float.is_finite total) || total < 0.0 then
          fail name "estimate at default args is %h" total;
        (* 2. all-float-variables-to-F32 soundness against the oracle *)
        let f = Ast.func_exn e.prog func in
        let vars = Tuner.float_variables f in
        let config = Config.demote_all e.core.Import.config vars Fp.F32 in
        let v = Oracle.check_estimate ~margin:2.0 ~prog:e.prog ~func ~config args in
        if v.Oracle.branch_divergence then incr diverged
        else if not v.Oracle.sound then
          fail name "UNSOUND: measured %.3e > bound %.3e"
            v.Oracle.measured_error v.Oracle.bound
        else incr sound;
        (* 3. export -> import round trip is exact *)
        let text = Export.func_to_fpcore ~prog:e.prog ~func () in
        match Import.parse_string ~file:(name ^ "<roundtrip>") text with
        | [ c ] ->
            if c.Import.func <> f then fail name "round-trip AST differs"
            else
              let prog' : Ast.program = { funcs = [ c.Import.func ] } in
              let total' = analyze prog' func args in
              if not (Float.equal total total') then
                fail name "round-trip estimate %h <> %h" total' total
        | cs -> fail name "round-trip produced %d cores" (List.length cs)
      with
      | Export.Error m -> fail name "%s" m
      | Import.Error m -> fail name "reimport: %s" m
      | exn -> fail name "exception: %s" (Printexc.to_string exn))
    entries;
  Printf.printf
    "fpcore conformance: %d/%d oracle-sound at uniform binary32 (margin 2), \
     %d branch-divergent skipped, %d failure(s)\n"
    !sound n !diverged !failures;
  exit (if !failures > 0 then 1 else 0)
