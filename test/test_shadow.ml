(* Shadow-execution oracle tests: hand-derived double-double identities,
   lockstep low-lane bit-identity against the interpreter, hand-computed
   cancellation kernels, and estimate soundness on every paper benchmark
   at EXPERIMENTS.md-style configurations. *)

open Cheffp_ir
open Cheffp_shadow
module B = Cheffp_benchmarks
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Tuner = Cheffp_core.Tuner

let check_exact = Alcotest.(check (float 0.))
let check_bool = Alcotest.(check bool)

let copy_args =
  List.map (function
    | Interp.Afarr a -> Interp.Afarr (Array.copy a)
    | Interp.Aiarr a -> Interp.Aiarr (Array.copy a)
    | a -> a)

(* ------------------------------------------------------------------ *)
(* Dd: hand-derived identities                                         *)
(* ------------------------------------------------------------------ *)

(* Adversarial pair: 1.0 is exactly half an ulp of 1e16, ties-to-even
   rounds the sum down, so the entire addend survives in the error
   term. Values pinned by hand. *)
let test_two_sum_halfway () =
  let s, e = Dd.two_sum 1e16 1.0 in
  check_exact "s" 1e16 s;
  check_exact "e" 1.0 e

(* The textbook non-representable sum: e must recover exactly what
   binary64 lost. (0.1 + 0.2) - 0.30000000000000004 in exact arithmetic
   over the *double* values 0.1 and 0.2. *)
let test_two_sum_point_three () =
  let s, e = Dd.two_sum 0.1 0.2 in
  check_exact "s" 0.30000000000000004 s;
  check_exact "e" (-2.7755575615628914e-17) e

(* Knuth's two_sum is branch-free and must not depend on argument
   order: the exact sum is commutative, so (s, e) must match. *)
let test_two_sum_commutes () =
  List.iter
    (fun (a, b) ->
      let s1, e1 = Dd.two_sum a b in
      let s2, e2 = Dd.two_sum b a in
      check_exact (Printf.sprintf "s %.17g %.17g" a b) s1 s2;
      check_exact (Printf.sprintf "e %.17g %.17g" a b) e1 e2)
    [ (1e16, 1.0); (0.1, 0.2); (-1e300, 1e284); (3.5, -3.5000000001); (1e-300, 1.0) ]

let test_quick_two_sum () =
  (* precondition |a| >= |b| holds; the error term is exactly b when b
     is far below one ulp of a *)
  let s, e = Dd.quick_two_sum 1.0 1e-17 in
  check_exact "s" 1.0 s;
  check_exact "e" 1e-17 e

(* Dekker split: hi + lo = x exactly, each half fits in 26 bits (so
   products of halves are exact). The 1e300 case exercises the
   overflow-guarded branch (|x| > 2^996 would overflow the splitter
   multiply without pre-scaling). *)
let test_split_reconstructs () =
  List.iter
    (fun x ->
      let hi, lo = Dd.split x in
      check_exact (Printf.sprintf "hi+lo %.17g" x) x (hi +. lo);
      check_bool (Printf.sprintf "|lo|<=|hi| %.17g" x) true
        (Float.abs lo <= Float.abs hi))
    [ 1.0; Float.pi; 134217729.0; 0.1; -1e16; 1e300; -8.98846567431158e307 ]

(* two_prod against the hardware FMA: e = fma(a, b, -p) is the exact
   product residual, the strongest available cross-check. *)
let test_two_prod_vs_fma () =
  List.iter
    (fun (a, b) ->
      let p, e = Dd.two_prod a b in
      check_exact (Printf.sprintf "p %.17g*%.17g" a b) (a *. b) p;
      check_exact (Printf.sprintf "e %.17g*%.17g" a b)
        (Float.fma a b (-.p)) e)
    [ (0.1, 0.2); (Float.pi, Float.pi); (1.0 +. 0x1p-27, 1.0 -. 0x1p-27);
      (1e8 +. 1.0, 1e8 -. 1.0); (-3.0000000001, 7.0000000007); (1e-300, 1e280) ]

let test_two_prod_adversarial () =
  (* (1 + 2^-27)^2 = 1 + 2^-26 + 2^-54: the 2^-54 term is exactly the
     bit binary64 drops (ties-to-even keeps p = 1 + 2^-26). *)
  let a = 1.0 +. 0x1p-27 in
  let p, e = Dd.two_prod a a in
  check_exact "p" (1.0 +. 0x1p-26) p;
  check_exact "e" 0x1p-54 e

let test_cancellation_survives () =
  (* The issue's canonical case: 1e16 + 1 - 1e16 = 1 exactly in dd,
     where plain binary64 returns 0. *)
  let d = Dd.sub (Dd.add_float (Dd.of_float 1e16) 1.0) (Dd.of_float 1e16) in
  check_bool "dd keeps the 1" true (Dd.equal d Dd.one);
  check_exact "binary64 drops it" 0.0 (1e16 +. 1.0 -. 1e16)

let test_add_keeps_sub_ulp () =
  (* 1 + 1e-30 - 1 = 1e-30: the addend lives entirely below one ulp of
     the high word and must round-trip through the low word. *)
  let d = Dd.sub (Dd.add_float Dd.one 1e-30) Dd.one in
  check_exact "lo survives" 1e-30 (Dd.to_float d)

let test_mul_exact_expansion () =
  (* (1 + 2^-30)^2 = 1 + 2^-29 + 2^-60, all three terms representable
     across the two words. *)
  let a = Dd.of_float (1.0 +. 0x1p-30) in
  let expected = Dd.add (Dd.of_float (1.0 +. 0x1p-29)) (Dd.of_float 0x1p-60) in
  check_bool "square" true (Dd.equal (Dd.mul a a) expected)

let test_div_thirds () =
  (* 3 * (1/3) - 1 must vanish in both words. *)
  let third = Dd.div Dd.one (Dd.of_float 3.0) in
  let r = Dd.sub (Dd.mul_float third 3.0) Dd.one in
  check_bool "exact zero" true (Dd.equal r Dd.zero)

let test_div_roundtrip () =
  List.iter
    (fun (a, b) ->
      let q = Dd.div (Dd.of_float a) (Dd.of_float b) in
      let r = Dd.sub (Dd.mul_float q b) (Dd.of_float a) in
      let rel = Float.abs (Dd.to_float r) /. Float.abs a in
      check_bool (Printf.sprintf "%.17g/%.17g rel=%g" a b rel) true (rel < 1e-30))
    [ (1.0, 7.0); (Float.pi, 0.1); (-1e200, 3.0000000003); (2.0, 1e-200) ]

let test_sqrt_two () =
  let r = Dd.sub (Dd.mul (Dd.sqrt (Dd.of_float 2.0)) (Dd.sqrt (Dd.of_float 2.0)))
      (Dd.of_float 2.0) in
  check_bool "sqrt(2)^2 - 2 = 0 in dd" true (Dd.equal r Dd.zero)

let test_sqrt_perfect_square () =
  check_bool "sqrt 9 = 3" true (Dd.equal (Dd.sqrt (Dd.of_int 9)) (Dd.of_float 3.0));
  check_bool "sqrt 0 = 0" true (Dd.equal (Dd.sqrt Dd.zero) Dd.zero);
  check_bool "sqrt -1 nan" true (Dd.is_nan (Dd.sqrt (Dd.of_float (-1.0))))

let test_sqrt_roundtrip () =
  List.iter
    (fun a ->
      let s = Dd.sqrt (Dd.of_float a) in
      let r = Dd.sub (Dd.mul s s) (Dd.of_float a) in
      let rel = Float.abs (Dd.to_float r) /. a in
      check_bool (Printf.sprintf "sqrt %.17g rel=%g" a rel) true (rel < 1e-30))
    [ 2.0; 0.1; Float.pi; 1e300; 7e-300 ]

let test_of_int_beyond_53_bits () =
  (* Integers above 2^53 are not binary64-representable; of_int must
     carry the low bits in the second word. *)
  let p53 = 1 lsl 53 in
  check_bool "2^53 + 1" true
    (Dd.equal (Dd.sub (Dd.of_int (p53 + 1)) (Dd.of_int p53)) Dd.one);
  check_bool "2^60 + 7" true
    (Dd.equal
       (Dd.sub (Dd.of_int ((1 lsl 60) + 7)) (Dd.of_float 0x1p60))
       (Dd.of_float 7.0))

let test_floor_ceil_across_lo () =
  (* When the high word is integral the verdict hides in the low word:
     3 - 1e-20 floors to 2, 3 + 1e-20 ceils to 4. float-level floor
     would get both wrong. *)
  check_bool "floor(3 - eps) = 2" true
    (Dd.equal (Dd.floor (Dd.make 3.0 (-1e-20))) (Dd.of_float 2.0));
  check_bool "ceil(3 + eps) = 4" true
    (Dd.equal (Dd.ceil (Dd.make 3.0 1e-20)) (Dd.of_float 4.0));
  check_bool "floor(2.5) = 2" true
    (Dd.equal (Dd.floor (Dd.of_float 2.5)) (Dd.of_float 2.0))

let test_sign_compare_sub_ulp () =
  check_exact "sign of tiny negative" (-1.0) (Dd.sign (Dd.make 0.0 (-1e-300)));
  check_bool "1 < 1 + 1e-30" true
    (Dd.compare Dd.one (Dd.add_float Dd.one 1e-30) < 0);
  check_bool "equal after renorm" true
    (Dd.equal (Dd.make 1.0 0.0) Dd.one)

(* ------------------------------------------------------------------ *)
(* Shadow.run: hand-computed kernels and interpreter bit-identity      *)
(* ------------------------------------------------------------------ *)

let cancel_prog =
  Parser.parse_program
    {|
func cancel(x: f64): f64 {
  var a: f64 = x + 1.0;
  var b: f64 = a - x;
  return b;
}
|}

let test_shadow_cancellation_kernel () =
  (* x = 1e16: binary64 loses the 1.0 entirely (ties-to-even), the
     shadow lane keeps it, so the measured error is exactly 1.0. *)
  let r = Shadow.run ~prog:cancel_prog ~func:"cancel" [ Interp.Aflt 1e16 ] in
  let m = Option.get r.Shadow.ret in
  check_exact "low lane" 0.0 m.Shadow.low;
  check_bool "shadow lane" true (Dd.equal m.Shadow.shadow Dd.one);
  check_exact "abs error" 1.0 m.Shadow.abs_error;
  check_exact "rel error" 1.0 m.Shadow.rel_error;
  check_exact "measured_error" 1.0 (Shadow.measured_error r)

let mini_simpson_prog =
  (* Simpson's rule for sin over [0, pi] with n = 4 panels: small
     enough to hand-compute the true dd value's binary64 rounding. *)
  Parser.parse_program
    {|
func simpson4(a: f64, b: f64): f64 {
  var h: f64 = (b - a) / 4.0;
  var s: f64 = sin(a) + sin(b);
  var x: f64;
  for i in 1 .. 4 {
    x = a + itof(i) * h;
    if (i % 2 == 1) {
      s = s + 4.0 * sin(x);
    } else {
      s = s + 2.0 * sin(x);
    }
  }
  return s * h / 3.0;
}
|}

let test_shadow_mini_simpson () =
  let args = [ Interp.Aflt 0.0; Interp.Aflt Float.pi ] in
  let r = Shadow.run ~prog:mini_simpson_prog ~func:"simpson4" (copy_args args) in
  let m = Option.get r.Shadow.ret in
  (* low lane is bit-identical to the plain interpreter... *)
  check_exact "low = Interp"
    (Interp.run_float ~prog:mini_simpson_prog ~func:"simpson4" (copy_args args))
    m.Shadow.low;
  (* ...the value is the textbook Simpson estimate of 2 (error O(h^4)) *)
  check_bool "integrates sine" true (Float.abs (m.Shadow.low -. 2.0) < 1e-2);
  (* ...and in all-binary64 the measured true error sits at the
     rounding floor: a handful of ulps around 2.0. *)
  check_bool "error at rounding floor" true (m.Shadow.rel_error < 1e-14)

let demoted_arclength_config =
  Config.demote_all Config.double [ "s1"; "t1"; "t2"; "d" ] Fp.F32

let test_shadow_bit_identity_with_interp () =
  (* The low lane must reproduce Interp.run bit for bit: all-F64 and a
     demoted configuration, in both rounding modes. *)
  let prog = B.Arclength.program and func = B.Arclength.func_name in
  List.iter
    (fun (label, config, mode) ->
      let expect =
        Interp.run_float ~config ~mode ~prog ~func (B.Arclength.args ~n:200)
      in
      let r = Shadow.run ~config ~mode ~prog ~func (B.Arclength.args ~n:200) in
      check_exact label expect (Option.get r.Shadow.ret).Shadow.low)
    [
      ("f64 source", Config.double, Config.Source);
      ("f64 extended", Config.double, Config.Extended);
      ("demoted source", demoted_arclength_config, Config.Source);
      ("demoted extended", demoted_arclength_config, Config.Extended);
      ("uniform f16 source", Config.uniform Fp.F16, Config.Source);
    ]

let worst_rel (r : Shadow.result) =
  let ms = (match r.Shadow.ret with Some m -> [ m ] | None -> []) @ r.Shadow.outs in
  List.fold_left (fun acc m -> Float.max acc m.Shadow.rel_error) 0.0 ms

(* All-F64 runs measured against the dd reference must sit at the
   binary64 rounding floor — the "~0 error" property. The residual is
   genuine f64 rounding accumulated over O(n) operations (documented in
   DESIGN.md §10), so the bound scales with the operation count but
   stays many orders below any demotion effect. *)
let test_shadow_all_f64_error_floor () =
  let check_floor label run limit =
    let rel = worst_rel run in
    check_bool (Printf.sprintf "%s rel=%g" label rel) true (rel < limit)
  in
  check_floor "arclength"
    (Shadow.run ~prog:B.Arclength.program ~func:B.Arclength.func_name
       (B.Arclength.args ~n:2000))
    1e-12;
  check_floor "simpsons"
    (Shadow.run ~prog:B.Simpsons.program ~func:B.Simpsons.func_name
       (B.Simpsons.args ~a:0.0 ~b:Float.pi ~n:500))
    1e-12;
  (let w = B.Kmeans.generate ~npoints:200 () in
   check_floor "kmeans"
     (Shadow.run ~prog:B.Kmeans.program ~func:B.Kmeans.func_name
        (copy_args (B.Kmeans.args w)))
     1e-12);
  (let w = B.Blackscholes.generate ~n:2 () in
   check_floor "blackscholes"
     (Shadow.run
        ~prog:(B.Blackscholes.program B.Blackscholes.Exact)
        ~func:B.Blackscholes.price_func
        (copy_args (B.Blackscholes.price_args w 0)))
     1e-12);
  (let w = B.Hpccg.generate ~nx:5 ~ny:5 ~nz:5 ~max_iter:8 () in
   check_floor "hpccg"
     (Shadow.run ~prog:B.Hpccg.program ~func:B.Hpccg.func_name
        (copy_args (B.Hpccg.args w)))
     1e-11)

let test_shadow_divergence_tracking () =
  let r =
    Shadow.run ~config:demoted_arclength_config ~mode:Config.Source
      ~prog:B.Arclength.program ~func:B.Arclength.func_name
      (B.Arclength.args ~n:200)
  in
  check_bool "nonempty" true (r.Shadow.divergence <> []);
  check_bool "sorted descending, non-negative" true
    (let rec ok = function
       | (_, a) :: ((_, b) :: _ as rest) -> a >= b && b >= 0.0 && ok rest
       | [ (_, a) ] -> a >= 0.0
       | [] -> true
     in
     ok r.Shadow.divergence);
  (* the demoted accumulator must be among the tracked names *)
  check_bool "s1 tracked" true (List.mem_assoc "s1" r.Shadow.divergence)

let branchy_prog =
  Parser.parse_program
    {|
func branchy(x: f64): f64 {
  var t: f64 = x * x;
  if (t < 0.0099999) {
    return 1.0;
  }
  return 0.0;
}
|}

let test_shadow_branch_hash () =
  let run config =
    Shadow.run ~config ~mode:Config.Source ~prog:branchy_prog ~func:"branchy"
      [ Interp.Aflt 0.1 ]
  in
  let f64 = run Config.double in
  let f64' = run Config.double in
  let f16 = run (Config.uniform Fp.F16) in
  (* deterministic: identical runs hash identically *)
  Alcotest.(check int) "stable" f64.Shadow.branch_hash f64'.Shadow.branch_hash;
  (* 0.1^2 in binary64 is 0.010000000000000002 (branch not taken); in
     F16 the square lands near 0.009995 (branch taken): the decision
     flips and the hash must expose it. *)
  check_exact "f64 takes else" 0.0 (Option.get f64.Shadow.ret).Shadow.low;
  check_exact "f16 takes then" 1.0 (Option.get f16.Shadow.ret).Shadow.low;
  check_bool "hash differs" true
    (f64.Shadow.branch_hash <> f16.Shadow.branch_hash)

(* ------------------------------------------------------------------ *)
(* Oracle: estimate soundness on the paper benchmarks                  *)
(* ------------------------------------------------------------------ *)

let tuned ~prog ~func ~args ~threshold =
  (Tuner.tune ~prog ~func ~args ~threshold ()).Tuner.evaluation.Tuner.config

let check_sound label v =
  check_bool
    (Printf.sprintf "%s sound (measured %.3e bound %.3e)" label
       v.Oracle.measured_error v.Oracle.bound)
    true v.Oracle.sound;
  check_bool (label ^ " no branch divergence") true
    (not v.Oracle.branch_divergence)

let test_oracle_arclength () =
  let prog = B.Arclength.program and func = B.Arclength.func_name in
  let args = B.Arclength.args ~n:1000 in
  let config = tuned ~prog ~func ~args ~threshold:1e-5 in
  let v = Oracle.check_estimate ~prog ~func ~config args in
  check_sound "arclength extended" v;
  check_bool "demotes something" true (v.Oracle.demoted <> []);
  check_exact "bound arithmetic"
    ((v.Oracle.margin *. v.Oracle.modelled_error) +. v.Oracle.baseline_error)
    v.Oracle.bound;
  (* Source mode rounds per operation while the model charges one
     rounding per assignment: Table I's arclength overshoot. The
     tuner's own margin of 2 restores coverage. *)
  let vs =
    Oracle.check_estimate ~mode:Config.Source ~margin:2.0 ~prog ~func ~config
      args
  in
  check_sound "arclength source margin 2" vs

let test_oracle_simpsons () =
  let prog = B.Simpsons.program and func = B.Simpsons.func_name in
  let args = B.Simpsons.args ~a:0.0 ~b:Float.pi ~n:500 in
  let config = tuned ~prog ~func ~args ~threshold:1e-6 in
  check_sound "simpsons" (Oracle.check_estimate ~prog ~func ~config args)

let test_oracle_kmeans () =
  let w = B.Kmeans.generate ~npoints:200 () in
  let prog = B.Kmeans.program and func = B.Kmeans.func_name in
  let args = B.Kmeans.args w in
  let config = tuned ~prog ~func ~args ~threshold:1e-6 in
  check_sound "kmeans" (Oracle.check_estimate ~prog ~func ~config args)

let test_oracle_blackscholes () =
  let w = B.Blackscholes.generate ~n:4 () in
  let v =
    Oracle.check_estimate
      ~prog:(B.Blackscholes.program B.Blackscholes.Exact)
      ~func:B.Blackscholes.price_func
      ~config:(Config.uniform Fp.F32)
      (B.Blackscholes.price_args w 0)
  in
  check_sound "blackscholes uniform f32" v

let test_oracle_hpccg () =
  let w = B.Hpccg.generate ~nx:6 ~ny:6 ~nz:6 ~max_iter:10 () in
  let v =
    Oracle.check_estimate ~prog:B.Hpccg.program ~func:B.Hpccg.func_name
      ~config:
        (Config.demote_all Config.double
           [ "r"; "p"; "ap"; "sum"; "alpha"; "beta"; "rtrans"; "oldrtrans" ]
           Fp.F32)
      (B.Hpccg.args w)
  in
  check_sound "hpccg mixed" v

let test_oracle_all_f64_trivially_sound () =
  (* With nothing demoted the modelled demotion error is zero, the
     measured error *is* the inherent binary64 floor, and the baseline
     covers it by construction. *)
  let prog = B.Arclength.program and func = B.Arclength.func_name in
  let v =
    Oracle.check_estimate ~prog ~func ~config:Config.double
      (B.Arclength.args ~n:500)
  in
  check_bool "sound" true v.Oracle.sound;
  check_exact "no demotions" 0.0 (float_of_int (List.length v.Oracle.demoted));
  check_exact "no modelled demotion error" 0.0 v.Oracle.modelled_error;
  check_exact "measured = inherent" v.Oracle.inherent_error v.Oracle.measured_error;
  check_bool "baseline >= inherent" true
    (v.Oracle.baseline_error >= v.Oracle.inherent_error)

let test_oracle_detects_unsound () =
  (* Strip the model's contribution (margin 0, slack 0): a genuinely
     demoted run must now overshoot the bare binary64 baseline, i.e.
     the verdict machinery can actually fail. *)
  let prog = B.Arclength.program and func = B.Arclength.func_name in
  let args = B.Arclength.args ~n:1000 in
  let config = tuned ~prog ~func ~args ~threshold:1e-5 in
  let v =
    Oracle.check_estimate ~margin:0.0 ~slack:0.0 ~prog ~func ~config args
  in
  check_bool "unsound without the model" true (not v.Oracle.sound);
  check_bool "render says UNSOUND" true
    (let s = Oracle.render v in
     let n = String.length s and p = "UNSOUND" in
     let rec find i =
       i + String.length p <= n
       && (String.sub s i (String.length p) = p || find (i + 1))
     in
     find 0)

let () =
  Alcotest.run "shadow"
    [
      ( "dd",
        [
          Alcotest.test_case "two_sum halfway ties" `Quick test_two_sum_halfway;
          Alcotest.test_case "two_sum 0.1+0.2" `Quick test_two_sum_point_three;
          Alcotest.test_case "two_sum commutes" `Quick test_two_sum_commutes;
          Alcotest.test_case "quick_two_sum" `Quick test_quick_two_sum;
          Alcotest.test_case "split reconstructs" `Quick test_split_reconstructs;
          Alcotest.test_case "two_prod vs fma" `Quick test_two_prod_vs_fma;
          Alcotest.test_case "two_prod adversarial" `Quick
            test_two_prod_adversarial;
          Alcotest.test_case "cancellation survives" `Quick
            test_cancellation_survives;
          Alcotest.test_case "add keeps sub-ulp" `Quick test_add_keeps_sub_ulp;
          Alcotest.test_case "mul exact expansion" `Quick
            test_mul_exact_expansion;
          Alcotest.test_case "div thirds" `Quick test_div_thirds;
          Alcotest.test_case "div roundtrip" `Quick test_div_roundtrip;
          Alcotest.test_case "sqrt two" `Quick test_sqrt_two;
          Alcotest.test_case "sqrt perfect square" `Quick
            test_sqrt_perfect_square;
          Alcotest.test_case "sqrt roundtrip" `Quick test_sqrt_roundtrip;
          Alcotest.test_case "of_int beyond 53 bits" `Quick
            test_of_int_beyond_53_bits;
          Alcotest.test_case "floor/ceil across lo" `Quick
            test_floor_ceil_across_lo;
          Alcotest.test_case "sign/compare sub-ulp" `Quick
            test_sign_compare_sub_ulp;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "cancellation kernel" `Quick
            test_shadow_cancellation_kernel;
          Alcotest.test_case "mini simpson" `Quick test_shadow_mini_simpson;
          Alcotest.test_case "bit identity with interp" `Quick
            test_shadow_bit_identity_with_interp;
          Alcotest.test_case "all-f64 error floor" `Quick
            test_shadow_all_f64_error_floor;
          Alcotest.test_case "divergence tracking" `Quick
            test_shadow_divergence_tracking;
          Alcotest.test_case "branch hash" `Quick test_shadow_branch_hash;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "arclength" `Quick test_oracle_arclength;
          Alcotest.test_case "simpsons" `Quick test_oracle_simpsons;
          Alcotest.test_case "kmeans" `Quick test_oracle_kmeans;
          Alcotest.test_case "blackscholes" `Quick test_oracle_blackscholes;
          Alcotest.test_case "hpccg" `Quick test_oracle_hpccg;
          Alcotest.test_case "all-f64 trivially sound" `Quick
            test_oracle_all_f64_trivially_sound;
          Alcotest.test_case "detects unsound" `Quick
            test_oracle_detects_unsound;
        ] );
    ]
