(* @obs-smoke validator: checks a --trace JSON-lines file (and
   optionally a --metrics dump) emitted by the cheffp CLI.

     validate_trace trace.jsonl [--require a,b,c] [--metrics dump.txt]
                    [--forest N]

   Verifies, with a self-contained JSON parser (no JSON library in the
   build environment, and the point is to validate our own emitter
   against something independent of it):
   - every line parses as a JSON object with the span schema fields;
   - ids are unique and increasing, parents precede children;
   - every non-root parent exists, and parent spans cover their
     children's [start_ns, end_ns] on the trace clock;
   - exactly one root span covering every other span — or, with
     --forest N, exactly N root spans (the server's per-request trees:
     one "server.request" root per request) each covering its own
     subtree, with no span crossing between trees. --forest any accepts
     a variable number of trees (>= 1): a tail-retained forest (the
     daemon's traces response) concatenates trees in retention order,
     not id order, so ids need only be unique globally and increasing
     within each tree (every non-root line follows its tree's earlier
     lines);
   - every --require name occurs as a span/event name.

   With --metrics, the dump must contain the compile-cache counters and
   at least one pool worker task counter (the ISSUE's acceptance
   criteria). Exits non-zero with a message on the first violation. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("validate_trace: " ^ s); exit 1) fmt

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser (objects, arrays, strings, numbers, literals)  *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false
    do
      advance ()
    done
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Bad "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
              Buffer.add_char b c;
              advance ();
              go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then raise (Bad "bad \\u escape");
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> raise (Bad "bad \\u escape")
              in
              pos := !pos + 4;
              (* BMP-only decoding is enough for our own emitter. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_string b (Printf.sprintf "\\u%s" hex);
              go ()
          | _ -> raise (Bad "bad escape"))
      | Some c when Char.code c < 0x20 -> raise (Bad "raw control char")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> true
      | _ -> false
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> raise (Bad ("bad number " ^ tok))
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else raise (Bad ("bad literal at " ^ string_of_int !pos))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> raise (Bad "expected , or } in object")
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> raise (Bad "expected , or ] in array")
          in
          elems []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('0' .. '9' | '-') -> parse_number ()
    | _ -> raise (Bad ("unexpected input at " ^ string_of_int !pos))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing input");
  v

(* ------------------------------------------------------------------ *)
(* Span checks                                                        *)

type span = {
  id : int;
  parent : int;
  name : string;
  kind : string;
  start_ns : float;
  end_ns : float;
}

let span_of_line lineno line =
  let obj =
    match try parse_json line with Bad m -> fail "line %d: %s" lineno m with
    | Obj kvs -> kvs
    | _ -> fail "line %d: not a JSON object" lineno
  in
  let get k =
    match List.assoc_opt k obj with
    | Some v -> v
    | None -> fail "line %d: missing field %S" lineno k
  in
  let num k = match get k with Num f -> f | _ -> fail "line %d: %S not a number" lineno k in
  let str k = match get k with Str s -> s | _ -> fail "line %d: %S not a string" lineno k in
  (* attrs is omitted when empty *)
  (match List.assoc_opt "attrs" obj with
  | Some (Obj _) | None -> ()
  | Some _ -> fail "line %d: attrs not an object" lineno);
  ignore (num "domain");
  ignore (num "dur_ns");
  {
    id = int_of_float (num "id");
    parent = int_of_float (num "parent");
    name = str "name";
    kind = str "kind";
    start_ns = num "start_ns";
    end_ns = num "end_ns";
  }

let () =
  let trace_file = ref None and metrics_file = ref None and required = ref [] in
  let forest = ref `One in
  let rec parse_args = function
    | [] -> ()
    | "--require" :: names :: rest ->
        required := String.split_on_char ',' names;
        parse_args rest
    | "--metrics" :: file :: rest ->
        metrics_file := Some file;
        parse_args rest
    | "--forest" :: count :: rest ->
        (match (count, int_of_string_opt count) with
        | "any", _ -> forest := `Any
        | _, Some n when n >= 1 -> forest := `Exactly n
        | _ -> fail "--forest expects a positive count or \"any\"");
        parse_args rest
    | file :: rest ->
        trace_file := Some file;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let trace_file =
    match !trace_file with
    | Some f -> f
    | None -> fail "usage: validate_trace FILE [--require a,b] [--metrics F]"
  in
  let lines =
    let ic = open_in trace_file in
    let acc = ref [] in
    (try
       while true do
         acc := input_line ic :: !acc
       done
     with End_of_file -> close_in ic);
    List.rev !acc
  in
  if lines = [] then fail "%s: empty trace" trace_file;
  let spans = List.mapi (fun i l -> span_of_line (i + 1) l) lines in
  (match !forest with
  | `Any ->
      (* A tail-retained forest orders trees by retention, not id: ids
         are unique globally and strictly increasing within each tree
         (a line either continues the current tree with a larger id or
         opens a new tree with a root). *)
      let seen = Hashtbl.create 64 in
      List.iter
        (fun s ->
          if Hashtbl.mem seen s.id then fail "duplicate span id %d" s.id;
          Hashtbl.replace seen s.id ())
        spans;
      ignore
        (List.fold_left
           (fun prev s ->
             if s.parent <> -1 && s.id <= prev then
               fail "span ids not increasing within a tree at %d" s.id;
             s.id)
           (-1) spans)
  | `One | `Exactly _ ->
      (* ids unique and strictly increasing (write_jsonl emits start
         order) *)
      ignore
        (List.fold_left
           (fun prev s ->
             if s.id <= prev then
               fail "span ids not strictly increasing at %d" s.id;
             s.id)
           (-1) spans));
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) spans;
  (* parentage: roots and containment *)
  let roots = List.filter (fun s -> s.parent = -1) spans in
  (match !forest with
  | `Any -> if roots = [] then fail "expected at least one root span"
  | `One | `Exactly _ ->
      let expected_roots = match !forest with `Exactly n -> n | _ -> 1 in
      if List.length roots <> expected_roots then
        fail "expected exactly %d root span(s), found %d" expected_roots
          (List.length roots));
  (* Each span belongs to the tree of the root its parent chain reaches;
     with --forest, containment is checked against that root (trees must
     be disjoint — a parent in another tree fails the chain walk). *)
  let root_of = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace root_of r.id r) roots;
  let rec resolve_root s =
    match Hashtbl.find_opt root_of s.id with
    | Some r -> r
    | None -> (
        match Hashtbl.find_opt by_id s.parent with
        | None -> fail "span %d: parent %d not in trace" s.id s.parent
        | Some p ->
            let r = resolve_root p in
            Hashtbl.replace root_of s.id r;
            r)
  in
  List.iter
    (fun s ->
      (match s.kind with
      | "span" | "event" -> ()
      | k -> fail "span %d: unknown kind %S" s.id k);
      if s.end_ns < s.start_ns then fail "span %d ends before it starts" s.id;
      let root = resolve_root s in
      if s.id <> root.id then begin
        let p =
          match Hashtbl.find_opt by_id s.parent with
          | Some p -> p
          | None -> fail "span %d: parent %d not in trace" s.id s.parent
        in
        if p.id >= s.id then fail "span %d: parent %d does not precede it" s.id p.id;
        if not (p.start_ns <= s.start_ns && s.end_ns <= p.end_ns) then
          fail "span %d (%s) escapes its parent %d (%s)" s.id s.name p.id p.name;
        if not (root.start_ns <= s.start_ns && s.end_ns <= root.end_ns) then
          fail "span %d (%s) escapes its root" s.id s.name
      end)
    spans;
  (* required phase names *)
  List.iter
    (fun name ->
      if name <> "" && not (List.exists (fun s -> s.name = name) spans) then
        fail "required span %S missing (have: %s)" name
          (String.concat ", "
             (List.sort_uniq compare (List.map (fun s -> s.name) spans))))
    !required;
  (* metrics dump: the ISSUE's acceptance keys *)
  Option.iter
    (fun file ->
      let ic = open_in file in
      let keys = ref [] in
      (try
         while true do
           let line = input_line ic in
           match String.index_opt line ' ' with
           | Some i when i > 0 -> keys := String.sub line 0 i :: !keys
           | _ -> ()
         done
       with End_of_file -> close_in ic);
      List.iter
        (fun k ->
          if not (List.mem k !keys) then
            fail "%s: metrics key %S missing" file k)
        [
          "compile_cache.hits"; "compile_cache.misses";
          "compile_cache.evictions"; "pool.tasks"; "pool.worker.0.tasks";
        ])
    !metrics_file;
  match roots with
  | [ root ] ->
      Printf.printf
        "validate_trace: OK — %d span(s), root %S covers all, required \
         phases present\n"
        (List.length spans) root.name
  | roots ->
      Printf.printf
        "validate_trace: OK — %d span(s) in %d disjoint tree(s) (%s), \
         required phases present\n"
        (List.length spans) (List.length roots)
        (String.concat ", "
           (List.sort_uniq compare (List.map (fun s -> s.name) roots)))
