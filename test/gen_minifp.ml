(* Random well-typed MiniFP program generator for differential testing.

   Generates straight-line-plus-structure float programs over a fixed
   set of variables: every generated function has the signature
   [func fuzz(x: f64, y: f64, n: int): f64] and a body built from
   assignments, [for]/[while]/[if] blocks, and numerically tame
   intrinsics. Values are kept in a safe range by construction
   (coefficients are small, divisions guard their denominators, [exp]
   arguments are damped) so differential comparisons are meaningful
   rather than NaN-vs-NaN.

   Used by the fuzz suites: Interp = Compile, optimizer preserves
   semantics, Normalize preserves semantics, reverse AD = forward AD =
   finite differences, activity analysis changes nothing, and the
   adjoint's stack discipline restores all state. *)

open Cheffp_ir
open Ast
module G = QCheck.Gen

let float_vars = [ "x"; "y"; "a"; "b"; "c" ]
(* "x" and "y" are parameters; a b c are locals initialised from them.
   There is also one fixed local array [ar: f64[8]], read and written at
   constant indices so every access is in bounds. *)

let array_len = 8

let gen_coeff : float G.t =
  G.oneofl [ 0.5; 1.0; 1.5; 2.0; 0.25; 3.0; 0.75; 1.25 ]

let gen_var : string G.t = G.oneofl float_vars

(* Safe unary intrinsics: defined and smooth on all of R after damping. *)
let gen_call1 (arg : expr) : expr G.t =
  G.oneofl
    [
      Call ("sin", [ arg ]);
      Call ("cos", [ arg ]);
      Call ("tanh", [ arg ]);
      Call ("atan", [ arg ]);
      (* exp of a damped argument stays in range *)
      Call ("exp", [ Binop (Mul, Fconst 0.125, arg) ]);
      (* sqrt/log of a positive-by-construction argument *)
      Call ("sqrt", [ Binop (Add, Fconst 1.5, Call ("tanh", [ arg ])) ]);
      Call ("log", [ Binop (Add, Fconst 2.5, Call ("sin", [ arg ])) ]);
      Call ("fabs", [ arg ]);
    ]

let rec gen_fexpr n : expr G.t =
  let open G in
  if n <= 0 then
    oneof
      [
        map (fun c -> Fconst c) gen_coeff;
        map (fun v -> Var v) gen_var;
        map (fun i -> Idx ("ar", Iconst i)) (int_range 0 (array_len - 1));
      ]
  else
    frequency
      [
        (2, map (fun c -> Fconst c) gen_coeff);
        (3, map (fun v -> Var v) gen_var);
        (1, map (fun i -> Idx ("ar", Iconst i)) (int_range 0 (array_len - 1)));
        ( 4,
          let* op = oneofl [ Add; Sub; Mul ] in
          let* a = gen_fexpr (n / 2) in
          let* b = gen_fexpr (n / 2) in
          return (Binop (op, a, b)) );
        ( 1,
          (* guarded division: denominator bounded away from zero *)
          let* a = gen_fexpr (n / 2) in
          let* b = gen_fexpr (n / 2) in
          return
            (Binop
               ( Div,
                 a,
                 Binop (Add, Fconst 3.0, Call ("tanh", [ b ])) )) );
        ( 2,
          let* a = gen_fexpr (n - 1) in
          gen_call1 a );
        (1, map (fun e -> Unop (Neg, e)) (gen_fexpr (n - 1)));
      ]

(* Conditions compare two tame float expressions. *)
let gen_cond n : expr G.t =
  let open G in
  let* op = oneofl [ Lt; Le; Gt; Ge ] in
  let* a = gen_fexpr (n / 2) in
  let* b = gen_fexpr (n / 2) in
  return (Binop (op, a, b))

(* Damped assignment: v = tanh(e) * coeff + coeff' keeps the state
   bounded across loop iterations while staying smooth. Targets are
   scalars or a constant-indexed array slot. *)
let lv_expr = function
  | Lvar v -> Var v
  | Lidx (a, i) -> Idx (a, i)

let gen_assign : stmt G.t =
  let open G in
  let* lv =
    frequency
      [
        (4, map (fun v -> Lvar v) gen_var);
        (1, map (fun i -> Lidx ("ar", Iconst i)) (int_range 0 (array_len - 1)));
      ]
  in
  let* e = gen_fexpr 4 in
  let* damp = bool in
  let rhs =
    if damp then
      Binop (Add, Call ("tanh", [ e ]), Binop (Mul, Fconst 0.25, lv_expr lv))
    else e
  in
  return (Assign (lv, rhs))

let rec gen_stmt depth : stmt G.t =
  let open G in
  if depth <= 0 then gen_assign
  else
    frequency
      [
        (6, gen_assign);
        ( 2,
          let* c = gen_cond 3 in
          let* t = gen_block (depth - 1) 2 in
          let* e = gen_block (depth - 1) 2 in
          return (If (c, t, e)) );
        ( 2,
          let* body = gen_block (depth - 1) 3 in
          let* lo = int_range 0 2 in
          let* hi = int_range 3 6 in
          let* use_n = bool in
          let hi_expr =
            if use_n then Binop (Add, Var "n", Iconst (hi - 3)) else Iconst hi
          in
          return (For { var = "i" ^ string_of_int depth; lo = Iconst lo;
                        hi = hi_expr; down = false; body }) );
        ( 1,
          (* bounded while: counter declared by the harness prelude *)
          let* body = gen_block (depth - 1) 2 in
          let k = "w" ^ string_of_int depth in
          return
            (While
               ( Binop (Lt, Var k, Iconst 4),
                 body @ [ Assign (Lvar k, Binop (Add, Var k, Iconst 1)) ] )) );
      ]

and gen_block depth len : stmt list G.t =
  let open G in
  let* n = int_range 1 len in
  list_repeat n (gen_stmt depth)

let gen_func : func G.t =
  let open G in
  let* body = gen_block 2 5 in
  let* ret = gen_fexpr 3 in
  let prelude =
    [
      Decl { name = "a"; dty = Dscalar (Sflt Cheffp_precision.Fp.F64);
             init = Some (Binop (Mul, Fconst 0.5, Var "x")) };
      Decl { name = "b"; dty = Dscalar (Sflt Cheffp_precision.Fp.F64);
             init = Some (Binop (Add, Var "y", Fconst 0.25)) };
      Decl { name = "c"; dty = Dscalar (Sflt Cheffp_precision.Fp.F64);
             init = Some (Fconst 1.0) };
      (* while counters for every possible depth *)
      Decl { name = "w1"; dty = Dscalar Sint; init = Some (Iconst 0) };
      Decl { name = "w2"; dty = Dscalar Sint; init = Some (Iconst 0) };
      Decl
        {
          name = "ar";
          dty = Darr (Sflt Cheffp_precision.Fp.F64, Iconst array_len);
          init = None;
        };
    ]
    @ List.init array_len (fun i ->
          Assign
            ( Lidx ("ar", Iconst i),
              Binop
                ( Add,
                  Binop (Mul, Fconst (0.1 *. float_of_int i), Var "x"),
                  Var "y" ) ))
  in
  return
    {
      fname = "fuzz";
      params =
        [
          { pname = "x"; pty = Tscalar (Sflt Cheffp_precision.Fp.F64); pmode = In };
          { pname = "y"; pty = Tscalar (Sflt Cheffp_precision.Fp.F64); pmode = In };
          { pname = "n"; pty = Tscalar Sint; pmode = In };
        ];
      ret = Some (Sflt Cheffp_precision.Fp.F64);
      body = prelude @ body @ [ Return (Some ret) ];
    }

let gen_program : program G.t = G.map (fun f -> { funcs = [ f ] }) gen_func

(* QCheck arbitrary with a printer that shows the offending program. *)
let arbitrary_program : program QCheck.arbitrary =
  QCheck.make ~print:Pp.program_to_string gen_program

let gen_inputs : (float * float) G.t =
  G.pair (G.float_range (-2.) 2.) (G.float_range (-2.) 2.)

let arbitrary_case : (program * (float * float)) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (p, (x, y)) ->
      Printf.sprintf "x=%.17g y=%.17g\n%s" x y (Pp.program_to_string p))
    (G.pair gen_program gen_inputs)

(* ------------------------------------------------------------------ *)
(* Mixed-precision variants, for the shadow-oracle fuzz properties:    *)
(* the same program shapes, but with randomly narrowed declarations    *)
(* (F16/F32/F64 scalars and the array) and a random configuration of   *)
(* per-variable overrides on top.                                      *)
(* ------------------------------------------------------------------ *)

module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config

let mixable_vars = [ "x"; "y"; "a"; "b"; "c"; "ar" ]

let gen_fmt : Fp.format G.t = G.oneofl [ Fp.F16; Fp.F32; Fp.F64 ]

(* Rewrite the declared float formats of a generated function; [fmts]
   maps variable name to its new storage format (parameters, scalar
   locals, and the fixed array alike). *)
let retype_func (fmts : (string * Fp.format) list) (f : func) : func =
  let fmt_of name fallback =
    match List.assoc_opt name fmts with Some fm -> fm | None -> fallback
  in
  let params =
    List.map
      (fun p ->
        match p.pty with
        | Tscalar (Sflt _) -> { p with pty = Tscalar (Sflt (fmt_of p.pname Fp.F64)) }
        | _ -> p)
      f.params
  in
  let body =
    List.map
      (function
        | Decl ({ dty = Dscalar (Sflt _); _ } as d) ->
            Decl { d with dty = Dscalar (Sflt (fmt_of d.name Fp.F64)) }
        | Decl ({ dty = Darr (Sflt _, len); _ } as d) ->
            Decl { d with dty = Darr (Sflt (fmt_of d.name Fp.F64), len) }
        | s -> s)
      f.body
  in
  { f with params; body }

let gen_mixed_func : func G.t =
  let open G in
  let* f = gen_func in
  let* fmts =
    flatten_l
      (List.map (fun v -> map (fun fm -> (v, fm)) gen_fmt) mixable_vars)
  in
  return (retype_func fmts f)

let gen_mixed_program : program G.t =
  G.map (fun f -> { funcs = [ f ] }) gen_mixed_func

(* A random configuration over the known variable names: each gets no
   override (most of the time), or an F32/F16 demotion. The default
   format stays F64, as everywhere else in the suite. *)
let gen_config : Config.t G.t =
  let open G in
  let* overrides =
    flatten_l
      (List.map
         (fun v ->
           map
             (fun o -> (v, o))
             (oneofl [ None; None; None; Some Fp.F32; Some Fp.F16 ]))
         mixable_vars)
  in
  return
    (List.fold_left
       (fun cfg (v, o) ->
         match o with None -> cfg | Some fm -> Config.demote cfg v fm)
       Config.double overrides)

let arbitrary_mixed_program : program QCheck.arbitrary =
  QCheck.make ~print:Pp.program_to_string gen_mixed_program

(* Soundness regime: the CHEF-FP model (Eq. 2) bounds the effect of
   demoting a {e binary64} program, so the oracle fuzz pairs random
   configurations with F64-declared programs. Configurations over
   programs with declared-narrow types can {e promote} a variable above
   its declaration or perturb the realized rounding of a downstream
   narrow store by a full ulp — both outside the first-order model
   (DESIGN.md §10); those programs are exercised by
   [arbitrary_mixed_case] instead. *)
let arbitrary_shadow_case :
    (program * Config.t * (float * float)) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (p, cfg, (x, y)) ->
      Printf.sprintf "x=%.17g y=%.17g config=%s\n%s" x y (Config.to_string cfg)
        (Pp.program_to_string p))
    (G.triple gen_program gen_config gen_inputs)

let arbitrary_mixed_case : (program * (float * float)) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (p, (x, y)) ->
      Printf.sprintf "x=%.17g y=%.17g\n%s" x y (Pp.program_to_string p))
    (G.pair gen_mixed_program gen_inputs)

(* ------------------------------------------------------------------ *)
(* FPCore-exportable programs, for the Export -> Import round-trip     *)
(* fuzz property. Same tame arithmetic, restricted to the subset the   *)
(* exporter maps exactly (DESIGN.md §15): no arrays, negation only of  *)
(* variables (the exporter folds negated literals), two-sided ifs      *)
(* assigning a single variable, and single-accumulator loops with      *)
(* globally unique counters so reimported counter names can't shift.   *)
(* ------------------------------------------------------------------ *)

let rec gen_xexpr n : expr G.t =
  let open G in
  if n <= 0 then
    oneof [ map (fun c -> Fconst c) gen_coeff; map (fun v -> Var v) gen_var ]
  else
    frequency
      [
        (2, map (fun c -> Fconst c) gen_coeff);
        (3, map (fun v -> Var v) gen_var);
        ( 4,
          let* op = oneofl [ Add; Sub; Mul ] in
          let* a = gen_xexpr (n / 2) in
          let* b = gen_xexpr (n / 2) in
          return (Binop (op, a, b)) );
        ( 1,
          let* a = gen_xexpr (n / 2) in
          let* b = gen_xexpr (n / 2) in
          return
            (Binop (Div, a, Binop (Add, Fconst 3.0, Call ("tanh", [ b ])))) );
        ( 2,
          let* a = gen_xexpr (n - 1) in
          gen_call1 a );
        (1, map (fun v -> Unop (Neg, Var v)) gen_var);
      ]

let gen_xassign_to v : stmt G.t =
  let open G in
  let* e = gen_xexpr 4 in
  let* damp = bool in
  let rhs =
    if damp then
      Binop (Add, Call ("tanh", [ e ]), Binop (Mul, Fconst 0.25, Var v))
    else e
  in
  return (Assign (Lvar v, rhs))

let gen_xassign : stmt G.t = G.(gen_var >>= gen_xassign_to)

let gen_xcond : expr G.t =
  let open G in
  let* op = oneofl [ Lt; Le; Gt; Ge ] in
  let* a = gen_xexpr 2 in
  let* b = gen_xexpr 2 in
  return (Binop (op, a, b))

(* One top-level statement; [k] makes loop counter names unique across
   the function (the importer re-derives them with [fresh], so a
   colliding name would come back renamed and break AST equality). *)
let gen_segment k : (stmt * string option) G.t =
  let open G in
  frequency
    [
      (5, map (fun s -> (s, None)) gen_xassign);
      ( 2,
        let* c = gen_xcond in
        let* v = gen_var in
        let* t = gen_xassign_to v in
        let* e = gen_xassign_to v in
        return (If (c, [ t ], [ e ]), None) );
      ( 2,
        let* v = gen_var in
        let* upd = gen_xassign_to v in
        let* lo = int_range 0 2 in
        let* hi = int_range 3 6 in
        let* use_n = bool in
        let* down = bool in
        let hi_expr =
          if use_n then Binop (Add, Var "n", Iconst (hi - 3)) else Iconst hi
        in
        return
          ( For
              {
                var = Printf.sprintf "k%d" k;
                lo = Iconst lo;
                hi = hi_expr;
                down;
                body = [ upd ];
              },
            None ) );
      ( 1,
        let* v = gen_var in
        let* upd = gen_xassign_to v in
        let w = Printf.sprintf "w%d" k in
        return
          ( While
              ( Binop (Lt, Var w, Iconst 4),
                [ upd; Assign (Lvar w, Binop (Add, Var w, Iconst 1)) ] ),
            Some w ) );
    ]

let gen_export_func : func G.t =
  let open G in
  let* nseg = int_range 2 6 in
  let* segments = flatten_l (List.init nseg gen_segment) in
  let* ret = gen_xexpr 3 in
  let counters = List.filter_map snd segments in
  let prelude =
    [
      Decl { name = "a"; dty = Dscalar (Sflt Fp.F64);
             init = Some (Binop (Mul, Fconst 0.5, Var "x")) };
      Decl { name = "b"; dty = Dscalar (Sflt Fp.F64);
             init = Some (Binop (Add, Var "y", Fconst 0.25)) };
      Decl { name = "c"; dty = Dscalar (Sflt Fp.F64);
             init = Some (Fconst 1.0) };
    ]
    @ List.map
        (fun w -> Decl { name = w; dty = Dscalar Sint; init = Some (Iconst 0) })
        counters
  in
  return
    {
      fname = "fuzz";
      params =
        [
          { pname = "x"; pty = Tscalar (Sflt Fp.F64); pmode = In };
          { pname = "y"; pty = Tscalar (Sflt Fp.F64); pmode = In };
          { pname = "n"; pty = Tscalar Sint; pmode = In };
        ];
      ret = Some (Sflt Fp.F64);
      body = prelude @ List.map fst segments @ [ Return (Some ret) ];
    }

let arbitrary_export_case : (program * (float * float)) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (p, (x, y)) ->
      Printf.sprintf "x=%.17g y=%.17g\n%s" x y (Pp.program_to_string p))
    (G.pair (G.map (fun f -> { funcs = [ f ] }) gen_export_func) gen_inputs)
