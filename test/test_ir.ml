open Cheffp_ir
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Cost = Cheffp_precision.Cost

let check_float = Alcotest.(check (float 1e-12))

let run_f ?builtins ?config ?mode ?counter src func args =
  let prog = Parser.parse_program src in
  Typecheck.check_program ?builtins prog;
  Interp.run_float ?builtins ?config ?mode ?counter ~prog ~func args

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)

let toks src = List.map (fun t -> t.Lexer.tok) (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check bool) "tokens" true
    (toks "x = 1 + 2.5;"
    = Lexer.[ IDENT "x"; EQ; INT_LIT 1; PLUS; FLOAT_LIT 2.5; SEMI; EOF ])

let test_lexer_dotdot_vs_float () =
  Alcotest.(check bool) "1..n" true
    (toks "1 .. n" = Lexer.[ INT_LIT 1; DOTDOT; IDENT "n"; EOF ]);
  Alcotest.(check bool) "1..n no spaces" true
    (toks "1..n" = Lexer.[ INT_LIT 1; DOTDOT; IDENT "n"; EOF ]);
  Alcotest.(check bool) "float with exponent" true
    (toks "1.5e-3" = Lexer.[ FLOAT_LIT 1.5e-3; EOF ]);
  Alcotest.(check bool) "float trailing dot" true
    (toks "2." = Lexer.[ FLOAT_LIT 2.; EOF ])

let test_lexer_comments () =
  Alcotest.(check bool) "comment to eol" true
    (toks "x // comment ; = 4\ny" = Lexer.[ IDENT "x"; IDENT "y"; EOF ])

let test_lexer_operators () =
  Alcotest.(check bool) "two-char ops" true
    (toks "== != <= >= && || .."
    = Lexer.[ EQEQ; NEQ; LE; GE; ANDAND; OROR; DOTDOT; EOF ])

let test_lexer_keywords () =
  Alcotest.(check bool) "keywords vs idents" true
    (toks "for forx in inx"
    = Lexer.[ KW "for"; IDENT "forx"; KW "in"; IDENT "inx"; EOF ])

let test_lexer_error () =
  Alcotest.(check bool) "bad char raises" true
    (try
       ignore (Lexer.tokenize "x # y");
       false
     with Lexer.Error msg -> String.length msg > 0)

let test_lexer_positions () =
  match Lexer.tokenize "x\n  y" with
  | [ x; y; _eof ] ->
      Alcotest.(check (pair int int)) "x pos" (1, 1) (x.Lexer.line, x.Lexer.col);
      Alcotest.(check (pair int int)) "y pos" (2, 3) (y.Lexer.line, y.Lexer.col)
  | _ -> Alcotest.fail "unexpected token count"

(* ------------------------------------------------------------------ *)
(* Parser + Pp round-trips                                            *)

let roundtrip_src =
  {|
func helper(a: f64, n: int): f64 {
  var acc: f64 = a;
  for i in 0 .. n {
    if (i % 2 == 0) {
      acc = acc + itof(i);
    } else {
      acc = acc - 1.0 / (itof(i) + 2.0);
    }
  }
  return acc;
}

func main_fn(x: f64, out dx: f64, ys: f64[], flags: int[], n: int): void {
  var t: f64 = -x;
  var m: int = 0;
  while (m < n && t < 100.0) {
    t = t + fabs(ys[m]) * helper(x, m);
    m = m + 1;
  }
  for j in 0 .. n reversed {
    ys[j] = t * itof(flags[j]);
  }
  dx = t;
  return;
}
|}

let test_parse_pp_roundtrip () =
  let p1 = Parser.parse_program roundtrip_src in
  let printed = Pp.program_to_string p1 in
  let p2 = Parser.parse_program printed in
  Alcotest.(check bool) "pp/parse fixpoint" true (p1 = p2)

let test_parse_expr () =
  Alcotest.(check bool) "precedence" true
    (Parser.parse_expr "1 + 2 * 3"
    = Ast.(Binop (Add, Iconst 1, Binop (Mul, Iconst 2, Iconst 3))));
  Alcotest.(check bool) "comparison chains with bool ops" true
    (match Parser.parse_expr "a < b && c >= d || e == f" with
    | Ast.Binop (Ast.Or, Ast.Binop (Ast.And, _, _), Ast.Binop (Ast.Eq, _, _)) ->
        true
    | _ -> false);
  Alcotest.(check bool) "unary" true
    (Parser.parse_expr "-x * !y"
    = Ast.(Binop (Mul, Unop (Neg, Var "x"), Unop (Not, Var "y"))))

let test_parse_errors () =
  let bad = [ "func f(: f64): f64 { }"; "func f(): f64 { return 1.0 }";
              "func f(): f64 { var x: f99; }"; "func f(): f64 { x + ; }" ] in
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects " ^ src) true
        (try
           ignore (Parser.parse_program src);
           false
         with Parser.Error _ -> true))
    bad

let test_parse_else_if () =
  let src =
    {|
func f(x: int): int {
  if (x == 0) { return 1; } else if (x == 1) { return 2; } else { return 3; }
}
|}
  in
  let p = Parser.parse_program src in
  let p2 = Parser.parse_program (Pp.program_to_string p) in
  Alcotest.(check bool) "else-if roundtrip" true (p = p2)

let test_pp_expr_parens () =
  let e = Parser.parse_expr "(1 + 2) * 3" in
  Alcotest.(check string) "needed parens kept" "(1 + 2) * 3"
    (Pp.expr_to_string e);
  let e2 = Parser.parse_expr "1 + 2 * 3" in
  Alcotest.(check string) "no spurious parens" "1 + 2 * 3"
    (Pp.expr_to_string e2)

(* Random well-typed integer expressions: pp then parse is identity. *)
let gen_int_expr =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof [ map (fun i -> Ast.Iconst i) (int_range 0 50);
                   return (Ast.Var "iv") ]
         else
           frequency
             [
               (2, map (fun i -> Ast.Iconst i) (int_range 0 50));
               ( 3,
                 map3
                   (fun op a b -> Ast.Binop (op, a, b))
                   (oneofl Ast.[ Add; Sub; Mul ])
                   (self (n / 2)) (self (n / 2)) );
               (1, map (fun e -> Ast.Unop (Ast.Neg, e)) (self (n - 1)));
             ])

let qcheck_expr_roundtrip =
  QCheck.Test.make ~count:300 ~name:"expr pp/parse roundtrip"
    (QCheck.make gen_int_expr) (fun e ->
      Parser.parse_expr (Pp.expr_to_string e) = e)

(* ------------------------------------------------------------------ *)
(* Typecheck                                                          *)

let expect_type_error src =
  let prog = Parser.parse_program src in
  try
    Typecheck.check_program prog;
    false
  with Typecheck.Error _ -> true

let test_typecheck_accepts_benchmarks () =
  List.iter Typecheck.check_program
    [
      Cheffp_benchmarks.Arclength.program;
      Cheffp_benchmarks.Simpsons.program;
      Cheffp_benchmarks.Kmeans.program;
      Cheffp_benchmarks.Hpccg.program;
    ];
  Alcotest.(check pass) "benchmarks typecheck" () ()

let test_typecheck_rejections () =
  let cases =
    [
      ("undeclared var", "func f(): f64 { return x; }");
      ("kind mismatch", "func f(x: f64): f64 { return x + 1; }");
      ("assign kind", "func f(): f64 { var i: int; i = 1.5; return 0.0; }");
      ("bad arity", "func f(x: f64): f64 { return sin(x, x); }");
      ("assign to loop var",
       "func f(n: int): f64 { for i in 0 .. n { i = 0; } return 0.0; }");
      ("index by float", "func f(a: f64[], x: f64): f64 { return a[x]; }");
      ("scalar indexed", "func f(x: f64): f64 { return x[0]; }");
      ("array as scalar", "func f(a: f64[]): f64 { return a; }");
      ("float condition", "func f(x: f64): f64 { if (x) { } return x; }");
      ("void in expr",
       "func g(): void { return; } func f(): f64 { return g(); }");
      ("unknown call", "func f(): f64 { return nosuch(1.0); }");
      ("redeclaration",
       "func f(): f64 { var x: f64; var x: f64; return x; }");
      ("duplicate function",
       "func f(): f64 { return 1.0; } func f(): f64 { return 2.0; }");
      ("duplicate param", "func f(x: f64, x: f64): f64 { return x; }");
      ("shadow intrinsic", "func sin(x: f64): f64 { return x; }");
      ("return kind", "func f(): int { return 1.5; }");
      ("missing return value", "func f(): f64 { return; }");
      ("array size float", "func f(x: f64): f64 { var a: f64[x]; return x; }");
      ("mod on floats", "func f(x: f64): f64 { return x % x; }");
      ("out arg literal",
       "func g(out r: f64): void { r = 1.0; } func f(): f64 { g(1.0); return 0.0; }");
    ]
  in
  List.iter
    (fun (name, src) ->
      Alcotest.(check bool) name true (expect_type_error src))
    cases

let test_typecheck_shadowing_scopes () =
  let src =
    {|
func f(x: f64): f64 {
  var t: f64 = x;
  if (x > 0.0) {
    var t: int = 3;
    t = t + 1;
  }
  return t;
}
|}
  in
  Typecheck.check_program (Parser.parse_program src);
  Alcotest.(check pass) "inner shadow ok" () ()

(* ------------------------------------------------------------------ *)
(* Interpreter semantics                                              *)

let test_interp_arith () =
  check_float "arith" 14.
    (run_f "func f(): f64 { return 2.0 + 3.0 * 4.0; }" "f" []);
  check_float "div" 2.5 (run_f "func f(): f64 { return 5.0 / 2.0; }" "f" []);
  check_float "neg" (-7.) (run_f "func f(): f64 { return -(3.0 + 4.0); }" "f" [])

let test_interp_int_ops () =
  let geti src =
    let prog = Parser.parse_program src in
    match (Interp.run ~prog ~func:"f" []).Interp.ret with
    | Some (Builtins.I n) -> n
    | _ -> Alcotest.fail "expected int"
  in
  Alcotest.(check int) "int div truncates" 2 (geti "func f(): int { return 7 / 3; }");
  Alcotest.(check int) "mod" 1 (geti "func f(): int { return 7 % 3; }");
  Alcotest.(check int) "cmp true" 1 (geti "func f(): int { return 3 < 4; }");
  Alcotest.(check int) "and short" 0 (geti "func f(): int { return 0 && 1; }");
  Alcotest.(check int) "not" 1 (geti "func f(): int { return !0; }")

let test_interp_div_by_zero () =
  Alcotest.(check bool) "int div by zero raises" true
    (try
       ignore (run_f "func f(): f64 { var i: int = 1 / 0; return 0.0; }" "f" []);
       false
     with Interp.Runtime_error _ -> true);
  Alcotest.(check bool) "float div by zero gives inf" true
    (run_f "func f(): f64 { return 1.0 / 0.0; }" "f" [] = Float.infinity)

let test_interp_loops () =
  check_float "sum 0..9" 45.
    (run_f
       "func f(n: int): f64 { var s: f64 = 0.0; for i in 0 .. n { s = s + itof(i); } return s; }"
       "f" [ Interp.Aint 10 ]);
  check_float "reversed same sum" 45.
    (run_f
       "func f(n: int): f64 { var s: f64 = 0.0; for i in 0 .. n reversed { s = s + itof(i); } return s; }"
       "f" [ Interp.Aint 10 ]);
  check_float "reversed order matters" 123.
    (run_f
       {|func f(): f64 {
           var last: f64 = 0.0;
           for i in 0 .. 124 reversed { last = itof(i); }
           return last + 123.0;
         }|}
       "f" []) ;
  check_float "empty range" 0.
    (run_f
       "func f(): f64 { var s: f64 = 0.0; for i in 3 .. 3 { s = 1.0; } return s; }"
       "f" [])

let test_interp_while () =
  check_float "collatz steps for 27" 111.
    (run_f
       {|func f(n: int): f64 {
           var steps: int = 0;
           var v: int = n;
           while (v != 1) {
             if (v % 2 == 0) { v = v / 2; } else { v = 3 * v + 1; }
             steps = steps + 1;
           }
           return itof(steps);
         }|}
       "f" [ Interp.Aint 27 ])

let test_interp_arrays () =
  let a = [| 1.; 2.; 3. |] in
  check_float "array sum via param" 6.
    (run_f
       "func f(a: f64[], n: int): f64 { var s: f64 = 0.0; for i in 0 .. n { s = s + a[i]; } return s; }"
       "f" [ Interp.Afarr a; Interp.Aint 3 ]);
  (* local arrays + mutation of input arrays *)
  let b = [| 0.; 0. |] in
  ignore
    (run_f
       "func f(b: f64[]): f64 { b[0] = 10.0; b[1] = b[0] * 2.0; return b[1]; }"
       "f" [ Interp.Afarr b ]);
  check_float "input array mutated" 20. b.(1)

let test_interp_local_array () =
  check_float "local array" 30.
    (run_f
       {|func f(n: int): f64 {
           var a: f64[n];
           for i in 0 .. n { a[i] = itof(i) * 2.0; }
           var s: f64 = 0.0;
           for i in 0 .. n { s = s + a[i]; }
           return s;
         }|}
       "f" [ Interp.Aint 6 ])

let test_interp_oob () =
  Alcotest.(check bool) "out of bounds raises" true
    (try
       ignore
         (run_f "func f(a: f64[]): f64 { return a[5]; }" "f"
            [ Interp.Afarr [| 1. |] ]);
       false
     with Interp.Runtime_error _ -> true)

let test_interp_out_params () =
  let prog =
    Parser.parse_program
      {|func f(x: f64, out y: f64, out k: int): void {
          y = x * 2.0;
          k = 7;
        }|}
  in
  let r = Interp.run ~prog ~func:"f" [ Interp.Aflt 3.; Interp.Aflt 0.; Interp.Aint 0 ] in
  Alcotest.(check bool) "outs" true
    (List.assoc "y" r.Interp.outs = Builtins.F 6.
    && List.assoc "k" r.Interp.outs = Builtins.I 7)

let test_interp_user_calls () =
  check_float "helper call" 9.
    (run_f
       {|func sq(x: f64): f64 { return x * x; }
         func f(): f64 { return sq(3.0); }|}
       "f" []);
  check_float "recursion (fib 10)" 55.
    (run_f
       {|func fib(n: int): f64 {
           if (n < 2) { return itof(n); }
           return fib(n - 1) + fib(n - 2);
         }
         func f(): f64 { return fib(10); }|}
       "f" []);
  check_float "call with out param" 42.
    (run_f
       {|func set(out r: f64): void { r = 42.0; }
         func f(): f64 { var v: f64; set(v); return v; }|}
       "f" [])

let test_interp_fuel () =
  let src = "func f(): f64 { var x: f64 = 0.0; while (1 == 1) { x = x + 1.0; } return x; }" in
  let prog = Parser.parse_program src in
  Typecheck.check_program prog;
  Alcotest.(check bool) "fuel stops runaway loop" true
    (try
       ignore (Interp.run_float ~fuel:10_000 ~prog ~func:"f" []);
       false
     with Interp.Runtime_error m ->
       String.length m > 0);
  (* ample fuel leaves normal programs untouched *)
  check_float "fueled run ok" 45.
    (run_f
       "func f(n: int): f64 { var s: f64 = 0.0; for i in 0 .. n { s = s + itof(i); } return s; }"
       "f" [ Interp.Aint 10 ] |> fun v -> v)

let test_interp_push_pop () =
  check_float "push/pop restores" 1.
    (run_f
       {|func f(): f64 {
           var x: f64 = 1.0;
           push x;
           x = 99.0;
           pop x;
           return x;
         }|}
       "f" [])

let test_interp_intrinsics () =
  check_float "sin" (sin 0.5) (run_f "func f(): f64 { return sin(0.5); }" "f" []);
  check_float "pow" 8. (run_f "func f(): f64 { return pow(2.0, 3.0); }" "f" []);
  check_float "select true" 1.
    (run_f "func f(): f64 { return select(2 > 1, 1.0, 2.0); }" "f" []);
  check_float "select false" 2.
    (run_f "func f(): f64 { return select(1 > 2, 1.0, 2.0); }" "f" []);
  let prog = Parser.parse_program "func f(x: f64): int { return ftoi(x); }" in
  Alcotest.(check bool) "ftoi" true
    ((Interp.run ~prog ~func:"f" [ Interp.Aflt 3.9 ]).Interp.ret
    = Some (Builtins.I 3))

let test_interp_mixed_precision_rounding () =
  (* Storing into an f32 variable rounds. *)
  let src = "func f(x: f64): f64 { var y: f32; y = x; return y; }" in
  check_float "declared f32 rounds" (Fp.round Fp.F32 0.1)
    (run_f src "f" [ Interp.Aflt 0.1 ]);
  (* Demotion by config has the same effect on an f64 variable. *)
  let src64 = "func f(x: f64): f64 { var y: f64; y = x; return y; }" in
  let config = Config.demote Config.double "y" Fp.F32 in
  check_float "config demotion rounds" (Fp.round Fp.F32 0.1)
    (run_f ~config src64 "f" [ Interp.Aflt 0.1 ]);
  check_float "no demotion exact" 0.1 (run_f src64 "f" [ Interp.Aflt 0.1 ])

let test_interp_rounding_modes () =
  (* x+y both f32: Source rounds the op itself, Extended only stores. *)
  let src =
    {|func f(a: f64, b: f64): f64 {
        var x: f32 = a;
        var y: f32 = b;
        var z: f64;
        z = x + y;
        return z;
      }|}
  in
  let a = 0.1 and b = 0.2 in
  let source = run_f ~mode:Config.Source src "f" [ Interp.Aflt a; Interp.Aflt b ] in
  let extended =
    run_f ~mode:Config.Extended src "f" [ Interp.Aflt a; Interp.Aflt b ]
  in
  check_float "source rounds op"
    (Fp.round Fp.F32 (Fp.round Fp.F32 a +. Fp.round Fp.F32 b))
    source;
  check_float "extended keeps op wide"
    (Fp.round Fp.F32 a +. Fp.round Fp.F32 b)
    extended;
  Alcotest.(check bool) "modes differ here" true (source <> extended)

let test_interp_cost_counter () =
  let counter = Cost.Counter.create Cost.default in
  let src = "func f(x: f64): f64 { var y: f32 = x; return y * y + x; }" in
  ignore (run_f ~counter src "f" [ Interp.Aflt 0.1 ]);
  Alcotest.(check bool) "ops charged" true (Cost.Counter.ops counter > 0);
  (* y*y is f32 (cheap), (y*y)+x needs a widening cast *)
  Alcotest.(check bool) "casts charged" true (Cost.Counter.casts counter >= 2)

let test_interp_input_array_demotion () =
  let src = "func f(a: f64[]): f64 { return a[0]; }" in
  let prog = Parser.parse_program src in
  let arr = [| 0.1 |] in
  let config = Config.demote Config.double "a" Fp.F32 in
  let v = Interp.run_float ~config ~prog ~func:"f" [ Interp.Afarr arr ] in
  check_float "demoted input array rounds" (Fp.round Fp.F32 0.1) v;
  check_float "caller array untouched" 0.1 arr.(0)

(* ------------------------------------------------------------------ *)
(* Builtins registry                                                  *)

let test_builtins_registry () =
  let b = Builtins.create () in
  Alcotest.(check bool) "defaults present" true
    (Builtins.mem b "sin" && Builtins.mem b "select" && Builtins.mem b "itof");
  Alcotest.(check bool) "names sorted" true
    (let names = Builtins.names b in
     names = List.sort compare names);
  Alcotest.(check bool) "fast1 available for sin" true
    (Builtins.fast1 b "sin" <> None);
  Alcotest.(check bool) "fast2 available for pow" true
    (Builtins.fast2 b "pow" <> None);
  (* replacing via the generic register drops the fast path *)
  Builtins.register b "sin"
    { Builtins.args = [ Builtins.Kflt ]; ret = Builtins.Kflt;
      cls = Cost.Transcendental; approx = false }
    (fun a -> Builtins.F (Builtins.as_float a.(0)));
  Alcotest.(check bool) "fast path invalidated" true
    (Builtins.fast1 b "sin" = None);
  check_float "replacement used" 0.5
    (run_f ~builtins:b "func f(x: f64): f64 { return sin(x); }" "f"
       [ Interp.Aflt 0.5 ])

let test_builtins_value_accessors () =
  Alcotest.(check bool) "as_float raises on int" true
    (try ignore (Builtins.as_float (Builtins.I 3)); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "as_int raises on float" true
    (try ignore (Builtins.as_int (Builtins.F 3.)); false
     with Invalid_argument _ -> true)

let test_compile_errors () =
  let prog = Parser.parse_program "func f(x: f64): f64 { return x; }" in
  let c = Compile.compile ~prog ~func:"f" () in
  Alcotest.(check bool) "arity mismatch" true
    (try ignore (Compile.run c []); false
     with Compile.Compile_error _ -> true);
  Alcotest.(check bool) "kind mismatch" true
    (try ignore (Compile.run c [ Interp.Aint 3 ]); false
     with Compile.Compile_error _ -> true);
  Alcotest.(check bool) "unknown function" true
    (try ignore (Compile.compile ~prog ~func:"nope" ()); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Optimizer                                                          *)

let test_fold_identities () =
  let f s = Optimize.fold_expr (Parser.parse_expr s) in
  Alcotest.(check bool) "x*1" true (f "x * 1.0" = Ast.Var "x");
  Alcotest.(check bool) "0+x" true (f "0.0 + x" = Ast.Var "x");
  Alcotest.(check bool) "x-0" true (f "x - 0.0" = Ast.Var "x");
  Alcotest.(check bool) "x/1" true (f "x / 1.0" = Ast.Var "x");
  Alcotest.(check bool) "const fold" true (f "2.0 * 3.0 + 1.0" = Ast.Fconst 7.);
  Alcotest.(check bool) "int fold" true (f "(4 + 6) / 2" = Ast.Iconst 5);
  Alcotest.(check bool) "0*x fast-math" true (f "0.0 * x" = Ast.Fconst 0.);
  Alcotest.(check bool) "0*x kept when safe" true
    (Optimize.fold_expr ~fast_math:false (Parser.parse_expr "0.0 * x")
    <> Ast.Fconst 0.);
  Alcotest.(check bool) "double neg" true (f "-(-x)" = Ast.Var "x");
  Alcotest.(check bool) "cmp fold" true (f "3 < 4" = Ast.Iconst 1)

let optimized_equivalent src func args =
  let prog = Parser.parse_program src in
  Typecheck.check_program prog;
  let f = Ast.func_exn prog func in
  let f' = Optimize.optimize_func f in
  let prog' = { Ast.funcs = List.map (fun g -> if g.Ast.fname = func then f' else g) prog.Ast.funcs } in
  Typecheck.check_program prog';
  let v = Interp.run_float ~prog ~func args in
  let v' = Interp.run_float ~prog:prog' ~func args in
  (v, v')

let test_optimize_preserves_semantics () =
  let src =
    {|func f(x: f64, n: int): f64 {
        var a: f64 = x * 1.0 + 0.0;
        var dead: f64 = 123.0;
        var s: f64 = 0.0;
        for i in 0 .. n {
          if (1 == 1) { s = s + a * itof(i); } else { s = -1000.0; }
          dead = dead * 2.0;
        }
        return s / (1.0 * 1.0);
      }|}
  in
  let v, v' = optimized_equivalent src "f" [ Interp.Aflt 1.5; Interp.Aint 9 ] in
  check_float "same result" v v'

let test_optimize_removes_dead () =
  let src =
    {|func f(x: f64): f64 {
        var dead: f64 = 1.0;
        dead = dead + x;
        return x;
      }|}
  in
  let prog = Parser.parse_program src in
  let f' = Optimize.optimize_func (Ast.func_exn prog "f") in
  let has_dead =
    List.exists
      (function Ast.Decl { name = "dead"; _ } -> true | _ -> false)
      f'.Ast.body
  in
  Alcotest.(check bool) "dead removed" false has_dead

let test_optimize_keeps_out_params_and_pushpop () =
  let src =
    {|func f(x: f64, out r: f64): void {
        var t: f64 = x;
        push t;
        t = 0.0;
        pop t;
        r = t;
      }|}
  in
  let prog = Parser.parse_program src in
  let f' = Optimize.optimize_func (Ast.func_exn prog "f") in
  let prog' = { Ast.funcs = [ f' ] } in
  Typecheck.check_program prog';
  let r = Interp.run ~prog:prog' ~func:"f" [ Interp.Aflt 5.; Interp.Aflt 0. ] in
  Alcotest.(check bool) "push/pop survive DCE" true
    (List.assoc "r" r.Interp.outs = Builtins.F 5.)

let test_optimize_constant_branch () =
  let src =
    {|func f(x: f64): f64 {
        if (2 > 1) { return x; } else { return -1000.0; }
      }|}
  in
  (* Constant-condition pruning: else branch disappears. *)
  let prog = Parser.parse_program src in
  let f' = Optimize.optimize_func (Ast.func_exn prog "f") in
  Alcotest.(check bool) "branch pruned" true
    (List.for_all (function Ast.If _ -> false | _ -> true) f'.Ast.body)

let test_cse_hoists_duplicates () =
  let src =
    {|func f(x: f64): f64 {
        var y: f64;
        y = sin(x * 2.0) + sin(x * 2.0);
        return y;
      }|}
  in
  let prog = Parser.parse_program src in
  let f' = Cse.cse_func ~prog (Ast.func_exn prog "f") in
  (* one hoisted temp, and only one sin call remains duplicated away *)
  let rec count_sins_stmt acc = function
    | Ast.Decl { init = Some e; _ } | Ast.Assign (_, e) | Ast.Return (Some e) ->
        count_sins acc e
    | _ -> acc
  and count_sins acc = function
    | Ast.Call ("sin", args) -> List.fold_left count_sins (acc + 1) args
    | Ast.Call (_, args) -> List.fold_left count_sins acc args
    | Ast.Binop (_, a, b) -> count_sins (count_sins acc a) b
    | Ast.Unop (_, e) | Ast.Idx (_, e) -> count_sins acc e
    | Ast.Fconst _ | Ast.Iconst _ | Ast.Var _ -> acc
  in
  Alcotest.(check int) "one sin left" 1
    (List.fold_left count_sins_stmt 0 f'.Ast.body);
  (* semantics unchanged *)
  let prog' = { Ast.funcs = [ f' ] } in
  Typecheck.check_program prog';
  check_float "same value"
    (Interp.run_float ~prog ~func:"f" [ Interp.Aflt 0.37 ])
    (Interp.run_float ~prog:prog' ~func:"f" [ Interp.Aflt 0.37 ])

let test_cse_cross_statement_reuse () =
  let src =
    {|func f(x: f64): f64 {
        var a: f64;
        var b: f64;
        a = exp(x + 1.0);
        b = exp(x + 1.0) * 2.0;
        return a + b;
      }|}
  in
  let prog = Parser.parse_program src in
  let f' = Cse.cse_func ~prog (Ast.func_exn prog "f") in
  let reused =
    List.exists
      (function
        | Ast.Assign (Ast.Lvar "b", Ast.Binop (Ast.Mul, Ast.Var "a", _)) -> true
        | _ -> false)
      f'.Ast.body
  in
  Alcotest.(check bool) "b reuses a" true reused

let test_cse_invalidation_on_write () =
  let src =
    {|func f(x: f64): f64 {
        var a: f64;
        var b: f64;
        a = exp(x + 1.0);
        x = 0.0;
        b = exp(x + 1.0);
        return a + b;
      }|}
  in
  let prog = Parser.parse_program src in
  let f' = Cse.cse_func ~prog (Ast.func_exn prog "f") in
  let prog' = { Ast.funcs = [ f' ] } in
  check_float "write kills availability"
    (Interp.run_float ~prog ~func:"f" [ Interp.Aflt 0.4 ])
    (Interp.run_float ~prog:prog' ~func:"f" [ Interp.Aflt 0.4 ])

let test_cse_branch_isolation () =
  (* Availability must not flow between the two arms of an [if]: a
     temporary hoisted inside one branch is block-scoped there, and a
     value recorded in one branch never holds when the other executes. *)
  let src =
    {|func f(x: f64, c: int): f64 {
        var r: f64 = 0.0;
        var s: f64 = 0.0;
        if (c > 0) {
          r = sin(x * 2.0) + sin(x * 2.0);
          s = exp(x + 1.0);
        } else {
          r = sin(x * 2.0) * sin(x * 2.0);
          s = exp(x + 1.0) * 2.0;
        }
        return r + s;
      }|}
  in
  let prog = Parser.parse_program src in
  let f' = Cse.cse_func ~prog (Ast.func_exn prog "f") in
  let prog' = { Ast.funcs = [ f' ] } in
  Typecheck.check_program prog';
  List.iter
    (fun c ->
      check_float "same value"
        (Interp.run_float ~prog ~func:"f" [ Interp.Aflt 0.37; Interp.Aint c ])
        (Interp.run_float ~prog:prog' ~func:"f"
           [ Interp.Aflt 0.37; Interp.Aint c ]))
    [ 0; 1 ]

let test_optimizer_respects_demotion () =
  (* Copy propagation through a demoted variable would skip its store
     rounding; the compiled engine must still match the interpreter. *)
  let src =
    {|func f(x: f64): f64 {
        var t: f64;
        var z: f64;
        t = x;
        z = t + 1.0;
        return z;
      }|}
  in
  let prog = Parser.parse_program src in
  let config = Config.demote Config.double "t" Fp.F32 in
  let v_interp =
    Interp.run_float ~config ~prog ~func:"f" [ Interp.Aflt 0.1 ]
  in
  let c = Compile.compile ~config ~prog ~func:"f" () in
  let v_comp = Compile.run_float c [ Interp.Aflt 0.1 ] in
  Alcotest.(check (float 0.)) "optimized mixed = interp" v_interp v_comp;
  (* and the rounding really happened *)
  Alcotest.(check (float 0.)) "t was rounded"
    (Fp.round Fp.F32 0.1 +. 1.0)
    v_comp

let test_declared_narrow_opaque () =
  (* An f32-declared variable must not be copy-propagated away even
     without a configuration. *)
  let src =
    {|func f(x: f64): f64 {
        var t: f32;
        t = x;
        return t + 1.0;
      }|}
  in
  let prog = Parser.parse_program src in
  let f' = Optimize.optimize_func (Ast.func_exn prog "f") in
  let prog' = { Ast.funcs = [ f' ] } in
  check_float "narrow decl survives optimization"
    (Fp.round Fp.F32 0.1 +. 1.0)
    (Interp.run_float ~prog:prog' ~func:"f" [ Interp.Aflt 0.1 ])

(* ------------------------------------------------------------------ *)
(* Compile = Interp                                                   *)

let compile_vs_interp ?config src func args =
  let prog = Parser.parse_program src in
  Typecheck.check_program prog;
  let c = Compile.compile ?config ~prog ~func () in
  let v = Compile.run_float c args in
  let v' = Interp.run_float ?config ~prog ~func args in
  (v, v')

let test_compile_matches_interp () =
  let src =
    {|func helper(a: f64): f64 { return a * a - 1.0; }
      func f(x: f64, n: int): f64 {
        var s: f64 = 0.0;
        var arr: f64[n];
        for i in 0 .. n { arr[i] = helper(x + itof(i)); }
        var k: int = 0;
        while (k < n) {
          if (arr[k] > 0.0) { s = s + sqrt(arr[k]); }
          k = k + 1;
        }
        return s;
      }|}
  in
  let v, v' = compile_vs_interp src "f" [ Interp.Aflt 0.5; Interp.Aint 20 ] in
  check_float "compiled = interpreted" v v'

let test_compile_matches_interp_mixed () =
  let src =
    {|func f(x: f64, n: int): f64 {
        var acc: f64 = 0.0;
        var t: f64;
        for i in 1 .. n {
          t = x / itof(i);
          acc = acc + t * t;
        }
        return acc;
      }|}
  in
  let config = Config.demote_all Config.double [ "t"; "acc" ] Fp.F32 in
  let v, v' = compile_vs_interp ~config src "f" [ Interp.Aflt 1.7; Interp.Aint 50 ] in
  check_float "mixed compiled = interpreted" v v'

let test_compile_benchmarks_match () =
  let module B = Cheffp_benchmarks in
  let pairs =
    [
      ("arclength", B.Arclength.program, "arclength", B.Arclength.args ~n:500);
      ( "simpsons", B.Simpsons.program, "simpsons",
        B.Simpsons.args ~a:0. ~b:Float.pi ~n:300 );
      ( "kmeans", B.Kmeans.program, "kmeans_dist",
        B.Kmeans.args (B.Kmeans.generate ~npoints:200 ()) );
    ]
  in
  List.iter
    (fun (name, prog, func, args) ->
      let c = Compile.compile ~prog ~func () in
      let v = Compile.run_float c args in
      let v' = Interp.run_float ~prog ~func args in
      Alcotest.(check (float 0.)) name v' v)
    pairs

let test_compile_counter_matches_interp_counter () =
  let src = "func f(x: f64): f64 { var y: f32 = x; return y * y + sin(x); }" in
  let prog = Parser.parse_program src in
  let count run =
    let counter = Cost.Counter.create Cost.default in
    run counter;
    (Cost.Counter.total counter, Cost.Counter.casts counter)
  in
  let ti, ci =
    count (fun counter ->
        ignore (Interp.run_float ~counter ~prog ~func:"f" [ Interp.Aflt 0.3 ]))
  in
  let tc, cc =
    count (fun counter ->
        let c = Compile.compile ~counter ~optimize:false ~prog ~func:"f" () in
        ignore (Compile.run_float c [ Interp.Aflt 0.3 ]))
  in
  Alcotest.(check (float 1e-9)) "same modelled cost" ti tc;
  Alcotest.(check int) "same casts" ci cc

(* ------------------------------------------------------------------ *)
(* Compile cache                                                      *)

let cache_src =
  {|func f(x: f64, n: int): f64 {
      var acc: f64 = 0.0;
      var t: f64;
      for i in 1 .. n {
        t = x / itof(i);
        acc = acc + sqrt(t * t + 1.0);
      }
      return acc;
    }|}

let test_cache_hit_on_repeat () =
  let prog = Parser.parse_program cache_src in
  let config = Config.demote Config.double "t" Fp.F32 in
  Compile_cache.clear ();
  let c1 = Compile_cache.compile ~config ~prog ~func:"f" () in
  let c2 = Compile_cache.compile ~config ~prog ~func:"f" () in
  Alcotest.(check bool) "same compiled instance" true (c1 == c2);
  let s = Compile_cache.stats () in
  Alcotest.(check int) "one hit" 1 s.Compile_cache.hits;
  Alcotest.(check int) "one miss" 1 s.Compile_cache.misses;
  Alcotest.(check int) "one entry" 1 s.Compile_cache.size

let test_cache_miss_on_changed_key () =
  let prog = Parser.parse_program cache_src in
  let config = Config.demote Config.double "t" Fp.F32 in
  Compile_cache.clear ();
  let c1 = Compile_cache.compile ~config ~prog ~func:"f" () in
  (* Different configuration, rounding mode, optimize level or metering
     must each compile afresh. *)
  let c2 =
    Compile_cache.compile
      ~config:(Config.demote config "acc" Fp.F32)
      ~prog ~func:"f" ()
  in
  let c3 =
    Compile_cache.compile ~config ~mode:Config.Extended ~prog ~func:"f" ()
  in
  let c4 = Compile_cache.compile ~config ~optimize:false ~prog ~func:"f" () in
  let c5 = Compile_cache.compile ~config ~meter:true ~prog ~func:"f" () in
  Alcotest.(check bool) "all distinct" true
    (c1 != c2 && c1 != c3 && c1 != c4 && c1 != c5);
  let s = Compile_cache.stats () in
  Alcotest.(check int) "no hits" 0 s.Compile_cache.hits;
  Alcotest.(check int) "five entries" 5 s.Compile_cache.size;
  (* ... and a different registry is a miss even for an equal key. *)
  let b = Builtins.create () in
  let c6 = Compile_cache.compile ~builtins:b ~config ~prog ~func:"f" () in
  Alcotest.(check bool) "registry identity respected" true (c1 != c6)

let test_cache_results_match_uncached () =
  let prog = Parser.parse_program cache_src in
  let config = Config.demote_all Config.double [ "t"; "acc" ] Fp.F32 in
  let args = [ Interp.Aflt 1.7; Interp.Aint 50 ] in
  Compile_cache.clear ();
  let direct = Compile.run_float (Compile.compile ~config ~prog ~func:"f" ()) args in
  let cold =
    Compile.run_float (Compile_cache.compile ~config ~prog ~func:"f" ()) args
  in
  let warm =
    Compile.run_float (Compile_cache.compile ~config ~prog ~func:"f" ()) args
  in
  Alcotest.(check (float 0.)) "cold = direct" direct cold;
  Alcotest.(check (float 0.)) "warm = direct" direct warm;
  Alcotest.(check bool) "warm run was a hit" true
    ((Compile_cache.stats ()).Compile_cache.hits >= 1)

let test_cache_metered_counter_threading () =
  (* One cached metered instance must serve independent counters. *)
  let prog = Parser.parse_program cache_src in
  Compile_cache.clear ();
  let c1 = Compile_cache.compile ~meter:true ~prog ~func:"f" () in
  let c2 = Compile_cache.compile ~meter:true ~prog ~func:"f" () in
  Alcotest.(check bool) "shared instance" true (c1 == c2);
  let count c args =
    let counter = Cost.Counter.create Cost.default in
    ignore (Compile.run_float ~counter c args);
    Cost.Counter.total counter
  in
  let t10 = count c1 [ Interp.Aflt 1.7; Interp.Aint 10 ] in
  let t20 = count c2 [ Interp.Aflt 1.7; Interp.Aint 20 ] in
  let t10' = count c1 [ Interp.Aflt 1.7; Interp.Aint 10 ] in
  Alcotest.(check bool) "costs metered per run" true (t10 > 0. && t20 > t10);
  Alcotest.(check (float 1e-9)) "no leakage between runs" t10 t10'

(* ------------------------------------------------------------------ *)
(* Normalize / Inline                                                 *)

let test_normalize_hoists () =
  let prog = Parser.parse_program roundtrip_src in
  let nf = Normalize.normalize_func prog (Ast.func_exn prog "main_fn") in
  (* after the decl prefix there must be no Decl statements *)
  let rec after_prefix = function
    | Ast.Decl _ :: rest -> after_prefix rest
    | rest -> rest
  in
  let rec no_decls stmts =
    List.for_all
      (function
        | Ast.Decl _ -> false
        | Ast.If (_, a, b) -> no_decls a && no_decls b
        | Ast.For { body; _ } | Ast.While (_, body) -> no_decls body
        | _ -> true)
      stmts
  in
  Alcotest.(check bool) "no interior decls" true
    (no_decls (after_prefix nf.Ast.body))

let test_normalize_preserves_semantics () =
  let prog = Parser.parse_program roundtrip_src in
  let nf = Normalize.normalize_func prog (Ast.func_exn prog "helper") in
  let prog' = Ast.add_func prog { nf with Ast.fname = "helper_norm" } in
  Typecheck.check_program prog';
  let v = Interp.run_float ~prog ~func:"helper" [ Interp.Aflt 2.5; Interp.Aint 7 ] in
  let v' =
    Interp.run_float ~prog:prog' ~func:"helper_norm"
      [ Interp.Aflt 2.5; Interp.Aint 7 ]
  in
  check_float "normalized equals original" v v'

let test_normalize_array_size_restriction () =
  let src =
    {|func f(n: int): f64 {
        var m: int = n * 2;
        var a: f64[m];
        return a[0];
      }|}
  in
  let prog = Parser.parse_program src in
  Alcotest.(check bool) "local-dependent size rejected" true
    (try
       ignore (Normalize.normalize_func prog (Ast.func_exn prog "f"));
       false
     with Normalize.Error _ -> true)

let test_inline_semantics () =
  let src =
    {|func add3(a: f64): f64 { return a + 3.0; }
      func twice(a: f64): f64 { return add3(a) * 2.0; }
      func f(x: f64): f64 {
        var s: f64 = 0.0;
        for i in 0 .. 4 { s = s + twice(x + itof(i)); }
        return s;
      }|}
  in
  let prog = Parser.parse_program src in
  let inlined = Inline.inline_func prog (Ast.func_exn prog "f") in
  Alcotest.(check bool) "no user calls left" false
    (Inline.has_user_calls prog inlined);
  let prog' = Ast.add_func prog { inlined with Ast.fname = "f_inl" } in
  Typecheck.check_program prog';
  let v = Interp.run_float ~prog ~func:"f" [ Interp.Aflt 1.25 ] in
  let v' = Interp.run_float ~prog:prog' ~func:"f_inl" [ Interp.Aflt 1.25 ] in
  check_float "inlined equals original" v v'

(* Regression: a callee whose tail return references a *local*,
   inlined at two call sites of the same caller. The second expansion
   renames the local (w -> w_1), and the tail expression must follow
   the rename — it used to resolve to the first expansion's variable,
   silently returning call #1's result for call #2. *)
let test_inline_twice_local_tail () =
  let src =
    {|func sq(a: f64): f64 { var w: f64 = a * a; return w; }
      func f(x: f64, y: f64): f64 { return sq(x) - sq(y); }|}
  in
  let prog = Parser.parse_program src in
  let inlined = Inline.inline_func prog (Ast.func_exn prog "f") in
  let prog' = Ast.add_func prog { inlined with Ast.fname = "f_inl" } in
  Typecheck.check_program prog';
  let args = [ Interp.Aflt 3.0; Interp.Aflt 2.0 ] in
  let v = Interp.run_float ~prog ~func:"f" args in
  let v' = Interp.run_float ~prog:prog' ~func:"f_inl" args in
  check_float "second call site follows the rename" v v';
  check_float "value" 5.0 v'

let test_inline_out_params () =
  let src =
    {|func setter(a: f64, out r: f64): void { r = a * 10.0; }
      func f(x: f64): f64 {
        var v: f64;
        setter(x, v);
        return v;
      }|}
  in
  let prog = Parser.parse_program src in
  let inlined = Inline.inline_func prog (Ast.func_exn prog "f") in
  let prog' = Ast.add_func prog { inlined with Ast.fname = "f_inl" } in
  Typecheck.check_program prog';
  check_float "out param wired" 15.
    (Interp.run_float ~prog:prog' ~func:"f_inl" [ Interp.Aflt 1.5 ])

let test_inline_recursion_rejected () =
  let src =
    {|func r(n: int): f64 { if (n < 1) { return 0.0; } return r(n - 1); }
      func f(): f64 { return r(3); }|}
  in
  let prog = Parser.parse_program src in
  Alcotest.(check bool) "recursion refused" true
    (try
       ignore (Inline.inline_func prog (Ast.func_exn prog "f"));
       false
     with Inline.Error _ -> true)

let test_inline_nontail_return_rejected () =
  let src =
    {|func g(x: f64): f64 { if (x > 0.0) { return x; } return -x; }
      func f(x: f64): f64 { return g(x); }|}
  in
  let prog = Parser.parse_program src in
  Alcotest.(check bool) "non-tail return refused" true
    (try
       ignore (Inline.inline_func prog (Ast.func_exn prog "f"));
       false
     with Inline.Error _ -> true)

let test_inline_while_condition_rejected () =
  let src =
    {|func g(x: f64): f64 { return x - 1.0; }
      func f(x: f64): f64 {
        var v: f64 = x;
        while (g(v) > 0.0) { v = v - 1.0; }
        return v;
      }|}
  in
  let prog = Parser.parse_program src in
  Alcotest.(check bool) "call in while cond refused" true
    (try
       ignore (Inline.inline_func prog (Ast.func_exn prog "f"));
       false
     with Inline.Error _ -> true)

let () =
  Alcotest.run "ir"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "dotdot vs float" `Quick test_lexer_dotdot_vs_float;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "keywords" `Quick test_lexer_keywords;
          Alcotest.test_case "errors" `Quick test_lexer_error;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_pp_roundtrip;
          Alcotest.test_case "expressions" `Quick test_parse_expr;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "else-if" `Quick test_parse_else_if;
          Alcotest.test_case "parens" `Quick test_pp_expr_parens;
          QCheck_alcotest.to_alcotest qcheck_expr_roundtrip;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "accepts benchmarks" `Quick
            test_typecheck_accepts_benchmarks;
          Alcotest.test_case "rejections" `Quick test_typecheck_rejections;
          Alcotest.test_case "shadowing" `Quick test_typecheck_shadowing_scopes;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arith;
          Alcotest.test_case "int ops" `Quick test_interp_int_ops;
          Alcotest.test_case "division by zero" `Quick test_interp_div_by_zero;
          Alcotest.test_case "loops" `Quick test_interp_loops;
          Alcotest.test_case "while" `Quick test_interp_while;
          Alcotest.test_case "arrays" `Quick test_interp_arrays;
          Alcotest.test_case "local arrays" `Quick test_interp_local_array;
          Alcotest.test_case "bounds" `Quick test_interp_oob;
          Alcotest.test_case "out params" `Quick test_interp_out_params;
          Alcotest.test_case "user calls" `Quick test_interp_user_calls;
          Alcotest.test_case "push/pop" `Quick test_interp_push_pop;
          Alcotest.test_case "fuel" `Quick test_interp_fuel;
          Alcotest.test_case "intrinsics" `Quick test_interp_intrinsics;
          Alcotest.test_case "mixed precision" `Quick
            test_interp_mixed_precision_rounding;
          Alcotest.test_case "rounding modes" `Quick test_interp_rounding_modes;
          Alcotest.test_case "cost counter" `Quick test_interp_cost_counter;
          Alcotest.test_case "input array demotion" `Quick
            test_interp_input_array_demotion;
        ] );
      ( "builtins",
        [
          Alcotest.test_case "registry" `Quick test_builtins_registry;
          Alcotest.test_case "value accessors" `Quick
            test_builtins_value_accessors;
          Alcotest.test_case "compile errors" `Quick test_compile_errors;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "identities" `Quick test_fold_identities;
          Alcotest.test_case "semantics preserved" `Quick
            test_optimize_preserves_semantics;
          Alcotest.test_case "dead code removed" `Quick test_optimize_removes_dead;
          Alcotest.test_case "out params & push/pop kept" `Quick
            test_optimize_keeps_out_params_and_pushpop;
          Alcotest.test_case "constant branches" `Quick
            test_optimize_constant_branch;
          Alcotest.test_case "cse hoists duplicates" `Quick
            test_cse_hoists_duplicates;
          Alcotest.test_case "cse cross-statement" `Quick
            test_cse_cross_statement_reuse;
          Alcotest.test_case "cse invalidation" `Quick
            test_cse_invalidation_on_write;
          Alcotest.test_case "cse branch isolation" `Quick
            test_cse_branch_isolation;
          Alcotest.test_case "demotion opaque (config)" `Quick
            test_optimizer_respects_demotion;
          Alcotest.test_case "demotion opaque (declared)" `Quick
            test_declared_narrow_opaque;
        ] );
      ( "compile",
        [
          Alcotest.test_case "matches interp" `Quick test_compile_matches_interp;
          Alcotest.test_case "matches interp (mixed)" `Quick
            test_compile_matches_interp_mixed;
          Alcotest.test_case "benchmarks agree" `Quick
            test_compile_benchmarks_match;
          Alcotest.test_case "cost counters agree" `Quick
            test_compile_counter_matches_interp_counter;
        ] );
      ( "compile-cache",
        [
          Alcotest.test_case "hit on repeat" `Quick test_cache_hit_on_repeat;
          Alcotest.test_case "miss on changed key" `Quick
            test_cache_miss_on_changed_key;
          Alcotest.test_case "results match uncached" `Quick
            test_cache_results_match_uncached;
          Alcotest.test_case "counters threaded per run" `Quick
            test_cache_metered_counter_threading;
        ] );
      ( "normalize+inline",
        [
          Alcotest.test_case "hoists decls" `Quick test_normalize_hoists;
          Alcotest.test_case "preserves semantics" `Quick
            test_normalize_preserves_semantics;
          Alcotest.test_case "size restriction" `Quick
            test_normalize_array_size_restriction;
          Alcotest.test_case "inline semantics" `Quick test_inline_semantics;
          Alcotest.test_case "inline twice, local tail return" `Quick
            test_inline_twice_local_tail;
          Alcotest.test_case "inline out params" `Quick test_inline_out_params;
          Alcotest.test_case "recursion rejected" `Quick
            test_inline_recursion_rejected;
          Alcotest.test_case "non-tail return rejected" `Quick
            test_inline_nontail_return_rejected;
          Alcotest.test_case "while-cond call rejected" `Quick
            test_inline_while_condition_rejected;
        ] );
    ]
