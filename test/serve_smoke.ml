(* @serve-smoke driver: end-to-end gate for the `cheffp serve` daemon.

     serve_smoke CHEFFP_EXE

   Starts the daemon as a subprocess on a Unix socket, then from
   several concurrent client connections:

   - fires >= 16 mixed requests (ping / analyze / tune / search /
     validate, pipelined per connection) and checks every response
     against the protocol schema (echoed id, ok flag, result object,
     report text, queue-wait and service times, cache summary);
   - asserts bit-identity: every server [report] must equal, byte for
     byte, the stdout of the corresponding one-shot CLI invocation;
   - repeats an identical search on a fresh connection and requires
     warm cross-request compile-cache hits;
   - runs two concurrent traced requests, collects their span trees
     from the responses and writes serve_smoke_trace.jsonl for
     `validate_trace --forest 2` (two disjoint server.request trees);
   - checks malformed requests get error responses, that the metrics
     dump carries the server/pool/tenant counters, and that a shutdown
     request drains the daemon to a clean exit 0. *)

module Client = Cheffp_server.Client
module Json = Cheffp_server.Json

let fail fmt =
  Printf.ksprintf (fun s -> prerr_endline ("serve_smoke: " ^ s); exit 1) fmt

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* ------------------------------------------------------------------ *)
(* One-shot CLI runs (the bit-identity reference).                    *)

let run_capture exe args =
  let r, w = Unix.pipe () in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: args))
      Unix.stdin w Unix.stderr
  in
  Unix.close w;
  let ic = Unix.in_channel_of_descr r in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  close_in ic;
  let _, status = Unix.waitpid [] pid in
  (match status with
  | Unix.WEXITED 0 -> ()
  | _ -> fail "CLI run failed: %s %s" exe (String.concat " " args));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Response schema checks.                                            *)

let to_int who k j =
  match Json.to_int_opt (Json.member k j) with
  | Some v -> v
  | None -> fail "%s: field %S missing or not an int" who k

let to_num who k j =
  match Json.to_float_opt (Json.member k j) with
  | Some v -> v
  | None -> fail "%s: field %S missing or not a number" who k

let to_str who k j =
  match Json.to_string_opt (Json.member k j) with
  | Some v -> v
  | None -> fail "%s: field %S missing or not a string" who k

(* Full schema check; returns (id, cache hits, cache misses, report). *)
let check_ok who j =
  let id = to_int who "id" j in
  (match Json.to_bool_opt (Json.member "ok" j) with
  | Some true -> ()
  | _ -> fail "%s: request %d failed: %s" who id (to_str who "error" j));
  ignore (to_str who "cmd" j);
  (match Json.member "result" j with
  | Json.Obj _ -> ()
  | _ -> fail "%s: request %d: \"result\" not an object" who id);
  let report = to_str who "report" j in
  let qw = to_num who "queue_wait_ms" j and el = to_num who "elapsed_ms" j in
  if qw < 0. || el < 0. then fail "%s: request %d: negative timing" who id;
  let cache = Json.member "cache" j in
  let hits = to_int who "hits" cache and misses = to_int who "misses" cache in
  if hits < 0 || misses < 0 then
    fail "%s: request %d: negative cache counters" who id;
  (id, hits, misses, report)

let check_err who j =
  let id = to_int who "id" j in
  (match Json.to_bool_opt (Json.member "ok" j) with
  | Some false -> ()
  | _ -> fail "%s: request %d: expected an error response" who id);
  (id, to_str who "error" j)

(* ------------------------------------------------------------------ *)

let () =
  if Array.length Sys.argv < 2 then fail "usage: serve_smoke CHEFFP_EXE";
  let cheffp = Sys.argv.(1) in
  let sock = "serve_smoke.sock" in
  (try Sys.remove sock with Sys_error _ -> ());

  (* Reference reports from one-shot CLI invocations (before the
     daemon starts, so its load does not perturb them — outcomes are
     deterministic either way). *)
  let obs_smoke = read_file "obs_smoke.mfp" in
  let arclength = read_file "../examples/programs/arclength.mfp" in
  let fpbench = read_file "../examples/programs/fpbench.mfp" in
  let cli_analyze =
    run_capture cheffp
      [ "analyze"; "../examples/programs/arclength.mfp"; "--func"; "arclength";
        "--"; "100" ]
  in
  let cli_tune =
    run_capture cheffp
      [ "tune"; "obs_smoke.mfp"; "--func"; "looped"; "--threshold"; "1e-6";
        "-j"; "2"; "--"; "1.3"; "50" ]
  in
  let cli_search =
    run_capture cheffp
      [ "search"; "obs_smoke.mfp"; "--func"; "looped"; "--threshold"; "1e-6";
        "-j"; "2"; "--"; "1.3"; "50" ]
  in
  let cli_validate =
    run_capture cheffp
      [ "validate"; "../examples/programs/fpbench.mfp"; "--func"; "doppler";
        "--demote"; "t1:f32"; "--demote"; "r:f32"; "--"; "-30.0"; "10000.0";
        "25.0" ]
  in

  (* Daemon subprocess. *)
  let pid =
    Unix.create_process cheffp
      [| cheffp; "serve"; "--socket"; sock; "--workers"; "2" |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let reaped = ref false in
  at_exit (fun () ->
      if not !reaped then (try Unix.kill pid Sys.sigkill with _ -> ()));
  (* Watchdog: a wedged daemon must fail the rule, not hang it. *)
  ignore
    (Thread.create
       (fun () ->
         Thread.delay 300.;
         if not !reaped then begin
           prerr_endline "serve_smoke: timeout — killing daemon";
           (try Unix.kill pid Sys.sigkill with _ -> ());
           exit 1
         end)
       ());
  let connect () = Client.retry_connect (fun () -> Client.connect_unix sock) in

  (* -------------------------------------------------------------- *)
  (* Phase 1: >= 16 mixed concurrent requests across 4 connections, *)
  (* pipelined (send all, then collect), responses matched by id.   *)

  let mk_requests conn_i =
    let tenant = Json.Str (Printf.sprintf "conn%d" conn_i) in
    let base = conn_i * 10 in
    [
      (base, Client.request ~id:base ~cmd:"ping" [], "pong\n");
      ( base + 1,
        Client.request ~id:(base + 1) ~cmd:"analyze"
          [ ("program", Json.Str arclength); ("func", Json.Str "arclength");
            ("args", Json.List [ Json.Str "100" ]); ("tenant", tenant);
            ("priority", Json.Num 1.) ],
        cli_analyze );
      ( base + 2,
        Client.request ~id:(base + 2) ~cmd:"tune"
          [ ("program", Json.Str obs_smoke); ("func", Json.Str "looped");
            ("args", Json.List [ Json.Str "1.3"; Json.Str "50" ]);
            ("threshold", Json.Num 1e-6); ("jobs", Json.Num 2.);
            ("tenant", tenant); ("deadline_ms", Json.Num 60000.) ],
        cli_tune );
      ( base + 3,
        Client.request ~id:(base + 3) ~cmd:"search"
          [ ("program", Json.Str obs_smoke); ("func", Json.Str "looped");
            ("args", Json.List [ Json.Str "1.3"; Json.Str "50" ]);
            ("threshold", Json.Num 1e-6); ("jobs", Json.Num 2.);
            ("tenant", tenant) ],
        cli_search );
      ( base + 4,
        Client.request ~id:(base + 4) ~cmd:"validate"
          [ ("program", Json.Str fpbench); ("func", Json.Str "doppler");
            ("demote", Json.List [ Json.Str "t1:f32"; Json.Str "r:f32" ]);
            ("args",
             Json.List [ Json.Str "-30.0"; Json.Str "10000.0"; Json.Str "25.0" ]);
            ("tenant", tenant) ],
        cli_validate );
    ]
  in
  let n_conns = 4 in
  let results = Array.make n_conns [] in
  let threads =
    List.init n_conns (fun i ->
        Thread.create
          (fun () ->
            let who = Printf.sprintf "conn%d" i in
            let c = connect () in
            let reqs = mk_requests i in
            List.iter (fun (_, req, _) -> Client.send c req) reqs;
            let got =
              List.map (fun _ -> check_ok who (Client.recv c)) reqs
            in
            Client.close c;
            results.(i) <- List.map2 (fun (id, _, want) (rid, _, _, report) ->
                (id, want, rid, report)) reqs got)
          ())
  in
  List.iter Thread.join threads;
  let total = ref 0 in
  Array.iteri
    (fun i rows ->
      if rows = [] then fail "conn%d produced no results" i;
      let expected_ids = List.map (fun (id, _, _, _) -> id) rows in
      let got_ids =
        List.sort compare (List.map (fun (_, _, rid, _) -> rid) rows)
      in
      if expected_ids <> got_ids then
        fail "conn%d: response ids do not match requests" i;
      (* Bit-identity: match each response to its request by id. *)
      let by_id = Hashtbl.create 8 in
      List.iter (fun (id, want, _, _) -> Hashtbl.replace by_id id want) rows;
      List.iter
        (fun (_, _, rid, report) ->
          incr total;
          let want = Hashtbl.find by_id rid in
          if report <> want then
            fail "conn%d request %d: report differs from one-shot CLI run\n\
                  --- server ---\n%s--- cli ---\n%s" i rid report want)
        rows)
    results;
  if !total < 16 then fail "only %d concurrent requests ran" !total;
  Printf.printf
    "serve_smoke: %d concurrent requests OK, all reports bit-identical to \
     one-shot CLI runs\n%!"
    !total;

  (* -------------------------------------------------------------- *)
  (* Phase 2: warm cross-request cache — an identical search on a   *)
  (* brand new connection must hit compilations cached by phase 1.  *)

  let c = connect () in
  let warm =
    Client.rpc c
      (Client.request ~id:500 ~cmd:"search"
         [ ("program", Json.Str obs_smoke); ("func", Json.Str "looped");
           ("args", Json.List [ Json.Str "1.3"; Json.Str "50" ]);
           ("threshold", Json.Num 1e-6); ("jobs", Json.Num 2.);
           ("tenant", Json.Str "warm") ])
  in
  let _, hits, misses, report = check_ok "warm" warm in
  if hits = 0 then fail "warm search: no cross-request cache hits";
  if report <> cli_search then fail "warm search: report differs from CLI";
  Printf.printf
    "serve_smoke: warm cross-request search: %d cache hits, %d misses\n%!"
    hits misses;

  (* Rigorous range bound over an explicit box (DESIGN.md §17): the
     response must certify a finite worst-config bound and carry the
     witness sub-box. *)
  let rresp =
    Client.rpc c
      (Client.request ~id:503 ~cmd:"range"
         [ ("program", Json.Str obs_smoke); ("func", Json.Str "looped");
           ("args", Json.List [ Json.Str "1.3"; Json.Str "50" ]);
           ("box", Json.Str "x=1,2") ])
  in
  let _, _, _, rreport = check_ok "range" rresp in
  let rres = Json.member "result" rresp in
  (match Json.to_string_opt (Json.member "verdict" rres) with
  | Some "BOUNDED" -> ()
  | v ->
      fail "range: expected BOUNDED verdict, got %s"
        (Option.value ~default:"(missing)" v));
  (match Json.to_float_opt (Json.member "bound" rres) with
  | Some b when b > 0. && Float.is_finite b -> ()
  | _ -> fail "range: bound missing or not a positive finite number");
  ignore (to_str "range" "witness" rres);
  (try ignore (Str.search_forward (Str.regexp_string "rigorous range analysis") rreport 0)
   with Not_found -> fail "range report missing its header:\n%s" rreport);
  print_endline "serve_smoke: range request certified a finite bound";

  (* Malformed requests still get responses on the same connection. *)
  let _, err = check_err "badcmd"
      (Client.rpc c (Client.request ~id:501 ~cmd:"frobnicate" []))
  in
  if not (String.length err > 0) then fail "bad cmd: empty error";
  let _, err = check_err "nothresh"
      (Client.rpc c
         (Client.request ~id:502 ~cmd:"search"
            [ ("program", Json.Str obs_smoke); ("func", Json.Str "looped");
              ("args", Json.List [ Json.Str "1.3"; Json.Str "50" ]) ]))
  in
  (try ignore (Str.search_forward (Str.regexp_string "threshold") err 0)
   with Not_found -> fail "missing-threshold error does not mention it: %s" err);
  Client.close c;

  (* -------------------------------------------------------------- *)
  (* Phase 3: two concurrent traced requests -> two disjoint span   *)
  (* trees, written sorted by span id for validate_trace --forest 2. *)

  let spans = Array.make 2 [] in
  let traced =
    List.init 2 (fun i ->
        Thread.create
          (fun () ->
            let c = connect () in
            let resp =
              Client.rpc c
                (Client.request ~id:(600 + i) ~cmd:"search"
                   [ ("program", Json.Str obs_smoke);
                     ("func", Json.Str "looped");
                     ("args", Json.List [ Json.Str "1.3"; Json.Str "50" ]);
                     ("threshold", Json.Num 1e-6); ("jobs", Json.Num 2.);
                     ("trace", Json.Bool true) ])
            in
            let _, _, _, report = check_ok "traced" resp in
            if report <> cli_search then
              fail "traced search %d: report differs from CLI" i;
            (match Json.member "spans" resp with
            | Json.List l -> spans.(i) <- List.filter_map Json.to_string_opt l
            | _ -> fail "traced search %d: no spans in response" i);
            Client.close c)
          ())
  in
  List.iter Thread.join traced;
  Array.iteri
    (fun i s -> if s = [] then fail "traced request %d: empty span tree" i)
    spans;
  (* Span ids are globally unique and emitted in each line's "id"
     field; the two trees interleave, so sort the merged lines by id
     to restore validate_trace's strictly-increasing order. *)
  let span_id line =
    match Str.search_forward (Str.regexp "\"id\":\\([0-9]+\\)") line 0 with
    | _ -> int_of_string (Str.matched_group 1 line)
    | exception Not_found -> fail "span line without an id: %s" line
  in
  let all = List.concat [ spans.(0); spans.(1) ] in
  let sorted =
    List.sort
      (fun a b -> compare (span_id a) (span_id b))
      all
  in
  Out_channel.with_open_bin "serve_smoke_trace.jsonl" (fun oc ->
      List.iter (fun l -> output_string oc (l ^ "\n")) sorted);
  Printf.printf
    "serve_smoke: wrote %d span(s) from 2 traced requests to \
     serve_smoke_trace.jsonl\n%!"
    (List.length sorted);

  (* -------------------------------------------------------------- *)
  (* Phase 4: metrics surface, then drain via a shutdown request.   *)

  let c = connect () in
  let m = Client.rpc c (Client.request ~id:700 ~cmd:"metrics" []) in
  let _, _, _, dump = check_ok "metrics" m in
  List.iter
    (fun key ->
      try ignore (Str.search_forward (Str.regexp_string key) dump 0)
      with Not_found -> fail "metrics dump missing %S" key)
    [
      "server.requests"; "server.queue_depth"; "pool.shared.submitted";
      "pool.shared.completed"; "compile_cache.hits";
      "compile_cache.tenant.conn0.hits"; "compile_cache.tenant.warm.hits";
      "range.bound"; "range.split";
    ];
  let stop = Client.rpc c (Client.request ~id:701 ~cmd:"shutdown" []) in
  ignore (check_ok "shutdown" stop);
  Client.close c;
  let _, status = Unix.waitpid [] pid in
  reaped := true;
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> fail "daemon exited with %d after drain" n
  | _ -> fail "daemon killed by signal");
  print_endline "serve_smoke: OK — daemon drained cleanly (exit 0)"
