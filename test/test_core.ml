open Cheffp_ir
module E = Cheffp_core.Estimate
module Model = Cheffp_core.Model
module Tuner = Cheffp_core.Tuner
module Sensitivity = Cheffp_core.Sensitivity
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config

let check_float = Alcotest.(check (float 1e-15))

let simple_src =
  {|
func func1(x: f64, y: f64): f64 {
  var z: f64;
  z = x + y;
  return z;
}
|}

let loopy_src =
  {|
func acc(x: f64, n: int): f64 {
  var s: f64 = 0.0;
  var t: f64;
  for i in 1 .. n + 1 {
    t = x / itof(i);
    s = s + t * t;
  }
  return sqrt(s);
}
|}

(* ------------------------------------------------------------------ *)
(* Models                                                             *)

let estimate ?options ?builtins ?deriv ~model src func args =
  let prog = Parser.parse_program src in
  let est = E.estimate_error ?options ?builtins ?deriv ~model ~prog ~func () in
  E.run est args

let test_adapt_model_closed_form () =
  (* z = x + y with exactly-representable inputs: the only error terms
     are z's representation error under f32 and zero input terms. *)
  let x = 0.5 and y = 0.25 in
  let r =
    estimate ~model:(Model.adapt ()) simple_src "func1"
      [ Interp.Aflt x; Interp.Aflt y ]
  in
  check_float "exact inputs, exact sum" 0. r.E.total_error;
  let x = 1.95e-5 and y = 1.37e-7 in
  let r =
    estimate ~model:(Model.adapt ()) simple_src "func1"
      [ Interp.Aflt x; Interp.Aflt y ]
  in
  let expected =
    Float.abs (Fp.representation_error Fp.F32 (x +. y))
    +. Float.abs (Fp.representation_error Fp.F32 x)
    +. Float.abs (Fp.representation_error Fp.F32 y)
  in
  Alcotest.(check (float 1e-25)) "adapt closed form" expected r.E.total_error

let test_taylor_model_closed_form () =
  let x = 0.5 and y = 0.25 in
  let r =
    estimate ~model:(Model.taylor ()) simple_src "func1"
      [ Interp.Aflt x; Interp.Aflt y ]
  in
  (* taylor: eps*|z|*|dz| for the z assignment + eps*|x|*|dx| + eps*|y|*|dy| *)
  let eps = Fp.unit_roundoff Fp.F32 in
  let expected = (eps *. 0.75) +. (eps *. 0.5) +. (eps *. 0.25) in
  Alcotest.(check (float 1e-20)) "taylor closed form" expected r.E.total_error

let test_taylor_f16_larger () =
  let args = [ Interp.Aflt 0.3; Interp.Aflt 0.4 ] in
  let r32 = estimate ~model:(Model.taylor ~target:Fp.F32 ()) simple_src "func1" args in
  let r16 = estimate ~model:(Model.taylor ~target:Fp.F16 ()) simple_src "func1" args in
  Alcotest.(check bool) "f16 error larger" true
    (r16.E.total_error > r32.E.total_error *. 1000.)

let test_zero_model () =
  let r =
    estimate ~model:Model.zero simple_src "func1"
      [ Interp.Aflt 0.1; Interp.Aflt 0.2 ]
  in
  check_float "zero model" 0. r.E.total_error;
  Alcotest.(check (float 1e-12)) "gradients still computed" 1.
    (List.assoc "x" r.E.gradients)

let test_adapt_f64_rejected () =
  Alcotest.(check bool) "adapt f64 invalid" true
    (try
       ignore (Model.adapt ~target:Fp.F64 ());
       false
     with Invalid_argument _ -> true)

let test_external_model_names () =
  let seen = ref [] in
  let model =
    Model.external_ ~name:"spy" (fun ~adj ~value ~var ->
        seen := var :: !seen;
        adj *. value *. 0.)
  in
  let r =
    estimate ~model loopy_src "acc" [ Interp.Aflt 1.0; Interp.Aint 3 ]
  in
  check_float "spy model zero" 0. r.E.total_error;
  (* variables seen at runtime: t and s repeatedly, _ret once, plus the
     input term for x *)
  Alcotest.(check bool) "saw t and s" true
    (List.mem "t" !seen && List.mem "s" !seen)

let test_approx_model_unmapped_zero () =
  let model =
    Model.approx_functions ~pairs:[]
      ~eval:(fun _ v -> v)
      ~eval_approx:(fun _ v -> v)
  in
  let r = estimate ~model loopy_src "acc" [ Interp.Aflt 1.0; Interp.Aint 4 ] in
  check_float "no mapped vars, no error" 0. r.E.total_error

(* ------------------------------------------------------------------ *)
(* Estimation engine                                                  *)

let test_compiled_equals_interpreted () =
  let prog = Parser.parse_program loopy_src in
  let est = E.estimate_error ~model:(Model.adapt ()) ~prog ~func:"acc" () in
  let args = [ Interp.Aflt 1.23; Interp.Aint 11 ] in
  let a = E.run est args in
  let b = E.run_interpreted est args in
  Alcotest.(check (float 0.)) "same total" a.E.total_error b.E.total_error;
  Alcotest.(check bool) "same gradients" true (a.E.gradients = b.E.gradients);
  Alcotest.(check bool) "same per-variable" true
    (a.E.per_variable = b.E.per_variable)

let test_per_variable_sums_to_total () =
  let prog = Parser.parse_program loopy_src in
  let est = E.estimate_error ~model:(Model.adapt ()) ~prog ~func:"acc" () in
  let r = E.run est [ Interp.Aflt 0.77; Interp.Aint 9 ] in
  let sum = List.fold_left (fun acc (_, e) -> acc +. e) 0. r.E.per_variable in
  Alcotest.(check (float 1e-18)) "sum of attribution = total" r.E.total_error sum

let test_return_copy_not_double_counted () =
  (* [return z] introduces a synthetic copy that must not be charged. *)
  let prog = Parser.parse_program simple_src in
  let est = E.estimate_error ~model:(Model.adapt ()) ~prog ~func:"func1" () in
  let r = E.run est [ Interp.Aflt 1.95e-5; Interp.Aflt 1.37e-7 ] in
  Alcotest.(check bool) "no _ret attribution" true
    (not (List.mem_assoc "_ret" r.E.per_variable))

let test_expression_return_charged () =
  let src = "func f(x: f64): f64 { return x * 3.1; }" in
  let prog = Parser.parse_program src in
  let est = E.estimate_error ~model:(Model.adapt ()) ~prog ~func:"f" () in
  let r = E.run est [ Interp.Aflt 0.7 ] in
  Alcotest.(check bool) "expression return is charged" true
    (List.mem_assoc "_ret" r.E.per_variable)

let test_options_variants_same_total () =
  let prog = Parser.parse_program loopy_src in
  let args = [ Interp.Aflt 0.9; Interp.Aint 8 ] in
  let total options =
    let est = E.estimate_error ~model:(Model.adapt ()) ~options ~prog ~func:"acc" () in
    (E.run est args).E.total_error
  in
  let base = total E.default_options in
  Alcotest.(check (float 0.)) "no per-variable tracking" base
    (total { E.default_options with E.per_variable = false });
  Alcotest.(check (float 0.)) "no optimization" base
    (total { E.default_options with E.optimize = false });
  Alcotest.(check (float 0.)) "activity analysis" base
    (total { E.default_options with E.use_activity = true });
  Alcotest.(check (float 0.)) "iteration tracking" base
    (total { E.default_options with E.track_iterations = `Outermost })

let test_track_iterations_records () =
  let prog = Parser.parse_program loopy_src in
  let est =
    E.estimate_error ~model:(Model.adapt ())
      ~options:{ E.default_options with E.track_iterations = `Loop "i" }
      ~prog ~func:"acc" ()
  in
  let r = E.run est [ Interp.Aflt 1.1; Interp.Aint 5 ] in
  let t_series = List.assoc "t" r.E.per_iteration in
  Alcotest.(check int) "5 iterations recorded" 5 (List.length t_series);
  Alcotest.(check bool) "iteration keys 1..5" true
    (List.map fst t_series = [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check bool) "sensitivities decay with 1/i" true
    (let v = List.map snd t_series in
     List.hd v > List.nth v 4)

let test_gradients_reported () =
  let prog = Parser.parse_program loopy_src in
  let est = E.estimate_error ~prog ~func:"acc" () in
  let r = E.run est [ Interp.Aflt 2.0; Interp.Aint 6 ] in
  (* acc = sqrt(sum (x/i)^2) = x * sqrt(sum 1/i^2): linear in x. *)
  let factor =
    sqrt (List.fold_left (fun a i -> a +. (1. /. float_of_int (i * i))) 0. [ 1; 2; 3; 4; 5; 6 ])
  in
  Alcotest.(check (float 1e-9)) "dacc/dx" factor (List.assoc "x" r.E.gradients)

let test_array_gradients_reported () =
  let src =
    {|func f(a: f64[], n: int): f64 {
        var s: f64 = 0.0;
        for i in 0 .. n { s = s + a[i]; }
        return s;
      }|}
  in
  let prog = Parser.parse_program src in
  let est = E.estimate_error ~prog ~func:"f" () in
  let r = E.run est [ Interp.Afarr [| 1.; 2.; 4. |]; Interp.Aint 3 ] in
  match List.assoc "a" r.E.array_gradients with
  | d -> Alcotest.(check bool) "all ones" true (d = [| 1.; 1.; 1. |])

let test_memory_accounting_positive () =
  let prog = Parser.parse_program loopy_src in
  let est = E.estimate_error ~prog ~func:"acc" () in
  let r = E.run est [ Interp.Aflt 1.0; Interp.Aint 100 ] in
  Alcotest.(check bool) "stack bytes grow with work" true
    (r.E.stack_peak_bytes > 0 && r.E.analysis_bytes >= r.E.stack_peak_bytes)

let test_generated_function_exposed () =
  let prog = Parser.parse_program simple_src in
  let est = E.estimate_error ~prog ~func:"func1" () in
  let g = E.generated est in
  Alcotest.(check string) "name" "func1_grad" g.Ast.fname;
  Alcotest.(check bool) "program contains it" true
    (Ast.find_func (E.program est) "func1_grad" <> None)

(* ------------------------------------------------------------------ *)
(* Tuner                                                              *)

let test_float_variables () =
  let prog = Parser.parse_program loopy_src in
  Alcotest.(check (list string)) "candidates" [ "x"; "s"; "t" ]
    (Tuner.float_variables (Ast.func_exn prog "acc"))

let test_evaluate_double_config () =
  let prog = Parser.parse_program loopy_src in
  let ev =
    Tuner.evaluate ~prog ~func:"acc"
      ~args:[ Interp.Aflt 1.3; Interp.Aint 10 ]
      Config.double
  in
  Alcotest.(check (float 0.)) "no error" 0. ev.Tuner.actual_error;
  Alcotest.(check (float 1e-9)) "no speedup" 1. ev.Tuner.modelled_speedup;
  Alcotest.(check int) "no casts" 0 ev.Tuner.casts

let test_evaluate_demoted_config () =
  let prog = Parser.parse_program loopy_src in
  let config = Config.demote_all Config.double [ "s"; "t" ] Fp.F32 in
  let ev =
    Tuner.evaluate ~prog ~func:"acc" ~args:[ Interp.Aflt 1.3; Interp.Aint 10 ] config
  in
  Alcotest.(check bool) "error appears" true (ev.Tuner.actual_error > 0.);
  Alcotest.(check bool) "speedup appears" true (ev.Tuner.modelled_speedup > 1.)

let test_tune_respects_budget () =
  let prog = Parser.parse_program loopy_src in
  let threshold = 1e-6 in
  let o =
    Tuner.tune ~prog ~func:"acc"
      ~args:[ Interp.Aflt 1.3; Interp.Aint 50 ]
      ~threshold ()
  in
  Alcotest.(check bool) "estimate within budget" true
    (o.Tuner.estimated_error <= threshold /. 2.);
  Alcotest.(check bool) "actual within threshold" true
    (o.Tuner.evaluation.Tuner.actual_error <= threshold);
  Alcotest.(check bool) "contributions ascending" true
    (let rec asc = function
       | (_, a) :: ((_, b) :: _ as rest) -> a <= b && asc rest
       | _ -> true
     in
     asc o.Tuner.contributions)

let test_tune_margin () =
  let prog = Parser.parse_program loopy_src in
  let args = [ Interp.Aflt 1.3; Interp.Aint 50 ] in
  let strict =
    Tuner.tune ~margin:1e9 ~prog ~func:"acc" ~args ~threshold:1e-6 ()
  in
  Alcotest.(check (list string)) "huge margin demotes nothing" []
    strict.Tuner.demoted

let test_tuner_args_not_mutated () =
  let a = [| 1.; 2. |] in
  let src =
    {|func f(a: f64[]): f64 { a[0] = a[0] * 2.0; return a[0] + a[1]; }|}
  in
  let prog = Parser.parse_program src in
  ignore (Tuner.evaluate ~prog ~func:"f" ~args:[ Interp.Afarr a ] Config.double);
  Alcotest.(check bool) "caller arrays untouched" true (a = [| 1.; 2. |])

(* ------------------------------------------------------------------ *)
(* Signed (CENA-style) accumulation                                   *)

(* In [`Signed] mode with the ADAPT model, each variable's signed term
   is a first-order *prediction* of f(that variable demoted) - f(double)
   with the opposite sign — exact as long as the demoted variable's
   stored values are computed from unperturbed operands (non-recurrent
   variables). Accumulators that feed back into themselves diverge from
   the reference trajectory after the first rounding and are only
   order-of-magnitude predictions (the caveat CENA addresses by
   instrumenting the perturbed execution itself). *)
let test_signed_estimate_predicts_mixed_error () =
  let check_var prog func args v =
    let est =
      E.estimate_error ~model:(Model.adapt ())
        ~options:{ E.default_options with E.accumulation = `Signed }
        ~prog ~func ()
    in
    let r = E.run est args in
    let signed_v =
      Option.value ~default:0. (List.assoc_opt v r.E.per_variable)
    in
    let reference = Interp.run_float ~prog ~func args in
    let mixed =
      Interp.run_float
        ~config:(Config.demote Config.double v Fp.F32)
        ~mode:Config.Extended ~prog ~func args
    in
    let actual = mixed -. reference in
    Alcotest.(check bool)
      (Printf.sprintf "%s: demoting %s predicted" func v)
      true
      (Float.abs (actual +. signed_v) < 1e-3 *. Float.abs actual
      || Float.abs actual < 1e-15)
  in
  let prog = Parser.parse_program loopy_src in
  let args = [ Interp.Aflt 1.37; Interp.Aint 40 ] in
  List.iter (check_var prog "acc" args) [ "x"; "t" ];
  let poly_src =
    {|func poly(x: f64, y: f64): f64 {
        var a: f64 = x * y + 0.1;
        var b: f64 = a * a - y;
        var c: f64 = b / (a + 2.0);
        return c * c + a;
      }|}
  in
  let poly = Parser.parse_program poly_src in
  let pargs = [ Interp.Aflt 0.7; Interp.Aflt 1.3 ] in
  List.iter (check_var poly "poly" pargs) [ "x"; "y"; "a"; "b"; "c" ];
  (* For a recurrent accumulator the prediction is order-of-magnitude. *)
  let est =
    E.estimate_error ~model:(Model.adapt ())
      ~options:{ E.default_options with E.accumulation = `Signed }
      ~prog ~func:"acc" ()
  in
  let r = E.run est args in
  let signed_s = List.assoc "s" r.E.per_variable in
  let reference = Interp.run_float ~prog ~func:"acc" args in
  let mixed =
    Interp.run_float
      ~config:(Config.demote Config.double "s" Fp.F32)
      ~mode:Config.Extended ~prog ~func:"acc" args
  in
  let actual = mixed -. reference in
  Alcotest.(check bool) "accumulator: same order of magnitude" true
    (Float.abs signed_s > Float.abs actual /. 30.
    && Float.abs signed_s < Float.abs actual *. 30.)

let test_signed_vs_absolute_totals () =
  let prog = Parser.parse_program loopy_src in
  let args = [ Interp.Aflt 0.9; Interp.Aint 25 ] in
  let total accumulation =
    let est =
      E.estimate_error ~model:(Model.adapt ())
        ~options:{ E.default_options with E.accumulation }
        ~prog ~func:"acc" ()
    in
    (E.run est args).E.total_error
  in
  let signed = total `Signed and absolute = total `Absolute in
  Alcotest.(check bool) "absolute bounds signed" true
    (Float.abs signed <= absolute +. 1e-18)

(* ------------------------------------------------------------------ *)
(* Ranges, overflow veto, and source rewriting                        *)

let test_ranges_tracked () =
  let prog = Parser.parse_program loopy_src in
  let est =
    E.estimate_error
      ~options:{ E.default_options with E.track_ranges = true }
      ~prog ~func:"acc" ()
  in
  let r = E.run est [ Interp.Aflt 2.0; Interp.Aint 4 ] in
  let lo_t, hi_t = List.assoc "t" r.E.ranges in
  (* t takes the values 2/1, 2/2, 2/3, 2/4 *)
  Alcotest.(check (float 1e-12)) "t max" 2.0 hi_t;
  Alcotest.(check (float 1e-12)) "t min" 0.5 lo_t;
  let lo_x, hi_x = List.assoc "x" r.E.ranges in
  Alcotest.(check bool) "input range is a point" true (lo_x = 2.0 && hi_x = 2.0)

let test_tuner_overflow_veto () =
  (* big = x * 1e37 overflows binary16 (and would overflow f32 only for
     much larger values): an f16 tuning must veto it. *)
  let src =
    {|func f(x: f64): f64 {
        var big: f64 = x * 1.0e37;
        var small: f64 = x * 0.5;
        return big / 1.0e37 + small;
      }|}
  in
  let prog = Parser.parse_program src in
  let o16 =
    Tuner.tune ~target:Fp.F16 ~prog ~func:"f" ~args:[ Interp.Aflt 1.0 ]
      ~threshold:1e-1 ()
  in
  Alcotest.(check bool) "big vetoed for f16" true
    (List.mem "big" o16.Tuner.vetoed);
  Alcotest.(check bool) "big not demoted" false
    (List.mem "big" o16.Tuner.demoted);
  let o32 =
    Tuner.tune ~target:Fp.F32 ~prog ~func:"f" ~args:[ Interp.Aflt 1.0 ]
      ~threshold:1e-1 ()
  in
  Alcotest.(check bool) "f32 does not veto 1e37" false
    (List.mem "big" o32.Tuner.vetoed)

let test_rewrite_matches_config () =
  (* Executing the rewritten source under plain double equals executing
     the original under the configuration, bit for bit. *)
  let prog = Parser.parse_program loopy_src in
  let config = Config.demote_all Config.double [ "t"; "s" ] Fp.F32 in
  let f = Ast.func_exn prog "acc" in
  let rewritten = Cheffp_core.Rewrite.apply_config config f in
  let prog' = { Ast.funcs = [ rewritten ] } in
  Typecheck.check_program prog';
  let args = [ Interp.Aflt 1.7; Interp.Aint 9 ] in
  Alcotest.(check (float 0.)) "bit-identical"
    (Interp.run_float ~config ~prog ~func:"acc" args)
    (Interp.run_float ~prog:prog' ~func:"acc" args)

let test_rewrite_of_outcome () =
  let prog = Parser.parse_program loopy_src in
  let args = [ Interp.Aflt 1.3; Interp.Aint 30 ] in
  let o = Tuner.tune ~prog ~func:"acc" ~args ~threshold:1e-5 () in
  let mixed = Cheffp_core.Rewrite.of_outcome prog ~func:"acc" o in
  Alcotest.(check string) "renamed" "acc_mixed" mixed.Ast.fname;
  let prog' = Ast.add_func prog mixed in
  Typecheck.check_program prog';
  Alcotest.(check (float 0.)) "rewritten = configured"
    o.Tuner.evaluation.Tuner.actual_error
    (Float.abs
       (Interp.run_float ~prog:prog' ~func:"acc_mixed" args
       -. Interp.run_float ~prog ~func:"acc" args));
  (* the rewritten source mentions f32 iff something was demoted *)
  let text = Pp.func_to_string mixed in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "declares f32" (o.Tuner.demoted <> [])
    (contains text ": f32")

let test_tune_multi () =
  let prog = Parser.parse_program loopy_src in
  let datasets =
    [
      [ Interp.Aflt 0.5; Interp.Aint 20 ];
      [ Interp.Aflt 3.0; Interp.Aint 40 ];
      [ Interp.Aflt 1.5; Interp.Aint 5 ];
    ]
  in
  let o, evaluations =
    Tuner.tune_multi ~prog ~func:"acc" ~args_list:datasets ~threshold:1e-5 ()
  in
  Alcotest.(check int) "one evaluation per dataset" 3 (List.length evaluations);
  List.iter
    (fun (ev : Tuner.evaluation) ->
      Alcotest.(check bool) "every dataset within threshold" true
        (ev.Tuner.actual_error <= 1e-5))
    evaluations;
  Alcotest.(check bool) "worst case embedded" true
    (List.for_all
       (fun (ev : Tuner.evaluation) ->
         ev.Tuner.actual_error <= o.Tuner.evaluation.Tuner.actual_error)
       evaluations);
  Alcotest.(check bool) "empty dataset list rejected" true
    (try
       ignore (Tuner.tune_multi ~prog ~func:"acc" ~args_list:[] ~threshold:1e-5 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Search baseline                                                    *)

let test_search_meets_threshold () =
  let prog = Parser.parse_program loopy_src in
  let args = [ Interp.Aflt 1.3; Interp.Aint 50 ] in
  let threshold = 1e-6 in
  let o = Cheffp_core.Search.tune ~prog ~func:"acc" ~args ~threshold () in
  Alcotest.(check bool) "threshold met" true
    (o.Cheffp_core.Search.evaluation.Tuner.actual_error <= threshold);
  Alcotest.(check bool) "counts executions" true
    (o.Cheffp_core.Search.executions >= 2)

let test_search_more_expensive_than_ad () =
  let prog = Parser.parse_program loopy_src in
  let args = [ Interp.Aflt 1.3; Interp.Aint 50 ] in
  let threshold = 1e-7 in
  let o = Cheffp_core.Search.tune ~prog ~func:"acc" ~args ~threshold () in
  (* AD-based tuning: one analysis + validation. The search needs the
     reference, the all-demoted probe, per-variable probes, and greedy
     validation runs: strictly more program executions. *)
  Alcotest.(check bool) "search runs the program many times" true
    (o.Cheffp_core.Search.executions > 3)

let test_parallel_determinism () =
  (* jobs must never change outcomes: demoted sets, evaluations and
     execution counts are bit-identical whether candidates are
     evaluated sequentially or across 4 domains (the workload forces
     the probing + greedy-growth path, the one that parallelizes). *)
  let module B = Cheffp_benchmarks in
  let prog = B.Arclength.program
  and func = B.Arclength.func_name
  and args = B.Arclength.args ~n:2_000
  and threshold = 1e-6 in
  let s1 = Cheffp_core.Search.tune ~jobs:1 ~prog ~func ~args ~threshold () in
  let s4 = Cheffp_core.Search.tune ~jobs:4 ~prog ~func ~args ~threshold () in
  Alcotest.(check (list string))
    "search demoted identical" s1.Cheffp_core.Search.demoted
    s4.Cheffp_core.Search.demoted;
  Alcotest.(check int)
    "search executions identical" s1.Cheffp_core.Search.executions
    s4.Cheffp_core.Search.executions;
  Alcotest.(check bool) "search probed (not the trivial path)" true
    (s1.Cheffp_core.Search.executions > 4);
  Alcotest.(check (float 0.))
    "search actual_error identical"
    s1.Cheffp_core.Search.evaluation.Tuner.actual_error
    s4.Cheffp_core.Search.evaluation.Tuner.actual_error;
  Alcotest.(check (float 0.))
    "search modelled_speedup identical"
    s1.Cheffp_core.Search.evaluation.Tuner.modelled_speedup
    s4.Cheffp_core.Search.evaluation.Tuner.modelled_speedup;
  Alcotest.(check int)
    "search casts identical" s1.Cheffp_core.Search.evaluation.Tuner.casts
    s4.Cheffp_core.Search.evaluation.Tuner.casts;
  let t1 = Tuner.tune ~jobs:1 ~prog ~func ~args ~threshold () in
  let t4 = Tuner.tune ~jobs:4 ~prog ~func ~args ~threshold () in
  Alcotest.(check (list string))
    "tuner demoted identical" t1.Tuner.demoted t4.Tuner.demoted;
  Alcotest.(check (float 0.))
    "tuner actual_error identical" t1.Tuner.evaluation.Tuner.actual_error
    t4.Tuner.evaluation.Tuner.actual_error;
  Alcotest.(check (float 0.))
    "tuner modelled_speedup identical"
    t1.Tuner.evaluation.Tuner.modelled_speedup
    t4.Tuner.evaluation.Tuner.modelled_speedup

let test_search_agrees_with_tuner () =
  let prog = Parser.parse_program loopy_src in
  let args = [ Interp.Aflt 1.3; Interp.Aint 50 ] in
  let threshold = 1e-5 in
  let s = Cheffp_core.Search.tune ~prog ~func:"acc" ~args ~threshold () in
  let t = Tuner.tune ~prog ~func:"acc" ~args ~threshold () in
  (* Both must produce valid configurations; the AD-guided one should
     demote at least as much as it can justify. *)
  Alcotest.(check bool) "both valid" true
    (s.Cheffp_core.Search.evaluation.Tuner.actual_error <= threshold
    && t.Tuner.evaluation.Tuner.actual_error <= threshold)

(* ------------------------------------------------------------------ *)
(* Sensitivity                                                        *)

let records =
  [ ("a", [ (0, 4.); (1, 2.); (2, 0.) ]); ("b", [ (1, 1.); (3, 0.5) ]) ]

let test_sensitivity_normalized () =
  let n, series = Sensitivity.normalized records in
  Alcotest.(check int) "span" 4 n;
  let a = List.assoc "a" series in
  Alcotest.(check (float 0.)) "max scaled to 1" 1. a.(0);
  Alcotest.(check (float 0.)) "half" 0.5 a.(1);
  let b = List.assoc "b" series in
  Alcotest.(check (float 0.)) "global normalization" 0.25 b.(1);
  Alcotest.(check (float 0.)) "missing iterations are zero" 0. b.(0)

let test_sensitivity_below_threshold () =
  let _, series = Sensitivity.normalized records in
  Alcotest.(check int) "first all-below point" 2
    (Sensitivity.below_threshold_after series ~threshold:0.3);
  Alcotest.(check int) "never satisfied" 4
    (Sensitivity.below_threshold_after series ~threshold:1e-9)

let test_sensitivity_split_cutoff () =
  let c =
    Sensitivity.split_cutoff ~records ~vars:[ "a"; "b" ] ~eps:1.
      ~budget:0.6 ~max_iter:4
  in
  (* tail sums: from 1: 2+1+0.5=3.5; from 2: 0.5; 0.5 <= 0.6 -> 2 *)
  Alcotest.(check int) "cutoff" 2 c;
  Alcotest.(check int) "case-insensitive names" 2
    (Sensitivity.split_cutoff ~records ~vars:[ "A"; "B" ] ~eps:1. ~budget:0.6
       ~max_iter:4);
  Alcotest.(check int) "impossible budget hits max" 4
    (Sensitivity.split_cutoff ~records ~vars:[ "a"; "b" ] ~eps:1.
       ~budget:(-1.) ~max_iter:4)

let test_sensitivity_heatmap () =
  let _, series = Sensitivity.normalized records in
  let s = Sensitivity.heatmap ~cols:4 series in
  Alcotest.(check bool) "rows rendered" true
    (List.length (String.split_on_char '\n' s) >= 3);
  Alcotest.(check string) "empty input" "(empty sensitivity profile)\n"
    (Sensitivity.heatmap [])

let () =
  Alcotest.run "core"
    [
      ( "models",
        [
          Alcotest.test_case "adapt closed form" `Quick test_adapt_model_closed_form;
          Alcotest.test_case "taylor closed form" `Quick
            test_taylor_model_closed_form;
          Alcotest.test_case "f16 larger than f32" `Quick test_taylor_f16_larger;
          Alcotest.test_case "zero model" `Quick test_zero_model;
          Alcotest.test_case "adapt f64 rejected" `Quick test_adapt_f64_rejected;
          Alcotest.test_case "external model" `Quick test_external_model_names;
          Alcotest.test_case "approx unmapped zero" `Quick
            test_approx_model_unmapped_zero;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "compiled = interpreted" `Quick
            test_compiled_equals_interpreted;
          Alcotest.test_case "attribution sums to total" `Quick
            test_per_variable_sums_to_total;
          Alcotest.test_case "return copy skipped" `Quick
            test_return_copy_not_double_counted;
          Alcotest.test_case "expression return charged" `Quick
            test_expression_return_charged;
          Alcotest.test_case "options keep totals" `Quick
            test_options_variants_same_total;
          Alcotest.test_case "iteration tracking" `Quick
            test_track_iterations_records;
          Alcotest.test_case "gradients" `Quick test_gradients_reported;
          Alcotest.test_case "array gradients" `Quick
            test_array_gradients_reported;
          Alcotest.test_case "memory accounting" `Quick
            test_memory_accounting_positive;
          Alcotest.test_case "generated exposed" `Quick
            test_generated_function_exposed;
        ] );
      ( "tuner",
        [
          Alcotest.test_case "float variables" `Quick test_float_variables;
          Alcotest.test_case "double config" `Quick test_evaluate_double_config;
          Alcotest.test_case "demoted config" `Quick test_evaluate_demoted_config;
          Alcotest.test_case "budget respected" `Quick test_tune_respects_budget;
          Alcotest.test_case "margin" `Quick test_tune_margin;
          Alcotest.test_case "args not mutated" `Quick test_tuner_args_not_mutated;
          Alcotest.test_case "multi-dataset" `Quick test_tune_multi;
        ] );
      ( "signed-accumulation",
        [
          Alcotest.test_case "predicts mixed error (CENA)" `Quick
            test_signed_estimate_predicts_mixed_error;
          Alcotest.test_case "absolute bounds signed" `Quick
            test_signed_vs_absolute_totals;
        ] );
      ( "ranges+rewrite",
        [
          Alcotest.test_case "ranges tracked" `Quick test_ranges_tracked;
          Alcotest.test_case "overflow veto" `Quick test_tuner_overflow_veto;
          Alcotest.test_case "rewrite = config" `Quick
            test_rewrite_matches_config;
          Alcotest.test_case "rewrite of outcome" `Quick
            test_rewrite_of_outcome;
        ] );
      ( "report",
        [
          Alcotest.test_case "renders estimate" `Quick (fun () ->
              let prog = Parser.parse_program loopy_src in
              let est =
                E.estimate_error
                  ~options:{ E.default_options with E.track_ranges = true }
                  ~prog ~func:"acc" ()
              in
              let r = E.run est [ Interp.Aflt 1.1; Interp.Aint 5 ] in
              let s = Cheffp_core.Report.estimate r in
              Alcotest.(check bool) "mentions total" true
                (String.length s > 50);
              Alcotest.(check bool) "mentions ranges" true
                (let rec contains i =
                   i + 6 <= String.length s
                   && (String.sub s i 6 = "ranges" || contains (i + 1))
                 in
                 contains 0));
          Alcotest.test_case "renders tuning" `Quick (fun () ->
              let prog = Parser.parse_program loopy_src in
              let o =
                Tuner.tune ~prog ~func:"acc"
                  ~args:[ Interp.Aflt 1.1; Interp.Aint 10 ]
                  ~threshold:1e-5 ()
              in
              Alcotest.(check bool) "nonempty" true
                (String.length (Cheffp_core.Report.tuning o) > 50));
          Alcotest.test_case "renders search" `Quick (fun () ->
              let prog = Parser.parse_program loopy_src in
              let o =
                Cheffp_core.Search.tune ~prog ~func:"acc"
                  ~args:[ Interp.Aflt 1.1; Interp.Aint 10 ]
                  ~threshold:1e-5 ()
              in
              Alcotest.(check bool) "nonempty" true
                (String.length (Cheffp_core.Report.search o) > 30));
        ] );
      ( "search-baseline",
        [
          Alcotest.test_case "meets threshold" `Quick test_search_meets_threshold;
          Alcotest.test_case "costs many executions" `Quick
            test_search_more_expensive_than_ad;
          Alcotest.test_case "agrees with tuner" `Quick
            test_search_agrees_with_tuner;
          Alcotest.test_case "parallel determinism" `Quick
            test_parallel_determinism;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "normalized" `Quick test_sensitivity_normalized;
          Alcotest.test_case "below threshold" `Quick
            test_sensitivity_below_threshold;
          Alcotest.test_case "split cutoff" `Quick test_sensitivity_split_cutoff;
          Alcotest.test_case "heatmap" `Quick test_sensitivity_heatmap;
        ] );
    ]
