(* Independent validator for FPCore text (used by @fpcore-smoke).

   Hand-rolled tokenizer, reader and grammar/scope checker with no
   dependency on lib/fpcore's lexer or parser, so it can vouch for the
   exporter's output (and for the vendored corpus files) without
   trusting the code under test. Checks, per (FPCore ...) form:

   - parenthesis/bracket balance with kind matching;
   - the FPCore head shape: optional symbol name, parameter list
     (symbols, optionally under a (! prop... sym) annotation),
     property/value pairs, exactly one body expression;
   - :precision is a binary64/32/16, :name / :cheffp-config are
     strings, :cheffp-type is int, :cheffp-loop is for/for-down/while;
   - every operator has a known FPCore spelling and its exact arity
     (and/or/comparisons are variadic >= 2);
   - let/let*/while*/if/!/cast special forms are well-shaped;
   - every symbol read is in scope (parameters, let/while* bindings,
     named constants), with let evaluating bindings in the outer scope
     and let*/while* sequencing theirs.

   Usage: validate_fpcore [file.fpcore ...]
   With no arguments it loads the vendored corpus, validates each
   file's text, then re-exports every imported kernel and validates
   the exporter's output too. Exits non-zero on the first malformed
   form, naming the file and construct. *)

let errors = ref 0

let fail where fmt =
  Printf.ksprintf
    (fun m ->
      incr errors;
      Printf.printf "MALFORMED %s: %s\n" where m)
    fmt

(* ---------------- tokenizer ---------------- *)

type tok = LP | RP | LB | RB | Str of string | Atom of string

exception Bad of string

let tokenize text =
  let n = String.length text in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    (match text.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | ';' ->
        while !i < n && text.[!i] <> '\n' do
          incr i
        done
    | '(' ->
        toks := LP :: !toks;
        incr i
    | ')' ->
        toks := RP :: !toks;
        incr i
    | '[' ->
        toks := LB :: !toks;
        incr i
    | ']' ->
        toks := RB :: !toks;
        incr i
    | '"' ->
        let j = ref (!i + 1) in
        while !j < n && text.[!j] <> '"' do
          if text.[!j] = '\\' then incr j;
          incr j
        done;
        if !j >= n then raise (Bad "unterminated string literal");
        toks := Str (String.sub text (!i + 1) (!j - !i - 1)) :: !toks;
        i := !j + 1
    | _ ->
        let j = ref !i in
        let stop c =
          match c with
          | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '[' | ']' | ';' | '"' ->
              true
          | _ -> false
        in
        while !j < n && not (stop text.[!j]) do
          incr j
        done;
        toks := Atom (String.sub text !i (!j - !i)) :: !toks;
        i := !j)
  done;
  List.rev !toks

(* ---------------- reader ---------------- *)

type form = S of string | Q of string | P of form list | K of form list
(* symbol / quoted string / (...) / [...] *)

let read_all toks =
  let rec form = function
    | [] -> raise (Bad "unexpected end of input")
    | Str s :: rest -> (Q s, rest)
    | Atom a :: rest -> (S a, rest)
    | LP :: rest ->
        let xs, rest = forms RP [] rest in
        (P xs, rest)
    | LB :: rest ->
        let xs, rest = forms RB [] rest in
        (K xs, rest)
    | (RP | RB) :: _ -> raise (Bad "unexpected closing delimiter")
  and forms close acc = function
    | [] -> raise (Bad "unclosed delimiter")
    | t :: rest when t = close -> (List.rev acc, rest)
    | (RP | RB) :: _ -> raise (Bad "mismatched closing delimiter kind")
    | toks ->
        let f, rest = form toks in
        forms close (f :: acc) rest
  in
  let rec top acc = function
    | [] -> List.rev acc
    | toks ->
        let f, rest = form toks in
        top (f :: acc) rest
  in
  top [] toks

(* ---------------- grammar ---------------- *)

let is_number a =
  let num = Str.regexp {|^[+-]?\([0-9]+\.?[0-9]*\|\.[0-9]+\)\([eE][+-]?[0-9]+\)?$|} in
  let hex = Str.regexp {|^[+-]?0x[0-9a-fA-F]+\.?[0-9a-fA-F]*\([pP][+-]?[0-9]+\)?$|} in
  let rat = Str.regexp {|^[+-]?[0-9]+/[0-9]+$|} in
  Str.string_match num a 0 || Str.string_match hex a 0 || Str.string_match rat a 0

let constants =
  [ "PI"; "E"; "LOG2E"; "LN2"; "SQRT2"; "NAN"; "INFINITY"; "TRUE"; "FALSE" ]

(* exact arities; None = variadic with at least two operands *)
let operators =
  [ ("+", Some 2); ("-", None); ("*", Some 2); ("/", Some 2);
    ("<", None); ("<=", None); (">", None); (">=", None);
    ("==", None); ("!=", None); ("and", None); ("or", None); ("not", Some 1);
    ("sqrt", Some 1); ("fabs", Some 1); ("sin", Some 1); ("cos", Some 1);
    ("tan", Some 1); ("exp", Some 1); ("log", Some 1); ("log2", Some 1);
    ("log10", Some 1); ("tanh", Some 1); ("atan", Some 1); ("floor", Some 1);
    ("ceil", Some 1); ("pow", Some 2); ("fmin", Some 2); ("fmax", Some 2);
    ("fma", Some 3); ("cast", Some 1) ]

let precisions = [ "binary64"; "binary32"; "binary16" ]

let sym where = function
  | S a when not (is_number a) -> a
  | _ -> raise (Bad (where ^ ": expected a symbol"))

let binding_list where = function
  | P bs | K bs ->
      List.map
        (function
          | P items | K items -> items
          | _ -> raise (Bad (where ^ ": binding must be a list")))
        bs
  | _ -> raise (Bad (where ^ ": expected a binding list"))

(* one property (keyword + value); returns its (name, value) *)
let check_property key value =
  match (key, value) with
  | ":name", Q _ | ":description", Q _ | ":cite", _ | ":pre", _ | ":spec", _
    ->
      ()
  | ":precision", S p when List.mem p precisions -> ()
  | ":precision", _ -> raise (Bad ":precision must be binary64/32/16")
  | ":round", S _ -> ()
  | ":cheffp-config", Q _ -> ()
  | ":cheffp-config", _ -> raise (Bad ":cheffp-config must be a string")
  | ":cheffp-type", S "int" -> ()
  | ":cheffp-type", _ -> raise (Bad ":cheffp-type must be int")
  | ":cheffp-loop", S ("for" | "for-down" | "while") -> ()
  | ":cheffp-loop", _ -> raise (Bad ":cheffp-loop must be for/for-down/while")
  | ":name", _ -> raise (Bad ":name must be a string")
  | k, _ when String.length k > 0 && k.[0] = ':' -> ()
  | k, _ -> raise (Bad ("expected a property keyword, got " ^ k))

let rec check_expr env = function
  | S a when is_number a -> ()
  | S a when List.mem a constants -> ()
  | S a ->
      if not (List.mem a env) then raise (Bad ("unbound symbol " ^ a))
  | Q _ -> raise (Bad "string literal in expression position")
  | K _ -> raise (Bad "bracketed list in expression position")
  | P (S (("let" | "let*") as head) :: rest) -> (
      match rest with
      | [ bs; body ] ->
          let final =
            List.fold_left
              (fun env' items ->
                match items with
                | [ v; e ] ->
                    let v = sym (head ^ " binding") v in
                    (* let evaluates bindings in the outer scope,
                       let* sequences them *)
                    check_expr (if head = "let*" then env' else env) e;
                    v :: env'
                | _ -> raise (Bad (head ^ " binding must be [name expr]")))
              env (binding_list head bs)
          in
          check_expr final body
      | _ -> raise (Bad (head ^ " needs a binding list and one body")))
  | P (S "while*" :: rest) | P (S "while" :: rest) -> (
      match rest with
      | [ cond; bs; res ] ->
          let bindings = binding_list "while*" bs in
          let names =
            List.map
              (function
                | [ v; _; _ ] -> sym "while* binding" v
                | _ -> raise (Bad "while* binding must be [name init update]"))
              bindings
          in
          List.iter
            (function
              | [ _; init; _ ] -> check_expr env init
              | _ -> assert false)
            bindings;
          let env' = names @ env in
          check_expr env' cond;
          List.iter
            (function
              | [ _; _; upd ] -> check_expr env' upd
              | _ -> assert false)
            bindings;
          check_expr env' res
      | _ -> raise (Bad "while* needs condition, bindings and a result"))
  | P (S "if" :: rest) -> (
      match rest with
      | [ c; t; e ] ->
          check_expr env c;
          check_expr env t;
          check_expr env e
      | _ -> raise (Bad "if needs exactly three operands"))
  | P (S "!" :: rest) ->
      let rec props = function
        | S k :: v :: more when String.length k > 0 && k.[0] = ':' ->
            check_property k v;
            props more
        | [ e ] -> check_expr env e
        | _ -> raise (Bad "! needs properties then one expression")
      in
      props rest
  | P (S op :: args) when List.mem_assoc op operators -> (
      (match List.assoc op operators with
      | Some k when List.length args <> k ->
          raise
            (Bad
               (Printf.sprintf "%s expects %d operand(s), got %d" op k
                  (List.length args)))
      | Some _ -> ()
      | None ->
          (* [-] is both unary negation and binary subtraction *)
          let min_args = if op = "-" then 1 else 2 in
          if List.length args < min_args then
            raise (Bad (op ^ ": too few operands")));
      List.iter (check_expr env) args)
  | P (S op :: _) -> raise (Bad ("unknown operator " ^ op))
  | P _ -> raise (Bad "expression list must start with an operator symbol")

let check_param env = function
  | S _ as s -> sym "parameter" s :: env
  | P (S "!" :: rest) | K (S "!" :: rest) ->
      let rec props = function
        | S k :: v :: more when String.length k > 0 && k.[0] = ':' ->
            check_property k v;
            props more
        | [ (S _ as s) ] -> sym "parameter" s :: env
        | _ -> raise (Bad "annotated parameter must end in a symbol")
      in
      props rest
  | _ -> raise (Bad "parameter must be a symbol or (! props symbol)")

let check_core = function
  | P (S "FPCore" :: rest) ->
      let name, rest =
        match rest with
        | S a :: more when not (is_number a) -> (Some a, more)
        | _ -> (None, rest)
      in
      ignore name;
      let params, rest =
        match rest with
        | (P ps | K ps) :: more -> (ps, more)
        | _ -> raise (Bad "FPCore needs a parameter list")
      in
      let env = List.fold_left check_param [] params in
      let rec props seen = function
        | S k :: v :: more when String.length k > 0 && k.[0] = ':' ->
            if List.mem k seen then raise (Bad ("duplicate property " ^ k));
            check_property k v;
            (match (k, v) with
            | ":pre", e -> check_expr env e
            | _ -> ());
            props (k :: seen) more
        | [ body ] -> check_expr env body
        | [] -> raise (Bad "FPCore has no body expression")
        | _ -> raise (Bad "FPCore must end with exactly one body expression")
      in
      props [] rest
  | _ -> raise (Bad "top-level form must be (FPCore ...)")

let check_text where text =
  match read_all (tokenize text) with
  | [] -> fail where "no FPCore forms"
  | forms -> (
      try List.iter check_core forms with Bad m -> fail where "%s" m)
  | exception Bad m -> fail where "%s" m

(* ---------------- drivers ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files <> [] then List.iter (fun f -> check_text f (read_file f)) files
  else begin
    let entries = Cheffp_benchmarks.Corpus.load () in
    List.iter
      (fun (e : Cheffp_benchmarks.Corpus.entry) ->
        check_text e.path (read_file e.path))
      entries;
    (* the exporter's own output must satisfy the same grammar *)
    List.iter
      (fun (e : Cheffp_benchmarks.Corpus.entry) ->
        let func = e.core.Cheffp_fpcore.Import.name in
        match
          Cheffp_fpcore.Export.func_to_fpcore ~prog:e.prog ~func ()
        with
        | text -> check_text (e.path ^ "<exported>") text
        | exception Cheffp_fpcore.Export.Error m ->
            fail (e.path ^ "<exported>") "export failed: %s" m)
      entries;
    Printf.printf "validate_fpcore: %d corpus files + exporter output OK\n"
      (List.length entries)
  end;
  exit (if !errors > 0 then 1 else 0)
