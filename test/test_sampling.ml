(* Monte-Carlo sampling layer (Sampling / Quantile, DESIGN.md §16):
   distribution parsing, plan resolution, draw determinism under every
   scheduling shape, the streaming quantile estimator's exact and
   compressed modes, and the input-sweep bit-identity contract — each
   sampled lane's result equals a per-input scalar [Compile.run],
   including the divergence-fallback paths. *)

open Cheffp_ir
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp
module Sampling = Cheffp_core.Sampling
module Quantile = Cheffp_core.Quantile

let parse src =
  let prog = Parser.parse_program src in
  Typecheck.check_program prog;
  prog

let the_func prog name =
  List.find (fun f -> f.Ast.fname = name) prog.Ast.funcs

(* ------------------------------------------------------------------ *)
(* Quantile: exact mode.                                              *)

let test_quantile_exact () =
  let q = Quantile.of_array (Array.init 10 (fun i -> float_of_int (i + 1))) in
  Alcotest.(check bool) "exact mode" true (Quantile.is_exact q);
  Alcotest.(check int) "count" 10 (Quantile.count q);
  (* Nearest-rank: rank = ceil(q * n). *)
  Alcotest.(check (float 0.)) "p50" 5. (Quantile.quantile q 0.5);
  Alcotest.(check (float 0.)) "p95" 10. (Quantile.quantile q 0.95);
  Alcotest.(check (float 0.)) "p10" 1. (Quantile.quantile q 0.1);
  Alcotest.(check (float 0.)) "q=0" 1. (Quantile.quantile q 0.);
  Alcotest.(check (float 0.)) "q=1" 10. (Quantile.quantile q 1.);
  Alcotest.(check (float 0.)) "min" 1. (Quantile.min_value q);
  Alcotest.(check (float 0.)) "max" 10. (Quantile.max_value q);
  Alcotest.(check (float 1e-12)) "mean" 5.5 (Quantile.mean q);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Quantile.quantile: q outside [0, 1]") (fun () ->
      ignore (Quantile.quantile q 1.5))

let test_quantile_empty () =
  let q = Quantile.create () in
  Alcotest.(check bool) "empty p50 NaN" true
    (Float.is_nan (Quantile.quantile q 0.5));
  Alcotest.(check bool) "empty mean NaN" true (Float.is_nan (Quantile.mean q));
  Alcotest.(check bool) "empty one-shot NaN" true
    (Float.is_nan (Quantile.quantile_of_array [||] 0.5))

(* The one-shot helper and the accumulator agree while exact — they
   share the nearest-rank convention. *)
let test_quantile_of_array_agrees () =
  let rng = Cheffp_util.Rng.create 17L in
  let values =
    Array.init 500 (fun _ -> Cheffp_util.Rng.uniform rng ~lo:(-5.) ~hi:5.)
  in
  let q = Quantile.of_array values in
  Alcotest.(check bool) "still exact" true (Quantile.is_exact q);
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "q=%.2f agrees" p)
        (Quantile.quantile_of_array values p)
        (Quantile.quantile q p))
    [ 0.; 0.01; 0.25; 0.5; 0.75; 0.95; 0.99; 1. ]

(* Past the cutoff the estimator compresses; with the default
   cutoff/grid the compounded rank error at 20k samples stays well
   under 1% of rank, i.e. < 0.01 in value on uniform [0,1]. *)
let test_quantile_compressed () =
  let n = 20_000 in
  let rng = Cheffp_util.Rng.create 23L in
  let values =
    Array.init n (fun _ -> Cheffp_util.Rng.uniform rng ~lo:0. ~hi:1.)
  in
  let q = Quantile.of_array values in
  Alcotest.(check bool) "compressed" true (not (Quantile.is_exact q));
  Alcotest.(check int) "count exact" n (Quantile.count q);
  Alcotest.(check (float 0.))
    "max exact"
    (Quantile.quantile_of_array values 1.)
    (Quantile.max_value q);
  List.iter
    (fun p ->
      let exact = Quantile.quantile_of_array values p in
      let est = Quantile.quantile q p in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f within rank bound" p)
        true
        (Float.abs (est -. exact) < 0.02))
    [ 0.5; 0.95; 0.99 ]

let test_quantile_merge () =
  (* Exact + exact below the cutoff: the merge is lossless. *)
  let a = Quantile.of_array [| 1.; 3.; 5. |] in
  let b = Quantile.of_array [| 2.; 4.; 6. |] in
  Quantile.merge a b;
  Alcotest.(check bool) "merged stays exact" true (Quantile.is_exact a);
  Alcotest.(check int) "merged count" 6 (Quantile.count a);
  Alcotest.(check (float 0.)) "merged p50" 3. (Quantile.quantile a 0.5);
  Alcotest.(check (float 0.)) "merged max" 6. (Quantile.max_value a);
  Alcotest.(check int) "src unchanged" 3 (Quantile.count b);
  (* Split/merge of a large stream approximates the one-shot summary. *)
  let n = 8_000 in
  let rng = Cheffp_util.Rng.create 31L in
  let values =
    Array.init n (fun _ -> Cheffp_util.Rng.uniform rng ~lo:0. ~hi:1.)
  in
  let whole = Quantile.summary_of_array values in
  let parts = Array.init 4 (fun _ -> Quantile.create ()) in
  Array.iteri (fun i v -> Quantile.add parts.(i mod 4) v) values;
  let acc = parts.(0) in
  for i = 1 to 3 do
    Quantile.merge acc parts.(i)
  done;
  let merged = Quantile.summary acc in
  Alcotest.(check int) "split/merge count" whole.Quantile.count
    merged.Quantile.count;
  Alcotest.(check (float 1e-9)) "split/merge mean" whole.Quantile.mean
    merged.Quantile.mean;
  Alcotest.(check (float 0.)) "split/merge max" whole.Quantile.max
    merged.Quantile.max;
  Alcotest.(check bool) "split/merge p99 close" true
    (Float.abs (merged.Quantile.p99 -. whole.Quantile.p99) < 0.02)

(* ------------------------------------------------------------------ *)
(* Distribution spec parsing.                                         *)

let test_dist_parsing () =
  let round s = Sampling.dist_to_string (Sampling.dist_of_string s) in
  Alcotest.(check string) "fixed" "fixed:2.5" (round "fixed:2.5");
  Alcotest.(check string) "uniform" "uniform:-1,3" (round "uniform:-1,3");
  Alcotest.(check string) "normal" "normal:0,2" (round "normal:0,2");
  let entries = Sampling.dists_of_string "x=uniform:0,1; y=normal:0,2" in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  Alcotest.(check bool) "x is uniform" true
    (match List.assoc "x" entries with
    | Sampling.Uniform { lo; hi } -> lo = 0. && hi = 1.
    | _ -> false);
  let rejects s =
    match Sampling.dist_of_string s with
    | exception Sampling.Spec_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "empty interval rejected" true (rejects "uniform:3,1");
  Alcotest.(check bool) "zero sigma rejected" true (rejects "normal:0,0");
  Alcotest.(check bool) "unknown kind rejected" true (rejects "bogus:1");
  Alcotest.(check bool) "garbage rejected" true (rejects "uniform")

(* ------------------------------------------------------------------ *)
(* Plan resolution.                                                   *)

let plan_src =
  {|func kernel(x: f64, v: f64[], n: int): f64 {
  var s: f64 = 0.0;
  for i in 0 .. n {
    s = s + x * v[i];
  }
  return s;
}|}

let base_args = [ Interp.Aflt 1.5; Interp.Afarr [| 1.0; 2.0 |]; Interp.Aint 2 ]

let make_plan ?dists ?ranges () =
  let prog = parse plan_src in
  Sampling.plan ?dists ?ranges ~func:(the_func prog "kernel") ~args:base_args ()

let test_plan_slots () =
  let p = make_plan () in
  (* Floats and float arrays sample; the int passes through fixed. *)
  Alcotest.(check (list string))
    "sampled vars" [ "x"; "v" ] (Sampling.sampled_vars p);
  let d = Sampling.describe p in
  Alcotest.(check string) "default box on x" "uniform:0.75,2.25"
    (List.assoc "x" d);
  Alcotest.(check string) "int fixed" "fixed" (List.assoc "n" d);
  (* A bounded :pre range beats the default box; an explicit dist beats
     both. *)
  let ranged = make_plan ~ranges:[ ("x", (Some (-4.), Some 4.)) ] () in
  Alcotest.(check string) "range becomes uniform" "uniform:-4,4"
    (List.assoc "x" (Sampling.describe ranged));
  let forced =
    make_plan
      ~dists:[ ("x", Sampling.Normal { mu = 0.; sigma = 1. }) ]
      ~ranges:[ ("x", (Some (-4.), Some 4.)) ]
      ()
  in
  Alcotest.(check string) "explicit dist wins" "normal:0,1"
    (List.assoc "x" (Sampling.describe forced));
  (* A one-sided range cannot bound a sampler: fall back to the box. *)
  let half = make_plan ~ranges:[ ("x", (Some 0., None)) ] () in
  Alcotest.(check string) "one-sided range ignored" "uniform:0.75,2.25"
    (List.assoc "x" (Sampling.describe half))

let test_plan_errors () =
  let prog = parse plan_src in
  let f = the_func prog "kernel" in
  Alcotest.(check bool) "unknown name rejected" true
    (match
       Sampling.plan
         ~dists:[ ("zz", Sampling.Fixed 1.) ]
         ~func:f ~args:base_args ()
     with
    | exception Sampling.Spec_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "arity mismatch rejected" true
    (match Sampling.plan ~func:f ~args:[ Interp.Aflt 1. ] () with
    | exception Sampling.Spec_error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Draw determinism.                                                  *)

let test_draw_deterministic () =
  let p = make_plan () in
  let a = Sampling.draw p ~seed:42L 7 in
  let b = Sampling.draw p ~seed:42L 7 in
  Alcotest.(check bool) "same (seed,i) same sample" true (a = b);
  Alcotest.(check bool) "different index differs" true
    (Sampling.draw p ~seed:42L 8 <> a);
  Alcotest.(check bool) "different seed differs" true
    (Sampling.draw p ~seed:43L 7 <> a);
  (* draw_many is exactly the per-index draws, in order. *)
  let many = Sampling.draw_many p ~seed:42L 16 in
  Array.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "draw_many.(%d)" i)
        true
        (s = Sampling.draw p ~seed:42L i))
    many;
  (* Fresh arrays per draw: mutating a sample cannot corrupt the next. *)
  (match a with
  | [ _; Interp.Afarr arr; _ ] -> arr.(0) <- Float.nan
  | _ -> Alcotest.fail "unexpected draw shape");
  Alcotest.(check bool) "mutation does not leak" true
    (Sampling.draw p ~seed:42L 7 = b)

(* The sweep is schedule-invariant: scalar per-input runs, a 1-domain
   narrow sweep and a multi-domain wide sweep all produce bit-identical
   results in input order. *)
let test_sweep_schedule_invariance () =
  let prog = parse plan_src in
  let p = make_plan () in
  let inputs = Sampling.draw_many p ~seed:5L 23 in
  let config = Config.demote Config.double "s" Fp.F32 in
  let scalar =
    Array.map
      (fun args ->
        let c = Compile.compile ~config ~prog ~func:"kernel" () in
        Compile.run_float c args)
      inputs
  in
  List.iter
    (fun (jobs, lanes) ->
      let got =
        Sampling.sweep ~jobs ~lanes ~prog ~func:"kernel" ~config inputs
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d lanes=%d = scalar" jobs lanes)
        true (got = scalar))
    [ (1, 4); (1, 8); (2, 4); (4, 16) ]

let test_measured_errors_reference_sharing () =
  let prog = parse plan_src in
  let p = make_plan () in
  let inputs = Sampling.draw_many p ~seed:11L 12 in
  let config = Config.demote_all Config.double [ "s"; "x" ] Fp.F16 in
  let errs, reference =
    Sampling.measured_errors ~prog ~func:"kernel" ~config inputs
  in
  let errs', _ =
    Sampling.measured_errors ~reference ~prog ~func:"kernel" ~config inputs
  in
  Alcotest.(check bool) "shared reference same errors" true (errs = errs');
  Alcotest.(check bool) "errors non-negative" true
    (Array.for_all (fun e -> e >= 0.) errs);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument
       "Sampling.measured_errors: reference length mismatch (3 <> 12)")
    (fun () ->
      ignore
        (Sampling.measured_errors ~reference:[| 0.; 0.; 0. |] ~prog
           ~func:"kernel" ~config inputs));
  let summary, _ = Sampling.measured_summary ~prog ~func:"kernel" ~config inputs in
  Alcotest.(check int) "summary count" 12 summary.Quantile.count;
  Alcotest.(check (float 0.))
    "summary max is the worst sample"
    (Array.fold_left Float.max 0. errs)
    summary.Quantile.max

(* ------------------------------------------------------------------ *)
(* Forced divergence: inputs that disagree on a branch split the     *)
(* sweep, dissenting lanes fall back scalar, results stay identical. *)

let branch_src =
  {|func branchy(x: f64): f64 {
  var t: f64 = x;
  if (t >= 1.0) {
    return t * 2.0;
  }
  return t * 3.0;
}|}

let test_input_divergence_fallback () =
  let prog = parse branch_src in
  let config = Config.double in
  let inputs =
    Array.map (fun x -> [ Interp.Aflt x ]) [| 0.5; 1.5; 0.25; 2.0 |]
  in
  let b = Batch.compile ~prog ~func:"branchy" () in
  let r = Batch.run_inputs b ~config inputs in
  Alcotest.(check bool) "the minority lanes diverged" true
    (r.Batch.divergences > 0);
  Array.iteri
    (fun l args ->
      let c = Compile.compile ~config ~prog ~func:"branchy" () in
      Alcotest.(check bool)
        (Printf.sprintf "lane %d bit-identical" l)
        true
        (r.Batch.lanes.(l) = Compile.run c args))
    inputs

(* ------------------------------------------------------------------ *)
(* Fuzz: the input-sweep bit-identity contract on random programs.    *)
(* Random MiniFP programs carry data-dependent branches and while     *)
(* loops, so sampled inputs routinely disagree on control flow and    *)
(* the divergence-fallback path is exercised, not just uniform lanes. *)

let gen_sweep_case =
  QCheck.Gen.(
    triple Gen_minifp.gen_program Gen_minifp.gen_config
      (array_size (return 6) Gen_minifp.gen_inputs))

let arbitrary_sweep_case =
  QCheck.make
    ~print:(fun (p, config, points) ->
      Printf.sprintf "config=%s points=[%s]\n%s" (Config.to_string config)
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun (x, y) -> Printf.sprintf "%.17g,%.17g" x y)
                 points)))
        (Pp.program_to_string p))
    gen_sweep_case

let fuzz_input_sweep_bit_identity =
  QCheck.Test.make ~count:120 ~name:"fuzz: input-sweep lanes = scalar runs"
    arbitrary_sweep_case (fun (prog, config, points) ->
      let inputs =
        Array.map
          (fun (x, y) -> [ Interp.Aflt x; Interp.Aflt y; Interp.Aint 4 ])
          points
      in
      let scalar =
        try
          Some
            (Array.map
               (fun args ->
                 let c = Compile.compile ~config ~prog ~func:"fuzz" () in
                 Compile.run c args)
               inputs)
        with Interp.Runtime_error _ | Division_by_zero -> None
      in
      match scalar with
      | None -> true (* generator should prevent this; skip *)
      | Some scalar ->
          let b = Batch.compile ~prog ~func:"fuzz" () in
          let r = Batch.run_inputs b ~config inputs in
          Array.for_all2 (fun lane s -> lane = s) r.Batch.lanes scalar)

(* And the chunked multi-sweep entry point preserves the same contract
   across lane widths and domain counts. *)
let fuzz_run_inputs_many_invariance =
  QCheck.Test.make ~count:60 ~name:"fuzz: run_inputs_many schedule-invariant"
    arbitrary_sweep_case (fun (prog, config, points) ->
      let inputs =
        Array.map
          (fun (x, y) -> [ Interp.Aflt x; Interp.Aflt y; Interp.Aint 4 ])
          points
      in
      let scalar =
        try
          Some
            (Array.map
               (fun args ->
                 let c = Compile.compile ~config ~prog ~func:"fuzz" () in
                 Compile.run_float c args)
               inputs)
        with Interp.Runtime_error _ | Division_by_zero -> None
      in
      match scalar with
      | None -> true
      | Some scalar ->
          let b = Batch.compile ~prog ~func:"fuzz" () in
          List.for_all
            (fun (jobs, lanes) ->
              Batch.run_inputs_many ~jobs ~lanes b ~config inputs = scalar)
            [ (1, 2); (1, 6); (2, 3) ])

let () =
  Alcotest.run "sampling"
    [
      ( "quantile",
        [
          Alcotest.test_case "exact nearest-rank" `Quick test_quantile_exact;
          Alcotest.test_case "empty" `Quick test_quantile_empty;
          Alcotest.test_case "one-shot agrees" `Quick
            test_quantile_of_array_agrees;
          Alcotest.test_case "compressed bounds" `Quick
            test_quantile_compressed;
          Alcotest.test_case "merge" `Quick test_quantile_merge;
        ] );
      ( "spec",
        [
          Alcotest.test_case "dist parsing" `Quick test_dist_parsing;
          Alcotest.test_case "plan slots" `Quick test_plan_slots;
          Alcotest.test_case "plan errors" `Quick test_plan_errors;
        ] );
      ( "draw",
        [
          Alcotest.test_case "deterministic" `Quick test_draw_deterministic;
          Alcotest.test_case "sweep schedule invariance" `Quick
            test_sweep_schedule_invariance;
          Alcotest.test_case "reference sharing" `Quick
            test_measured_errors_reference_sharing;
          Alcotest.test_case "divergence fallback" `Quick
            test_input_divergence_fallback;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest fuzz_input_sweep_bit_identity;
          QCheck_alcotest.to_alcotest fuzz_run_inputs_many_invariance;
        ] );
    ]
