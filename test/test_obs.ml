(* lib/obs: span collection, metrics registry, export formats, and the
   instrumentation contracts the rest of the tree relies on — the
   disabled path is inert and allocation-free, the compile cache LRU
   evicts and counts, and the parallel ADAPT walk is bit-identical. *)

module Trace = Cheffp_obs.Trace
module Metrics = Cheffp_obs.Metrics
module Export = Cheffp_obs.Export
module Pool = Cheffp_util.Pool
module Compile_cache = Cheffp_ir.Compile_cache
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp
module Adapt = Cheffp_adapt.Adapt

(* Every test leaves the global collectors the way it found them:
   disabled and empty. *)
let with_tracing f =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  go 0

let find name spans =
  match List.find_opt (fun s -> s.Trace.name = name) spans with
  | Some s -> s
  | None -> Alcotest.failf "span %S not recorded" name

(* ------------------------------------------------------------------ *)
(* Span collection                                                    *)

let test_nesting () =
  let spans =
    with_tracing (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "first" (fun () -> ());
            Trace.with_span "second" (fun () ->
                Trace.with_span "inner" (fun () -> ())));
        Trace.spans ())
  in
  Alcotest.(check int) "four spans" 4 (List.length spans);
  let outer = find "outer" spans
  and first = find "first" spans
  and second = find "second" spans
  and inner = find "inner" spans in
  Alcotest.(check int) "outer is a root" (-1) outer.Trace.parent;
  Alcotest.(check int) "first under outer" outer.Trace.id first.Trace.parent;
  Alcotest.(check int) "second under outer" outer.Trace.id second.Trace.parent;
  Alcotest.(check int) "inner under second" second.Trace.id inner.Trace.parent;
  (* Ids are assigned at span start, so they order by start time. *)
  Alcotest.(check bool) "first starts before second" true
    (first.Trace.id < second.Trace.id);
  (* Parents cover their children on the monotonized clock. *)
  List.iter
    (fun (p, c) ->
      Alcotest.(check bool) "child starts within parent" true
        (p.Trace.start_ns <= c.Trace.start_ns);
      Alcotest.(check bool) "child ends within parent" true
        (c.Trace.end_ns <= p.Trace.end_ns))
    [ (outer, first); (outer, second); (second, inner) ];
  (* Completion order: children land before the span that encloses them. *)
  let order = List.map (fun s -> s.Trace.name) spans in
  Alcotest.(check (list string))
    "completion order" [ "first"; "inner"; "second"; "outer" ] order

let test_exception () =
  let spans =
    with_tracing (fun () ->
        (try Trace.with_span "boom" (fun () -> failwith "no") with
        | Failure _ -> ());
        Trace.spans ())
  in
  let s = find "boom" spans in
  Alcotest.(check bool) "raised attr set" true
    (List.assoc_opt "raised" s.Trace.attrs = Some (Trace.Bool true))

let test_attrs_events () =
  let spans =
    with_tracing (fun () ->
        Trace.with_span "work" (fun () ->
            Trace.add_attr "k" (Trace.Str "v");
            Trace.add_attr "n" (Trace.Int 7);
            Trace.event ~attrs:[ ("hit", Trace.Bool true) ] "tick");
        Trace.spans ())
  in
  let work = find "work" spans and tick = find "tick" spans in
  Alcotest.(check bool) "str attr" true
    (List.assoc_opt "k" work.Trace.attrs = Some (Trace.Str "v"));
  Alcotest.(check bool) "int attr" true
    (List.assoc_opt "n" work.Trace.attrs = Some (Trace.Int 7));
  Alcotest.(check bool) "event kind" true (tick.Trace.kind = Trace.Event);
  Alcotest.(check int) "event parented" work.Trace.id tick.Trace.parent;
  Alcotest.(check bool) "event is instant" true
    (tick.Trace.start_ns = tick.Trace.end_ns)

let test_pool_parenting () =
  let spans =
    with_tracing (fun () ->
        Trace.with_span "batch" (fun () ->
            ignore
              (Pool.parallel_map ~jobs:3
                 (fun i -> Trace.with_span "task" (fun () -> i * i))
                 [ 1; 2; 3; 4; 5 ]));
        Trace.spans ())
  in
  let batch = find "batch" spans in
  let tasks = List.filter (fun s -> s.Trace.name = "task") spans in
  Alcotest.(check int) "all tasks recorded" 5 (List.length tasks);
  List.iter
    (fun t ->
      Alcotest.(check int) "task parented under batch (across domains)"
        batch.Trace.id t.Trace.parent)
    tasks

(* ------------------------------------------------------------------ *)
(* Disabled path                                                      *)

let test_disabled_inert () =
  Trace.reset ();
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  let r = Trace.with_span "ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 r;
  Trace.add_attr "k" (Trace.Str "v");
  Trace.event "ghost-event";
  Alcotest.(check int) "no current span" (-1) (Trace.current ());
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans ()))

let noop () = ()

let test_disabled_no_alloc () =
  Trace.reset ();
  (* Warm up so the first-call effects (closure promotion etc.) are out
     of the measured window. *)
  for _ = 1 to 1_000 do
    Trace.with_span "x" noop
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Trace.with_span "x" noop
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check (float 0.)) "no minor allocation over 100k calls" 0. dw

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)

let test_metrics_basic () =
  Metrics.reset ();
  let c = Metrics.counter "test.c" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  let g = Metrics.gauge "test.g" in
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 0.)) "gauge" 2.5 (Metrics.gauge_value g);
  let h = Metrics.histogram ~buckets:[| 1.; 10. |] "test.h" in
  Metrics.observe h 0.5;
  Metrics.observe h 5.;
  Metrics.observe h 50.;
  Alcotest.(check int) "histogram count" 3 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "histogram sum" 55.5
    (Metrics.histogram_sum h);
  (* Same name returns the same metric; same name as a different kind
     is a registration error. *)
  Metrics.incr (Metrics.counter "test.c");
  Alcotest.(check int) "get-or-create shares state" 6
    (Metrics.counter_value c);
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       ignore (Metrics.gauge "test.c");
       false
     with Invalid_argument _ -> true);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes in place" 0 (Metrics.counter_value c)

let test_metrics_concurrent () =
  Metrics.reset ();
  let c = Metrics.counter "test.concurrent" in
  let h = Metrics.histogram "test.concurrent_h" in
  ignore
    (Pool.parallel_map ~jobs:4
       (fun _ ->
         for _ = 1 to 1_000 do
           Metrics.incr c;
           Metrics.observe h 1e-3
         done)
       [ (); (); (); (); (); (); (); () ]);
  Alcotest.(check int) "8k increments survive 4 domains" 8_000
    (Metrics.counter_value c);
  Alcotest.(check int) "8k observations survive 4 domains" 8_000
    (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "histogram sum exact" 8.
    (Metrics.histogram_sum h);
  Metrics.reset ()

let test_pool_task_metrics () =
  Metrics.reset ();
  ignore (Pool.parallel_map ~jobs:3 (fun i -> i + 1) [ 1; 2; 3; 4; 5; 6 ]);
  let snap = Metrics.snapshot () in
  let counter name =
    match List.assoc_opt name snap with
    | Some (Metrics.Counter n) -> n
    | _ -> Alcotest.failf "counter %S missing" name
  in
  Alcotest.(check int) "pool.tasks counts the batch" 6 (counter "pool.tasks");
  let per_worker =
    List.filter_map
      (fun (name, v) ->
        match (String.split_on_char '.' name, v) with
        | [ "pool"; "worker"; _; "tasks" ], Metrics.Counter n -> Some n
        | _ -> None)
      snap
  in
  Alcotest.(check int) "per-worker counts sum to the batch" 6
    (List.fold_left ( + ) 0 per_worker);
  (* Which slot claims how much is scheduling-dependent (on a single
     CPU the caller may drain the whole batch), but every requested
     slot must have registered its counter. Registration outlives
     Metrics.reset, so earlier tests may have left more slots. *)
  Alcotest.(check bool) "a counter per requested worker slot" true
    (List.length per_worker >= 3);
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Export                                                             *)

(* Minimal structural JSON check: balanced braces/brackets outside
   strings, no raw control characters, one object per line. The full
   parse is done by the @obs-smoke validator (validate_trace.ml). *)
let json_object_shaped line =
  let depth = ref 0 and in_str = ref false and esc = ref false and ok = ref true in
  String.iter
    (fun ch ->
      if !esc then esc := false
      else if !in_str then begin
        if ch = '\\' then esc := true
        else if ch = '"' then in_str := false
        else if Char.code ch < 0x20 then ok := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    line;
  !ok && !depth = 0 && (not !in_str)
  && String.length line > 1
  && line.[0] = '{'
  && line.[String.length line - 1] = '}'

let test_jsonl () =
  let spans =
    with_tracing (fun () ->
        Trace.with_span "a" (fun () ->
            Trace.add_attr "s" (Trace.Str "quote \" backslash \\ newline \n");
            Trace.add_attr "f" (Trace.Float infinity);
            Trace.with_span "b" (fun () -> Trace.event "e"));
        Trace.spans ())
  in
  let path = Filename.temp_file "cheffp_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.write_jsonl ~path spans;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "one line per span" (List.length spans)
        (List.length lines);
      List.iter
        (fun l ->
          Alcotest.(check bool) "line is a balanced JSON object" true
            (json_object_shaped l))
        lines;
      (* Lines come out in id (start) order. *)
      Alcotest.(check bool) "root first" true
        (contains (List.hd lines) "\"name\":\"a\""))

let test_metrics_dump () =
  Metrics.reset ();
  let c = Metrics.counter "dump.c" in
  Metrics.add c 3;
  let h = Metrics.histogram ~buckets:[| 1. |] "dump.h" in
  Metrics.observe h 0.5;
  let dump = Export.metrics_dump () in
  let has needle = contains dump needle in
  Alcotest.(check bool) "counter line" true (has "dump.c 3");
  Alcotest.(check bool) "histogram count line" true (has "dump.h.count 1");
  Alcotest.(check bool) "histogram bucket line" true (has "dump.h.le.1 1");
  Alcotest.(check bool) "histogram inf line" true (has "dump.h.le.inf 1");
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Compile cache LRU                                                  *)

(* The cache is sharded, so the bound applies per shard (the per-shard
   capacities sum to max_entries). Deterministic LRU expectations need
   keys that land on one shard; [same_shard_keys] brute-forces them via
   the exposed [shard_of_key]. Recency within one shard is exact. *)
type Compile_cache.artifact += Blob of int

let test_lru_eviction () =
  let same_shard_keys n =
    let target = Compile_cache.shard_of_key "lru|seed" in
    let rec go i acc =
      if List.length acc >= n then List.rev acc
      else
        let k = Printf.sprintf "lru|%d" i in
        go (i + 1)
          (if Compile_cache.shard_of_key k = target then k :: acc else acc)
    in
    go 0 []
  in
  let built = ref 0 in
  let get k =
    Compile_cache.lookup_or ~key:k ~label:"lru" ~builtins:None
      ~select:(function Blob v -> Some v | _ -> None)
      ~inject:(fun v -> Blob v)
      ~build:(fun () ->
        incr built;
        !built)
  in
  Compile_cache.clear ();
  Fun.protect
    ~finally:(fun () ->
      Compile_cache.set_max_entries Compile_cache.default_max_entries;
      Compile_cache.clear ())
    (fun () ->
      match same_shard_keys 3 with
      | [ ka; kb; kc ] ->
          (* every shard gets capacity 2 *)
          Compile_cache.set_max_entries (2 * Compile_cache.shards);
          ignore (get ka);
          ignore (get kb);
          ignore (get kc);
          (* shard capacity 2: [ka] was least recently used, gone *)
          let s = Compile_cache.stats () in
          Alcotest.(check int) "three misses" 3 s.Compile_cache.misses;
          Alcotest.(check int) "one eviction" 1 s.Compile_cache.evictions;
          Alcotest.(check int) "bounded size" 2 s.Compile_cache.size;
          ignore (get kb);
          let s = Compile_cache.stats () in
          Alcotest.(check int) "recent entry still hits" 1 s.Compile_cache.hits;
          ignore (get ka);
          let s = Compile_cache.stats () in
          Alcotest.(check int) "evicted entry rebuilds" 4 s.Compile_cache.misses;
          Alcotest.(check int) "lookups reconcile" (s.Compile_cache.hits + s.Compile_cache.misses)
            s.Compile_cache.lookups;
          (* Touching [kb] made [kc] the LRU, then inserting [ka] evicted
             it; shrinking every shard to capacity 1 keeps only the most
             recent entry, [ka]. *)
          Compile_cache.set_max_entries Compile_cache.shards;
          let s = Compile_cache.stats () in
          Alcotest.(check int) "shrinking evicts down to the bound" 1
            s.Compile_cache.size;
          let before = (Compile_cache.stats ()).Compile_cache.hits in
          ignore (get ka);
          let s = Compile_cache.stats () in
          Alcotest.(check int) "survivor is the most recent" (before + 1)
            s.Compile_cache.hits;
          Alcotest.(check bool) "set_max_entries validates" true
            (try
               Compile_cache.set_max_entries 0;
               false
             with Invalid_argument _ -> true)
      | _ -> Alcotest.fail "could not find same-shard keys")

(* ------------------------------------------------------------------ *)
(* Compile cache under concurrency                                    *)

(* 4 domains hammer [lookup_or] over a key space larger than the bound,
   so hits, misses and evictions all happen continuously, while the
   main domain samples the lock-free [stats]. Invariants:
   - no torn entries: a lookup under key k only ever returns k's value
     (the per-key value is derived from the key, so sharing a slot with
     another key would be visible immediately);
   - hits + misses <= lookups at every concurrent sample, with
     equality after the domains join;
   - size <= max_entries at every sample and at the end. *)
let stress_value i = 10_000 + (i * 7)

let stress_get i =
  let k = Printf.sprintf "stress|%d" i in
  Compile_cache.lookup_or ~key:k ~label:"stress" ~builtins:None
    ~select:(function Blob v -> Some v | _ -> None)
    ~inject:(fun v -> Blob v)
    ~build:(fun () -> stress_value i)

let test_cache_concurrent_stress () =
  let n_domains = 4 and iters = 4_000 and keyspace = 96 in
  let bound = 4 * Compile_cache.shards in
  Compile_cache.clear ();
  Fun.protect
    ~finally:(fun () ->
      Compile_cache.set_max_entries Compile_cache.default_max_entries;
      Compile_cache.clear ())
    (fun () ->
      Compile_cache.set_max_entries bound;
      let torn = Atomic.make 0 in
      let running = Atomic.make n_domains in
      let domains =
        List.init n_domains (fun d ->
            Domain.spawn (fun () ->
                (* Cheap deterministic per-domain key sequence, skewed
                   so a hot subset re-hits while the cold tail churns
                   evictions. *)
                let state = ref (d + 1) in
                for _ = 1 to iters do
                  state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
                  let hot = !state land 3 <> 0 in
                  let i =
                    if hot then !state mod (bound / 2) else !state mod keyspace
                  in
                  if stress_get i <> stress_value i then Atomic.incr torn
                done;
                Atomic.decr running))
      in
      (* Sample the lock-free stats while the traffic is live. *)
      while Atomic.get running > 0 do
        let s = Compile_cache.stats () in
        if s.Compile_cache.size > bound then
          Alcotest.failf "size %d exceeds bound %d mid-flight"
            s.Compile_cache.size bound;
        if s.Compile_cache.hits + s.Compile_cache.misses > s.Compile_cache.lookups
        then
          Alcotest.failf "hits %d + misses %d > lookups %d mid-flight"
            s.Compile_cache.hits s.Compile_cache.misses s.Compile_cache.lookups;
        Domain.cpu_relax ()
      done;
      List.iter Domain.join domains;
      Alcotest.(check int) "no torn entries" 0 (Atomic.get torn);
      let s = Compile_cache.stats () in
      Alcotest.(check int) "every lookup accounted"
        (n_domains * iters) s.Compile_cache.lookups;
      Alcotest.(check int) "hits + misses = lookups at quiescence"
        s.Compile_cache.lookups
        (s.Compile_cache.hits + s.Compile_cache.misses);
      Alcotest.(check bool) "evictions happened" true
        (s.Compile_cache.evictions > 0);
      Alcotest.(check bool) "hits happened" true (s.Compile_cache.hits > 0);
      Alcotest.(check bool) "bounded at rest" true
        (s.Compile_cache.size <= bound))

(* Regression for the resize satellite: [set_max_entries] must stay
   atomic per shard while lookups are in flight — entries already
   returned to readers stay valid, the bound is enforced, and the
   statistics reconcile exactly once the traffic drains. *)
let test_cache_resize_under_traffic () =
  let n_domains = 3 and iters = 3_000 and keyspace = 64 in
  let bounds =
    [| Compile_cache.shards; 4 * Compile_cache.shards; 2 * Compile_cache.shards;
       8 * Compile_cache.shards |]
  in
  let largest = Array.fold_left max 1 bounds in
  Compile_cache.clear ();
  Fun.protect
    ~finally:(fun () ->
      Compile_cache.set_max_entries Compile_cache.default_max_entries;
      Compile_cache.clear ())
    (fun () ->
      Compile_cache.set_max_entries largest;
      let torn = Atomic.make 0 in
      let running = Atomic.make n_domains in
      let domains =
        List.init n_domains (fun d ->
            Domain.spawn (fun () ->
                let state = ref (d + 17) in
                for _ = 1 to iters do
                  state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
                  let i = !state mod keyspace in
                  if stress_get i <> stress_value i then Atomic.incr torn
                done;
                Atomic.decr running))
      in
      (* Resize continuously under the concurrent traffic. *)
      let flips = ref 0 in
      while Atomic.get running > 0 do
        Compile_cache.set_max_entries bounds.(!flips mod Array.length bounds);
        incr flips;
        let s = Compile_cache.stats () in
        if s.Compile_cache.size > largest then
          Alcotest.failf "size %d exceeds largest bound %d during resize"
            s.Compile_cache.size largest
      done;
      List.iter Domain.join domains;
      Alcotest.(check int) "no torn entries across resizes" 0 (Atomic.get torn);
      let s = Compile_cache.stats () in
      Alcotest.(check int) "stats reconcile after resize storm"
        s.Compile_cache.lookups
        (s.Compile_cache.hits + s.Compile_cache.misses);
      (* A final shrink enforces the small bound exactly. *)
      Compile_cache.set_max_entries Compile_cache.shards;
      let s = Compile_cache.stats () in
      Alcotest.(check bool) "final shrink enforced" true
        (s.Compile_cache.size <= Compile_cache.shards))

(* Histogram updates must be domain-safe: concurrent observers may not
   lose bucket increments, and the derived count must equal the number
   of observe calls exactly once the observers join. Values are exact
   binary fractions so the CAS-accumulated sum is order-independent. *)
let test_histogram_concurrent () =
  Metrics.reset ();
  let h = Metrics.histogram ~buckets:[| 1.; 2. |] "stress.h" in
  let c = Metrics.counter "stress.c" in
  let n_domains = 4 and per_value = 2_000 in
  let values = [| 0.5; 1.5; 5.0 |] in
  let domains =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per_value * Array.length values do
              Metrics.observe h values.(i mod Array.length values);
              Metrics.incr c
            done))
  in
  List.iter Domain.join domains;
  let total = n_domains * per_value * Array.length values in
  Alcotest.(check int) "counter total" total (Metrics.counter_value c);
  Alcotest.(check int) "histogram count = observe calls" total
    (Metrics.histogram_count h);
  Alcotest.(check (float 0.)) "histogram sum exact"
    (float_of_int (n_domains * per_value) *. (0.5 +. 1.5 +. 5.0))
    (Metrics.histogram_sum h);
  (match List.assoc_opt "stress.h" (Metrics.snapshot ()) with
  | Some (Metrics.Histogram { counts; _ }) ->
      Alcotest.(check (array int))
        "per-bucket counts"
        [| n_domains * per_value; n_domains * per_value; n_domains * per_value |]
        counts
  | _ -> Alcotest.fail "stress.h missing from snapshot");
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Parallel ADAPT walk                                                *)

(* Big enough that the tape spans several walk chunks, so jobs > 1
   actually fans out (Tape.walk_chunk nodes per pool task). *)
let adapt_run tape =
  let module N = (val Adapt.num tape) in
  let open N in
  let x = input "x" 1.2 in
  let y = input "y" 0.7 in
  let rec loop acc i =
    if Stdlib.(i > 4_000) then acc
    else
      let t = register "t" (sin (x * of_int i) / (y + of_int i)) in
      loop (register "acc" (acc + (t * t))) Stdlib.(i + 1)
  in
  sqrt (loop (of_float 0.) 1)

let test_adapt_parallel_identical () =
  let analyze jobs =
    match Adapt.analyze ~jobs adapt_run with
    | Ok r -> r
    | Error _ -> Alcotest.fail "unexpected OOM"
  in
  let seq = analyze 1 in
  Metrics.reset ();
  let par = analyze 4 in
  Alcotest.(check bool) "total error bit-identical" true
    (seq.Adapt.total_error = par.Adapt.total_error);
  List.iter2
    (fun (n1, e1) (n2, e2) ->
      Alcotest.(check string) "per-variable name order" n1 n2;
      Alcotest.(check bool) "per-variable error bit-identical" true (e1 = e2))
    seq.Adapt.per_variable par.Adapt.per_variable;
  (* The fan-out is observable: the walk's chunks went through the pool. *)
  let snap = Metrics.snapshot () in
  (match List.assoc_opt "pool.tasks" snap with
  | Some (Metrics.Counter n) ->
      Alcotest.(check bool) "walk chunks counted by the pool" true (n > 0)
  | _ -> Alcotest.fail "pool.tasks missing");
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Epoch-aware reset vs concurrent observe                            *)

(* Every observation is of the same value, so the histogram's sum must
   equal count * value at quiescence — any torn observation (a bucket
   increment whose sum update was erased by a racing reset, or vice
   versa) breaks the equality. The generation-swap reset guarantees an
   observation racing a reset is kept whole or dropped whole. *)
let test_reset_under_observe () =
  Metrics.reset ();
  let h = Metrics.histogram ~buckets:[| 1.; 2. |] "resetrace.h" in
  let v = 1.5 in
  let n_domains = 4 and per_domain = 20_000 in
  let stop = Atomic.make false in
  let observers =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.observe h v
            done))
  in
  let resetter =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Metrics.reset ();
          Domain.cpu_relax ()
        done)
  in
  List.iter Domain.join observers;
  Atomic.set stop true;
  Domain.join resetter;
  let count = Metrics.histogram_count h in
  let sum = Metrics.histogram_sum h in
  Alcotest.(check (float 0.))
    "sum agrees with buckets through concurrent resets"
    (float_of_int count *. v)
    sum;
  (* And after the dust settles the histogram still works. *)
  Metrics.reset ();
  for _ = 1 to 10 do
    Metrics.observe h v
  done;
  Alcotest.(check int) "post-race count" 10 (Metrics.histogram_count h);
  Alcotest.(check (float 0.)) "post-race sum" (10. *. v)
    (Metrics.histogram_sum h);
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Sliding window                                                     *)

module Window = Cheffp_obs.Window
module Tail = Cheffp_obs.Tail

(* Known distribution -> interpolated quantiles within one bucket
   width. Values 1..100 ms land in the latency_buckets sub-ms grid;
   the true pXX must fall inside (or within one bucket width of) the
   interpolated bucket. *)
let test_window_quantiles () =
  Metrics.reset ();
  Window.stop ();
  let h =
    Metrics.histogram ~buckets:Metrics.latency_buckets "wq.elapsed_seconds"
  in
  let c = Metrics.counter "wq.requests" in
  Window.configure ~epochs:4 ~epoch_seconds:60. ();
  Window.tick ();
  (* baseline *)
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i /. 1000.);
    Metrics.incr c
  done;
  let s =
    match Window.summary () with
    | Some s -> s
    | None -> Alcotest.fail "no baseline"
  in
  (match Window.find s "wq.requests" with
  | Some (Window.Wcounter { delta; _ }) ->
      Alcotest.(check int) "windowed counter delta" 100 delta
  | _ -> Alcotest.fail "wq.requests missing from window");
  (match Window.find s "wq.elapsed_seconds" with
  | Some (Window.Whistogram w) ->
      Alcotest.(check int) "windowed observation count" 100 w.Window.wh_count;
      Alcotest.(check (float 1e-9)) "windowed sum" 5.05 w.Window.wh_sum;
      (* true p50 = 0.050 s, inside bucket (0.025, 0.05]; one bucket
         width of slack on each side *)
      let within name lo hi v =
        if not (v >= lo && v <= hi) then
          Alcotest.failf "%s = %g not in [%g, %g]" name v lo hi
      in
      within "p50" 0.025 0.05 w.Window.wh_p50;
      within "p95" 0.05 0.1 w.Window.wh_p95;
      within "p99" 0.05 0.1 w.Window.wh_p99;
      Alcotest.(check bool) "quantiles ordered" true
        (w.Window.wh_p50 <= w.Window.wh_p95
        && w.Window.wh_p95 <= w.Window.wh_p99)
  | _ -> Alcotest.fail "wq.elapsed_seconds missing from window");
  (* The interpolator itself, on a hand-built distribution: 10 obs in
     (0,1], 10 in (1,2] -> p50 = upper edge of the first bucket, p75
     halfway through the second. *)
  let q = Window.quantile ~buckets:[| 1.; 2. |] ~counts:[| 10; 10; 0 |] in
  Alcotest.(check (float 1e-9)) "interpolated p50" 1.0 (q 0.5);
  Alcotest.(check (float 1e-9)) "interpolated p75" 1.5 (q 0.75);
  Alcotest.(check bool) "empty window quantile is nan" true
    (Float.is_nan
       (Window.quantile ~buckets:[| 1.; 2. |] ~counts:[| 0; 0; 0 |] 0.5));
  Metrics.reset ()

(* Windowed numbers reconcile with the cumulative registry: with one
   baseline at zero, window delta = cumulative value. *)
let test_window_reconciles () =
  Metrics.reset ();
  Window.stop ();
  Window.configure ~epochs:2 ~epoch_seconds:60. ();
  Window.tick ();
  let c = Metrics.counter "wr.total" in
  Metrics.add c 42;
  let s = Option.get (Window.summary ()) in
  let cum =
    match List.assoc_opt "wr.total" (Metrics.snapshot ()) with
    | Some (Metrics.Counter n) -> n
    | _ -> -1
  in
  (match Window.find s "wr.total" with
  | Some (Window.Wcounter { delta; _ }) ->
      Alcotest.(check int) "window delta = cumulative" cum delta
  | _ -> Alcotest.fail "wr.total missing");
  Metrics.reset ()

let test_window_tenant_rates () =
  Metrics.reset ();
  Window.stop ();
  Window.configure ~epochs:2 ~epoch_seconds:60. ();
  Window.tick ();
  let lk = Metrics.counter "compile_cache.tenant.tw.lookups" in
  let ht = Metrics.counter "compile_cache.tenant.tw.hits" in
  Metrics.add lk 10;
  Metrics.add ht 9;
  let s = Option.get (Window.summary ()) in
  (match Window.tenant_hit_rates s with
  | [ (tenant, rate, lookups) ] ->
      Alcotest.(check string) "tenant" "tw" tenant;
      Alcotest.(check (float 1e-9)) "hit rate" 0.9 rate;
      Alcotest.(check int) "lookups" 10 lookups
  | l -> Alcotest.failf "expected one tenant, got %d" (List.length l));
  Metrics.reset ()

(* The ticker thread: start records a baseline immediately and the
   summary is queryable while it runs; stop joins and clears. *)
let test_window_ticker () =
  Metrics.reset ();
  Window.stop ();
  Window.configure ~epochs:3 ~epoch_seconds:0.02 ();
  Window.start ();
  Alcotest.(check bool) "active" true (Window.active ());
  let c = Metrics.counter "wt.ticks" in
  Metrics.incr c;
  Thread.delay 0.08;
  (* several epochs rotate; the delta must survive rotation because
     the ring keeps the oldest baseline within the window *)
  (match Window.summary () with
  | Some _ -> ()
  | None -> Alcotest.fail "summary unavailable while ticking");
  Window.stop ();
  Alcotest.(check bool) "stopped" false (Window.active ());
  Alcotest.(check bool) "baselines cleared" true (Window.summary () = None);
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Tail retention                                                     *)

let mk_tree ~id ~dur_ns =
  let root =
    {
      Trace.id;
      parent = -1;
      name = "server.request";
      domain = 0;
      kind = Trace.Span;
      start_ns = 0L;
      end_ns = dur_ns;
      attrs = [];
    }
  in
  let child =
    {
      Trace.id = id + 1;
      parent = id;
      name = "work";
      domain = 0;
      kind = Trace.Span;
      start_ns = 1L;
      end_ns = Int64.sub dur_ns 1L;
      attrs = [];
    }
  in
  [ root; child ]

(* Concurrent offers with distinct durations: the ring must end up
   holding exactly the K slowest, every error tree must be retained,
   and no tree may be torn (each entry's spans are exactly one offered
   tree, root + child intact). *)
let test_tail_concurrent () =
  Tail.configure ~slowest:8 ~errors:100 ();
  let n_domains = 4 and per_domain = 50 in
  let dur d i = Int64.of_int (1000 + (i * n_domains) + d) in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              let id = 2 * ((d * per_domain) + i) in
              let err = i mod 25 = 24 in
              Tail.offer ~err (mk_tree ~id ~dur_ns:(dur d i))
            done))
  in
  List.iter Domain.join domains;
  let slow = Tail.slowest () in
  Alcotest.(check int) "exactly K slowest retained" 8 (List.length slow);
  (* expected: the 8 largest of all durations offered *)
  let all =
    List.concat_map
      (fun d -> List.init per_domain (fun i -> dur d i))
      (List.init n_domains Fun.id)
  in
  let expected =
    List.filteri (fun i _ -> i < 8) (List.sort (fun a b -> compare b a) all)
  in
  Alcotest.(check (list int64))
    "retained = the K slowest offered" expected
    (List.map (fun e -> e.Tail.e_dur_ns) slow);
  List.iter
    (fun e ->
      match e.Tail.e_spans with
      | [ root; child ] ->
          Alcotest.(check int) "child parented under root" root.Trace.id
            child.Trace.parent;
          Alcotest.(check bool) "duration from root" true
            (e.Tail.e_dur_ns = Int64.sub root.Trace.end_ns root.Trace.start_ns)
      | l -> Alcotest.failf "torn tree: %d span(s)" (List.length l))
    slow;
  (* every error-outcome tree is retained (2 per domain) *)
  Alcotest.(check int) "all error trees retained" (n_domains * 2)
    (List.length (Tail.errors ()));
  Alcotest.(check int) "error admission count" (n_domains * 2)
    (Tail.error_count ());
  List.iter
    (fun e -> Alcotest.(check bool) "flagged err" true e.Tail.e_err)
    (Tail.errors ());
  (* bounded error ring: overflow keeps the most recent *)
  Tail.configure ~slowest:2 ~errors:3 ();
  for i = 0 to 9 do
    Tail.offer ~err:true (mk_tree ~id:(2 * i) ~dur_ns:(Int64.of_int (100 + i)))
  done;
  let errs = Tail.errors () in
  Alcotest.(check int) "error ring bounded" 3 (List.length errs);
  Alcotest.(check (list int64))
    "oldest evicted first" [ 107L; 108L; 109L ]
    (List.map (fun e -> e.Tail.e_dur_ns) errs);
  Alcotest.(check int) "total errors counted" 10 (Tail.error_count ());
  Tail.clear ();
  Alcotest.(check int) "clear empties" 0 (List.length (Tail.slowest ()))

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                              *)

let test_prometheus () =
  Metrics.reset ();
  let c = Metrics.counter "promtest.requests" in
  Metrics.add c 7;
  let g = Metrics.gauge "promtest.active" in
  Metrics.set_gauge g 2.5;
  let h = Metrics.histogram ~buckets:[| 0.001; 0.01 |] "promtest.lat_seconds" in
  Metrics.observe h 0.0005;
  Metrics.observe h 0.005;
  Metrics.observe h 0.5;
  let weird = Metrics.counter "compile_cache.tenant.a\"b\\c\nd.hits" in
  Metrics.incr weird;
  let wk = Metrics.counter "pool.worker.3.tasks" in
  Metrics.add wk 11;
  let out = Export.prometheus () in
  let has l = Alcotest.(check bool) ("line: " ^ l) true (contains out l) in
  has "# TYPE cheffp_promtest_requests_total counter";
  has "cheffp_promtest_requests_total 7";
  has "# TYPE cheffp_promtest_active gauge";
  has "cheffp_promtest_active 2.5";
  has "# TYPE cheffp_promtest_lat_seconds histogram";
  has "cheffp_promtest_lat_seconds_bucket{le=\"0.001\"} 1";
  has "cheffp_promtest_lat_seconds_bucket{le=\"0.01\"} 2";
  has "cheffp_promtest_lat_seconds_bucket{le=\"+Inf\"} 3";
  has "cheffp_promtest_lat_seconds_count 3";
  (* dynamic name components become escaped label values *)
  has "cheffp_compile_cache_tenant_hits_total{tenant=\"a\\\"b\\\\c\\nd\"} 1";
  has "cheffp_pool_worker_tasks_total{worker=\"3\"} 11";
  (* scrape validity: every line is a comment or name{labels} value
     with a legal metric name *)
  let name_ok n =
    n <> ""
    && String.for_all
         (function
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
           | _ -> false)
         n
    && not (match n.[0] with '0' .. '9' -> true | _ -> false)
  in
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then begin
        let name =
          match (String.index_opt line '{', String.index_opt line ' ') with
          | Some i, Some j -> String.sub line 0 (min i j)
          | None, Some j -> String.sub line 0 j
          | _ -> ""
        in
        if not (name_ok name) then
          Alcotest.failf "bad exposition line: %s" line;
        (* the sample value parses as a number *)
        match String.rindex_opt line ' ' with
        | Some k -> (
            let v = String.sub line (k + 1) (String.length line - k - 1) in
            match (float_of_string_opt v, v) with
            | Some _, _ | None, ("+Inf" | "-Inf" | "NaN") -> ()
            | None, _ -> Alcotest.failf "bad sample value: %s" line)
        | None -> Alcotest.failf "no sample value: %s" line
      end)
    (String.split_on_char '\n' out);
  (* one # TYPE line per family, even with many labelled samples *)
  let type_lines =
    List.filter
      (fun l -> contains l "# TYPE cheffp_pool_worker_tasks_total")
      (String.split_on_char '\n' out)
  in
  Alcotest.(check int) "one TYPE line per family" 1 (List.length type_lines);
  Metrics.reset ()

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_nesting;
          Alcotest.test_case "exception marks span" `Quick test_exception;
          Alcotest.test_case "attrs and events" `Quick test_attrs_events;
          Alcotest.test_case "pool worker parenting" `Quick
            test_pool_parenting;
          Alcotest.test_case "disabled path inert" `Quick test_disabled_inert;
          Alcotest.test_case "disabled path allocation-free" `Quick
            test_disabled_no_alloc;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry basics" `Quick test_metrics_basic;
          Alcotest.test_case "concurrent updates" `Quick
            test_metrics_concurrent;
          Alcotest.test_case "pool task counters" `Quick
            test_pool_task_metrics;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl well-formed" `Quick test_jsonl;
          Alcotest.test_case "metrics dump" `Quick test_metrics_dump;
        ] );
      ( "instrumented",
        [
          Alcotest.test_case "compile cache LRU" `Quick test_lru_eviction;
          Alcotest.test_case "compile cache 4-domain stress" `Quick
            test_cache_concurrent_stress;
          Alcotest.test_case "compile cache resize under traffic" `Quick
            test_cache_resize_under_traffic;
          Alcotest.test_case "histogram concurrent observers" `Quick
            test_histogram_concurrent;
          Alcotest.test_case "reset under concurrent observe" `Quick
            test_reset_under_observe;
          Alcotest.test_case "adapt parallel walk bit-identical" `Quick
            test_adapt_parallel_identical;
        ] );
      ( "window",
        [
          Alcotest.test_case "quantiles within a bucket" `Quick
            test_window_quantiles;
          Alcotest.test_case "windowed reconciles with cumulative" `Quick
            test_window_reconciles;
          Alcotest.test_case "tenant hit rates" `Quick
            test_window_tenant_rates;
          Alcotest.test_case "ticker lifecycle" `Quick test_window_ticker;
        ] );
      ( "tail",
        [
          Alcotest.test_case "concurrent offers keep K slowest" `Quick
            test_tail_concurrent;
        ] );
      ( "prometheus",
        [ Alcotest.test_case "exposition format" `Quick test_prometheus ] );
    ]
