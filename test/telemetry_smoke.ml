(* @telemetry-smoke driver: end-to-end gate for the continuous
   telemetry layer (DESIGN.md §14).

   Runs the daemon in-process (Server.create + a run thread) so the
   test can also inspect the global Window/Tail state directly, and:

   - fires >= 16 concurrent mixed requests (ping / analyze / search,
     plus deliberate error requests) across several connections;
   - checks the stats response schema and that its windowed numbers
     reconcile exactly with the cumulative registry (the window spans
     the whole run: epoch_seconds is large, so the baseline is the
     all-zero snapshot from create);
   - checks the metrics response in both formats: the dump carries the
     server keys, and every Prometheus line parses as
     name{labels} value with the sub-ms latency bucket grid;
   - checks the traces response: the tail ring holds exactly K slowest
     trees (sorted slowest-first) plus every error-outcome tree, and
     writes the retained forest to telemetry_smoke_trace.jsonl for
     validate_trace --forest any;
   - restarts without telemetry and asserts the disabled path is
     really off (no ticker, no window, no retention) and that enabled
     telemetry does not slow pings catastrophically (the strict <= 5%
     throughput gate lives in the bench's telemetry block; this guard
     only catches per-request work sneaking onto the disabled path). *)

module Server = Cheffp_server.Server
module Client = Cheffp_server.Client
module Json = Cheffp_server.Json
module Metrics = Cheffp_obs.Metrics
module Window = Cheffp_obs.Window
module Tail = Cheffp_obs.Tail
module Trace = Cheffp_obs.Trace
module Compile_cache = Cheffp_ir.Compile_cache

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("telemetry_smoke: " ^ s);
      exit 1)
    fmt

let read_file path = In_channel.with_open_bin path In_channel.input_all

let to_num who k j =
  match Json.to_float_opt (Json.member k j) with
  | Some v -> v
  | None -> fail "%s: field %S missing or not a number" who k

let to_int who k j = int_of_float (to_num who k j)

let check_ok who j =
  (match Json.to_bool_opt (Json.member "ok" j) with
  | Some true -> ()
  | _ ->
      fail "%s: request failed: %s" who
        (Option.value ~default:"?"
           (Json.to_string_opt (Json.member "error" j))));
  Json.member "result" j

let check_err who j =
  match Json.to_bool_opt (Json.member "ok" j) with
  | Some false -> ()
  | _ -> fail "%s: expected an error response" who

(* ------------------------------------------------------------------ *)

let () =
  let obs_smoke = read_file "obs_smoke.mfp" in
  let arclength = read_file "../examples/programs/arclength.mfp" in
  Metrics.set_enabled true;

  (* ---------------------------------------------------------------- *)
  (* Phase A: telemetry on. Long epochs keep the ring from rotating   *)
  (* during the test, so windowed deltas must equal cumulative totals *)
  (* exactly (the baseline is the all-zero snapshot from create).     *)
  let tail_k = 4 in
  let srv =
    Server.create ~workers:2 ~telemetry:true ~window_epochs:6
      ~window_epoch_s:60. ~tail_slowest:tail_k ~tail_errors:8 (Server.Tcp 0)
  in
  let run_th = Thread.create Server.run srv in
  let port = match Server.port srv with Some p -> p | None -> fail "no port" in
  let connect () = Client.retry_connect (fun () -> Client.connect_tcp port) in
  if not (Window.active ()) then fail "telemetry on but window ticker not running";

  (* Baseline ping cost with telemetry enabled (for the phase-B guard). *)
  let ping_time () =
    let c = connect () in
    let n = 100 in
    let t0 = Unix.gettimeofday () in
    for i = 1 to n do
      ignore (check_ok "ping" (Client.rpc c (Client.request ~id:i ~cmd:"ping" [])))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Client.close c;
    dt
  in
  let enabled_ping_s = ping_time () in

  (* >= 16 mixed concurrent requests over 4 connections, pipelined.
     Each connection sends 4 successful requests and 1 deliberate
     error (search without a threshold), so the tail ring sees 4
     error-outcome trees. *)
  let n_conns = 4 in
  let err_ids = List.init n_conns (fun i -> (i * 10) + 4) in
  let threads =
    List.init n_conns (fun i ->
        Thread.create
          (fun () ->
            let who = Printf.sprintf "conn%d" i in
            let base = i * 10 in
            let tenant = Json.Str (Printf.sprintf "t%d" i) in
            let c = connect () in
            let reqs =
              [
                Client.request ~id:base ~cmd:"ping" [];
                Client.request ~id:(base + 1) ~cmd:"analyze"
                  [ ("program", Json.Str arclength);
                    ("func", Json.Str "arclength");
                    ("args", Json.List [ Json.Str "100" ]);
                    ("tenant", tenant) ];
                Client.request ~id:(base + 2) ~cmd:"search"
                  [ ("program", Json.Str obs_smoke); ("func", Json.Str "looped");
                    ("args", Json.List [ Json.Str "1.3"; Json.Str "50" ]);
                    ("threshold", Json.Num 1e-6); ("jobs", Json.Num 2.);
                    ("tenant", tenant) ];
                Client.request ~id:(base + 3) ~cmd:"analyze"
                  [ ("program", Json.Str obs_smoke); ("func", Json.Str "looped");
                    ("args", Json.List [ Json.Str "1.3"; Json.Str "50" ]);
                    ("tenant", tenant) ];
                (* missing threshold -> error outcome, retained by Tail *)
                Client.request ~id:(base + 4) ~cmd:"search"
                  [ ("program", Json.Str obs_smoke); ("func", Json.Str "looped");
                    ("args", Json.List [ Json.Str "1.3"; Json.Str "50" ]) ];
              ]
            in
            List.iter (Client.send c) reqs;
            let got = List.map (fun _ -> Client.recv c) reqs in
            List.iter
              (fun j ->
                let id =
                  match Json.to_int_opt (Json.member "id" j) with
                  | Some id -> id
                  | None -> fail "%s: response without id" who
                in
                if id = base + 4 then check_err who j
                else ignore (check_ok who j))
              got;
            Client.close c)
          ())
  in
  List.iter Thread.join threads;
  let n_requests = (n_conns * 5) + 100 (* pings *) in
  let n_errors = n_conns in
  Printf.printf "telemetry_smoke: %d concurrent requests (%d errors) OK\n%!"
    (n_conns * 5) n_errors;

  (* -------------------------- stats ------------------------------- *)
  let c = connect () in
  let stats =
    check_ok "stats"
      (Client.rpc c
         (Client.request ~id:900 ~cmd:"stats" [ ("limit", Json.Num 3.) ]))
  in
  (match Json.to_bool_opt (Json.member "telemetry" stats) with
  | Some true -> ()
  | _ -> fail "stats: telemetry flag not true");
  if to_num "stats" "window_s" stats <= 0. then fail "stats: window_s <= 0";
  let requests = Json.member "requests" stats in
  let total = to_int "stats.requests" "total" requests in
  let windowed = to_int "stats.requests" "window" requests in
  (* The stats request itself has started but not finished: counted in
     [total] (and in the windowed counter delta) but not yet in the
     latency histogram. *)
  if total <> n_requests + 1 then
    fail "stats: requests.total = %d, expected %d" total (n_requests + 1);
  if windowed <> total then
    fail "stats: windowed %d <> cumulative %d (no rotation happened)" windowed
      total;
  let errs_total = to_int "stats.requests" "errors_total" requests in
  let errs_window = to_int "stats.requests" "errors_window" requests in
  if errs_total <> n_errors then
    fail "stats: errors_total = %d, expected %d" errs_total n_errors;
  if errs_window <> errs_total then
    fail "stats: windowed errors %d <> cumulative %d" errs_window errs_total;
  if to_num "stats.requests" "rate" requests <= 0. then
    fail "stats: request rate <= 0";
  let lat = Json.member "latency" stats in
  let lat_count = to_int "stats.latency" "count" lat in
  if lat_count <> n_requests then
    fail "stats: latency.count = %d, expected %d" lat_count n_requests;
  let p50 = to_num "stats.latency" "p50_ms" lat in
  let p95 = to_num "stats.latency" "p95_ms" lat in
  let p99 = to_num "stats.latency" "p99_ms" lat in
  if not (p50 >= 0. && p50 <= p95 && p95 <= p99) then
    fail "stats: latency quantiles disordered: %g %g %g" p50 p95 p99;
  ignore (to_num "stats.queue_wait" "count" (Json.member "queue_wait" stats));
  let pool = Json.member "pool" stats in
  let util = to_num "stats.pool" "utilization" pool in
  if util < 0. || util > 1. then fail "stats: utilization %g outside [0,1]" util;
  if to_int "stats.pool" "completed_window" pool <= 0 then
    fail "stats: no pool completions in window";
  let cache = Json.member "cache" stats in
  let shards = Json.to_list (Json.member "shards" cache) in
  if List.length shards <> Compile_cache.shards then
    fail "stats: %d shard entries, expected %d" (List.length shards)
      Compile_cache.shards;
  List.iter
    (fun s ->
      let size = to_int "shard" "size" s and cap = to_int "shard" "cap" s in
      if size > cap then fail "stats: shard size %d > cap %d" size cap)
    shards;
  (* Windowed per-tenant hit rates: every tenant we used must appear
     with sane numbers (cross-request reuse makes the exact rate
     scheduling-dependent). *)
  let tenants = Json.to_list (Json.member "tenants" stats) in
  List.iteri
    (fun i _ ->
      let name = Printf.sprintf "t%d" i in
      match
        List.find_opt
          (fun t -> Json.to_string_opt (Json.member "tenant" t) = Some name)
          tenants
      with
      | None -> fail "stats: tenant %s missing" name
      | Some t ->
          let r = to_num "tenant" "hit_rate" t in
          if r < 0. || r > 1. then fail "stats: tenant %s hit rate %g" name r;
          if to_int "tenant" "lookups" t <= 0 then
            fail "stats: tenant %s has no lookups" name)
    (List.init n_conns Fun.id);
  let tail = Json.member "tail" stats in
  let offenders = Json.to_list (Json.member "slowest" tail) in
  if List.length offenders <> 3 then
    fail "stats: limit 3 but %d tail offenders" (List.length offenders);
  if to_int "stats.tail" "errors_total" tail <> n_errors then
    fail "stats: tail errors_total wrong";
  print_endline "telemetry_smoke: stats reconcile with cumulative registry";

  (* -------------------------- metrics ----------------------------- *)
  let dump =
    let r =
      check_ok "metrics"
        (Client.rpc c (Client.request ~id:901 ~cmd:"metrics" []))
    in
    match Json.to_string_opt (Json.member "metrics" r) with
    | Some d -> d
    | None -> fail "metrics: no dump"
  in
  List.iter
    (fun k ->
      if
        not
          (List.exists
             (fun line ->
               String.length line > String.length k
               && String.sub line 0 (String.length k) = k)
             (String.split_on_char '\n' dump))
      then fail "metrics dump missing %S" k)
    [ "server.requests"; "server.errors"; "server.elapsed_seconds";
      "compile_cache.hits" ];
  let prom =
    let r =
      check_ok "prometheus"
        (Client.rpc c
           (Client.request ~id:902 ~cmd:"metrics"
              [ ("format", Json.Str "prometheus") ]))
    in
    match Json.to_string_opt (Json.member "metrics" r) with
    | Some d -> d
    | None -> fail "prometheus: no dump"
  in
  let prom_lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' prom)
  in
  List.iter
    (fun line ->
      if line.[0] <> '#' then begin
        (* name{labels} value — name from the legal charset, one space,
           numeric (or +/-Inf / NaN) sample value *)
        let name_end =
          match (String.index_opt line '{', String.index_opt line ' ') with
          | Some i, Some j -> min i j
          | None, Some j -> j
          | _ -> fail "prometheus line without value: %s" line
        in
        String.iteri
          (fun i ch ->
            if i < name_end then
              match ch with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
              | _ -> fail "prometheus: bad name char in %s" line)
          line;
        let vstart = String.rindex line ' ' + 1 in
        let v = String.sub line vstart (String.length line - vstart) in
        match (float_of_string_opt v, v) with
        | Some _, _ | None, ("+Inf" | "-Inf" | "NaN") -> ()
        | None, _ -> fail "prometheus: bad sample value in %s" line
      end)
    prom_lines;
  let count_with needle =
    List.length
      (List.filter
         (fun l ->
           let nl = String.length needle and ll = String.length l in
           let rec go i =
             i + nl <= ll && (String.sub l i nl = needle || go (i + 1))
           in
           go 0)
         prom_lines)
  in
  if count_with "# TYPE cheffp_server_requests_total counter" <> 1 then
    fail "prometheus: missing requests counter TYPE line";
  if count_with "# TYPE cheffp_server_elapsed_seconds histogram" <> 1 then
    fail "prometheus: missing latency histogram TYPE line";
  (* Sub-ms grid: latency_buckets (22 bounds) + the +Inf bucket. *)
  let buckets = count_with "cheffp_server_elapsed_seconds_bucket{le=" in
  if buckets <> Array.length Metrics.latency_buckets + 1 then
    fail "prometheus: %d latency bucket lines, expected %d" buckets
      (Array.length Metrics.latency_buckets + 1);
  if count_with "cheffp_server_elapsed_seconds_bucket{le=\"+Inf\"}" <> 1 then
    fail "prometheus: no +Inf bucket";
  if count_with "tenant=\"t0\"" < 1 then
    fail "prometheus: tenant labels missing";
  Printf.printf "telemetry_smoke: prometheus scrape valid (%d lines)\n%!"
    (List.length prom_lines);

  (* -------------------------- traces ------------------------------ *)
  let traces =
    check_ok "traces"
      (Client.rpc c (Client.request ~id:903 ~cmd:"traces" []))
  in
  let slowest = Json.to_list (Json.member "slowest" traces) in
  let errors = Json.to_list (Json.member "errors" traces) in
  if List.length slowest <> tail_k then
    fail "traces: %d slowest retained, expected exactly %d"
      (List.length slowest) tail_k;
  ignore
    (List.fold_left
       (fun prev e ->
         let d = to_num "traces" "dur_ms" e in
         if d > prev then fail "traces: slowest not sorted (%g after %g)" d prev;
         d)
       infinity slowest);
  if List.length errors <> n_errors then
    fail "traces: %d error trees retained, expected all %d"
      (List.length errors) n_errors;
  if to_int "traces" "errors_total" traces <> n_errors then
    fail "traces: errors_total wrong";
  let err_req_ids =
    List.sort compare
      (List.map (fun e -> to_int "traces.err" "request_id" e) errors)
  in
  if err_req_ids <> List.sort compare err_ids then
    fail "traces: error request ids %s do not match the failed requests"
      (String.concat "," (List.map string_of_int err_req_ids));
  List.iter
    (fun e ->
      match Json.to_bool_opt (Json.member "err" e) with
      | Some true -> ()
      | _ -> fail "traces: error entry without err flag")
    errors;
  (* Retained forest -> jsonl for validate_trace --forest any. Trees
     can appear in both rings (a slow error); dedup by root line. *)
  let tree_lines e =
    match Json.member "trace" e with
    | Json.List l ->
        let lines = List.filter_map Json.to_string_opt l in
        if lines = [] then fail "traces: entry with empty trace";
        lines
    | _ -> fail "traces: entry without trace"
  in
  let seen_roots = Hashtbl.create 16 in
  let forest =
    List.concat_map
      (fun e ->
        let lines = tree_lines e in
        let root = List.hd lines in
        if Hashtbl.mem seen_roots root then []
        else begin
          Hashtbl.replace seen_roots root ();
          lines
        end)
      (slowest @ errors)
  in
  Out_channel.with_open_bin "telemetry_smoke_trace.jsonl" (fun oc ->
      List.iter (fun l -> output_string oc (l ^ "\n")) forest);
  Printf.printf
    "telemetry_smoke: tail ring holds %d slowest + %d error tree(s); wrote \
     %d span(s) to telemetry_smoke_trace.jsonl\n%!"
    tail_k n_errors (List.length forest);

  (* Drain phase A. *)
  ignore (check_ok "shutdown" (Client.rpc c (Client.request ~id:904 ~cmd:"shutdown" [])));
  Client.close c;
  Thread.join run_th;
  if Window.active () then fail "window ticker survived the drain";

  (* ---------------------------------------------------------------- *)
  (* Phase B: telemetry off — the disabled path must really be off.   *)
  Tail.clear ();
  Trace.set_enabled false;
  let srv2 = Server.create ~workers:2 ~telemetry:false (Server.Tcp 0) in
  let run_th2 = Thread.create Server.run srv2 in
  let port2 = match Server.port srv2 with Some p -> p | None -> fail "no port" in
  let connect2 () = Client.retry_connect (fun () -> Client.connect_tcp port2) in
  if Window.active () then fail "telemetry off but window ticker running";
  let c = connect2 () in
  for i = 1 to 8 do
    ignore
      (check_ok "off.analyze"
         (Client.rpc c
            (Client.request ~id:i ~cmd:"analyze"
               [ ("program", Json.Str obs_smoke); ("func", Json.Str "looped");
                 ("args", Json.List [ Json.Str "1.3"; Json.Str "50" ]) ])))
  done;
  check_err "off.err"
    (Client.rpc c (Client.request ~id:9 ~cmd:"search"
       [ ("program", Json.Str obs_smoke); ("func", Json.Str "looped");
         ("args", Json.List [ Json.Str "1.3"; Json.Str "50" ]) ]));
  if Tail.slowest () <> [] || Tail.errors () <> [] then
    fail "telemetry off but the tail ring retained trees";
  if Window.summary () <> None then fail "telemetry off but window has baselines";
  (* stats still answers, reporting the disabled state. *)
  let stats_off =
    check_ok "off.stats" (Client.rpc c (Client.request ~id:10 ~cmd:"stats" []))
  in
  (match Json.to_bool_opt (Json.member "telemetry" stats_off) with
  | Some false -> ()
  | _ -> fail "off.stats: telemetry flag not false");
  if to_num "off.stats" "window_s" stats_off <> 0. then
    fail "off.stats: non-zero window on disabled daemon";
  Client.close c;
  (* Coarse overhead guard: enabled pings must not be drastically
     slower than disabled pings (catches hot-path work leaking in; the
     <= 5% gate is the bench's). Generous bound against CI noise. *)
  let disabled_ping_s =
    let c = connect2 () in
    let n = 100 in
    let t0 = Unix.gettimeofday () in
    for i = 1 to n do
      ignore (check_ok "ping" (Client.rpc c (Client.request ~id:i ~cmd:"ping" [])))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Client.close c;
    dt
  in
  if enabled_ping_s > (2.5 *. disabled_ping_s) +. 0.1 then
    fail "telemetry overhead: 100 pings %.1f ms enabled vs %.1f ms disabled"
      (enabled_ping_s *. 1000.) (disabled_ping_s *. 1000.);
  let c = connect2 () in
  ignore (check_ok "shutdown" (Client.rpc c (Client.request ~id:11 ~cmd:"shutdown" [])));
  Client.close c;
  Thread.join run_th2;
  Printf.printf
    "telemetry_smoke: OK — disabled path inert (pings: %.1f ms on, %.1f ms \
     off per 100)\n"
    (enabled_ping_s *. 1000.) (disabled_ping_s *. 1000.)
