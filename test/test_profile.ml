(* Error-atom profiles (lib/core/profile.ml) and the profile-guided
   search strategies built on them. *)

open Cheffp_ir
module B = Cheffp_benchmarks
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp
module E = Cheffp_core.Estimate
module Model = Cheffp_core.Model
module Profile = Cheffp_core.Profile
module Search = Cheffp_core.Search
module Metrics = Cheffp_obs.Metrics
module Oracle = Cheffp_shadow.Oracle

let eps32 = Fp.unit_roundoff Fp.F32

(* ------------------------------------------------------------------ *)
(* Scoring fold on synthetic profiles                                  *)
(* ------------------------------------------------------------------ *)

let test_of_atoms_score () =
  let p = Profile.of_atoms ~func:"f" [ ("a", 2.0); ("b", 3.0); ("c", 0.5) ] in
  Alcotest.(check (float 0.)) "total atom" 5.5 (Profile.total_atom p);
  Alcotest.(check (float 0.)) "atom" 3.0 (Profile.atom p "b");
  Alcotest.(check (float 0.)) "unknown variable scores zero" 0.
    (Profile.atom p "zzz");
  (* F64 variables contribute nothing; narrow ones eps(fmt) * atom. *)
  Alcotest.(check (float 0.)) "double config scores zero" 0.
    (Profile.score p Config.double);
  let cfg = Config.demote_all Config.double [ "a"; "c" ] Fp.F32 in
  Alcotest.(check (float 1e-25)) "mixed config is a dot product"
    (2.5 *. eps32) (Profile.score p cfg);
  Alcotest.(check (float 1e-25)) "score_vars matches score"
    (Profile.score p cfg)
    (Profile.score_vars p ~target:Fp.F32 [ "a"; "c" ]);
  Alcotest.(check (float 1e-20)) "uniform = total * eps"
    (5.5 *. eps32)
    (Profile.score p (Config.uniform Fp.F32))

let test_overflow_veto () =
  let p =
    Profile.of_atoms ~func:"f"
      ~ranges:[ ("big", (0., 3e38)); ("small", (-1., 1.)) ]
      [ ("big", 1.0); ("small", 1.0) ]
  in
  Alcotest.(check bool) "over half max_finite f32 vetoed" true
    (Profile.overflows p ~target:Fp.F32 "big");
  Alcotest.(check bool) "small range fine" false
    (Profile.overflows p ~target:Fp.F32 "small");
  Alcotest.(check bool) "f64 target fine" false
    (Profile.overflows p ~target:Fp.F64 "big")

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let counter name =
  match List.assoc_opt name (Metrics.snapshot ()) with
  | Some (Metrics.Counter n) -> n
  | _ -> 0

let test_build_cached () =
  let args = B.Arclength.args ~n:64 in
  let prog = B.Arclength.program and func = B.Arclength.func_name in
  let p1 = Profile.build_cached ~prog ~func ~args () in
  let hits0 = counter "profile.cache_hits" in
  let builds0 = counter "profile.builds" in
  let p2 = Profile.build_cached ~prog ~func ~args () in
  Alcotest.(check int) "second fetch hits" (hits0 + 1)
    (counter "profile.cache_hits");
  Alcotest.(check int) "no second build" builds0 (counter "profile.builds");
  Alcotest.(check bool) "same atoms" true
    (Profile.atoms p1 = Profile.atoms p2);
  (* Different arguments -> different profile. *)
  let p3 = Profile.build_cached ~prog ~func ~args:(B.Arclength.args ~n:128) () in
  Alcotest.(check bool) "args participate in the key" true
    (Profile.atoms p1 <> Profile.atoms p3)

(* ------------------------------------------------------------------ *)
(* Property: the profile is the taylor estimate with eps factored out  *)
(* ------------------------------------------------------------------ *)

(* For a uniform F32 demotion, score = eps32 * Σ_v A(v) must equal the
   taylor-F32 estimate's summed per-variable report on the same inputs
   (the two augmented programs differ only in where the eps
   multiplication sits, so they agree to rounding). *)
let fuzz_score_matches_taylor =
  QCheck.Test.make ~count:150
    ~name:"fuzz: uniform-F32 score = taylor-F32 estimate"
    Gen_minifp.arbitrary_case (fun (prog, (x, y)) ->
      let args = [ Interp.Aflt x; Interp.Aflt y; Interp.Aint 4 ] in
      match
        let profile = Profile.build ~prog ~func:"fuzz" ~args () in
        let est =
          E.estimate_error ~model:(Model.taylor ~target:Fp.F32 ()) ~prog
            ~func:"fuzz" ()
        in
        let report = E.run est args in
        (profile, report)
      with
      | exception Interp.Runtime_error _ -> true
      | profile, report ->
          let score = Profile.score profile (Config.uniform Fp.F32) in
          let taylor =
            List.fold_left (fun a (_, e) -> a +. e) 0. report.E.per_variable
          in
          if not (Float.is_finite score && Float.is_finite taylor) then true
          else
            Float.abs (score -. taylor)
            <= 1e-9 *. Float.max 1e-300 (Float.max score taylor))

(* ------------------------------------------------------------------ *)
(* Strategies on the paper benchmarks                                  *)
(* ------------------------------------------------------------------ *)

(* Tiny instances of all five paper workloads (the bench harness's
   smoke sizes). *)
let workloads () =
  let bs = B.Blackscholes.generate ~n:4 () in
  let hp = B.Hpccg.generate ~nx:5 ~ny:5 ~nz:5 ~max_iter:10 () in
  [
    ( "arclength", B.Arclength.program, B.Arclength.func_name,
      B.Arclength.args ~n:2_000, 1e-6 );
    ( "simpsons", B.Simpsons.program, B.Simpsons.func_name,
      B.Simpsons.args ~a:0. ~b:Float.pi ~n:2_000, 1e-10 );
    ( "kmeans", B.Kmeans.program, B.Kmeans.func_name,
      B.Kmeans.args (B.Kmeans.generate ~npoints:300 ()), 1e-7 );
    ( "blackscholes", B.Blackscholes.program B.Blackscholes.Exact,
      B.Blackscholes.price_func, B.Blackscholes.price_args bs 0, 1e-9 );
    ( "hpccg", B.Hpccg.program, B.Hpccg.func_name, B.Hpccg.args hp, 1e-10 );
  ]

(* `Hybrid must reproduce `Measured's chosen set exactly, with strictly
   fewer executions, and the avoided count must be exact: hybrid
   executions + runs avoided = measured executions. *)
let test_hybrid_bit_identical () =
  List.iter
    (fun (name, prog, func, args, threshold) ->
      let m =
        Search.tune ~strategy:`Measured ~prog ~func ~args ~threshold ()
      in
      let h = Search.tune ~strategy:`Hybrid ~prog ~func ~args ~threshold () in
      Alcotest.(check (list string))
        (name ^ ": hybrid set = measured set")
        m.Search.demoted h.Search.demoted;
      Alcotest.(check bool)
        (name ^ ": hybrid strictly cheaper")
        true
        (h.Search.executions < m.Search.executions);
      Alcotest.(check int)
        (name ^ ": avoided count exact")
        m.Search.executions
        (h.Search.executions + h.Search.runs_avoided))
    (workloads ())

(* `Modelled executes no candidates, and its chosen configuration both
   meets the threshold in the measured evaluation and validates against
   the double-double shadow oracle (margin 2: the tuner's documented
   headroom for what the first-order model does not see). *)
let test_modelled_sound () =
  List.iter
    (fun (name, prog, func, args, threshold) ->
      let o =
        Search.tune ~strategy:`Modelled ~prog ~func ~args ~threshold ()
      in
      Alcotest.(check int) (name ^ ": zero candidate executions") 0
        o.Search.executions;
      Alcotest.(check bool)
        (name ^ ": evaluation meets threshold")
        true
        (o.Search.evaluation.Cheffp_core.Tuner.actual_error <= threshold);
      let config =
        Config.demote_all Config.double o.Search.demoted Fp.F32
      in
      let v = Oracle.check_estimate ~margin:2.0 ~prog ~func ~config args in
      Alcotest.(check bool) (name ^ ": shadow oracle sound") true
        v.Oracle.sound)
    (workloads ())

let () =
  Alcotest.run "profile"
    [
      ( "unit",
        [
          Alcotest.test_case "of_atoms scoring" `Quick test_of_atoms_score;
          Alcotest.test_case "overflow veto" `Quick test_overflow_veto;
          Alcotest.test_case "build_cached" `Quick test_build_cached;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "hybrid bit-identical to measured" `Quick
            test_hybrid_bit_identical;
          Alcotest.test_case "modelled sound on the paper benchmarks" `Quick
            test_modelled_sound;
        ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest fuzz_score_matches_taylor ] );
    ]
